# Single source of truth for the commands CI runs — run the same
# targets locally before pushing.

GO ?= go
RACE_PKGS := ./internal/parallel ./internal/tensor ./internal/ag ./internal/nn ./internal/mtmlf ./internal/experiments ./internal/datagen ./internal/serve ./internal/workload ./internal/corpus ./internal/loadgen ./internal/dist

# Pinned linter versions: CI installs exactly these; bump them here
# and in no other place.
STATICCHECK_VERSION := 2025.1.1
GOVULNCHECK_VERSION := v1.1.4

.PHONY: all build vet vet-custom staticcheck vulncheck lint fmt-check test race bench bench-smoke bench-infer bench-roofline calib-smoke serve-smoke corpus-smoke mla-smoke load-smoke resume-smoke dist-smoke fuzz-smoke docs-lint ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The contract gate: five custom analyzers (mapiter, globalrand,
# atomicwrite, gobregister, poolrelease) enforcing the determinism,
# durability, and session-ownership invariants — DESIGN.md §8. Fails
# on any unjustified violation.
vet-custom:
	$(GO) run ./cmd/mtmlf-vet ./...

# staticcheck/govulncheck run when installed (CI installs the pinned
# versions above); locally a missing binary downgrades to a warning so
# `make lint` works offline.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed — skipping (CI pins honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed — skipping (CI pins golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

# The full contributor gate in one command.
lint: vet fmt-check docs-lint vet-custom staticcheck vulncheck

# Fails if any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Race-detect the concurrent packages: kernels, autodiff gradient
# sinks, data-parallel training, experiment fan-out. GOMAXPROCS is
# pinned above 1 so the worker pool actually fans out (on a 1-CPU
# machine the pool defaults to size 1 and every path runs inline,
# which would make this job vacuous).
race:
	GOMAXPROCS=4 $(GO) test -race $(RACE_PKGS)

# Full benchmark sweep (slow; regenerates every paper table).
bench:
	$(GO) test -bench=. -benchmem .

# Quick kernel benchmark: serial vs parallel matmul at 64/256/512.
bench-smoke:
	$(GO) test -run=NONE -bench='MatMul' -benchtime=1x .

# Inference fast-path benches with allocation counts: cached vs legacy
# beam search, pooled vs map Figure-4 codec, grad vs no-grad forward.
bench-infer:
	$(GO) test -run=NONE -bench='BeamWidth|Figure4Decoding|BeamSearchCached|BeamSearchLegacy|InferNoGrad' -benchmem -benchtime=1x .

# Machine-readable perf report: serving-path benchmarks plus the
# per-kernel precision roofline (GFLOP/s and streamed bytes per op at
# f64/f32/int8). CI uploads the artifact.
bench-roofline:
	$(GO) run ./cmd/mtmlf-bench -json BENCH_PR9.json

# Reduced-precision calibration gate: the f32 and int8 tiers must stay
# inside their q-error budgets and reproduce the f64 join orders on
# the deterministic smoke fleet (exits non-zero on violation).
calib-smoke:
	$(GO) run ./cmd/mtmlf-bench -calib

# End-to-end serving check: train a tiny full-model checkpoint, boot
# mtmlf-serve on a random port, curl every endpoint (including the
# typed-error path).
serve-smoke:
	./scripts/serve_smoke.sh

# End-to-end data-plane check: generate a tiny labeled corpus, retrain
# from it streaming / in-memory / 4-worker, assert the loss
# trajectories are bitwise identical. Leaves corpus-smoke.mtc for CI
# to upload.
corpus-smoke:
	./scripts/corpus_smoke.sh

# End-to-end fleet pretraining check: generate a tiny 3-DB fleet
# corpus with single-table sections, run Algorithm 1 from the artifact
# twice (streaming vs materialized), assert the loss trajectories and
# the saved shared checkpoints are bitwise identical. Leaves
# mla-smoke.mtc for CI to upload.
mla-smoke:
	./scripts/mla_smoke.sh

# End-to-end load check: train a tiny checkpoint, boot mtmlf-serve,
# drive it with mtmlf-loadgen at two concurrency levels with a hot
# reload mid-run, assert zero failed requests and a well-formed
# BENCH_PR6.json (left for CI to upload).
load-smoke:
	./scripts/load_smoke.sh

# Crash-recovery drill: kill -9 a snapshotting training run mid-epoch
# (twice, at 1 and 4 workers), resume under a supervisor loop, assert
# the final checkpoint and loss trajectory are bitwise identical to an
# uninterrupted run. Leaves resume-smoke.log for CI to upload.
resume-smoke:
	./scripts/crash_resume_smoke.sh >resume-smoke.log 2>&1 || { cat resume-smoke.log; exit 1; }
	@tail -n 3 resume-smoke.log

# Distributed-fleet drill: coordinator + 2 workers train `-mla` over
# the gradient-exchange plane, one worker dies by kill -9 mid-epoch
# (the fleet fail-stops), a supervisor relaunches everything with
# -resume, and the final checkpoint + loss trajectory must be bitwise
# identical to an uninterrupted single-process run. Leaves
# dist-smoke.log for CI to upload.
dist-smoke:
	./scripts/dist_smoke.sh >dist-smoke.log 2>&1 || { cat dist-smoke.log; exit 1; }
	@tail -n 3 dist-smoke.log

# Short fuzz pass over the artifact decoders: arbitrary bytes must
# error, never panic. Seeds cover both checkpoint versions, both
# corpus versions, and the torn-write/bit-flip corruption shapes.
fuzz-smoke:
	$(GO) test ./internal/mtmlf -run=NONE -fuzz=FuzzLoadModel -fuzztime=10s
	$(GO) test ./internal/corpus -run=NONE -fuzz=FuzzCorpusOpen -fuzztime=10s

# Every package must open with a godoc package comment ("// Package x"
# for libraries, "// Command x" for binaries) — the operator docs in
# docs/OPERATIONS.md lean on godoc being readable.
docs-lint:
	@bad=0; for d in internal/* cmd/*; do \
		[ -d "$$d" ] || continue; \
		grep -lE '^// (Package|Command) ' "$$d"/*.go >/dev/null 2>&1 || \
			{ echo "docs-lint: $$d has no package comment"; bad=1; }; \
	done; [ "$$bad" = 0 ]

ci: build vet vet-custom fmt-check test race bench-smoke bench-infer calib-smoke serve-smoke corpus-smoke mla-smoke load-smoke resume-smoke dist-smoke fuzz-smoke docs-lint
