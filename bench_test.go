// Package bench is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (see DESIGN.md §3 for the
// experiment index):
//
//	BenchmarkTable1QErrors        — Table 1 (card/cost q-errors on JOB-like workload)
//	BenchmarkTable2JoinOrder      — Table 2 (simulated time per join-order source)
//	BenchmarkTable3Transfer       — Table 3 (cross-DB transfer via MLA)
//	BenchmarkFigure2Pipeline      — Figure 2 (one I→F→S→T forward pass)
//	BenchmarkFigure4Decoding      — Figure 4 (tree↔seq decoding embeddings)
//	BenchmarkSequenceLossAblation — Section 5 (token-level vs Eq. 3 sequence loss)
//	BenchmarkBeamWidth            — Section 4.3 (beam width sweep)
//	BenchmarkMLAShuffling         — Section 3.3 ablation (MLA vs per-DB training)
//
// plus micro-benchmarks of the substrates. Each table bench prints the
// paper-style rows once; run with:
//
//	go test -bench=. -benchmem
package bench

import (
	"fmt"
	"sync"
	"testing"

	randpkg "math/rand"
	"mtmlf/internal/ag"
	"mtmlf/internal/cost"
	"mtmlf/internal/datagen"
	"mtmlf/internal/experiments"
	"mtmlf/internal/inferbench"
	"mtmlf/internal/metrics"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/nn"
	"mtmlf/internal/optimizer"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

// benchConfig is the experiment scale for the table benches: the same
// QuickConfig the mtmlf-bench CLI uses, so bench output and CLI output
// agree (each table takes tens of seconds).
func benchConfig() experiments.Config {
	return experiments.QuickConfig()
}

var printOnce sync.Map

func printTable(b *testing.B, key, s string) {
	if _, dup := printOnce.LoadOrStore(key, true); !dup {
		b.Logf("\n%s", s)
	}
}

// BenchmarkTable1QErrors regenerates Table 1: q-errors (median/max/
// mean) of PostgreSQL, Tree-LSTM, MTMLF-QO and single-task ablations.
func BenchmarkTable1QErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, "table1", res.String())
	}
}

// BenchmarkTable2JoinOrder regenerates Table 2: total simulated
// execution time under PostgreSQL, optimal, MTMLF-QO and
// MTMLF-JoinSel join orders.
func BenchmarkTable2JoinOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, "table2", res.String())
	}
}

// BenchmarkTable3Transfer regenerates Table 3: MLA pre-training on a
// generated fleet, transfer to a held-out database.
func BenchmarkTable3Transfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, "table3", res.String())
	}
}

// figure2Setup builds a trained-enough model and a labeled query for
// pipeline benchmarks (shared with the mtmlf-bench -json report via
// internal/inferbench so both surfaces measure the same workload).
func figure2Setup(b *testing.B) (*mtmlf.Model, *workload.LabeledQuery) {
	b.Helper()
	return inferbench.Setup()
}

// BenchmarkFigure2Pipeline times one full I→F→S→T forward pass (all
// three task heads) for a 4-table query, the dataflow of Figure 2.
func BenchmarkFigure2Pipeline(b *testing.B) {
	m, lq := figure2Setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := m.Represent(lq.Q, lq.Plan)
		_ = m.PredictLogCards(rep)
		_ = m.PredictLogCosts(rep)
		_ = m.JoinOrderFor(lq.Q, rep)
	}
}

// BenchmarkFigure4Decoding times the Section 4.1 tree↔sequence
// roundtrip on the paper's Figure 4 example, on the serving path's
// pooled codec (reused EmbeddingSet + NodeArena: zero steady-state
// allocations). BenchmarkFigure4DecodingLegacy is the map-based
// baseline the speedup in BENCH_PR2.json is computed against.
func BenchmarkFigure4Decoding(b *testing.B) { inferbench.Figure4Pooled()(b) }

// BenchmarkFigure4DecodingLegacy times the original map-allocating
// codec on the same roundtrip.
func BenchmarkFigure4DecodingLegacy(b *testing.B) { inferbench.Figure4Legacy()(b) }

// BenchmarkSequenceLossAblation compares token-level training against
// the Equation 3 sequence-level loss on identical data, reporting the
// resulting mean JOEU of each (the Section 5 design choice).
func BenchmarkSequenceLossAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := datagen.SyntheticIMDB(17, 0.05)
		gen := workload.NewGenerator(db, 18)
		wcfg := workload.DefaultConfig()
		wcfg.MaxTables = 4
		qs := gen.Generate(60, wcfg)
		train, _, test := workload.Split(qs, 0.8, 0.05)

		run := func(seqLevel bool) float64 {
			cfg := mtmlf.DefaultConfig()
			cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
			cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
			m := mtmlf.NewModel(cfg, db, 19)
			m.Feat.PretrainAll(gen, 15, 1, wcfg)
			m.TrainJoint(train, mtmlf.TrainOptions{Epochs: 4, Seed: 20, SeqLevelLoss: seqLevel})
			var joeus []float64
			for _, lq := range test {
				if len(lq.OptimalOrder) < 2 {
					continue
				}
				rep := m.Represent(lq.Q, lq.Plan)
				joeus = append(joeus, metrics.JOEU(m.JoinOrderFor(lq.Q, rep), lq.OptimalOrder))
			}
			return metrics.Summarize(joeus).Mean
		}
		tok := run(false)
		seq := run(true)
		printTable(b, "seqloss", fmt.Sprintf(
			"Section 5 ablation — mean JOEU:\n  token-level loss:    %.3f\n  sequence-level loss: %.3f\n", tok, seq))
	}
}

// BenchmarkBeamWidth sweeps the Section 4.3 beam width k and reports
// the decode latency scaling; the quality effect is reported once.
func BenchmarkBeamWidth(b *testing.B) {
	m, lq := figure2Setup(b)
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), inferbench.BeamSearchCached(m, lq, k))
	}
}

// BenchmarkBeamSearchCached vs BenchmarkBeamSearchLegacy is the
// tentpole inference comparison: KV-cached incremental decoding
// (encode memory once, extend each beam one token per step) against
// the full-prefix recompute that rebuilds the autodiff graph for the
// whole prefix at every step. Both return bitwise identical beams
// (TestBeamSearchCachedMatchesLegacy).
func BenchmarkBeamSearchCached(b *testing.B) {
	m, lq := figure2Setup(b)
	body := inferbench.BeamSearchCached(m, lq, 4)
	b.ResetTimer()
	body(b)
}

// BenchmarkBeamSearchLegacy times the pre-fast-path beam search.
func BenchmarkBeamSearchLegacy(b *testing.B) {
	m, lq := figure2Setup(b)
	body := inferbench.BeamSearchLegacy(m, lq, 4)
	b.ResetTimer()
	body(b)
}

// BenchmarkInferNoGrad compares one full (F)+(S)+heads forward pass in
// grad mode (autodiff graph built, fresh tensors per op) against the
// pooled no-grad evaluator. Outputs are bitwise identical
// (TestRepresentInferMatchesGrad).
func BenchmarkInferNoGrad(b *testing.B) {
	m, lq := figure2Setup(b)
	b.Run("grad", inferbench.InferGrad(m, lq))
	b.Run("nograd", inferbench.InferNoGrad(m, lq))
}

// BenchmarkMLAShuffling ablates Algorithm 1's cross-DB shuffling
// (Section 3.3): MLA-shuffled training vs training the same shared
// modules on each DB sequentially, measured by held-out join time.
func BenchmarkMLAShuffling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dgCfg := datagen.DefaultConfig()
		dgCfg.MinTables, dgCfg.MaxTables = 4, 5
		dgCfg.MinRows, dgCfg.MaxRows = 100, 300
		fleet := datagen.GenerateFleet(31, 3, dgCfg)
		trainDBs, testDB := fleet[:2], fleet[2]
		wcfg := workload.DefaultConfig()
		wcfg.MaxTables = 3
		opts := mtmlf.MLAOptions{
			QueriesPerDB: 15, SingleTablePerTable: 10, EncoderEpochs: 1,
			JointEpochs: 2, Workload: wcfg, Seed: 32,
		}
		cfg := mtmlf.DefaultConfig()
		cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
		cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1

		evalOn := func(shared *mtmlf.Shared) float64 {
			task := mtmlf.NewDBTask(shared, testDB, opts, 33)
			var t float64
			for _, lq := range task.Queries {
				if len(lq.OptimalOrder) < 2 {
					continue
				}
				ex := sqldb.NewExecutor(testDB, lq.Q)
				rep := task.Model.Represent(lq.Q, lq.Plan)
				t += cost.SimulatedTimeOrder(ex, task.Model.JoinOrderFor(lq.Q, rep))
			}
			return t
		}

		// Shuffled MLA.
		sharedA := mtmlf.NewShared(cfg, 34)
		if _, _, err := mtmlf.TrainMLA(sharedA, trainDBs, opts); err != nil {
			b.Fatal(err)
		}
		shuffled := evalOn(sharedA)

		// Sequential per-DB training (no cross-DB shuffling).
		sharedB := mtmlf.NewShared(cfg, 34)
		for di, db := range trainDBs {
			task := mtmlf.NewDBTask(sharedB, db, opts, 35+int64(di))
			task.Model.TrainJoint(task.Queries, mtmlf.TrainOptions{Epochs: opts.JointEpochs, Seed: 36})
		}
		sequential := evalOn(sharedB)
		printTable(b, "mla-shuffle", fmt.Sprintf(
			"Section 3.3 ablation — held-out join time (lower is better):\n  MLA shuffled:   %.0f\n  per-DB sequential: %.0f\n", shuffled, sequential))
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks
// ---------------------------------------------------------------------------

// BenchmarkMatMul64 times the hot tensor kernel at transformer scale
// (below the parallel threshold: this is the serial fast path).
func BenchmarkMatMul64(b *testing.B) {
	rng := randpkg.New(randpkg.NewSource(1))
	x := tensor.Rand(rng, 64, 64, 1)
	y := tensor.Rand(rng, 64, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMul(x, y)
	}
}

// benchMatMulN compares the serial and worker-pool kernels at one
// square size; the two must produce bitwise-equal outputs (asserted
// in internal/tensor tests), so this measures pure speedup.
func benchMatMulN(b *testing.B, n int) {
	rng := randpkg.New(randpkg.NewSource(1))
	x := tensor.Rand(rng, n, n, 1)
	y := tensor.Rand(rng, n, n, 1)
	b.Run("serial", func(b *testing.B) {
		defer tensor.SetParallelism(tensor.SetParallelism(1))
		for i := 0; i < b.N; i++ {
			_ = tensor.MatMul(x, y)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		defer tensor.SetParallelism(tensor.SetParallelism(0))
		for i := 0; i < b.N; i++ {
			_ = tensor.MatMul(x, y)
		}
	})
}

// BenchmarkMatMul256 is the headline multi-core kernel benchmark:
// 256x256x256 is large enough for row-sharding to pay for itself.
func BenchmarkMatMul256(b *testing.B) { benchMatMulN(b, 256) }

// BenchmarkMatMul512 shows kernel scaling one size up.
func BenchmarkMatMul512(b *testing.B) { benchMatMulN(b, 512) }

// BenchmarkMatMulBatchHeads times the fused per-head products the
// attention layers issue: many small matmuls in one pool dispatch.
func BenchmarkMatMulBatchHeads(b *testing.B) {
	rng := randpkg.New(randpkg.NewSource(1))
	const heads = 8
	var as, bs []*tensor.Tensor
	for h := 0; h < heads; h++ {
		as = append(as, tensor.Rand(rng, 64, 32, 1))
		bs = append(bs, tensor.Rand(rng, 32, 64, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMulBatch(as, bs)
	}
}

// BenchmarkTrainJointStep times one data-parallel minibatch step
// (forward+backward on every example plus the ordered reduction and
// Adam update) at 1 worker vs the full pool.
func BenchmarkTrainJointStep(b *testing.B) {
	db := datagen.SyntheticIMDB(1, 0.05)
	cfg := mtmlf.DefaultConfig()
	cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
	cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
	gen := workload.NewGenerator(db, 2)
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 4
	qs := gen.Generate(8, wcfg)
	for _, workers := range []int{1, 0} {
		name := "workers=all"
		if workers == 1 {
			name = "workers=1"
		}
		b.Run(name, func(b *testing.B) {
			m := mtmlf.NewModel(cfg, db, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.TrainJoint(qs, mtmlf.TrainOptions{
					Epochs: 1, Seed: 3, BatchSize: len(qs), Workers: workers,
				})
			}
		})
	}
}

// BenchmarkEncoderForward times one Trans_Share-sized encoder pass.
func BenchmarkEncoderForward(b *testing.B) {
	rng := randpkg.New(randpkg.NewSource(2))
	enc := nn.NewEncoder(rng, 32, 4, 3)
	x := ag.Const(tensor.Rand(rng, 12, 32, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.Forward(x, nil)
	}
}

// BenchmarkEncoderTrainStep times a full forward+backward+Adam step.
func BenchmarkEncoderTrainStep(b *testing.B) {
	rng := randpkg.New(randpkg.NewSource(3))
	enc := nn.NewEncoder(rng, 32, 4, 3)
	head := nn.NewLinear(rng, 32, 1)
	params := nn.CollectParams(enc, head)
	opt := nn.NewAdam(params, 1e-3)
	x := ag.Const(tensor.Rand(rng, 12, 32, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.ZeroGrad()
		out := head.Forward(enc.Forward(x, nil))
		loss := ag.MeanAll(ag.Mul(out, out))
		loss.Backward()
		opt.Step()
	}
}

// BenchmarkExecutorJoin times exact multi-way join counting on the
// synthetic IMDB, the labeling oracle of every experiment.
func BenchmarkExecutorJoin(b *testing.B) {
	db := datagen.SyntheticIMDB(4, 0.1)
	q := &sqldb.Query{
		Tables: []string{"title", "cast_info", "name"},
		Joins: []sqldb.JoinEdge{
			{T1: "title", C1: "id", T2: "cast_info", C2: "movie_id"},
			{T1: "name", C1: "id", T2: "cast_info", C2: "person_id"},
		},
		Filters: []sqldb.Filter{
			{Table: "title", Col: "production_year", Op: sqldb.OpGt, Val: sqldb.IntVal(1950)},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := sqldb.NewExecutor(db, q)
		_ = ex.Cardinality()
	}
}

// BenchmarkExactDP times the ECQO-substitute exact optimizer on a
// 6-table query (the expensive label of the JoinSel task).
func BenchmarkExactDP(b *testing.B) {
	db := datagen.SyntheticIMDB(5, 0.05)
	gen := workload.NewGenerator(db, 6)
	wcfg := workload.DefaultConfig()
	wcfg.MinTables, wcfg.MaxTables = 6, 6
	wcfg.WithOptimal = false
	q := gen.GenQuery(wcfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := sqldb.NewExecutor(db, q)
		if _, err := optimizer.BestLeftDeep(q, optimizer.TrueCards{Ex: ex}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadLabeling times end-to-end query generation +
// ground-truth labeling (the data pipeline of Section 6.1).
func BenchmarkWorkloadLabeling(b *testing.B) {
	db := datagen.SyntheticIMDB(7, 0.05)
	gen := workload.NewGenerator(db, 8)
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.Generate(1, wcfg)
	}
}

// BenchmarkDataGeneration times the Section 6.2 pipeline.
func BenchmarkDataGeneration(b *testing.B) {
	cfg := datagen.DefaultConfig()
	cfg.MinRows, cfg.MaxRows = 200, 600
	for i := 0; i < b.N; i++ {
		rng := randpkg.New(randpkg.NewSource(int64(i)))
		_ = datagen.GenerateDB(rng, "bench", cfg)
	}
}
