// Command mtmlf-bench regenerates the paper's evaluation tables.
//
// Usage:
//
//	mtmlf-bench -exp table1|table2|table3|all [-scale quick|full] [-seed N]
//	            [-workers 0]
//
// -workers sizes the shared worker pool (0 = all cores): independent
// trials within each table, fleet generation, and the tensor kernels
// all run on it.
//
// At -scale quick each table finishes in seconds; -scale full runs a
// larger protocol (minutes). Absolute numbers depend on the synthetic
// substrate; EXPERIMENTS.md discusses the expected shape versus the
// paper's values.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mtmlf/internal/experiments"
	"mtmlf/internal/tensor"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, table2, table3, or all")
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "worker pool size (0 = all cores)")
	flag.Parse()
	tensor.SetParallelism(*workers)

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig()
	case "full":
		cfg = experiments.FullConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed

	run := func(name string, f func(experiments.Config) (fmt.Stringer, error)) {
		start := time.Now()
		res, err := f(cfg)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	any := false
	if want("table1") {
		any = true
		run("table1", func(c experiments.Config) (fmt.Stringer, error) { return experiments.RunTable1(c) })
	}
	if want("table2") {
		any = true
		run("table2", func(c experiments.Config) (fmt.Stringer, error) { return experiments.RunTable2(c) })
	}
	if want("table3") {
		any = true
		run("table3", func(c experiments.Config) (fmt.Stringer, error) { return experiments.RunTable3(c) })
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
