// Command mtmlf-bench regenerates the paper's evaluation tables and
// emits machine-readable perf reports for the inference fast path.
//
// Usage:
//
//	mtmlf-bench -exp table1|table2|table3|all [-scale quick|full] [-seed N]
//	            [-workers 0]
//	mtmlf-bench -json BENCH_PR9.json
//	mtmlf-bench -calib
//
// -workers sizes the shared worker pool (0 = all cores): independent
// trials within each table, fleet generation, and the tensor kernels
// all run on it.
//
// -json skips the tables and instead measures the key serving-path
// benchmarks (cached vs legacy beam search across beam widths, the
// pooled vs map Figure-4 codec, grad vs no-grad forward) plus the
// per-kernel precision roofline (effective GFLOP/s and streamed
// bytes per op for each kernel at f64/f32/int8 — see roofline.go),
// writing ns/op, allocs/op, B/op and the speedup ratios to the given
// file — the artifact CI uploads so the perf trajectory accumulates.
//
// -calib runs the reduced-precision calibration harness on the
// deterministic smoke fleet and exits non-zero if any lowered tier
// breaks its q-error budget or changes a join order (internal/calib).
//
// At -scale quick each table finishes in seconds; -scale full runs a
// larger protocol (minutes). Absolute numbers depend on the synthetic
// substrate; EXPERIMENTS.md discusses the expected shape versus the
// paper's values.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mtmlf/internal/benchjson"
	"mtmlf/internal/calib"
	"mtmlf/internal/experiments"
	"mtmlf/internal/inferbench"
	"mtmlf/internal/tensor"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, table2, table3, or all")
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "worker pool size (0 = all cores)")
	jsonPath := flag.String("json", "", "write the inference fast-path benchmark report to this file and exit")
	runCalib := flag.Bool("calib", false, "run the reduced-precision calibration harness and exit (non-zero on budget violation)")
	flag.Parse()
	tensor.SetParallelism(*workers)

	if *runCalib {
		m, qs := calib.SmokeFleet(7, 12)
		failed := false
		for _, r := range calib.RunAll(m, qs) {
			fmt.Println(r.String())
			if !r.OK() {
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	if *jsonPath != "" {
		if err := runJSONBench(*jsonPath, *workers); err != nil {
			log.Fatalf("json bench: %v", err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
		return
	}

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig()
	case "full":
		cfg = experiments.FullConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed

	run := func(name string, f func(experiments.Config) (fmt.Stringer, error)) {
		start := time.Now()
		res, err := f(cfg)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	any := false
	if want("table1") {
		any = true
		run("table1", func(c experiments.Config) (fmt.Stringer, error) { return experiments.RunTable1(c) })
	}
	if want("table2") {
		any = true
		run("table2", func(c experiments.Config) (fmt.Stringer, error) { return experiments.RunTable2(c) })
	}
	if want("table3") {
		any = true
		run("table3", func(c experiments.Config) (fmt.Stringer, error) { return experiments.RunTable3(c) })
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// runJSONBench measures the serving-path benchmark suite plus the
// per-kernel roofline and writes the report. The serving-path scenario
// bodies live in internal/inferbench and are shared with the root `go
// test -bench` harness, so CLI numbers and bench numbers describe the
// same workload by construction.
func runJSONBench(path string, workers int) error {
	m, lq := inferbench.Setup()
	report := benchjson.NewReport("PR9 reduced-precision inference")
	// Record the resolved pool size, not the raw flag: -workers 0 means
	// "all cores", and the report should say how many that was.
	if workers <= 0 {
		report.Workers = tensor.Parallelism()
	} else {
		report.Workers = workers
	}

	// Beam search: cached incremental vs legacy full-prefix recompute.
	for _, k := range []int{1, 2, 4, 8} {
		cached := fmt.Sprintf("beam_width/k=%d/cached", k)
		legacy := fmt.Sprintf("beam_width/k=%d/legacy", k)
		report.Measure(cached, inferbench.BeamSearchCached(m, lq, k))
		report.Measure(legacy, inferbench.BeamSearchLegacy(m, lq, k))
		if err := report.AddSpeedup(fmt.Sprintf("beam_width/k=%d", k), legacy, cached); err != nil {
			return err
		}
	}

	// Figure 4 tree↔seq roundtrip: pooled codec vs map codec.
	report.Measure("figure4_decoding/pooled", inferbench.Figure4Pooled())
	report.Measure("figure4_decoding/legacy", inferbench.Figure4Legacy())
	if err := report.AddSpeedup("figure4_decoding", "figure4_decoding/legacy", "figure4_decoding/pooled"); err != nil {
		return err
	}

	// Full forward + heads: grad-tracked vs pooled no-grad.
	report.Measure("infer/grad", inferbench.InferGrad(m, lq))
	report.Measure("infer/nograd", inferbench.InferNoGrad(m, lq))
	if err := report.AddSpeedup("infer_no_grad", "infer/grad", "infer/nograd"); err != nil {
		return err
	}

	// Per-kernel roofline across the precision tiers (PR9).
	if err := addRoofline(report); err != nil {
		return err
	}

	return report.Write(path)
}
