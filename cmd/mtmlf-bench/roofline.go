// Per-kernel roofline measurements for the reduced-precision tier:
// each entry records effective GFLOP/s and the bytes the kernel
// streams per op, per precision per size, so the BENCH trajectory
// shows where each kernel sits between the memory-bandwidth and
// compute ceilings — and how far the f32/int8 tiers move it.

package main

import (
	"fmt"
	"testing"

	"mtmlf/internal/benchjson"
	"mtmlf/internal/inferbench"
	"mtmlf/internal/nn"
	"mtmlf/internal/tensor"
)

// fill writes a deterministic, well-conditioned pattern (values in
// roughly [-1, 1], no denormals) so every precision multiplies the
// same magnitudes.
func fillF64(d []float64) {
	s := uint64(0x9e3779b97f4a7c15)
	for i := range d {
		s = s*6364136223846793005 + 1442695040888963407
		d[i] = float64(int64(s>>33))/float64(1<<30) - 1
	}
}

func fillF32(d []float32) {
	s := uint64(0x9e3779b97f4a7c15)
	for i := range d {
		s = s*6364136223846793005 + 1442695040888963407
		d[i] = float32(float64(int64(s>>33))/float64(1<<30) - 1)
	}
}

// rooflineMatMulSizes are the square matmul shapes measured per tier.
// 64 sits under the serial-dispatch threshold, 256 and 512 are the
// shapes the f32-vs-f64 acceptance speedups are read from.
var rooflineMatMulSizes = []int{64, 256, 512}

// addRoofline appends the per-kernel roofline section to the report:
// matmul across all three tiers, transposed-B matmul, and the
// row-wise epilogue kernels (bias add, softmax, layernorm, GELU) at
// f64 and f32. Every kernel is measured serially (w1) so the numbers
// are per-core kernel quality, not pool scaling; the matmul
// acceptance shapes are re-measured at the configured pool size (wN)
// to show the sharded ceiling.
func addRoofline(r *benchjson.Report) error {
	restore := tensor.Parallelism()
	defer tensor.SetParallelism(restore)

	measureMatMuls := func(workers int) {
		tensor.SetParallelism(workers)
		eff := tensor.Parallelism()
		if workers != 1 && eff == 1 {
			return // single-core: the wN pass would duplicate the w1 entries
		}
		wtag := fmt.Sprintf("w%d", eff)
		for _, n := range rooflineMatMulSizes {
			if workers != 1 && n < 256 {
				continue // below the parallel dispatch threshold anyway
			}
			flops := int64(2) * int64(n) * int64(n) * int64(n)

			a64, b64, out64 := tensor.New(n, n), tensor.New(n, n), tensor.New(n, n)
			fillF64(a64.Data)
			fillF64(b64.Data)
			r.MeasureKernel(fmt.Sprintf("roofline/matmul/%d/f64/%s", n, wtag), "f64",
				flops, int64(3*8*n*n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						clear(out64.Data)
						tensor.MatMulInto(a64, b64, out64)
					}
				})
			r.MeasureKernel(fmt.Sprintf("roofline/transb/%d/f64/%s", n, wtag), "f64",
				flops, int64(3*8*n*n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						tensor.MatMulTransBInto(a64, b64, out64)
					}
				})

			a32, b32, out32 := tensor.NewF32(n, n), tensor.NewF32(n, n), tensor.NewF32(n, n)
			fillF32(a32.Data)
			fillF32(b32.Data)
			r.MeasureKernel(fmt.Sprintf("roofline/matmul/%d/f32/%s", n, wtag), "f32",
				flops, int64(3*4*n*n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						clear(out32.Data)
						tensor.MatMulF32Into(a32, b32, out32)
					}
				})
			r.MeasureKernel(fmt.Sprintf("roofline/transb/%d/f32/%s", n, wtag), "f32",
				flops, int64(3*4*n*n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						tensor.MatMulTransBF32Into(a32, b32, out32)
					}
				})

			w8 := tensor.QuantizeLinear(b64)
			bias := tensor.NewF32(1, n)
			qbuf := make([]int8, n*n)
			// int8 streams the quantized weights (1 B/element) plus f32
			// activations and output; the dynamic row quantization is
			// part of the measured op, as it is in serving.
			r.MeasureKernel(fmt.Sprintf("roofline/matmul/%d/int8/%s", n, wtag), "int8",
				flops, int64((1+4+4)*n*n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						tensor.MatMulInt8Into(a32, w8, bias, out32, qbuf)
					}
				})
		}
	}

	measureMatMuls(1)
	if restore > 1 {
		measureMatMuls(restore)
	}
	tensor.SetParallelism(1)

	// Row-wise epilogue kernels at the serving activation shape.
	const en = 256
	eflops := map[string]int64{ // nominal flops/element, for relative placement
		"addbias":   1,
		"softmax":   5,
		"layernorm": 8,
		"gelu":      10,
	}
	a64, g64, out64 := tensor.New(en, en), tensor.New(1, en), tensor.New(en, en)
	fillF64(a64.Data)
	fillF64(g64.Data)
	beta64 := tensor.New(1, en)
	a32, g32, out32 := tensor.NewF32(en, en), tensor.NewF32(1, en), tensor.NewF32(en, en)
	fillF32(a32.Data)
	fillF32(g32.Data)
	beta32 := tensor.NewF32(1, en)
	ew := func(kernel string, f64body, f32body func()) {
		r.MeasureKernel(fmt.Sprintf("roofline/%s/%d/f64/w1", kernel, en), "f64",
			eflops[kernel]*en*en, int64(2*8*en*en), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					f64body()
				}
			})
		r.MeasureKernel(fmt.Sprintf("roofline/%s/%d/f32/w1", kernel, en), "f32",
			eflops[kernel]*en*en, int64(2*4*en*en), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					f32body()
				}
			})
	}
	ew("addbias",
		func() { tensor.AddBiasInto(a64, g64, out64) },
		func() { tensor.AddBiasF32Into(a32, g32, out32) })
	ew("softmax",
		func() { tensor.SoftmaxRowsInto(a64, out64) },
		func() { tensor.SoftmaxRowsF32Into(a32, out32) })
	ew("layernorm",
		func() { tensor.LayerNormRowsInto(a64, g64, beta64, 1e-5, out64) },
		func() { tensor.LayerNormRowsF32Into(a32, g32, beta32, 1e-5, out32) })
	ew("gelu",
		func() { tensor.GELUInto(a64, out64) },
		func() { tensor.GELUF32Into(a32, out32) })

	// Resident model bytes per tier (capacity entries: DataBytesPerOp
	// is the replica size, no arithmetic measured). The model is the
	// shared inferbench serving configuration.
	m, _ := inferbench.Setup()
	r.Entries = append(r.Entries,
		benchjson.Entry{Name: "model_bytes/f64", Precision: "f64",
			DataBytesPerOp: int64(m.ParamBytes())},
		benchjson.Entry{Name: "model_bytes/f32", Precision: "f32",
			DataBytesPerOp: int64(m.Lower(nn.PrecisionF32).ParamBytes())},
		benchjson.Entry{Name: "model_bytes/int8", Precision: "int8",
			DataBytesPerOp: int64(m.Lower(nn.PrecisionInt8).ParamBytes())},
	)

	// The acceptance speedups: f32 matmul vs f64 at the serial
	// acceptance shapes.
	for _, n := range []int{256, 512} {
		if err := r.AddSpeedup(
			fmt.Sprintf("roofline/matmul/%d/f32_vs_f64", n),
			fmt.Sprintf("roofline/matmul/%d/f64/w1", n),
			fmt.Sprintf("roofline/matmul/%d/f32/w1", n),
		); err != nil {
			return err
		}
	}
	return nil
}
