// Command mtmlf-datagen runs the paper's Section 6.2 data generation
// pipeline. By default it prints a summary of each generated database:
// tables, row counts, fact/dimension roles, and the join schema. With
// -out it becomes the corpus builder of the data plane: each database
// is written to a versioned on-disk corpus (internal/corpus) together
// with a pre-labeled workload (true cardinalities, costs, and optimal
// join orders), produced in deterministic shards on the worker pool —
// the artifact mtmlf-train -corpus trains from without regenerating
// or relabeling anything.
//
// Usage:
//
//	mtmlf-datagen [-n 11] [-seed 1] [-minrows 200] [-maxrows 1500]
//	              [-workers 0]
//	              [-out corpus.mtc] [-queries 48] [-shard 16]
//	              [-maxtables 6] [-imdb] [-scale 0.06]
//	              [-single-table 0]
//
// -workers sizes the worker pool that generates databases and
// workload shards concurrently (0 = all cores); the fleet AND the
// labeled corpus are identical at any size. -imdb replaces the
// synthetic fleet with the single 21-table synthetic IMDB database.
//
// -single-table N switches corpus generation into fleet-MLA mode: for
// each database the corpus additionally stores a v2 single-table
// section of N labeled encoder pre-training queries per table, and
// the multi-table workload is generated with the Algorithm 1 seed
// scheme (mtmlf.GenMLAData: per-DB task seed, single-table draws
// first, then -queries multi-table examples from the same rng
// stream). A corpus written this way is the complete fleet
// pretraining artifact: `mtmlf-train -mla -corpus` trains the shared
// (S)+(T) modules from it bitwise-identically to a live in-memory
// TrainMLA run, skipping both workload labeling and the live (F)
// pre-training pass.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"mtmlf/internal/catalog"
	"mtmlf/internal/ckptio"
	"mtmlf/internal/corpus"
	"mtmlf/internal/datagen"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/parallel"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

func main() {
	n := flag.Int("n", 11, "number of databases to generate")
	seed := flag.Int64("seed", 1, "random seed")
	minRows := flag.Int("minrows", 0, "override minimum rows per table")
	maxRows := flag.Int("maxrows", 0, "override maximum rows per table")
	workers := flag.Int("workers", 0, "worker pool size (0 = all cores)")
	out := flag.String("out", "", "write a labeled corpus to this file")
	queries := flag.Int("queries", 48, "labeled queries per database (with -out)")
	shard := flag.Int("shard", workload.DefaultShardSize, "workload generation shard size (with -out)")
	maxTables := flag.Int("maxtables", 0, "override max tables joined per query (with -out)")
	imdb := flag.Bool("imdb", false, "generate the synthetic IMDB database instead of a fleet")
	scale := flag.Float64("scale", 0.06, "synthetic IMDB scale factor (with -imdb)")
	singleTable := flag.Int("single-table", 0, "with -out: store N single-table queries per table (corpus v2 fleet-MLA mode)")
	flag.Parse()
	tensor.SetParallelism(*workers)

	cfg := datagen.DefaultConfig()
	if *minRows > 0 {
		cfg.MinRows = *minRows
	}
	if *maxRows > 0 {
		cfg.MaxRows = *maxRows
	}
	var fleet []*sqldb.DB
	if *imdb {
		fleet = []*sqldb.DB{datagen.SyntheticIMDB(*seed, *scale)}
	} else {
		fleet = datagen.GenerateFleet(*seed, *n, cfg)
	}
	for _, db := range fleet {
		fmt.Printf("=== %s: %d tables (%d fact) ===\n", db.Name, len(db.Tables), len(db.FactTables))
		facts := map[string]bool{}
		for _, f := range db.FactTables {
			facts[f] = true
		}
		for _, t := range db.Tables {
			role := "dim "
			if facts[t.Name] {
				role = "fact"
			}
			fmt.Printf("  %s %-8s %6d rows, %d columns\n", role, t.Name, t.NumRows(), len(t.Columns))
		}
		fmt.Println("  join schema:")
		for _, e := range db.Edges {
			fmt.Printf("    %s\n", e)
		}
		fmt.Println()
	}
	if *out == "" {
		return
	}

	// Corpus mode: label a workload per database and stream everything
	// to disk.
	wcfg := workload.DefaultConfig()
	if *maxTables > 0 {
		wcfg.MaxTables = *maxTables
	}
	shardSize := *shard
	if *singleTable > 0 {
		// Fleet-MLA generation is one rng stream per DB, not sharded.
		shardSize = 0
		fmt.Printf("fleet-MLA mode: per-DB single-stream generation (-shard not used), %d single-table queries/table\n", *singleTable)
	}
	meta := corpus.Meta{
		Seed:      *seed,
		ShardSize: shardSize,
		Note: fmt.Sprintf("mtmlf-datagen: %d dbs, %d queries/db, %d single-table/table, datagen %+v, workload %+v",
			len(fleet), *queries, *singleTable, cfg, wcfg),
	}
	if *singleTable > 0 {
		// Echo the MLA generation parameters so training runs can
		// reproduce the live fallback generation exactly.
		meta.SingleTablePerTable = *singleTable
		meta.MLAWorkload = wcfg
	}
	start := time.Now()
	// The corpus is committed atomically (temp file + fsync + rename):
	// a crash or failure mid-generation leaves no torn artifact at -out.
	err := ckptio.WriteFileAtomic(*out, func(f io.Writer) error {
		w, err := corpus.NewWriter(f, meta)
		if err != nil {
			return err
		}
		return fillCorpus(w, fleet, wcfg, *seed, *queries, *shard, *singleTable)
	})
	if err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote corpus %s: %d databases, %d examples each, %d bytes, %v total\n",
		*out, len(fleet), *queries, fi.Size(), time.Since(start).Round(time.Millisecond))
}

// fillCorpus streams the fleet's schemas and labeled workloads into w
// and closes it.
func fillCorpus(w *corpus.Writer, fleet []*sqldb.DB, wcfg workload.Config, seed int64, queries, shard, singleTable int) error {
	if singleTable > 0 {
		// Fleet-MLA mode: per-DB single-table sections + the Algorithm 1
		// workload, generated DB-parallel on the pool, written in order.
		mlaOpts := mtmlf.MLAOptions{
			QueriesPerDB:        queries,
			SingleTablePerTable: singleTable,
			Workload:            wcfg,
			Seed:                seed,
		}
		sts := make([][]workload.TableWorkload, len(fleet))
		exs := make([][]*workload.LabeledQuery, len(fleet))
		parallel.For(len(fleet), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sts[i], exs[i] = mtmlf.GenMLAData(catalog.NewMemory(fleet[i]), mlaOpts, i)
			}
		})
		for i, db := range fleet {
			if err := w.BeginDB(db); err != nil {
				return err
			}
			if err := w.WriteSingleTable(sts[i]); err != nil {
				return err
			}
			for _, lq := range exs[i] {
				if err := w.AppendExample(lq); err != nil {
					return err
				}
			}
			nst := 0
			for _, tw := range sts[i] {
				nst += len(tw.Queries)
			}
			fmt.Printf("labeled %s: %d examples + %d single-table queries\n", db.Name, len(exs[i]), nst)
		}
		return w.Close()
	}
	for i, db := range fleet {
		t0 := time.Now()
		if err := w.BeginDB(db); err != nil {
			return err
		}
		// The per-DB workload seed is offset the same way GenerateFleet
		// offsets database seeds, so every (database, workload) pair is
		// reproducible from the master seed alone.
		qseed := seed + 1000 + int64(i)*7919
		examples := workload.GenerateSharded(catalog.NewMemory(db), qseed, queries, shard, wcfg)
		for _, lq := range examples {
			if err := w.AppendExample(lq); err != nil {
				return err
			}
		}
		fmt.Printf("labeled %s: %d examples in %v\n", db.Name, len(examples), time.Since(t0).Round(time.Millisecond))
	}
	return w.Close()
}
