// Command mtmlf-datagen runs the paper's Section 6.2 data generation
// pipeline and prints a summary of each generated database: tables,
// row counts, fact/dimension roles, and the join schema.
//
// Usage:
//
//	mtmlf-datagen [-n 11] [-seed 1] [-minrows 200] [-maxrows 1500]
//	              [-workers 0]
//
// -workers sizes the worker pool that generates databases
// concurrently (0 = all cores); the fleet is identical at any size.
package main

import (
	"flag"
	"fmt"

	"mtmlf/internal/datagen"
	"mtmlf/internal/tensor"
)

func main() {
	n := flag.Int("n", 11, "number of databases to generate")
	seed := flag.Int64("seed", 1, "random seed")
	minRows := flag.Int("minrows", 0, "override minimum rows per table")
	maxRows := flag.Int("maxrows", 0, "override maximum rows per table")
	workers := flag.Int("workers", 0, "worker pool size (0 = all cores)")
	flag.Parse()
	tensor.SetParallelism(*workers)

	cfg := datagen.DefaultConfig()
	if *minRows > 0 {
		cfg.MinRows = *minRows
	}
	if *maxRows > 0 {
		cfg.MaxRows = *maxRows
	}
	fleet := datagen.GenerateFleet(*seed, *n, cfg)
	for _, db := range fleet {
		fmt.Printf("=== %s: %d tables (%d fact) ===\n", db.Name, len(db.Tables), len(db.FactTables))
		facts := map[string]bool{}
		for _, f := range db.FactTables {
			facts[f] = true
		}
		for _, t := range db.Tables {
			role := "dim "
			if facts[t.Name] {
				role = "fact"
			}
			fmt.Printf("  %s %-8s %6d rows, %d columns\n", role, t.Name, t.NumRows(), len(t.Columns))
		}
		fmt.Println("  join schema:")
		for _, e := range db.Edges {
			fmt.Printf("    %s\n", e)
		}
		fmt.Println()
	}
}
