// Command mtmlf-loadgen is the production load harness for
// mtmlf-serve: it drives /estimate/card, /estimate/cost, and
// /joinorder with a configurable traffic mix and Zipf-skewed query
// popularity, in closed-loop (fixed concurrency) or open-loop (fixed
// arrival rate) mode, for a fixed duration per level, and reports
// HDR-style latency histograms both as a human table and as load
// entries in a benchjson report (BENCH_PR6.json by convention).
//
// The query pool is either synthesized against the same schema flags
// the server was booted with (-seed/-scale, the default) or replayed
// from a corpus artifact (-pool-corpus/-pool-db) — the very queries
// the served checkpoint was trained on.
//
// A comma list of concurrency levels (-levels 8,32) runs back to
// back, one report entry set per level, so a single invocation
// produces the two-point capacity curve the BENCH trajectory wants.
// -reload-after issues a hot checkpoint reload mid-run and fails the
// invocation if the swap (or any in-flight request around it)
// fails — the zero-downtime-reload drill.
//
// Exit status is non-zero on: unreachable target, any endpoint with
// fewer than -min-ok successes at any level, more than -max-errors
// failed requests overall, or a failed mid-run reload. That makes the
// CLI its own smoke-test assertion (see make load-smoke).
//
// Usage:
//
//	mtmlf-serve -checkpoint model.ckpt -addr 127.0.0.1:8080 &
//	mtmlf-loadgen -target http://127.0.0.1:8080 -duration 10s -levels 8,32 \
//	    -mix card=50,cost=30,joinorder=20 -zipf 1.2 -json BENCH_PR6.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"mtmlf/internal/benchjson"
	"mtmlf/internal/datagen"
	"mtmlf/internal/loadgen"
)

func main() {
	target := flag.String("target", "", "base URL of a running mtmlf-serve, e.g. http://127.0.0.1:8080 (required)")
	duration := flag.Duration("duration", 10*time.Second, "run length per concurrency level")
	levels := flag.String("levels", "8,32", "comma-separated closed-loop concurrency levels, run back to back")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in QPS (overrides -levels; one run)")
	mixFlag := flag.String("mix", "card=50,cost=30,joinorder=20", "traffic mix as endpoint=weight terms")
	zipf := flag.Float64("zipf", 1.2, "Zipf skew over the query pool (>1 skews; <=1 uniform)")
	poolSize := flag.Int("pool", 256, "query pool size")
	seed := flag.Int64("seed", 1, "pool seed; with -scale, must describe the served database")
	scale := flag.Float64("scale", 0.06, "database scale for the synthetic pool")
	poolTables := flag.Int("pool-tables", 4, "max joined tables per pool query (0 = generator default)")
	poolCorpus := flag.String("pool-corpus", "", "derive the pool from this corpus artifact instead of synthesizing")
	poolDB := flag.String("pool-db", "", "database name inside -pool-corpus (default: first)")
	deadlineMs := flag.Int("deadline-ms", 0, "send X-Deadline-Ms on every request (0 = none)")
	retries := flag.Int("retries", 0, "per-request retry budget for shed (429) responses, honoring Retry-After with capped backoff + jitter (0 = record sheds immediately)")
	reloadAfter := flag.Duration("reload-after", 0, "POST /reloadz this far into the first run (0 = never)")
	jsonOut := flag.String("json", "", "write a benchjson report with load entries to this path")
	appendOut := flag.Bool("append", false, "with -json: merge the new load entries into an existing report instead of overwriting (corrupt existing file is an error, not a clobber)")
	label := flag.String("label", "mtmlf-loadgen", "report label")
	minOK := flag.Uint64("min-ok", 0, "fail unless every driven endpoint has at least this many successes per level")
	maxErrors := flag.Uint64("max-errors", ^uint64(0), "fail if total failed requests (not shed/deadline) exceed this")
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "mtmlf-loadgen: -target is required")
		flag.Usage()
		os.Exit(2)
	}
	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}

	var pool *loadgen.Pool
	if *poolCorpus != "" {
		pool, err = loadgen.CorpusPool(*poolCorpus, *poolDB, *poolSize)
	} else {
		db := datagen.SyntheticIMDB(*seed, *scale)
		pool, err = loadgen.SyntheticPool(db, *seed+2000, *poolSize, *poolTables)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("query pool: %s (%d items, zipf %.2f)", pool.Source, len(pool.Items), *zipf)

	report := benchjson.NewReport(*label)
	var totalErrors uint64
	failed := false

	runOne := func(name string, concurrency int, rateQPS float64, reload time.Duration) {
		opts := loadgen.Options{
			BaseURL:     strings.TrimRight(*target, "/"),
			Mix:         mix,
			Duration:    *duration,
			Concurrency: concurrency,
			RateQPS:     rateQPS,
			ZipfS:       *zipf,
			Seed:        *seed,
			DeadlineMs:  *deadlineMs,
			ReloadAfter: reload,
			Retries:     *retries,
		}
		if rateQPS > 0 {
			log.Printf("== open loop: %.1f QPS for %s", rateQPS, *duration)
		} else {
			log.Printf("== closed loop: %d workers for %s", concurrency, *duration)
		}
		res, err := loadgen.Run(opts, pool)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(loadgen.FormatResult(res, mix))
		for _, e := range res.LoadEntries(name, concurrency, rateQPS, mix) {
			report.AddLoad(e)
			if e.OK < *minOK {
				log.Printf("FAIL: endpoint %s had %d successes at %s, want >= %d", e.Endpoint, e.OK, name, *minOK)
				failed = true
			}
			totalErrors += e.Errors
		}
		if res.Reload != nil && res.Reload.Issued && !res.Reload.OK {
			log.Printf("FAIL: mid-run reload: status=%d %s", res.Reload.Status, res.Reload.Detail)
			failed = true
		}
		if res.Reload != nil && res.Reload.Issued && res.Reload.OK {
			log.Printf("mid-run reload ok in %s", res.Reload.Latency.Round(time.Millisecond))
		}
	}

	if *rate > 0 {
		runOne(fmt.Sprintf("r%g", *rate), 0, *rate, *reloadAfter)
	} else {
		first := true
		for _, part := range strings.Split(*levels, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			c, err := strconv.Atoi(part)
			if err != nil || c <= 0 {
				log.Fatalf("mtmlf-loadgen: bad concurrency level %q", part)
			}
			reload := time.Duration(0)
			if first {
				reload = *reloadAfter
				first = false
			}
			runOne(fmt.Sprintf("c%d", c), c, 0, reload)
		}
	}

	if totalErrors > *maxErrors {
		log.Printf("FAIL: %d failed requests, allowed %d", totalErrors, *maxErrors)
		failed = true
	}
	if *jsonOut != "" {
		write := report.Write
		if *appendOut {
			write = report.AppendTo
		}
		if err := write(*jsonOut); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d new load entries)", *jsonOut, len(report.Load))
	}
	if failed {
		os.Exit(1)
	}
}
