// Command mtmlf-serve is the model server: it loads a versioned
// full-model checkpoint written by mtmlf-train -save (shared stack +
// task heads + join-order decoder + per-database featurizer), mounts
// the concurrent serving engine of internal/serve over the no-grad
// fast path, and exposes HTTP/JSON endpoints:
//
//	POST /estimate/card   cardinality of every plan node
//	POST /estimate/cost   cost of every plan node
//	POST /joinorder       legality-constrained beam-search join order
//	POST /reloadz         hot-swap the checkpoint from disk (no downtime)
//	GET  /healthz         readiness + served-database identity (503 while booting/draining)
//	GET  /livez           liveness: 200 whenever the process can answer at all
//	GET  /statsz          QPS, p50/p95/p99 latency, shed/deadline/reload/panic counters
//	GET  /example         a valid random request body to POST back
//
// The -seed/-scale flags must match the training run: the featurizer
// weights are tied to the database the checkpoint was trained on, and
// the loader verifies the table list before serving.
//
// Under load the server degrades predictably instead of queuing
// without bound: the admission queue is capped at -max-queue and a
// full queue sheds with 429 (Retry-After: 1); a request carrying an
// X-Deadline-Ms header that cannot be admitted in time is rejected
// with 504 before any model compute. See docs/OPERATIONS.md for
// sizing guidance and the full operator story.
//
// Hot reload: SIGHUP (or POST /reloadz) re-reads the -checkpoint path
// and atomically swaps the new weights in; in-flight micro-batches
// drain on the old model, so no request is dropped or served from a
// mix of old and new weights. Retrain → overwrite the checkpoint file
// → SIGHUP is the zero-downtime update loop.
//
// On SIGTERM/SIGINT the server shuts down gracefully: it flips
// /healthz to 503 so load balancers stop routing, stops accepting,
// drains in-flight requests and micro-batches, and flushes the final
// /statsz counters to the log before exiting. The same readiness
// split covers boot: the listener opens (and /livez answers 200)
// before the checkpoint is loaded, with /healthz at 503 until the
// model is actually servable.
//
// Usage:
//
//	mtmlf-train -queries 200 -save model.ckpt
//	mtmlf-serve -checkpoint model.ckpt -addr 127.0.0.1:8080
//	curl -s localhost:8080/example | curl -s -d @- localhost:8080/estimate/card
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"mtmlf/internal/datagen"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/nn"
	"mtmlf/internal/serve"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

// bootHandler serves the pre-load window between listen and the first
// successful checkpoint load: the process is alive (/livez 200) but
// not ready (everything else 503), so load balancers wait instead of
// routing to a server that cannot answer yet.
func bootHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Path == "/livez" {
			fmt.Fprintln(w, `{"status":"alive"}`)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"unavailable","error":"checkpoint not loaded yet"}`)
	})
}

// loadCheckpoint reads a full-model checkpoint from path against db.
// It is the boot loader and the hot-reload loader: /reloadz and
// SIGHUP call it again on the same path after the file is replaced.
func loadCheckpoint(path string, db *sqldb.DB) (*mtmlf.Model, *mtmlf.CheckpointInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return mtmlf.LoadModel(f, db)
}

func main() {
	ckpt := flag.String("checkpoint", "", "full-model checkpoint written by mtmlf-train -save (required); /reloadz and SIGHUP re-read this path")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	seed := flag.Int64("seed", 1, "database seed; must match the training run")
	scale := flag.Float64("scale", 0.06, "database scale; must match the training run")
	sessions := flag.Int("sessions", 0, "concurrent inference sessions (0 = GOMAXPROCS)")
	maxBatch := flag.Int("maxbatch", 8, "max requests fused per micro-batch (1 disables batching)")
	window := flag.Duration("window", 200*time.Microsecond, "micro-batch fill window")
	maxQueue := flag.Int("max-queue", 0, "admission queue depth; a full queue sheds with 429 (0 = 4x sessions)")
	workers := flag.Int("workers", 0, "tensor-kernel worker pool size (0 = all cores)")
	precision := flag.String("precision", "f64", "serving tier: f64 (reference), f32, or int8 (calibrated lowered replica; see DESIGN.md §9)")
	flag.Parse()

	if *ckpt == "" {
		fmt.Fprintln(os.Stderr, "mtmlf-serve: -checkpoint is required")
		flag.Usage()
		os.Exit(2)
	}
	prec, err := nn.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtmlf-serve: %v\n", err)
		os.Exit(2)
	}
	tensor.SetParallelism(*workers)

	// Listen before the checkpoint load so orchestrators can probe the
	// process the moment it exists: /livez answers 200 (alive) and
	// /healthz 503 (not ready) until the model is servable. The real
	// handler is swapped in atomically once the engine is up; `ready`
	// gates /healthz for the rest of the process lifetime.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	var ready atomic.Bool
	var handler atomic.Value // http.Handler: boot mux, then the serve handler
	handler.Store(bootHandler())
	srv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(http.Handler).ServeHTTP(w, r)
		}),
		// Slow-client guards; request bodies are additionally capped
		// by the handler (http.MaxBytesReader).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	db := datagen.SyntheticIMDB(*seed, *scale)
	model, info, err := loadCheckpoint(*ckpt, db)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded checkpoint %s: v%d, db %q (%d tables), dim %d",
		*ckpt, info.Version, info.DBName, len(info.Tables), info.Config.Dim)

	engine, err := serve.NewEngine(model, serve.Options{
		Sessions:    *sessions,
		MaxBatch:    *maxBatch,
		BatchWindow: *window,
		QueueDepth:  *maxQueue,
		// An HTTP front end sheds; blocking admission is for
		// in-process embedding (see serve.Options).
		ShedOverload: true,
		Precision:    prec,
	})
	if err != nil {
		log.Fatal(err)
	}
	if prec != nn.PrecisionF64 {
		log.Printf("serving at %s: %d resident model bytes (f64 reference would be %d)",
			prec, engine.LoweredParamBytes(), model.ParamBytes())
	}

	// reload re-reads the checkpoint path; shared by /reloadz and
	// SIGHUP. Engine.Reload does the atomic swap + compatibility check.
	reload := func() (*mtmlf.Model, error) {
		m, ri, err := loadCheckpoint(*ckpt, db)
		if err != nil {
			return nil, fmt.Errorf("reload %s: %w", *ckpt, err)
		}
		log.Printf("reloading checkpoint %s: v%d, db %q, dim %d",
			*ckpt, ri.Version, ri.DBName, ri.Config.Dim)
		return m, nil
	}

	// The example generator gives clients (and the smoke tests) valid
	// request bodies without knowing the synthetic schema.
	gen := workload.NewGenerator(db, *seed+1000)

	handler.Store(serve.NewHandlerConfig(engine, serve.HandlerConfig{
		Gen:    gen,
		Reload: reload,
		Ready:  ready.Load,
	}))
	ready.Store(true)
	// Logged (not just printed) so supervisors and the smoke script
	// can parse the bound port when -addr ends in :0. Printed only
	// once /healthz actually answers 200.
	log.Printf("serving on http://%s", ln.Addr())

	// SIGHUP hot-reloads the checkpoint without dropping traffic; it
	// gets its own channel so it never races the shutdown signals.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			m, err := reload()
			if err != nil {
				log.Printf("SIGHUP reload failed (still serving old weights): %v", err)
				continue
			}
			if err := engine.Reload(m); err != nil {
				log.Printf("SIGHUP reload rejected (still serving old weights): %v", err)
				continue
			}
			log.Printf("SIGHUP reload complete (%d total)", engine.Stats().Reloads)
		}
	}()

	// Graceful shutdown: on SIGTERM/SIGINT stop accepting, let active
	// HTTP requests (and with them the engine's in-flight
	// micro-batches) drain, then stop the session workers and flush
	// the final serving counters to the log — the numbers /statsz
	// would have reported had anyone asked in time.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		// Serve only returns on listener failure here; shutdown exits
		// through the signal arm.
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		// Fail readiness first: keepalive health probes racing the
		// drain see 503 and route elsewhere while in-flight work
		// finishes.
		ready.Store(false)
		log.Printf("shutdown signal received; draining in-flight requests")
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v (continuing)", err)
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		signal.Stop(hup)
		engine.Close() // waits for every in-flight micro-batch
		snap := engine.Stats()
		if b, err := json.Marshal(snap); err == nil {
			log.Printf("final statsz: %s", b)
		}
		log.Printf("drained: %d requests served, %d errors, %d shed, %d micro-batches; bye",
			snap.Requests, snap.Errors, snap.Shed, snap.Batches)
	}
}
