// Command mtmlf-serve is the model server: it loads a versioned
// full-model checkpoint written by mtmlf-train -save (shared stack +
// task heads + join-order decoder + per-database featurizer), mounts
// the concurrent serving engine of internal/serve over the no-grad
// fast path, and exposes HTTP/JSON endpoints:
//
//	POST /estimate/card   cardinality of every plan node
//	POST /estimate/cost   cost of every plan node
//	POST /joinorder       legality-constrained beam-search join order
//	GET  /healthz         liveness + served-database identity
//	GET  /statsz          QPS, p50/p99 latency, batching + pool reuse
//	GET  /example         a valid random request body to POST back
//
// The -seed/-scale flags must match the training run: the featurizer
// weights are tied to the database the checkpoint was trained on, and
// the loader verifies the table list before serving.
//
// On SIGTERM/SIGINT the server shuts down gracefully: it stops
// accepting, drains in-flight requests and micro-batches, and flushes
// the final /statsz counters to the log before exiting.
//
// Usage:
//
//	mtmlf-train -queries 200 -save model.ckpt
//	mtmlf-serve -checkpoint model.ckpt -addr 127.0.0.1:8080
//	curl -s localhost:8080/example | curl -s -d @- localhost:8080/estimate/card
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mtmlf/internal/datagen"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/serve"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

func main() {
	ckpt := flag.String("checkpoint", "", "full-model checkpoint written by mtmlf-train -save (required)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	seed := flag.Int64("seed", 1, "database seed; must match the training run")
	scale := flag.Float64("scale", 0.06, "database scale; must match the training run")
	sessions := flag.Int("sessions", 0, "concurrent inference sessions (0 = GOMAXPROCS)")
	maxBatch := flag.Int("maxbatch", 8, "max requests fused per micro-batch (1 disables batching)")
	window := flag.Duration("window", 200*time.Microsecond, "micro-batch fill window")
	workers := flag.Int("workers", 0, "tensor-kernel worker pool size (0 = all cores)")
	flag.Parse()

	if *ckpt == "" {
		fmt.Fprintln(os.Stderr, "mtmlf-serve: -checkpoint is required")
		flag.Usage()
		os.Exit(2)
	}
	tensor.SetParallelism(*workers)

	db := datagen.SyntheticIMDB(*seed, *scale)
	f, err := os.Open(*ckpt)
	if err != nil {
		log.Fatal(err)
	}
	model, info, err := mtmlf.LoadModel(f, db)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded checkpoint %s: v%d, db %q (%d tables), dim %d",
		*ckpt, info.Version, info.DBName, len(info.Tables), info.Config.Dim)

	engine, err := serve.NewEngine(model, serve.Options{
		Sessions:    *sessions,
		MaxBatch:    *maxBatch,
		BatchWindow: *window,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The example generator gives clients (and the smoke test) valid
	// request bodies without knowing the synthetic schema.
	gen := workload.NewGenerator(db, *seed+1000)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Handler: serve.NewHandler(engine, gen),
		// Slow-client guards; request bodies are additionally capped
		// by the handler (http.MaxBytesReader).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	// Logged (not just printed) so supervisors and the smoke script
	// can parse the bound port when -addr ends in :0.
	log.Printf("serving on http://%s", ln.Addr())

	// Graceful shutdown: on SIGTERM/SIGINT stop accepting, let active
	// HTTP requests (and with them the engine's in-flight
	// micro-batches) drain, then stop the session workers and flush
	// the final serving counters to the log — the numbers /statsz
	// would have reported had anyone asked in time.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		// Serve only returns on listener failure here; shutdown exits
		// through the signal arm.
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutdown signal received; draining in-flight requests")
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v (continuing)", err)
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		engine.Close() // waits for every in-flight micro-batch
		snap := engine.Stats()
		if b, err := json.Marshal(snap); err == nil {
			log.Printf("final statsz: %s", b)
		}
		log.Printf("drained: %d requests served, %d errors, %d micro-batches; bye",
			snap.Requests, snap.Errors, snap.Batches)
	}
}
