// Command mtmlf-train trains an MTMLF-QO model on the synthetic IMDB
// database, reports held-out q-errors and join-order quality, and can
// save / load model checkpoints — the artifact the paper's cloud
// provider would ship to users (Section 2.3).
//
// Usage:
//
//	mtmlf-train [-queries 200] [-epochs 6] [-scale 0.06] [-seed 1]
//	            [-save model.ckpt] [-load model.ckpt] [-shared-only]
//	            [-seqloss] [-workers 0] [-batch 1]
//
// -save writes a versioned FULL-model checkpoint: the shared stack,
// both task heads, the join-order decoder, and the per-database
// featurizer — everything mtmlf-serve needs. -shared-only restricts
// the save to the transferable (S)+(T) modules, the paper's
// cross-database transfer artifact (the featurizer of a new database
// pretrains locally). -load accepts either kind and loads what the
// file holds.
//
// -workers sizes the shared worker pool (0 = all cores) used by the
// tensor kernels and the data-parallel training loop; -batch sets the
// minibatch size (examples per Adam step). The training trajectory
// depends on -batch but is bitwise identical for every -workers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mtmlf/internal/datagen"
	"mtmlf/internal/metrics"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

func main() {
	queries := flag.Int("queries", 200, "training workload size")
	epochs := flag.Int("epochs", 6, "joint training epochs")
	scale := flag.Float64("scale", 0.06, "synthetic IMDB scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	savePath := flag.String("save", "", "save a trained model checkpoint to this file")
	loadPath := flag.String("load", "", "load a checkpoint (full or shared-only) before training")
	sharedOnly := flag.Bool("shared-only", false, "save only the transferable (S)+(T) modules (cross-DB transfer artifact)")
	seqLoss := flag.Bool("seqloss", false, "use the Equation 3 sequence-level join-order loss")
	workers := flag.Int("workers", 0, "worker pool size for kernels and data-parallel training (0 = all cores)")
	batch := flag.Int("batch", 1, "minibatch size (examples averaged per Adam step)")
	flag.Parse()

	tensor.SetParallelism(*workers)
	start := time.Now()
	db := datagen.SyntheticIMDB(*seed, *scale)
	fmt.Printf("database: %d tables, %d join edges (%d workers)\n", len(db.Tables), len(db.Edges), tensor.Parallelism())

	model := mtmlf.NewModel(mtmlf.DefaultConfig(), db, *seed)
	loadedFull := false
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		info, err := mtmlf.Load(f, model)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		loadedFull = !info.SharedOnly
		kind := "full-model"
		if info.SharedOnly {
			kind = "shared-only"
		}
		fmt.Printf("loaded %s checkpoint v%d from %s (trained on db %q)\n",
			kind, info.Version, *loadPath, info.DBName)
	}

	gen := workload.NewGenerator(db, *seed+1)
	wcfg := workload.DefaultConfig()
	if loadedFull {
		// The checkpoint already holds trained featurizer weights for
		// this database; repeating the pre-training would overwrite
		// them.
		fmt.Println("skipping featurizer pre-training (full checkpoint loaded)")
	} else {
		fmt.Println("pre-training per-table encoders (F module)...")
		model.Feat.PretrainAll(gen, 40, 2, wcfg)
	}

	fmt.Printf("generating and labeling %d queries...\n", *queries)
	all := gen.Generate(*queries, wcfg)
	train, _, test := workload.Split(all, 0.85, 0.05)

	fmt.Printf("joint training (%d epochs, seq-level loss: %v)...\n", *epochs, *seqLoss)
	st := model.TrainJoint(train, mtmlf.TrainOptions{
		Epochs: *epochs, Seed: *seed + 2, SeqLevelLoss: *seqLoss, BatchSize: *batch,
	})
	fmt.Printf("trained %d steps, final running loss %.3f\n", st.Steps, st.FinalLoss)

	// Evaluate.
	var cardQ, costQ, joeus []float64
	for _, lq := range test {
		cards := model.EstimateNodeCards(lq)
		costs := model.EstimateNodeCosts(lq)
		for i := range cards {
			cardQ = append(cardQ, metrics.QError(cards[i], lq.NodeCards[i]))
			costQ = append(costQ, metrics.QError(costs[i], lq.NodeCosts[i]))
		}
		if len(lq.OptimalOrder) >= 2 {
			rep := model.Represent(lq.Q, lq.Plan)
			joeus = append(joeus, metrics.JOEU(model.JoinOrderFor(lq.Q, rep), lq.OptimalOrder))
		}
	}
	cs, os1, js := metrics.Summarize(cardQ), metrics.Summarize(costQ), metrics.Summarize(joeus)
	fmt.Printf("card q-error:  median %.2f  max %.1f  mean %.2f  (n=%d)\n", cs.Median, cs.Max, cs.Mean, cs.N)
	fmt.Printf("cost q-error:  median %.2f  max %.1f  mean %.2f\n", os1.Median, os1.Max, os1.Mean)
	fmt.Printf("join order:    mean JOEU %.2f over %d labeled queries\n", js.Mean, js.N)

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		if *sharedOnly {
			err = mtmlf.SaveShared(f, model)
		} else {
			err = mtmlf.Save(f, model)
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if *sharedOnly {
			fmt.Printf("saved shared-only (transfer) checkpoint to %s\n", *savePath)
		} else {
			fmt.Printf("saved full-model checkpoint to %s\n", *savePath)
		}
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}
