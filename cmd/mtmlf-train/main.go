// Command mtmlf-train trains an MTMLF-QO model, reports held-out
// q-errors and join-order quality, and can save / load model
// checkpoints — the artifact the paper's cloud provider would ship to
// users (Section 2.3).
//
// Data comes from either backend of the pluggable data plane:
//
//   - default: the synthetic IMDB database is generated in memory and
//     a workload is generated and labeled on the fly (the legacy
//     path);
//   - -corpus: a pre-labeled corpus file written by
//     mtmlf-datagen -out is opened and training examples are
//     STREAMED from disk, one minibatch at a time, so the corpus may
//     exceed RAM. -corpus-mode inmem materializes the same examples
//     into memory first — the trajectory is bitwise identical either
//     way, which `make corpus-smoke` asserts on every CI run.
//
// Usage:
//
//	mtmlf-train [-queries 200] [-epochs 6] [-scale 0.06] [-seed 1]
//	            [-save model.ckpt] [-load model.ckpt] [-shared-only]
//	            [-seqloss] [-workers 0] [-batch 1]
//	            [-corpus corpus.mtc] [-db name] [-corpus-mode stream]
//	            [-loss-out losses.txt]
//	            [-mla] [-encoder-epochs 2] [-st-per-table 40]
//	            [-resume state.snap] [-snapshot-every 0]
//	            [-dist-coordinator :0 | -dist-worker addr]
//	            [-dist-rank 0] [-dist-world 1]
//
// -resume makes the run durable: training state (parameters, Adam
// moments, shuffle position, running stats) is snapshotted atomically
// to the given file — on SIGINT/SIGTERM (the run then exits 0) and,
// with -snapshot-every N, after every N optimizer steps as crash
// insurance against kill -9. When the file already exists the run
// resumes from it mid-epoch; a missing file is a fresh start, so a
// supervisor can always pass -resume and rerun until the process
// exits 0 with the training complete. The resumed trajectory and
// final model are bitwise identical to an uninterrupted run — the
// property `make resume-smoke` asserts with a kill -9 drill.
//
// -mla switches to fleet pretraining (Algorithm 1) over EVERY
// database of a -corpus artifact: per-DB featurizers pre-train from
// the corpus's cached single-table sections (v2; v1 corpora fall back
// to live generation), then the shared (S)+(T) modules train on the
// pooled example stream (mtmlf.TrainMLAStream) without ever
// materializing the fleet workload. The MLA seed comes from the
// corpus Meta record, so the run reproduces the in-memory
// TrainMLA(seed) bitwise; -corpus-mode inmem materializes the per-DB
// workloads first and must produce the identical trajectory and
// checkpoint, which `make mla-smoke` asserts. -save then writes the
// shared-only transfer checkpoint — the paper's cloud artifact.
//
// -save writes a versioned FULL-model checkpoint: the shared stack,
// both task heads, the join-order decoder, and the per-database
// featurizer — everything mtmlf-serve needs. -shared-only restricts
// the save to the transferable (S)+(T) modules, the paper's
// cross-database transfer artifact (the featurizer of a new database
// pretrains locally). -load accepts either kind and loads what the
// file holds.
//
// -dist-coordinator / -dist-worker run one training job as a
// distributed data-parallel fleet over the gradient-exchange plane
// (internal/dist): one coordinator process plus -dist-world worker
// ranks, every worker launched with identical training flags plus its
// own -dist-rank. Each rank fetches and backwards only the minibatch
// slots it owns (slot i belongs to rank i mod world) — for a corpus
// job that means each rank reads only its slice of the stream — and
// the coordinator performs the example-ordered reduction centrally,
// so the trajectory and every artifact are bitwise identical to the
// single-process run at the same seed, batch, and example set, for
// any fleet size. Rank 0 owns all artifacts (-save, -loss-out,
// -resume); with -resume, rank 0's snapshot is broadcast at startup
// so a supervisor can kill -9 any process and restart the whole
// fleet, which `make dist-smoke` drills.
//
// -workers sizes the shared worker pool (0 = all cores) used by the
// tensor kernels, the data-parallel training loop, and corpus example
// decoding; -batch sets the minibatch size (examples per Adam step).
// The training trajectory depends on -batch but is bitwise identical
// for every -workers. -loss-out writes every example's loss as a hex
// float64 per line — the bitwise trajectory probe the corpus smoke
// test compares across backends.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"mtmlf/internal/catalog"
	"mtmlf/internal/ckptio"
	"mtmlf/internal/corpus"
	"mtmlf/internal/datagen"
	"mtmlf/internal/dist"
	"mtmlf/internal/metrics"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

func main() {
	queries := flag.Int("queries", 200, "training workload size (in-memory path)")
	epochs := flag.Int("epochs", 6, "joint training epochs")
	scale := flag.Float64("scale", 0.06, "synthetic IMDB scale factor (in-memory path)")
	seed := flag.Int64("seed", 1, "random seed")
	savePath := flag.String("save", "", "save a trained model checkpoint to this file")
	loadPath := flag.String("load", "", "load a checkpoint (full or shared-only) before training")
	sharedOnly := flag.Bool("shared-only", false, "save only the transferable (S)+(T) modules (cross-DB transfer artifact)")
	seqLoss := flag.Bool("seqloss", false, "use the Equation 3 sequence-level join-order loss")
	workers := flag.Int("workers", 0, "worker pool size for kernels and data-parallel training (0 = all cores)")
	batch := flag.Int("batch", 1, "minibatch size (examples averaged per Adam step)")
	corpusPath := flag.String("corpus", "", "train from this corpus file (written by mtmlf-datagen -out)")
	dbName := flag.String("db", "", "corpus database to train on (default: first)")
	corpusMode := flag.String("corpus-mode", "stream", "corpus example delivery: stream (from disk) or inmem (materialized)")
	lossOut := flag.String("loss-out", "", "write the per-example loss trajectory (hex float64 per line) to this file")
	mla := flag.Bool("mla", false, "fleet pretraining: run Algorithm 1 over every database of the -corpus artifact")
	encEpochs := flag.Int("encoder-epochs", 2, "per-table encoder pre-training epochs (-mla)")
	stPerTable := flag.Int("st-per-table", 40, "single-table queries per table for the -mla live-pretrain fallback on corpora whose Meta predates the recorded generation parameters")
	resumePath := flag.String("resume", "", "training-state snapshot file: resumed from when present, written on SIGINT/SIGTERM (then exit 0) and every -snapshot-every steps")
	snapEvery := flag.Int("snapshot-every", 0, "with -resume: also snapshot after every N optimizer steps (0 = only on interruption)")
	distCoord := flag.String("dist-coordinator", "", "listen address (host:port): serve as the gradient-exchange coordinator for a -dist-world rank fleet, then exit")
	distWorker := flag.String("dist-worker", "", "coordinator address (host:port): train as one rank of a distributed fleet")
	distRank := flag.Int("dist-rank", 0, "this process's rank (0-based) in the -dist-worker fleet")
	distWorld := flag.Int("dist-world", 1, "number of worker ranks in the distributed fleet")
	flag.Parse()

	tensor.SetParallelism(*workers)
	start := time.Now()

	if *distCoord != "" {
		if *distWorker != "" {
			log.Fatal("-dist-coordinator and -dist-worker are different processes; pick one")
		}
		runCoordinator(*distCoord, *distWorld)
		fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}
	var ex dist.Exchanger
	if *distWorker != "" {
		// The fingerprint is every trajectory-relevant flag: the
		// coordinator refuses a fleet whose ranks disagree on it, so a
		// mislaunched rank (wrong seed, wrong corpus, wrong batch) dies
		// at the handshake instead of poisoning the run.
		fp := fmt.Sprintf("mla=%v corpus=%s corpus-mode=%s db=%s queries=%d epochs=%d encoder-epochs=%d st-per-table=%d batch=%d seed=%d scale=%v seqloss=%v loss=%v world=%d",
			*mla, *corpusPath, *corpusMode, *dbName, *queries, *epochs, *encEpochs, *stPerTable, *batch, *seed, *scale, *seqLoss, *lossOut != "", *distWorld)
		t, err := dist.DialRetry(*distWorker, *distRank, *distWorld, fp, 300, 100*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		defer t.Close()
		ex = t
		fmt.Printf("rank %d/%d joined the fleet at %s\n", *distRank, *distWorld, *distWorker)
	}
	// Rank 0 owns every per-job artifact: the checkpoint, the
	// trajectory file, and the training snapshot. Other ranks compute
	// the identical state (and record the identical trajectory, which
	// keeps the run configuration uniform fleet-wide) but write
	// nothing.
	isPrimary := *distWorker == "" || *distRank == 0

	snap := mtmlf.SnapshotOptions{
		Path: *resumePath, Every: *snapEvery, Resume: *resumePath != "",
		Interrupt: interruptOnSignal(*resumePath != ""),
	}

	if *mla {
		// Fail loudly on flags the MLA path does not honor — silently
		// ignoring -load would hand back a from-scratch model when the
		// user asked to continue from a checkpoint.
		switch {
		case *loadPath != "":
			log.Fatal("-mla pretrains the shared modules from scratch; it cannot resume from -load")
		case *dbName != "":
			log.Fatal("-mla pools every database of the corpus; -db selects a single one (drop -mla or -db)")
		case *seqLoss:
			log.Fatal("-mla uses the Algorithm 1 token-level join-order loss; -seqloss is not supported")
		case *sharedOnly:
			log.Fatal("-mla checkpoints are always shared-only; drop -shared-only")
		}
		trainMLA(*corpusPath, *corpusMode, *epochs, *encEpochs, *stPerTable, *batch, *seed, *savePath, *lossOut, snap, ex, isPrimary)
		fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	// --- data plane: pick a catalog backend and an example source ---
	var (
		cat   catalog.Catalog
		src   workload.Source
		test  []*workload.LabeledQuery
		nGen  int
		genFn func(gen *workload.Generator, wcfg workload.Config)
	)
	wcfg := workload.DefaultConfig()
	if *corpusPath != "" {
		r, err := corpus.Open(*corpusPath)
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()
		var c *corpus.DBCatalog
		if *dbName != "" {
			c, err = r.CatalogByName(*dbName)
		} else {
			c, err = r.Catalog(0)
		}
		if err != nil {
			log.Fatal(err)
		}
		cat = c
		ex := c.Examples()
		n := ex.Len()
		// The same 85/5/10 split as the in-memory path, expressed as
		// index ranges over the streamed examples.
		nTrain := int(float64(n) * 0.85)
		nVal := int(float64(n) * 0.05)
		trainSrc, err := workload.SubSource(ex, 0, nTrain)
		if err != nil {
			log.Fatal(err)
		}
		testSrc, err := workload.SubSource(ex, nTrain+nVal, n)
		if err != nil {
			log.Fatal(err)
		}
		if test, err = workload.Materialize(testSrc); err != nil {
			log.Fatal(err)
		}
		switch *corpusMode {
		case "stream":
			src = trainSrc
		case "inmem":
			slice, err := workload.Materialize(trainSrc)
			if err != nil {
				log.Fatal(err)
			}
			src = workload.SliceSource(slice)
		default:
			log.Fatalf("unknown -corpus-mode %q (want stream or inmem)", *corpusMode)
		}
		fmt.Printf("corpus %s: db %q, %d examples (%d train, %d test), mode %s\n",
			*corpusPath, c.Name(), n, src.Len(), len(test), *corpusMode)
	} else {
		db := datagen.SyntheticIMDB(*seed, *scale)
		cat = catalog.NewMemory(db)
		nGen = *queries
		genFn = func(gen *workload.Generator, wcfg workload.Config) {
			fmt.Printf("generating and labeling %d queries...\n", nGen)
			all := gen.Generate(nGen, wcfg)
			train, _, testQ := workload.Split(all, 0.85, 0.05)
			src = workload.SliceSource(train)
			test = testQ
		}
	}
	db := cat.DB()
	fmt.Printf("database: %d tables, %d join edges (%d workers)\n", len(db.Tables), len(db.Edges), tensor.Parallelism())

	model := mtmlf.NewModelCat(mtmlf.DefaultConfig(), cat, *seed)
	loadedFull := false
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		info, err := mtmlf.Load(f, model)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		loadedFull = !info.SharedOnly
		kind := "full-model"
		if info.SharedOnly {
			kind = "shared-only"
		}
		fmt.Printf("loaded %s checkpoint v%d from %s (trained on db %q)\n",
			kind, info.Version, *loadPath, info.DBName)
	}

	gen := workload.NewGeneratorFrom(cat, *seed+1)
	if loadedFull {
		// The checkpoint already holds trained featurizer weights for
		// this database; repeating the pre-training would overwrite
		// them.
		fmt.Println("skipping featurizer pre-training (full checkpoint loaded)")
	} else {
		fmt.Println("pre-training per-table encoders (F module)...")
		model.Feat.PretrainAll(gen, 40, 2, wcfg)
	}
	if genFn != nil {
		genFn(gen, wcfg)
	}

	fmt.Printf("joint training (%d epochs, seq-level loss: %v)...\n", *epochs, *seqLoss)
	st, err := model.TrainJointStream(src, mtmlf.TrainOptions{
		Epochs: *epochs, Seed: *seed + 2, SeqLevelLoss: *seqLoss, BatchSize: *batch,
		RecordTrajectory: *lossOut != "", Snapshot: snap, Exchanger: ex,
	})
	if errors.Is(err, mtmlf.ErrInterrupted) {
		exitInterrupted(*resumePath)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d steps, final running loss %.3f\n", st.Steps, st.FinalLoss)
	if *lossOut != "" && isPrimary {
		if err := writeTrajectory(*lossOut, st.Trajectory); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d-step loss trajectory to %s\n", len(st.Trajectory), *lossOut)
	}

	// Evaluate.
	var cardQ, costQ, joeus []float64
	for _, lq := range test {
		cards := model.EstimateNodeCards(lq)
		costs := model.EstimateNodeCosts(lq)
		for i := range cards {
			cardQ = append(cardQ, metrics.QError(cards[i], lq.NodeCards[i]))
			costQ = append(costQ, metrics.QError(costs[i], lq.NodeCosts[i]))
		}
		if len(lq.OptimalOrder) >= 2 {
			rep := model.Represent(lq.Q, lq.Plan)
			joeus = append(joeus, metrics.JOEU(model.JoinOrderFor(lq.Q, rep), lq.OptimalOrder))
		}
	}
	cs, os1, js := metrics.Summarize(cardQ), metrics.Summarize(costQ), metrics.Summarize(joeus)
	fmt.Printf("card q-error:  median %.2f  max %.1f  mean %.2f  (n=%d)\n", cs.Median, cs.Max, cs.Mean, cs.N)
	fmt.Printf("cost q-error:  median %.2f  max %.1f  mean %.2f\n", os1.Median, os1.Max, os1.Mean)
	fmt.Printf("join order:    mean JOEU %.2f over %d labeled queries\n", js.Mean, js.N)

	if *savePath != "" && isPrimary {
		// Checkpoints commit atomically (temp file + fsync + rename): a
		// crash mid-save can never leave a torn artifact at -save.
		if *sharedOnly {
			err = mtmlf.SaveSharedFile(*savePath, model)
		} else {
			err = mtmlf.SaveFile(*savePath, model)
		}
		if err != nil {
			log.Fatal(err)
		}
		if *sharedOnly {
			fmt.Printf("saved shared-only (transfer) checkpoint to %s\n", *savePath)
		} else {
			fmt.Printf("saved full-model checkpoint to %s\n", *savePath)
		}
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}

// interruptOnSignal returns a channel closed on the first SIGINT or
// SIGTERM, the cooperative stop the training loops snapshot on. After
// the first signal the handler uninstalls itself, so a second signal
// kills the process the default way. Disabled (nil) without -resume:
// a run with nowhere to snapshot should just die.
func interruptOnSignal(enabled bool) <-chan struct{} {
	if !enabled {
		return nil
	}
	stop := make(chan struct{})
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		signal.Stop(ch)
		fmt.Printf("%v: snapshotting at the next minibatch boundary (signal again to kill)\n", sig)
		close(stop)
	}()
	return stop
}

// exitInterrupted reports a clean interruption and exits 0: the
// snapshot holds the run's progress, so to a supervisor this is "not
// done yet", not a failure.
func exitInterrupted(resumePath string) {
	fmt.Printf("interrupted: resumable snapshot at %s; rerun with the same flags to finish\n", resumePath)
	os.Exit(0)
}

// trainMLA is the -mla mode: Algorithm 1 fleet pretraining from one
// corpus artifact. Every database of the corpus joins the pool; the
// featurizers pre-train from the v2 single-table sections when the
// corpus has them (v1: live fallback); and the joint loop streams the
// pooled examples from disk ("stream") or from materialized slices
// ("inmem") — bitwise-identically either way. With a non-nil ex this
// process is one rank of a distributed fleet: it prepares every
// featurizer deterministically like the others, then fetches and
// backwards only the minibatch slots it owns, exchanging gradients
// through the coordinator; only the primary rank writes artifacts.
func trainMLA(corpusPath, corpusMode string, epochs, encEpochs, stPerTable, batch int, seed int64, savePath, lossOut string, snap mtmlf.SnapshotOptions, ex dist.Exchanger, isPrimary bool) {
	if corpusPath == "" {
		log.Fatal("-mla requires -corpus (a fleet artifact written by mtmlf-datagen -single-table)")
	}
	if corpusMode != "stream" && corpusMode != "inmem" {
		log.Fatalf("unknown -corpus-mode %q (want stream or inmem)", corpusMode)
	}
	r, err := corpus.Open(corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	if r.NumDBs() == 0 {
		log.Fatalf("corpus %s holds no databases; nothing to pretrain on", corpusPath)
	}
	cats := make([]catalog.Catalog, r.NumDBs())
	srcs := make([]workload.Source, r.NumDBs())
	total := 0
	for i := 0; i < r.NumDBs(); i++ {
		c, err := r.Catalog(i)
		if err != nil {
			log.Fatal(err)
		}
		cats[i] = c
		ex := c.Examples()
		if corpusMode == "inmem" {
			slice, err := workload.Materialize(ex)
			if err != nil {
				log.Fatal(err)
			}
			srcs[i] = workload.SliceSource(slice)
		} else {
			srcs[i] = ex
		}
		total += ex.Len()
	}
	// The MLA seed is the corpus's generation seed, so this run
	// reproduces the in-memory TrainMLA over the same fleet bitwise;
	// -seed only varies the shared-module initialization. Fleet-MLA
	// corpora (datagen -single-table) also echo their workload config
	// and per-table count into Meta, so the live (F)-pretrain fallback
	// on a section-less (v1) file regenerates the exact draws of
	// generation time; -st-per-table and the default workload config
	// only apply to corpora that predate that record.
	meta := r.Meta()
	mlaSeed := meta.Seed
	wcfg := workload.DefaultConfig()
	if meta.SingleTablePerTable > 0 {
		wcfg = meta.MLAWorkload
		stPerTable = meta.SingleTablePerTable
	}
	fmt.Printf("corpus %s (v%d): %d databases, %d pooled examples, mla seed %d, mode %s\n",
		corpusPath, r.Version(), r.NumDBs(), total, mlaSeed, corpusMode)

	shared := mtmlf.NewShared(mtmlf.DefaultConfig(), seed)
	opts := mtmlf.MLAOptions{
		SingleTablePerTable: stPerTable,
		EncoderEpochs:       encEpochs,
		JointEpochs:         epochs,
		Workload:            wcfg,
		Seed:                mlaSeed,
		BatchSize:           batch,
		RecordTrajectory:    lossOut != "",
		Snapshot:            snap,
		Exchanger:           ex,
	}
	fmt.Printf("fleet pretraining: (F) per DB, then joint (S)+(T) over the pooled stream (%d epochs)...\n", epochs)
	tasks, st, err := mtmlf.TrainMLAStream(shared, cats, srcs, opts)
	if errors.Is(err, mtmlf.ErrInterrupted) {
		exitInterrupted(snap.Path)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pretrained on %d databases: %d steps, final running loss %.3f\n", len(tasks), st.Steps, st.FinalLoss)
	if lossOut != "" && isPrimary {
		if err := writeTrajectory(lossOut, st.Trajectory); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d-step loss trajectory to %s\n", len(st.Trajectory), lossOut)
	}
	if savePath != "" && isPrimary {
		if err := mtmlf.SaveSharedFile(savePath, tasks[0].Model); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved shared-only (transfer) checkpoint to %s\n", savePath)
	}
}

// runCoordinator is the -dist-coordinator mode: a model-free hub that
// admits exactly world ranks, serves lockstep gradient-exchange
// rounds, and exits 0 on a clean fleet shutdown. Any rank failure,
// drift, or frame corruption aborts the whole fleet (exit 1) — the
// supervisor then restarts coordinator and workers with -resume, and
// rank 0's snapshot re-synchronizes everyone.
func runCoordinator(addr string, world int) {
	if world < 1 {
		log.Fatalf("-dist-world %d: a fleet needs at least one rank", world)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	c := dist.NewCoordinator(ln, world)
	fmt.Printf("coordinator listening on %s for %d ranks\n", c.Addr(), world)
	if err := c.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet of %d ranks completed cleanly\n", world)
}

// writeTrajectory writes one hex-formatted float64 per line. Hex
// floats are exact, so two trajectory files are byte-identical iff
// the trajectories are bitwise identical — `cmp` is the assertion.
// Published atomically: the smoke drills cmp trajectory files from
// killed runs, which must see the previous complete file or the new
// one, never a torn prefix.
func writeTrajectory(path string, losses []float64) error {
	return ckptio.WriteFileAtomic(path, func(f io.Writer) error {
		w := bufio.NewWriter(f)
		for _, v := range losses {
			if _, err := w.WriteString(strconv.FormatFloat(v, 'x', -1, 64) + "\n"); err != nil {
				return err
			}
		}
		return w.Flush()
	})
}
