// Command mtmlf-vet is the repo's contract gate: a multichecker that
// runs the five custom analyzers in internal/analysis over the whole
// module and exits nonzero on any violation. CI runs it as `make
// vet-custom`; run it locally the same way, or directly:
//
//	go run ./cmd/mtmlf-vet ./...
//	go run ./cmd/mtmlf-vet internal/corpus internal/nn
//	go run ./cmd/mtmlf-vet -list
//
// The analyzers encode repo law (see DESIGN.md §8): mapiter and
// globalrand guard bitwise-reproducible training in the
// determinism-critical packages, atomicwrite guards the
// torn-artifact-free durability contract, gobregister guards the
// pinned gob wire type-ID order, and poolrelease guards
// session ownership on the no-grad serving path. Justified
// exceptions carry //mtmlf:unordered-ok or //mtmlf:allow:<analyzer>
// comments in the source, so the suppression count is always
// greppable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mtmlf/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and their contracts, then exit")
	typeErrs := flag.Bool("type-errors", false, "also print type-check errors encountered while loading (analysis runs on partial info regardless)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mtmlf-vet [flags] [./... | package dirs]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	paths, err := targetPackages(root, flag.Args())
	if err != nil {
		fatal(err)
	}

	loader := analysis.NewLoader()
	var diagCount, typeErrCount int
	for _, path := range paths {
		pkg, err := loader.LoadDir(analysis.PackageDir(root, "mtmlf", path), path)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		if pkg == nil {
			continue
		}
		typeErrCount += len(pkg.TypeErrors)
		if *typeErrs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "mtmlf-vet: %s: type error: %v\n", path, terr)
			}
		}
		for _, a := range analysis.All() {
			if !analysis.InScope(a, path) {
				continue
			}
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fatal(err)
			}
			for _, d := range diags {
				fmt.Println(d)
				diagCount++
			}
		}
	}
	if typeErrCount > 0 && !*typeErrs {
		fmt.Fprintf(os.Stderr, "mtmlf-vet: %d type-check error(s) while loading; analysis ran on partial info (rerun with -type-errors)\n", typeErrCount)
	}
	if diagCount > 0 {
		fmt.Fprintf(os.Stderr, "mtmlf-vet: %d violation(s)\n", diagCount)
		os.Exit(1)
	}
}

// targetPackages resolves the CLI arguments to module-relative import
// paths. No args or "./..." means the whole module.
func targetPackages(root string, args []string) ([]string, error) {
	if len(args) == 0 {
		return analysis.ModulePackages(root)
	}
	var paths []string
	for _, arg := range args {
		if arg == "./..." || arg == "all" {
			return analysis.ModulePackages(root)
		}
		p := strings.TrimPrefix(strings.TrimPrefix(arg, "./"), "mtmlf/")
		paths = append(paths, "mtmlf/"+strings.TrimSuffix(p, "/"))
	}
	return paths, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtmlf-vet:", err)
	os.Exit(1)
}
