// Ablation reproduces the paper's multi-task ablation (Section 6.1,
// "Benefits of multi-task joint training"): it trains MTMLF-QO jointly
// on CardEst + CostEst + JoinSel and compares against single-task
// variants trained on the same data, reporting Table 1/2-style metrics
// side by side.
package main

import (
	"flag"
	"fmt"

	"mtmlf/internal/catalog"
	"mtmlf/internal/cost"
	"mtmlf/internal/datagen"
	"mtmlf/internal/metrics"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

func main() {
	workers := flag.Int("workers", 0, "worker pool size (0 = all cores)")
	flag.Parse()
	tensor.SetParallelism(*workers)

	db := datagen.SyntheticIMDB(13, 0.05)
	// One catalog: the generator and all four model variants share a
	// single ANALYZE pass over the database.
	cat := catalog.NewMemory(db)
	gen := workload.NewGeneratorFrom(cat, 14)
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 4
	qs := gen.Generate(120, wcfg)
	train, _, test := workload.Split(qs, 0.85, 0.05)

	build := func(wCard, wCost, wJo float64, seed int64) *mtmlf.Model {
		cfg := mtmlf.DefaultConfig()
		cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
		cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
		cfg.WCard, cfg.WCost, cfg.WJo = wCard, wCost, wJo
		m := mtmlf.NewModelCat(cfg, cat, seed)
		m.Feat.PretrainAll(gen, 20, 2, wcfg)
		m.TrainJoint(train, mtmlf.TrainOptions{Epochs: 6, Seed: seed + 1})
		return m
	}

	fmt.Println("training MTMLF-QO (joint) and single-task ablations on the same data...")
	joint := build(1, 1, 1, 20)
	cardOnly := build(1, 0, 0, 21)
	costOnly := build(0, 1, 0, 22)
	joOnly := build(0, 0, 1, 23)

	evalCard := func(m *mtmlf.Model) metrics.Summary {
		var qs []float64
		for _, lq := range test {
			cards := m.EstimateNodeCards(lq)
			for i := range cards {
				qs = append(qs, metrics.QError(cards[i], lq.NodeCards[i]))
			}
		}
		return metrics.Summarize(qs)
	}
	evalCost := func(m *mtmlf.Model) metrics.Summary {
		var qs []float64
		for _, lq := range test {
			costs := m.EstimateNodeCosts(lq)
			for i := range costs {
				qs = append(qs, metrics.QError(costs[i], lq.NodeCosts[i]))
			}
		}
		return metrics.Summarize(qs)
	}
	evalTime := func(m *mtmlf.Model) float64 {
		var t float64
		for _, lq := range test {
			if len(lq.OptimalOrder) < 2 {
				continue
			}
			ex := sqldb.NewExecutor(db, lq.Q)
			rep := m.Represent(lq.Q, lq.Plan)
			t += cost.SimulatedTimeOrder(ex, m.JoinOrderFor(lq.Q, rep))
		}
		return t
	}

	fmt.Printf("\n%-16s %18s %18s %14s\n", "Model", "card q-err (med)", "cost q-err (med)", "join time")
	fmt.Printf("%-16s %18.2f %18.2f %14.0f\n", "MTMLF-QO", evalCard(joint).Median, evalCost(joint).Median, evalTime(joint))
	fmt.Printf("%-16s %18.2f %18s %14s\n", "MTMLF-CardEst", evalCard(cardOnly).Median, `\`, `\`)
	fmt.Printf("%-16s %18s %18.2f %14s\n", "MTMLF-CostEst", `\`, evalCost(costOnly).Median, `\`)
	fmt.Printf("%-16s %18s %18s %14.0f\n", "MTMLF-JoinSel", `\`, `\`, evalTime(joOnly))
	fmt.Println("\n(the paper's finding: joint training matches or beats each single-task model)")
}
