// Joinorder demonstrates Section 4 of the paper: the tree-to-sequence
// conversion of plan trees via complete-binary-tree decoding
// embeddings (Figures 3 and 4), the uniqueness of the reverse
// conversion, and the legality-pruned beam search.
package main

import (
	"flag"
	"fmt"
	"log"

	"mtmlf/internal/datagen"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/plan"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

func main() {
	workers := flag.Int("workers", 0, "worker pool size (0 = all cores)")
	flag.Parse()
	tensor.SetParallelism(*workers)

	// --- Figure 3: the paper's two example plan trees -------------------
	leftDeep := plan.NewJoin(plan.HashJoin,
		plan.NewJoin(plan.HashJoin,
			plan.NewJoin(plan.HashJoin, plan.Leaf("T1", plan.SeqScan), plan.Leaf("T2", plan.SeqScan)),
			plan.Leaf("T3", plan.SeqScan)),
		plan.Leaf("T4", plan.SeqScan))
	bushy := plan.NewJoin(plan.HashJoin,
		plan.NewJoin(plan.HashJoin, plan.Leaf("T1", plan.SeqScan), plan.Leaf("T2", plan.SeqScan)),
		plan.NewJoin(plan.HashJoin, plan.Leaf("T3", plan.SeqScan), plan.Leaf("T4", plan.SeqScan)))

	fmt.Println("Figure 3(a) — left-deep plan tree:")
	fmt.Print(leftDeep.Pretty())
	fmt.Println("Figure 3(b) — bushy plan tree:")
	fmt.Print(bushy.Pretty())

	// --- Figure 4: decoding embeddings ----------------------------------
	for _, tc := range []struct {
		name string
		tree *plan.Node
	}{{"left-deep", leftDeep}, {"bushy", bushy}} {
		emb, err := plan.DecodingEmbeddings(tc.tree, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ndecoding embeddings (%s, width 8):\n", tc.name)
		for _, t := range []string{"T1", "T2", "T3", "T4"} {
			fmt.Printf("  %s = %v\n", t, emb[t])
		}
		back, err := plan.TreeFromEmbeddings(emb)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  reverted tree: %s (roundtrip %v)\n", back.Shape(), back.Shape() == tc.tree.Shape())
	}

	// --- Section 4.3: legality-pruned beam search ------------------------
	db := datagen.SyntheticIMDB(3, 0.04)
	cfg := mtmlf.DefaultConfig()
	cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
	cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
	model := mtmlf.NewModel(cfg, db, 1)
	gen := workload.NewGenerator(db, 2)
	wcfg := workload.DefaultConfig()
	wcfg.MinTables, wcfg.MaxTables = 4, 4
	lq := gen.Generate(1, wcfg)[0]

	fmt.Printf("\nquery: %v\n", lq.Q.Tables)
	fmt.Println("join predicates:")
	for _, j := range lq.Q.Joins {
		fmt.Printf("  %s\n", j)
	}
	rep := model.Represent(lq.Q, lq.Plan)
	results := model.Shared.JO.BeamSearch(rep.Memory, lq.Q, 3, true)
	fmt.Printf("beam search (k=3) candidates — all guaranteed legal:\n")
	for _, r := range results {
		order := make([]string, len(r.Positions))
		for i, p := range r.Positions {
			order[i] = rep.Tables[p]
		}
		fmt.Printf("  logp %7.3f  legal=%v  %v\n", r.LogProb, r.Legal, order)
	}
	fmt.Printf("predicted join order: %v\n", model.JoinOrderFor(lq.Q, rep))
	if lq.OptimalOrder != nil {
		fmt.Printf("optimal join order:   %v\n", lq.OptimalOrder)
	}
}
