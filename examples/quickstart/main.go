// Quickstart walks the full MTMLF-QO dataflow of Figure 2 on a small
// synthetic database: inputs (I) → featurization (F) → shared
// representation (S) → task-specific heads (T), then prints the
// model's cardinality, cost, and join-order predictions next to the
// ground truth.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"slices"

	"mtmlf/internal/datagen"
	"mtmlf/internal/metrics"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/serve"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

func main() {
	workers := flag.Int("workers", 0, "worker pool size (0 = all cores)")
	flag.Parse()
	tensor.SetParallelism(*workers)

	// (I.i) Data tables: a scaled-down synthetic IMDB (21 tables).
	db := datagen.SyntheticIMDB(7, 0.05)
	fmt.Printf("database %q: %d tables, %d PK-FK edges\n\n", db.Name, len(db.Tables), len(db.Edges))

	// Build the model: per-table encoders (F) + Trans_Share (S) +
	// M_CardEst / M_CostEst / Trans_JO (T).
	cfg := mtmlf.DefaultConfig()
	cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
	cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
	model := mtmlf.NewModel(cfg, db, 1)

	// Pre-train the (F) module: each Enc_i learns its table's data
	// distribution from single-table cardinalities (the paper's
	// ANALYZE-like local step).
	gen := workload.NewGenerator(db, 2)
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 4
	fmt.Println("pre-training single-table encoders (Enc_i)...")
	model.Feat.PretrainAll(gen, 25, 2, wcfg)

	// (I.ii) Queries with initial plans and ground-truth labels.
	fmt.Println("generating labeled workload...")
	qs := gen.Generate(80, wcfg)
	train, _, test := workload.Split(qs, 0.8, 0.1)

	// (L) Joint training on all three tasks (Equation 1).
	fmt.Println("joint training on CardEst + CostEst + JoinSel...")
	stats := model.TrainJoint(train, mtmlf.TrainOptions{Epochs: 6, Seed: 3})
	fmt.Printf("trained %d steps (final loss %.3f)\n\n", stats.Steps, stats.FinalLoss)

	// Inference on one held-out query.
	lq := test[0]
	fmt.Println("query:", lq.Q)
	fmt.Println("initial plan:")
	fmt.Print(lq.Plan.Pretty())

	cardHat, costHat := model.EstimateRoot(lq)
	fmt.Printf("\nCardEst: predicted %8.1f   true %8.1f   q-error %.2f\n",
		cardHat, lq.Card, metrics.QError(cardHat, lq.Card))
	fmt.Printf("CostEst: predicted %8.1f   true %8.1f   q-error %.2f\n",
		costHat, lq.Cost, metrics.QError(costHat, lq.Cost))

	rep := model.Represent(lq.Q, lq.Plan)
	order := model.JoinOrderFor(lq.Q, rep)
	fmt.Printf("JoinSel: predicted order %v\n", order)
	if lq.OptimalOrder != nil {
		fmt.Printf("         optimal order   %v   (JOEU %.2f)\n",
			lq.OptimalOrder, metrics.JOEU(order, lq.OptimalOrder))
	}

	// Aggregate quality over the whole test split.
	var cq []float64
	for _, q := range test {
		c, _ := model.EstimateRoot(q)
		cq = append(cq, metrics.QError(c, q.Card))
	}
	s := metrics.Summarize(cq)
	fmt.Printf("\ntest-set card q-error: median %.2f, mean %.2f over %d queries\n", s.Median, s.Mean, s.N)
	if s.N == 0 {
		log.Fatal("no test queries")
	}

	// Ship the model: a full checkpoint (shared stack + heads +
	// join-order decoder + featurizer) round-trips bitwise, and the
	// concurrent serving engine answers from the restored copy with
	// the exact same numbers.
	fmt.Println("\nsaving full-model checkpoint and serving from the restored copy...")
	var ckpt bytes.Buffer
	if err := mtmlf.Save(&ckpt, model); err != nil {
		log.Fatal(err)
	}
	restored, info, err := mtmlf.LoadModel(bytes.NewReader(ckpt.Bytes()), db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: v%d, %d bytes, db %q\n", info.Version, ckpt.Len(), info.DBName)

	engine, err := serve.NewEngine(restored, serve.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	est, err := engine.EstimateCard(lq.Q, lq.Plan)
	if err != nil {
		log.Fatal(err)
	}
	if est.Root != cardHat {
		log.Fatalf("served estimate %v != in-memory estimate %v", est.Root, cardHat)
	}
	served, err := engine.JoinOrder(lq.Q, lq.Plan)
	if err != nil {
		log.Fatal(err)
	}
	if !slices.Equal(served.Order, order) {
		log.Fatalf("served join order %v != in-memory order %v", served.Order, order)
	}
	fmt.Printf("served CardEst %.1f and join order %v — bitwise identical to the in-memory model\n",
		est.Root, served.Order)
}
