// Transfer demonstrates the paper's Section 6.3 workflow: the cloud
// provider meta-trains MTMLF-QO's (S) and (T) modules on a fleet of
// databases (Algorithm 1), then a brand-new database is attached by
// training only its cheap (F) module and fine-tuning on a handful of
// queries — instead of retraining everything from scratch.
package main

import (
	"flag"
	"fmt"

	"mtmlf/internal/catalog"
	"mtmlf/internal/cost"
	"mtmlf/internal/datagen"
	"mtmlf/internal/metrics"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/optimizer"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

func main() {
	workers := flag.Int("workers", 0, "worker pool size (0 = all cores)")
	flag.Parse()
	tensor.SetParallelism(*workers)

	// Provider side: generate a training fleet with the Section 6.2
	// pipeline and meta-train the shared modules.
	dgCfg := datagen.DefaultConfig()
	dgCfg.MinTables, dgCfg.MaxTables = 4, 6
	dgCfg.MinRows, dgCfg.MaxRows = 120, 350
	fleet := datagen.GenerateFleet(1, 4, dgCfg)
	trainDBs, newDB := fleet[:3], fleet[3]
	fmt.Printf("provider fleet: %d DBs; held-out DB %q has %d tables\n",
		len(trainDBs), newDB.Name, len(newDB.Tables))

	cfg := mtmlf.DefaultConfig()
	cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
	cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
	shared := mtmlf.NewShared(cfg, 2)

	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 4
	opts := mtmlf.MLAOptions{
		QueriesPerDB:        25,
		SingleTablePerTable: 15,
		EncoderEpochs:       2,
		JointEpochs:         4,
		Workload:            wcfg,
		Seed:                3,
	}
	fmt.Println("running MLA (Algorithm 1) over the fleet...")
	if _, st, err := mtmlf.TrainMLA(shared, trainDBs, opts); err != nil {
		panic(err)
	} else {
		fmt.Printf("MLA joint loop: %d steps, final running loss %.3f\n", st.Steps, st.FinalLoss)
	}

	// User side: attach the new DB — train its (F) module only, then
	// fine-tune the shared modules on a small local workload.
	fmt.Println("attaching held-out DB: training its (F) module...")
	task := mtmlf.NewDBTask(shared, newDB, opts, 4)
	ft := task.Queries[:8]
	eval := task.Queries[8:]
	fmt.Printf("fine-tuning on %d local queries...\n", len(ft))
	task.Model.FineTune(ft, 2, cfg.LR/2, 5)

	// Compare join orders on the held-out queries against PostgreSQL
	// and the optimum (the catalog backend supplies the ANALYZE
	// statistics the baseline optimizer plans from).
	st := catalog.NewMemory(newDB).Stats()
	var pgTime, mlaTime, optTime float64
	n := 0
	for _, lq := range eval {
		if len(lq.OptimalOrder) < 2 {
			continue
		}
		n++
		ex := sqldb.NewExecutor(newDB, lq.Q)
		if pg, err := optimizer.BestLeftDeep(lq.Q, optimizer.EstimatedCards{S: st, Q: lq.Q}); err == nil {
			pgTime += cost.SimulatedTimeOrder(ex, pg.Order)
		}
		optTime += cost.SimulatedTimeOrder(ex, lq.OptimalOrder)
		rep := task.Model.Represent(lq.Q, lq.Plan)
		mlaTime += cost.SimulatedTimeOrder(ex, task.Model.JoinOrderFor(lq.Q, rep))
	}
	fmt.Printf("\nsimulated total time over %d held-out queries on the NEW database:\n", n)
	fmt.Printf("  PostgreSQL baseline: %10.0f\n", pgTime)
	fmt.Printf("  MTMLF-QO (MLA):      %10.0f  (improvement %.1f%%)\n",
		mlaTime, 100*metrics.ImprovementRatio(pgTime, mlaTime))
	fmt.Printf("  Optimal:             %10.0f  (improvement %.1f%%)\n",
		optTime, 100*metrics.ImprovementRatio(pgTime, optTime))
	fmt.Println("\nonly the (F) module was trained on the new DB; (S)+(T) came pre-trained.")
}
