module mtmlf

go 1.24
