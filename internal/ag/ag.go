// Package ag implements a small reverse-mode automatic-differentiation
// engine over internal/tensor matrices. It is the substrate the MTMLF
// models are built on (the PyTorch substitute; see DESIGN.md).
//
// A computation is built eagerly: each op returns a *Value holding the
// forward result plus a closure that propagates gradients to its
// parents. Calling Backward on a scalar root runs the closures in
// reverse topological order.
//
// All matrices are rank-2; vectors are 1xN.
package ag

import (
	"fmt"
	"math"

	"mtmlf/internal/tensor"
)

// Value is a node in the autodiff graph.
type Value struct {
	// T holds the forward result.
	T *tensor.Tensor
	// Grad accumulates dLoss/dT; nil until Backward reaches this node.
	Grad *tensor.Tensor

	op       string
	parents  []*Value
	backward func(*backCtx)
	needGrad bool
}

// Param wraps a tensor as a trainable parameter (gradients flow into it).
func Param(t *tensor.Tensor) *Value {
	return &Value{T: t, op: "param", needGrad: true}
}

// Const wraps a tensor as a constant input (no gradient is stored).
func Const(t *tensor.Tensor) *Value {
	return &Value{T: t, op: "const"}
}

// NeedsGrad reports whether gradients flow into this node.
func (v *Value) NeedsGrad() bool { return v.needGrad }

// Rows and Cols expose the underlying matrix shape.
func (v *Value) Rows() int { return v.T.Rows() }
func (v *Value) Cols() int { return v.T.Cols() }

func newNode(op string, t *tensor.Tensor, parents ...*Value) *Value {
	n := &Value{T: t, op: op, parents: parents}
	for _, p := range parents {
		if p.needGrad {
			n.needGrad = true
			break
		}
	}
	return n
}

// accumGrad adds g into v.Grad, allocating on first use. It is a no-op
// for nodes that do not require gradients, which prunes constant
// subgraphs from the backward pass.
func (v *Value) accumGrad(g *tensor.Tensor) {
	if !v.needGrad {
		return
	}
	if v.Grad == nil {
		v.Grad = tensor.New(v.T.Shape...)
	}
	v.Grad.AddInPlace(g)
}

// backCtx threads the gradient destination through one backward pass.
// With a nil sink every gradient lands on the node's own Grad field
// (the classic behavior). With a sink, gradients for LEAF parameters
// are accumulated into the sink instead, leaving the shared Param
// nodes untouched — the plumbing that lets data-parallel workers run
// backward passes over shared parameters concurrently, each into a
// private buffer. Interior nodes always use their own Grad field:
// they belong to exactly one graph, so they are private to the worker
// that built them.
type backCtx struct {
	sink Grads
}

// accum routes gradient g for node n according to the context.
func (c *backCtx) accum(n *Value, g *tensor.Tensor) {
	if !n.needGrad {
		return
	}
	if c.sink != nil && n.backward == nil {
		c.sink.add(n, g)
		return
	}
	n.accumGrad(g)
}

// Grads is a per-worker gradient buffer: parameter node → accumulated
// gradient. Buffers from concurrent backward passes are combined with
// ReduceGrads.
type Grads map[*Value]*tensor.Tensor

func (gr Grads) add(p *Value, g *tensor.Tensor) {
	buf := gr[p]
	if buf == nil {
		buf = tensor.New(p.T.Shape...)
		gr[p] = buf
	}
	buf.AddInPlace(g)
}

// Backward computes gradients of v (which must be a 1x1 scalar) with
// respect to every upstream Param, accumulating them on the Params'
// Grad fields.
func (v *Value) Backward() {
	v.backwardCtx(&backCtx{})
}

// BackwardInto runs the backward pass with every leaf-parameter
// gradient accumulated into sink instead of the parameters' shared
// Grad fields. Concurrent BackwardInto calls over graphs that share
// parameters are race-free as long as each call gets its own sink;
// combine the sinks afterwards with ReduceGrads.
func (v *Value) BackwardInto(sink Grads) {
	if sink == nil {
		panic("ag: BackwardInto needs a non-nil sink")
	}
	v.backwardCtx(&backCtx{sink: sink})
}

func (v *Value) backwardCtx(ctx *backCtx) {
	if v.T.Size() != 1 {
		panic(fmt.Sprintf("ag: Backward on non-scalar shape %v", v.T.Shape))
	}
	order := topoSort(v)
	v.Grad = tensor.Full(1, v.T.Shape...)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backward != nil && n.Grad != nil {
			n.backward(ctx)
		}
	}
}

// ReduceGrads combines per-worker (or per-example) gradient buffers
// into the parameters' Grad fields: for each parameter, the buffers
// are summed in slot order and scaled by scale. The reduction order
// depends only on the slot order — never on which goroutine produced
// which slot — so a minibatch gradient is bitwise reproducible for any
// worker count. Parameters no slot touched keep a nil Grad.
func ReduceGrads(params []*Value, slots []Grads, scale float64) {
	for _, p := range params {
		var acc *tensor.Tensor
		for _, s := range slots {
			g := s[p]
			if g == nil {
				continue
			}
			if acc == nil {
				acc = tensor.New(p.T.Shape...)
			}
			acc.AddInPlace(g)
		}
		if acc == nil {
			continue
		}
		if scale != 1 {
			acc.ScaleInPlace(scale)
		}
		if p.Grad == nil {
			p.Grad = acc
		} else {
			p.Grad.AddInPlace(acc)
		}
	}
}

func topoSort(root *Value) []*Value {
	var order []*Value
	seen := map[*Value]bool{}
	var visit func(*Value)
	visit = func(n *Value) {
		if seen[n] || !n.needGrad {
			return
		}
		seen[n] = true
		for _, p := range n.parents {
			visit(p)
		}
		order = append(order, n)
	}
	visit(root)
	return order
}

// ---------------------------------------------------------------------------
// Elementwise and linear-algebra ops
// ---------------------------------------------------------------------------

// Add returns a + b (same shape).
func Add(a, b *Value) *Value {
	out := newNode("add", tensor.Add(a.T, b.T), a, b)
	out.backward = func(ctx *backCtx) {
		ctx.accum(a, out.Grad)
		ctx.accum(b, out.Grad)
	}
	return out
}

// Sub returns a - b (same shape).
func Sub(a, b *Value) *Value {
	out := newNode("sub", tensor.Sub(a.T, b.T), a, b)
	out.backward = func(ctx *backCtx) {
		ctx.accum(a, out.Grad)
		if b.needGrad {
			ctx.accum(b, tensor.Scale(out.Grad, -1))
		}
	}
	return out
}

// Mul returns the elementwise product a ⊙ b.
func Mul(a, b *Value) *Value {
	out := newNode("mul", tensor.Mul(a.T, b.T), a, b)
	out.backward = func(ctx *backCtx) {
		if a.needGrad {
			ctx.accum(a, tensor.Mul(out.Grad, b.T))
		}
		if b.needGrad {
			ctx.accum(b, tensor.Mul(out.Grad, a.T))
		}
	}
	return out
}

// Scale returns s * a for scalar constant s.
func Scale(a *Value, s float64) *Value {
	out := newNode("scale", tensor.Scale(a.T, s), a)
	out.backward = func(ctx *backCtx) {
		ctx.accum(a, tensor.Scale(out.Grad, s))
	}
	return out
}

// AddBias broadcasts a 1xN bias row across every row of a [M,N] matrix.
func AddBias(a, bias *Value) *Value {
	m, n := a.T.Rows(), a.T.Cols()
	if bias.T.Rows() != 1 || bias.T.Cols() != n {
		panic(fmt.Sprintf("ag: AddBias shape %v + %v", a.T.Shape, bias.T.Shape))
	}
	t := tensor.New(m, n)
	for i := 0; i < m; i++ {
		row := a.T.Row(i)
		orow := t.Row(i)
		for j := range row {
			orow[j] = row[j] + bias.T.Data[j]
		}
	}
	out := newNode("addbias", t, a, bias)
	out.backward = func(ctx *backCtx) {
		ctx.accum(a, out.Grad)
		if bias.needGrad {
			ctx.accum(bias, tensor.SumRows(out.Grad))
		}
	}
	return out
}

// MatMul returns a @ b.
func MatMul(a, b *Value) *Value {
	out := newNode("matmul", tensor.MatMul(a.T, b.T), a, b)
	out.backward = func(ctx *backCtx) {
		if a.needGrad {
			ctx.accum(a, tensor.MatMulTransB(out.Grad, b.T))
		}
		if b.needGrad {
			ctx.accum(b, tensor.MatMulTransA(a.T, out.Grad))
		}
	}
	return out
}

// MatMulTransB returns a @ b^T without materializing the transpose.
func MatMulTransB(a, b *Value) *Value {
	out := newNode("matmulTB", tensor.MatMulTransB(a.T, b.T), a, b)
	out.backward = func(ctx *backCtx) {
		if a.needGrad {
			ctx.accum(a, tensor.MatMul(out.Grad, b.T))
		}
		if b.needGrad {
			ctx.accum(b, tensor.MatMulTransA(out.Grad, a.T))
		}
	}
	return out
}

// Transpose returns a^T.
func Transpose(a *Value) *Value {
	out := newNode("transpose", tensor.Transpose(a.T), a)
	out.backward = func(ctx *backCtx) {
		ctx.accum(a, tensor.Transpose(out.Grad))
	}
	return out
}

// ---------------------------------------------------------------------------
// Nonlinearities
// ---------------------------------------------------------------------------

func unary(op string, a *Value, f func(float64) float64, df func(x, y float64) float64) *Value {
	t := tensor.New(a.T.Shape...)
	for i, x := range a.T.Data {
		t.Data[i] = f(x)
	}
	out := newNode(op, t, a)
	out.backward = func(ctx *backCtx) {
		if !a.needGrad {
			return
		}
		g := tensor.New(a.T.Shape...)
		for i := range g.Data {
			g.Data[i] = out.Grad.Data[i] * df(a.T.Data[i], t.Data[i])
		}
		ctx.accum(a, g)
	}
	return out
}

// ReLU applies max(0, x) elementwise.
func ReLU(a *Value) *Value {
	return unary("relu", a,
		func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		},
		func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// GELU applies the tanh-approximation Gaussian error linear unit.
func GELU(a *Value) *Value {
	const c = 0.7978845608028654 // sqrt(2/pi)
	f := func(x float64) float64 {
		return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
	}
	df := func(x, _ float64) float64 {
		inner := c * (x + 0.044715*x*x*x)
		th := math.Tanh(inner)
		sech2 := 1 - th*th
		return 0.5*(1+th) + 0.5*x*sech2*c*(1+3*0.044715*x*x)
	}
	return unary("gelu", a, f, df)
}

// Tanh applies tanh elementwise.
func Tanh(a *Value) *Value {
	return unary("tanh", a, math.Tanh, func(_, y float64) float64 { return 1 - y*y })
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Value) *Value {
	return unary("sigmoid", a,
		func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		func(_, y float64) float64 { return y * (1 - y) })
}

// Exp applies e^x elementwise.
func Exp(a *Value) *Value {
	return unary("exp", a, math.Exp, func(_, y float64) float64 { return y })
}

// Log applies the natural logarithm elementwise (inputs must be > 0).
func Log(a *Value) *Value {
	return unary("log", a, math.Log, func(x, _ float64) float64 { return 1 / x })
}

// Abs applies |x| elementwise (subgradient 0 at x=0).
func Abs(a *Value) *Value {
	return unary("abs", a, math.Abs, func(x, _ float64) float64 {
		switch {
		case x > 0:
			return 1
		case x < 0:
			return -1
		default:
			return 0
		}
	})
}

// ---------------------------------------------------------------------------
// Softmax / normalization
// ---------------------------------------------------------------------------

// SoftmaxRows applies softmax to each row.
func SoftmaxRows(a *Value) *Value {
	y := tensor.SoftmaxRows(a.T)
	out := newNode("softmax", y, a)
	out.backward = func(ctx *backCtx) {
		if !a.needGrad {
			return
		}
		m, n := y.Rows(), y.Cols()
		g := tensor.New(m, n)
		for i := 0; i < m; i++ {
			yr := y.Row(i)
			gr := out.Grad.Row(i)
			var dot float64
			for j := 0; j < n; j++ {
				dot += yr[j] * gr[j]
			}
			orow := g.Row(i)
			for j := 0; j < n; j++ {
				orow[j] = yr[j] * (gr[j] - dot)
			}
		}
		ctx.accum(a, g)
	}
	return out
}

// LogSoftmaxRows applies log-softmax to each row (numerically stable).
func LogSoftmaxRows(a *Value) *Value {
	m, n := a.T.Rows(), a.T.Cols()
	y := tensor.New(m, n)
	for i := 0; i < m; i++ {
		row := a.T.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var z float64
		for _, v := range row {
			z += math.Exp(v - mx)
		}
		lz := math.Log(z) + mx
		orow := y.Row(i)
		for j, v := range row {
			orow[j] = v - lz
		}
	}
	out := newNode("logsoftmax", y, a)
	out.backward = func(ctx *backCtx) {
		if !a.needGrad {
			return
		}
		g := tensor.New(m, n)
		for i := 0; i < m; i++ {
			gr := out.Grad.Row(i)
			yr := y.Row(i)
			var sum float64
			for _, v := range gr {
				sum += v
			}
			orow := g.Row(i)
			for j := 0; j < n; j++ {
				orow[j] = gr[j] - math.Exp(yr[j])*sum
			}
		}
		ctx.accum(a, g)
	}
	return out
}

// LayerNormRows normalizes each row to zero mean / unit variance and
// applies a learned 1xN gain and bias.
func LayerNormRows(a, gamma, beta *Value, eps float64) *Value {
	m, n := a.T.Rows(), a.T.Cols()
	if gamma.T.Cols() != n || beta.T.Cols() != n {
		panic("ag: LayerNormRows gain/bias width mismatch")
	}
	y := tensor.New(m, n)
	xhat := tensor.New(m, n)
	invstd := make([]float64, m)
	for i := 0; i < m; i++ {
		row := a.T.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(n)
		var va float64
		for _, v := range row {
			d := v - mean
			va += d * d
		}
		va /= float64(n)
		is := 1 / math.Sqrt(va+eps)
		invstd[i] = is
		xr := xhat.Row(i)
		yr := y.Row(i)
		for j, v := range row {
			xr[j] = (v - mean) * is
			yr[j] = xr[j]*gamma.T.Data[j] + beta.T.Data[j]
		}
	}
	out := newNode("layernorm", y, a, gamma, beta)
	out.backward = func(ctx *backCtx) {
		if gamma.needGrad {
			gg := tensor.New(1, n)
			for i := 0; i < m; i++ {
				gr := out.Grad.Row(i)
				xr := xhat.Row(i)
				for j := 0; j < n; j++ {
					gg.Data[j] += gr[j] * xr[j]
				}
			}
			ctx.accum(gamma, gg)
		}
		if beta.needGrad {
			ctx.accum(beta, tensor.SumRows(out.Grad))
		}
		if a.needGrad {
			g := tensor.New(m, n)
			for i := 0; i < m; i++ {
				gr := out.Grad.Row(i)
				xr := xhat.Row(i)
				// dxhat_j = grad_j * gamma_j
				var sumDx, sumDxX float64
				dx := make([]float64, n)
				for j := 0; j < n; j++ {
					dx[j] = gr[j] * gamma.T.Data[j]
					sumDx += dx[j]
					sumDxX += dx[j] * xr[j]
				}
				orow := g.Row(i)
				fn := float64(n)
				for j := 0; j < n; j++ {
					orow[j] = invstd[i] / fn * (fn*dx[j] - sumDx - xr[j]*sumDxX)
				}
			}
			ctx.accum(a, g)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Shape ops
// ---------------------------------------------------------------------------

// ConcatRows stacks matrices with equal column counts vertically.
func ConcatRows(vs ...*Value) *Value {
	if len(vs) == 0 {
		panic("ag: ConcatRows of nothing")
	}
	n := vs[0].T.Cols()
	total := 0
	for _, v := range vs {
		if v.T.Cols() != n {
			panic("ag: ConcatRows column mismatch")
		}
		total += v.T.Rows()
	}
	t := tensor.New(total, n)
	r := 0
	for _, v := range vs {
		copy(t.Data[r*n:], v.T.Data)
		r += v.T.Rows()
	}
	out := newNode("concatrows", t, vs...)
	out.backward = func(ctx *backCtx) {
		r := 0
		for _, v := range vs {
			h := v.T.Rows()
			if v.needGrad {
				g := tensor.New(h, n)
				copy(g.Data, out.Grad.Data[r*n:(r+h)*n])
				ctx.accum(v, g)
			}
			r += h
		}
	}
	return out
}

// ConcatCols stacks matrices with equal row counts horizontally.
func ConcatCols(vs ...*Value) *Value {
	if len(vs) == 0 {
		panic("ag: ConcatCols of nothing")
	}
	m := vs[0].T.Rows()
	total := 0
	for _, v := range vs {
		if v.T.Rows() != m {
			panic("ag: ConcatCols row mismatch")
		}
		total += v.T.Cols()
	}
	t := tensor.New(m, total)
	off := 0
	for _, v := range vs {
		c := v.T.Cols()
		for i := 0; i < m; i++ {
			copy(t.Row(i)[off:off+c], v.T.Row(i))
		}
		off += c
	}
	out := newNode("concatcols", t, vs...)
	out.backward = func(ctx *backCtx) {
		off := 0
		for _, v := range vs {
			c := v.T.Cols()
			if v.needGrad {
				g := tensor.New(m, c)
				for i := 0; i < m; i++ {
					copy(g.Row(i), out.Grad.Row(i)[off:off+c])
				}
				ctx.accum(v, g)
			}
			off += c
		}
	}
	return out
}

// SliceRows returns rows [from, to) of a.
func SliceRows(a *Value, from, to int) *Value {
	m, n := a.T.Rows(), a.T.Cols()
	if from < 0 || to > m || from > to {
		panic(fmt.Sprintf("ag: SliceRows [%d,%d) of %d rows", from, to, m))
	}
	t := tensor.New(to-from, n)
	copy(t.Data, a.T.Data[from*n:to*n])
	out := newNode("slicerows", t, a)
	out.backward = func(ctx *backCtx) {
		if !a.needGrad {
			return
		}
		g := tensor.New(m, n)
		copy(g.Data[from*n:to*n], out.Grad.Data)
		ctx.accum(a, g)
	}
	return out
}

// SliceCols returns columns [from, to) of a.
func SliceCols(a *Value, from, to int) *Value {
	m, n := a.T.Rows(), a.T.Cols()
	if from < 0 || to > n || from > to {
		panic(fmt.Sprintf("ag: SliceCols [%d,%d) of %d cols", from, to, n))
	}
	w := to - from
	t := tensor.New(m, w)
	for i := 0; i < m; i++ {
		copy(t.Row(i), a.T.Row(i)[from:to])
	}
	out := newNode("slicecols", t, a)
	out.backward = func(ctx *backCtx) {
		if !a.needGrad {
			return
		}
		g := tensor.New(m, n)
		for i := 0; i < m; i++ {
			copy(g.Row(i)[from:to], out.Grad.Row(i))
		}
		ctx.accum(a, g)
	}
	return out
}

// Gather returns the rows of the weight matrix w selected by idx, in
// order. It is the embedding-lookup primitive: backward scatter-adds.
func Gather(w *Value, idx []int) *Value {
	n := w.T.Cols()
	t := tensor.New(len(idx), n)
	for i, ix := range idx {
		copy(t.Row(i), w.T.Row(ix))
	}
	ids := append([]int(nil), idx...)
	out := newNode("gather", t, w)
	out.backward = func(ctx *backCtx) {
		if !w.needGrad {
			return
		}
		g := tensor.New(w.T.Rows(), n)
		for i, ix := range ids {
			grow := g.Row(ix)
			orow := out.Grad.Row(i)
			for j := range grow {
				grow[j] += orow[j]
			}
		}
		ctx.accum(w, g)
	}
	return out
}

// MeanRows returns the 1xN mean of the rows of a.
func MeanRows(a *Value) *Value {
	m := a.T.Rows()
	s := tensor.SumRows(a.T)
	s.ScaleInPlace(1 / float64(m))
	out := newNode("meanrows", s, a)
	out.backward = func(ctx *backCtx) {
		if !a.needGrad {
			return
		}
		g := tensor.New(a.T.Shape...)
		inv := 1 / float64(m)
		n := a.T.Cols()
		for i := 0; i < m; i++ {
			row := g.Row(i)
			for j := 0; j < n; j++ {
				row[j] = out.Grad.Data[j] * inv
			}
		}
		ctx.accum(a, g)
	}
	return out
}

// ---------------------------------------------------------------------------
// Reductions and losses
// ---------------------------------------------------------------------------

// SumAll reduces a to a 1x1 scalar.
func SumAll(a *Value) *Value {
	t := tensor.FromSlice([]float64{tensor.SumAll(a.T)}, 1, 1)
	out := newNode("sumall", t, a)
	out.backward = func(ctx *backCtx) {
		if !a.needGrad {
			return
		}
		ctx.accum(a, tensor.Full(out.Grad.Data[0], a.T.Shape...))
	}
	return out
}

// MeanAll reduces a to its scalar mean.
func MeanAll(a *Value) *Value {
	return Scale(SumAll(a), 1/float64(a.T.Size()))
}

// Scalar wraps a float as a 1x1 constant.
func Scalar(v float64) *Value {
	return Const(tensor.FromSlice([]float64{v}, 1, 1))
}

// Item returns the single element of a 1x1 node.
func (v *Value) Item() float64 {
	if v.T.Size() != 1 {
		panic(fmt.Sprintf("ag: Item on shape %v", v.T.Shape))
	}
	return v.T.Data[0]
}

// CrossEntropyRows computes the mean negative log-likelihood of target
// class indices under row-wise softmax of logits.
func CrossEntropyRows(logits *Value, targets []int) *Value {
	m := logits.T.Rows()
	if len(targets) != m {
		panic("ag: CrossEntropyRows target count mismatch")
	}
	ls := LogSoftmaxRows(logits)
	// Pick out -logp[target] per row via a constant selection matrix.
	n := logits.T.Cols()
	sel := tensor.New(m, n)
	for i, t := range targets {
		if t < 0 || t >= n {
			panic(fmt.Sprintf("ag: CrossEntropyRows target %d out of %d classes", t, n))
		}
		sel.Set(i, t, -1/float64(m))
	}
	return SumAll(Mul(ls, Const(sel)))
}

// MSE computes mean squared error between a and b (same shape).
func MSE(a, b *Value) *Value {
	d := Sub(a, b)
	return MeanAll(Mul(d, d))
}

// ---------------------------------------------------------------------------
// Numerical gradient checking (used by tests)
// ---------------------------------------------------------------------------

// GradCheck numerically verifies the gradient of loss() with respect to
// each listed parameter, returning the maximum relative error observed.
// loss must rebuild the graph from the parameter tensors on every call.
func GradCheck(params []*Value, loss func() *Value, eps float64) float64 {
	// Analytic pass.
	l := loss()
	l.Backward()
	grads := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		if p.Grad == nil {
			grads[i] = tensor.New(p.T.Shape...)
		} else {
			grads[i] = p.Grad.Clone()
		}
		p.Grad = nil
	}
	var maxRel float64
	for i, p := range params {
		for j := range p.T.Data {
			orig := p.T.Data[j]
			p.T.Data[j] = orig + eps
			lp := loss().Item()
			p.T.Data[j] = orig - eps
			lm := loss().Item()
			p.T.Data[j] = orig
			num := (lp - lm) / (2 * eps)
			ana := grads[i].Data[j]
			denom := math.Max(1, math.Abs(num)+math.Abs(ana))
			rel := math.Abs(num-ana) / denom
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	return maxRel
}
