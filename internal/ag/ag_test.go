package ag

import (
	"math"
	"math/rand"
	"testing"

	"mtmlf/internal/tensor"
)

const gradTol = 1e-5

// checkOp grad-checks a scalar loss built from the given parameters.
func checkOp(t *testing.T, name string, params []*Value, loss func() *Value) {
	t.Helper()
	if rel := GradCheck(params, loss, 1e-6); rel > gradTol {
		t.Fatalf("%s: max relative gradient error %g > %g", name, rel, gradTol)
	}
}

func randParam(rng *rand.Rand, r, c int) *Value {
	return Param(tensor.Rand(rng, r, c, 1))
}

func TestGradAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randParam(rng, 3, 4), randParam(rng, 3, 4)
	checkOp(t, "add", []*Value{a, b}, func() *Value { return SumAll(Add(a, b)) })
}

func TestGradSub(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randParam(rng, 2, 5), randParam(rng, 2, 5)
	checkOp(t, "sub", []*Value{a, b}, func() *Value { return SumAll(Mul(Sub(a, b), Sub(a, b))) })
}

func TestGradMulScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randParam(rng, 3, 3), randParam(rng, 3, 3)
	checkOp(t, "mul+scale", []*Value{a, b}, func() *Value { return SumAll(Scale(Mul(a, b), 1.7)) })
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randParam(rng, 3, 4), randParam(rng, 4, 2)
	checkOp(t, "matmul", []*Value{a, b}, func() *Value { return SumAll(Mul(MatMul(a, b), MatMul(a, b))) })
}

func TestGradMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := randParam(rng, 3, 4), randParam(rng, 5, 4)
	checkOp(t, "matmulTB", []*Value{a, b}, func() *Value { return SumAll(Mul(MatMulTransB(a, b), MatMulTransB(a, b))) })
}

func TestGradAddBias(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, b := randParam(rng, 4, 3), randParam(rng, 1, 3)
	checkOp(t, "addbias", []*Value{a, b}, func() *Value { return SumAll(Mul(AddBias(a, b), AddBias(a, b))) })
}

func TestGradTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randParam(rng, 2, 5)
	checkOp(t, "transpose", []*Value{a}, func() *Value { return SumAll(Mul(Transpose(a), Transpose(a))) })
}

func TestGradNonlinearities(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, tc := range []struct {
		name string
		f    func(*Value) *Value
	}{
		{"relu", ReLU},
		{"gelu", GELU},
		{"tanh", Tanh},
		{"sigmoid", Sigmoid},
		{"exp", Exp},
	} {
		a := randParam(rng, 3, 4)
		// Shift away from 0 for relu kinks.
		for i := range a.T.Data {
			if math.Abs(a.T.Data[i]) < 0.05 {
				a.T.Data[i] += 0.1
			}
		}
		f := tc.f
		checkOp(t, tc.name, []*Value{a}, func() *Value { return SumAll(Mul(f(a), f(a))) })
	}
}

func TestGradLogAbs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := Param(tensor.Rand(rng, 2, 3, 1))
	for i := range a.T.Data {
		a.T.Data[i] = math.Abs(a.T.Data[i]) + 0.5 // keep positive for log
	}
	checkOp(t, "log", []*Value{a}, func() *Value { return SumAll(Log(a)) })
	b := randParam(rng, 2, 3)
	for i := range b.T.Data {
		if math.Abs(b.T.Data[i]) < 0.05 {
			b.T.Data[i] = 0.2
		}
	}
	checkOp(t, "abs", []*Value{b}, func() *Value { return SumAll(Abs(b)) })
}

func TestGradSoftmaxRows(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randParam(rng, 3, 5)
	w := Const(tensor.Rand(rng, 3, 5, 1))
	checkOp(t, "softmax", []*Value{a}, func() *Value { return SumAll(Mul(SoftmaxRows(a), w)) })
}

func TestGradLogSoftmaxRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randParam(rng, 4, 6)
	w := Const(tensor.Rand(rng, 4, 6, 1))
	checkOp(t, "logsoftmax", []*Value{a}, func() *Value { return SumAll(Mul(LogSoftmaxRows(a), w)) })
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randParam(rng, 3, 6)
	gamma := Param(tensor.Full(1, 1, 6))
	beta := Param(tensor.New(1, 6))
	w := Const(tensor.Rand(rng, 3, 6, 1))
	checkOp(t, "layernorm", []*Value{a, gamma, beta}, func() *Value {
		return SumAll(Mul(LayerNormRows(a, gamma, beta, 1e-5), w))
	})
}

func TestGradConcatSliceGather(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a, b := randParam(rng, 2, 4), randParam(rng, 3, 4)
	checkOp(t, "concatrows+slice", []*Value{a, b}, func() *Value {
		c := ConcatRows(a, b)
		return SumAll(Mul(SliceRows(c, 1, 4), SliceRows(c, 1, 4)))
	})
	c, d := randParam(rng, 3, 2), randParam(rng, 3, 3)
	checkOp(t, "concatcols", []*Value{c, d}, func() *Value {
		return SumAll(Mul(ConcatCols(c, d), ConcatCols(c, d)))
	})
	w := randParam(rng, 5, 3)
	idx := []int{0, 2, 2, 4}
	checkOp(t, "gather", []*Value{w}, func() *Value {
		g := Gather(w, idx)
		return SumAll(Mul(g, g))
	})
}

func TestGradMeanRows(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randParam(rng, 4, 3)
	checkOp(t, "meanrows", []*Value{a}, func() *Value {
		m := MeanRows(a)
		return SumAll(Mul(m, m))
	})
}

func TestGradCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	logits := randParam(rng, 4, 5)
	targets := []int{1, 0, 4, 2}
	checkOp(t, "crossentropy", []*Value{logits}, func() *Value {
		return CrossEntropyRows(logits, targets)
	})
}

func TestGradMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := randParam(rng, 3, 2)
	b := Const(tensor.Rand(rng, 3, 2, 1))
	checkOp(t, "mse", []*Value{a}, func() *Value { return MSE(a, b) })
}

func TestGradTwoLayerMLPComposite(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := Const(tensor.Rand(rng, 4, 3, 1))
	w1 := randParam(rng, 3, 8)
	b1 := randParam(rng, 1, 8)
	w2 := randParam(rng, 8, 2)
	b2 := randParam(rng, 1, 2)
	target := []int{0, 1, 1, 0}
	checkOp(t, "mlp", []*Value{w1, b1, w2, b2}, func() *Value {
		h := GELU(AddBias(MatMul(x, w1), b1))
		logits := AddBias(MatMul(h, w2), b2)
		return CrossEntropyRows(logits, target)
	})
}

func TestBackwardAccumulatesSharedNode(t *testing.T) {
	// y = a + a; dy/da must be 2 at every entry.
	a := Param(tensor.FromSlice([]float64{1, 2}, 1, 2))
	l := SumAll(Add(a, a))
	l.Backward()
	if a.Grad.Data[0] != 2 || a.Grad.Data[1] != 2 {
		t.Fatalf("shared-node grad wrong: %v", a.Grad.Data)
	}
}

func TestConstGetsNoGrad(t *testing.T) {
	c := Const(tensor.FromSlice([]float64{1, 2}, 1, 2))
	p := Param(tensor.FromSlice([]float64{3, 4}, 1, 2))
	l := SumAll(Mul(c, p))
	l.Backward()
	if c.Grad != nil {
		t.Fatal("constants must not accumulate gradients")
	}
	if p.Grad == nil || p.Grad.Data[0] != 1 || p.Grad.Data[1] != 2 {
		t.Fatalf("param grad wrong: %v", p.Grad)
	}
}

func TestBackwardNonScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-scalar Backward")
		}
	}()
	Param(tensor.New(2, 2)).Backward()
}

func TestCrossEntropyMatchesManual(t *testing.T) {
	logits := Param(tensor.FromSlice([]float64{1, 2, 3, 0.5, 0.5, 0.5}, 2, 3))
	l := CrossEntropyRows(logits, []int{2, 0})
	// Row 1: -log softmax(3 | [1,2,3]); Row 2: -log(1/3).
	z1 := math.Exp(1) + math.Exp(2) + math.Exp(3)
	want := (-math.Log(math.Exp(3)/z1) + math.Log(3)) / 2
	if math.Abs(l.Item()-want) > 1e-10 {
		t.Fatalf("cross entropy got %v want %v", l.Item(), want)
	}
}

func TestItemPanicsOnMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Param(tensor.New(2, 2)).Item()
}

func TestSoftmaxGradSumsToZero(t *testing.T) {
	// Because softmax outputs sum to 1, gradients through a softmax row
	// must sum to ~0 for any incoming gradient.
	rng := rand.New(rand.NewSource(18))
	a := randParam(rng, 1, 6)
	w := Const(tensor.Rand(rng, 1, 6, 1))
	l := SumAll(Mul(SoftmaxRows(a), w))
	l.Backward()
	var s float64
	for _, v := range a.Grad.Data {
		s += v
	}
	if math.Abs(s) > 1e-10 {
		t.Fatalf("softmax input grad sums to %g, want 0", s)
	}
}
