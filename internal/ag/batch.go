// Batched linear-algebra ops: many independent products computed in
// one fan-out over the worker pool. The nn attention layers use these
// to fuse their per-head projections — each head's product is far too
// small to shard internally, but the batch as a whole parallelizes.
package ag

import (
	"fmt"

	"mtmlf/internal/tensor"
)

// MatMulBatch returns nodes for as[i] @ bs[i], computing every forward
// product in one parallel batch. Each returned node carries the same
// backward rule as MatMul, so gradients are identical to the unbatched
// form.
func MatMulBatch(as, bs []*Value) []*Value {
	if len(as) != len(bs) {
		panic(fmt.Sprintf("ag: MatMulBatch length mismatch %d vs %d", len(as), len(bs)))
	}
	at := make([]*tensor.Tensor, len(as))
	bt := make([]*tensor.Tensor, len(bs))
	for i := range as {
		at[i], bt[i] = as[i].T, bs[i].T
	}
	outs := tensor.MatMulBatch(at, bt)
	nodes := make([]*Value, len(as))
	for i := range as {
		a, b := as[i], bs[i]
		out := newNode("matmul", outs[i], a, b)
		out.backward = func(ctx *backCtx) {
			if a.needGrad {
				ctx.accum(a, tensor.MatMulTransB(out.Grad, b.T))
			}
			if b.needGrad {
				ctx.accum(b, tensor.MatMulTransA(a.T, out.Grad))
			}
		}
		nodes[i] = out
	}
	return nodes
}

// MatMulTransBBatch returns nodes for as[i] @ bs[i]^T computed in one
// parallel batch; gradients match MatMulTransB.
func MatMulTransBBatch(as, bs []*Value) []*Value {
	if len(as) != len(bs) {
		panic(fmt.Sprintf("ag: MatMulTransBBatch length mismatch %d vs %d", len(as), len(bs)))
	}
	at := make([]*tensor.Tensor, len(as))
	bt := make([]*tensor.Tensor, len(bs))
	for i := range as {
		at[i], bt[i] = as[i].T, bs[i].T
	}
	outs := tensor.MatMulTransBBatch(at, bt)
	nodes := make([]*Value, len(as))
	for i := range as {
		a, b := as[i], bs[i]
		out := newNode("matmulTB", outs[i], a, b)
		out.backward = func(ctx *backCtx) {
			if a.needGrad {
				ctx.accum(a, tensor.MatMul(out.Grad, b.T))
			}
			if b.needGrad {
				ctx.accum(b, tensor.MatMulTransA(out.Grad, a.T))
			}
		}
		nodes[i] = out
	}
	return nodes
}
