// Inference fast path: a forward-only evaluator.
//
// Training builds an autodiff graph — every op allocates a *Value
// node, a fresh result tensor, parent links and a backward closure,
// and Backward topo-sorts the lot. None of that is needed to *serve* a
// model. Eval is the no-grad twin of the op set: it computes the same
// forward arithmetic directly on raw tensors drawn from a tensor.Pool,
// so a steady-state forward pass performs no node construction, no
// parent tracking, no topo-sort bookkeeping, and (once the pool is
// warm) no heap allocation.
//
// Equivalence contract: for every op, Eval produces output BITWISE
// identical to the grad-tracked op's forward result (asserted with
// eps = 0 in eval_test.go). This is what lets the serving path swap in
// underneath the experiments without perturbing a single number.
//
// Lifetime rules: tensors returned by Eval ops belong to the
// evaluator's pool and die at the next Reset. An Eval is single-
// goroutine; concurrent inference sessions each acquire their own
// (AcquireEval / ReleaseEval, or the NoGrad convenience wrapper).
// DESIGN.md "Session ownership" spells out the full serving-layer
// contract (session = one Eval, session lifetime = batch lifetime,
// copy results out before release); internal/serve is built on it.
package ag

import (
	"fmt"
	"sync"

	"mtmlf/internal/tensor"
)

// Eval is a pooled forward-only evaluator — the substrate analogue of
// torch.no_grad() + inference tensor reuse. Not safe for concurrent
// use; see AcquireEval.
type Eval struct {
	pool *tensor.Pool
	// views is a freelist of tensor headers for zero-copy row views,
	// recycled on Reset like the pooled buffers.
	views []*tensor.Tensor
	vnext int
}

// NewEval creates an evaluator with an empty pool.
func NewEval() *Eval { return &Eval{pool: tensor.NewPool()} }

// Reset reclaims every tensor and view handed out by this evaluator.
func (e *Eval) Reset() {
	e.pool.Reset()
	e.vnext = 0
}

// Get returns a zeroed pooled tensor — scratch for callers that
// write elements selectively (one-hot feature rows and the like).
// The op methods below use the pool's unzeroed variant internally
// when they overwrite every element anyway.
func (e *Eval) Get(shape ...int) *tensor.Tensor { return e.pool.Get(shape...) }

var evalPool = sync.Pool{New: func() any { return NewEval() }}

// AcquireEval checks a warm evaluator out of the process-wide pool.
// Pair with ReleaseEval.
func AcquireEval() *Eval { return evalPool.Get().(*Eval) }

// ReleaseEval resets e and returns it to the process-wide pool. Every
// tensor it handed out becomes invalid.
func ReleaseEval(e *Eval) {
	e.Reset()
	evalPool.Put(e)
}

// NoGrad runs f with a pooled evaluator, then reclaims everything the
// evaluator handed out. Results that must survive f must be copied out
// (Clone) before it returns.
func NoGrad(f func(e *Eval)) {
	e := AcquireEval()
	defer ReleaseEval(e)
	f(e)
}

// RowsView returns a zero-copy view of rows [from, to) of t. The view
// shares t's backing array and dies at Reset; callers must treat it as
// read-only. Values are identical to ag.SliceRows's copy.
func (e *Eval) RowsView(t *tensor.Tensor, from, to int) *tensor.Tensor {
	m, n := t.Rows(), t.Cols()
	if from < 0 || to > m || from > to {
		panic(fmt.Sprintf("ag: Eval.RowsView [%d,%d) of %d rows", from, to, m))
	}
	return e.view(t.Data[from*n:to*n], to-from, n)
}

// RowSeg returns a zero-copy [1, to-from] view of columns [from, to)
// of row i of t (a single row segment is contiguous in row-major
// layout). Same lifetime and read-only rules as RowsView.
func (e *Eval) RowSeg(t *tensor.Tensor, i, from, to int) *tensor.Tensor {
	n := t.Cols()
	if i < 0 || i >= t.Rows() || from < 0 || to > n || from > to {
		panic(fmt.Sprintf("ag: Eval.RowSeg row %d cols [%d,%d) of %v", i, from, to, t.Shape))
	}
	return e.view(t.Data[i*n+from:i*n+to], 1, to-from)
}

// view hands out a recycled tensor header over data.
func (e *Eval) view(data []float64, rows, cols int) *tensor.Tensor {
	if e.vnext < len(e.views) {
		v := e.views[e.vnext]
		e.vnext++
		v.Data = data
		v.Shape[0], v.Shape[1] = rows, cols
		return v
	}
	v := &tensor.Tensor{Data: data, Shape: []int{rows, cols}}
	e.views = append(e.views, v)
	e.vnext++
	return v
}

// ---------------------------------------------------------------------------
// Op set (forward halves of the ag ops, pooled outputs)
// ---------------------------------------------------------------------------

// Add returns a + b.
func (e *Eval) Add(a, b *tensor.Tensor) *tensor.Tensor {
	out := e.pool.GetUninit(a.Shape...)
	tensor.AddInto(a, b, out)
	return out
}

// Scale returns s * a.
func (e *Eval) Scale(a *tensor.Tensor, s float64) *tensor.Tensor {
	out := e.pool.GetUninit(a.Shape...)
	tensor.ScaleInto(a, s, out)
	return out
}

// AddBias broadcasts a 1xN bias row across every row of a.
func (e *Eval) AddBias(a, bias *tensor.Tensor) *tensor.Tensor {
	out := e.pool.GetUninit(a.Shape...)
	tensor.AddBiasInto(a, bias, out)
	return out
}

// MatMul returns a @ b.
func (e *Eval) MatMul(a, b *tensor.Tensor) *tensor.Tensor {
	out := e.pool.Get(a.Rows(), b.Cols())
	tensor.MatMulInto(a, b, out)
	return out
}

// MatMulTransB returns a @ b^T.
func (e *Eval) MatMulTransB(a, b *tensor.Tensor) *tensor.Tensor {
	out := e.pool.GetUninit(a.Rows(), b.Rows())
	tensor.MatMulTransBInto(a, b, out)
	return out
}

// MatMulBatch returns as[i] @ bs[i] computed in one pool dispatch.
func (e *Eval) MatMulBatch(as, bs []*tensor.Tensor) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(as))
	for i := range as {
		outs[i] = e.pool.Get(as[i].Rows(), bs[i].Cols())
	}
	tensor.MatMulBatchInto(as, bs, outs)
	return outs
}

// MatMulTransBBatch returns as[i] @ bs[i]^T in one pool dispatch.
func (e *Eval) MatMulTransBBatch(as, bs []*tensor.Tensor) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(as))
	for i := range as {
		outs[i] = e.pool.GetUninit(as[i].Rows(), bs[i].Rows())
	}
	tensor.MatMulTransBBatchInto(as, bs, outs)
	return outs
}

// ReLU applies max(0, x) elementwise.
func (e *Eval) ReLU(a *tensor.Tensor) *tensor.Tensor {
	out := e.pool.GetUninit(a.Shape...)
	tensor.ReLUInto(a, out)
	return out
}

// GELU applies the tanh-approximation GELU elementwise.
func (e *Eval) GELU(a *tensor.Tensor) *tensor.Tensor {
	out := e.pool.GetUninit(a.Shape...)
	tensor.GELUInto(a, out)
	return out
}

// Tanh applies tanh elementwise.
func (e *Eval) Tanh(a *tensor.Tensor) *tensor.Tensor {
	out := e.pool.GetUninit(a.Shape...)
	tensor.TanhInto(a, out)
	return out
}

// Sigmoid applies the logistic function elementwise.
func (e *Eval) Sigmoid(a *tensor.Tensor) *tensor.Tensor {
	out := e.pool.GetUninit(a.Shape...)
	tensor.SigmoidInto(a, out)
	return out
}

// SoftmaxRows applies softmax to each row.
func (e *Eval) SoftmaxRows(a *tensor.Tensor) *tensor.Tensor {
	out := e.pool.GetUninit(a.Shape...)
	tensor.SoftmaxRowsInto(a, out)
	return out
}

// LogSoftmaxRows applies log-softmax to each row.
func (e *Eval) LogSoftmaxRows(a *tensor.Tensor) *tensor.Tensor {
	out := e.pool.GetUninit(a.Shape...)
	tensor.LogSoftmaxRowsInto(a, out)
	return out
}

// LayerNormRows normalizes each row and applies gain/bias.
func (e *Eval) LayerNormRows(a, gamma, beta *tensor.Tensor, eps float64) *tensor.Tensor {
	out := e.pool.GetUninit(a.Shape...)
	tensor.LayerNormRowsInto(a, gamma, beta, eps, out)
	return out
}

// ConcatRows stacks matrices with equal column counts vertically.
func (e *Eval) ConcatRows(vs ...*tensor.Tensor) *tensor.Tensor {
	if len(vs) == 0 {
		panic("ag: Eval.ConcatRows of nothing")
	}
	n := vs[0].Cols()
	total := 0
	for _, v := range vs {
		if v.Cols() != n {
			panic("ag: Eval.ConcatRows column mismatch")
		}
		total += v.Rows()
	}
	out := e.pool.GetUninit(total, n)
	r := 0
	for _, v := range vs {
		copy(out.Data[r*n:], v.Data)
		r += v.Rows()
	}
	return out
}

// ConcatCols stacks matrices with equal row counts horizontally.
func (e *Eval) ConcatCols(vs ...*tensor.Tensor) *tensor.Tensor {
	if len(vs) == 0 {
		panic("ag: Eval.ConcatCols of nothing")
	}
	m := vs[0].Rows()
	total := 0
	for _, v := range vs {
		if v.Rows() != m {
			panic("ag: Eval.ConcatCols row mismatch")
		}
		total += v.Cols()
	}
	out := e.pool.GetUninit(m, total)
	off := 0
	for _, v := range vs {
		c := v.Cols()
		for i := 0; i < m; i++ {
			copy(out.Row(i)[off:off+c], v.Row(i))
		}
		off += c
	}
	return out
}

// SliceCols returns a copy of columns [from, to) of a (copied because
// column slices are not contiguous).
func (e *Eval) SliceCols(a *tensor.Tensor, from, to int) *tensor.Tensor {
	m, n := a.Rows(), a.Cols()
	if from < 0 || to > n || from > to {
		panic(fmt.Sprintf("ag: Eval.SliceCols [%d,%d) of %d cols", from, to, n))
	}
	out := e.pool.GetUninit(m, to-from)
	for i := 0; i < m; i++ {
		copy(out.Row(i), a.Row(i)[from:to])
	}
	return out
}

// Gather returns the rows of w selected by idx, in order.
func (e *Eval) Gather(w *tensor.Tensor, idx []int) *tensor.Tensor {
	n := w.Cols()
	out := e.pool.GetUninit(len(idx), n)
	for i, ix := range idx {
		copy(out.Row(i), w.Row(ix))
	}
	return out
}
