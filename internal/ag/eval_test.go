package ag

import (
	"math/rand"
	"testing"

	"mtmlf/internal/tensor"
)

// TestEvalOpsBitwiseMatchGradOps asserts every Eval op's output is
// bitwise identical (eps = 0) to the forward result of the
// corresponding grad-tracked op.
func TestEvalOpsBitwiseMatchGradOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := tensor.Rand(rng, 7, 12, 2)
	b := tensor.Rand(rng, 7, 12, 2)
	w := tensor.Rand(rng, 12, 9, 1)
	k := tensor.Rand(rng, 5, 12, 1)
	bias := tensor.Rand(rng, 1, 12, 1)
	gamma := tensor.Rand(rng, 1, 12, 1)
	beta := tensor.Rand(rng, 1, 12, 1)

	e := NewEval()
	defer e.Reset()

	check := func(name string, got *tensor.Tensor, want *Value) {
		t.Helper()
		if !tensor.Equal(want.T, got, 0) {
			t.Fatalf("%s: Eval output diverges from grad-tracked forward", name)
		}
	}

	av, bv := Const(a), Const(b)
	check("Add", e.Add(a, b), Add(av, bv))
	check("Scale", e.Scale(a, -0.37), Scale(av, -0.37))
	check("AddBias", e.AddBias(a, bias), AddBias(av, Const(bias)))
	check("MatMul", e.MatMul(a, w), MatMul(av, Const(w)))
	check("MatMulTransB", e.MatMulTransB(a, k), MatMulTransB(av, Const(k)))
	check("ReLU", e.ReLU(a), ReLU(av))
	check("GELU", e.GELU(a), GELU(av))
	check("Tanh", e.Tanh(a), Tanh(av))
	check("Sigmoid", e.Sigmoid(a), Sigmoid(av))
	check("SoftmaxRows", e.SoftmaxRows(a), SoftmaxRows(av))
	check("LogSoftmaxRows", e.LogSoftmaxRows(a), LogSoftmaxRows(av))
	check("LayerNormRows", e.LayerNormRows(a, gamma, beta, 1e-5),
		LayerNormRows(av, Const(gamma), Const(beta), 1e-5))
	check("ConcatRows", e.ConcatRows(a, b), ConcatRows(av, bv))
	check("ConcatCols", e.ConcatCols(a, b), ConcatCols(av, bv))
	check("SliceCols", e.SliceCols(a, 3, 9), SliceCols(av, 3, 9))
	check("RowsView", e.RowsView(a, 2, 5), SliceRows(av, 2, 5))
	check("Gather", e.Gather(w, []int{3, 0, 3, 7}), Gather(Const(w), []int{3, 0, 3, 7}))

	batchA := []*tensor.Tensor{a, b}
	batchB := []*tensor.Tensor{w, w}
	gotB := e.MatMulBatch(batchA, batchB)
	wantB := MatMulBatch([]*Value{av, bv}, []*Value{Const(w), Const(w)})
	for i := range gotB {
		check("MatMulBatch", gotB[i], wantB[i])
	}
	gotTB := e.MatMulTransBBatch([]*tensor.Tensor{a, b}, []*tensor.Tensor{k, k})
	wantTB := MatMulTransBBatch([]*Value{av, bv}, []*Value{Const(k), Const(k)})
	for i := range gotTB {
		check("MatMulTransBBatch", gotTB[i], wantTB[i])
	}
}

// TestEvalSteadyStateAllocationFree asserts a warm evaluator runs a
// small forward chain without allocating.
func TestEvalSteadyStateAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := tensor.Rand(rng, 4, 16, 1)
	w := tensor.Rand(rng, 16, 16, 1)
	bias := tensor.Rand(rng, 1, 16, 1)
	e := NewEval()
	chain := func() {
		h := e.MatMul(x, w)
		h = e.AddBias(h, bias)
		h = e.GELU(h)
		h = e.SoftmaxRows(h)
		_ = e.RowsView(h, 0, 2)
		e.Reset()
	}
	chain() // warm the pool
	if allocs := testing.AllocsPerRun(50, chain); allocs > 0 {
		t.Fatalf("warm Eval chain allocates %.1f times per run", allocs)
	}
}

// TestNoGradReclaims checks the NoGrad wrapper hands the evaluator
// back warm: two successive sessions reuse the same buffers.
func TestNoGradReclaims(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := tensor.Rand(rng, 3, 8, 1)
	var first *tensor.Tensor
	NoGrad(func(e *Eval) { first = e.Scale(x, 2) })
	var second *tensor.Tensor
	var reused bool
	NoGrad(func(e *Eval) {
		second = e.Scale(x, 3)
		reused = &second.Data[0] == &first.Data[0]
	})
	if !reused {
		t.Skip("sync.Pool did not return the same evaluator (GC timing); nothing to assert")
	}
}
