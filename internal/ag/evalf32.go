// EvalF32: the reduced-precision inference session — the float32 twin
// of Eval for serving a precision-lowered model replica (see
// internal/nn's lowering pass and DESIGN.md §9).
//
// It reuses the pool/ownership discipline mtmlf-vet enforces verbatim:
// tensors returned by EvalF32 ops belong to the session's PoolF32 and
// die at the next Reset; a session is single-goroutine; concurrent
// sessions each acquire their own (AcquireEvalF32 / ReleaseEvalF32 —
// the Acquire/Release naming pair is what the poolrelease analyzer
// keys on, so the f32 tier is covered by the same contract gate).
//
// There is no gradient twin to be bitwise-equal to in this tier;
// instead the within-tier contract is serial == sharded bitwise
// (inherited from the f32 kernels), and cross-tier agreement with the
// float64 reference is calibrated by internal/calib.
package ag

import (
	"fmt"
	"sync"

	"mtmlf/internal/tensor"
)

// EvalF32 is a pooled forward-only float32 evaluator. Not safe for
// concurrent use; see AcquireEvalF32.
type EvalF32 struct {
	pool *tensor.PoolF32
	// views is a freelist of tensor headers for zero-copy row views,
	// recycled on Reset like the pooled buffers.
	views []*tensor.F32
	vnext int
	// qscratch is the int8 activation scratch LinearInt8 quantizes
	// into; grown on demand, retained across Resets so the steady
	// state allocates nothing.
	qscratch []int8
}

// NewEvalF32 creates an evaluator with an empty pool.
func NewEvalF32() *EvalF32 { return &EvalF32{pool: tensor.NewPoolF32()} }

// Reset reclaims every tensor and view handed out by this evaluator.
func (e *EvalF32) Reset() {
	e.pool.Reset()
	e.vnext = 0
}

// Get returns a zeroed pooled tensor — scratch for callers that write
// elements selectively (one-hot feature rows and the like).
func (e *EvalF32) Get(shape ...int) *tensor.F32 { return e.pool.Get(shape...) }

var evalF32Pool = sync.Pool{New: func() any { return NewEvalF32() }}

// AcquireEvalF32 checks a warm f32 evaluator out of the process-wide
// pool. Pair with ReleaseEvalF32.
func AcquireEvalF32() *EvalF32 { return evalF32Pool.Get().(*EvalF32) }

// ReleaseEvalF32 resets e and returns it to the process-wide pool.
// Every tensor it handed out becomes invalid.
func ReleaseEvalF32(e *EvalF32) {
	e.Reset()
	evalF32Pool.Put(e)
}

// NoGradF32 runs f with a pooled f32 evaluator, then reclaims
// everything the evaluator handed out. Results that must survive f
// must be copied out (Clone) before it returns.
func NoGradF32(f func(e *EvalF32)) {
	e := AcquireEvalF32()
	defer ReleaseEvalF32(e)
	f(e)
}

// RowsView returns a zero-copy view of rows [from, to) of t. The view
// shares t's backing array and dies at Reset; callers must treat it
// as read-only.
func (e *EvalF32) RowsView(t *tensor.F32, from, to int) *tensor.F32 {
	m, n := t.Rows(), t.Cols()
	if from < 0 || to > m || from > to {
		panic(fmt.Sprintf("ag: EvalF32.RowsView [%d,%d) of %d rows", from, to, m))
	}
	return e.view(t.Data[from*n:to*n], to-from, n)
}

// view hands out a recycled tensor header over data.
func (e *EvalF32) view(data []float32, rows, cols int) *tensor.F32 {
	if e.vnext < len(e.views) {
		v := e.views[e.vnext]
		e.vnext++
		v.Data = data
		v.Shape[0], v.Shape[1] = rows, cols
		return v
	}
	v := &tensor.F32{Data: data, Shape: []int{rows, cols}}
	e.views = append(e.views, v)
	e.vnext++
	return v
}

// ---------------------------------------------------------------------------
// Op set (f32 twins of the Eval ops, pooled outputs)
// ---------------------------------------------------------------------------

// Add returns a + b.
func (e *EvalF32) Add(a, b *tensor.F32) *tensor.F32 {
	out := e.pool.GetUninit(a.Shape...)
	tensor.AddF32Into(a, b, out)
	return out
}

// Scale returns s * a (s is rounded to float32 once, not per element).
func (e *EvalF32) Scale(a *tensor.F32, s float64) *tensor.F32 {
	out := e.pool.GetUninit(a.Shape...)
	tensor.ScaleF32Into(a, float32(s), out)
	return out
}

// AddBias broadcasts a 1xN bias row across every row of a.
func (e *EvalF32) AddBias(a, bias *tensor.F32) *tensor.F32 {
	out := e.pool.GetUninit(a.Shape...)
	tensor.AddBiasF32Into(a, bias, out)
	return out
}

// MatMul returns a @ b.
func (e *EvalF32) MatMul(a, b *tensor.F32) *tensor.F32 {
	out := e.pool.Get(a.Rows(), b.Cols())
	tensor.MatMulF32Into(a, b, out)
	return out
}

// MatMulTransB returns a @ b^T.
func (e *EvalF32) MatMulTransB(a, b *tensor.F32) *tensor.F32 {
	out := e.pool.GetUninit(a.Rows(), b.Rows())
	tensor.MatMulTransBF32Into(a, b, out)
	return out
}

// MatMulBatch returns as[i] @ bs[i] computed in one pool dispatch.
func (e *EvalF32) MatMulBatch(as, bs []*tensor.F32) []*tensor.F32 {
	outs := make([]*tensor.F32, len(as))
	for i := range as {
		outs[i] = e.pool.Get(as[i].Rows(), bs[i].Cols())
	}
	tensor.MatMulF32BatchInto(as, bs, outs)
	return outs
}

// MatMulTransBBatch returns as[i] @ bs[i]^T in one pool dispatch.
func (e *EvalF32) MatMulTransBBatch(as, bs []*tensor.F32) []*tensor.F32 {
	outs := make([]*tensor.F32, len(as))
	for i := range as {
		outs[i] = e.pool.GetUninit(as[i].Rows(), bs[i].Rows())
	}
	tensor.MatMulTransBF32BatchInto(as, bs, outs)
	return outs
}

// LinearInt8 returns x @ w_dequant + bias for int8-quantized weights:
// dynamic per-row activation quantization, int32 accumulation, and
// dequantization fused into the bias add (see tensor.MatMulInt8Into).
func (e *EvalF32) LinearInt8(x *tensor.F32, w *tensor.Int8Matrix, bias *tensor.F32) *tensor.F32 {
	out := e.pool.GetUninit(x.Rows(), w.Out)
	need := x.Rows() * x.Cols()
	if cap(e.qscratch) < need {
		e.qscratch = make([]int8, need)
	}
	tensor.MatMulInt8Into(x, w, bias, out, e.qscratch[:need])
	return out
}

// ReLU applies max(0, x) elementwise.
func (e *EvalF32) ReLU(a *tensor.F32) *tensor.F32 {
	out := e.pool.GetUninit(a.Shape...)
	tensor.ReLUF32Into(a, out)
	return out
}

// GELU applies the tanh-approximation GELU elementwise.
func (e *EvalF32) GELU(a *tensor.F32) *tensor.F32 {
	out := e.pool.GetUninit(a.Shape...)
	tensor.GELUF32Into(a, out)
	return out
}

// Tanh applies tanh elementwise.
func (e *EvalF32) Tanh(a *tensor.F32) *tensor.F32 {
	out := e.pool.GetUninit(a.Shape...)
	tensor.TanhF32Into(a, out)
	return out
}

// Sigmoid applies the logistic function elementwise.
func (e *EvalF32) Sigmoid(a *tensor.F32) *tensor.F32 {
	out := e.pool.GetUninit(a.Shape...)
	tensor.SigmoidF32Into(a, out)
	return out
}

// SoftmaxRows applies softmax to each row.
func (e *EvalF32) SoftmaxRows(a *tensor.F32) *tensor.F32 {
	out := e.pool.GetUninit(a.Shape...)
	tensor.SoftmaxRowsF32Into(a, out)
	return out
}

// LogSoftmaxRows applies log-softmax to each row.
func (e *EvalF32) LogSoftmaxRows(a *tensor.F32) *tensor.F32 {
	out := e.pool.GetUninit(a.Shape...)
	tensor.LogSoftmaxRowsF32Into(a, out)
	return out
}

// LayerNormRows normalizes each row and applies gain/bias.
func (e *EvalF32) LayerNormRows(a, gamma, beta *tensor.F32, eps float64) *tensor.F32 {
	out := e.pool.GetUninit(a.Shape...)
	tensor.LayerNormRowsF32Into(a, gamma, beta, eps, out)
	return out
}

// ConcatRows stacks matrices with equal column counts vertically.
func (e *EvalF32) ConcatRows(vs ...*tensor.F32) *tensor.F32 {
	if len(vs) == 0 {
		panic("ag: EvalF32.ConcatRows of nothing")
	}
	n := vs[0].Cols()
	total := 0
	for _, v := range vs {
		if v.Cols() != n {
			panic("ag: EvalF32.ConcatRows column mismatch")
		}
		total += v.Rows()
	}
	out := e.pool.GetUninit(total, n)
	r := 0
	for _, v := range vs {
		copy(out.Data[r*n:], v.Data)
		r += v.Rows()
	}
	return out
}

// ConcatCols stacks matrices with equal row counts horizontally.
func (e *EvalF32) ConcatCols(vs ...*tensor.F32) *tensor.F32 {
	if len(vs) == 0 {
		panic("ag: EvalF32.ConcatCols of nothing")
	}
	m := vs[0].Rows()
	total := 0
	for _, v := range vs {
		if v.Rows() != m {
			panic("ag: EvalF32.ConcatCols row mismatch")
		}
		total += v.Cols()
	}
	out := e.pool.GetUninit(m, total)
	off := 0
	for _, v := range vs {
		c := v.Cols()
		for i := 0; i < m; i++ {
			copy(out.Row(i)[off:off+c], v.Row(i))
		}
		off += c
	}
	return out
}

// SliceCols returns a copy of columns [from, to) of a (copied because
// column slices are not contiguous).
func (e *EvalF32) SliceCols(a *tensor.F32, from, to int) *tensor.F32 {
	m, n := a.Rows(), a.Cols()
	if from < 0 || to > n || from > to {
		panic(fmt.Sprintf("ag: EvalF32.SliceCols [%d,%d) of %d cols", from, to, n))
	}
	out := e.pool.GetUninit(m, to-from)
	for i := 0; i < m; i++ {
		copy(out.Row(i), a.Row(i)[from:to])
	}
	return out
}

// Gather returns the rows of w selected by idx, in order.
func (e *EvalF32) Gather(w *tensor.F32, idx []int) *tensor.F32 {
	n := w.Cols()
	out := e.pool.GetUninit(len(idx), n)
	for i, ix := range idx {
		copy(out.Row(i), w.Row(ix))
	}
	return out
}
