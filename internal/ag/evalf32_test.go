package ag

import (
	"math/rand"
	"testing"

	"mtmlf/internal/tensor"
)

func f32Of(t *tensor.Tensor) *tensor.F32 { return tensor.F32FromTensor(t) }

// TestEvalF32OpsMatchKernels asserts every EvalF32 op is bitwise
// identical (eps = 0) to calling the underlying f32 kernel directly —
// the pooled session adds ownership, not arithmetic.
func TestEvalF32OpsMatchKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := f32Of(tensor.Rand(rng, 7, 12, 2))
	b := f32Of(tensor.Rand(rng, 7, 12, 2))
	w := f32Of(tensor.Rand(rng, 12, 9, 1))
	k := f32Of(tensor.Rand(rng, 5, 12, 1))
	bias := f32Of(tensor.Rand(rng, 1, 12, 1))
	gamma := f32Of(tensor.Rand(rng, 1, 12, 1))
	beta := f32Of(tensor.Rand(rng, 1, 12, 1))

	e := NewEvalF32()
	defer e.Reset()

	check := func(name string, got, want *tensor.F32) {
		t.Helper()
		if !tensor.EqualF32(got, want, 0) {
			t.Fatalf("%s: EvalF32 output diverges from direct kernel call", name)
		}
	}
	into := func(f func(out *tensor.F32)) *tensor.F32 {
		out := tensor.NewF32(a.Shape...)
		f(out)
		return out
	}

	check("Add", e.Add(a, b), into(func(o *tensor.F32) { tensor.AddF32Into(a, b, o) }))
	check("Scale", e.Scale(a, -0.37), into(func(o *tensor.F32) { tensor.ScaleF32Into(a, float32(-0.37), o) }))
	check("AddBias", e.AddBias(a, bias), into(func(o *tensor.F32) { tensor.AddBiasF32Into(a, bias, o) }))
	check("MatMul", e.MatMul(a, w), tensor.MatMulF32(a, w))
	check("MatMulTransB", e.MatMulTransB(a, k), tensor.MatMulTransBF32(a, k))
	check("ReLU", e.ReLU(a), into(func(o *tensor.F32) { tensor.ReLUF32Into(a, o) }))
	check("GELU", e.GELU(a), into(func(o *tensor.F32) { tensor.GELUF32Into(a, o) }))
	check("Tanh", e.Tanh(a), into(func(o *tensor.F32) { tensor.TanhF32Into(a, o) }))
	check("Sigmoid", e.Sigmoid(a), into(func(o *tensor.F32) { tensor.SigmoidF32Into(a, o) }))
	check("SoftmaxRows", e.SoftmaxRows(a), into(func(o *tensor.F32) { tensor.SoftmaxRowsF32Into(a, o) }))
	check("LogSoftmaxRows", e.LogSoftmaxRows(a), into(func(o *tensor.F32) { tensor.LogSoftmaxRowsF32Into(a, o) }))
	check("LayerNormRows", e.LayerNormRows(a, gamma, beta, 1e-5),
		into(func(o *tensor.F32) { tensor.LayerNormRowsF32Into(a, gamma, beta, 1e-5, o) }))

	batchM := e.MatMulBatch([]*tensor.F32{a, b}, []*tensor.F32{w, w})
	check("MatMulBatch[0]", batchM[0], tensor.MatMulF32(a, w))
	check("MatMulBatch[1]", batchM[1], tensor.MatMulF32(b, w))
	batchT := e.MatMulTransBBatch([]*tensor.F32{a, b}, []*tensor.F32{k, k})
	check("MatMulTransBBatch[0]", batchT[0], tensor.MatMulTransBF32(a, k))
	check("MatMulTransBBatch[1]", batchT[1], tensor.MatMulTransBF32(b, k))
}

// TestEvalF32StructuralOps exercises the copy/view ops against
// hand-built expectations.
func TestEvalF32StructuralOps(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a64 := tensor.Rand(rng, 4, 6, 1)
	b64 := tensor.Rand(rng, 4, 6, 1)
	a, b := f32Of(a64), f32Of(b64)

	e := NewEvalF32()
	defer e.Reset()

	cr := e.ConcatRows(a, b)
	if cr.Rows() != 8 || cr.Cols() != 6 {
		t.Fatalf("ConcatRows shape %v", cr.Shape)
	}
	if cr.At(5, 2) != b.At(1, 2) {
		t.Fatal("ConcatRows content mismatch")
	}

	cc := e.ConcatCols(a, b)
	if cc.Rows() != 4 || cc.Cols() != 12 {
		t.Fatalf("ConcatCols shape %v", cc.Shape)
	}
	if cc.At(2, 9) != b.At(2, 3) {
		t.Fatal("ConcatCols content mismatch")
	}

	sc := e.SliceCols(a, 1, 4)
	if sc.Rows() != 4 || sc.Cols() != 3 {
		t.Fatalf("SliceCols shape %v", sc.Shape)
	}
	if sc.At(3, 0) != a.At(3, 1) {
		t.Fatal("SliceCols content mismatch")
	}

	rv := e.RowsView(a, 1, 3)
	if rv.Rows() != 2 || rv.Cols() != 6 {
		t.Fatalf("RowsView shape %v", rv.Shape)
	}
	if &rv.Data[0] != &a.Data[6] {
		t.Fatal("RowsView is not a zero-copy view")
	}

	g := e.Gather(a, []int{2, 0, 2})
	if g.Rows() != 3 || g.At(0, 4) != a.At(2, 4) || g.At(1, 4) != a.At(0, 4) {
		t.Fatal("Gather content mismatch")
	}
}

// TestEvalF32LinearInt8 checks the session-owned scratch path against a
// direct MatMulInt8Into call, bitwise, and that the scratch is grown
// once and reused.
func TestEvalF32LinearInt8(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := f32Of(tensor.RandNorm(rng, 6, 24, 1))
	w := tensor.QuantizeLinear(tensor.Xavier(rng, 24, 10))
	bias := f32Of(tensor.RandNorm(rng, 1, 10, 1))

	e := NewEvalF32()
	defer e.Reset()

	got := e.LinearInt8(x, w, bias)
	want := tensor.NewF32(6, 10)
	tensor.MatMulInt8Into(x, w, bias, want, make([]int8, 6*24))
	if !tensor.EqualF32(got, want, 0) {
		t.Fatal("LinearInt8 diverges from direct MatMulInt8Into")
	}

	buf := &e.qscratch[0]
	e.Reset()
	_ = e.LinearInt8(x, w, bias)
	if &e.qscratch[0] != buf {
		t.Fatal("LinearInt8 scratch not reused across Reset")
	}
}

// TestEvalF32SteadyStateAllocationFree asserts a warm f32 evaluator
// runs a forward chain (including an int8 linear) without allocating.
func TestEvalF32SteadyStateAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	x := f32Of(tensor.Rand(rng, 4, 16, 1))
	w := f32Of(tensor.Rand(rng, 16, 16, 1))
	w8 := tensor.QuantizeLinear(tensor.Xavier(rng, 16, 16))
	bias := f32Of(tensor.Rand(rng, 1, 16, 1))
	e := NewEvalF32()
	chain := func() {
		h := e.MatMul(x, w)
		h = e.AddBias(h, bias)
		h = e.GELU(h)
		h = e.LinearInt8(h, w8, bias)
		h = e.SoftmaxRows(h)
		_ = e.RowsView(h, 0, 2)
		e.Reset()
	}
	chain() // warm the pool and the int8 scratch
	if allocs := testing.AllocsPerRun(50, chain); allocs > 0 {
		t.Fatalf("warm EvalF32 chain allocates %.1f times per run", allocs)
	}
}

// TestAcquireReleaseEvalF32 checks the process-wide pool hands the
// evaluator back warm.
func TestAcquireReleaseEvalF32(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	x := f32Of(tensor.Rand(rng, 3, 8, 1))
	e := AcquireEvalF32()
	first := e.Scale(x, 2)
	ReleaseEvalF32(e)
	e2 := AcquireEvalF32()
	defer ReleaseEvalF32(e2)
	second := e2.Scale(x, 3)
	if e2 == e && &second.Data[0] != &first.Data[0] {
		t.Fatal("reacquired evaluator did not reuse its pooled buffer")
	}
}
