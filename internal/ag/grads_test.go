package ag

import (
	"math/rand"
	"sync"
	"testing"

	"mtmlf/internal/tensor"
)

// buildLoss makes a small two-parameter graph whose loss depends on
// the input row x.
func buildLoss(w, b *Value, x *tensor.Tensor) *Value {
	h := Tanh(AddBias(MatMul(Const(x), w), b))
	return MeanAll(Mul(h, h))
}

// TestBackwardIntoMatchesBackward verifies a sinked backward pass
// produces exactly the gradients of the classic pass and leaves the
// shared parameters' Grad fields untouched.
func TestBackwardIntoMatchesBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := Param(tensor.Xavier(rng, 4, 3))
	b := Param(tensor.New(1, 3))
	x := tensor.RandNorm(rng, 2, 4, 1)

	buildLoss(w, b, x).Backward()
	wantW, wantB := w.Grad.Clone(), b.Grad.Clone()
	w.Grad, b.Grad = nil, nil

	sink := Grads{}
	buildLoss(w, b, x).BackwardInto(sink)
	if w.Grad != nil || b.Grad != nil {
		t.Fatal("BackwardInto wrote to the shared Grad fields")
	}
	if !tensor.Equal(sink[w], wantW, 0) || !tensor.Equal(sink[b], wantB, 0) {
		t.Fatal("sinked gradients differ from Backward gradients")
	}
}

// TestConcurrentBackwardInto runs many backward passes over SHARED
// parameters concurrently, each into a private sink — the
// data-parallel training pattern — and checks the reduction equals
// the serial sum. Run under -race this is the core safety test.
func TestConcurrentBackwardInto(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := Param(tensor.Xavier(rng, 6, 5))
	b := Param(tensor.New(1, 5))
	params := []*Value{w, b}
	const n = 16
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		xs[i] = tensor.RandNorm(rng, 3, 6, 1)
	}

	// Serial reference: per-example sinks reduced in example order.
	ref := make([]Grads, n)
	for i, x := range xs {
		ref[i] = Grads{}
		buildLoss(w, b, x).BackwardInto(ref[i])
	}
	ReduceGrads(params, ref, 1.0/n)
	wantW, wantB := w.Grad.Clone(), b.Grad.Clone()
	w.Grad, b.Grad = nil, nil

	// Concurrent: same per-example sinks filled from goroutines.
	slots := make([]Grads, n)
	var wg sync.WaitGroup
	for wkr := 0; wkr < 4; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := wkr; i < n; i += 4 {
				slots[i] = Grads{}
				buildLoss(w, b, xs[i]).BackwardInto(slots[i])
			}
		}(wkr)
	}
	wg.Wait()
	ReduceGrads(params, slots, 1.0/n)
	if !tensor.Equal(w.Grad, wantW, 0) || !tensor.Equal(b.Grad, wantB, 0) {
		t.Fatal("concurrent reduction differs from serial reduction")
	}
}

// TestMatMulBatchGradcheck verifies the batched ops' values and
// gradients against the unbatched ops.
func TestMatMulBatchGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const pairs = 3
	for trial := 0; trial < 2; trial++ {
		var as, bs, as2, bs2 []*Value
		for i := 0; i < pairs; i++ {
			at := tensor.RandNorm(rng, 3, 4, 1)
			bt := tensor.RandNorm(rng, 4, 2, 1)
			as = append(as, Param(at.Clone()))
			bs = append(bs, Param(bt.Clone()))
			as2 = append(as2, Param(at.Clone()))
			bs2 = append(bs2, Param(bt.Clone()))
		}
		outs := MatMulBatch(as, bs)
		loss := Scalar(0)
		for _, o := range outs {
			loss = Add(loss, SumAll(Mul(o, o)))
		}
		loss.Backward()

		var ref *Value = Scalar(0)
		for i := 0; i < pairs; i++ {
			o := MatMul(as2[i], bs2[i])
			ref = Add(ref, SumAll(Mul(o, o)))
		}
		ref.Backward()

		if loss.Item() != ref.Item() {
			t.Fatalf("batched loss %g != unbatched %g", loss.Item(), ref.Item())
		}
		for i := 0; i < pairs; i++ {
			if !tensor.Equal(as[i].Grad, as2[i].Grad, 0) || !tensor.Equal(bs[i].Grad, bs2[i].Grad, 0) {
				t.Fatalf("pair %d: batched gradients differ from unbatched", i)
			}
		}
	}
}

// TestMatMulTransBBatchMatches verifies the transB batch against the
// single op.
func TestMatMulTransBBatchMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a1 := Param(tensor.RandNorm(rng, 3, 5, 1))
	b1 := Param(tensor.RandNorm(rng, 2, 5, 1))
	a2 := Param(a1.T.Clone())
	b2 := Param(b1.T.Clone())

	batched := MatMulTransBBatch([]*Value{a1}, []*Value{b1})[0]
	single := MatMulTransB(a2, b2)
	if !tensor.Equal(batched.T, single.T, 0) {
		t.Fatal("forward differs")
	}
	SumAll(Mul(batched, batched)).Backward()
	SumAll(Mul(single, single)).Backward()
	if !tensor.Equal(a1.Grad, a2.Grad, 0) || !tensor.Equal(b1.Grad, b2.Grad, 0) {
		t.Fatal("backward differs")
	}
}
