// Package analysis is the repo's static-analysis gate: five custom
// analyzers that turn the codebase's load-bearing contracts —
// bitwise-reproducible training, atomic CRC-framed artifact IO, and
// pooled-session ownership on the no-grad serving path — into
// machine-checked invariants. The cmd/mtmlf-vet multichecker runs
// them over the whole module (`make vet-custom`); each analyzer also
// ships analysistest-style fixture packages under testdata/src.
//
// The framework deliberately mirrors the golang.org/x/tools
// go/analysis API shape (Analyzer, Pass, Diagnostic, testdata `//
// want` fixtures) but is built on the standard library alone
// (go/ast, go/types, go/importer), so the gate needs no module
// downloads to run.
//
// Escape hatch: a violation that is genuinely safe carries a
// justification comment on its line or the line above —
// `//mtmlf:unordered-ok` for map iteration whose order provably
// cannot reach an artifact or a trajectory, or the generic
// `//mtmlf:allow:<analyzer> <reason>` for the other analyzers. Every
// suppression is visible in the diff and greppable; the count at any
// commit is the honest baseline.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named check. Run inspects a fully loaded package
// via the Pass and reports diagnostics through it.
type Analyzer struct {
	Name string
	// Doc is the one-paragraph contract statement shown by
	// `mtmlf-vet -help`.
	Doc string
	Run func(*Pass) error
	// SuppressAliases are extra justification-comment directives (in
	// addition to the generic "allow:<name>") that silence this
	// analyzer, e.g. "unordered-ok" for mapiter.
	SuppressAliases []string
	// NoSuppress makes the analyzer a hard law: justification
	// comments are ignored and every violation is reported.
	NoSuppress bool
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one loaded package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// PkgPath is the import path ("mtmlf/internal/corpus"); fixture
	// packages use their bare directory name.
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info

	diags      []Diagnostic
	suppressed map[string]map[int]bool // filename -> set of suppressed lines
}

// Reportf records a diagnostic at pos unless a justification comment
// suppresses that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.lineSuppressed(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// lineSuppressed reports whether a suppression comment for this
// analyzer sits on the diagnostic's line or the line directly above.
func (p *Pass) lineSuppressed(pos token.Position) bool {
	if p.Analyzer.NoSuppress {
		return false
	}
	lines := p.suppressed[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// buildSuppressions indexes every //mtmlf: directive comment that
// names this analyzer, by file and line.
func (p *Pass) buildSuppressions() {
	p.suppressed = make(map[string]map[int]bool)
	directives := []string{"allow:" + p.Analyzer.Name}
	directives = append(directives, p.Analyzer.SuppressAliases...)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//mtmlf:")
				if !ok {
					continue
				}
				for _, d := range directives {
					if text == d || strings.HasPrefix(text, d+" ") {
						position := p.Fset.Position(c.Pos())
						m := p.suppressed[position.Filename]
						if m == nil {
							m = make(map[int]bool)
							p.suppressed[position.Filename] = m
						}
						m[position.Line] = true
					}
				}
			}
		}
	}
}

// RunAnalyzer applies a to pkg and returns its diagnostics sorted in
// source order.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		PkgPath:   pkg.Path,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	pass.buildSuppressions()
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	return pass.diags, nil
}

// All returns the five analyzers in their canonical report order.
func All() []*Analyzer {
	return []*Analyzer{MapIter, GlobalRand, AtomicWrite, GobRegister, PoolRelease}
}

// calleeObject resolves the called function or method of call, or nil
// for dynamic/unresolvable calls.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-scope function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Name() != name {
		return false
	}
	if fn.Pkg().Path() != pkgPath {
		return false
	}
	// Package-scope only: methods carry a receiver.
	return fn.Signature().Recv() == nil
}
