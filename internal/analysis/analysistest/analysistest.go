// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against `// want`
// expectations embedded in the fixtures — the same convention as
// golang.org/x/tools' analysistest, rebuilt on the repo's stdlib-only
// analysis framework.
//
// A fixture line that should be flagged carries a comment of the form
//
//	m[k]++ // want `iteration over map`
//	m[k]++ // want "first" "second"
//
// where each quoted string is a regexp that must match the message of
// a diagnostic reported on that line. Lines without a want comment
// must produce no diagnostics.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mtmlf/internal/analysis"
)

// expectation is one want regexp anchored to a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads testdata/src/<pkg> for each named fixture package, applies
// the analyzer, and reports any mismatch between diagnostics and the
// fixtures' want comments as test failures.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewLoader()
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		pkg, err := loader.LoadDir(dir, name)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if pkg == nil {
			t.Fatalf("%s: no Go files in %s", name, dir)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error in fixture: %v", name, terr)
		}
		diags, err := analysis.RunAnalyzer(a, pkg)
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		checkExpectations(t, pkg, diags)
	}
}

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.met || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts every `// want` comment with its line.
func parseWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses a want payload: a sequence of Go-quoted or
// backquoted strings.
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: want patterns must be quoted strings, got %q", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		raw := s[:end+2]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", pos, raw, err)
		}
		pats = append(pats, pat)
		s = s[end+2:]
	}
	return pats
}
