package analysis

import (
	"go/ast"
)

// AtomicWrite forbids direct os.WriteFile and os.Create outside
// internal/ckptio. Artifacts (checkpoints, snapshots, corpora, BENCH
// reports, trajectory files) must be published through
// ckptio.WriteFileAtomic — temp file, fsync, rename, directory fsync
// — so a crash or a concurrent reader can never observe a torn file.
// A raw write that is genuinely not an artifact (none exist today)
// would carry //mtmlf:allow:atomicwrite with its justification.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "forbid os.WriteFile/os.Create outside internal/ckptio (use ckptio.WriteFileAtomic)",
	Run:  runAtomicWrite,
}

func runAtomicWrite(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pass.TypesInfo, call)
			for _, name := range []string{"WriteFile", "Create"} {
				if isPkgFunc(obj, "os", name) {
					pass.Reportf(call.Pos(), "os.%s bypasses the atomic-commit path; write artifacts via ckptio.WriteFileAtomic", name)
				}
			}
			return true
		})
	}
	return nil
}
