package analysis_test

import (
	"testing"

	"mtmlf/internal/analysis"
	"mtmlf/internal/analysis/analysistest"
)

func TestAtomicWrite(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.AtomicWrite, "atomicwrite")
}
