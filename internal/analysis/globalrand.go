package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalRand forbids the process-global entropy sources in
// determinism-critical packages: package-level math/rand draws (which
// share one unseedable-per-call-site global source) and time.Now()
// (wall clock). Randomness on the training path must flow through an
// injected *rand.Rand seeded from the run configuration, so the same
// seed reproduces the same trajectory at any worker count;
// constructing such a generator (rand.New, rand.NewSource,
// rand.NewZipf) is allowed. Wall-clock reads belong to the serving
// and measurement layers only.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid global math/rand draws and time.Now in determinism-critical packages (inject *rand.Rand instead)",
	Run:  runGlobalRand,
}

// globalRandAllowed are the math/rand package functions that build an
// injected generator rather than drawing from the global source.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runGlobalRand(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Signature().Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !globalRandAllowed[fn.Name()] {
					pass.Reportf(sel.Pos(), "rand.%s draws from the process-global source; inject a seeded *rand.Rand instead", fn.Name())
				}
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(sel.Pos(), "time.Now is wall-clock and breaks reproducibility here; take the time as a parameter or move the read to the serving layer")
				}
			}
			return true
		})
	}
	return nil
}
