package analysis_test

import (
	"testing"

	"mtmlf/internal/analysis"
	"mtmlf/internal/analysis/analysistest"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GlobalRand, "globalrand")
}
