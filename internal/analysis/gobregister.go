package analysis

import (
	"go/ast"
	"path/filepath"
)

// GobRegister forbids gob.Register and gob.RegisterName outside
// gobtypes.go. encoding/gob assigns wire type IDs in first-encode
// order process-wide, and those IDs appear in the encoded bytes — so
// checkpoint byte-identity (the durability drills `cmp` artifacts)
// requires that every gob type is pinned in one canonical order in
// internal/mtmlf/gobtypes.go before any artifact is produced. A
// registration anywhere else reintroduces order dependence. This
// analyzer has no comment escape hatch on purpose: move the
// registration, don't justify it.
var GobRegister = &Analyzer{
	Name:       "gobregister",
	Doc:        "forbid gob.Register/RegisterName outside gobtypes.go (pinned type-ID allocation order)",
	NoSuppress: true,
	Run:        runGobRegister,
}

func runGobRegister(pass *Pass) error {
	for _, file := range pass.Files {
		if filepath.Base(pass.Fset.Position(file.Pos()).Filename) == "gobtypes.go" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pass.TypesInfo, call)
			for _, name := range []string{"Register", "RegisterName"} {
				if isPkgFunc(obj, "encoding/gob", name) {
					pass.Reportf(call.Pos(), "gob.%s outside gobtypes.go perturbs the pinned wire type-ID order; register the type in internal/mtmlf/gobtypes.go", name)
				}
			}
			return true
		})
	}
	return nil
}
