package analysis_test

import (
	"testing"

	"mtmlf/internal/analysis"
	"mtmlf/internal/analysis/analysistest"
)

func TestGobRegister(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GobRegister, "gobregister")
}
