package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Dir is the directory the sources were read from.
	Dir string
	// Path is the import path (module-relative); fixture packages use
	// their bare directory name.
	Path string
	Fset *token.FileSet
	// Files holds the parsed non-test sources, sorted by filename.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check problems. Analysis proceeds on
	// partial information; the driver surfaces these separately so a
	// broken tree cannot silently produce a green gate.
	TypeErrors []error
}

// Loader parses and type-checks package directories. One Loader
// shares a FileSet and an import cache across every package it loads,
// so the module's dependency graph is type-checked once.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader backed by the stdlib source importer,
// which resolves both standard-library and module-local imports from
// source — no network, no export data, no x/tools.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// LoadDir loads the package in dir under the given import path. Test
// files (_test.go) are excluded: the gate checks the production
// contracts; tests exercise them.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil
	}

	pkg := &Package{Dir: dir, Path: importPath, Fset: l.fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", filepath.Join(dir, name), err)
		}
		pkg.Files = append(pkg.Files, f)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check fills Info maps for everything it can resolve even when it
	// returns an error; analyzers run on that partial information.
	pkg.Types, _ = conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
	return pkg, nil
}

// ModulePackages walks the module rooted at root (the directory
// holding go.mod) and returns the import paths of every package
// directory containing non-test Go files, sorted. testdata trees,
// hidden directories, and vendor are skipped, matching `./...`.
func ModulePackages(root string) ([]string, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	var paths []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != importPath {
			paths = append(paths, importPath)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	// WalkDir visits files of one directory contiguously, but dedupe
	// defensively in case of interleaving across nested dirs.
	out := paths[:0]
	for i, p := range paths {
		if i == 0 || paths[i-1] != p {
			out = append(out, p)
		}
	}
	return out, nil
}

// PackageDir maps an import path back to its directory under root.
func PackageDir(root, modPath, importPath string) string {
	if importPath == modPath {
		return root
	}
	return filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(importPath, modPath+"/")))
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
