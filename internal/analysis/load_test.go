package analysis_test

import (
	"slices"
	"testing"

	"mtmlf/internal/analysis"
)

// TestModulePackages walks the real module and checks the package
// list has the expected shape: the analyzers' own package is present,
// testdata fixture packages are not.
func TestModulePackages(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.ModulePackages(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mtmlf/internal/analysis",
		"mtmlf/internal/ckptio",
		"mtmlf/cmd/mtmlf-vet",
	} {
		if !slices.Contains(pkgs, want) {
			t.Errorf("ModulePackages: missing %s", want)
		}
	}
	if !slices.IsSorted(pkgs) {
		t.Errorf("ModulePackages not sorted: %v", pkgs)
	}
	for _, p := range pkgs {
		if analysis.InScope(analysis.MapIter, p) && !analysis.DeterminismCritical[p] {
			t.Errorf("mapiter in scope for non-critical %s", p)
		}
		if slices.Contains([]string{"mapiter", "globalrand"}, p) {
			t.Errorf("fixture package %s leaked into module walk", p)
		}
	}
}

// TestLoadDirTypeInfo loads a real package and checks type info is
// populated — the analyzers lean on Uses/Types being resolvable.
func TestLoadDirTypeInfo(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir(analysis.PackageDir(root, "mtmlf", "mtmlf/internal/ckptio"), "mtmlf/internal/ckptio")
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatal("LoadDir returned no package for internal/ckptio")
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("type errors loading ckptio: %v", pkg.TypeErrors)
	}
	if len(pkg.Info.Uses) == 0 {
		t.Fatal("no Uses info recorded")
	}
	if pkg.Types == nil || pkg.Types.Name() != "ckptio" {
		t.Fatalf("bad types package: %v", pkg.Types)
	}
}
