package analysis

import (
	"go/ast"
	"go/types"
)

// MapIter flags `range` over a map in a determinism-critical package.
// Go randomizes map iteration order per run, so any map range whose
// body's effect depends on visit order — accumulating into a float,
// appending examples, writing an artifact section — breaks the
// bitwise-reproducibility contract the training path guarantees at
// any worker count.
//
// Two shapes pass without a justification comment:
//
//   - the key-collection idiom: a loop whose whole body is
//     `keys = append(keys, k)` where the collected slice is passed to
//     a sort call later in the same function — the canonical
//     sort-the-keys-then-range pattern;
//   - a loop suppressed with //mtmlf:unordered-ok on its line or the
//     line above, for bodies that are provably order-independent
//     (e.g. writing into another map, or folding with a commutative
//     op over ints).
var MapIter = &Analyzer{
	Name:            "mapiter",
	Doc:             "flag map iteration in determinism-critical packages (sort keys first, or justify with //mtmlf:unordered-ok)",
	SuppressAliases: []string{"unordered-ok"},
	Run:             runMapIter,
}

func runMapIter(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncMapRanges(pass, fn)
		}
	}
	return nil
}

func checkFuncMapRanges(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if collected := keyCollectionTarget(pass, rng); collected != nil {
			if sortedLater(pass, fn, rng, collected) {
				return true
			}
			pass.Reportf(rng.For, "keys of map range are collected into %q but never sorted in %s; sort before use or justify with //mtmlf:unordered-ok", collected.Name(), fn.Name.Name)
			return true
		}
		pass.Reportf(rng.For, "iteration over map is unordered and breaks bitwise reproducibility; collect+sort the keys first or justify with //mtmlf:unordered-ok")
		return true
	})
}

// keyCollectionTarget returns the slice variable object when rng's
// body is exactly `s = append(s, k)` (k the loop key), else nil.
func keyCollectionTarget(pass *Pass, rng *ast.RangeStmt) types.Object {
	if rng.Key == nil || rng.Body == nil || len(rng.Body.List) != 1 {
		return nil
	}
	keyIdent, ok := rng.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	keyObj := pass.TypesInfo.Defs[keyIdent]
	if keyObj == nil {
		keyObj = pass.TypesInfo.Uses[keyIdent]
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return nil
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return nil
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || arg0.Name != lhs.Name {
		return nil
	}
	arg1, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok || keyObj == nil || pass.TypesInfo.Uses[arg1] != keyObj {
		return nil
	}
	if obj := pass.TypesInfo.Uses[lhs]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[lhs]
}

// sortedLater reports whether, after the range loop, fn contains a
// call into package sort or slices whose arguments mention the
// collected slice.
func sortedLater(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, collected types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return true
		}
		obj := calleeObject(pass.TypesInfo, call)
		fnObj, ok := obj.(*types.Func)
		if !ok || fnObj.Pkg() == nil {
			return true
		}
		if p := fnObj.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == collected {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
