package analysis_test

import (
	"testing"

	"mtmlf/internal/analysis"
	"mtmlf/internal/analysis/analysistest"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapIter, "mapiter")
}
