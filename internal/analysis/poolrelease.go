package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolRelease enforces the session-ownership contract on the no-grad
// serving path: the result of an Acquire-family call
// (ag.AcquireEval(), tensor Pool.Acquire, …) must be handed back to
// its pool on every return path of the acquiring function — via
// `defer ReleaseEval(e)` / `defer h.Release()`, or an explicit
// release before each return. An evaluator that leaks keeps every
// pooled tensor it handed out pinned, and under serving load that is
// an unbounded memory leak (DESIGN §3/§6).
//
// Matching is by the Acquire/Release naming pair: a call to a
// function or method named "Acquire<X>" acquires; a call to
// "Release<X>" (free function taking the value, or method on it)
// releases. Transferring ownership out — returning the value or
// storing it into a field, map, slice, or global — also discharges
// the obligation: the release duty moves with the value.
var PoolRelease = &Analyzer{
	Name: "poolrelease",
	Doc:  "every Acquire* result must be Release*d on all return paths of the acquiring function (session ownership)",
	Run:  runPoolRelease,
}

func runPoolRelease(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncAcquires(pass, fn)
		}
	}
	return nil
}

// acquireCall matches calls to functions/methods named Acquire or
// Acquire<X> and returns the release-counterpart name.
func acquireCall(pass *Pass, call *ast.CallExpr) (releaseName string, ok bool) {
	fn, isFn := calleeObject(pass.TypesInfo, call).(*types.Func)
	if !isFn {
		return "", false
	}
	suffix, isAcq := strings.CutPrefix(fn.Name(), "Acquire")
	if !isAcq {
		return "", false
	}
	// The result must be a single pooled value; Acquire-named helpers
	// returning nothing (or multiple values) are not the pattern.
	sig := fn.Signature()
	if sig.Results().Len() != 1 {
		return "", false
	}
	return "Release" + suffix, true
}

func checkFuncAcquires(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			// Bare `p.Acquire()` with the result dropped on the floor.
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				if rel, ok := acquireCall(pass, call); ok {
					pass.Reportf(call.Pos(), "result of %s is discarded; bind it and release it with %s", callName(call), rel)
				}
			}
		case *ast.AssignStmt:
			checkAcquireAssign(pass, fn, stmt)
		}
		return true
	})
}

func checkAcquireAssign(pass *Pass, fn *ast.FuncDecl, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 || len(assign.Lhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	releaseName, ok := acquireCall(pass, call)
	if !ok {
		return
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		// Stored straight into a field/index: ownership escapes.
		return
	}
	if lhs.Name == "_" {
		pass.Reportf(call.Pos(), "result of %s is discarded; bind it and release it with %s", callName(call), releaseName)
		return
	}
	obj := pass.TypesInfo.Defs[lhs]
	if obj == nil {
		obj = pass.TypesInfo.Uses[lhs]
	}
	if obj == nil {
		return
	}

	use := collectOwnershipUses(pass, fn, obj, releaseName, call.End())
	switch {
	case use.escapes:
		// Returned or stored: the obligation moved with the value.
	case use.deferredRelease:
		// defer Release covers every return path.
	case !use.released:
		pass.Reportf(call.Pos(), "result of %s is never released with %s in %s; defer %s immediately after acquiring", callName(call), releaseName, fn.Name.Name, releaseName)
	case use.unguardedReturn != token.NoPos:
		pass.Reportf(call.Pos(), "result of %s is not released with %s on the return path at line %d of %s; use defer %s to cover every path", callName(call), releaseName, pass.Fset.Position(use.unguardedReturn).Line, fn.Name.Name, releaseName)
	}
}

// ownershipUses is what the function body does with an acquired value
// after the acquire site.
type ownershipUses struct {
	released        bool
	deferredRelease bool
	escapes         bool
	// unguardedReturn is a return statement after the acquire with no
	// release call preceding it in source order (best-effort path
	// check without a CFG).
	unguardedReturn token.Pos
}

func collectOwnershipUses(pass *Pass, fn *ast.FuncDecl, obj types.Object, releaseName string, after token.Pos) ownershipUses {
	var use ownershipUses
	firstRelease := token.Pos(-1)
	mentions := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	// escapesVia reports whether expr transfers ownership of the value
	// itself — the bare variable, or a composite/address-of literal
	// embedding it. Passing the value as an argument to a call does
	// not transfer ownership (the callee borrows it).
	var escapesVia func(expr ast.Expr) bool
	escapesVia = func(expr ast.Expr) bool {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[e] == obj
		case *ast.UnaryExpr:
			return escapesVia(e.X)
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if escapesVia(elt) {
					return true
				}
			}
		}
		return false
	}
	isRelease := func(call *ast.CallExpr) bool {
		rel, ok := calleeObject(pass.TypesInfo, call).(*types.Func)
		if !ok || rel.Name() != releaseName {
			return false
		}
		// The released value is either an argument (pool.Release(e),
		// ReleaseEval(e)) or the receiver itself (h.Release()).
		for _, arg := range call.Args {
			if mentions(arg) {
				return true
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && rel.Signature().Recv() != nil {
			return mentions(sel.X)
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil || n.Pos() <= after {
			return true
		}
		switch stmt := n.(type) {
		case *ast.DeferStmt:
			if isRelease(stmt.Call) {
				use.released, use.deferredRelease = true, true
			} else if mentions(stmt.Call) {
				// Deferred closure that releases inside its body.
				ast.Inspect(stmt.Call, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok && isRelease(c) {
						use.released, use.deferredRelease = true, true
					}
					return true
				})
			}
		case *ast.CallExpr:
			if isRelease(stmt) {
				use.released = true
				if firstRelease < 0 || stmt.Pos() < firstRelease {
					firstRelease = stmt.Pos()
				}
			}
		case *ast.ReturnStmt:
			for _, res := range stmt.Results {
				if escapesVia(res) {
					use.escapes = true
				}
			}
		case *ast.AssignStmt:
			// Storing the value into anything that is not a plain
			// local variable transfers ownership out of the function.
			for i, rhs := range stmt.Rhs {
				if !escapesVia(rhs) {
					continue
				}
				if i < len(stmt.Lhs) {
					if _, plain := stmt.Lhs[i].(*ast.Ident); !plain {
						use.escapes = true
					}
				}
			}
		case *ast.SendStmt:
			if escapesVia(stmt.Value) {
				use.escapes = true
			}
		}
		return true
	})
	// Best-effort all-paths check: a return after the acquire that
	// precedes the first (non-deferred) release leaks on that path.
	if use.released && !use.deferredRelease {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || ret.Pos() <= after {
				return true
			}
			if ret.Pos() < firstRelease && use.unguardedReturn == token.NoPos {
				use.unguardedReturn = ret.Pos()
			}
			return true
		})
	}
	return use
}

// callName renders the callee expression for diagnostics ("ag.AcquireEval").
func callName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			return x.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	}
	return "acquire"
}
