package analysis_test

import (
	"testing"

	"mtmlf/internal/analysis"
	"mtmlf/internal/analysis/analysistest"
)

func TestPoolRelease(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.PoolRelease, "poolrelease")
}
