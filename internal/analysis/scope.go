package analysis

import "strings"

// DeterminismCritical is the set of packages whose computation must
// be bitwise-reproducible at any worker count: everything on the
// training and featurization path, where iteration order, a global
// RNG draw, or a wall-clock read changes a loss trajectory or an
// artifact byte. mapiter and globalrand apply only here; the serving
// and measurement layers (serve, loadgen, benchjson, stats, metrics,
// the CLIs) legitimately read the clock and may iterate maps.
var DeterminismCritical = map[string]bool{
	"mtmlf/internal/mtmlf":     true,
	"mtmlf/internal/featurize": true,
	"mtmlf/internal/workload":  true,
	"mtmlf/internal/datagen":   true,
	"mtmlf/internal/nn":        true,
	"mtmlf/internal/corpus":    true,
	"mtmlf/internal/treelstm":  true,
	"mtmlf/internal/dist":      true,
}

// InScope reports whether analyzer a applies to the package at
// importPath. Fixture packages (bare paths, no module prefix) are
// always in scope — analysistest runs an analyzer directly on its own
// fixtures.
func InScope(a *Analyzer, importPath string) bool {
	if !strings.Contains(importPath, "/") {
		return true
	}
	switch a.Name {
	case "mapiter", "globalrand":
		return DeterminismCritical[importPath]
	case "atomicwrite":
		// ckptio is the one place allowed to touch the raw
		// filesystem: it implements the atomic commit itself.
		return importPath != "mtmlf/internal/ckptio"
	default:
		return true
	}
}
