package analysis_test

import (
	"testing"

	"mtmlf/internal/analysis"
)

func TestInScope(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		pkg      string
		want     bool
	}{
		// Determinism contracts gate the training path only.
		{analysis.MapIter, "mtmlf/internal/mtmlf", true},
		{analysis.MapIter, "mtmlf/internal/corpus", true},
		{analysis.MapIter, "mtmlf/internal/dist", true},
		{analysis.MapIter, "mtmlf/internal/serve", false},
		{analysis.GlobalRand, "mtmlf/internal/nn", true},
		{analysis.GlobalRand, "mtmlf/internal/dist", true},
		{analysis.GlobalRand, "mtmlf/internal/loadgen", false},
		{analysis.GlobalRand, "mtmlf/internal/benchjson", false},
		// The atomic-commit rule is module-wide except its implementation.
		{analysis.AtomicWrite, "mtmlf/internal/benchjson", true},
		{analysis.AtomicWrite, "mtmlf/cmd/mtmlf-train", true},
		{analysis.AtomicWrite, "mtmlf/internal/ckptio", false},
		// Ownership and gob laws are module-wide.
		{analysis.GobRegister, "mtmlf/internal/serve", true},
		{analysis.PoolRelease, "mtmlf/internal/ag", true},
	}
	for _, c := range cases {
		if got := analysis.InScope(c.analyzer, c.pkg); got != c.want {
			t.Errorf("InScope(%s, %s) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
	// Fixture packages (no module prefix) are always in scope.
	for _, a := range analysis.All() {
		if !analysis.InScope(a, a.Name) {
			t.Errorf("InScope(%s, fixture) = false, want true", a.Name)
		}
	}
}
