// Package atomicwrite is the fixture for the atomicwrite analyzer:
// artifacts are published through ckptio.WriteFileAtomic, never a raw
// os.WriteFile/os.Create.
package atomicwrite

import "os"

// Flagged: a torn artifact is one crash away.
func rawWrite(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile bypasses the atomic-commit path`
}

// Flagged: os.Create has the same torn-file failure mode.
func rawCreate(path string) error {
	f, err := os.Create(path) // want `os.Create bypasses the atomic-commit path`
	if err != nil {
		return err
	}
	return f.Close()
}

// Clean: reading is not publishing.
func read(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Clean: temp files never hold the published artifact.
func scratch(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "scratch*")
}

// Clean: a justified non-artifact write.
func debugDump(path string, data []byte) error {
	//mtmlf:allow:atomicwrite transient debug dump, not an artifact
	return os.WriteFile(path, data, 0o644)
}
