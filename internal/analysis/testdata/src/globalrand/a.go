// Package globalrand is the fixture for the globalrand analyzer:
// entropy must flow through an injected *rand.Rand, and the wall
// clock stays out of determinism-critical code.
package globalrand

import (
	"math/rand"
	"time"
)

// Flagged: draws from the process-global source.
func globalDraws() (int, float64) {
	n := rand.Intn(10)   // want `rand.Intn draws from the process-global source`
	f := rand.Float64()  // want `rand.Float64 draws from the process-global source`
	rand.Shuffle(n, nil) // want `rand.Shuffle draws from the process-global source`
	return n, f
}

// Flagged: wall-clock read.
func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now is wall-clock`
}

// Clean: constructing and using an injected generator.
func injected(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Clean: non-Now uses of time are fine (durations, formatting).
func window(d time.Duration) time.Duration {
	return d * 2
}
