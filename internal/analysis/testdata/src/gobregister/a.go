// Package gobregister is the fixture for the gobregister analyzer:
// gob type registration lives in gobtypes.go only, so wire type-ID
// allocation order stays pinned.
package gobregister

import "encoding/gob"

type payload struct{ N int }

// Flagged: registration outside gobtypes.go perturbs type-ID order.
func init() {
	gob.Register(payload{})                // want `gob.Register outside gobtypes.go`
	gob.RegisterName("payload", payload{}) // want `gob.RegisterName outside gobtypes.go`
}

// Clean: encoding/decoding with gob is unrestricted.
func roundTrip() error {
	enc := gob.NewEncoder(nil)
	return enc.Encode(payload{N: 1})
}
