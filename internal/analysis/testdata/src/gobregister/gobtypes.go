package gobregister

import "encoding/gob"

// Clean: gobtypes.go is the one place allowed to register, pinning
// the process-wide type-ID allocation order.
func pin() {
	gob.Register(payload{})
}
