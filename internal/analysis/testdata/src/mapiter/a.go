// Package mapiter is the fixture for the mapiter analyzer: map ranges
// in determinism-critical code must sort keys first or justify.
package mapiter

import "sort"

// Flagged: the fold's result depends on visit order for floats.
func sumFloats(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `iteration over map is unordered`
		s += v
	}
	return s
}

// Flagged: keys collected but never sorted before use.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `collected into "keys" but never sorted`
		keys = append(keys, k)
	}
	return keys
}

// Flagged: reducing per-example gradient buffers in map order — float
// addition is not associative, so the accumulated value depends on
// which parameter the range visits first. This is the exact bug class
// the gradient-exchange plane avoids by indexing slot buffers with the
// params slice.
func reduceGradSlots(slots []map[int]float64) map[int]float64 {
	acc := make(map[int]float64)
	for _, slot := range slots {
		for p, g := range slot { // want `iteration over map is unordered`
			acc[p] += g
		}
	}
	return acc
}

// Clean: the canonical collect-then-sort idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clean: justified as order-independent.
func intoOtherMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	//mtmlf:unordered-ok writing into another map is order-independent
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Clean: ranging a slice is ordered.
func overSlice(xs []int) int {
	var s int
	for _, v := range xs {
		s += v
	}
	return s
}
