// Package poolrelease is the fixture for the poolrelease analyzer:
// every Acquire* result is released on all return paths, or its
// ownership explicitly escapes.
package poolrelease

// Eval stands in for ag.Eval: a pooled session handle.
type Eval struct{ live int }

// AcquireEval / ReleaseEval mirror the free-function pool API.
func AcquireEval() *Eval  { return &Eval{} }
func ReleaseEval(e *Eval) { e.live = 0 }

// Pool mirrors the method-form pool API.
type Pool struct{}

func (p *Pool) Acquire() *Eval  { return &Eval{} }
func (p *Pool) Release(e *Eval) { e.live = 0 }

// Flagged: acquired, used, never released.
func leak(work func(*Eval) int) int {
	e := AcquireEval() // want `result of AcquireEval is never released with ReleaseEval`
	return work(e)
}

// Flagged: the error path returns before the release.
func leakOnErrPath(fail bool, work func(*Eval) int) int {
	e := AcquireEval() // want `not released with ReleaseEval on the return path`
	if fail {
		return -1
	}
	n := work(e)
	ReleaseEval(e)
	return n
}

// Flagged: result discarded outright.
func discard() {
	AcquireEval() // want `result of AcquireEval is discarded`
}

// Flagged: result bound to blank.
func discardBlank() {
	_ = AcquireEval() // want `result of AcquireEval is discarded`
}

// Clean: deferred free-function release covers every path.
func deferred(fail bool, work func(*Eval) int) int {
	e := AcquireEval()
	defer ReleaseEval(e)
	if fail {
		return -1
	}
	return work(e)
}

// Clean: deferred method-form release.
func deferredMethod(p *Pool, work func(*Eval) int) int {
	e := p.Acquire()
	defer p.Release(e)
	return work(e)
}

// Clean: explicit release before the single return.
func explicit(work func(*Eval) int) int {
	e := AcquireEval()
	n := work(e)
	ReleaseEval(e)
	return n
}

// Clean: released inside a deferred cleanup closure.
func deferredClosure(work func(*Eval) int) int {
	e := AcquireEval()
	defer func() { ReleaseEval(e) }()
	return work(e)
}

// Clean: ownership escapes to the caller with the value.
func handOff() *Eval {
	e := AcquireEval()
	return e
}

// session outlives the function; the release duty moves with it.
type session struct{ e *Eval }

// Clean: ownership escapes into a longer-lived struct.
func store(s *session) {
	e := AcquireEval()
	s.e = e
}

// EvalF32 stands in for ag.EvalF32: the reduced-precision session
// handle. The analyzer matches by the Acquire<X>/Release<X> naming
// pair, so the f32 session is covered by the same rule with no
// analyzer change — these fixtures pin that.
type EvalF32 struct{ live int }

func AcquireEvalF32() *EvalF32  { return &EvalF32{} }
func ReleaseEvalF32(e *EvalF32) { e.live = 0 }

// Flagged: f32 session acquired, used, never released.
func leakF32(work func(*EvalF32) int) int {
	e := AcquireEvalF32() // want `result of AcquireEvalF32 is never released with ReleaseEvalF32`
	return work(e)
}

// Flagged: f32 session leaks on the error path.
func leakF32OnErrPath(fail bool, work func(*EvalF32) int) int {
	e := AcquireEvalF32() // want `not released with ReleaseEvalF32 on the return path`
	if fail {
		return -1
	}
	n := work(e)
	ReleaseEvalF32(e)
	return n
}

// Clean: the release pair is tier-specific — ReleaseEvalF32 for the
// f32 session, deferred to cover every path.
func deferredF32(fail bool, work func(*EvalF32) int) int {
	e := AcquireEvalF32()
	defer ReleaseEvalF32(e)
	if fail {
		return -1
	}
	return work(e)
}
