// Package benchjson is the machine-readable performance report: Go
// benchmark measurements (ns/op, allocs/op, B/op, plus named speedup
// ratios between measurement pairs) and HTTP load-test results
// (throughput + latency percentiles per endpoint per concurrency
// level). It exists so the perf trajectory of the serving path
// accumulates as JSON artifacts (BENCH_PR2.json, BENCH_PR6.json, and
// successors) instead of scrollback: the mtmlf-bench CLI's -json
// flag, the mtmlf-loadgen CLI, and the CI benchmark steps all write
// through it.
package benchjson

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"mtmlf/internal/ckptio"
)

// Entry is one measured benchmark.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// GFlops is the effective arithmetic throughput (flops/ns ==
	// GFLOP/s) for kernel entries measured via MeasureKernel; absent
	// from plain Measure entries.
	GFlops float64 `json:"gflops,omitempty"`
	// Precision tags roofline entries with their numeric tier ("f64",
	// "f32", "int8").
	Precision string `json:"precision,omitempty"`
	// DataBytesPerOp is the bytes the kernel streams per op (operands +
	// result) — the denominator of the roofline arithmetic intensity.
	// Distinct from BytesPerOp, which counts heap *allocations*.
	DataBytesPerOp int64 `json:"data_bytes_per_op,omitempty"`
}

// Speedup relates a baseline entry to its fast-path counterpart.
type Speedup struct {
	Name        string  `json:"name"`
	Baseline    string  `json:"baseline"`
	Fast        string  `json:"fast"`
	NsSpeedup   float64 `json:"ns_speedup"`
	AllocsRatio float64 `json:"allocs_ratio"`
}

// LoadEntry is one load-generator measurement: one endpoint driven at
// one concurrency level (or open-loop arrival rate) for a fixed
// duration. Latency percentiles come from an HDR-style histogram over
// every successful request (see internal/loadgen).
type LoadEntry struct {
	// Name identifies the measurement, conventionally
	// "<endpoint>/c<concurrency>" (closed loop) or
	// "<endpoint>/r<qps>" (open loop).
	Name     string `json:"name"`
	Endpoint string `json:"endpoint"`
	// Concurrency is the closed-loop worker count; OpenLoopQPS the
	// open-loop target arrival rate (0 when closed-loop).
	Concurrency int     `json:"concurrency"`
	OpenLoopQPS float64 `json:"open_loop_qps,omitempty"`
	DurationSec float64 `json:"duration_sec"`

	// Requests = OK + Shed + DeadlineMisses + Errors: everything the
	// generator attempted against this endpoint.
	Requests       uint64 `json:"requests"`
	OK             uint64 `json:"ok"`
	Shed           uint64 `json:"shed"`            // 429s (after the retry budget)
	DeadlineMisses uint64 `json:"deadline_misses"` // 504s
	Errors         uint64 `json:"errors"`          // everything else non-2xx + transport
	// Retries counts extra attempts triggered by 429 responses when
	// the generator runs with a retry budget (not included in
	// Requests, which counts logical requests).
	Retries uint64 `json:"retries,omitempty"`

	// ThroughputRPS is OK / wall-clock duration — goodput, not offered
	// load.
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
}

// Report is the JSON document.
type Report struct {
	Label      string `json:"label"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Workers is the tensor worker-pool size the measurements ran at
	// (the -workers flag; 0 = all cores). GOMAXPROCS records what the
	// machine had; Workers records what the kernels were allowed to
	// use.
	Workers   int       `json:"workers,omitempty"`
	CreatedAt string    `json:"created_at"`
	Entries   []Entry   `json:"entries"`
	Speedups  []Speedup `json:"speedups"`
	// Load holds load-generator measurements (absent from pure
	// micro-benchmark reports).
	Load []LoadEntry `json:"load,omitempty"`
}

// NewReport creates a report stamped with the runtime environment.
func NewReport(label string) *Report {
	return &Report{
		Label:      label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
	}
}

// Measure runs f under the testing benchmark driver (with allocation
// reporting on) and records the result under name.
func (r *Report) Measure(name string, f func(b *testing.B)) Entry {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		f(b)
	})
	e := Entry{
		Name:        name,
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	r.Entries = append(r.Entries, e)
	return e
}

// MeasureKernel measures f like Measure and stamps the entry with its
// roofline coordinates: precision tier, effective GFLOP/s (flops per
// op divided by ns per op), and the bytes of data the kernel streams
// per op. flops or dataBytes of 0 leave the respective field unset
// (model-bytes entries record capacity, not arithmetic).
func (r *Report) MeasureKernel(name, precision string, flops, dataBytes int64, f func(b *testing.B)) Entry {
	e := r.Measure(name, f)
	r.Entries = r.Entries[:len(r.Entries)-1]
	e.Precision = precision
	e.DataBytesPerOp = dataBytes
	if flops > 0 && e.NsPerOp > 0 {
		e.GFlops = float64(flops) / e.NsPerOp
	}
	r.Entries = append(r.Entries, e)
	return e
}

// find returns the entry recorded under name.
func (r *Report) find(name string) (Entry, bool) {
	for _, e := range r.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// AddSpeedup records the ns/op and allocs/op ratios of two previously
// measured entries (baseline / fast — higher is better).
func (r *Report) AddSpeedup(name, baseline, fast string) error {
	b, ok := r.find(baseline)
	if !ok {
		return fmt.Errorf("benchjson: no entry %q", baseline)
	}
	f, ok := r.find(fast)
	if !ok {
		return fmt.Errorf("benchjson: no entry %q", fast)
	}
	s := Speedup{Name: name, Baseline: baseline, Fast: fast}
	if f.NsPerOp > 0 {
		s.NsSpeedup = b.NsPerOp / f.NsPerOp
	}
	if f.AllocsPerOp > 0 {
		s.AllocsRatio = float64(b.AllocsPerOp) / float64(f.AllocsPerOp)
	} else if b.AllocsPerOp > 0 {
		// Fast path allocates nothing: report the baseline count as
		// the (unbounded) improvement factor.
		s.AllocsRatio = float64(b.AllocsPerOp)
	}
	r.Speedups = append(r.Speedups, s)
	return nil
}

// AddLoad appends one load-generator measurement.
func (r *Report) AddLoad(e LoadEntry) {
	r.Load = append(r.Load, e)
}

// Write marshals the report to path (pretty-printed, trailing
// newline). The write is atomic (temp file + fsync + rename via
// ckptio): BENCH artifacts are uploaded by CI mid-run, and a reader
// must never observe a torn report.
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return ckptio.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(append(data, '\n'))
		return err
	})
}

// ReadFile parses a report previously written by Write.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchjson: corrupt report %s: %w", path, err)
	}
	return &r, nil
}

// AppendTo merges r's measurements into the report at path and
// rewrites it atomically, so a BENCH artifact can accumulate a
// trajectory across runs. A missing file starts a fresh report with
// r's label and environment; an existing file keeps its own label and
// gains r's entries, speedups, and load measurements. A corrupt
// existing file is an error and is left untouched — appending must
// never destroy a trajectory it cannot parse.
func (r *Report) AppendTo(path string) error {
	base, err := ReadFile(path)
	switch {
	case os.IsNotExist(err):
		base = r
	case err != nil:
		return err
	default:
		base.Entries = append(base.Entries, r.Entries...)
		base.Speedups = append(base.Speedups, r.Speedups...)
		base.Load = append(base.Load, r.Load...)
	}
	return base.Write(path)
}
