package benchjson

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// unwritablePath returns a path whose parent "directory" is a regular
// file — writes there fail with ENOTDIR for any uid, including root
// (permission-bit tricks don't work when tests run as root).
func unwritablePath(t *testing.T) string {
	t.Helper()
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(blocker, "report.json")
}

func TestWriteUnwritableDir(t *testing.T) {
	r := NewReport("err")
	if err := r.Write(unwritablePath(t)); err == nil {
		t.Fatal("Write into a non-directory succeeded")
	}
}

func TestAppendToUnwritableDir(t *testing.T) {
	r := NewReport("err")
	if err := r.AppendTo(unwritablePath(t)); err == nil {
		t.Fatal("AppendTo into a non-directory succeeded")
	}
}

func TestReadFileMissing(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "absent.json"))
	if !os.IsNotExist(err) {
		t.Fatalf("ReadFile on missing file: got %v, want IsNotExist", err)
	}
}

func TestReadFileCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path)
	if err == nil || !strings.Contains(err.Error(), "corrupt report") {
		t.Fatalf("ReadFile on garbage: got %v, want corrupt-report error", err)
	}
}

// A corrupt existing trajectory must fail the append and stay
// byte-identical — appending never clobbers what it cannot parse.
func TestAppendToCorruptExistingLeavesFileIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	garbage := []byte("}} definitely not json {{")
	if err := os.WriteFile(path, garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewReport("append")
	r.AddLoad(LoadEntry{Name: "card/c8", Endpoint: "card", Concurrency: 8})
	if err := r.AppendTo(path); err == nil {
		t.Fatal("AppendTo over a corrupt report succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, garbage) {
		t.Fatalf("corrupt report was modified by a failed append:\n%s", after)
	}
}

func TestAppendToAccumulates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	first := NewReport("run-1")
	first.AddLoad(LoadEntry{Name: "card/c4", Endpoint: "card", Concurrency: 4, OK: 10})
	if err := first.AppendTo(path); err != nil {
		t.Fatal(err)
	}

	second := NewReport("run-2")
	second.AddLoad(LoadEntry{Name: "card/c16", Endpoint: "card", Concurrency: 16, OK: 20})
	second.Entries = append(second.Entries, Entry{Name: "kernel", Iterations: 1})
	if err := second.AppendTo(path); err != nil {
		t.Fatal(err)
	}

	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The existing report keeps its identity and gains the new rows.
	if got.Label != "run-1" {
		t.Errorf("label = %q, want run-1", got.Label)
	}
	if len(got.Load) != 2 || got.Load[0].Name != "card/c4" || got.Load[1].Name != "card/c16" {
		t.Errorf("load entries after append: %+v", got.Load)
	}
	if len(got.Entries) != 1 || got.Entries[0].Name != "kernel" {
		t.Errorf("entries after append: %+v", got.Entries)
	}
}
