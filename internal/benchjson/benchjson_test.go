package benchjson

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

var escape []byte

func TestReportMeasureSpeedupAndWrite(t *testing.T) {
	r := NewReport("test")
	sink := 0
	r.Measure("slow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf := make([]byte, 64)
			escape = buf // force the allocation to the heap
			sink += len(buf)
		}
	})
	r.Measure("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink++
		}
	})
	if err := r.AddSpeedup("alloc_vs_not", "slow", "fast"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSpeedup("missing", "nope", "fast"); err == nil {
		t.Fatal("want error for unknown baseline")
	}
	sp := r.Speedups[0]
	if sp.NsSpeedup <= 0 {
		t.Fatalf("ns speedup %v", sp.NsSpeedup)
	}
	if sp.AllocsRatio < 1 {
		t.Fatalf("allocs ratio %v (slow allocates, fast does not)", sp.AllocsRatio)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Label != "test" || len(back.Entries) != 2 || len(back.Speedups) != 1 {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
	if back.Entries[0].Name != "slow" || back.Entries[0].NsPerOp <= 0 {
		t.Fatalf("entry roundtrip mismatch: %+v", back.Entries[0])
	}
}
