package benchjson

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var escape []byte

func TestReportMeasureSpeedupAndWrite(t *testing.T) {
	r := NewReport("test")
	sink := 0
	r.Measure("slow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf := make([]byte, 64)
			escape = buf // force the allocation to the heap
			sink += len(buf)
		}
	})
	r.Measure("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink++
		}
	})
	if err := r.AddSpeedup("alloc_vs_not", "slow", "fast"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSpeedup("missing", "nope", "fast"); err == nil {
		t.Fatal("want error for unknown baseline")
	}
	sp := r.Speedups[0]
	if sp.NsSpeedup <= 0 {
		t.Fatalf("ns speedup %v", sp.NsSpeedup)
	}
	if sp.AllocsRatio < 1 {
		t.Fatalf("allocs ratio %v (slow allocates, fast does not)", sp.AllocsRatio)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Label != "test" || len(back.Entries) != 2 || len(back.Speedups) != 1 {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
	if back.Entries[0].Name != "slow" || back.Entries[0].NsPerOp <= 0 {
		t.Fatalf("entry roundtrip mismatch: %+v", back.Entries[0])
	}
}

func TestReportAddLoadRoundTrip(t *testing.T) {
	r := NewReport("load")
	r.AddLoad(LoadEntry{
		Name: "card/c8", Endpoint: "card", Concurrency: 8, DurationSec: 2.0,
		Requests: 120, OK: 100, Shed: 15, DeadlineMisses: 5,
		ThroughputRPS: 50, P50Ms: 1.5, P90Ms: 3, P95Ms: 4, P99Ms: 9, MaxMs: 20,
	})
	r.AddLoad(LoadEntry{
		Name: "cost/r200", Endpoint: "cost", OpenLoopQPS: 200, DurationSec: 2.0,
		Requests: 400, OK: 400, ThroughputRPS: 200, P50Ms: 1, P90Ms: 2, P95Ms: 2, P99Ms: 3, MaxMs: 5,
	})

	path := filepath.Join(t.TempDir(), "load.json")
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Load) != 2 {
		t.Fatalf("got %d load entries, want 2", len(back.Load))
	}
	if back.Load[0] != r.Load[0] || back.Load[1] != r.Load[1] {
		t.Fatalf("load roundtrip mismatch:\n%+v\n%+v", back.Load, r.Load)
	}
	// Closed-loop entries omit the open-loop rate field entirely.
	if strings.Contains(string(data), `"open_loop_qps": 0`) {
		t.Fatal("zero open_loop_qps serialized despite omitempty")
	}
}

// TestMeasureKernelRoundTrip covers the roofline fields: gflops,
// precision and data_bytes_per_op survive ReadFile/AppendTo, and plain
// entries omit them entirely.
func TestMeasureKernelRoundTrip(t *testing.T) {
	r := NewReport("roofline")
	r.Workers = 4
	sink := 0.0
	e := r.MeasureKernel("roofline/matmul/64/w1", "f32", 2*64*64*64, 3*4*64*64, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += float64(i)
		}
	})
	if e.GFlops <= 0 || e.Precision != "f32" || e.DataBytesPerOp != 3*4*64*64 {
		t.Fatalf("kernel entry missing roofline fields: %+v", e)
	}
	// Capacity entry: no flops, so no gflops field.
	cap := r.MeasureKernel("model_bytes/int8", "int8", 0, 12345, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink++
		}
	})
	if cap.GFlops != 0 {
		t.Fatalf("capacity entry gained gflops: %+v", cap)
	}
	r.Measure("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink++
		}
	})

	path := filepath.Join(t.TempDir(), "roofline.json")
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workers != 4 {
		t.Fatalf("workers not round-tripped: %+v", back)
	}
	if back.Entries[0] != r.Entries[0] || back.Entries[1] != r.Entries[1] {
		t.Fatalf("kernel entries changed across round trip:\n%+v\n%+v", back.Entries, r.Entries)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Plain entries must not serialize zero-valued roofline fields.
	if strings.Count(string(raw), `"gflops"`) != 1 || strings.Count(string(raw), `"precision"`) != 2 {
		t.Fatalf("omitempty roofline fields leaked into plain entries:\n%s", raw)
	}

	// AppendTo merges kernel entries into an existing trajectory intact.
	r2 := NewReport("roofline2")
	r2.MeasureKernel("roofline/matmul/64/w8", "f64", 2*64*64*64, 3*8*64*64, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink++
		}
	})
	if err := r2.AppendTo(path); err != nil {
		t.Fatal(err)
	}
	merged, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Entries) != 4 || merged.Entries[3].Precision != "f64" {
		t.Fatalf("AppendTo dropped roofline fields: %+v", merged.Entries)
	}
	_ = sink
}
