// Package calib is the cross-tier calibration harness of the
// reduced-precision serving path (DESIGN.md §9).
//
// Within a precision tier the kernels guarantee bitwise equality
// between serial and sharded execution; *across* tiers correctness is
// calibration, not bitwise: a lowered replica must track the eps=0
// float64 reference within a per-tier relative-error budget. This
// package runs a deterministic query fleet through the reference
// model and each lowered replica and enforces:
//
//   - q-error budgets on the card and cost head root estimates
//     (max(got/ref, ref/got) per query, bounded per tier), and
//   - identical argmax join orders on every multi-join query — the
//     one output an optimizer cannot be "close" on.
//
// The fleet is seeded, so a tier that passes once passes forever on
// the same code: a calibration failure is a regression in the
// lowering pass or the kernels, never flake.
package calib

import (
	"fmt"
	"strings"

	"mtmlf/internal/datagen"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/nn"
	"mtmlf/internal/workload"
)

// Budget bounds one tier's allowed deviation from the f64 reference.
type Budget struct {
	// MaxCardQErr / MaxCostQErr bound the per-query root-estimate
	// q-error of the card and cost heads.
	MaxCardQErr float64
	MaxCostQErr float64
	// RequireJoinOrder demands the identical argmax join order as the
	// reference on every multi-join query.
	RequireJoinOrder bool
}

// DefaultBudget returns the shipping budget for a tier: float32 is a
// rounding-error tier (1.05), int8 a quantization tier (2.0). Both
// require exact join orders — the decoder runs at f64 in every tier
// precisely so this holds (see mtmlf.LoweredModel).
func DefaultBudget(p nn.Precision) Budget {
	switch p {
	case nn.PrecisionF32:
		return Budget{MaxCardQErr: 1.05, MaxCostQErr: 1.05, RequireJoinOrder: true}
	case nn.PrecisionInt8:
		return Budget{MaxCardQErr: 2.0, MaxCostQErr: 2.0, RequireJoinOrder: true}
	default:
		return Budget{MaxCardQErr: 1, MaxCostQErr: 1, RequireJoinOrder: true}
	}
}

// TierReport is the calibration outcome of one lowered tier.
type TierReport struct {
	Precision string
	Budget    Budget
	Queries   int
	// MaxCardQErr / MaxCostQErr are the worst observed q-errors.
	MaxCardQErr float64
	MaxCostQErr float64
	// JoinOrderMatches / JoinOrderTotal count multi-join queries whose
	// argmax order matched the reference.
	JoinOrderMatches, JoinOrderTotal int
	// Violations lists every budget breach, one line each.
	Violations []string
}

// OK reports whether the tier stayed within budget.
func (r *TierReport) OK() bool { return len(r.Violations) == 0 }

// String renders the report for the CLI.
func (r *TierReport) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.OK() {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "calib %-4s [%s] queries=%d card_qerr=%.4f (budget %.2f) cost_qerr=%.4f (budget %.2f) join_orders=%d/%d",
		r.Precision, status, r.Queries,
		r.MaxCardQErr, r.Budget.MaxCardQErr,
		r.MaxCostQErr, r.Budget.MaxCostQErr,
		r.JoinOrderMatches, r.JoinOrderTotal)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n  violation: %s", v)
	}
	return b.String()
}

// qerr returns max(a/b, b/a) for positive estimates.
func qerr(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	return a / b
}

// SmokeFleet builds the deterministic calibration substrate: the
// synthetic-IMDB benchmark model (the inferbench scale) plus a seeded
// fixed query set spanning 2–4 join tables.
func SmokeFleet(seed int64, n int) (*mtmlf.Model, []*workload.LabeledQuery) {
	db := datagen.SyntheticIMDB(1, 0.05)
	cfg := mtmlf.DefaultConfig()
	cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
	cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
	m := mtmlf.NewModel(cfg, db, seed)
	gen := workload.NewGenerator(db, seed+1)
	wcfg := workload.DefaultConfig()
	wcfg.MinTables, wcfg.MaxTables = 2, 4
	return m, gen.Generate(n, wcfg)
}

// Run calibrates one lowered tier of m against its f64 reference over
// the fleet qs.
func Run(m *mtmlf.Model, qs []*workload.LabeledQuery, p nn.Precision, b Budget) *TierReport {
	lm := m.Lower(p)
	r := &TierReport{Precision: p.String(), Budget: b, Queries: len(qs), MaxCardQErr: 1, MaxCostQErr: 1}
	for i, lq := range qs {
		refCard, refCost := m.EstimateRoot(lq)
		gotCard, gotCost := lm.EstimateRoot(lq)
		if q := qerr(gotCard, refCard); q > r.MaxCardQErr {
			r.MaxCardQErr = q
		}
		if q := qerr(gotCost, refCost); q > r.MaxCostQErr {
			r.MaxCostQErr = q
		}
		if q := qerr(gotCard, refCard); q > b.MaxCardQErr {
			r.Violations = append(r.Violations,
				fmt.Sprintf("query %d: card q-error %.4f > %.2f (ref %g, %s %g)", i, q, b.MaxCardQErr, refCard, p, gotCard))
		}
		if q := qerr(gotCost, refCost); q > b.MaxCostQErr {
			r.Violations = append(r.Violations,
				fmt.Sprintf("query %d: cost q-error %.4f > %.2f (ref %g, %s %g)", i, q, b.MaxCostQErr, refCost, p, gotCost))
		}
		if len(lq.Q.Tables) >= 2 {
			r.JoinOrderTotal++
			ref := m.InferJoinOrder(lq.Q, lq.Plan)
			got := lm.InferJoinOrder(lq.Q, lq.Plan)
			if strings.Join(ref, ",") == strings.Join(got, ",") {
				r.JoinOrderMatches++
			} else if b.RequireJoinOrder {
				r.Violations = append(r.Violations,
					fmt.Sprintf("query %d: join order %v differs from reference %v", i, got, ref))
			}
		}
	}
	return r
}

// RunAll calibrates both lowered tiers with their default budgets.
func RunAll(m *mtmlf.Model, qs []*workload.LabeledQuery) []*TierReport {
	var out []*TierReport
	for _, p := range []nn.Precision{nn.PrecisionF32, nn.PrecisionInt8} {
		out = append(out, Run(m, qs, p, DefaultBudget(p)))
	}
	return out
}
