package calib

import (
	"strings"
	"testing"

	"mtmlf/internal/nn"
)

// TestSmokeFleetCalibrationPasses is the in-tree twin of `make
// calib-smoke`: both lowered tiers must stay inside their default
// budgets on the deterministic fleet.
func TestSmokeFleetCalibrationPasses(t *testing.T) {
	m, qs := SmokeFleet(7, 12)
	for _, r := range RunAll(m, qs) {
		t.Log(r.String())
		if !r.OK() {
			t.Fatalf("tier %s out of budget:\n%s", r.Precision, r.String())
		}
		if r.JoinOrderTotal == 0 {
			t.Fatalf("tier %s: fleet exercised no multi-join queries", r.Precision)
		}
		if r.JoinOrderMatches != r.JoinOrderTotal {
			t.Fatalf("tier %s: %d/%d join orders matched", r.Precision, r.JoinOrderMatches, r.JoinOrderTotal)
		}
	}
}

// TestBudgetViolationReported forces an impossible budget and checks
// the report fails loudly rather than clipping.
func TestBudgetViolationReported(t *testing.T) {
	m, qs := SmokeFleet(8, 3)
	r := Run(m, qs, nn.PrecisionInt8, Budget{MaxCardQErr: 1, MaxCostQErr: 1, RequireJoinOrder: true})
	if r.OK() {
		t.Skip("int8 tier tracked f64 exactly on this fleet; nothing to assert")
	}
	if !strings.Contains(r.String(), "FAIL") || !strings.Contains(r.String(), "violation") {
		t.Fatalf("failing report does not render violations:\n%s", r.String())
	}
}

// TestDefaultBudgets pins the shipping budgets so a silent loosening
// shows up in review.
func TestDefaultBudgets(t *testing.T) {
	f32 := DefaultBudget(nn.PrecisionF32)
	if f32.MaxCardQErr != 1.05 || !f32.RequireJoinOrder {
		t.Fatalf("f32 budget changed: %+v", f32)
	}
	int8 := DefaultBudget(nn.PrecisionInt8)
	if int8.MaxCardQErr != 2.0 || !int8.RequireJoinOrder {
		t.Fatalf("int8 budget changed: %+v", int8)
	}
}
