// Package catalog is the backend-agnostic read side of the data
// plane: one database's schema, columnar row data, and ANALYZE
// statistics behind a single interface. It carves the seam that used
// to be implicit in the datagen → sqldb → stats tangle, so every
// consumer — the workload generator, the (F) featurizer, the trainer,
// the serving layer — can run against any backend that satisfies
// Catalog: the in-memory synthetic generators (Memory, the original
// path), the on-disk corpus format (internal/corpus), or a future
// real-DBMS import.
//
// A Catalog is immutable once published: every accessor returns the
// same pointers on every call, and implementations must be safe for
// concurrent readers. That is what lets the sharded workload
// generator and the data-parallel trainer fan out over one catalog
// without locks, and what makes results independent of worker count
// (the readers see one frozen snapshot, never a mutating one).
package catalog

import (
	"sync"

	"mtmlf/internal/sqldb"
	"mtmlf/internal/stats"
)

// Catalog is read access to one database: its name, its schema and
// columnar rows, and its ANALYZE statistics. Implementations must
// return stable pointers (the same *sqldb.DB and *stats.DBStats every
// call) and be safe for concurrent use.
type Catalog interface {
	// Name identifies the database (e.g. "imdb", "D3").
	Name() string
	// DB returns the schema plus columnar row data.
	DB() *sqldb.DB
	// Stats returns the ANALYZE product for the database. Computed at
	// most once per catalog; cheap to call repeatedly.
	Stats() *stats.DBStats
}

// Memory is the in-memory backend: a generated (or hand-built)
// sqldb.DB with lazily computed statistics. It is the Catalog the
// legacy datagen path produces, and the reference other backends are
// tested against.
type Memory struct {
	db   *sqldb.DB
	once sync.Once
	st   *stats.DBStats
}

// NewMemory wraps an in-memory database. The database must not be
// mutated afterwards.
func NewMemory(db *sqldb.DB) *Memory {
	return &Memory{db: db}
}

// NewMemoryWithStats wraps a database whose statistics the caller has
// already computed (avoiding a second ANALYZE pass).
func NewMemoryWithStats(db *sqldb.DB, st *stats.DBStats) *Memory {
	m := &Memory{db: db, st: st}
	m.once.Do(func() {})
	return m
}

// Name implements Catalog.
func (m *Memory) Name() string { return m.db.Name }

// DB implements Catalog.
func (m *Memory) DB() *sqldb.DB { return m.db }

// Stats implements Catalog, running ANALYZE on first use.
func (m *Memory) Stats() *stats.DBStats {
	m.once.Do(func() { m.st = stats.Analyze(m.db) })
	return m.st
}
