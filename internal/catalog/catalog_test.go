package catalog

import (
	"testing"

	"mtmlf/internal/sqldb"
	"mtmlf/internal/stats"
)

func testDB() *sqldb.DB {
	db := sqldb.NewDB("t")
	db.MustAddTable(sqldb.MustNewTable("a",
		sqldb.IntColumn("id", []int64{0, 1, 2, 3}),
		sqldb.IntColumn("x", []int64{5, 5, 6, 7}),
	))
	db.MustAddTable(sqldb.MustNewTable("b",
		sqldb.IntColumn("id", []int64{0, 1}),
		sqldb.IntColumn("fk_a", []int64{0, 3}),
	))
	db.MustAddEdge(sqldb.JoinEdge{T1: "a", C1: "id", T2: "b", C2: "fk_a"})
	return db
}

// TestMemoryStablePointers: the Catalog contract — same pointers on
// every call, so concurrent readers share one frozen snapshot.
func TestMemoryStablePointers(t *testing.T) {
	cat := NewMemory(testDB())
	if cat.Name() != "t" {
		t.Fatalf("name %q", cat.Name())
	}
	if cat.DB() != cat.DB() {
		t.Fatal("DB() not stable")
	}
	if cat.Stats() != cat.Stats() {
		t.Fatal("Stats() not stable")
	}
}

// TestMemoryStatsMatchAnalyze: the lazy Stats is exactly ANALYZE.
func TestMemoryStatsMatchAnalyze(t *testing.T) {
	db := testDB()
	cat := NewMemory(db)
	ref := stats.Analyze(db)
	got := cat.Stats()
	for name, ts := range ref.Tables {
		gts := got.Tables[name]
		if gts == nil || gts.RowCount != ts.RowCount || len(gts.Cols) != len(ts.Cols) {
			t.Fatalf("stats for %q differ", name)
		}
	}
}

// TestMemoryWithStats: caller-supplied statistics are adopted, not
// recomputed.
func TestMemoryWithStats(t *testing.T) {
	db := testDB()
	st := stats.Analyze(db)
	cat := NewMemoryWithStats(db, st)
	if cat.Stats() != st {
		t.Fatal("supplied stats were not adopted")
	}
}
