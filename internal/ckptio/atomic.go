package ckptio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Commit points, in order. The CrashPoint hook fires at each so tests
// can stop a commit mid-flight and inspect the on-disk state a real
// crash at that instant would have left.
const (
	// CrashBeforeSync fires after the payload is written, before the
	// temp file is fsynced.
	CrashBeforeSync = "before-sync"
	// CrashBeforeRename fires after fsync, before the rename that
	// publishes the file.
	CrashBeforeRename = "before-rename"
	// CrashAfterRename fires after the rename, before the directory
	// fsync that makes it durable.
	CrashAfterRename = "after-rename"
)

// CrashPoint, when non-nil, is called at each commit point with the
// point's name. A non-nil return makes Commit stop in place — no
// cleanup, exactly like a process death there — and return the error.
// Test-only; production leaves it nil.
var CrashPoint func(point string) error

func crash(point string) error {
	if CrashPoint == nil {
		return nil
	}
	return CrashPoint(point)
}

// AtomicFile writes a file so that the destination path only ever
// holds a complete artifact: bytes go to a temp file in the same
// directory, and Commit publishes them with fsync + rename +
// directory fsync. Abandoning (Abort, or a crash) leaves the previous
// file untouched.
type AtomicFile struct {
	f         *os.File
	path      string
	committed bool
}

// NewAtomicFile starts an atomic write of path.
func NewAtomicFile(path string) (*AtomicFile, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return nil, err
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write appends to the pending file.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Commit makes the pending bytes durable and publishes them at the
// destination path in one atomic step.
func (a *AtomicFile) Commit() error {
	if a.committed {
		return fmt.Errorf("ckptio: %s already committed", a.path)
	}
	if err := crash(CrashBeforeSync); err != nil {
		return err
	}
	if err := a.f.Sync(); err != nil {
		a.Abort()
		return fmt.Errorf("ckptio: sync %s: %w", a.path, err)
	}
	if err := a.f.Close(); err != nil {
		a.Abort()
		return fmt.Errorf("ckptio: close %s: %w", a.path, err)
	}
	if err := crash(CrashBeforeRename); err != nil {
		return err
	}
	if err := os.Rename(a.f.Name(), a.path); err != nil {
		a.Abort()
		return err
	}
	a.committed = true
	if err := crash(CrashAfterRename); err != nil {
		return err
	}
	// Rename is atomic, but only the directory fsync makes it durable:
	// without it a power cut can roll the directory entry back to the
	// old file. Some filesystems reject directory syncs; that is not a
	// torn write, so it is not fatal.
	if dir, err := os.Open(filepath.Dir(a.path)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}

// Abort discards the pending write (no-op after Commit).
func (a *AtomicFile) Abort() {
	if a.committed {
		return
	}
	_ = a.f.Close()
	_ = os.Remove(a.f.Name())
}

// WriteFileAtomic writes path via write(w) under AtomicFile: the
// destination is untouched unless write succeeds and the commit
// completes.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	a, err := NewAtomicFile(path)
	if err != nil {
		return err
	}
	if err := write(a); err != nil {
		a.Abort()
		return err
	}
	return a.Commit()
}
