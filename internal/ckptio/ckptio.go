// Package ckptio is the durability layer under every on-disk training
// artifact: checkpoints, corpora, and training snapshots. It supplies
// the two properties the artifacts themselves cannot express:
//
//   - integrity: a section frame wraps each gob payload in an explicit
//     length and a CRC32C (Castagnoli) checksum, so truncation and bit
//     rot fail the load with a typed *CorruptError instead of decoding
//     into garbage weights;
//   - atomicity: AtomicFile writes into a temp file in the destination
//     directory and commits with fsync + rename + directory fsync, so
//     a crash mid-write leaves either the previous artifact or the new
//     one, never a torn hybrid.
//
// The package also hosts the fault-injection hooks the durability
// tests drive: FailingWriter (fail or short-write after N bytes) and
// the CrashPoint hook that stops a commit at a chosen point so tests
// can observe the on-disk state a real crash would have left.
package ckptio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// CorruptError reports an artifact whose bytes fail an integrity
// check — truncation, bit rot, a torn write, or hostile input. It
// exists so callers can distinguish "this file is damaged" (errors.As)
// from I/O errors and honest version/config mismatches.
type CorruptError struct {
	// Artifact names the file kind ("checkpoint", "corpus",
	// "snapshot").
	Artifact string
	// Reason describes the failed check.
	Reason string
}

func (e *CorruptError) Error() string {
	return "ckptio: corrupt " + e.Artifact + ": " + e.Reason
}

// Corruptf builds a *CorruptError with a formatted reason.
func Corruptf(artifact, format string, args ...any) error {
	return &CorruptError{Artifact: artifact, Reason: fmt.Sprintf(format, args...)}
}

// castagnoli is the CRC32C polynomial table — the checksum family
// storage systems standardized on (hardware-accelerated on amd64 and
// arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of p.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// NewChecksum returns a running CRC32C hash (for writers that
// checksum sections as bytes stream through).
func NewChecksum() Hash32 { return crc32.New(castagnoli) }

// Hash32 is the running-checksum interface writers thread through
// (satisfied by hash/crc32's digest).
type Hash32 interface {
	io.Writer
	Sum32() uint32
	Reset()
}

// frameOverhead is the fixed byte cost of one section frame: an 8-byte
// big-endian payload length plus a 4-byte big-endian CRC32C.
const frameOverhead = 12

// maxSectionBytes bounds a frame's declared payload length. A flipped
// bit in the length field must fail as corruption, not as a
// multi-gigabyte allocation.
const maxSectionBytes = 1 << 30

// WriteSection writes one framed section: [8B length][payload][4B
// CRC32C of payload].
func WriteSection(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], Checksum(payload))
	_, err := w.Write(sum[:])
	return err
}

// ReadSection reads one framed section and verifies its checksum,
// returning the payload. Truncation, an implausible length, and a
// checksum mismatch all return a *CorruptError naming artifact.
func ReadSection(r io.Reader, artifact string) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, Corruptf(artifact, "truncated section header: %v", err)
	}
	n := binary.BigEndian.Uint64(hdr[:])
	if n > maxSectionBytes {
		return nil, Corruptf(artifact, "section length %d exceeds limit %d (corrupt length field?)", n, maxSectionBytes)
	}
	// Copy incrementally instead of pre-allocating n bytes: a corrupt
	// length just under the cap must fail at EOF, not allocate a
	// gigabyte first.
	var buf bytes.Buffer
	if m, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, Corruptf(artifact, "truncated section payload (%d of %d declared bytes): %v", m, n, err)
	}
	payload := buf.Bytes()
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, Corruptf(artifact, "truncated section checksum: %v", err)
	}
	if want, got := binary.BigEndian.Uint32(sum[:]), Checksum(payload); want != got {
		return nil, Corruptf(artifact, "section checksum mismatch: stored %08x, computed %08x", want, got)
	}
	return payload, nil
}
