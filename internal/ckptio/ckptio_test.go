package ckptio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestSectionRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 70000)}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteSection(&buf, p); err != nil {
			t.Fatalf("WriteSection: %v", err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, p := range payloads {
		got, err := ReadSection(r, "test")
		if err != nil {
			t.Fatalf("ReadSection %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("section %d: got %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, err := ReadSection(r, "test"); err == nil {
		t.Fatal("ReadSection past the end should fail")
	}
}

// Every single-bit flip of a framed section must fail the read with a
// *CorruptError — the acceptance property the checkpoint and corpus
// formats inherit from this frame.
func TestSectionDetectsEveryBitFlip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSection(&buf, []byte("durable training artifact")); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for i := range orig {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(orig)
			mut[i] ^= 1 << bit
			_, err := ReadSection(bytes.NewReader(mut), "test")
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("flip byte %d bit %d: got %v, want *CorruptError", i, bit, err)
			}
		}
	}
}

// Every truncation must fail too, including cutting inside the
// trailing checksum.
func TestSectionDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSection(&buf, []byte("truncate me")); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for n := 0; n < len(orig); n++ {
		_, err := ReadSection(bytes.NewReader(orig[:n]), "test")
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncate to %d bytes: got %v, want *CorruptError", n, err)
		}
	}
}

func TestSectionRejectsHugeLength(t *testing.T) {
	// A frame whose length field claims 2^40 bytes: must be rejected
	// before any allocation of that size.
	frame := make([]byte, 8)
	frame[2] = 1 // big-endian 2^40
	_, err := ReadSection(bytes.NewReader(frame), "test")
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CorruptError", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A failing producer must leave the old file untouched and no temp
	// litter.
	wantErr := errors.New("producer failed")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, _ = w.Write([]byte("partial"))
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want producer error", err)
	}
	assertFile(t, path, "old")
	assertNoTemp(t, path)
	// A successful producer replaces it.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	assertFile(t, path, "new")
	assertNoTemp(t, path)
}

// A FailingWriter under WriteSection models a full disk / torn stream:
// whatever prefix lands must fail the read as corrupt.
func TestFailingWriterTornSection(t *testing.T) {
	full := &bytes.Buffer{}
	if err := WriteSection(full, []byte("some payload bytes")); err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut < int64(full.Len()); cut += 3 {
		var torn bytes.Buffer
		fw := &FailingWriter{W: &torn, FailAfter: cut}
		if err := WriteSection(fw, []byte("some payload bytes")); err == nil {
			t.Fatalf("cut at %d: write should have failed", cut)
		}
		if int64(torn.Len()) != cut {
			t.Fatalf("cut at %d: %d bytes reached the writer", cut, torn.Len())
		}
		_, err := ReadSection(bytes.NewReader(torn.Bytes()), "test")
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("cut at %d: got %v, want *CorruptError", cut, err)
		}
	}
}

// Crashing at each commit point must leave either the old artifact or
// the new one at the destination — never a torn file.
func TestCommitCrashPoints(t *testing.T) {
	defer func() { CrashPoint = nil }()
	for _, point := range []string{CrashBeforeSync, CrashBeforeRename, CrashAfterRename} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "artifact")
			if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			crashErr := fmt.Errorf("crash at %s", point)
			CrashPoint = func(p string) error {
				if p == point {
					return crashErr
				}
				return nil
			}
			err := WriteFileAtomic(path, func(w io.Writer) error {
				_, err := w.Write([]byte("new"))
				return err
			})
			CrashPoint = nil
			if !errors.Is(err, crashErr) {
				t.Fatalf("got %v, want crash error", err)
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("destination unreadable after crash: %v", rerr)
			}
			want := "old"
			if point == CrashAfterRename {
				want = "new"
			}
			if string(got) != want {
				t.Fatalf("after crash at %s destination holds %q, want %q", point, got, want)
			}
		})
	}
}

func assertFile(t *testing.T, path, want string) {
	t.Helper()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("%s holds %q, want %q", path, got, want)
	}
}

func assertNoTemp(t *testing.T, path string) {
	t.Helper()
	matches, err := filepath.Glob(path + ".tmp*")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp litter left behind: %v", matches)
	}
}
