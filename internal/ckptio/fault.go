package ckptio

import (
	"errors"
	"io"
)

// ErrInjected is the default failure a FailingWriter returns.
var ErrInjected = errors.New("ckptio: injected write failure")

// FailingWriter passes writes through to W until FailAfter total bytes
// have been accepted, then fails — optionally after a short write of
// the remaining budget, which is how a full disk or a killed process
// actually truncates a stream. It is the unit-test stand-in for the
// crashes scripts/crash_resume_smoke.sh injects for real with
// SIGKILL.
type FailingWriter struct {
	W io.Writer
	// FailAfter is the byte budget; writes past it fail.
	FailAfter int64
	// Err overrides ErrInjected.
	Err error

	written int64
}

func (f *FailingWriter) Write(p []byte) (int, error) {
	fail := f.Err
	if fail == nil {
		fail = ErrInjected
	}
	remaining := f.FailAfter - f.written
	if remaining <= 0 {
		return 0, fail
	}
	if int64(len(p)) <= remaining {
		n, err := f.W.Write(p)
		f.written += int64(n)
		return n, err
	}
	// Short write: accept only the remaining budget, then fail.
	n, err := f.W.Write(p[:remaining])
	f.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, fail
}
