// Package corpus is the on-disk backend of the data plane: a
// versioned container holding, per database, the full columnar table
// data plus a pre-labeled workload — everything a training run needs,
// so corpora are generated once (mtmlf-datagen -out), shipped as
// files, and trained from repeatedly without regenerating or
// relabeling anything.
//
// # File layout
//
// A corpus file is a sequence of self-contained gob streams plus a
// fixed-size binary trailer:
//
//	offset 0   header stream: magic/version preamble (nn.WriteHeader,
//	           magic "MTMLF-CORPUS") followed by the Meta record
//	...        per database, in order:
//	             one schema stream: dbRecord (name, columnar tables,
//	             join edges, fact tables)
//	             one stream PER EXAMPLE: the workload.LabeledQuery
//	...        footer stream: the index — every database's schema
//	           offset and per-example offsets
//	end-16     trailer: big-endian footer offset (8 bytes) + trailer
//	           magic "MTCORPV1" (8 bytes)
//
// Every section being its own gob stream is what makes the format
// seekable: the reader jumps to any example's offset and decodes just
// that blob, so an epoch over a corpus far larger than RAM touches
// one minibatch of examples at a time. The writer is append-only
// (offsets are counted, never seeked), so generation can stream
// examples straight to disk shard by shard.
//
// Gob transmits float64 bit patterns verbatim, which the data plane's
// determinism contract relies on: a write → read round trip
// reproduces the exact example set, and a training run streamed from
// disk is bitwise identical to one fed from memory.
package corpus

import (
	"encoding/gob"
	"fmt"

	"mtmlf/internal/sqldb"
)

const (
	// Magic identifies a corpus header stream.
	Magic = "MTMLF-CORPUS"
	// Version is the current (and maximum readable) format version.
	Version = 1
	// trailerMagic closes the file; a torn or truncated write fails
	// loudly at open instead of gob-decoding garbage.
	trailerMagic = "MTCORPV1"
	// trailerSize is the fixed byte size of the trailer.
	trailerSize = 16
)

// Meta describes a corpus's provenance, echoed into the file at write
// time and returned by Reader.Meta.
type Meta struct {
	// Seed is the master seed the corpus was generated from.
	Seed int64
	// ShardSize is the workload generation shard size (the unit of the
	// deterministic seed scheme; see workload.ShardSeed).
	ShardSize int
	// Note is free-form provenance (generator settings echo).
	Note string
}

// dbRecord is the on-wire schema + columnar data of one database.
// The column vectors are stored verbatim, so a reloaded database is
// value-identical to the generated one (and therefore re-ANALYZEs to
// identical statistics).
type dbRecord struct {
	Name       string
	Tables     []tableRecord
	Edges      []sqldb.JoinEdge
	FactTables []string
}

type tableRecord struct {
	Name string
	Cols []columnRecord
}

type columnRecord struct {
	Name string
	Kind sqldb.Kind
	Ints []int64
	Flts []float64
	Strs []string
}

// dbIndex locates one database's sections inside the file.
type dbIndex struct {
	Name string
	// Off is the schema stream's offset; ExampleOffs the offset of
	// every example stream; End the offset one past the last example.
	Off         int64
	ExampleOffs []int64
	End         int64
}

// footer is the seekable index written at the end of the file.
type footer struct {
	DBs []dbIndex
}

// toRecord flattens a database for encoding.
func toRecord(db *sqldb.DB) dbRecord {
	rec := dbRecord{
		Name:       db.Name,
		Edges:      db.Edges,
		FactTables: db.FactTables,
	}
	for _, t := range db.Tables {
		tr := tableRecord{Name: t.Name}
		for _, c := range t.Columns {
			tr.Cols = append(tr.Cols, columnRecord{
				Name: c.Name, Kind: c.Kind,
				Ints: c.Ints, Flts: c.Flts, Strs: c.Strs,
			})
		}
		rec.Tables = append(rec.Tables, tr)
	}
	return rec
}

// fromRecord reconstitutes a database, re-validating schema
// invariants (column lengths, edge endpoints) exactly like the
// original construction path did.
func fromRecord(rec dbRecord) (*sqldb.DB, error) {
	db := sqldb.NewDB(rec.Name)
	for _, tr := range rec.Tables {
		cols := make([]*sqldb.Column, len(tr.Cols))
		for i, cr := range tr.Cols {
			cols[i] = &sqldb.Column{Name: cr.Name, Kind: cr.Kind, Ints: cr.Ints, Flts: cr.Flts, Strs: cr.Strs}
		}
		t, err := sqldb.NewTable(tr.Name, cols...)
		if err != nil {
			return nil, fmt.Errorf("corpus: database %q: %w", rec.Name, err)
		}
		if err := db.AddTable(t); err != nil {
			return nil, fmt.Errorf("corpus: database %q: %w", rec.Name, err)
		}
	}
	for _, e := range rec.Edges {
		if err := db.AddEdge(e); err != nil {
			return nil, fmt.Errorf("corpus: database %q: %w", rec.Name, err)
		}
	}
	db.FactTables = append(db.FactTables, rec.FactTables...)
	return db, nil
}

// encodeSection writes one self-contained gob stream and returns
// nothing; each section gets a fresh encoder so it can later be
// decoded in isolation at its recorded offset.
func encodeSection(w *countWriter, v any) error {
	return gob.NewEncoder(w).Encode(v)
}
