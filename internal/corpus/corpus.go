// Package corpus is the on-disk backend of the data plane: a
// versioned container holding, per database, the full columnar table
// data plus a pre-labeled workload — everything a training run needs,
// so corpora are generated once (mtmlf-datagen -out), shipped as
// files, and trained from repeatedly without regenerating or
// relabeling anything.
//
// # File layout
//
// A corpus file is a sequence of self-contained gob streams plus a
// fixed-size binary trailer:
//
//	offset 0   header stream: magic/version preamble (nn.WriteHeader,
//	           magic "MTMLF-CORPUS") followed by the Meta record
//	...        per database, in order:
//	             one schema stream: dbRecord (name, columnar tables,
//	             join edges, fact tables)
//	             [v2] one OPTIONAL single-table stream: the per-table
//	             encoder pre-training workloads ([]workload.TableWorkload)
//	             one stream PER EXAMPLE: the workload.LabeledQuery
//	...        footer stream: the index — every database's schema
//	           offset, optional single-table offset, and per-example
//	           offsets (v3: plus a CRC32C per section and the header's
//	           end offset + CRC)
//	end-24     v3 trailer: big-endian footer offset (8 bytes) +
//	           big-endian footer CRC32C (4 bytes) + reserved zeros
//	           (4 bytes) + trailer magic "MTCORPV3" (8 bytes).
//	           v1/v2 files instead end with the 16-byte legacy
//	           trailer: footer offset (8 bytes) + magic "MTCORPV1".
//
// # Versions
//
// The header's version field gates the format. Version 1 has no
// single-table sections; version 2 adds one optional single-table
// stream per database, between the schema stream and the first
// example, located by the index's SingleOff field (0 = absent);
// version 3 adds integrity checksums: every section (header, schema,
// single-table, each example, footer) carries a CRC32C, so any bit
// flip or truncation anywhere in the file fails a read with a typed
// *CorruptError instead of decoding garbage into a training run. The
// reader accepts all three versions; v1 files simply report no
// single-table data, so consumers fall back to generating it live
// (featurize.PretrainAll instead of PretrainAllFrom). NewWriterVersion
// still writes v1/v2 files for compatibility tests and older readers.
//
// Opening validates the trailer, the footer checksum (v3), the header
// checksum (v3), and the whole index before any section is decoded:
// every database range must lie inside the file, example offsets must
// be strictly increasing inside their database's range, and section
// order must be schema < single-table < examples. A corrupt index
// fails at Open with a *CorruptError instead of panicking later in
// the serving or training process. Schema, single-table, and example
// sections are checksum-verified lazily, when first decoded.
//
// Every section being its own gob stream is what makes the format
// seekable: the reader jumps to any example's offset and decodes just
// that blob, so an epoch over a corpus far larger than RAM touches
// one minibatch of examples at a time. The writer is append-only
// (offsets are counted, never seeked), so generation can stream
// examples straight to disk shard by shard.
//
// Gob transmits float64 bit patterns verbatim, which the data plane's
// determinism contract relies on: a write → read round trip
// reproduces the exact example set, and a training run streamed from
// disk is bitwise identical to one fed from memory.
package corpus

import (
	"encoding/gob"
	"fmt"

	"mtmlf/internal/sqldb"
	"mtmlf/internal/workload"
)

const (
	// Magic identifies a corpus header stream.
	Magic = "MTMLF-CORPUS"
	// Version is the current (and maximum readable) format version.
	// v1: schema + examples; v2: adds the optional per-DB single-table
	// pre-training section; v3: adds per-section CRC32C checksums and
	// the 24-byte trailer.
	Version = 3
	// trailerMagic closes a v1/v2 file; a torn or truncated write fails
	// loudly at open instead of gob-decoding garbage.
	trailerMagic = "MTCORPV1"
	// trailerSize is the fixed byte size of the legacy (v1/v2) trailer.
	trailerSize = 16
	// trailerMagicV3 closes a v3 file.
	trailerMagicV3 = "MTCORPV3"
	// trailerSizeV3 is the fixed byte size of the v3 trailer:
	// [8B footer offset][4B footer CRC32C][4B reserved][8B magic].
	trailerSizeV3 = 24
)

// Meta describes a corpus's provenance, echoed into the file at write
// time and returned by Reader.Meta. Gob ignores fields the decoder's
// type lacks and zero-fills fields the stream lacks, so adding fields
// here stays wire-compatible in both directions.
type Meta struct {
	// Seed is the master seed the corpus was generated from.
	Seed int64
	// ShardSize is the workload generation shard size (the unit of the
	// deterministic seed scheme; see workload.ShardSeed). 0 for
	// fleet-MLA corpora, whose generation is per-DB single-stream.
	ShardSize int
	// Note is free-form provenance (generator settings echo).
	Note string
	// SingleTablePerTable and MLAWorkload record the Algorithm 1
	// generation parameters of a fleet-MLA corpus (mtmlf-datagen
	// -single-table): SingleTablePerTable > 0 marks the corpus as one
	// and MLAWorkload is the workload config every draw used — what a
	// training run needs to reproduce the live (F)-pretrain fallback
	// bitwise when the single-table sections are absent (v1 file).
	// Zero on corpora that predate v2 or were not generated for MLA.
	SingleTablePerTable int
	MLAWorkload         workload.Config
}

// dbRecord is the on-wire schema + columnar data of one database.
// The column vectors are stored verbatim, so a reloaded database is
// value-identical to the generated one (and therefore re-ANALYZEs to
// identical statistics).
type dbRecord struct {
	Name       string
	Tables     []tableRecord
	Edges      []sqldb.JoinEdge
	FactTables []string
}

type tableRecord struct {
	Name string
	Cols []columnRecord
}

type columnRecord struct {
	Name string
	Kind sqldb.Kind
	Ints []int64
	Flts []float64
	Strs []string
}

// dbIndex locates one database's sections inside the file.
type dbIndex struct {
	Name string
	// Off is the schema stream's offset; ExampleOffs the offset of
	// every example stream; End the offset one past the last example.
	Off         int64
	ExampleOffs []int64
	End         int64
	// SingleOff is the offset of the optional single-table
	// pre-training stream (v2); 0 means absent. Gob leaves absent
	// fields zero, so v1 footers decode with SingleOff == 0 — exactly
	// the "no section" encoding.
	SingleOff int64
	// SchemaCRC, SingleCRC, and ExampleCRCs (v3) are the CRC32C of the
	// schema stream, the single-table stream, and each example stream,
	// verified lazily when a section is first decoded. Zero-filled on
	// v1/v2 files, whose sections carry no checksums.
	SchemaCRC   uint32
	SingleCRC   uint32
	ExampleCRCs []uint32
}

// schemaEnd returns the offset one past the schema stream: the next
// section in file order (single-table stream, first example, or the
// database's end).
func (d *dbIndex) schemaEnd() int64 {
	if d.SingleOff > 0 {
		return d.SingleOff
	}
	if len(d.ExampleOffs) > 0 {
		return d.ExampleOffs[0]
	}
	return d.End
}

// singleEnd returns the offset one past the single-table stream.
func (d *dbIndex) singleEnd() int64 {
	if len(d.ExampleOffs) > 0 {
		return d.ExampleOffs[0]
	}
	return d.End
}

// CorruptError reports a structurally invalid corpus index caught at
// open time, before any section is decoded. It exists so callers can
// distinguish "this file is damaged" (errors.As) from I/O errors and
// version mismatches.
type CorruptError struct {
	// Reason describes the failed invariant.
	Reason string
}

func (e *CorruptError) Error() string { return "corpus: corrupt corpus: " + e.Reason }

func corruptf(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// footer is the seekable index written at the end of the file.
type footer struct {
	DBs []dbIndex
	// HeaderEnd and HeaderCRC (v3) delimit and checksum the header
	// stream (magic/version preamble + Meta), so bit rot in the header
	// is caught before the header is gob-decoded. Zero on v1/v2 files.
	HeaderEnd int64
	HeaderCRC uint32
}

// toRecord flattens a database for encoding.
func toRecord(db *sqldb.DB) dbRecord {
	rec := dbRecord{
		Name:       db.Name,
		Edges:      db.Edges,
		FactTables: db.FactTables,
	}
	for _, t := range db.Tables {
		tr := tableRecord{Name: t.Name}
		for _, c := range t.Columns {
			tr.Cols = append(tr.Cols, columnRecord{
				Name: c.Name, Kind: c.Kind,
				Ints: c.Ints, Flts: c.Flts, Strs: c.Strs,
			})
		}
		rec.Tables = append(rec.Tables, tr)
	}
	return rec
}

// fromRecord reconstitutes a database, re-validating schema
// invariants (column lengths, edge endpoints) exactly like the
// original construction path did.
func fromRecord(rec dbRecord) (*sqldb.DB, error) {
	db := sqldb.NewDB(rec.Name)
	for _, tr := range rec.Tables {
		cols := make([]*sqldb.Column, len(tr.Cols))
		for i, cr := range tr.Cols {
			cols[i] = &sqldb.Column{Name: cr.Name, Kind: cr.Kind, Ints: cr.Ints, Flts: cr.Flts, Strs: cr.Strs}
		}
		t, err := sqldb.NewTable(tr.Name, cols...)
		if err != nil {
			return nil, fmt.Errorf("corpus: database %q: %w", rec.Name, err)
		}
		if err := db.AddTable(t); err != nil {
			return nil, fmt.Errorf("corpus: database %q: %w", rec.Name, err)
		}
	}
	for _, e := range rec.Edges {
		if err := db.AddEdge(e); err != nil {
			return nil, fmt.Errorf("corpus: database %q: %w", rec.Name, err)
		}
	}
	db.FactTables = append(db.FactTables, rec.FactTables...)
	return db, nil
}

// encodeSection writes one self-contained gob stream and returns
// nothing; each section gets a fresh encoder so it can later be
// decoded in isolation at its recorded offset.
func encodeSection(w *countWriter, v any) error {
	return gob.NewEncoder(w).Encode(v)
}
