package corpus

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"mtmlf/internal/catalog"
	"mtmlf/internal/datagen"
	"mtmlf/internal/workload"
)

// durableCorpusBytes builds a small in-memory corpus exercising every
// section kind: header, schema, single-table, examples, footer.
func durableCorpusBytes(t testing.TB, version int) []byte {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.MinTables, cfg.MaxTables = 4, 4
	cfg.MinRows, cfg.MaxRows = 60, 100
	db := datagen.GenerateFleet(37, 1, cfg)[0]
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 3
	var buf bytes.Buffer
	w, err := NewWriterVersion(&buf, Meta{Seed: 37, Note: "durability"}, version)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BeginDB(db); err != nil {
		t.Fatal(err)
	}
	if version >= 2 {
		if err := w.WriteSingleTable(singleTableSet(db, 38, 2)); err != nil {
			t.Fatal(err)
		}
	}
	for _, lq := range workload.GenerateSharded(catalog.NewMemory(db), 39, 3, 2, wcfg) {
		if err := w.AppendExample(lq); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openWalk opens a corpus from bytes and touches every lazily verified
// section: meta, every schema, every single-table section, and every
// example. It returns the first error, so a corruption anywhere in the
// file surfaces no matter which section it landed in.
func openWalk(data []byte) error {
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return err
	}
	for i := 0; i < r.NumDBs(); i++ {
		c, err := r.Catalog(i)
		if err != nil {
			return err
		}
		if _, _, err := c.SingleTable(); err != nil {
			return err
		}
		ex, err := r.Examples(i)
		if err != nil {
			return err
		}
		for j := 0; j < ex.Len(); j++ {
			if _, err := ex.Example(j); err != nil {
				return err
			}
		}
	}
	return nil
}

// TestCorpusDetectsBitFlips: a single-bit flip anywhere in a v3
// corpus — header, any data section, footer, trailer — must fail Open
// or the walk with a *CorruptError. The full cross-product is fuzz
// territory (FuzzCorpusOpen); this sweeps every bit of the header
// region plus a stride across the rest.
func TestCorpusDetectsBitFlips(t *testing.T) {
	orig := durableCorpusBytes(t, Version)
	if err := openWalk(orig); err != nil {
		t.Fatalf("pristine corpus does not walk: %v", err)
	}
	check := func(i, bit int) {
		mut := bytes.Clone(orig)
		mut[i] ^= 1 << bit
		err := openWalk(mut)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("flip byte %d bit %d: got %v, want *CorruptError", i, bit, err)
		}
	}
	for i := 0; i < 64 && i < len(orig); i++ {
		for bit := 0; bit < 8; bit++ {
			check(i, bit)
		}
	}
	stride := (len(orig) - 64) / 48
	if stride < 1 {
		stride = 1
	}
	for k, i := 0, 64; i < len(orig); k, i = k+1, i+stride {
		check(i, k%8)
	}
	// The trailer is structural, not checksummed: sweep all of it.
	for i := len(orig) - trailerSizeV3; i < len(orig); i++ {
		for bit := 0; bit < 8; bit++ {
			check(i, bit)
		}
	}
}

// TestCorpusDetectsTruncation: every truncated prefix of a v3 corpus
// fails with a *CorruptError — the torn-write shape a crash mid-copy
// produces (the writer itself commits atomically, see WriteFile).
func TestCorpusDetectsTruncation(t *testing.T) {
	orig := durableCorpusBytes(t, Version)
	stride := (len(orig) - 64) / 48
	if stride < 1 {
		stride = 1
	}
	for n := 0; n < len(orig); n++ {
		if n >= 64 && (n-64)%stride != 0 {
			continue
		}
		err := openWalk(orig[:n])
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncate to %d bytes: got %v, want *CorruptError", n, err)
		}
	}
}

// TestCorpusV2StillReadable: the pre-checksum v2 format keeps loading
// — sections decode, the single-table section round-trips, and the
// reader reports Version 2.
func TestCorpusV2StillReadable(t *testing.T) {
	data := durableCorpusBytes(t, 2)
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 2 {
		t.Fatalf("version %d, want 2", r.Version())
	}
	if err := openWalk(data); err != nil {
		t.Fatalf("v2 corpus does not walk: %v", err)
	}
	c, err := r.Catalog(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.SingleTable(); !ok || err != nil {
		t.Fatalf("v2 single-table section: ok=%v err=%v", ok, err)
	}
	// Same content written at v2 and v3 decodes to the same examples.
	r3, err := func() (*Reader, error) {
		d3 := durableCorpusBytes(t, 3)
		return NewReader(bytes.NewReader(d3), int64(len(d3)))
	}()
	if err != nil {
		t.Fatal(err)
	}
	ex2, err := r.Examples(0)
	if err != nil {
		t.Fatal(err)
	}
	ex3, err := r3.Examples(0)
	if err != nil {
		t.Fatal(err)
	}
	if ex2.Len() != ex3.Len() {
		t.Fatalf("example counts differ: %d vs %d", ex2.Len(), ex3.Len())
	}
	for i := 0; i < ex2.Len(); i++ {
		a, b := mustExample(t, ex2, i), mustExample(t, ex3, i)
		if math.Float64bits(a.Card) != math.Float64bits(b.Card) ||
			math.Float64bits(a.Cost) != math.Float64bits(b.Cost) {
			t.Fatalf("example %d differs across versions", i)
		}
	}
}
