package corpus

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mtmlf/internal/catalog"
	"mtmlf/internal/datagen"
	"mtmlf/internal/plan"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/workload"
)

// testCorpus generates a small fleet with sharded labeled workloads
// and writes it to a temp file, returning the path and the in-memory
// originals.
func testCorpus(t *testing.T, seed int64, nDBs, nExamples int) (string, []*Database) {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.MinTables, cfg.MaxTables = 4, 5
	cfg.MinRows, cfg.MaxRows = 60, 120
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 3
	var dbs []*Database
	for i, db := range datagen.GenerateFleet(seed, nDBs, cfg) {
		ex := workload.GenerateSharded(catalog.NewMemory(db), seed+int64(i)*7919, nExamples, 4, wcfg)
		dbs = append(dbs, &Database{DB: db, Examples: ex})
	}
	path := filepath.Join(t.TempDir(), "corpus.mtc")
	if err := WriteFile(path, Meta{Seed: seed, ShardSize: 4, Note: "test"}, dbs); err != nil {
		t.Fatal(err)
	}
	return path, dbs
}

// equalColumns compares two columns value-for-value (floats bitwise).
func equalColumns(t *testing.T, table string, a, b *sqldb.Column) {
	t.Helper()
	if a.Name != b.Name || a.Kind != b.Kind || a.Len() != b.Len() {
		t.Fatalf("%s.%s: column identity differs: %v/%v vs %v/%v", table, a.Name, a.Kind, a.Len(), b.Kind, b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		switch a.Kind {
		case sqldb.KindInt:
			if a.Ints[i] != b.Ints[i] {
				t.Fatalf("%s.%s[%d]: %d != %d", table, a.Name, i, a.Ints[i], b.Ints[i])
			}
		case sqldb.KindFloat:
			if math.Float64bits(a.Flts[i]) != math.Float64bits(b.Flts[i]) {
				t.Fatalf("%s.%s[%d]: %v != %v", table, a.Name, i, a.Flts[i], b.Flts[i])
			}
		default:
			if a.Strs[i] != b.Strs[i] {
				t.Fatalf("%s.%s[%d]: %q != %q", table, a.Name, i, a.Strs[i], b.Strs[i])
			}
		}
	}
}

// equalPlans compares plan trees structurally including operators.
func equalPlans(t *testing.T, a, b *plan.Node) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatal("plan nil-ness differs")
	}
	if a == nil {
		return
	}
	if a.Table != b.Table || a.Scan != b.Scan || a.Join != b.Join || a.IsLeaf() != b.IsLeaf() {
		t.Fatalf("plan node differs: %v vs %v", a, b)
	}
	if !a.IsLeaf() {
		equalPlans(t, a.Left, b.Left)
		equalPlans(t, a.Right, b.Right)
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// equalExamples asserts a corpus round trip reproduced the exact
// example: query, filters, plan, and every label bitwise.
func equalExamples(t *testing.T, a, b *workload.LabeledQuery) {
	t.Helper()
	if len(a.Q.Tables) != len(b.Q.Tables) {
		t.Fatalf("table count %d vs %d", len(a.Q.Tables), len(b.Q.Tables))
	}
	for i := range a.Q.Tables {
		if a.Q.Tables[i] != b.Q.Tables[i] {
			t.Fatalf("table %d: %q vs %q", i, a.Q.Tables[i], b.Q.Tables[i])
		}
	}
	if len(a.Q.Joins) != len(b.Q.Joins) {
		t.Fatalf("join count differs")
	}
	for i := range a.Q.Joins {
		if a.Q.Joins[i] != b.Q.Joins[i] {
			t.Fatalf("join %d: %v vs %v", i, a.Q.Joins[i], b.Q.Joins[i])
		}
	}
	if len(a.Q.Filters) != len(b.Q.Filters) {
		t.Fatalf("filter count differs")
	}
	for i := range a.Q.Filters {
		if a.Q.Filters[i] != b.Q.Filters[i] {
			t.Fatalf("filter %d: %v vs %v", i, a.Q.Filters[i], b.Q.Filters[i])
		}
	}
	equalPlans(t, a.Plan, b.Plan)
	if !bitsEqual(a.NodeCards, b.NodeCards) || !bitsEqual(a.NodeCosts, b.NodeCosts) {
		t.Fatal("per-node labels differ")
	}
	if math.Float64bits(a.Card) != math.Float64bits(b.Card) ||
		math.Float64bits(a.Cost) != math.Float64bits(b.Cost) ||
		math.Float64bits(a.RawCard) != math.Float64bits(b.RawCard) {
		t.Fatal("root labels differ")
	}
	if len(a.OptimalOrder) != len(b.OptimalOrder) {
		t.Fatalf("optimal order length %d vs %d", len(a.OptimalOrder), len(b.OptimalOrder))
	}
	for i := range a.OptimalOrder {
		if a.OptimalOrder[i] != b.OptimalOrder[i] {
			t.Fatalf("optimal order %d: %q vs %q", i, a.OptimalOrder[i], b.OptimalOrder[i])
		}
	}
}

// TestRoundTripExact is the data-plane contract: write → read
// reproduces the exact databases (every column value) and the exact
// example set (every label bitwise).
func TestRoundTripExact(t *testing.T) {
	path, want := testCorpus(t, 31, 2, 10)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumDBs() != len(want) {
		t.Fatalf("NumDBs %d, want %d", r.NumDBs(), len(want))
	}
	if m := r.Meta(); m.Seed != 31 || m.ShardSize != 4 {
		t.Fatalf("meta round trip: %+v", m)
	}
	for i, w := range want {
		cat, err := r.Catalog(i)
		if err != nil {
			t.Fatal(err)
		}
		db := cat.DB()
		if db.Name != w.DB.Name {
			t.Fatalf("db %d name %q, want %q", i, db.Name, w.DB.Name)
		}
		if len(db.Tables) != len(w.DB.Tables) {
			t.Fatalf("db %d table count differs", i)
		}
		for j, tab := range w.DB.Tables {
			got := db.Tables[j]
			if got.Name != tab.Name || len(got.Columns) != len(tab.Columns) {
				t.Fatalf("db %d table %d identity differs", i, j)
			}
			for k := range tab.Columns {
				equalColumns(t, tab.Name, tab.Columns[k], got.Columns[k])
			}
		}
		if len(db.Edges) != len(w.DB.Edges) {
			t.Fatalf("db %d edge count differs", i)
		}
		for j := range w.DB.Edges {
			if db.Edges[j] != w.DB.Edges[j] {
				t.Fatalf("db %d edge %d differs", i, j)
			}
		}
		if len(db.FactTables) != len(w.DB.FactTables) {
			t.Fatalf("db %d fact tables differ", i)
		}
		ex, err := r.Examples(i)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Len() != len(w.Examples) {
			t.Fatalf("db %d has %d examples, want %d", i, ex.Len(), len(w.Examples))
		}
		for j, wex := range w.Examples {
			got, err := ex.Example(j)
			if err != nil {
				t.Fatal(err)
			}
			equalExamples(t, wex, got)
		}
	}
}

// TestExamplesConcurrentAndRepeatable: the source contract — any
// number of concurrent readers, same bits on every read.
func TestExamplesConcurrentAndRepeatable(t *testing.T) {
	path, want := testCorpus(t, 7, 1, 8)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ex, err := r.Examples(0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for it := 0; it < 50; it++ {
				i := rng.Intn(ex.Len())
				got, err := ex.Example(i)
				if err != nil {
					done <- err
					return
				}
				if math.Float64bits(got.Card) != math.Float64bits(want[0].Examples[i].Card) {
					t.Errorf("reader %d example %d: card differs", w, i)
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestStatsMatchMemoryBackend: the corpus catalog's ANALYZE result
// must equal the in-memory backend's — the invariant that makes a
// model built over either backend bitwise identical.
func TestStatsMatchMemoryBackend(t *testing.T) {
	path, want := testCorpus(t, 13, 1, 2)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cat, err := r.Catalog(0)
	if err != nil {
		t.Fatal(err)
	}
	mem := catalog.NewMemory(want[0].DB)
	got, ref := cat.Stats(), mem.Stats()
	for name, ts := range ref.Tables {
		gts, ok := got.Tables[name]
		if !ok {
			t.Fatalf("corpus stats lack table %q", name)
		}
		if gts.RowCount != ts.RowCount {
			t.Fatalf("%s: row count %d vs %d", name, gts.RowCount, ts.RowCount)
		}
		for col, cs := range ts.Cols {
			gcs := gts.Cols[col]
			if gcs == nil {
				t.Fatalf("%s.%s: missing column stats", name, col)
			}
			if gcs.Distinct != cs.Distinct || len(gcs.MCVs) != len(cs.MCVs) ||
				!bitsEqual(gcs.MCVFreqs, cs.MCVFreqs) || !bitsEqual(gcs.Bounds, cs.Bounds) {
				t.Fatalf("%s.%s: stats differ", name, col)
			}
		}
	}
}

// TestOpenRejectsGarbage: foreign, truncated, and torn files must
// fail loudly at open, not decode into garbage.
func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, bytes.Repeat([]byte("not a corpus!"), 10), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(junk); err == nil {
		t.Fatal("expected error for junk file")
	}
	path, _ := testCorpus(t, 3, 1, 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc")
	if err := os.WriteFile(trunc, raw[:len(raw)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(trunc); err == nil {
		t.Fatal("expected error for truncated file")
	}
	tiny := filepath.Join(dir, "tiny")
	if err := os.WriteFile(tiny, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(tiny); err == nil {
		t.Fatal("expected error for tiny file")
	}
}

// TestCatalogByNameAndBounds covers lookup errors.
func TestCatalogByNameAndBounds(t *testing.T) {
	path, _ := testCorpus(t, 5, 2, 2)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.CatalogByName("D2"); err != nil {
		t.Fatalf("D2 should exist: %v", err)
	}
	if _, err := r.CatalogByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
	if _, err := r.Catalog(99); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
	ex, err := r.Examples(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Example(-1); err == nil {
		t.Fatal("expected error for negative index")
	}
	if _, err := ex.Example(ex.Len()); err == nil {
		t.Fatal("expected error past end")
	}
}

// singleTableSet builds a small deterministic pre-training set for db.
func singleTableSet(db *sqldb.DB, seed int64, perTable int) []workload.TableWorkload {
	gen := workload.NewGeneratorFrom(catalog.NewMemory(db), seed)
	return gen.GenPretrainSet(perTable, workload.DefaultConfig())
}

// TestSingleTableRoundTrip: the v2 single-table section reproduces
// the stored pre-training workloads exactly, and databases written
// without one report ok=false.
func TestSingleTableRoundTrip(t *testing.T) {
	cfg := datagen.DefaultConfig()
	cfg.MinTables, cfg.MaxTables = 4, 5
	cfg.MinRows, cfg.MaxRows = 60, 120
	fleet := datagen.GenerateFleet(17, 2, cfg)
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 3
	want := singleTableSet(fleet[0], 18, 4)
	dbs := []*Database{
		{DB: fleet[0], SingleTable: want,
			Examples: workload.GenerateSharded(catalog.NewMemory(fleet[0]), 19, 3, 2, wcfg)},
		{DB: fleet[1], // no single-table section
			Examples: workload.GenerateSharded(catalog.NewMemory(fleet[1]), 20, 3, 2, wcfg)},
	}
	path := filepath.Join(t.TempDir(), "v2.mtc")
	if err := WriteFile(path, Meta{Seed: 17}, dbs); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != Version {
		t.Fatalf("version %d, want %d", r.Version(), Version)
	}
	c0, err := r.Catalog(0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := c0.SingleTable()
	if err != nil || !ok {
		t.Fatalf("single-table section missing: ok=%v err=%v", ok, err)
	}
	if len(got) != len(want) {
		t.Fatalf("table count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Table != want[i].Table || len(got[i].Queries) != len(want[i].Queries) {
			t.Fatalf("table %d identity differs: %q/%d vs %q/%d",
				i, got[i].Table, len(got[i].Queries), want[i].Table, len(want[i].Queries))
		}
		for j := range want[i].Queries {
			a, b := want[i].Queries[j], got[i].Queries[j]
			if a.Table != b.Table || len(a.Filters) != len(b.Filters) ||
				math.Float64bits(a.Card) != math.Float64bits(b.Card) ||
				math.Float64bits(a.Frac) != math.Float64bits(b.Frac) {
				t.Fatalf("%s query %d differs: %+v vs %+v", want[i].Table, j, a, b)
			}
			for k := range a.Filters {
				if a.Filters[k] != b.Filters[k] {
					t.Fatalf("%s query %d filter %d differs", want[i].Table, j, k)
				}
			}
		}
	}
	// Schema and examples still decode around the section.
	if db := c0.DB(); db.Name != fleet[0].Name {
		t.Fatalf("schema decode around single-table section: %q", db.Name)
	}
	ex, err := r.Examples(0)
	if err != nil {
		t.Fatal(err)
	}
	equalExamples(t, dbs[0].Examples[1], mustExample(t, ex, 1))
	// DB without a section: ok=false, no error.
	c1, err := r.Catalog(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c1.SingleTable(); ok || err != nil {
		t.Fatalf("unexpected single-table section: ok=%v err=%v", ok, err)
	}
}

func mustExample(t *testing.T, s *ExampleSet, i int) *workload.LabeledQuery {
	t.Helper()
	lq, err := s.Example(i)
	if err != nil {
		t.Fatal(err)
	}
	return lq
}

// TestV1StillReadable: the version gate — a file written at format
// version 1 opens under the v2 reader, reports Version 1, decodes
// schema + examples, rejects WriteSingleTable at write time, and
// reports no single-table data.
func TestV1StillReadable(t *testing.T) {
	cfg := datagen.DefaultConfig()
	cfg.MinTables, cfg.MaxTables = 4, 4
	cfg.MinRows, cfg.MaxRows = 60, 100
	db := datagen.GenerateFleet(23, 1, cfg)[0]
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 3
	examples := workload.GenerateSharded(catalog.NewMemory(db), 24, 4, 2, wcfg)

	path := filepath.Join(t.TempDir(), "v1.mtc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriterVersion(f, Meta{Seed: 23}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BeginDB(db); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSingleTable(singleTableSet(db, 25, 2)); err == nil {
		t.Fatal("v1 writer must reject WriteSingleTable")
	}
	for _, lq := range examples {
		if err := w.AppendExample(lq); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != 1 {
		t.Fatalf("version %d, want 1", r.Version())
	}
	c, err := r.Catalog(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.SingleTable(); ok || err != nil {
		t.Fatalf("v1 file claims a single-table section: ok=%v err=%v", ok, err)
	}
	ex, err := r.Examples(0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Len() != len(examples) {
		t.Fatalf("v1 example count %d, want %d", ex.Len(), len(examples))
	}
	for i := range examples {
		equalExamples(t, examples[i], mustExample(t, ex, i))
	}

	if _, err := NewWriterVersion(f, Meta{}, Version+1); err == nil {
		t.Fatal("future version must be unwritable")
	}
}

// writeCorrupted writes a tiny corpus whose in-memory index is
// tampered with by corrupt just before the footer is encoded —
// producing a structurally valid file with a lying index, the
// corruption class that used to surface as a panic deep inside
// DBCatalog.DB or ExampleSet.Example.
func writeCorrupted(t *testing.T, corrupt func(dbs []dbIndex)) string {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.MinTables, cfg.MaxTables = 4, 4
	cfg.MinRows, cfg.MaxRows = 60, 100
	db := datagen.GenerateFleet(29, 1, cfg)[0]
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 3
	path := filepath.Join(t.TempDir(), "corrupt.mtc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, Meta{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BeginDB(db); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSingleTable(singleTableSet(db, 30, 2)); err != nil {
		t.Fatal(err)
	}
	for _, lq := range workload.GenerateSharded(catalog.NewMemory(db), 31, 3, 2, wcfg) {
		if err := w.AppendExample(lq); err != nil {
			t.Fatal(err)
		}
	}
	// Seal the in-progress database entry so Close does not overwrite
	// the tampered End, then corrupt the index Close will encode.
	w.endDB()
	corrupt(w.dbs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenRejectsCorruptIndex: every index invariant is validated at
// Open, which must fail with a *CorruptError — never hand out a
// Reader that panics later.
func TestOpenRejectsCorruptIndex(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(dbs []dbIndex)
	}{
		{"example offsets not increasing", func(dbs []dbIndex) {
			dbs[0].ExampleOffs[2] = dbs[0].ExampleOffs[1]
		}},
		{"example offset before schema", func(dbs []dbIndex) {
			dbs[0].ExampleOffs[0] = dbs[0].Off
		}},
		{"example offset past db end", func(dbs []dbIndex) {
			dbs[0].ExampleOffs[2] = dbs[0].End + 7
		}},
		{"db range past file", func(dbs []dbIndex) {
			dbs[0].End = 1 << 40
		}},
		{"db offset negative", func(dbs []dbIndex) {
			dbs[0].Off = -1
		}},
		{"single-table offset before schema", func(dbs []dbIndex) {
			dbs[0].SingleOff = dbs[0].Off - 1
		}},
		{"single-table offset past examples", func(dbs []dbIndex) {
			dbs[0].SingleOff = dbs[0].End - 1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeCorrupted(t, tc.corrupt)
			r, err := Open(path)
			if err == nil {
				r.Close()
				t.Fatal("expected corrupt index to fail at Open")
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v (%T) is not a *CorruptError", err, err)
			}
		})
	}
	// A sane index still opens — the validator must not be overzealous.
	path := writeCorrupted(t, func([]dbIndex) {})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}
