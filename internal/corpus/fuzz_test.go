package corpus

import (
	"bytes"
	"testing"
)

// FuzzCorpusOpen: arbitrary bytes opened as a corpus — and walked
// through every lazily verified section — must return an error, never
// panic. The seed corpus covers both readable format versions plus
// the truncation and bit-flip shapes the deterministic durability
// tests sweep; the fuzzer explores the cross-product from there.
//
// Run longer than the CI smoke with:
//
//	go test ./internal/corpus -run=NONE -fuzz=FuzzCorpusOpen -fuzztime=5m
func FuzzCorpusOpen(f *testing.F) {
	v3 := durableCorpusBytes(f, Version)
	v2 := durableCorpusBytes(f, 2)
	flip := bytes.Clone(v3)
	flip[len(flip)/2] ^= 0x40
	tail := bytes.Clone(v3)
	tail[len(tail)-5] ^= 1 // inside the footer/trailer
	for _, seed := range [][]byte{
		v3,
		v2,
		v3[:len(v3)/2], // torn write
		v3[:7],         // truncated header
		flip,
		tail,
		[]byte(Magic),
		{},
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// openWalk touches the header, every schema, single-table, and
		// example section; errors are the expected outcome on mutated
		// inputs — the property under test is that nothing panics.
		_ = openWalk(data)
	})
}
