package corpus

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync"

	"mtmlf/internal/catalog"
	"mtmlf/internal/nn"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/stats"
	"mtmlf/internal/workload"
)

// Reader is seekable read access to a corpus file. Opening validates
// the header, trailer, and index; table data and examples are decoded
// on demand. All methods are safe for concurrent use — example reads
// go through ReadAt, so any number of training workers can stream
// from one Reader.
type Reader struct {
	ra    io.ReaderAt
	meta  Meta
	index []dbIndex
	cats  []*DBCatalog

	closer io.Closer // set when Open owns the file
}

// Open opens a corpus file for reading.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewReader opens a corpus from any io.ReaderAt of known size (an
// os.File, a bytes.Reader, an mmap).
func NewReader(ra io.ReaderAt, size int64) (*Reader, error) {
	if size < trailerSize {
		return nil, fmt.Errorf("corpus: file too small (%d bytes)", size)
	}
	// Trailer: footer offset + closing magic.
	var trailer [trailerSize]byte
	if _, err := ra.ReadAt(trailer[:], size-trailerSize); err != nil {
		return nil, fmt.Errorf("corpus: read trailer: %w", err)
	}
	if string(trailer[8:]) != trailerMagic {
		return nil, fmt.Errorf("corpus: bad trailer magic %q (truncated or foreign file?)", trailer[8:])
	}
	footerOff := int64(binary.BigEndian.Uint64(trailer[:8]))
	if footerOff < 0 || footerOff >= size-trailerSize {
		return nil, fmt.Errorf("corpus: footer offset %d outside file of %d bytes", footerOff, size)
	}
	// Header: magic/version preamble + meta.
	hdr := gob.NewDecoder(bufio.NewReader(io.NewSectionReader(ra, 0, size)))
	if _, err := nn.ReadHeader(hdr, Magic, Version); err != nil {
		return nil, fmt.Errorf("corpus: not a corpus file: %w", err)
	}
	var meta Meta
	if err := hdr.Decode(&meta); err != nil {
		return nil, fmt.Errorf("corpus: read meta: %w", err)
	}
	// Footer index.
	var ft footer
	dec := gob.NewDecoder(bufio.NewReader(io.NewSectionReader(ra, footerOff, size-trailerSize-footerOff)))
	if err := dec.Decode(&ft); err != nil {
		return nil, fmt.Errorf("corpus: read footer: %w", err)
	}
	r := &Reader{ra: ra, meta: meta, index: ft.DBs, cats: make([]*DBCatalog, len(ft.DBs))}
	for i := range r.cats {
		r.cats[i] = &DBCatalog{r: r, idx: i}
	}
	return r, nil
}

// Close releases the underlying file when the reader owns one (Open).
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// Meta returns the corpus provenance record.
func (r *Reader) Meta() Meta { return r.meta }

// NumDBs returns the number of databases in the corpus.
func (r *Reader) NumDBs() int { return len(r.index) }

// Names returns the database names in file order.
func (r *Reader) Names() []string {
	out := make([]string, len(r.index))
	for i, d := range r.index {
		out[i] = d.Name
	}
	return out
}

// Catalog returns the i-th database as a catalog.Catalog. The schema
// and columnar data are decoded on first use and cached; statistics
// are computed on first use.
func (r *Reader) Catalog(i int) (*DBCatalog, error) {
	if i < 0 || i >= len(r.index) {
		return nil, fmt.Errorf("corpus: database %d outside [0, %d)", i, len(r.index))
	}
	c := r.cats[i]
	if err := c.load(); err != nil {
		return nil, err
	}
	return c, nil
}

// CatalogByName returns the named database's catalog.
func (r *Reader) CatalogByName(name string) (*DBCatalog, error) {
	for i, d := range r.index {
		if d.Name == name {
			return r.Catalog(i)
		}
	}
	return nil, fmt.Errorf("corpus: no database %q (have %v)", name, r.Names())
}

// Examples returns the i-th database's labeled workload as a
// streaming workload.Source: each access decodes one example straight
// from disk, so epochs never materialize the corpus.
func (r *Reader) Examples(i int) (*ExampleSet, error) {
	if i < 0 || i >= len(r.index) {
		return nil, fmt.Errorf("corpus: database %d outside [0, %d)", i, len(r.index))
	}
	return &ExampleSet{r: r, d: &r.index[i]}, nil
}

// section returns a decoder over the byte range [off, end).
func (r *Reader) section(off, end int64) *gob.Decoder {
	return gob.NewDecoder(bufio.NewReader(io.NewSectionReader(r.ra, off, end-off)))
}

// DBCatalog is one corpus database behind the catalog.Catalog
// interface: the on-disk backend's answer to catalog.Memory.
type DBCatalog struct {
	r   *Reader
	idx int

	dbOnce sync.Once
	db     *sqldb.DB
	dbErr  error

	stOnce sync.Once
	st     *stats.DBStats
}

var _ catalog.Catalog = (*DBCatalog)(nil)

// load decodes and caches the schema + columnar data.
func (c *DBCatalog) load() error {
	c.dbOnce.Do(func() {
		d := c.r.index[c.idx]
		end := d.End
		if len(d.ExampleOffs) > 0 {
			end = d.ExampleOffs[0]
		}
		var rec dbRecord
		if err := c.r.section(d.Off, end).Decode(&rec); err != nil {
			c.dbErr = fmt.Errorf("corpus: decode database %q: %w", d.Name, err)
			return
		}
		c.db, c.dbErr = fromRecord(rec)
	})
	return c.dbErr
}

// Name implements catalog.Catalog.
func (c *DBCatalog) Name() string { return c.r.index[c.idx].Name }

// DB implements catalog.Catalog. Catalogs are handed out by
// Reader.Catalog, which fails on decode errors, so DB never returns
// nil on a loaded catalog.
func (c *DBCatalog) DB() *sqldb.DB {
	if err := c.load(); err != nil {
		panic(err)
	}
	return c.db
}

// Stats implements catalog.Catalog, re-running ANALYZE over the
// reloaded columns. The columns round-trip bitwise, so these
// statistics equal the ones the in-memory backend computed at
// generation time.
func (c *DBCatalog) Stats() *stats.DBStats {
	c.stOnce.Do(func() { c.st = stats.Analyze(c.DB()) })
	return c.st
}

// Examples returns this database's workload source.
func (c *DBCatalog) Examples() *ExampleSet {
	return &ExampleSet{r: c.r, d: &c.r.index[c.idx]}
}

// ExampleSet is one database's pre-labeled workload, streamed from
// disk. It implements workload.Source; Example is safe for any number
// of concurrent callers (reads go through ReadAt with no shared
// cursor) and always decodes the same bits for the same index.
type ExampleSet struct {
	r *Reader
	d *dbIndex
}

var _ workload.Source = (*ExampleSet)(nil)

// Len implements workload.Source.
func (s *ExampleSet) Len() int { return len(s.d.ExampleOffs) }

// Example implements workload.Source, decoding example i from its
// recorded byte range.
func (s *ExampleSet) Example(i int) (*workload.LabeledQuery, error) {
	if i < 0 || i >= len(s.d.ExampleOffs) {
		return nil, fmt.Errorf("corpus: example %d outside [0, %d) of %q", i, len(s.d.ExampleOffs), s.d.Name)
	}
	off := s.d.ExampleOffs[i]
	end := s.d.End
	if i+1 < len(s.d.ExampleOffs) {
		end = s.d.ExampleOffs[i+1]
	}
	var lq workload.LabeledQuery
	if err := s.r.section(off, end).Decode(&lq); err != nil {
		return nil, fmt.Errorf("corpus: decode example %d of %q: %w", i, s.d.Name, err)
	}
	return &lq, nil
}
