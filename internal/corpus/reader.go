package corpus

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync"

	"mtmlf/internal/catalog"
	"mtmlf/internal/ckptio"
	"mtmlf/internal/nn"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/stats"
	"mtmlf/internal/workload"
)

// Reader is seekable read access to a corpus file. Opening validates
// the header, trailer, and the whole index (see validateIndex), so a
// structurally corrupt file fails at Open with a *CorruptError; table
// data and examples are decoded on demand. All methods are safe for
// concurrent use — example reads go through ReadAt, so any number of
// training workers can stream from one Reader.
type Reader struct {
	ra      io.ReaderAt
	meta    Meta
	version int
	index   []dbIndex
	cats    []*DBCatalog

	closer io.Closer // set when Open owns the file
}

// Open opens a corpus file for reading.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewReader opens a corpus from any io.ReaderAt of known size (an
// os.File, a bytes.Reader, an mmap).
func NewReader(ra io.ReaderAt, size int64) (*Reader, error) {
	if size < trailerSize {
		return nil, corruptf("file too small (%d bytes)", size)
	}
	// Trailer. The last 8 bytes name the trailer format: v3's 24-byte
	// checksummed trailer or the 16-byte legacy (v1/v2) one.
	var tmagic [8]byte
	if _, err := ra.ReadAt(tmagic[:], size-8); err != nil {
		return nil, fmt.Errorf("corpus: read trailer: %w", err)
	}
	var footerOff, dataEnd int64
	v3 := string(tmagic[:]) == trailerMagicV3
	if v3 {
		if size < trailerSizeV3 {
			return nil, corruptf("file too small for a v3 trailer (%d bytes)", size)
		}
		var trailer [trailerSizeV3]byte
		if _, err := ra.ReadAt(trailer[:], size-trailerSizeV3); err != nil {
			return nil, fmt.Errorf("corpus: read trailer: %w", err)
		}
		for _, b := range trailer[12:16] {
			if b != 0 {
				return nil, corruptf("reserved trailer bytes are not zero")
			}
		}
		footerOff = int64(binary.BigEndian.Uint64(trailer[:8]))
		dataEnd = size - trailerSizeV3
		if footerOff < 0 || footerOff >= dataEnd {
			return nil, corruptf("footer offset %d outside file of %d bytes", footerOff, size)
		}
		// Verify the footer checksum before trusting any offset in it.
		fb := make([]byte, dataEnd-footerOff)
		if _, err := ra.ReadAt(fb, footerOff); err != nil {
			return nil, corruptf("read footer: %v", err)
		}
		if want, got := binary.BigEndian.Uint32(trailer[8:12]), ckptio.Checksum(fb); want != got {
			return nil, corruptf("footer checksum mismatch: stored %08x, computed %08x", want, got)
		}
	} else {
		var trailer [trailerSize]byte
		if _, err := ra.ReadAt(trailer[:], size-trailerSize); err != nil {
			return nil, fmt.Errorf("corpus: read trailer: %w", err)
		}
		if string(trailer[8:]) != trailerMagic {
			return nil, corruptf("bad trailer magic %q (truncated or foreign file?)", trailer[8:])
		}
		footerOff = int64(binary.BigEndian.Uint64(trailer[:8]))
		dataEnd = size - trailerSize
		if footerOff < 0 || footerOff >= dataEnd {
			return nil, corruptf("footer offset %d outside file of %d bytes", footerOff, size)
		}
	}
	// Footer index (checksum already verified on v3 files).
	var ft footer
	dec := gob.NewDecoder(bufio.NewReader(io.NewSectionReader(ra, footerOff, dataEnd-footerOff)))
	if err := dec.Decode(&ft); err != nil {
		return nil, corruptf("decode footer: %v", err)
	}
	// Header: magic/version preamble + meta. On v3 files the header's
	// bytes are checksum-verified before being gob-decoded, so a flip
	// in (say) the version field reads as corruption, not as a foreign
	// or future file.
	if v3 {
		if ft.HeaderEnd <= 0 || ft.HeaderEnd > footerOff {
			return nil, corruptf("header end %d outside data region (0, %d]", ft.HeaderEnd, footerOff)
		}
		hb := make([]byte, ft.HeaderEnd)
		if _, err := ra.ReadAt(hb, 0); err != nil {
			return nil, corruptf("read header: %v", err)
		}
		if got := ckptio.Checksum(hb); got != ft.HeaderCRC {
			return nil, corruptf("header checksum mismatch: stored %08x, computed %08x", ft.HeaderCRC, got)
		}
	}
	hdr := gob.NewDecoder(bufio.NewReader(io.NewSectionReader(ra, 0, size)))
	version, err := nn.ReadHeader(hdr, Magic, Version)
	if err != nil {
		return nil, fmt.Errorf("corpus: not a corpus file: %w", err)
	}
	if v3 != (version >= 3) {
		return nil, corruptf("header version %d inconsistent with trailer format %q", version, tmagic)
	}
	var meta Meta
	if err := hdr.Decode(&meta); err != nil {
		return nil, fmt.Errorf("corpus: read meta: %w", err)
	}
	if err := validateIndex(ft.DBs, footerOff, version); err != nil {
		return nil, err
	}
	r := &Reader{ra: ra, meta: meta, version: version, index: ft.DBs, cats: make([]*DBCatalog, len(ft.DBs))}
	for i := range r.cats {
		r.cats[i] = &DBCatalog{r: r, idx: i}
	}
	return r, nil
}

// validateIndex checks every structural invariant of the footer index
// before any section is decoded: database ranges are in file order and
// inside the data region (before the footer), section order inside a
// database is schema < single-table < examples, and example offsets
// are strictly increasing inside [Off, End). A violated invariant
// means the file is corrupt (torn write, bit rot, hostile input); it
// fails here with a *CorruptError instead of panicking later when
// DBCatalog.DB or ExampleSet.Example slices a bogus byte range. On v3
// files every example must also carry a checksum.
func validateIndex(dbs []dbIndex, footerOff int64, version int) error {
	prevEnd := int64(0)
	for i := range dbs {
		d := &dbs[i]
		if d.Off <= 0 || d.End <= d.Off || d.End > footerOff {
			return corruptf("database %d (%q): range [%d, %d) outside data region (0, %d]",
				i, d.Name, d.Off, d.End, footerOff)
		}
		if d.Off < prevEnd {
			return corruptf("database %d (%q): offset %d overlaps previous database ending at %d",
				i, d.Name, d.Off, prevEnd)
		}
		prevEnd = d.End
		if d.SingleOff != 0 && (d.SingleOff <= d.Off || d.SingleOff >= d.singleEnd()) {
			return corruptf("database %d (%q): single-table offset %d outside (%d, %d)",
				i, d.Name, d.SingleOff, d.Off, d.singleEnd())
		}
		lo := d.Off
		if d.SingleOff > 0 {
			lo = d.SingleOff
		}
		for j, off := range d.ExampleOffs {
			if off <= lo || off >= d.End {
				return corruptf("database %d (%q): example %d offset %d outside (%d, %d)",
					i, d.Name, j, off, lo, d.End)
			}
			lo = off
		}
		if version >= 3 && len(d.ExampleCRCs) != len(d.ExampleOffs) {
			return corruptf("database %d (%q): %d example checksums for %d examples",
				i, d.Name, len(d.ExampleCRCs), len(d.ExampleOffs))
		}
	}
	return nil
}

// Close releases the underlying file when the reader owns one (Open).
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// Meta returns the corpus provenance record.
func (r *Reader) Meta() Meta { return r.meta }

// Version returns the file's format version (1, 2, or 3).
func (r *Reader) Version() int { return r.version }

// NumDBs returns the number of databases in the corpus.
func (r *Reader) NumDBs() int { return len(r.index) }

// Names returns the database names in file order.
func (r *Reader) Names() []string {
	out := make([]string, len(r.index))
	for i, d := range r.index {
		out[i] = d.Name
	}
	return out
}

// Catalog returns the i-th database as a catalog.Catalog. The schema
// and columnar data are decoded on first use and cached; statistics
// are computed on first use.
func (r *Reader) Catalog(i int) (*DBCatalog, error) {
	if i < 0 || i >= len(r.index) {
		return nil, fmt.Errorf("corpus: database %d outside [0, %d)", i, len(r.index))
	}
	c := r.cats[i]
	if err := c.load(); err != nil {
		return nil, err
	}
	return c, nil
}

// CatalogByName returns the named database's catalog.
func (r *Reader) CatalogByName(name string) (*DBCatalog, error) {
	for i, d := range r.index {
		if d.Name == name {
			return r.Catalog(i)
		}
	}
	return nil, fmt.Errorf("corpus: no database %q (have %v)", name, r.Names())
}

// Examples returns the i-th database's labeled workload as a
// streaming workload.Source: each access decodes one example straight
// from disk, so epochs never materialize the corpus.
func (r *Reader) Examples(i int) (*ExampleSet, error) {
	if i < 0 || i >= len(r.index) {
		return nil, fmt.Errorf("corpus: database %d outside [0, %d)", i, len(r.index))
	}
	return &ExampleSet{r: r, d: &r.index[i]}, nil
}

// section returns a decoder over the byte range [off, end).
func (r *Reader) section(off, end int64) *gob.Decoder {
	return gob.NewDecoder(bufio.NewReader(io.NewSectionReader(r.ra, off, end-off)))
}

// verifiedSection returns a decoder over [off, end) after checking the
// section's CRC32C (v3 files; earlier versions carry no checksums and
// decode directly). This is the lazy half of the integrity contract:
// the index is verified at Open, each data section on first decode.
func (r *Reader) verifiedSection(off, end int64, want uint32, what string) (*gob.Decoder, error) {
	if r.version < 3 {
		return r.section(off, end), nil
	}
	buf := make([]byte, end-off)
	if _, err := r.ra.ReadAt(buf, off); err != nil {
		return nil, corruptf("read %s: %v", what, err)
	}
	if got := ckptio.Checksum(buf); got != want {
		return nil, corruptf("%s checksum mismatch: stored %08x, computed %08x", what, want, got)
	}
	return gob.NewDecoder(bytes.NewReader(buf)), nil
}

// DBCatalog is one corpus database behind the catalog.Catalog
// interface: the on-disk backend's answer to catalog.Memory.
type DBCatalog struct {
	r   *Reader
	idx int

	dbOnce sync.Once
	db     *sqldb.DB
	dbErr  error

	stOnce sync.Once
	st     *stats.DBStats
}

var _ catalog.Catalog = (*DBCatalog)(nil)

// load decodes and caches the schema + columnar data.
func (c *DBCatalog) load() error {
	c.dbOnce.Do(func() {
		d := c.r.index[c.idx]
		dec, err := c.r.verifiedSection(d.Off, d.schemaEnd(), d.SchemaCRC, fmt.Sprintf("schema of %q", d.Name))
		if err != nil {
			c.dbErr = err
			return
		}
		var rec dbRecord
		if err := dec.Decode(&rec); err != nil {
			c.dbErr = corruptf("decode database %q: %v", d.Name, err)
			return
		}
		c.db, c.dbErr = fromRecord(rec)
	})
	return c.dbErr
}

// Name implements catalog.Catalog.
func (c *DBCatalog) Name() string { return c.r.index[c.idx].Name }

// DB implements catalog.Catalog. Catalogs are handed out by
// Reader.Catalog, which fails on decode errors, so DB never returns
// nil on a loaded catalog; and NewReader validates every byte range
// in the index up front, so a corrupt file fails at Open rather than
// reaching this panic.
func (c *DBCatalog) DB() *sqldb.DB {
	if err := c.load(); err != nil {
		panic(err)
	}
	return c.db
}

// Stats implements catalog.Catalog, re-running ANALYZE over the
// reloaded columns. The columns round-trip bitwise, so these
// statistics equal the ones the in-memory backend computed at
// generation time.
func (c *DBCatalog) Stats() *stats.DBStats {
	c.stOnce.Do(func() { c.st = stats.Analyze(c.DB()) })
	return c.st
}

// Examples returns this database's workload source.
func (c *DBCatalog) Examples() *ExampleSet {
	return &ExampleSet{r: c.r, d: &c.r.index[c.idx]}
}

// SingleTable returns this database's cached encoder pre-training
// workloads (the v2 single-table section). ok is false when the file
// predates v2 or was written without the section — consumers then
// fall back to generating the data live (featurize.PretrainAll).
func (c *DBCatalog) SingleTable() (data []workload.TableWorkload, ok bool, err error) {
	d := &c.r.index[c.idx]
	if d.SingleOff == 0 {
		return nil, false, nil
	}
	dec, err := c.r.verifiedSection(d.SingleOff, d.singleEnd(), d.SingleCRC, fmt.Sprintf("single-table section of %q", d.Name))
	if err != nil {
		return nil, false, err
	}
	if err := dec.Decode(&data); err != nil {
		return nil, false, corruptf("decode single-table section of %q: %v", d.Name, err)
	}
	return data, true, nil
}

// ExampleSet is one database's pre-labeled workload, streamed from
// disk. It implements workload.Source; Example is safe for any number
// of concurrent callers (reads go through ReadAt with no shared
// cursor) and always decodes the same bits for the same index.
type ExampleSet struct {
	r *Reader
	d *dbIndex
}

var _ workload.Source = (*ExampleSet)(nil)

// Len implements workload.Source.
func (s *ExampleSet) Len() int { return len(s.d.ExampleOffs) }

// Example implements workload.Source, decoding example i from its
// recorded byte range.
func (s *ExampleSet) Example(i int) (*workload.LabeledQuery, error) {
	if i < 0 || i >= len(s.d.ExampleOffs) {
		return nil, fmt.Errorf("corpus: example %d outside [0, %d) of %q", i, len(s.d.ExampleOffs), s.d.Name)
	}
	off := s.d.ExampleOffs[i]
	end := s.d.End
	if i+1 < len(s.d.ExampleOffs) {
		end = s.d.ExampleOffs[i+1]
	}
	var crc uint32
	if i < len(s.d.ExampleCRCs) {
		crc = s.d.ExampleCRCs[i]
	}
	dec, err := s.r.verifiedSection(off, end, crc, fmt.Sprintf("example %d of %q", i, s.d.Name))
	if err != nil {
		return nil, err
	}
	var lq workload.LabeledQuery
	if err := dec.Decode(&lq); err != nil {
		return nil, corruptf("decode example %d of %q: %v", i, s.d.Name, err)
	}
	return &lq, nil
}
