package corpus

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"mtmlf/internal/ckptio"
	"mtmlf/internal/nn"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/workload"
)

// countWriter counts bytes written so the writer can record section
// offsets without seeking (the format is append-only). When crc is
// non-nil every byte also feeds the running section checksum (v3).
type countWriter struct {
	w   io.Writer
	n   int64
	crc ckptio.Hash32
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	if c.crc != nil && n > 0 {
		c.crc.Write(p[:n])
	}
	return n, err
}

// Writer streams a corpus to an io.Writer: header, then for each
// database a schema section followed by any number of example
// sections, then the index footer and trailer on Close. Appending is
// sequential (one goroutine); generation can still be parallel —
// produce shards concurrently, append them in order.
type Writer struct {
	cw      *countWriter
	flush   *bufio.Writer
	dbs     []dbIndex
	version int
	open    bool
	closed  bool

	// headerEnd/headerCRC delimit and checksum the header stream (v3).
	headerEnd int64
	headerCRC uint32
}

// resetCRC starts a new section checksum (no-op below v3).
func (w *Writer) resetCRC() {
	if w.cw.crc != nil {
		w.cw.crc.Reset()
	}
}

// sumCRC finishes the current section checksum (0 below v3).
func (w *Writer) sumCRC() uint32 {
	if w.cw.crc == nil {
		return 0
	}
	return w.cw.crc.Sum32()
}

// NewWriter writes the header and returns a corpus writer for the
// current format version. The caller owns the underlying writer
// (Close does not close it).
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	return NewWriterVersion(w, meta, Version)
}

// NewWriterVersion writes a corpus at an explicit format version in
// [1, Version] — the escape hatch for producing files older readers
// (and the backward-compatibility tests) can consume. A v1 writer
// rejects WriteSingleTable, since v1 has no such section.
func NewWriterVersion(w io.Writer, meta Meta, version int) (*Writer, error) {
	if version < 1 || version > Version {
		return nil, fmt.Errorf("corpus: cannot write version %d (supported 1..%d)", version, Version)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &countWriter{w: bw}
	if version >= 3 {
		cw.crc = ckptio.NewChecksum()
	}
	enc := gob.NewEncoder(cw)
	if err := nn.WriteHeader(enc, Magic, version); err != nil {
		return nil, fmt.Errorf("corpus: write header: %w", err)
	}
	if err := enc.Encode(meta); err != nil {
		return nil, fmt.Errorf("corpus: write meta: %w", err)
	}
	out := &Writer{cw: cw, flush: bw, version: version}
	out.headerEnd = cw.n
	out.headerCRC = out.sumCRC()
	return out, nil
}

// BeginDB starts a new database section, writing its schema and
// columnar data. Examples appended afterwards belong to it.
func (w *Writer) BeginDB(db *sqldb.DB) error {
	if w.closed {
		return fmt.Errorf("corpus: writer closed")
	}
	w.endDB()
	w.dbs = append(w.dbs, dbIndex{Name: db.Name, Off: w.cw.n})
	w.open = true
	w.resetCRC()
	if err := encodeSection(w.cw, toRecord(db)); err != nil {
		return fmt.Errorf("corpus: write database %q: %w", db.Name, err)
	}
	w.dbs[len(w.dbs)-1].SchemaCRC = w.sumCRC()
	return nil
}

// WriteSingleTable writes the current database's single-table
// pre-training section (v2): the per-table encoder workloads that let
// mtmlf-train -corpus skip the live (F) pre-training pass. It must be
// called after BeginDB and before the database's first AppendExample,
// at most once per database.
func (w *Writer) WriteSingleTable(data []workload.TableWorkload) error {
	if w.closed {
		return fmt.Errorf("corpus: writer closed")
	}
	if !w.open {
		return fmt.Errorf("corpus: WriteSingleTable before BeginDB")
	}
	if w.version < 2 {
		return fmt.Errorf("corpus: version %d has no single-table section (need v2)", w.version)
	}
	d := &w.dbs[len(w.dbs)-1]
	if len(d.ExampleOffs) > 0 {
		return fmt.Errorf("corpus: WriteSingleTable after AppendExample for %q", d.Name)
	}
	if d.SingleOff > 0 {
		return fmt.Errorf("corpus: duplicate single-table section for %q", d.Name)
	}
	d.SingleOff = w.cw.n
	w.resetCRC()
	if err := encodeSection(w.cw, data); err != nil {
		return fmt.Errorf("corpus: write single-table section of %q: %w", d.Name, err)
	}
	d.SingleCRC = w.sumCRC()
	return nil
}

// AppendExample appends one labeled example to the current database.
func (w *Writer) AppendExample(lq *workload.LabeledQuery) error {
	if w.closed {
		return fmt.Errorf("corpus: writer closed")
	}
	if !w.open {
		return fmt.Errorf("corpus: AppendExample before BeginDB")
	}
	d := &w.dbs[len(w.dbs)-1]
	d.ExampleOffs = append(d.ExampleOffs, w.cw.n)
	w.resetCRC()
	if err := encodeSection(w.cw, lq); err != nil {
		return fmt.Errorf("corpus: write example %d of %q: %w", len(d.ExampleOffs)-1, d.Name, err)
	}
	if w.version >= 3 {
		d.ExampleCRCs = append(d.ExampleCRCs, w.sumCRC())
	}
	return nil
}

// endDB seals the in-progress database index entry.
func (w *Writer) endDB() {
	if w.open {
		w.dbs[len(w.dbs)-1].End = w.cw.n
		w.open = false
	}
}

// Close writes the footer index and trailer and flushes. It does not
// close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.endDB()
	footerOff := w.cw.n
	w.resetCRC()
	if err := encodeSection(w.cw, footer{DBs: w.dbs, HeaderEnd: w.headerEnd, HeaderCRC: w.headerCRC}); err != nil {
		return fmt.Errorf("corpus: write footer: %w", err)
	}
	footerCRC := w.sumCRC()
	if w.version >= 3 {
		var trailer [trailerSizeV3]byte
		binary.BigEndian.PutUint64(trailer[:8], uint64(footerOff))
		binary.BigEndian.PutUint32(trailer[8:12], footerCRC)
		copy(trailer[16:], trailerMagicV3)
		if _, err := w.cw.Write(trailer[:]); err != nil {
			return fmt.Errorf("corpus: write trailer: %w", err)
		}
	} else {
		var trailer [trailerSize]byte
		binary.BigEndian.PutUint64(trailer[:8], uint64(footerOff))
		copy(trailer[8:], trailerMagic)
		if _, err := w.cw.Write(trailer[:]); err != nil {
			return fmt.Errorf("corpus: write trailer: %w", err)
		}
	}
	return w.flush.Flush()
}

// Database pairs one database with its labeled workload (and,
// optionally, its v2 single-table pre-training section), for the
// convenience writer.
type Database struct {
	DB       *sqldb.DB
	Examples []*workload.LabeledQuery
	// SingleTable, when non-nil, is written as the database's v2
	// single-table section.
	SingleTable []workload.TableWorkload
}

// WriteFile writes a whole corpus to path in one call. The write is
// atomic (temp file + fsync + rename): a crash mid-write leaves the
// previous corpus, or nothing — never a torn file.
func WriteFile(path string, meta Meta, dbs []*Database) error {
	return ckptio.WriteFileAtomic(path, func(f io.Writer) error {
		w, err := NewWriter(f, meta)
		if err != nil {
			return err
		}
		for _, d := range dbs {
			if err := w.BeginDB(d.DB); err != nil {
				return err
			}
			if d.SingleTable != nil {
				if err := w.WriteSingleTable(d.SingleTable); err != nil {
					return err
				}
			}
			for _, lq := range d.Examples {
				if err := w.AppendExample(lq); err != nil {
					return err
				}
			}
		}
		return w.Close()
	})
}
