// Package cost implements a PostgreSQL-style operator cost model and
// the simulated-execution-time oracle used by Tables 2 and 3. Since
// the real PostgreSQL testbed is unavailable, "execution time" for a
// join order is the standard C_out proxy from the join-ordering
// literature (Leis et al., "How Good Are Query Optimizers, Really?"):
// the sum of all intermediate result sizes plus scan costs, computed
// over exact cardinalities by actually executing the joins in
// internal/sqldb. This preserves exactly what Tables 2–3 measure: how
// much worse a chosen join order is than the optimal one.
package cost

import (
	"math"

	"mtmlf/internal/plan"
	"mtmlf/internal/sqldb"
)

// Model holds the operator cost coefficients, loosely mirroring
// PostgreSQL's seq_page_cost / random_page_cost / cpu_tuple_cost
// family.
type Model struct {
	CPUTuple    float64 // per input tuple processed
	HashBuild   float64 // per build-side tuple of a hash join
	RandomPage  float64 // per index probe
	SortFactor  float64 // merge join sort multiplier (n log n)
	NestedInner float64 // nested-loop per (outer x inner) pair
	OutputTuple float64 // per output tuple materialized
}

// Default returns coefficients that reproduce the usual operator
// trade-offs: index scans win on selective predicates, hash joins win
// on large equijoins, nested loops win with a tiny outer side.
func Default() *Model {
	return &Model{
		CPUTuple:    1.0,
		HashBuild:   1.5,
		RandomPage:  4.0,
		SortFactor:  0.2,
		NestedInner: 0.01,
		OutputTuple: 1.0,
	}
}

// ScanCost prices scanning a table of tableRows producing outRows.
func (m *Model) ScanCost(op plan.ScanOp, tableRows, outRows float64) float64 {
	switch op {
	case plan.IndexScan:
		return m.RandomPage*outRows + math.Log2(tableRows+2)
	default:
		return m.CPUTuple * tableRows
	}
}

// JoinCost prices joining inputs of the given sizes producing outRows.
func (m *Model) JoinCost(op plan.JoinOp, leftRows, rightRows, outRows float64) float64 {
	switch op {
	case plan.MergeJoin:
		sort := func(n float64) float64 { return m.SortFactor * n * math.Log2(n+2) }
		return sort(leftRows) + sort(rightRows) + m.CPUTuple*(leftRows+rightRows) + m.OutputTuple*outRows
	case plan.NestLoopJoin:
		return m.CPUTuple*leftRows + m.NestedInner*leftRows*rightRows + m.OutputTuple*outRows
	default: // HashJoin
		build, probe := leftRows, rightRows
		if probe < build {
			build, probe = probe, build
		}
		return m.HashBuild*build + m.CPUTuple*probe + m.OutputTuple*outRows
	}
}

// ChooseScanOp picks the cheaper scan operator for a predicate with
// the given filtered fraction, mimicking the optimizer heuristic the
// paper cites as transferable meta knowledge ("index scan for
// high-selectivity predicates, sequential scan for low-selectivity").
func (m *Model) ChooseScanOp(tableRows, outRows float64) plan.ScanOp {
	if tableRows <= 0 {
		return plan.SeqScan
	}
	if m.ScanCost(plan.IndexScan, tableRows, outRows) < m.ScanCost(plan.SeqScan, tableRows, outRows) {
		return plan.IndexScan
	}
	return plan.SeqScan
}

// ChooseJoinOp picks the cheapest join operator for the given input
// and output sizes.
func (m *Model) ChooseJoinOp(leftRows, rightRows, outRows float64) plan.JoinOp {
	best := plan.HashJoin
	bestC := m.JoinCost(plan.HashJoin, leftRows, rightRows, outRows)
	for _, op := range []plan.JoinOp{plan.MergeJoin, plan.NestLoopJoin} {
		if c := m.JoinCost(op, leftRows, rightRows, outRows); c < bestC {
			best, bestC = op, c
		}
	}
	return best
}

// CardFunc supplies the cardinality of the sub-plan rooted at a set of
// tables. Implementations: exact execution (sqldb.Executor) or the
// stats estimator.
type CardFunc func(tables []string) float64

// PlanCost prices a whole plan tree: per-node operator costs over the
// cardinalities returned by card. It returns the total and the
// per-node output cardinality and cumulative cost, indexed in
// post-order (matching Node.Nodes) — exactly the labels the paper's
// modified CardEst/CostEst tasks need ("estimate the cardinality and
// cost of the sub-plan rooted at each node of P").
func (m *Model) PlanCost(root *plan.Node, tableRows func(string) float64, card CardFunc) (total float64, nodeCards, nodeCosts []float64) {
	type res struct {
		tables []string
		card   float64
		cost   float64
	}
	memo := map[*plan.Node]res{}
	var rec func(n *plan.Node) res
	rec = func(n *plan.Node) res {
		if n.IsLeaf() {
			out := card([]string{n.Table})
			r := res{
				tables: []string{n.Table},
				card:   out,
				cost:   m.ScanCost(n.Scan, tableRows(n.Table), out),
			}
			memo[n] = r
			return r
		}
		l := rec(n.Left)
		r := rec(n.Right)
		tabs := append(append([]string{}, l.tables...), r.tables...)
		out := card(tabs)
		c := l.cost + r.cost + m.JoinCost(n.Join, l.card, r.card, out)
		rr := res{tables: tabs, card: out, cost: c}
		memo[n] = rr
		return rr
	}
	top := rec(root)
	for _, n := range root.Nodes() {
		nodeCards = append(nodeCards, memo[n].card)
		nodeCosts = append(nodeCosts, memo[n].cost)
	}
	return top.cost, nodeCards, nodeCosts
}

// ---------------------------------------------------------------------------
// Simulated execution time (the Table 2 / Table 3 oracle)
// ---------------------------------------------------------------------------

// SimulatedTimeOrder "executes" a left-deep join order against the
// engine and returns its C_out time: the sum of every intermediate
// join result size (the standard convention of Leis et al. — scan
// costs are identical under every order and are excluded so the
// metric isolates what the join order controls). Lower is better; the
// optimal join order minimizes it by construction.
func SimulatedTimeOrder(ex *sqldb.Executor, order []string) float64 {
	cards := ex.PrefixCards(order)
	var t float64
	for i := 1; i < len(cards); i++ {
		t += float64(cards[i])
	}
	return t
}

// SimulatedTimePlan "executes" an arbitrary (possibly bushy) plan tree
// and returns its C_out time: every join node contributes its exact
// output size.
func SimulatedTimePlan(ex *sqldb.Executor, root *plan.Node) float64 {
	var t float64
	for _, n := range root.Nodes() {
		if n.IsLeaf() {
			continue
		}
		t += float64(ex.CardOf(n.Tables()))
	}
	return t
}
