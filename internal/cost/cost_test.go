package cost

import (
	"math/rand"
	"testing"

	"mtmlf/internal/plan"
	"mtmlf/internal/sqldb"
)

func TestScanCostTradeoff(t *testing.T) {
	m := Default()
	// Selective predicate: index scan should win.
	if m.ChooseScanOp(100000, 10) != plan.IndexScan {
		t.Fatal("selective predicate should pick index scan")
	}
	// Unselective predicate: sequential scan should win.
	if m.ChooseScanOp(100000, 90000) != plan.SeqScan {
		t.Fatal("unselective predicate should pick seq scan")
	}
}

func TestJoinCostTradeoffs(t *testing.T) {
	m := Default()
	// Tiny outer with huge inner: nested loop beats hash (no build).
	if op := m.ChooseJoinOp(2, 1000000, 2); op != plan.NestLoopJoin {
		t.Fatalf("tiny-outer join picked %v", op)
	}
	// Two large inputs: hash join should win over nested loop.
	if op := m.ChooseJoinOp(50000, 60000, 50000); op == plan.NestLoopJoin {
		t.Fatal("large join must not pick nested loop")
	}
}

func TestJoinCostSymmetryOfHash(t *testing.T) {
	m := Default()
	a := m.JoinCost(plan.HashJoin, 100, 10000, 50)
	b := m.JoinCost(plan.HashJoin, 10000, 100, 50)
	if a != b {
		t.Fatal("hash join cost must build on the smaller side regardless of argument order")
	}
}

func TestJoinCostsPositive(t *testing.T) {
	m := Default()
	for _, op := range []plan.JoinOp{plan.HashJoin, plan.MergeJoin, plan.NestLoopJoin} {
		if c := m.JoinCost(op, 10, 10, 5); c <= 0 {
			t.Fatalf("%v cost %g", op, c)
		}
	}
}

// starDB builds the same 3-table star schema used in the sqldb tests.
func starDB(rng *rand.Rand) (*sqldb.DB, *sqldb.Query) {
	nA, nB, nF := 20, 15, 100
	aID := make([]int64, nA)
	for i := range aID {
		aID[i] = int64(i)
	}
	bID := make([]int64, nB)
	for i := range bID {
		bID[i] = int64(i)
	}
	fa := make([]int64, nF)
	fb := make([]int64, nF)
	fz := make([]int64, nF)
	for i := 0; i < nF; i++ {
		fa[i] = int64(rng.Intn(nA))
		fb[i] = int64(rng.Intn(nB))
		fz[i] = int64(rng.Intn(8))
	}
	db := sqldb.NewDB("star")
	db.MustAddTable(sqldb.MustNewTable("a", sqldb.IntColumn("id", aID)))
	db.MustAddTable(sqldb.MustNewTable("b", sqldb.IntColumn("id", bID)))
	db.MustAddTable(sqldb.MustNewTable("f", sqldb.IntColumn("a_id", fa), sqldb.IntColumn("b_id", fb), sqldb.IntColumn("z", fz)))
	db.MustAddEdge(sqldb.JoinEdge{T1: "a", C1: "id", T2: "f", C2: "a_id"})
	db.MustAddEdge(sqldb.JoinEdge{T1: "b", C1: "id", T2: "f", C2: "b_id"})
	q := &sqldb.Query{
		Tables: []string{"a", "b", "f"},
		Joins: []sqldb.JoinEdge{
			{T1: "a", C1: "id", T2: "f", C2: "a_id"},
			{T1: "b", C1: "id", T2: "f", C2: "b_id"},
		},
		Filters: []sqldb.Filter{{Table: "f", Col: "z", Op: sqldb.OpLt, Val: sqldb.IntVal(4)}},
	}
	return db, q
}

func TestSimulatedTimeOrderMatchesPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db, q := starDB(rng)
	ex := sqldb.NewExecutor(db, q)
	order := []string{"f", "a", "b"}
	timeOrder := SimulatedTimeOrder(ex, order)
	tree := plan.LeftDeepFromOrder(order, plan.SeqScan, plan.HashJoin)
	timePlan := SimulatedTimePlan(ex, tree)
	if timeOrder != timePlan {
		t.Fatalf("order time %g != plan time %g for the same left-deep plan", timeOrder, timePlan)
	}
}

func TestSimulatedTimeOrderSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db, q := starDB(rng)
	ex := sqldb.NewExecutor(db, q)
	// Starting with the filtered fact table should not be worse than
	// starting with the cross-product-heavy dimension pair order.
	good := SimulatedTimeOrder(ex, []string{"f", "a", "b"})
	bad := SimulatedTimeOrder(ex, []string{"a", "b", "f"}) // a⋈b is a cross product
	if good > bad {
		t.Fatalf("C_out ordering insensitive: good=%g bad=%g", good, bad)
	}
}

func TestPlanCostPerNodeLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db, q := starDB(rng)
	ex := sqldb.NewExecutor(db, q)
	m := Default()
	tree := plan.LeftDeepFromOrder([]string{"f", "a", "b"}, plan.SeqScan, plan.HashJoin)
	card := func(tables []string) float64 { return float64(ex.CardOf(tables)) }
	rows := func(name string) float64 { return float64(db.Table(name).NumRows()) }
	total, cards, costs := m.PlanCost(tree, rows, card)
	nodes := tree.Nodes()
	if len(cards) != len(nodes) || len(costs) != len(nodes) {
		t.Fatal("per-node label lengths wrong")
	}
	// Root labels come last (post-order) and the root cost is the total.
	if costs[len(costs)-1] != total {
		t.Fatal("root cumulative cost must equal total")
	}
	if cards[len(cards)-1] != float64(ex.Cardinality()) {
		t.Fatal("root card must equal query card")
	}
	// Cumulative costs never decrease from child to parent.
	pos := map[*plan.Node]int{}
	for i, n := range nodes {
		pos[n] = i
	}
	for i, n := range nodes {
		if !n.IsLeaf() {
			if costs[i] < costs[pos[n.Left]] || costs[i] < costs[pos[n.Right]] {
				t.Fatal("parent cost below child cost")
			}
		}
	}
}

func TestChooseScanOpNoFilterEdge(t *testing.T) {
	m := Default()
	if m.ChooseScanOp(0, 0) != plan.SeqScan {
		t.Fatal("degenerate table should seq scan")
	}
}
