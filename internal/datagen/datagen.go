// Package datagen implements the paper's Section 6.2 data generation
// pipeline — the artificial databases used to evaluate cross-DB
// transferability — and a synthetic 21-table IMDB stand-in for the
// JOB experiments of Section 6.1 (the real IMDB dataset is not
// available offline; see DESIGN.md substitutions).
//
// The pipeline follows the paper's three steps:
//
//	S1: generate a valid join schema (6–11 tables, 2–3 fact tables;
//	    every dimension table PK–FK joins one or two fact tables).
//	S2: generate attribute columns with varied skew (Zipf), varied
//	    cross-column correlation, and varied domain sizes; optionally
//	    bootstrapped from an existing table.
//	S3: generate join keys, with FK values correlated with the
//	    table's attribute columns.
//
// Row counts are scaled down from the paper's 50K–10M so that exact
// labels (true cardinalities, optimal join orders) stay computable in
// CPU seconds; every knob is on Config.
package datagen

import (
	"fmt"
	"math/rand"

	"mtmlf/internal/parallel"
	"mtmlf/internal/sqldb"
)

// Config controls the Section 6.2 pipeline.
type Config struct {
	// MinTables and MaxTables bound the table count (paper: 6–11).
	MinTables, MaxTables int
	// MinFacts and MaxFacts bound the fact-table count (paper: 2–3).
	MinFacts, MaxFacts int
	// MinRows and MaxRows bound per-table row counts (paper: 50K–10M,
	// scaled down by default).
	MinRows, MaxRows int
	// MinAttrs and MaxAttrs bound attribute-column counts (paper: 2–20).
	MinAttrs, MaxAttrs int
	// MaxDomain bounds attribute domain sizes.
	MaxDomain int
	// ZipfMin and ZipfMax bound the skew exponent of generated columns
	// (s parameter of the Zipf distribution; > 1).
	ZipfMin, ZipfMax float64
	// CorrelatedFrac is the fraction of attribute columns generated as
	// noisy functions of the table's first attribute column.
	CorrelatedFrac float64
	// StringColFrac is the fraction of attribute columns generated as
	// strings (to exercise LIKE predicates).
	StringColFrac float64
	// WeightedFrac is the fraction of otherwise-independent int
	// columns drawn from a small weighted value list — a handful of
	// support values with random weights, the lumpy distributions the
	// bulk-load generators (random-data-load, crdbload) produce from
	// user-supplied weighted lists, rather than a smooth parametric
	// Zipf. 0 (the default) disables, leaving generation byte-
	// identical to the pre-knob pipeline.
	WeightedFrac float64
	// GroupCorrFrac is the fraction of correlated columns derived from
	// a shared hidden category column instead of the first attribute —
	// producing a correlated column *group* (all members move with one
	// latent variable, pairwise-correlated with each other but not
	// with attr1). 0 (the default) disables, leaving generation byte-
	// identical to the pre-knob pipeline.
	GroupCorrFrac float64
}

// DefaultConfig returns laptop-scale settings faithful to the paper's
// ranges in structure.
func DefaultConfig() Config {
	return Config{
		MinTables: 6, MaxTables: 11,
		MinFacts: 2, MaxFacts: 3,
		MinRows: 200, MaxRows: 1500,
		MinAttrs: 2, MaxAttrs: 6,
		MaxDomain: 50,
		ZipfMin:   1.1, ZipfMax: 2.0,
		CorrelatedFrac: 0.4,
		StringColFrac:  0.25,
	}
}

// vocabulary for string columns; LIKE patterns are derived from these.
var words = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
	"hotel", "india", "juliet", "kilo", "lima", "mike", "november",
	"oscar", "papa", "quebec", "romeo", "sierra", "tango", "uniform",
	"victor", "whiskey", "xray", "yankee", "zulu",
}

// GenerateDB runs the full S1→S2→S3 pipeline and returns one database.
func GenerateDB(rng *rand.Rand, name string, cfg Config) *sqldb.DB {
	db := sqldb.NewDB(name)

	// --- S1: join schema ---------------------------------------------------
	n := cfg.MinTables + rng.Intn(cfg.MaxTables-cfg.MinTables+1)
	nFacts := cfg.MinFacts + rng.Intn(cfg.MaxFacts-cfg.MinFacts+1)
	if nFacts >= n {
		nFacts = n - 1
	}
	names := make([]string, n)
	for i := range names {
		if i < nFacts {
			names[i] = fmt.Sprintf("fact%d", i+1)
		} else {
			names[i] = fmt.Sprintf("dim%d", i-nFacts+1)
		}
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = cfg.MinRows + rng.Intn(cfg.MaxRows-cfg.MinRows+1)
	}
	// refTargets[i] lists the fact tables table i holds FKs to.
	refTargets := make([][]int, n)
	// Fact 2..k reference fact 1 (the paper's first join relation is
	// T1.PK with T2.FK).
	for f := 1; f < nFacts; f++ {
		refTargets[f] = []int{0}
	}
	// Each dimension references one or two fact tables.
	for d := nFacts; d < n; d++ {
		first := rng.Intn(nFacts)
		refTargets[d] = []int{first}
		if nFacts > 1 && rng.Float64() < 0.4 {
			second := rng.Intn(nFacts)
			if second != first {
				refTargets[d] = append(refTargets[d], second)
			}
		}
	}

	// --- S2 + S3: per-table contents --------------------------------------
	for i := 0; i < n; i++ {
		cols := []*sqldb.Column{}
		r := rows[i]
		// Primary key (S3).
		pk := make([]int64, r)
		for j := range pk {
			pk[j] = int64(j)
		}
		cols = append(cols, sqldb.IntColumn("id", pk))

		// Attribute columns (S2).
		nAttrs := cfg.MinAttrs + rng.Intn(cfg.MaxAttrs-cfg.MinAttrs+1)
		attrCols := generateAttributes(rng, r, nAttrs, cfg)
		cols = append(cols, attrCols...)

		// Foreign keys (S3), correlated with the first attribute.
		var anchor []int64
		for _, c := range attrCols {
			if c.Kind == sqldb.KindInt {
				anchor = c.Ints
				break
			}
		}
		for _, target := range refTargets[i] {
			fk := generateCorrelatedFK(rng, r, rows[target], anchor)
			cols = append(cols, sqldb.IntColumn(fmt.Sprintf("fk_%s", names[target]), fk))
		}
		db.MustAddTable(sqldb.MustNewTable(names[i], cols...))
	}
	for i := 0; i < n; i++ {
		for _, target := range refTargets[i] {
			db.MustAddEdge(sqldb.JoinEdge{
				T1: names[target], C1: "id",
				T2: names[i], C2: fmt.Sprintf("fk_%s", names[target]),
			})
		}
	}
	db.FactTables = append(db.FactTables, names[:nFacts]...)
	return db
}

// generateAttributes produces the S2 attribute columns: a mix of
// skewed independent columns, columns correlated with the first one
// (or, behind GroupCorrFrac, with a shared hidden category), weighted-
// list columns (behind WeightedFrac), and string columns.
//
// All new-knob rng draws are short-circuited behind the knob being
// non-zero, so DefaultConfig consumes the exact rng stream it always
// did and every pre-existing seed reproduces its old database.
func generateAttributes(rng *rand.Rand, rows, count int, cfg Config) []*sqldb.Column {
	cols := make([]*sqldb.Column, 0, count)
	var base []int64
	// group is the lazily generated hidden category column that
	// GroupCorrFrac members derive from; never stored as a column
	// itself (the correlation is latent, as in real data).
	var group []int64
	for a := 0; a < count; a++ {
		name := fmt.Sprintf("attr%d", a+1)
		if a > 0 && rng.Float64() < cfg.StringColFrac {
			cols = append(cols, sqldb.StringColumn(name, generateStrings(rng, rows, cfg)))
			continue
		}
		domain := 2 + rng.Intn(cfg.MaxDomain-1)
		var vals []int64
		switch {
		case a > 0 && base != nil && rng.Float64() < cfg.CorrelatedFrac:
			anchor := base
			if cfg.GroupCorrFrac > 0 && rng.Float64() < cfg.GroupCorrFrac {
				if group == nil {
					group = zipfColumn(rng, rows, 2+rng.Intn(6), 1.2+rng.Float64())
				}
				anchor = group
			}
			vals = correlatedColumn(rng, anchor, domain)
		case cfg.WeightedFrac > 0 && rng.Float64() < cfg.WeightedFrac:
			vals = weightedColumn(rng, rows, domain)
		default:
			vals = zipfColumn(rng, rows, domain, cfg.ZipfMin+rng.Float64()*(cfg.ZipfMax-cfg.ZipfMin))
		}
		if base == nil {
			base = vals
		}
		cols = append(cols, sqldb.IntColumn(name, vals))
	}
	return cols
}

// weightedColumn draws rows values from a small support set with
// random weights — the weighted-list heuristic of the bulk-load
// generators. Weights are squared uniforms, so most of the mass
// typically lands on one or two values with a ragged tail, a shape a
// parametric Zipf never produces.
func weightedColumn(rng *rand.Rand, rows, domain int) []int64 {
	m := 2 + rng.Intn(6)
	if m > domain {
		m = domain
	}
	support := rng.Perm(domain)[:m]
	cum := make([]float64, m)
	var total float64
	for i := range cum {
		u := rng.Float64()
		total += u * u
		cum[i] = total
	}
	vals := make([]int64, rows)
	for i := range vals {
		x := rng.Float64() * total
		k := 0
		for k < m-1 && x > cum[k] {
			k++
		}
		vals[i] = int64(support[k])
	}
	return vals
}

// zipfColumn draws rows values from a Zipf(s) distribution over
// [0, domain), then shuffles value identities so the heavy value is
// not always 0.
func zipfColumn(rng *rand.Rand, rows, domain int, s float64) []int64 {
	z := rand.NewZipf(rng, s, 1, uint64(domain-1))
	perm := rng.Perm(domain)
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(perm[int(z.Uint64())])
	}
	return vals
}

// correlatedColumn derives a column from base with an affine map plus
// bounded noise, producing strong but imperfect correlation — the
// hazard that breaks the independence assumption.
func correlatedColumn(rng *rand.Rand, base []int64, domain int) []int64 {
	k := 1 + rng.Intn(3)
	b := rng.Intn(domain)
	noise := 1 + rng.Intn(3)
	vals := make([]int64, len(base))
	for i, x := range base {
		v := (int(x)*k + b + rng.Intn(noise)) % domain
		vals[i] = int64(v)
	}
	return vals
}

// generateStrings produces a skewed string column of "word-digit"
// values so LIKE patterns with common prefixes have skewed matches.
func generateStrings(rng *rand.Rand, rows int, cfg Config) []string {
	z := rand.NewZipf(rng, 1.3, 1, uint64(len(words)-1))
	vals := make([]string, rows)
	for i := range vals {
		w := words[int(z.Uint64())]
		vals[i] = fmt.Sprintf("%s_%d", w, rng.Intn(8))
	}
	return vals
}

// generateCorrelatedFK produces FK values into [0, pkDomain) that are
// correlated with the anchor attribute column (S3: "the join keys are
// correlated with the attribute columns"). Each FK column flips a
// coin for its skew direction, so different joins bias a traditional
// estimator in different directions — the property that makes join
// ordering (not just sizing) go wrong under independence.
func generateCorrelatedFK(rng *rand.Rand, rows, pkDomain int, anchor []int64) []int64 {
	fk := make([]int64, rows)
	z := rand.NewZipf(rng, 1.5, 1, uint64(pkDomain-1))
	reverse := rng.Float64() < 0.5
	for i := range fk {
		var v int
		if anchor != nil && rng.Float64() < 0.4 {
			// Correlated fraction: a deterministic stripe per attribute value
			// plus small jitter.
			stripe := (int(anchor[i]) * 131) % pkDomain
			v = (stripe + rng.Intn(1+pkDomain/20)) % pkDomain
		} else {
			// Skewed half: some PKs are much more referenced.
			v = int(z.Uint64())
		}
		if reverse {
			v = pkDomain - 1 - v
		}
		fk[i] = int64(v)
	}
	return fk
}

// BootstrapTable implements S2's second approach: resample rows and
// columns of an existing table to create a new table with the same
// domains but different skew/correlation structure.
func BootstrapTable(rng *rand.Rand, src *sqldb.Table, name string, rows int) *sqldb.Table {
	cols := make([]*sqldb.Column, 0, len(src.Columns))
	for _, c := range src.Columns {
		// Sample row indices with replacement, biased by a random Zipf
		// to change the distribution while keeping the domain.
		z := rand.NewZipf(rng, 1.1+rng.Float64(), 1, uint64(src.NumRows()-1))
		switch c.Kind {
		case sqldb.KindInt:
			vals := make([]int64, rows)
			for i := range vals {
				vals[i] = c.Ints[int(z.Uint64())]
			}
			cols = append(cols, sqldb.IntColumn(c.Name, vals))
		case sqldb.KindFloat:
			vals := make([]float64, rows)
			for i := range vals {
				vals[i] = c.Flts[int(z.Uint64())]
			}
			cols = append(cols, sqldb.FloatColumn(c.Name, vals))
		default:
			vals := make([]string, rows)
			for i := range vals {
				vals[i] = c.Strs[int(z.Uint64())]
			}
			cols = append(cols, sqldb.StringColumn(c.Name, vals))
		}
	}
	return sqldb.MustNewTable(name, cols...)
}

// GenerateFleet produces n databases with distinct seeds, the input of
// the paper's Section 6.3 experiment ({D1, ..., D11}). Databases are
// generated concurrently on the worker pool; each draws from its own
// seed-derived rng, so the fleet is identical at any parallelism.
func GenerateFleet(seed int64, n int, cfg Config) []*sqldb.DB {
	out := make([]*sqldb.DB, n)
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			out[i] = GenerateDB(rng, fmt.Sprintf("D%d", i+1), cfg)
		}
	})
	return out
}
