package datagen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
)

func TestGenerateDBStructure(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := GenerateDB(rng, "d", cfg)
		n := len(db.Tables)
		if n < cfg.MinTables || n > cfg.MaxTables {
			t.Fatalf("seed %d: %d tables outside [%d, %d]", seed, n, cfg.MinTables, cfg.MaxTables)
		}
		nf := len(db.FactTables)
		if nf < cfg.MinFacts || nf > cfg.MaxFacts {
			t.Fatalf("seed %d: %d fact tables", seed, nf)
		}
		for _, tab := range db.Tables {
			if tab.NumRows() < cfg.MinRows || tab.NumRows() > cfg.MaxRows {
				t.Fatalf("seed %d: table %s has %d rows", seed, tab.Name, tab.NumRows())
			}
			if tab.Column("id") == nil {
				t.Fatalf("seed %d: table %s missing PK", seed, tab.Name)
			}
		}
	}
}

func TestGenerateDBJoinGraphConnected(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := GenerateDB(rng, "d", cfg)
		q := &sqldb.Query{Tables: db.TableNames(), Joins: db.Edges}
		if !q.IsConnected() {
			t.Fatalf("seed %d: join graph disconnected", seed)
		}
	}
}

func TestGenerateDBEdgesArePKFK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := GenerateDB(rng, "d", DefaultConfig())
	for _, e := range db.Edges {
		// Left side must be a PK (id) and right side an FK referencing it.
		if e.C1 != "id" {
			t.Fatalf("edge %v left side not a PK", e)
		}
		fkCol := db.Table(e.T2).Column(e.C2)
		pkRows := int64(db.Table(e.T1).NumRows())
		for _, v := range fkCol.Ints {
			if v < 0 || v >= pkRows {
				t.Fatalf("edge %v: FK value %d outside PK domain [0,%d)", e, v, pkRows)
			}
		}
	}
}

func TestGenerateDBDimensionEdgesTargetFacts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := GenerateDB(rng, "d", DefaultConfig())
	facts := map[string]bool{}
	for _, f := range db.FactTables {
		facts[f] = true
	}
	for _, e := range db.Edges {
		if !facts[e.T1] {
			t.Fatalf("edge %v references non-fact PK side (paper S1: dimensions join facts)", e)
		}
	}
}

func TestZipfColumnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := zipfColumn(rng, 10000, 50, 1.8)
	counts := map[int64]int{}
	for _, v := range vals {
		if v < 0 || v >= 50 {
			t.Fatalf("value %d out of domain", v)
		}
		counts[v]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Strong skew: the heaviest value should dominate a uniform share.
	if max < 3*(10000/50) {
		t.Fatalf("zipf column not skewed: max count %d", max)
	}
}

func TestCorrelatedColumnTracksBase(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := zipfColumn(rng, 5000, 20, 1.5)
	derived := correlatedColumn(rng, base, 30)
	// Same base value should map to a small set of derived values.
	seen := map[int64]map[int64]bool{}
	for i, b := range base {
		if seen[b] == nil {
			seen[b] = map[int64]bool{}
		}
		seen[b][derived[i]] = true
	}
	for b, ds := range seen {
		if len(ds) > 4 {
			t.Fatalf("base value %d maps to %d derived values; correlation too weak", b, len(ds))
		}
	}
}

func TestBootstrapTablePreservesDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := sqldb.MustNewTable("src",
		sqldb.IntColumn("a", []int64{1, 2, 3, 4, 5}),
		sqldb.StringColumn("s", []string{"x", "y", "z", "x", "y"}),
	)
	boot := BootstrapTable(rng, src, "boot", 100)
	if boot.NumRows() != 100 {
		t.Fatal("bootstrap row count wrong")
	}
	domain := map[int64]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	for _, v := range boot.Column("a").Ints {
		if !domain[v] {
			t.Fatalf("bootstrap introduced out-of-domain value %d", v)
		}
	}
}

func TestGenerateFleetDistinct(t *testing.T) {
	fleet := GenerateFleet(1, 3, DefaultConfig())
	if len(fleet) != 3 {
		t.Fatal("fleet size wrong")
	}
	if fleet[0].Name == fleet[1].Name {
		t.Fatal("fleet DBs must have distinct names")
	}
	// Different seeds should produce structurally different DBs at
	// least sometimes; compare total row counts.
	total := func(db *sqldb.DB) int {
		s := 0
		for _, t := range db.Tables {
			s += t.NumRows()
		}
		return s
	}
	if total(fleet[0]) == total(fleet[1]) && len(fleet[0].Tables) == len(fleet[1].Tables) &&
		total(fleet[1]) == total(fleet[2]) && len(fleet[1].Tables) == len(fleet[2].Tables) {
		t.Fatal("fleet databases suspiciously identical")
	}
}

func TestSyntheticIMDBShape(t *testing.T) {
	db := SyntheticIMDB(1, 0.2)
	if got := len(db.Tables); got != 21 {
		t.Fatalf("synthetic IMDB has %d tables, want 21 (paper)", got)
	}
	for _, name := range []string{"title", "name", "cast_info", "movie_info", "movie_keyword", "company_name"} {
		if db.Table(name) == nil {
			t.Fatalf("missing IMDB table %q", name)
		}
	}
	q := &sqldb.Query{Tables: db.TableNames(), Joins: db.Edges}
	if !q.IsConnected() {
		t.Fatal("IMDB join graph disconnected")
	}
	// FK domains valid.
	for _, e := range db.Edges {
		pkRows := int64(db.Table(e.T1).NumRows())
		fkCol := db.Table(e.T2).Column(e.C2)
		for _, v := range fkCol.Ints {
			if v < 0 || v >= pkRows {
				t.Fatalf("edge %v FK out of domain", e)
			}
		}
	}
	// String columns exist for LIKE predicates.
	if db.Table("title").Column("title").Kind != sqldb.KindString {
		t.Fatal("title.title must be a string column")
	}
}

func TestSyntheticIMDBScales(t *testing.T) {
	small := SyntheticIMDB(1, 0.1)
	big := SyntheticIMDB(1, 0.5)
	if small.Table("cast_info").NumRows() >= big.Table("cast_info").NumRows() {
		t.Fatal("scale must grow row counts")
	}
}

func TestSyntheticIMDBDeterministic(t *testing.T) {
	a := SyntheticIMDB(42, 0.1)
	b := SyntheticIMDB(42, 0.1)
	ta, tb := a.Table("title"), b.Table("title")
	for i := 0; i < ta.NumRows(); i++ {
		if ta.Column("title").Strs[i] != tb.Column("title").Strs[i] {
			t.Fatal("same seed must reproduce identical data")
		}
	}
}

// TestGenerateFleetParallelismInvariant checks the concurrently
// generated fleet is identical at every worker-pool size: each DB
// draws from its own seed-derived rng, so scheduling cannot leak in.
func TestGenerateFleetParallelismInvariant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinTables, cfg.MaxTables = 4, 5
	cfg.MinRows, cfg.MaxRows = 50, 120
	prev := tensor.SetParallelism(1)
	serial := GenerateFleet(9, 3, cfg)
	tensor.SetParallelism(8)
	par := GenerateFleet(9, 3, cfg)
	tensor.SetParallelism(prev)
	for i := range serial {
		a, b := serial[i], par[i]
		if a.Name != b.Name || len(a.Tables) != len(b.Tables) {
			t.Fatalf("fleet DB %d differs structurally", i)
		}
		for ti, at := range a.Tables {
			bt := b.Tables[ti]
			if at.Name != bt.Name || at.NumRows() != bt.NumRows() {
				t.Fatalf("DB %d table %d differs", i, ti)
			}
			for ci, ac := range at.Columns {
				bc := bt.Columns[ci]
				for r := 0; r < at.NumRows(); r++ {
					switch ac.Kind {
					case sqldb.KindInt:
						if ac.Ints[r] != bc.Ints[r] {
							t.Fatalf("DB %d %s.%s row %d differs", i, at.Name, ac.Name, r)
						}
					case sqldb.KindString:
						if ac.Strs[r] != bc.Strs[r] {
							t.Fatalf("DB %d %s.%s row %d differs", i, at.Name, ac.Name, r)
						}
					}
				}
			}
		}
	}
}

// TestWeightedColumnProperties: the WeightedFrac knob produces
// in-domain values concentrated on a small support set.
func TestWeightedColumnProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vals := weightedColumn(rng, 2000, 40)
	seen := map[int64]int{}
	for _, v := range vals {
		if v < 0 || v >= 40 {
			t.Fatalf("value %d outside domain [0, 40)", v)
		}
		seen[v]++
	}
	if len(seen) > 7 {
		t.Fatalf("weighted column has %d distinct values, want a small support (<= 7)", len(seen))
	}
}

// TestS2KnobsDefaultsUnchanged: with the new knobs at their zero
// defaults, generation must consume the exact rng stream the
// pre-knob pipeline did, so every existing seed reproduces its old
// database. The golden fingerprint below was computed by running the
// same hash over GenerateDB(seed 12, DefaultConfig()) at the commit
// BEFORE the knobs existed; any accidental extra rng draw on the
// default path changes it.
func TestS2KnobsDefaultsUnchanged(t *testing.T) {
	if cfg := DefaultConfig(); cfg.WeightedFrac != 0 || cfg.GroupCorrFrac != 0 {
		t.Fatalf("default knobs must be zero, got %+v", cfg)
	}
	const golden = uint64(0xdad4bf7cab01e892)
	h := fnv.New64a()
	db := GenerateDB(rand.New(rand.NewSource(12)), "d", DefaultConfig())
	for _, tab := range db.Tables {
		fmt.Fprintf(h, "%s/%d", tab.Name, tab.NumRows())
		for _, c := range tab.Columns {
			fmt.Fprintf(h, "|%s:%v", c.Name, c.Kind)
			for i := 0; i < c.Len(); i++ {
				fmt.Fprintf(h, ",%v", c.Value(i))
			}
		}
	}
	for _, e := range db.Edges {
		fmt.Fprintf(h, ";%v", e)
	}
	if got := h.Sum64(); got != golden {
		t.Fatalf("default-config generation drifted from the pre-knob pipeline: fingerprint %#x, want %#x", got, golden)
	}
}

// TestS2KnobsDeterministicAndValid: with the knobs enabled the
// pipeline stays deterministic and structurally valid.
func TestS2KnobsDeterministicAndValid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WeightedFrac = 0.5
	cfg.GroupCorrFrac = 0.7
	a := GenerateDB(rand.New(rand.NewSource(3)), "d", cfg)
	b := GenerateDB(rand.New(rand.NewSource(3)), "d", cfg)
	if len(a.Tables) != len(b.Tables) {
		t.Fatal("knob-enabled generation not deterministic")
	}
	for ti, at := range a.Tables {
		bt := b.Tables[ti]
		for ci, ac := range at.Columns {
			bc := bt.Columns[ci]
			if ac.Len() != bc.Len() {
				t.Fatalf("%s.%s lengths differ", at.Name, ac.Name)
			}
			for r := 0; r < ac.Len(); r++ {
				if ac.Value(r) != bc.Value(r) {
					t.Fatalf("%s.%s row %d not deterministic", at.Name, ac.Name, r)
				}
			}
		}
	}
	q := &sqldb.Query{Tables: a.TableNames(), Joins: a.Edges}
	if !q.IsConnected() {
		t.Fatal("knob-enabled join graph disconnected")
	}
}
