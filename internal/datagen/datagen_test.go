package datagen

import (
	"math/rand"
	"testing"

	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
)

func TestGenerateDBStructure(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := GenerateDB(rng, "d", cfg)
		n := len(db.Tables)
		if n < cfg.MinTables || n > cfg.MaxTables {
			t.Fatalf("seed %d: %d tables outside [%d, %d]", seed, n, cfg.MinTables, cfg.MaxTables)
		}
		nf := len(db.FactTables)
		if nf < cfg.MinFacts || nf > cfg.MaxFacts {
			t.Fatalf("seed %d: %d fact tables", seed, nf)
		}
		for _, tab := range db.Tables {
			if tab.NumRows() < cfg.MinRows || tab.NumRows() > cfg.MaxRows {
				t.Fatalf("seed %d: table %s has %d rows", seed, tab.Name, tab.NumRows())
			}
			if tab.Column("id") == nil {
				t.Fatalf("seed %d: table %s missing PK", seed, tab.Name)
			}
		}
	}
}

func TestGenerateDBJoinGraphConnected(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := GenerateDB(rng, "d", cfg)
		q := &sqldb.Query{Tables: db.TableNames(), Joins: db.Edges}
		if !q.IsConnected() {
			t.Fatalf("seed %d: join graph disconnected", seed)
		}
	}
}

func TestGenerateDBEdgesArePKFK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := GenerateDB(rng, "d", DefaultConfig())
	for _, e := range db.Edges {
		// Left side must be a PK (id) and right side an FK referencing it.
		if e.C1 != "id" {
			t.Fatalf("edge %v left side not a PK", e)
		}
		fkCol := db.Table(e.T2).Column(e.C2)
		pkRows := int64(db.Table(e.T1).NumRows())
		for _, v := range fkCol.Ints {
			if v < 0 || v >= pkRows {
				t.Fatalf("edge %v: FK value %d outside PK domain [0,%d)", e, v, pkRows)
			}
		}
	}
}

func TestGenerateDBDimensionEdgesTargetFacts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := GenerateDB(rng, "d", DefaultConfig())
	facts := map[string]bool{}
	for _, f := range db.FactTables {
		facts[f] = true
	}
	for _, e := range db.Edges {
		if !facts[e.T1] {
			t.Fatalf("edge %v references non-fact PK side (paper S1: dimensions join facts)", e)
		}
	}
}

func TestZipfColumnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := zipfColumn(rng, 10000, 50, 1.8)
	counts := map[int64]int{}
	for _, v := range vals {
		if v < 0 || v >= 50 {
			t.Fatalf("value %d out of domain", v)
		}
		counts[v]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Strong skew: the heaviest value should dominate a uniform share.
	if max < 3*(10000/50) {
		t.Fatalf("zipf column not skewed: max count %d", max)
	}
}

func TestCorrelatedColumnTracksBase(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := zipfColumn(rng, 5000, 20, 1.5)
	derived := correlatedColumn(rng, base, 30)
	// Same base value should map to a small set of derived values.
	seen := map[int64]map[int64]bool{}
	for i, b := range base {
		if seen[b] == nil {
			seen[b] = map[int64]bool{}
		}
		seen[b][derived[i]] = true
	}
	for b, ds := range seen {
		if len(ds) > 4 {
			t.Fatalf("base value %d maps to %d derived values; correlation too weak", b, len(ds))
		}
	}
}

func TestBootstrapTablePreservesDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := sqldb.MustNewTable("src",
		sqldb.IntColumn("a", []int64{1, 2, 3, 4, 5}),
		sqldb.StringColumn("s", []string{"x", "y", "z", "x", "y"}),
	)
	boot := BootstrapTable(rng, src, "boot", 100)
	if boot.NumRows() != 100 {
		t.Fatal("bootstrap row count wrong")
	}
	domain := map[int64]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	for _, v := range boot.Column("a").Ints {
		if !domain[v] {
			t.Fatalf("bootstrap introduced out-of-domain value %d", v)
		}
	}
}

func TestGenerateFleetDistinct(t *testing.T) {
	fleet := GenerateFleet(1, 3, DefaultConfig())
	if len(fleet) != 3 {
		t.Fatal("fleet size wrong")
	}
	if fleet[0].Name == fleet[1].Name {
		t.Fatal("fleet DBs must have distinct names")
	}
	// Different seeds should produce structurally different DBs at
	// least sometimes; compare total row counts.
	total := func(db *sqldb.DB) int {
		s := 0
		for _, t := range db.Tables {
			s += t.NumRows()
		}
		return s
	}
	if total(fleet[0]) == total(fleet[1]) && len(fleet[0].Tables) == len(fleet[1].Tables) &&
		total(fleet[1]) == total(fleet[2]) && len(fleet[1].Tables) == len(fleet[2].Tables) {
		t.Fatal("fleet databases suspiciously identical")
	}
}

func TestSyntheticIMDBShape(t *testing.T) {
	db := SyntheticIMDB(1, 0.2)
	if got := len(db.Tables); got != 21 {
		t.Fatalf("synthetic IMDB has %d tables, want 21 (paper)", got)
	}
	for _, name := range []string{"title", "name", "cast_info", "movie_info", "movie_keyword", "company_name"} {
		if db.Table(name) == nil {
			t.Fatalf("missing IMDB table %q", name)
		}
	}
	q := &sqldb.Query{Tables: db.TableNames(), Joins: db.Edges}
	if !q.IsConnected() {
		t.Fatal("IMDB join graph disconnected")
	}
	// FK domains valid.
	for _, e := range db.Edges {
		pkRows := int64(db.Table(e.T1).NumRows())
		fkCol := db.Table(e.T2).Column(e.C2)
		for _, v := range fkCol.Ints {
			if v < 0 || v >= pkRows {
				t.Fatalf("edge %v FK out of domain", e)
			}
		}
	}
	// String columns exist for LIKE predicates.
	if db.Table("title").Column("title").Kind != sqldb.KindString {
		t.Fatal("title.title must be a string column")
	}
}

func TestSyntheticIMDBScales(t *testing.T) {
	small := SyntheticIMDB(1, 0.1)
	big := SyntheticIMDB(1, 0.5)
	if small.Table("cast_info").NumRows() >= big.Table("cast_info").NumRows() {
		t.Fatal("scale must grow row counts")
	}
}

func TestSyntheticIMDBDeterministic(t *testing.T) {
	a := SyntheticIMDB(42, 0.1)
	b := SyntheticIMDB(42, 0.1)
	ta, tb := a.Table("title"), b.Table("title")
	for i := 0; i < ta.NumRows(); i++ {
		if ta.Column("title").Strs[i] != tb.Column("title").Strs[i] {
			t.Fatal("same seed must reproduce identical data")
		}
	}
}

// TestGenerateFleetParallelismInvariant checks the concurrently
// generated fleet is identical at every worker-pool size: each DB
// draws from its own seed-derived rng, so scheduling cannot leak in.
func TestGenerateFleetParallelismInvariant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinTables, cfg.MaxTables = 4, 5
	cfg.MinRows, cfg.MaxRows = 50, 120
	prev := tensor.SetParallelism(1)
	serial := GenerateFleet(9, 3, cfg)
	tensor.SetParallelism(8)
	par := GenerateFleet(9, 3, cfg)
	tensor.SetParallelism(prev)
	for i := range serial {
		a, b := serial[i], par[i]
		if a.Name != b.Name || len(a.Tables) != len(b.Tables) {
			t.Fatalf("fleet DB %d differs structurally", i)
		}
		for ti, at := range a.Tables {
			bt := b.Tables[ti]
			if at.Name != bt.Name || at.NumRows() != bt.NumRows() {
				t.Fatalf("DB %d table %d differs", i, ti)
			}
			for ci, ac := range at.Columns {
				bc := bt.Columns[ci]
				for r := 0; r < at.NumRows(); r++ {
					switch ac.Kind {
					case sqldb.KindInt:
						if ac.Ints[r] != bc.Ints[r] {
							t.Fatalf("DB %d %s.%s row %d differs", i, at.Name, ac.Name, r)
						}
					case sqldb.KindString:
						if ac.Strs[r] != bc.Strs[r] {
							t.Fatalf("DB %d %s.%s row %d differs", i, at.Name, ac.Name, r)
						}
					}
				}
			}
		}
	}
}
