package datagen

import (
	"fmt"
	"math/rand"

	"mtmlf/internal/sqldb"
)

// SyntheticIMDB builds a 21-table database mirroring the IMDB schema
// used by the JOB benchmark (Leis et al.): the same table names, the
// same star-around-title/name join topology, Zipf-skewed and
// correlated attributes, and string columns for LIKE predicates. The
// scale parameter multiplies all row counts (scale 1 ≈ 3K-row title
// table, far below real IMDB, so exact labels remain computable).
func SyntheticIMDB(seed int64, scale float64) *sqldb.DB {
	rng := rand.New(rand.NewSource(seed))
	db := sqldb.NewDB("imdb")
	sz := func(base int) int {
		n := int(float64(base) * scale)
		if n < 20 {
			n = 20
		}
		return n
	}

	// Small "type" dimension tables.
	typeTables := []struct {
		name string
		vals []string
	}{
		{"kind_type", []string{"movie", "tv series", "video game", "episode", "video movie", "tv movie", "short"}},
		{"info_type", []string{"genres", "rating", "budget", "runtime", "country", "language", "votes", "gross"}},
		{"company_type", []string{"production companies", "distributors", "special effects", "misc"}},
		{"link_type", []string{"follows", "followed by", "remake of", "spin off", "version of"}},
		{"role_type", []string{"actor", "actress", "producer", "writer", "director", "editor", "composer"}},
		{"comp_cast_type", []string{"cast", "crew", "complete", "complete+verified"}},
	}
	for _, tt := range typeTables {
		ids := make([]int64, len(tt.vals))
		for i := range ids {
			ids[i] = int64(i)
		}
		db.MustAddTable(sqldb.MustNewTable(tt.name,
			sqldb.IntColumn("id", ids),
			sqldb.StringColumn("kind", tt.vals),
		))
	}

	// title: the central fact table. production_year and kind_id are
	// correlated with the row id: because bridge-table FKs are
	// Zipf-skewed toward low title ids, a filter on production_year
	// selects titles with systematically different join fan-out —
	// exactly the attribute/join-key correlation of real IMDB that
	// breaks the independence assumption (Leis et al.).
	nTitle := sz(3000)
	titleIDs := seqIDs(nTitle)
	prodYear := idCorrelated(rng, nTitle, 1880, 140, 8)
	kindIDs := idCorrelated(rng, nTitle, 0, len(typeTables[0].vals), 1)
	titles := movieTitles(rng, nTitle)
	db.MustAddTable(sqldb.MustNewTable("title",
		sqldb.IntColumn("id", titleIDs),
		sqldb.StringColumn("title", titles),
		sqldb.IntColumn("kind_id", kindIDs),
		sqldb.IntColumn("production_year", prodYear),
	))
	db.MustAddEdge(sqldb.JoinEdge{T1: "kind_type", C1: "id", T2: "title", C2: "kind_id"})

	// name: the people fact table.
	nName := sz(4000)
	db.MustAddTable(sqldb.MustNewTable("name",
		sqldb.IntColumn("id", seqIDs(nName)),
		sqldb.StringColumn("name", personNames(rng, nName)),
		sqldb.IntColumn("gender", zipfColumn(rng, nName, 3, 1.2)),
	))

	// company_name / keyword / char_name dimensions.
	nComp := sz(400)
	db.MustAddTable(sqldb.MustNewTable("company_name",
		sqldb.IntColumn("id", seqIDs(nComp)),
		sqldb.StringColumn("name", companyNames(rng, nComp)),
		sqldb.StringColumn("country_code", countryCodes(rng, nComp)),
	))
	nKw := sz(600)
	db.MustAddTable(sqldb.MustNewTable("keyword",
		sqldb.IntColumn("id", seqIDs(nKw)),
		sqldb.StringColumn("keyword", keywords(rng, nKw)),
	))
	nChar := sz(1500)
	db.MustAddTable(sqldb.MustNewTable("char_name",
		sqldb.IntColumn("id", seqIDs(nChar)),
		sqldb.StringColumn("name", personNames(rng, nChar)),
	))
	db.MustAddTable(sqldb.MustNewTable("aka_name",
		sqldb.IntColumn("id", seqIDs(sz(800))),
		sqldb.IntColumn("person_id", fkInto(rng, sz(800), nName, 1.3)),
		sqldb.StringColumn("name", personNames(rng, sz(800))),
	))
	db.MustAddEdge(sqldb.JoinEdge{T1: "name", C1: "id", T2: "aka_name", C2: "person_id"})
	db.MustAddTable(sqldb.MustNewTable("aka_title",
		sqldb.IntColumn("id", seqIDs(sz(500))),
		sqldb.IntColumn("movie_id", fkInto(rng, sz(500), nTitle, 1.3)),
		sqldb.StringColumn("title", movieTitles(rng, sz(500))),
	))
	db.MustAddEdge(sqldb.JoinEdge{T1: "title", C1: "id", T2: "aka_title", C2: "movie_id"})

	// Bridge/fact tables around title.
	addBridge := func(name string, rows int, cols ...*sqldb.Column) {
		base := []*sqldb.Column{sqldb.IntColumn("id", seqIDs(rows))}
		base = append(base, cols...)
		db.MustAddTable(sqldb.MustNewTable(name, base...))
	}

	nCI := sz(9000)
	ciMovie := fkInto(rng, nCI, nTitle, 1.6)
	ciPerson := fkInto(rng, nCI, nName, 1.5)
	addBridge("cast_info", nCI,
		sqldb.IntColumn("movie_id", ciMovie),
		sqldb.IntColumn("person_id", ciPerson),
		sqldb.IntColumn("person_role_id", fkInto(rng, nCI, nChar, 1.3)),
		sqldb.IntColumn("role_id", zipfColumn(rng, nCI, 7, 1.3)),
		// nr_order is derived from the movie FK, so filters on it are
		// correlated with which titles the row joins to.
		sqldb.IntColumn("nr_order", deriveFromFK(rng, ciMovie, 20, 3)),
	)
	db.MustAddEdge(sqldb.JoinEdge{T1: "title", C1: "id", T2: "cast_info", C2: "movie_id"})
	db.MustAddEdge(sqldb.JoinEdge{T1: "name", C1: "id", T2: "cast_info", C2: "person_id"})
	db.MustAddEdge(sqldb.JoinEdge{T1: "char_name", C1: "id", T2: "cast_info", C2: "person_role_id"})
	db.MustAddEdge(sqldb.JoinEdge{T1: "role_type", C1: "id", T2: "cast_info", C2: "role_id"})

	nMI := sz(7000)
	miMovie := fkInto(rng, nMI, nTitle, 1.55)
	miType := zipfColumn(rng, nMI, 8, 1.3)
	addBridge("movie_info", nMI,
		sqldb.IntColumn("movie_id", miMovie),
		sqldb.IntColumn("info_type_id", miType),
		// The info text correlates with both the info type and the
		// movie FK, so LIKE filters carry join-key information.
		sqldb.StringColumn("info", correlatedKeywords(rng, miMovie, miType)),
	)
	db.MustAddEdge(sqldb.JoinEdge{T1: "title", C1: "id", T2: "movie_info", C2: "movie_id"})
	db.MustAddEdge(sqldb.JoinEdge{T1: "info_type", C1: "id", T2: "movie_info", C2: "info_type_id"})

	nMII := sz(2500)
	miiMovie := fkIntoRev(rng, nMII, nTitle, 1.6)
	addBridge("movie_info_idx", nMII,
		sqldb.IntColumn("movie_id", miiMovie),
		sqldb.IntColumn("info_type_id", zipfColumn(rng, nMII, 8, 1.4)),
		sqldb.IntColumn("info", deriveFromFK(rng, miiMovie, 10, 2)),
	)
	db.MustAddEdge(sqldb.JoinEdge{T1: "title", C1: "id", T2: "movie_info_idx", C2: "movie_id"})
	db.MustAddEdge(sqldb.JoinEdge{T1: "info_type", C1: "id", T2: "movie_info_idx", C2: "info_type_id"})

	nMC := sz(4000)
	addBridge("movie_companies", nMC,
		sqldb.IntColumn("movie_id", fkIntoRev(rng, nMC, nTitle, 1.6)),
		sqldb.IntColumn("company_id", fkInto(rng, nMC, nComp, 1.3)),
		sqldb.IntColumn("company_type_id", zipfColumn(rng, nMC, 4, 1.5)),
	)
	db.MustAddEdge(sqldb.JoinEdge{T1: "title", C1: "id", T2: "movie_companies", C2: "movie_id"})
	db.MustAddEdge(sqldb.JoinEdge{T1: "company_name", C1: "id", T2: "movie_companies", C2: "company_id"})
	db.MustAddEdge(sqldb.JoinEdge{T1: "company_type", C1: "id", T2: "movie_companies", C2: "company_type_id"})

	nMK := sz(5000)
	addBridge("movie_keyword", nMK,
		sqldb.IntColumn("movie_id", fkIntoRev(rng, nMK, nTitle, 1.6)),
		sqldb.IntColumn("keyword_id", fkInto(rng, nMK, nKw, 1.6)),
	)
	db.MustAddEdge(sqldb.JoinEdge{T1: "title", C1: "id", T2: "movie_keyword", C2: "movie_id"})
	db.MustAddEdge(sqldb.JoinEdge{T1: "keyword", C1: "id", T2: "movie_keyword", C2: "keyword_id"})

	nML := sz(600)
	addBridge("movie_link", nML,
		sqldb.IntColumn("movie_id", fkInto(rng, nML, nTitle, 1.3)),
		sqldb.IntColumn("linked_movie_id", fkInto(rng, nML, nTitle, 1.3)),
		sqldb.IntColumn("link_type_id", zipfColumn(rng, nML, 5, 1.3)),
	)
	db.MustAddEdge(sqldb.JoinEdge{T1: "title", C1: "id", T2: "movie_link", C2: "movie_id"})
	db.MustAddEdge(sqldb.JoinEdge{T1: "link_type", C1: "id", T2: "movie_link", C2: "link_type_id"})

	nPI := sz(3000)
	addBridge("person_info", nPI,
		sqldb.IntColumn("person_id", fkIntoRev(rng, nPI, nName, 1.5)),
		sqldb.IntColumn("info_type_id", zipfColumn(rng, nPI, 8, 1.3)),
		sqldb.StringColumn("info", keywords(rng, nPI)),
	)
	db.MustAddEdge(sqldb.JoinEdge{T1: "name", C1: "id", T2: "person_info", C2: "person_id"})
	db.MustAddEdge(sqldb.JoinEdge{T1: "info_type", C1: "id", T2: "person_info", C2: "info_type_id"})

	nCC := sz(800)
	addBridge("complete_cast", nCC,
		sqldb.IntColumn("movie_id", fkInto(rng, nCC, nTitle, 1.55)),
		sqldb.IntColumn("subject_id", zipfColumn(rng, nCC, 4, 1.3)),
		sqldb.IntColumn("status_id", zipfColumn(rng, nCC, 4, 1.5)),
	)
	db.MustAddEdge(sqldb.JoinEdge{T1: "title", C1: "id", T2: "complete_cast", C2: "movie_id"})
	db.MustAddEdge(sqldb.JoinEdge{T1: "comp_cast_type", C1: "id", T2: "complete_cast", C2: "subject_id"})

	db.FactTables = []string{"title", "name"}
	return db
}

func seqIDs(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// fkInto draws n skewed foreign keys into [0, domain). Unlike
// zipfColumn it does NOT shuffle value identities: the heavy mass
// stays on low ids, so attributes generated with idCorrelated are
// genuinely correlated with join fan-out (the hazard that defeats the
// independence assumption).
func fkInto(rng *rand.Rand, n, domain int, s float64) []int64 {
	z := rand.NewZipf(rng, s, 1, uint64(domain-1))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64())
	}
	return out
}

// fkIntoRev is fkInto with the heavy mass on HIGH ids. Mixing forward
// and reverse skew across the bridge tables makes the independence
// assumption's bias direction differ per join, which is what causes a
// traditional optimizer to mis-order joins (not just mis-size them).
func fkIntoRev(rng *rand.Rand, n, domain int, s float64) []int64 {
	out := fkInto(rng, n, domain, s)
	for i := range out {
		out[i] = int64(domain-1) - out[i]
	}
	return out
}

// zipfShifted draws n skewed values from [base, base+width).
func zipfShifted(rng *rand.Rand, n, base, width int, s float64) []int64 {
	vals := zipfColumn(rng, n, width, s)
	for i := range vals {
		vals[i] += int64(base)
	}
	return vals
}

func movieTitles(rng *rand.Rand, n int) []string {
	adjectives := []string{"Dark", "Lost", "Silent", "Golden", "Broken", "Final", "Hidden", "Eternal"}
	nouns := []string{"Empire", "River", "Night", "Crown", "Garden", "Signal", "Harbor", "Mirror"}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s %s %d", adjectives[rng.Intn(len(adjectives))], nouns[rng.Intn(len(nouns))], rng.Intn(100))
	}
	return out
}

func personNames(rng *rand.Rand, n int) []string {
	first := []string{"Avery", "Blake", "Casey", "Drew", "Ellis", "Frankie", "Gray", "Harper"}
	last := []string{"Adler", "Brooks", "Chen", "Diaz", "Evans", "Fischer", "Grant", "Hayes"}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s, %s", last[rng.Intn(len(last))], first[rng.Intn(len(first))])
	}
	return out
}

func companyNames(rng *rand.Rand, n int) []string {
	stems := []string{"Summit", "Apex", "Nova", "Orion", "Vertex", "Zenith", "Atlas", "Polaris"}
	suffix := []string{"Pictures", "Films", "Studios", "Media", "Entertainment"}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s %s", stems[rng.Intn(len(stems))], suffix[rng.Intn(len(suffix))])
	}
	return out
}

func countryCodes(rng *rand.Rand, n int) []string {
	codes := []string{"[us]", "[gb]", "[de]", "[fr]", "[jp]", "[in]", "[cn]", "[it]"}
	z := rand.NewZipf(rng, 1.4, 1, uint64(len(codes)-1))
	out := make([]string, n)
	for i := range out {
		out[i] = codes[int(z.Uint64())]
	}
	return out
}

func keywords(rng *rand.Rand, n int) []string {
	z := rand.NewZipf(rng, 1.25, 1, uint64(len(words)-1))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%s", words[int(z.Uint64())], words[rng.Intn(len(words))])
	}
	return out
}

// idCorrelated produces values that grow with the row id plus bounded
// noise, staying within [base, base+width). Combined with Zipf-skewed
// FKs (which favor low ids), range filters over these columns are
// strongly correlated with join fan-out.
func idCorrelated(rng *rand.Rand, n, base, width, noise int) []int64 {
	out := make([]int64, n)
	for i := range out {
		v := i*width/n + rng.Intn(2*noise+1) - noise
		if v < 0 {
			v = 0
		}
		if v >= width {
			v = width - 1
		}
		out[i] = int64(base + v)
	}
	return out
}

// deriveFromFK produces an attribute column that is a noisy function
// of a foreign-key column, so filters on the attribute implicitly
// select join partners (the correlation that defeats the independence
// assumption).
func deriveFromFK(rng *rand.Rand, fk []int64, domain, noise int) []int64 {
	out := make([]int64, len(fk))
	for i, v := range fk {
		x := (int(v)*13 + rng.Intn(noise+1)) % domain
		out[i] = int64(x)
	}
	return out
}

// correlatedKeywords builds strings whose prefix word is a function of
// the movie FK and whose suffix follows the info type, so both LIKE
// prefix and infix patterns carry join information.
func correlatedKeywords(rng *rand.Rand, movieFK, infoType []int64) []string {
	out := make([]string, len(movieFK))
	for i := range out {
		w1 := words[(int(movieFK[i])*7+rng.Intn(2))%len(words)]
		w2 := words[(int(infoType[i])*3+rng.Intn(2))%len(words)]
		out[i] = fmt.Sprintf("%s-%s", w1, w2)
	}
	return out
}
