// Package dist is the gradient-exchange plane: the seam that turns
// the single-process data-parallel training loop into multi-process
// fleet pretraining without changing a single trajectory bit.
//
// The contract it extracts from the trainer is example-ordered
// gradient reduction. A minibatch of n examples is cut into slots
// 0..n-1; slot i is owned by rank i mod world; each rank runs
// forward/backward only for its owned slots, into private per-slot
// gradient buffers. AllReduce then combines the buffers exactly the
// way ag.ReduceGrads does in one process — per parameter, summed in
// slot order, scaled once — so the reduced gradient (and therefore
// the Adam step, the loss trajectory, and the final checkpoint) is
// bitwise identical for every process count at a fixed topology
// (seed, batch size, example set). This is the same contract PR 1
// established for worker count, lifted across process boundaries.
//
// Two backends implement the plane:
//
//   - Local: world 1, in-process. AllReduce is ag.ReduceGrads,
//     byte-for-byte the behavior the trainer had before the plane
//     existed (the bitwise trajectory tests prove it).
//   - TCP: a coordinator process plus world worker ranks over
//     length-prefixed, CRC32C-framed messages (internal/ckptio
//     section framing). The coordinator performs the slot-ordered
//     reduction centrally and sends every rank the identical reduced
//     gradient and the full per-slot loss vector, so every rank's
//     optimizer and statistics advance in lockstep.
//
// Failure model: fail-stop. Any broken connection, rank drift
// (mismatched step or batch shape), or frame corruption aborts the
// whole fleet with an error; a supervisor restarts every process with
// -resume and rank 0's training snapshot re-synchronizes the fleet
// through BroadcastBytes (see mtmlf's snapshot plumbing). Nothing is
// retried in place — determinism comes before availability here.
package dist

import (
	"mtmlf/internal/ag"
)

// Exchanger is a gradient-exchange backend. One Exchanger belongs to
// one training run on one rank; implementations need not be safe for
// concurrent calls (the trainer is a single loop).
type Exchanger interface {
	// World returns the fleet shape: world ranks, this process being
	// rank (0-based). world 1 is single-process training.
	World() (world, rank int)

	// AllReduce exchanges one minibatch's gradients. slots[i] is
	// non-nil iff this rank owns slot i (filled by its backward pass),
	// and losses[i] holds the owned slots' losses. On return, every
	// rank has the example-ordered sum of all slots scaled by scale on
	// the parameters' Grad fields (parameters no slot touched keep a
	// nil Grad), and losses is fully populated for all n slots —
	// bitwise identical on every rank to what ag.ReduceGrads would
	// have produced from the full slot set in one process.
	AllReduce(params []*ag.Value, slots []ag.Grads, losses []float64, scale float64) error

	// BroadcastBytes distributes rank 0's payload to every rank (the
	// argument is ignored on other ranks) and returns the payload on
	// all of them. The trainer uses it to ship the resume point,
	// parameters, and optimizer state from rank 0's training snapshot
	// so the whole fleet re-enters the run at one consistent minibatch
	// boundary.
	BroadcastBytes(payload []byte) ([]byte, error)

	// Barrier blocks until every rank has reached it.
	Barrier() error

	// Close releases the exchanger. For the TCP backend it tells the
	// coordinator this rank is done; the coordinator exits cleanly
	// once every rank has closed.
	Close() error
}

// Owns reports whether rank owns slot i of a minibatch in a
// world-rank fleet: slots stride across ranks exactly like examples
// stride across in-process workers, so the slot→rank map depends only
// on (world, rank, i).
func Owns(world, rank, i int) bool {
	if world <= 1 {
		return true
	}
	return i%world == rank
}

// Local is the in-process backend: world 1, AllReduce is
// ag.ReduceGrads. It is byte-for-byte the pre-plane trainer behavior
// and the reference every distributed backend is tested against.
func Local() Exchanger { return localExchanger{} }

type localExchanger struct{}

func (localExchanger) World() (int, int) { return 1, 0 }

func (localExchanger) AllReduce(params []*ag.Value, slots []ag.Grads, losses []float64, scale float64) error {
	ag.ReduceGrads(params, slots, scale)
	return nil
}

func (localExchanger) BroadcastBytes(payload []byte) ([]byte, error) { return payload, nil }

func (localExchanger) Barrier() error { return nil }

func (localExchanger) Close() error { return nil }
