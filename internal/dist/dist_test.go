package dist

import (
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mtmlf/internal/ag"
	"mtmlf/internal/tensor"
)

// testShapes is a small heterogeneous parameter list: a matrix, a
// bias row, and a parameter no slot ever touches (its Grad must stay
// nil through every backend).
var testShapes = [][]int{{3, 4}, {1, 4}, {2, 2}}

const untouchedParam = 2

// makeParams builds one rank's private parameter list with
// deterministic contents.
func makeParams() []*ag.Value {
	params := make([]*ag.Value, len(testShapes))
	for k, shape := range testShapes {
		t := tensor.New(shape...)
		for j := range t.Data {
			t.Data[j] = float64(k+1) * (float64(j) + 0.5)
		}
		params[k] = ag.Param(t)
	}
	return params
}

// slotGrad builds slot i's deterministic gradient for parameter k.
// Slot indices leave distinct bit patterns so an out-of-order
// reduction cannot cancel out.
func slotGrad(step, i, k int, p *ag.Value) *tensor.Tensor {
	g := tensor.New(p.T.Shape...)
	for j := range g.Data {
		g.Data[j] = 1.0/float64(step*31+i*7+k+1) + float64(j)*1e-3
	}
	return g
}

// fillSlot builds slot i's Grads buffer. Odd slots skip parameter 1,
// so the reduction must cope with slots that touch different
// parameter subsets.
func fillSlot(step, i int, params []*ag.Value) ag.Grads {
	slot := ag.Grads{}
	for k, p := range params {
		if k == untouchedParam || (k == 1 && i%2 == 1) {
			continue
		}
		slot[p] = slotGrad(step, i, k, p)
	}
	return slot
}

// refReduce computes the single-process reference reduction for one
// step over fresh params, returning the per-parameter Grad tensors.
func refReduce(step, n int, scale float64) []*tensor.Tensor {
	params := makeParams()
	slots := make([]ag.Grads, n)
	for i := range slots {
		slots[i] = fillSlot(step, i, params)
	}
	ag.ReduceGrads(params, slots, scale)
	out := make([]*tensor.Tensor, len(params))
	for k, p := range params {
		out[k] = p.Grad
	}
	return out
}

func checkGradsBitwise(t *testing.T, tag string, params []*ag.Value, want []*tensor.Tensor) {
	t.Helper()
	for k, p := range params {
		switch {
		case p.Grad == nil && want[k] == nil:
		case p.Grad == nil || want[k] == nil:
			t.Fatalf("%s: parameter %d: grad nil-ness differs (got %v, want %v)", tag, k, p.Grad, want[k])
		default:
			for j := range want[k].Data {
				if math.Float64bits(p.Grad.Data[j]) != math.Float64bits(want[k].Data[j]) {
					t.Fatalf("%s: parameter %d element %d: got %x, want %x",
						tag, k, j, math.Float64bits(p.Grad.Data[j]), math.Float64bits(want[k].Data[j]))
				}
			}
		}
	}
}

// TestLocalAllReduceMatchesReduceGrads pins the Local backend to the
// pre-plane trainer behavior: AllReduce must be ag.ReduceGrads.
func TestLocalAllReduceMatchesReduceGrads(t *testing.T) {
	ex := Local()
	if w, r := ex.World(); w != 1 || r != 0 {
		t.Fatalf("Local world = (%d,%d), want (1,0)", w, r)
	}
	n, scale := 5, 1.0/5
	params := makeParams()
	slots := make([]ag.Grads, n)
	losses := make([]float64, n)
	for i := range slots {
		slots[i] = fillSlot(1, i, params)
		losses[i] = float64(i) + 0.25
	}
	if err := ex.AllReduce(params, slots, losses, scale); err != nil {
		t.Fatal(err)
	}
	checkGradsBitwise(t, "local", params, refReduce(1, n, scale))
	for i := range losses {
		if losses[i] != float64(i)+0.25 {
			t.Fatalf("local AllReduce touched losses[%d]", i)
		}
	}
	if _, err := ex.BroadcastBytes([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := ex.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}

// startCoordinator boots a loopback coordinator and returns its
// address plus the Run error channel.
func startCoordinator(t *testing.T, world int) (string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(ln, world)
	errc := make(chan error, 1)
	go func() { errc <- c.Run() }()
	return c.Addr(), errc
}

func waitCoordinator(t *testing.T, errc chan error) {
	t.Helper()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not exit")
	}
}

// TestTCPAllReduceMatchesLocal is the plane's core contract: at world
// 2 and 3, every rank's reduced gradients and loss vectors must be
// bitwise identical to the single-process ag.ReduceGrads reduction —
// across several steps, including a short final batch and slots that
// touch different parameter subsets.
func TestTCPAllReduceMatchesLocal(t *testing.T) {
	for _, world := range []int{2, 3} {
		t.Run(fmt.Sprintf("world%d", world), func(t *testing.T) {
			addr, coordErr := startCoordinator(t, world)
			batches := []int{4, 5, 1, 2} // n per step; 5 and 1 exercise uneven ownership
			var wg sync.WaitGroup
			rankErr := make(chan error, world)
			for rank := 0; rank < world; rank++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					ex, err := DialRetry(addr, rank, world, "test-job", 50, 20*time.Millisecond)
					if err != nil {
						rankErr <- err
						return
					}
					defer ex.Close()
					params := makeParams()
					for step, n := range batches {
						scale := 1 / float64(n)
						slots := make([]ag.Grads, n)
						losses := make([]float64, n)
						for i := 0; i < n; i++ {
							if !Owns(world, rank, i) {
								continue
							}
							slots[i] = fillSlot(step, i, params)
							losses[i] = float64(step*100 + i)
						}
						for _, p := range params {
							p.Grad = nil
						}
						if err := ex.AllReduce(params, slots, losses, scale); err != nil {
							rankErr <- fmt.Errorf("rank %d step %d: %w", rank, step, err)
							return
						}
						want := refReduce(step, n, scale)
						for k, p := range params {
							wantNil := want[k] == nil
							if (p.Grad == nil) != wantNil {
								rankErr <- fmt.Errorf("rank %d step %d param %d: grad nil-ness differs", rank, step, k)
								return
							}
							if wantNil {
								continue
							}
							for j := range want[k].Data {
								if math.Float64bits(p.Grad.Data[j]) != math.Float64bits(want[k].Data[j]) {
									rankErr <- fmt.Errorf("rank %d step %d param %d elem %d: bits differ", rank, step, k, j)
									return
								}
							}
						}
						for i := 0; i < n; i++ {
							if losses[i] != float64(step*100+i) {
								rankErr <- fmt.Errorf("rank %d step %d: losses[%d] = %v, want %v",
									rank, step, i, losses[i], float64(step*100+i))
								return
							}
						}
					}
					if err := ex.Barrier(); err != nil {
						rankErr <- err
					}
				}(rank)
			}
			wg.Wait()
			close(rankErr)
			for err := range rankErr {
				t.Fatal(err)
			}
			waitCoordinator(t, coordErr)
		})
	}
}

// TestTCPBroadcast: rank 0's payload reaches every rank byte-for-byte
// (and rank 0 gets its own copy back through the same path).
func TestTCPBroadcast(t *testing.T) {
	const world = 3
	addr, coordErr := startCoordinator(t, world)
	payload := []byte("resume-state: epoch 3 offset 12")
	var wg sync.WaitGroup
	rankErr := make(chan error, world)
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ex, err := DialRetry(addr, rank, world, "bcast", 50, 20*time.Millisecond)
			if err != nil {
				rankErr <- err
				return
			}
			defer ex.Close()
			in := []byte("ignored on nonzero ranks")
			if rank == 0 {
				in = payload
			}
			got, err := ex.BroadcastBytes(in)
			if err != nil {
				rankErr <- err
				return
			}
			if string(got) != string(payload) {
				rankErr <- fmt.Errorf("rank %d received %q, want %q", rank, got, payload)
			}
		}(rank)
	}
	wg.Wait()
	close(rankErr)
	for err := range rankErr {
		t.Fatal(err)
	}
	waitCoordinator(t, coordErr)
}

// TestTCPFingerprintMismatch: a fleet whose ranks disagree on the job
// fingerprint must abort before any gradient flows.
func TestTCPFingerprintMismatch(t *testing.T) {
	const world = 2
	addr, coordErr := startCoordinator(t, world)
	var wg sync.WaitGroup
	results := make([]error, world)
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fp := "job-a"
			if rank == 1 {
				fp = "job-b"
			}
			ex, err := DialRetry(addr, rank, world, fp, 50, 20*time.Millisecond)
			if err == nil {
				// The coordinator only validates once all ranks are in;
				// the first exchange surfaces the abort.
				err = ex.Barrier()
				ex.Close()
			}
			results[rank] = err
		}(rank)
	}
	wg.Wait()
	select {
	case err := <-coordErr:
		if err == nil || !strings.Contains(err.Error(), "job mismatch") {
			t.Fatalf("coordinator error = %v, want job mismatch", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not exit")
	}
	for rank, err := range results {
		if err == nil {
			t.Fatalf("rank %d saw no error from a mismatched fleet", rank)
		}
	}
}

// TestTCPRankDriftAborts: ranks disagreeing on the minibatch shape is
// drift, and the whole fleet must fail rather than reduce garbage.
func TestTCPRankDriftAborts(t *testing.T) {
	const world = 2
	addr, coordErr := startCoordinator(t, world)
	var wg sync.WaitGroup
	results := make([]error, world)
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ex, err := DialRetry(addr, rank, world, "drift", 50, 20*time.Millisecond)
			if err != nil {
				results[rank] = err
				return
			}
			defer ex.Close()
			params := makeParams()
			n := 4
			if rank == 1 {
				n = 3 // drifted: wrong batch size
			}
			slots := make([]ag.Grads, n)
			losses := make([]float64, n)
			for i := 0; i < n; i++ {
				if Owns(world, rank, i) {
					slots[i] = fillSlot(0, i, params)
				}
			}
			results[rank] = ex.AllReduce(params, slots, losses, 0.25)
		}(rank)
	}
	wg.Wait()
	select {
	case err := <-coordErr:
		if err == nil || !strings.Contains(err.Error(), "rank drift") {
			t.Fatalf("coordinator error = %v, want rank drift", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not exit")
	}
	for rank, err := range results {
		if err == nil {
			t.Fatalf("rank %d AllReduce succeeded in a drifted fleet", rank)
		}
	}
}

// TestTCPDuplicateRank: two workers claiming the same rank is a
// launch error the coordinator must reject.
func TestTCPDuplicateRank(t *testing.T) {
	const world = 2
	addr, coordErr := startCoordinator(t, world)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ex, err := DialRetry(addr, 0, world, "dup", 50, 20*time.Millisecond)
			if err == nil {
				err = ex.Barrier()
				ex.Close()
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	select {
	case err := <-coordErr:
		if err == nil || !strings.Contains(err.Error(), "rank 0") {
			t.Fatalf("coordinator error = %v, want duplicate rank", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not exit")
	}
	if errs[0] == nil && errs[1] == nil {
		t.Fatal("both duplicate-rank workers succeeded")
	}
}

// TestWireRoundTrip pins the frame codecs: encode→decode must be
// lossless, and a truncated body must error, never panic.
func TestWireRoundTrip(t *testing.T) {
	f := &gradsFrame{step: 7, n: 3, scale: 1.0 / 3}
	f.slots = []slotGrads{
		{slot: 0, loss: math.Pi, entries: []gradEntry{{param: 0, data: []float64{1, -2, 3.5}}}},
		{slot: 2, loss: -0.0, entries: []gradEntry{{param: 1, data: []float64{0.125}}, {param: 3, data: nil}}},
	}
	enc := encodeGrads(f)
	got, err := decodeGrads(enc[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got.step != f.step || got.n != f.n || got.scale != f.scale || len(got.slots) != len(f.slots) {
		t.Fatalf("grads round trip: got %+v, want %+v", got, f)
	}
	if math.Float64bits(got.slots[1].loss) != math.Float64bits(-0.0) {
		t.Fatal("loss bit pattern not preserved (-0.0)")
	}
	if got.slots[0].entries[0].data[2] != 3.5 {
		t.Fatal("gradient data not preserved")
	}
	for cut := 1; cut < len(enc); cut++ {
		if _, err := decodeGrads(enc[1:cut]); err == nil && cut < len(enc) {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(enc))
		}
	}
	r := &reducedFrame{step: 9, losses: []float64{1, 2, 3}, entries: []gradEntry{{param: 2, data: []float64{4, 5}}}}
	encR := encodeReduced(r)
	gotR, err := decodeReduced(encR[1:])
	if err != nil {
		t.Fatal(err)
	}
	if gotR.step != 9 || len(gotR.losses) != 3 || gotR.entries[0].param != 2 || gotR.entries[0].data[1] != 5 {
		t.Fatalf("reduced round trip: got %+v", gotR)
	}
	h := hello{rank: 1, world: 3, fingerprint: "fp"}
	encH := encodeHello(h)
	gotH, err := decodeHello(encH[1:])
	if err != nil {
		t.Fatal(err)
	}
	if gotH != h {
		t.Fatalf("hello round trip: got %+v, want %+v", gotH, h)
	}
}

// TestOwns pins the slot→rank map to the worker-stride scheme.
func TestOwns(t *testing.T) {
	if !Owns(1, 0, 5) {
		t.Fatal("world 1 must own every slot")
	}
	for i := 0; i < 12; i++ {
		owners := 0
		for rank := 0; rank < 3; rank++ {
			if Owns(3, rank, i) {
				owners++
				if i%3 != rank {
					t.Fatalf("Owns(3,%d,%d) true but %d%%3 != %d", rank, i, i, rank)
				}
			}
		}
		if owners != 1 {
			t.Fatalf("slot %d has %d owners at world 3", i, owners)
		}
	}
}
