package dist

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"mtmlf/internal/ag"
	"mtmlf/internal/tensor"
)

// ---------------------------------------------------------------------------
// TCP worker exchanger
// ---------------------------------------------------------------------------

// TCP is the distributed Exchanger: one rank's connection to the
// coordinator. Create it with Dial or DialRetry.
type TCP struct {
	conn  net.Conn
	r     *bufio.Reader
	w     *bufio.Writer
	world int
	rank  int
	step  uint64
	once  sync.Once
}

// Dial connects rank (of world) to the coordinator at addr and
// completes the handshake. The handshake doubles as the startup
// barrier: the coordinator acknowledges only once every rank has
// connected, so a successful Dial means the whole fleet exists.
// fingerprint is an operator-readable description of the training job
// (flags, corpus, seed); the coordinator rejects a fleet whose ranks
// disagree on it, catching misconfigured launches before any
// gradient flows.
func Dial(addr string, rank, world int, fingerprint string) (*TCP, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return handshake(conn, rank, world, fingerprint)
}

// DialRetry is Dial with a bounded connection-retry loop (attempts
// tries, delay apart) so workers may be launched before, after, or
// concurrently with the coordinator. Only the connection itself is
// retried; a handshake rejection is a configuration error and fails
// immediately.
func DialRetry(addr string, rank, world int, fingerprint string, attempts int, delay time.Duration) (*TCP, error) {
	if attempts < 1 {
		attempts = 1
	}
	var conn net.Conn
	var err error
	for try := 0; try < attempts; try++ {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			return handshake(conn, rank, world, fingerprint)
		}
		time.Sleep(delay)
	}
	return nil, fmt.Errorf("dist: no coordinator at %s after %d attempts: %w", addr, attempts, err)
}

func handshake(conn net.Conn, rank, world int, fingerprint string) (*TCP, error) {
	if world < 1 || rank < 0 || rank >= world {
		conn.Close()
		return nil, fmt.Errorf("dist: rank %d out of range for world %d", rank, world)
	}
	t := &TCP{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), world: world, rank: rank}
	if err := t.send(encodeHello(hello{rank: rank, world: world, fingerprint: fingerprint})); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: handshake send: %w", err)
	}
	if _, err := expectMsg(t.r, msgHelloAck); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: handshake: %w", err)
	}
	return t, nil
}

// send frames, writes, and flushes one message.
func (t *TCP) send(payload []byte) error {
	if err := writeMsg(t.w, payload); err != nil {
		return err
	}
	return t.w.Flush()
}

// World returns the fleet shape.
func (t *TCP) World() (int, int) { return t.world, t.rank }

// AllReduce ships this rank's owned slots to the coordinator and
// installs the slot-ordered reduced gradient and the full loss vector
// it sends back. See Exchanger.
func (t *TCP) AllReduce(params []*ag.Value, slots []ag.Grads, losses []float64, scale float64) error {
	t.step++
	frame := &gradsFrame{step: t.step, n: uint32(len(slots)), scale: scale}
	for i, slot := range slots {
		if slot == nil {
			continue
		}
		s := slotGrads{slot: uint32(i), loss: losses[i]}
		for k, p := range params {
			g := slot[p]
			if g == nil {
				continue
			}
			s.entries = append(s.entries, gradEntry{param: uint32(k), data: g.Data})
		}
		frame.slots = append(frame.slots, s)
	}
	if err := t.send(encodeGrads(frame)); err != nil {
		return fmt.Errorf("dist: send gradients (step %d): %w", t.step, err)
	}
	body, err := expectMsg(t.r, msgReduced)
	if err != nil {
		return fmt.Errorf("dist: receive reduced gradient (step %d): %w", t.step, err)
	}
	red, err := decodeReduced(body)
	if err != nil {
		return err
	}
	if red.step != t.step {
		return fmt.Errorf("dist: reduced frame for step %d, this rank is at step %d", red.step, t.step)
	}
	if len(red.losses) != len(losses) {
		return fmt.Errorf("dist: reduced frame has %d losses for an n=%d minibatch", len(red.losses), len(losses))
	}
	copy(losses, red.losses)
	for _, e := range red.entries {
		if int(e.param) >= len(params) {
			return fmt.Errorf("dist: reduced gradient for parameter %d, model has %d", e.param, len(params))
		}
		p := params[e.param]
		if len(e.data) != p.T.Size() {
			return fmt.Errorf("dist: reduced gradient for parameter %d has %d elements, parameter has %d",
				e.param, len(e.data), p.T.Size())
		}
		g := tensor.New(p.T.Shape...)
		copy(g.Data, e.data)
		if p.Grad == nil {
			p.Grad = g
		} else {
			p.Grad.AddInPlace(g)
		}
	}
	return nil
}

// BroadcastBytes relays rank 0's payload through the coordinator to
// every rank. See Exchanger.
func (t *TCP) BroadcastBytes(payload []byte) ([]byte, error) {
	if t.rank != 0 {
		payload = nil
	}
	if err := t.send(encodePayload(msgBcast, payload)); err != nil {
		return nil, fmt.Errorf("dist: send broadcast: %w", err)
	}
	body, err := expectMsg(t.r, msgBcastOut)
	if err != nil {
		return nil, fmt.Errorf("dist: receive broadcast: %w", err)
	}
	return decodePayload(body)
}

// Barrier blocks until every rank has sent its barrier message.
func (t *TCP) Barrier() error {
	if err := t.send([]byte{msgBarrier}); err != nil {
		return fmt.Errorf("dist: send barrier: %w", err)
	}
	if _, err := expectMsg(t.r, msgBarrierAck); err != nil {
		return fmt.Errorf("dist: barrier: %w", err)
	}
	return nil
}

// Close tells the coordinator this rank is done and closes the
// connection. Idempotent.
func (t *TCP) Close() error {
	t.once.Do(func() {
		// Best effort: the coordinator may already be gone after an
		// abort, and a close must not mask the original error.
		_ = t.send([]byte{msgDone})
		_ = t.conn.Close()
	})
	return nil
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

// Coordinator is the hub of one distributed training job: it accepts
// exactly world ranks, then serves lockstep exchange rounds (gradient
// reduction, broadcast, barrier) until every rank closes. It holds no
// model state — the slot-ordered reduction is pure arithmetic over
// the frames — so the ranks' parameters stay bitwise identical to
// each other and to the single-process run by construction.
//
// The coordinator is fail-stop: any connection error, rank drift, or
// frame corruption aborts the whole fleet (a best-effort error
// message is sent to every surviving rank) and Run returns the
// error. A supervisor restarts the job; rank 0's training snapshot
// re-synchronizes everyone.
type Coordinator struct {
	ln    net.Listener
	world int
}

// NewCoordinator wraps an already-listening socket. The caller owns
// choosing the address (and can print ln.Addr() for the workers);
// Run closes the listener when it returns.
func NewCoordinator(ln net.Listener, world int) *Coordinator {
	return &Coordinator{ln: ln, world: world}
}

// Addr returns the listen address workers should dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// rankConn is one accepted rank's buffered connection.
type rankConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Run serves one training job to completion: handshake with every
// rank, lockstep exchange rounds, clean exit once all ranks are done.
// It returns nil only for a clean fleet shutdown.
func (c *Coordinator) Run() error {
	conns := make([]*rankConn, c.world)
	defer func() {
		c.ln.Close()
		for _, rc := range conns {
			if rc != nil {
				rc.conn.Close()
			}
		}
	}()
	if err := c.accept(conns); err != nil {
		return err
	}
	// Every rank is connected and validated: release them together.
	// This is the fleet's startup barrier.
	for rank, rc := range conns {
		if err := sendTo(rc, []byte{msgHelloAck}); err != nil {
			return c.abort(conns, fmt.Errorf("dist: ack rank %d: %w", rank, err))
		}
	}
	done := 0
	for {
		// One lockstep round: every rank sends exactly one message and
		// every message must agree on the kind — a rank asking for a
		// gradient reduction while another says it is done means the
		// fleet has drifted, and fail-stop beats silent divergence.
		msgs := make([][]byte, c.world)
		for rank, rc := range conns {
			p, err := readMsg(rc.r)
			if err != nil {
				return c.abort(conns, fmt.Errorf("dist: read from rank %d: %w", rank, err))
			}
			msgs[rank] = p
		}
		kind := msgs[0][0]
		for rank, p := range msgs {
			if p[0] != kind {
				return c.abort(conns, fmt.Errorf("dist: rank drift: rank 0 sent %s, rank %d sent %s",
					kindName(kind), rank, kindName(p[0])))
			}
		}
		var err error
		switch kind {
		case msgDone:
			done = c.world
		case msgBarrier:
			err = c.fanOut(conns, []byte{msgBarrierAck})
		case msgBcast:
			err = c.relayBroadcast(conns, msgs)
		case msgGrads:
			err = c.reduceRound(conns, msgs)
		default:
			err = fmt.Errorf("dist: unexpected %s message mid-run", kindName(kind))
		}
		if err != nil {
			return c.abort(conns, err)
		}
		if done == c.world {
			return nil
		}
	}
}

// accept admits exactly world ranks, validating each handshake and
// cross-checking the job fingerprints.
func (c *Coordinator) accept(conns []*rankConn) error {
	fingerprints := make([]string, c.world)
	for admitted := 0; admitted < c.world; {
		conn, err := c.ln.Accept()
		if err != nil {
			return c.abort(conns, fmt.Errorf("dist: accept: %w", err))
		}
		rc := &rankConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
		body, err := expectMsg(rc.r, msgHello)
		if err != nil {
			conn.Close()
			return c.abort(conns, fmt.Errorf("dist: handshake: %w", err))
		}
		h, err := decodeHello(body)
		if err != nil {
			conn.Close()
			return c.abort(conns, err)
		}
		switch {
		case h.world != c.world:
			err = fmt.Errorf("dist: rank %d dialed with -dist-world %d, coordinator serves %d", h.rank, h.world, c.world)
		case h.rank < 0 || h.rank >= c.world:
			err = fmt.Errorf("dist: rank %d out of range for world %d", h.rank, c.world)
		case conns[h.rank] != nil:
			err = fmt.Errorf("dist: two workers claim rank %d (duplicate -dist-rank?)", h.rank)
		}
		if err != nil {
			conn.Close()
			return c.abort(conns, err)
		}
		conns[h.rank] = rc
		fingerprints[h.rank] = h.fingerprint
		admitted++
	}
	for rank, fp := range fingerprints {
		if fp != fingerprints[0] {
			return c.abort(conns, fmt.Errorf("dist: job mismatch: rank 0 is running %q, rank %d is running %q",
				fingerprints[0], rank, fp))
		}
	}
	return nil
}

// reduceRound decodes every rank's gradient frame, performs the
// slot-ordered reduction, and fans the identical reduced frame out.
func (c *Coordinator) reduceRound(conns []*rankConn, msgs [][]byte) error {
	frames := make([]*gradsFrame, c.world)
	for rank, p := range msgs {
		f, err := decodeGrads(p[1:])
		if err != nil {
			return fmt.Errorf("dist: rank %d gradient frame: %w", rank, err)
		}
		frames[rank] = f
	}
	red, err := reduceFrames(frames)
	if err != nil {
		return err
	}
	return c.fanOut(conns, encodeReduced(red))
}

// relayBroadcast forwards rank 0's payload to every rank.
func (c *Coordinator) relayBroadcast(conns []*rankConn, msgs [][]byte) error {
	payload, err := decodePayload(msgs[0][1:])
	if err != nil {
		return fmt.Errorf("dist: rank 0 broadcast frame: %w", err)
	}
	return c.fanOut(conns, encodePayload(msgBcastOut, payload))
}

// fanOut sends one identical message to every rank.
func (c *Coordinator) fanOut(conns []*rankConn, payload []byte) error {
	for rank, rc := range conns {
		if err := sendTo(rc, payload); err != nil {
			return fmt.Errorf("dist: send to rank %d: %w", rank, err)
		}
	}
	return nil
}

// abort tells every surviving rank why the fleet is going down (best
// effort) and returns err for Run.
func (c *Coordinator) abort(conns []*rankConn, err error) error {
	frame := encodePayload(msgError, []byte(err.Error()))
	for _, rc := range conns {
		if rc != nil {
			_ = sendTo(rc, frame)
		}
	}
	return err
}

func sendTo(rc *rankConn, payload []byte) error {
	if err := writeMsg(rc.w, payload); err != nil {
		return err
	}
	return rc.w.Flush()
}
