package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mtmlf/internal/ckptio"
)

// Wire protocol. Every message is one ckptio section frame — an 8-byte
// big-endian length, the payload, and a CRC32C of the payload — so a
// torn or bit-rotted frame fails with a typed *ckptio.CorruptError
// exactly like a damaged checkpoint would, instead of being decoded
// into a garbage gradient. The payload is [1 kind byte][body]; all
// integers are big-endian, all floats are IEEE-754 bit patterns
// (math.Float64bits), so a gradient survives the round trip bitwise.

const (
	// protoMagic opens every handshake.
	protoMagic = "MTMLF-DIST"
	// protoVersion is the exchange protocol version.
	protoVersion = 1
)

// Message kinds. Workers send hello/grads/bcast/barrier/done; the
// coordinator answers helloAck/reduced/bcastOut/barrierAck and may
// send errMsg to abort the fleet with a reason.
const (
	msgHello byte = iota + 1
	msgHelloAck
	msgGrads
	msgReduced
	msgBcast
	msgBcastOut
	msgBarrier
	msgBarrierAck
	msgDone
	msgError
)

// kindName names a message kind for error text.
func kindName(k byte) string {
	switch k {
	case msgHello:
		return "hello"
	case msgHelloAck:
		return "hello-ack"
	case msgGrads:
		return "grads"
	case msgReduced:
		return "reduced"
	case msgBcast:
		return "bcast"
	case msgBcastOut:
		return "bcast-out"
	case msgBarrier:
		return "barrier"
	case msgBarrierAck:
		return "barrier-ack"
	case msgDone:
		return "done"
	case msgError:
		return "error"
	}
	return fmt.Sprintf("kind-%d", k)
}

// writeMsg frames and sends one message payload.
func writeMsg(w io.Writer, payload []byte) error {
	return ckptio.WriteSection(w, payload)
}

// readMsg receives one framed message and returns its payload
// (kind byte included).
func readMsg(r io.Reader) ([]byte, error) {
	p, err := ckptio.ReadSection(r, "dist")
	if err != nil {
		return nil, err
	}
	if len(p) == 0 {
		return nil, ckptio.Corruptf("dist", "empty message frame")
	}
	if p[0] == msgError {
		c := cursor{b: p[1:]}
		reason := string(c.bytes(int(c.u32()))) // best effort; may be truncated
		return nil, fmt.Errorf("dist: coordinator aborted the fleet: %s", reason)
	}
	return p, nil
}

// expectMsg reads one message and verifies its kind.
func expectMsg(r io.Reader, kind byte) ([]byte, error) {
	p, err := readMsg(r)
	if err != nil {
		return nil, err
	}
	if p[0] != kind {
		return nil, fmt.Errorf("dist: expected %s message, got %s", kindName(kind), kindName(p[0]))
	}
	return p[1:], nil
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}
func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

// cursor is a bounds-checked big-endian decoder. Reads past the end
// set err and return zero values; callers check err once at the end,
// so a truncated body is one error path instead of a panic.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.b) {
		c.err = fmt.Errorf("dist: truncated message body (want %d bytes at offset %d of %d)", n, c.off, len(c.b))
		return nil
	}
	p := c.b[c.off : c.off+n]
	c.off += n
	return p
}

func (c *cursor) u16() uint16 {
	p := c.take(2)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint16(p)
}

func (c *cursor) u32() uint32 {
	p := c.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

func (c *cursor) u64() uint64 {
	p := c.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) bytes(n int) []byte { return c.take(n) }

func (c *cursor) f64s(n int) []float64 {
	p := c.take(8 * n)
	if p == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(p[8*i:]))
	}
	return out
}

// done verifies the whole body was consumed and returns any decode
// error.
func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("dist: %d trailing bytes after message body", len(c.b)-c.off)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

// hello is the handshake a worker opens its connection with.
type hello struct {
	rank        int
	world       int
	fingerprint string
}

func encodeHello(h hello) []byte {
	b := []byte{msgHello}
	b = append(b, protoMagic...)
	b = appendU16(b, protoVersion)
	b = appendU32(b, uint32(h.rank))
	b = appendU32(b, uint32(h.world))
	b = appendBytes(b, []byte(h.fingerprint))
	return b
}

func decodeHello(body []byte) (hello, error) {
	c := cursor{b: body}
	magic := c.bytes(len(protoMagic))
	version := c.u16()
	h := hello{rank: int(c.u32()), world: int(c.u32())}
	h.fingerprint = string(c.bytes(int(c.u32())))
	if err := c.done(); err != nil {
		return h, err
	}
	if string(magic) != protoMagic {
		return h, fmt.Errorf("dist: handshake magic %q, want %q (not an mtmlf dist worker?)", magic, protoMagic)
	}
	if version != protoVersion {
		return h, fmt.Errorf("dist: protocol version %d, coordinator speaks %d", version, protoVersion)
	}
	return h, nil
}

// gradEntry is one parameter's gradient: the parameter's index in the
// canonical params slice and its flat data. Parameters a slot never
// touched are simply absent, preserving ag.ReduceGrads's nil-Grad
// semantics across the wire.
type gradEntry struct {
	param uint32
	data  []float64
}

// slotGrads is one owned slot's contribution: its global slot index
// within the minibatch, its loss, and its per-parameter gradients.
type slotGrads struct {
	slot    uint32
	loss    float64
	entries []gradEntry
}

// gradsFrame is one rank's half of an AllReduce round.
type gradsFrame struct {
	step  uint64
	n     uint32
	scale float64
	slots []slotGrads
}

func encodeGrads(f *gradsFrame) []byte {
	b := []byte{msgGrads}
	b = appendU64(b, f.step)
	b = appendU32(b, f.n)
	b = appendF64(b, f.scale)
	b = appendU32(b, uint32(len(f.slots)))
	for _, s := range f.slots {
		b = appendU32(b, s.slot)
		b = appendF64(b, s.loss)
		b = appendU32(b, uint32(len(s.entries)))
		for _, e := range s.entries {
			b = appendU32(b, e.param)
			b = appendU32(b, uint32(len(e.data)))
			for _, v := range e.data {
				b = appendF64(b, v)
			}
		}
	}
	return b
}

func decodeGrads(body []byte) (*gradsFrame, error) {
	c := cursor{b: body}
	f := &gradsFrame{step: c.u64(), n: c.u32(), scale: c.f64()}
	nSlots := int(c.u32())
	for i := 0; i < nSlots && c.err == nil; i++ {
		s := slotGrads{slot: c.u32(), loss: c.f64()}
		nEntries := int(c.u32())
		for j := 0; j < nEntries && c.err == nil; j++ {
			e := gradEntry{param: c.u32()}
			e.data = c.f64s(int(c.u32()))
			s.entries = append(s.entries, e)
		}
		f.slots = append(f.slots, s)
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// reducedFrame is the coordinator's answer: the slot-ordered reduced
// gradient (ascending parameter index) and every slot's loss.
type reducedFrame struct {
	step    uint64
	losses  []float64
	entries []gradEntry
}

func encodeReduced(f *reducedFrame) []byte {
	b := []byte{msgReduced}
	b = appendU64(b, f.step)
	b = appendU32(b, uint32(len(f.losses)))
	for _, v := range f.losses {
		b = appendF64(b, v)
	}
	b = appendU32(b, uint32(len(f.entries)))
	for _, e := range f.entries {
		b = appendU32(b, e.param)
		b = appendU32(b, uint32(len(e.data)))
		for _, v := range e.data {
			b = appendF64(b, v)
		}
	}
	return b
}

func decodeReduced(body []byte) (*reducedFrame, error) {
	c := cursor{b: body}
	f := &reducedFrame{step: c.u64()}
	f.losses = c.f64s(int(c.u32()))
	nEntries := int(c.u32())
	for j := 0; j < nEntries && c.err == nil; j++ {
		e := gradEntry{param: c.u32()}
		e.data = c.f64s(int(c.u32()))
		f.entries = append(f.entries, e)
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// encodePayload wraps an opaque payload under kind (bcast/bcast-out/
// error frames all carry one length-prefixed byte string).
func encodePayload(kind byte, payload []byte) []byte {
	b := []byte{kind}
	return appendBytes(b, payload)
}

func decodePayload(body []byte) ([]byte, error) {
	c := cursor{b: body}
	p := c.bytes(int(c.u32()))
	if err := c.done(); err != nil {
		return nil, err
	}
	return p, nil
}

// reduceFrames performs the example-ordered reduction over one round's
// frames from every rank: per parameter, slot contributions are summed
// in ascending slot order and scaled once — float-op-for-float-op what
// ag.ReduceGrads does with the full slot set in one process. It
// verifies the round is coherent (same step, same batch shape, same
// scale on every rank; each slot owned exactly once; consistent
// parameter sizes) and returns the frame every rank receives.
func reduceFrames(frames []*gradsFrame) (*reducedFrame, error) {
	f0 := frames[0]
	n := int(f0.n)
	for r, f := range frames {
		if f.step != f0.step || f.n != f0.n || math.Float64bits(f.scale) != math.Float64bits(f0.scale) {
			return nil, fmt.Errorf("dist: rank drift: rank %d is at step %d (n=%d scale=%v), rank 0 at step %d (n=%d scale=%v) — fleet aborted, restart every rank with -resume",
				r, f.step, f.n, f.scale, f0.step, f0.n, f0.scale)
		}
	}
	bySlot := make([]*slotGrads, n)
	for r := range frames {
		for i := range frames[r].slots {
			s := &frames[r].slots[i]
			if int(s.slot) >= n {
				return nil, fmt.Errorf("dist: rank %d sent slot %d of an n=%d minibatch", r, s.slot, n)
			}
			if bySlot[s.slot] != nil {
				return nil, fmt.Errorf("dist: slot %d of step %d owned by two ranks (overlapping shards?)", s.slot, f0.step)
			}
			bySlot[s.slot] = s
		}
	}
	losses := make([]float64, n)
	var acc [][]float64
	for i := 0; i < n; i++ {
		s := bySlot[i]
		if s == nil {
			return nil, fmt.Errorf("dist: no rank owns slot %d of step %d (missing rank?)", i, f0.step)
		}
		losses[i] = s.loss
		for _, e := range s.entries {
			if int(e.param) >= len(acc) {
				grown := make([][]float64, e.param+1)
				copy(grown, acc)
				acc = grown
			}
			a := acc[e.param]
			if a == nil {
				a = make([]float64, len(e.data))
				acc[e.param] = a
			}
			if len(a) != len(e.data) {
				return nil, fmt.Errorf("dist: parameter %d gradient size %d from slot %d, %d from an earlier slot",
					e.param, len(e.data), i, len(a))
			}
			for j, v := range e.data {
				a[j] += v
			}
		}
	}
	out := &reducedFrame{step: f0.step, losses: losses}
	for p, a := range acc {
		if a == nil {
			continue
		}
		if f0.scale != 1 {
			for j := range a {
				a[j] *= f0.scale
			}
		}
		out.entries = append(out.entries, gradEntry{param: uint32(p), data: a})
	}
	return out, nil
}
