// Package experiments reproduces every table of the paper's
// evaluation (Section 6) end to end: workload generation, baseline and
// MTMLF-QO training, and paper-style result tables. Scales are
// configurable; QuickConfig finishes on a laptop CPU in tens of
// seconds per table, FullConfig in minutes. EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"strings"

	"mtmlf/internal/catalog"
	"mtmlf/internal/cost"
	"mtmlf/internal/datagen"
	"mtmlf/internal/metrics"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/optimizer"
	"mtmlf/internal/parallel"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/stats"
	"mtmlf/internal/treelstm"
	"mtmlf/internal/workload"
)

// Config controls experiment scale. The paper's scales (150K training
// queries, 20K JoinSel queries, full IMDB) are noted per field.
type Config struct {
	Seed int64
	// IMDBScale multiplies the synthetic IMDB row counts.
	IMDBScale float64
	// TrainQueries is the CardEst/CostEst training workload size
	// (paper: 150K; 90/10 train/validation plus held-out test).
	TrainQueries int
	// TestQueries is the held-out JOB-like test set size (paper: the
	// 113 JOB queries).
	TestQueries int
	// JoinSelQueries is the ≤8-table workload with optimal labels
	// (paper: 20K, split 85/10/5).
	JoinSelQueries int
	// Epochs is the joint-training epoch count.
	Epochs int
	// EncoderQueries and EncoderEpochs control Enc_i pre-training.
	EncoderQueries, EncoderEpochs int
	// Model configures MTMLF-QO.
	Model mtmlf.Config
	// Workload configures query generation.
	Workload workload.Config
	// NumDBs is the Table 3 fleet size (paper: 11; 10 train + 1 test).
	NumDBs int
	// QueriesPerDB is the Table 3 per-database workload (paper: 20K).
	QueriesPerDB int
	// Datagen configures the Section 6.2 pipeline.
	Datagen datagen.Config
	// FineTuneQueries and FineTuneEpochs control the new-DB local
	// adaptation step.
	FineTuneQueries, FineTuneEpochs int
	// SeqLevelLoss enables the Equation 3 sequence-level loss for
	// Trans_JO training.
	SeqLevelLoss bool
}

// QuickConfig is the scale used by tests and the default benches.
func QuickConfig() Config {
	m := mtmlf.DefaultConfig()
	m.Dim = 16
	m.Blocks = 1
	m.DecBlocks = 1
	m.Feat.Dim = 16
	m.Feat.Blocks = 1
	w := workload.DefaultConfig()
	w.MinTables, w.MaxTables = 3, 5
	dg := datagen.DefaultConfig()
	dg.MinTables, dg.MaxTables = 5, 7
	dg.MinRows, dg.MaxRows = 150, 500
	return Config{
		Seed:            1,
		IMDBScale:       0.08,
		TrainQueries:    300,
		TestQueries:     50,
		JoinSelQueries:  300,
		Epochs:          12,
		EncoderQueries:  40,
		EncoderEpochs:   2,
		Model:           m,
		Workload:        w,
		NumDBs:          4,
		QueriesPerDB:    80,
		Datagen:         dg,
		FineTuneQueries: 30,
		FineTuneEpochs:  6,
	}
}

// FullConfig is a larger run closer to the paper's protocol (still far
// below 150K queries; the shape of the results is what transfers).
func FullConfig() Config {
	c := QuickConfig()
	c.Model = mtmlf.DefaultConfig()
	c.Workload.MaxTables = 6
	c.IMDBScale = 0.15
	c.TrainQueries = 800
	c.TestQueries = 113
	c.JoinSelQueries = 500
	c.Epochs = 10
	c.EncoderQueries = 80
	c.EncoderEpochs = 3
	c.NumDBs = 11
	c.QueriesPerDB = 120
	c.FineTuneQueries = 30
	c.FineTuneEpochs = 3
	return c
}

// trainedModel builds, pre-trains and jointly trains one MTMLF model
// variant on a labeled workload. Each variant draws its encoder
// pre-training queries from a private generator derived from seed, so
// independent variants share no mutable state beyond the frozen
// catalog (its lazily computed statistics are behind a sync.Once) and
// can train concurrently on the worker pool with deterministic
// results.
func trainedModel(cfg Config, cat catalog.Catalog, train []*workload.LabeledQuery, wCard, wCost, wJo float64, seed int64) *mtmlf.Model {
	mc := cfg.Model
	mc.WCard, mc.WCost, mc.WJo = wCard, wCost, wJo
	m := mtmlf.NewModelCat(mc, cat, seed)
	gen := workload.NewGeneratorFrom(cat, seed+1000)
	m.Feat.PretrainAll(gen, cfg.EncoderQueries, cfg.EncoderEpochs, cfg.Workload)
	m.TrainJoint(train, mtmlf.TrainOptions{Epochs: cfg.Epochs, Seed: seed + 1, SeqLevelLoss: cfg.SeqLevelLoss})
	return m
}

// ---------------------------------------------------------------------------
// Table 1: q-errors on the JOB-like workload
// ---------------------------------------------------------------------------

// Table1Row is one method's card/cost q-error summary.
type Table1Row struct {
	Method                        string
	CardMedian, CardMax, CardMean float64
	CostMedian, CostMax, CostMean float64
	HasCard, HasCost              bool
}

// Table1Result reproduces the paper's Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 trains all Table 1 methods on the synthetic IMDB and
// reports per-node card/cost q-errors on the held-out test set.
func RunTable1(cfg Config) (*Table1Result, error) {
	db := datagen.SyntheticIMDB(cfg.Seed, cfg.IMDBScale)
	// One catalog for the whole table: the generator, the statistics
	// baseline, and every model variant share a single ANALYZE pass.
	cat := catalog.NewMemory(db)
	gen := workload.NewGeneratorFrom(cat, cfg.Seed+1)
	wcfg := cfg.Workload
	wcfg.WithOptimal = true
	all := gen.Generate(cfg.TrainQueries+cfg.TestQueries, wcfg)
	train := all[:cfg.TrainQueries]
	test := all[cfg.TrainQueries:]

	st := cat.Stats()
	cm := cost.Default()

	// Q-errors are collected over multi-table sub-plans (join nodes,
	// including the root). Single-table scans are estimated almost
	// exactly by every method at this data scale and would dilute the
	// comparison; the join distributions are where the paper's Table 1
	// gap comes from.
	isJoinNode := func(lq *workload.LabeledQuery) []bool {
		nodes := lq.Plan.Nodes()
		out := make([]bool, len(nodes))
		for i, n := range nodes {
			out[i] = !n.IsLeaf()
		}
		return out
	}

	// The five methods are independent trials — separate models,
	// separate seeds, read-only shared data — so they train (and the
	// closed-form baselines evaluate) concurrently on the worker pool.
	var pgCard, pgCost []float64
	var tlCard, tlCost []float64
	var joint, cardOnly, costOnly *mtmlf.Model
	parallel.Do(
		func() {
			// PostgreSQL baseline: per-node estimated cards via the
			// histogram model; per-node costs via the cost model over
			// those estimates.
			for _, lq := range test {
				estCard := func(tables []string) float64 { return st.EstimateSubplanCard(tables, lq.Q) }
				rows := func(name string) float64 { return float64(db.Table(name).NumRows()) }
				_, nodeCards, nodeCosts := cm.PlanCost(lq.Plan, rows, estCard)
				joins := isJoinNode(lq)
				for i := range nodeCards {
					if !joins[i] {
						continue
					}
					pgCard = append(pgCard, metrics.QError(nodeCards[i], lq.NodeCards[i]))
					pgCost = append(pgCost, metrics.QError(nodeCosts[i], lq.NodeCosts[i]))
				}
			}
		},
		func() {
			// Tree-LSTM baseline (same loss, same data).
			tlCfg := treelstm.DefaultConfig()
			tlCfg.Dim = cfg.Model.Dim
			tlCfg.MaxTables = cfg.Model.MaxTables
			tl := treelstm.New(db, tlCfg, cfg.Seed+5)
			tl.Train(train, cfg.Epochs, cfg.Seed+6)
			for _, lq := range test {
				cards, costs := tl.Predict(lq)
				joins := isJoinNode(lq)
				for i := range cards {
					if !joins[i] {
						continue
					}
					tlCard = append(tlCard, metrics.QError(cards[i], lq.NodeCards[i]))
					tlCost = append(tlCost, metrics.QError(costs[i], lq.NodeCosts[i]))
				}
			}
		},
		// MTMLF-QO (joint) and the single-task ablations.
		func() { joint = trainedModel(cfg, cat, train, 1, 1, 1, cfg.Seed+10) },
		func() { cardOnly = trainedModel(cfg, cat, train, 1, 0, 0, cfg.Seed+20) },
		func() { costOnly = trainedModel(cfg, cat, train, 0, 1, 0, cfg.Seed+30) },
	)

	evalModel := func(m *mtmlf.Model) (cq, coq []float64) {
		for _, lq := range test {
			cards := m.EstimateNodeCards(lq)
			costs := m.EstimateNodeCosts(lq)
			joins := isJoinNode(lq)
			for i := range cards {
				if !joins[i] {
					continue
				}
				cq = append(cq, metrics.QError(cards[i], lq.NodeCards[i]))
				coq = append(coq, metrics.QError(costs[i], lq.NodeCosts[i]))
			}
		}
		return cq, coq
	}
	jCard, jCost := evalModel(joint)
	aCard, _ := evalModel(cardOnly)
	_, bCost := evalModel(costOnly)

	row := func(method string, card, costq []float64, hasCard, hasCost bool) Table1Row {
		r := Table1Row{Method: method, HasCard: hasCard, HasCost: hasCost}
		if hasCard {
			s := metrics.Summarize(card)
			r.CardMedian, r.CardMax, r.CardMean = s.Median, s.Max, s.Mean
		}
		if hasCost {
			s := metrics.Summarize(costq)
			r.CostMedian, r.CostMax, r.CostMean = s.Median, s.Max, s.Mean
		}
		return r
	}
	return &Table1Result{Rows: []Table1Row{
		row("PostgreSQL", pgCard, pgCost, true, true),
		row("Tree-LSTM", tlCard, tlCost, true, true),
		row("MTMLF-QO", jCard, jCost, true, true),
		row("MTMLF-CardEst", aCard, nil, true, false),
		row("MTMLF-CostEst", nil, bCost, false, true),
	}}, nil
}

// String renders the paper-style table.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Q-errors on the JOB-like workload\n")
	fmt.Fprintf(&b, "%-16s %29s   %29s\n", "", "Cardinality", "Cost")
	fmt.Fprintf(&b, "%-16s %9s %9s %9s   %9s %9s %9s\n", "Method", "median", "max", "mean", "median", "max", "mean")
	for _, row := range r.Rows {
		card := [3]string{`\`, `\`, `\`}
		costc := [3]string{`\`, `\`, `\`}
		if row.HasCard {
			card = [3]string{f3(row.CardMedian), f3(row.CardMax), f3(row.CardMean)}
		}
		if row.HasCost {
			costc = [3]string{f3(row.CostMedian), f3(row.CostMax), f3(row.CostMean)}
		}
		fmt.Fprintf(&b, "%-16s %9s %9s %9s   %9s %9s %9s\n",
			row.Method, card[0], card[1], card[2], costc[0], costc[1], costc[2])
	}
	return b.String()
}

func f3(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// ---------------------------------------------------------------------------
// Table 2: simulated execution time under different join orders
// ---------------------------------------------------------------------------

// Table2Row is one method's total simulated time.
type Table2Row struct {
	Method      string
	TotalTime   float64
	Improvement float64 // vs the PostgreSQL baseline; baseline row is 0
	OptimalFrac float64 // fraction of test queries with the optimal order
}

// Table2Result reproduces the paper's Table 2.
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 compares join orders from the PostgreSQL-style optimizer,
// the exact optimizer (ECQO stand-in), jointly trained MTMLF-QO, and
// the JoinSel-only ablation, by total C_out simulated execution time
// on held-out queries.
func RunTable2(cfg Config) (*Table2Result, error) {
	db := datagen.SyntheticIMDB(cfg.Seed, cfg.IMDBScale)
	cat := catalog.NewMemory(db)
	gen := workload.NewGeneratorFrom(cat, cfg.Seed+2)
	wcfg := cfg.Workload
	wcfg.WithOptimal = true
	if wcfg.MaxTables > workload.MaxOptimalTables {
		wcfg.MaxTables = workload.MaxOptimalTables
	}
	all := gen.Generate(cfg.JoinSelQueries, wcfg)
	// The paper splits 20K queries 85/10/5, leaving 1000 test queries;
	// at our reduced workload size a 5% test split would be a handful
	// of queries, so we hold out 20% to keep the comparison stable.
	train, _, test := workload.Split(all, 0.75, 0.05)

	// The joint model, the JoinSel-only ablation, and the statistics
	// pass are independent; run them on the worker pool.
	var joint, joOnly *mtmlf.Model
	var st *stats.DBStats
	parallel.Do(
		func() { joint = trainedModel(cfg, cat, train, 1, 1, 1, cfg.Seed+40) },
		func() { joOnly = trainedModel(cfg, cat, train, 0, 0, 1, cfg.Seed+50) },
		func() { st = cat.Stats() },
	)

	var pgTime, optTime, jointTime, joTime float64
	var jointOpt, joOpt int
	nLabeled := 0
	for _, lq := range test {
		if len(lq.OptimalOrder) < 2 {
			continue
		}
		nLabeled++
		ex := sqldb.NewExecutor(db, lq.Q)
		// PostgreSQL: exact DP over estimated cards.
		pgRes, err := optimizer.BestLeftDeep(lq.Q, optimizer.EstimatedCards{S: st, Q: lq.Q})
		if err != nil {
			return nil, err
		}
		pgTime += cost.SimulatedTimeOrder(ex, pgRes.Order)
		// Optimal.
		optTime += cost.SimulatedTimeOrder(ex, lq.OptimalOrder)
		// MTMLF variants.
		evalJO := func(m *mtmlf.Model) (float64, bool) {
			// Serve from the no-grad KV-cached fast path (same order
			// as the grad path, bitwise).
			order := m.InferJoinOrder(lq.Q, lq.Plan)
			t := cost.SimulatedTimeOrder(ex, order)
			return t, metrics.JOEU(order, lq.OptimalOrder) == 1
		}
		tj, isOpt := evalJO(joint)
		jointTime += tj
		if isOpt {
			jointOpt++
		}
		to, isOpt2 := evalJO(joOnly)
		joTime += to
		if isOpt2 {
			joOpt++
		}
	}
	if nLabeled == 0 {
		return nil, fmt.Errorf("experiments: no labeled test queries")
	}
	fr := func(n int) float64 { return float64(n) / float64(nLabeled) }
	return &Table2Result{Rows: []Table2Row{
		{Method: "PostgreSQL", TotalTime: pgTime},
		{Method: "Optimal", TotalTime: optTime, Improvement: metrics.ImprovementRatio(pgTime, optTime), OptimalFrac: 1},
		{Method: "MTMLF-QO", TotalTime: jointTime, Improvement: metrics.ImprovementRatio(pgTime, jointTime), OptimalFrac: fr(jointOpt)},
		{Method: "MTMLF-JoinSel", TotalTime: joTime, Improvement: metrics.ImprovementRatio(pgTime, joTime), OptimalFrac: fr(joOpt)},
	}}, nil
}

// String renders the paper-style table.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: simulated execution time with different join orders\n")
	fmt.Fprintf(&b, "%-16s %14s %14s %12s\n", "JoinOrder", "Total Time", "Improvement", "Optimal%")
	for _, row := range r.Rows {
		imp := `\`
		if row.Method != "PostgreSQL" {
			imp = fmt.Sprintf("%.1f%%", row.Improvement*100)
		}
		fmt.Fprintf(&b, "%-16s %14.0f %14s %11.0f%%\n", row.Method, row.TotalTime, imp, row.OptimalFrac*100)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 3: cross-DB transferability
// ---------------------------------------------------------------------------

// Table3Row is one method's total time on the held-out database.
type Table3Row struct {
	Method      string
	TotalTime   float64
	Improvement float64
}

// Table3Result reproduces the paper's Table 3.
type Table3Result struct {
	Rows []Table3Row
}

// RunTable3 generates a fleet of databases with the Section 6.2
// pipeline, meta-trains MTMLF-QO on all but the last via Algorithm 1,
// attaches the held-out database's (F) module, fine-tunes on a small
// number of queries, and compares simulated execution time against the
// PostgreSQL baseline and an MTMLF-QO trained from scratch on the
// held-out database.
func RunTable3(cfg Config) (*Table3Result, error) {
	dbs := datagen.GenerateFleet(cfg.Seed+100, cfg.NumDBs, cfg.Datagen)
	trainDBs := dbs[:len(dbs)-1]
	testDB := dbs[len(dbs)-1]

	wcfg := cfg.Workload
	wcfg.WithOptimal = true
	// Transfer queries go one table larger than the base workload
	// (capped by each generated DB's size): larger joins leave more
	// room between good and bad orders, which is what Table 3 measures.
	wcfg.MaxTables++
	if wcfg.MaxTables > workload.MaxOptimalTables {
		wcfg.MaxTables = workload.MaxOptimalTables
	}
	mlaOpts := mtmlf.MLAOptions{
		QueriesPerDB:        cfg.QueriesPerDB,
		SingleTablePerTable: cfg.EncoderQueries,
		EncoderEpochs:       cfg.EncoderEpochs,
		JointEpochs:         cfg.Epochs,
		Workload:            wcfg,
		Seed:                cfg.Seed + 200,
	}

	// MLA pre-training on the training fleet (Algorithm 1).
	shared := mtmlf.NewShared(cfg.Model, cfg.Seed+300)
	if _, _, err := mtmlf.TrainMLA(shared, trainDBs, mlaOpts); err != nil {
		return nil, err
	}

	// Attach the held-out DB: train its (F) module, then fine-tune the
	// shared modules gently (low learning rate — the pre-trained
	// modules already transfer, and an aggressive local fit destroys
	// the meta-knowledge; see EXPERIMENTS.md).
	testTask := mtmlf.NewDBTask(shared, testDB, mlaOpts, cfg.Seed+400)
	testQueries := testTask.Queries
	nft := cfg.FineTuneQueries
	if nft > len(testQueries)/2 {
		nft = len(testQueries) / 2
	}
	ftSet := testQueries[:nft]
	evalSet := testQueries[nft:]

	// The compared models are independent trials over the same frozen
	// ftSet and run concurrently on the worker pool — except that the
	// MLA fine-tune and the `fresh` control share testTask's
	// featurizer, and a backward pass writes Grad fields on every
	// parameter it reaches, frozen or not; those two therefore run in
	// sequence inside one closure.
	var single, fresh *mtmlf.Model
	var st *stats.DBStats
	// One catalog for the held-out DB: the from-scratch control and
	// the baseline optimizer share a single ANALYZE pass (safe to
	// race on — Stats is behind a sync.Once).
	testCat := catalog.NewMemory(testDB)
	parallel.Do(
		func() {
			testTask.Model.FineTune(ftSet, cfg.FineTuneEpochs, cfg.Model.LR/10, cfg.Seed+500)
			// Second control: identical fine-tuning applied to a FRESH
			// (un-pre-trained) shared module, isolating what MLA pre-training
			// contributes beyond local adaptation.
			fresh = &mtmlf.Model{Shared: mtmlf.NewShared(cfg.Model, cfg.Seed+300), Feat: testTask.Model.Feat}
			fresh.FineTune(ftSet, cfg.FineTuneEpochs, cfg.Model.LR, cfg.Seed+700)
		},
		func() {
			// Controlled study: MTMLF-QO trained from scratch on the same
			// local workload (the held-out evaluation queries are excluded
			// from every model's training data). The paper trains its single
			// model on the test DB's own 20K-query workload; at our scale the
			// local workload IS small, which is exactly the cold-start setting
			// MTMLF targets.
			single = trainedModel(cfg, testCat, ftSet, 1, 1, 1, cfg.Seed+600)
		},
		func() { st = testCat.Stats() },
	)
	var pgTime, optTime, mlaTime, singleTime, freshTime float64
	for _, lq := range evalSet {
		if len(lq.OptimalOrder) < 2 {
			continue
		}
		ex := sqldb.NewExecutor(testDB, lq.Q)
		pgRes, err := optimizer.BestLeftDeep(lq.Q, optimizer.EstimatedCards{S: st, Q: lq.Q})
		if err != nil {
			return nil, err
		}
		pgTime += cost.SimulatedTimeOrder(ex, pgRes.Order)
		optTime += cost.SimulatedTimeOrder(ex, lq.OptimalOrder)
		timeOf := func(m *mtmlf.Model) float64 {
			return cost.SimulatedTimeOrder(ex, m.InferJoinOrder(lq.Q, lq.Plan))
		}
		mlaTime += timeOf(testTask.Model)
		singleTime += timeOf(single)
		freshTime += timeOf(fresh)
	}
	return &Table3Result{Rows: []Table3Row{
		{Method: "PostgreSQL", TotalTime: pgTime},
		{Method: "Optimal", TotalTime: optTime, Improvement: metrics.ImprovementRatio(pgTime, optTime)},
		{Method: "MTMLF-QO (MLA)", TotalTime: mlaTime, Improvement: metrics.ImprovementRatio(pgTime, mlaTime)},
		{Method: "MTMLF-QO (single)", TotalTime: singleTime, Improvement: metrics.ImprovementRatio(pgTime, singleTime)},
		{Method: "MTMLF-QO (no pre-train)", TotalTime: freshTime, Improvement: metrics.ImprovementRatio(pgTime, freshTime)},
	}}, nil
}

// String renders the paper-style table.
func (r *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: cross-DB transfer — execution time on the held-out DB\n")
	fmt.Fprintf(&b, "%-24s %14s %14s\n", "JoinOrder", "Total Time", "Improvement")
	for _, row := range r.Rows {
		imp := `\`
		if row.Method != "PostgreSQL" {
			imp = fmt.Sprintf("%.1f%%", row.Improvement*100)
		}
		fmt.Fprintf(&b, "%-24s %14.0f %14s\n", row.Method, row.TotalTime, imp)
	}
	return b.String()
}
