package experiments

import (
	"strings"
	"testing"
)

// microConfig is even smaller than QuickConfig so the full pipelines
// run in a few seconds inside unit tests.
func microConfig() Config {
	c := QuickConfig()
	c.TrainQueries = 40
	c.TestQueries = 10
	c.JoinSelQueries = 40
	c.Epochs = 2
	c.EncoderQueries = 8
	c.EncoderEpochs = 1
	c.NumDBs = 3
	c.QueriesPerDB = 10
	c.FineTuneQueries = 4
	c.FineTuneEpochs = 1
	c.IMDBScale = 0.04
	c.Workload.MaxTables = 3
	return c
}

func TestRunTable1EndToEnd(t *testing.T) {
	res, err := RunTable1(microConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("Table 1 needs 5 rows, got %d", len(res.Rows))
	}
	names := []string{"PostgreSQL", "Tree-LSTM", "MTMLF-QO", "MTMLF-CardEst", "MTMLF-CostEst"}
	for i, n := range names {
		if res.Rows[i].Method != n {
			t.Fatalf("row %d is %q, want %q", i, res.Rows[i].Method, n)
		}
	}
	for _, r := range res.Rows {
		if r.HasCard && (r.CardMedian < 1 || r.CardMax < r.CardMedian) {
			t.Fatalf("%s card summary inconsistent: %+v", r.Method, r)
		}
		if r.HasCost && (r.CostMedian < 1 || r.CostMax < r.CostMedian) {
			t.Fatalf("%s cost summary inconsistent: %+v", r.Method, r)
		}
	}
	// Single-task rows carry only their own metric, as in the paper.
	if res.Rows[3].HasCost || res.Rows[4].HasCard {
		t.Fatal("ablation rows must not report the other task")
	}
	s := res.String()
	if !strings.Contains(s, "MTMLF-QO") || !strings.Contains(s, "median") {
		t.Fatalf("rendered table malformed:\n%s", s)
	}
}

func TestRunTable2EndToEnd(t *testing.T) {
	res, err := RunTable2(microConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("Table 2 needs 4 rows, got %d", len(res.Rows))
	}
	pg, opt := res.Rows[0], res.Rows[1]
	if pg.Method != "PostgreSQL" || opt.Method != "Optimal" {
		t.Fatal("row order wrong")
	}
	// The optimal order can never be slower than any other method.
	for _, r := range res.Rows {
		if opt.TotalTime > r.TotalTime+1e-9 {
			t.Fatalf("optimal (%g) slower than %s (%g)", opt.TotalTime, r.Method, r.TotalTime)
		}
	}
	if opt.OptimalFrac != 1 {
		t.Fatal("optimal row must be 100% optimal")
	}
	// MTMLF rows are legal orders, so their time is finite and at least
	// the optimum.
	for _, r := range res.Rows[2:] {
		if r.TotalTime < opt.TotalTime-1e-9 {
			t.Fatalf("%s beat the optimum", r.Method)
		}
	}
	if s := res.String(); !strings.Contains(s, "Improvement") {
		t.Fatalf("rendered table malformed:\n%s", s)
	}
}

func TestRunTable3EndToEnd(t *testing.T) {
	res, err := RunTable3(microConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("Table 3 needs 5 rows, got %d", len(res.Rows))
	}
	names := []string{"PostgreSQL", "Optimal", "MTMLF-QO (MLA)", "MTMLF-QO (single)", "MTMLF-QO (no pre-train)"}
	for i, n := range names {
		if res.Rows[i].Method != n {
			t.Fatalf("row %d is %q", i, res.Rows[i].Method)
		}
	}
	for _, r := range res.Rows {
		if r.TotalTime <= 0 {
			t.Fatalf("%s total time %g", r.Method, r.TotalTime)
		}
	}
	if s := res.String(); !strings.Contains(s, "MLA") {
		t.Fatalf("rendered table malformed:\n%s", s)
	}
}

func TestConfigsSane(t *testing.T) {
	q, f := QuickConfig(), FullConfig()
	if q.TrainQueries >= f.TrainQueries {
		t.Fatal("full config must be larger than quick")
	}
	if q.Model.Dim <= 0 || q.Workload.MaxTables < q.Workload.MinTables {
		t.Fatal("quick config malformed")
	}
}
