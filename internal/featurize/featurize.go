// Package featurize implements the MTMLF (F) featurization and
// encoding module (Figure 2, F.i–F.ii): predicate featurization into
// fixed-width token vectors, and the per-table transformer encoders
// Enc_i that summarize each table's filtered data distribution. All
// database-specific knowledge — value distributions, column layouts —
// lives here, which is exactly what the paper's meta-learning argument
// requires: swapping this module retargets a pre-trained (S)+(T) stack
// to a new database.
package featurize

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"mtmlf/internal/ag"
	"mtmlf/internal/catalog"
	"mtmlf/internal/nn"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/stats"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

// Config sizes the featurization.
type Config struct {
	// Dim is the model dimension d shared with the (S)/(T) modules.
	Dim int
	// Heads and Blocks configure each Enc_i transformer (paper: 4
	// heads, 3 blocks; tests use smaller).
	Heads, Blocks int
	// MaxCols is the number of hash slots for column identity.
	MaxCols int
	// CharDims is the width of the hashed character-trigram bag used
	// for string/LIKE values.
	CharDims int
	// LR is the Adam learning rate for encoder pre-training.
	LR float64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Dim: 32, Heads: 2, Blocks: 2, MaxCols: 8, CharDims: 12, LR: 1e-3}
}

// TokenWidth returns the raw filter-token width: column slots +
// operators + (value, isNumeric) + char bag + 3 pattern flags +
// 2 statistic features (the ANALYZE-estimated selectivity of the
// predicate and the log table size, following the featurization of
// the papers cited for F.i [Neo; Sun & Li], which feed traditional
// estimator outputs to the model as hints).
func (c Config) TokenWidth() int { return c.MaxCols + 7 + 2 + c.CharDims + 3 + 2 }

// TableEncoder is one Enc_i: a learned CLS token, a projection from
// raw filter tokens into model space, a transformer encoder, and a
// log-cardinality head used for its single-table pre-training task.
type TableEncoder struct {
	Proj *nn.Linear
	CLS  *ag.Value
	Enc  *nn.Encoder
	Head *nn.MLP
}

// Params implements nn.Module.
func (e *TableEncoder) Params() []*ag.Value {
	out := []*ag.Value{e.CLS}
	out = append(out, e.Proj.Params()...)
	out = append(out, e.Enc.Params()...)
	out = append(out, e.Head.Params()...)
	return out
}

// Featurizer is the per-database (F) module.
type Featurizer struct {
	DB    *sqldb.DB
	Stats *stats.DBStats
	Cfg   Config
	Encs  map[string]*TableEncoder
}

// New builds a featurizer with freshly initialized encoders for every
// table of an in-memory database.
func New(db *sqldb.DB, cfg Config, seed int64) *Featurizer {
	return NewFrom(catalog.NewMemory(db), cfg, seed)
}

// NewFrom builds a featurizer over any catalog backend, reusing the
// catalog's (computed-once) ANALYZE statistics. Initialization draws
// depend only on seed and the table order, so identical catalogs —
// e.g. a database and its corpus round trip — yield bitwise-identical
// encoders.
func NewFrom(cat catalog.Catalog, cfg Config, seed int64) *Featurizer {
	rng := rand.New(rand.NewSource(seed))
	db := cat.DB()
	f := &Featurizer{
		DB:    db,
		Stats: cat.Stats(),
		Cfg:   cfg,
		Encs:  map[string]*TableEncoder{},
	}
	for _, t := range db.Tables {
		f.Encs[t.Name] = &TableEncoder{
			Proj: nn.NewLinear(rng, cfg.TokenWidth(), cfg.Dim),
			CLS:  ag.Param(tensor.RandNorm(rng, 1, cfg.Dim, 0.02)),
			Enc:  nn.NewEncoder(rng, cfg.Dim, cfg.Heads, cfg.Blocks),
			Head: nn.NewMLP(rng, nn.ActGELU, cfg.Dim, cfg.Dim, 1),
		}
	}
	return f
}

// FilterToken builds the raw feature vector of one filter predicate
// (F.i): hashed column slot, operator one-hot, normalized numeric
// value, hashed character trigrams for string values, and LIKE
// pattern-shape flags.
func (f *Featurizer) FilterToken(flt sqldb.Filter) []float64 {
	cfg := f.Cfg
	w := make([]float64, cfg.TokenWidth())
	w[hashString(flt.Col)%uint32(cfg.MaxCols)] = 1
	off := cfg.MaxCols
	w[off+int(flt.Op)] = 1
	off += 7
	// Normalized numeric value.
	if flt.Val.Kind != sqldb.KindString {
		w[off] = f.normalizeValue(flt)
		w[off+1] = 1
	}
	off += 2
	// Character trigram bag for strings (both = and LIKE).
	if flt.Val.Kind == sqldb.KindString {
		s := flt.Val.S
		for i := 0; i+3 <= len(s); i++ {
			tri := s[i : i+3]
			if tri[0] == '%' || tri[1] == '%' || tri[2] == '%' {
				continue
			}
			w[off+int(hashString(tri)%uint32(cfg.CharDims))] += 1
		}
		// L2-normalize the bag.
		var norm float64
		for i := 0; i < cfg.CharDims; i++ {
			norm += w[off+i] * w[off+i]
		}
		if norm > 0 {
			norm = math.Sqrt(norm)
			for i := 0; i < cfg.CharDims; i++ {
				w[off+i] /= norm
			}
		}
	}
	off += cfg.CharDims
	// LIKE pattern shape flags: leading %, trailing %, wildcard count.
	if flt.Op == sqldb.OpLike {
		p := flt.Val.S
		if len(p) > 0 && p[0] == '%' {
			w[off] = 1
		}
		if len(p) > 0 && p[len(p)-1] == '%' {
			w[off+1] = 1
		}
		wc := 0
		for i := 0; i < len(p); i++ {
			if p[i] == '%' || p[i] == '_' {
				wc++
			}
		}
		w[off+2] = float64(wc) / 4
	}
	off += 3
	// Statistic hints: ANALYZE-estimated selectivity and log table size.
	w[off] = f.Stats.Selectivity(flt)
	if ts, ok := f.Stats.Tables[flt.Table]; ok {
		w[off+1] = math.Log(float64(ts.RowCount)+1) / 20
	}
	return w
}

// normalizeValue min-max normalizes a numeric comparison value using
// the ANALYZE statistics.
func (f *Featurizer) normalizeValue(flt sqldb.Filter) float64 {
	ts, ok := f.Stats.Tables[flt.Table]
	if !ok {
		return 0.5
	}
	cs, ok := ts.Cols[flt.Col]
	if !ok || cs.Max <= cs.Min {
		return 0.5
	}
	var v float64
	if flt.Val.Kind == sqldb.KindInt {
		v = float64(flt.Val.I)
	} else {
		v = flt.Val.F
	}
	x := (v - cs.Min) / (cs.Max - cs.Min)
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return x
}

// EncodeTable runs Enc_i over the filters applying to one table and
// returns E(f(T_i)) — a [1, Dim] representation of the table's
// filtered distribution (F.ii). With no filters it encodes the
// unfiltered distribution (the CLS token alone).
func (f *Featurizer) EncodeTable(table string, filters []sqldb.Filter) *ag.Value {
	enc, ok := f.Encs[table]
	if !ok {
		panic(fmt.Sprintf("featurize: unknown table %q", table))
	}
	rows := []*ag.Value{enc.CLS}
	if len(filters) > 0 {
		raw := tensor.New(len(filters), f.Cfg.TokenWidth())
		for i, flt := range filters {
			copy(raw.Row(i), f.FilterToken(flt))
		}
		rows = append(rows, enc.Proj.Forward(ag.Const(raw)))
	}
	seq := ag.ConcatRows(rows...)
	out := enc.Enc.Forward(seq, nil)
	return ag.SliceRows(out, 0, 1)
}

// EncodeTableInfer is the no-grad twin of EncodeTable on the Eval
// fast path: same kernels, no graph, pooled intermediates. Output is
// bitwise identical to EncodeTable's forward result.
func (f *Featurizer) EncodeTableInfer(e *ag.Eval, table string, filters []sqldb.Filter) *tensor.Tensor {
	enc, ok := f.Encs[table]
	if !ok {
		panic(fmt.Sprintf("featurize: unknown table %q", table))
	}
	seq := enc.CLS.T
	if len(filters) > 0 {
		raw := e.Get(len(filters), f.Cfg.TokenWidth())
		for i, flt := range filters {
			copy(raw.Row(i), f.FilterToken(flt))
		}
		seq = e.ConcatRows(enc.CLS.T, enc.Proj.Infer(e, raw))
	}
	out := enc.Enc.Infer(e, seq, nil)
	return e.RowsView(out, 0, 1)
}

// PredictLogCard runs the single-table CardEst head of Enc_i — its
// pre-training task ("E_i learns the data distribution of T_i through
// predicting the cardinality of filter predicate f(T_i)").
func (f *Featurizer) PredictLogCard(table string, filters []sqldb.Filter) *ag.Value {
	e := f.EncodeTable(table, filters)
	return f.Encs[table].Head.Forward(e)
}

// PretrainResult reports one encoder's pre-training outcome.
type PretrainResult struct {
	Table     string
	FinalLoss float64
	Steps     int
}

// PretrainEncoder trains one Enc_i on labeled single-table queries by
// minimizing |log ĉ − log c| (log q-error). Returns the final
// running-average loss.
func (f *Featurizer) PretrainEncoder(table string, data []workload.SingleTableQuery, epochs int) PretrainResult {
	enc := f.Encs[table]
	opt := nn.NewAdam(enc.Params(), f.Cfg.LR)
	var running float64
	steps := 0
	for ep := 0; ep < epochs; ep++ {
		for _, q := range data {
			opt.ZeroGrad()
			pred := f.PredictLogCard(table, q.Filters)
			target := ag.Scalar(math.Log(q.Card))
			loss := ag.MeanAll(ag.Abs(ag.Sub(pred, target)))
			loss.Backward()
			opt.Step()
			running = 0.95*running + 0.05*loss.Item()
			steps++
		}
	}
	return PretrainResult{Table: table, FinalLoss: running, Steps: steps}
}

// PretrainAll trains every table encoder on freshly generated
// single-table workloads (Algorithm 1 line 4). It is the live twin of
// PretrainAllFrom: the workloads are drawn from gen (in table order,
// one rng stream) and consumed immediately instead of being loaded
// from a corpus. Encoder training consumes no randomness, so
// generate-then-train here is bitwise identical to the historical
// interleaved loop.
func (f *Featurizer) PretrainAll(gen *workload.Generator, perTable, epochs int, cfg workload.Config) []PretrainResult {
	out, err := f.PretrainAllFrom(gen.GenPretrainSet(perTable, cfg), epochs)
	if err != nil {
		// Unreachable: the set was generated from this featurizer's own
		// table list.
		panic(err)
	}
	return out
}

// PretrainAllFrom trains the table encoders on pre-generated
// single-table workloads — the corpus v2 path, where the data was
// produced once at datagen time (workload.Generator.GenPretrainSet)
// and shipped in the artifact, so a training run skips the live (F)
// generation pass entirely. Training from a stored set is bitwise
// identical to PretrainAll over the generator that produced it.
//
// The set must cover every table exactly once: an encoder a partial
// section silently skipped would serve from its random
// initialization, the failure class this module's checkpoint
// validation exists to prevent — so unknown, duplicate, and missing
// tables are all errors, and no encoder is touched before the set
// validates.
func (f *Featurizer) PretrainAllFrom(data []workload.TableWorkload, epochs int) ([]PretrainResult, error) {
	seen := make(map[string]bool, len(data))
	for _, tw := range data {
		if _, ok := f.Encs[tw.Table]; !ok {
			return nil, fmt.Errorf("featurize: pre-training data for unknown table %q", tw.Table)
		}
		if seen[tw.Table] {
			return nil, fmt.Errorf("featurize: duplicate pre-training data for table %q", tw.Table)
		}
		seen[tw.Table] = true
	}
	for _, t := range f.DB.Tables {
		if !seen[t.Name] {
			return nil, fmt.Errorf("featurize: pre-training data missing table %q (%d tables covered, database has %d)",
				t.Name, len(data), len(f.DB.Tables))
		}
	}
	out := make([]PretrainResult, 0, len(data))
	for _, tw := range data {
		out = append(out, f.PretrainEncoder(tw.Table, tw.Queries, epochs))
	}
	return out, nil
}

// Params returns all encoder parameters (the database-specific
// parameter set, excluded from cross-DB transfer).
func (f *Featurizer) Params() []*ag.Value {
	var out []*ag.Value
	for _, t := range f.DB.Tables { // stable order
		out = append(out, f.Encs[t.Name].Params()...)
	}
	return out
}

func hashString(s string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	return h.Sum32()
}
