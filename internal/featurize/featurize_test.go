package featurize

import (
	"math"
	"testing"

	"mtmlf/internal/datagen"
	"mtmlf/internal/metrics"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/workload"
)

func smallDB() *sqldb.DB { return datagen.SyntheticIMDB(3, 0.05) }

func smallConfig() Config {
	c := DefaultConfig()
	c.Dim = 16
	c.Blocks = 1
	return c
}

func TestFilterTokenWidthAndSlots(t *testing.T) {
	f := New(smallDB(), smallConfig(), 1)
	tok := f.FilterToken(sqldb.Filter{
		Table: "title", Col: "production_year",
		Op: sqldb.OpLt, Val: sqldb.IntVal(1950),
	})
	if len(tok) != f.Cfg.TokenWidth() {
		t.Fatalf("token width %d, want %d", len(tok), f.Cfg.TokenWidth())
	}
	// Operator one-hot set at the right slot.
	opSlot := f.Cfg.MaxCols + int(sqldb.OpLt)
	if tok[opSlot] != 1 {
		t.Fatal("operator slot not set")
	}
	// Numeric flag set, value normalized to [0,1].
	vSlot := f.Cfg.MaxCols + 7
	if tok[vSlot] < 0 || tok[vSlot] > 1 || tok[vSlot+1] != 1 {
		t.Fatalf("numeric value slots wrong: %v %v", tok[vSlot], tok[vSlot+1])
	}
}

func TestFilterTokenLikeFlags(t *testing.T) {
	f := New(smallDB(), smallConfig(), 1)
	tok := f.FilterToken(sqldb.Filter{
		Table: "title", Col: "title",
		Op: sqldb.OpLike, Val: sqldb.StrVal("%Dark%"),
	})
	base := f.Cfg.MaxCols + 7 + 2 + f.Cfg.CharDims
	if tok[base] != 1 || tok[base+1] != 1 {
		t.Fatal("leading/trailing %% flags not set")
	}
	if tok[base+2] <= 0 {
		t.Fatal("wildcard count feature not set")
	}
	// Character bag populated and L2-normalized.
	var norm float64
	for i := 0; i < f.Cfg.CharDims; i++ {
		norm += tok[f.Cfg.MaxCols+9+i] * tok[f.Cfg.MaxCols+9+i]
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("char bag norm %g, want 1", norm)
	}
}

func TestNormalizeValueClamps(t *testing.T) {
	f := New(smallDB(), smallConfig(), 1)
	lo := f.normalizeValue(sqldb.Filter{Table: "title", Col: "production_year", Val: sqldb.IntVal(-10000)})
	hi := f.normalizeValue(sqldb.Filter{Table: "title", Col: "production_year", Val: sqldb.IntVal(99999)})
	if lo != 0 || hi != 1 {
		t.Fatalf("clamping wrong: %g %g", lo, hi)
	}
	if got := f.normalizeValue(sqldb.Filter{Table: "nope", Col: "x", Val: sqldb.IntVal(1)}); got != 0.5 {
		t.Fatal("unknown table must return neutral 0.5")
	}
}

func TestEncodeTableShapes(t *testing.T) {
	db := smallDB()
	f := New(db, smallConfig(), 1)
	// No filters: CLS only.
	e := f.EncodeTable("title", nil)
	if e.Rows() != 1 || e.Cols() != f.Cfg.Dim {
		t.Fatalf("encoding shape %v", e.T.Shape)
	}
	// With filters.
	e2 := f.EncodeTable("title", []sqldb.Filter{
		{Table: "title", Col: "production_year", Op: sqldb.OpGt, Val: sqldb.IntVal(1950)},
	})
	if e2.Rows() != 1 || e2.Cols() != f.Cfg.Dim {
		t.Fatalf("filtered encoding shape %v", e2.T.Shape)
	}
	// Different filters must produce different encodings.
	e3 := f.EncodeTable("title", []sqldb.Filter{
		{Table: "title", Col: "production_year", Op: sqldb.OpLt, Val: sqldb.IntVal(1900)},
	})
	diff := 0.0
	for i := range e2.T.Data {
		diff += math.Abs(e2.T.Data[i] - e3.T.Data[i])
	}
	if diff < 1e-9 {
		t.Fatal("different filters encoded identically")
	}
}

func TestEncodeUnknownTablePanics(t *testing.T) {
	f := New(smallDB(), smallConfig(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.EncodeTable("not_a_table", nil)
}

// TestPretrainEncoderLearns verifies the Enc_i single-table CardEst
// pre-training reduces q-error versus an untrained encoder.
func TestPretrainEncoderLearns(t *testing.T) {
	db := smallDB()
	f := New(db, smallConfig(), 2)
	gen := workload.NewGenerator(db, 3)
	cfg := workload.DefaultConfig()
	train := gen.GenSingleTable("title", 60, cfg)
	test := gen.GenSingleTable("title", 30, cfg)

	qerr := func() float64 {
		var qs []float64
		for _, q := range test {
			pred := math.Exp(f.PredictLogCard("title", q.Filters).Item())
			qs = append(qs, metrics.QError(pred, q.Card))
		}
		return metrics.Summarize(qs).Median
	}
	before := qerr()
	res := f.PretrainEncoder("title", train, 8)
	after := qerr()
	if res.Steps != 8*60 {
		t.Fatalf("steps %d", res.Steps)
	}
	if after >= before {
		t.Fatalf("pre-training did not improve: before %g, after %g", before, after)
	}
	// A trained encoder should be decent on this easy task.
	if after > 5 {
		t.Fatalf("median q-error after training %g too high", after)
	}
}

func TestParamsStableOrder(t *testing.T) {
	db := smallDB()
	f1 := New(db, smallConfig(), 7)
	f2 := New(db, smallConfig(), 7)
	p1, p2 := f1.Params(), f2.Params()
	if len(p1) == 0 || len(p1) != len(p2) {
		t.Fatalf("param counts %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i].T.Size() != p2[i].T.Size() {
			t.Fatal("param order unstable across constructions")
		}
	}
}

// TestPretrainAllFromMatchesLive: the cached-pretrain contract of the
// corpus v2 data plane — training the encoders from a stored
// single-table set (PretrainAllFrom) is bitwise identical to
// pre-training live from the generator that produced it
// (PretrainAll), and rejects data for unknown tables.
func TestPretrainAllFromMatchesLive(t *testing.T) {
	db := smallDB()
	cfg := workload.DefaultConfig()

	live := New(db, smallConfig(), 9)
	liveRes := live.PretrainAll(workload.NewGenerator(db, 10), 6, 2, cfg)

	stored := New(db, smallConfig(), 9)
	data := workload.NewGenerator(db, 10).GenPretrainSet(6, cfg)
	storedRes, err := stored.PretrainAllFrom(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(liveRes) != len(storedRes) {
		t.Fatalf("result counts differ: %d vs %d", len(liveRes), len(storedRes))
	}
	for i := range liveRes {
		if liveRes[i].Table != storedRes[i].Table || liveRes[i].Steps != storedRes[i].Steps ||
			math.Float64bits(liveRes[i].FinalLoss) != math.Float64bits(storedRes[i].FinalLoss) {
			t.Fatalf("result %d differs: %+v vs %+v", i, liveRes[i], storedRes[i])
		}
	}
	pa, pb := live.Params(), stored.Params()
	if len(pa) == 0 || len(pa) != len(pb) {
		t.Fatalf("param counts %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		for j := range pa[i].T.Data {
			if math.Float64bits(pa[i].T.Data[j]) != math.Float64bits(pb[i].T.Data[j]) {
				t.Fatalf("parameter %d differs between live and stored pre-training", i)
			}
		}
	}

	if _, err := stored.PretrainAllFrom([]workload.TableWorkload{{Table: "no_such_table"}}, 1); err == nil {
		t.Fatal("expected error for unknown table")
	}
	// A partial set must fail up front — a silently skipped encoder
	// would serve from its random initialization.
	if _, err := stored.PretrainAllFrom(data[:1], 1); err == nil {
		t.Fatal("expected error for partial coverage")
	}
	dup := append(append([]workload.TableWorkload{}, data...), data[0])
	if _, err := stored.PretrainAllFrom(dup, 1); err == nil {
		t.Fatal("expected error for duplicate table")
	}
}
