// Reduced-precision replica of the (F) module for serving.
//
// Lowering keeps only the serving surface of each Enc_i — the CLS
// token, the token projection, and the transformer — and drops the
// single-table pre-training Head, which never runs at serve time. The
// raw FilterToken features stay float64 (they are exact featurization
// outputs, cheap, and shared with the reference path) and are rounded
// to float32 at the projection input.
package featurize

import (
	"fmt"
	"sort"

	"mtmlf/internal/ag"
	"mtmlf/internal/nn"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
)

// TableEncoderF32 is a lowered Enc_i serving replica.
type TableEncoderF32 struct {
	Proj *nn.LinearF32
	CLS  *tensor.F32
	Enc  *nn.EncoderF32
}

// Bytes returns the resident weight bytes of the lowered encoder.
func (e *TableEncoderF32) Bytes() int {
	return e.Proj.Bytes() + e.CLS.Bytes() + e.Enc.Bytes()
}

// FeaturizerF32 pairs a source featurizer (for the raw FilterToken
// pipeline and the statistics) with lowered per-table encoders.
type FeaturizerF32 struct {
	Src  *Featurizer
	Encs map[string]*TableEncoderF32
}

// Lower builds a reduced-precision serving replica of f at precision p.
func (f *Featurizer) Lower(p nn.Precision) *FeaturizerF32 {
	lf := &FeaturizerF32{Src: f, Encs: make(map[string]*TableEncoderF32, len(f.Encs))}
	for _, name := range f.tableNames() {
		enc := f.Encs[name]
		lf.Encs[name] = &TableEncoderF32{
			Proj: nn.LowerLinear(enc.Proj, p),
			CLS:  tensor.F32FromTensor(enc.CLS.T),
			Enc:  nn.LowerEncoder(enc.Enc, p),
		}
	}
	return lf
}

// tableNames returns the encoder map's keys in sorted order (map
// iteration is forbidden in determinism-critical packages).
func (f *Featurizer) tableNames() []string {
	names := make([]string, 0, len(f.Encs))
	for name := range f.Encs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// EncodeTableInfer is the lowered twin of Featurizer.EncodeTableInfer:
// Enc_i over the filters applying to one table, returning a [1, Dim]
// row owned by e.
func (f *FeaturizerF32) EncodeTableInfer(e *ag.EvalF32, table string, filters []sqldb.Filter) *tensor.F32 {
	enc, ok := f.Encs[table]
	if !ok {
		panic(fmt.Sprintf("featurize: unknown table %q", table))
	}
	seq := enc.CLS
	if len(filters) > 0 {
		raw := e.Get(len(filters), f.Src.Cfg.TokenWidth())
		for i, flt := range filters {
			row := raw.Row(i)
			for j, v := range f.Src.FilterToken(flt) {
				row[j] = float32(v)
			}
		}
		seq = e.ConcatRows(enc.CLS, enc.Proj.Infer(e, raw))
	}
	out := enc.Enc.Infer(e, seq, nil)
	return e.RowsView(out, 0, 1)
}

// Bytes returns the resident weight bytes of all lowered encoders.
func (f *FeaturizerF32) Bytes() int {
	n := 0
	for _, name := range f.Src.tableNames() {
		n += f.Encs[name].Bytes()
	}
	return n
}
