// Package inferbench holds the serving-path benchmark scenarios that
// are measured twice: by the root `go test -bench` harness and by the
// `mtmlf-bench -json` report (BENCH_PR2.json). Both import the bodies
// from here so the two surfaces always measure the same workload —
// if they drifted, the accumulated perf trajectory would silently
// stop describing the benchmarks it is named after.
package inferbench

import (
	"testing"

	"mtmlf/internal/ag"
	"mtmlf/internal/datagen"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/plan"
	"mtmlf/internal/workload"
)

// Setup builds the standard benchmark model and 4-table labeled query
// (the scale the Figure 2 pipeline benches have always used).
func Setup() (*mtmlf.Model, *workload.LabeledQuery) {
	db := datagen.SyntheticIMDB(1, 0.05)
	cfg := mtmlf.DefaultConfig()
	cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
	cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
	m := mtmlf.NewModel(cfg, db, 1)
	gen := workload.NewGenerator(db, 2)
	wcfg := workload.DefaultConfig()
	wcfg.MinTables, wcfg.MaxTables = 4, 4
	return m, gen.Generate(1, wcfg)[0]
}

// Figure4Tree is the paper's Figure 4 left-deep example.
func Figure4Tree() *plan.Node {
	return plan.NewJoin(plan.HashJoin,
		plan.NewJoin(plan.HashJoin,
			plan.NewJoin(plan.HashJoin, plan.Leaf("T1", plan.SeqScan), plan.Leaf("T2", plan.SeqScan)),
			plan.Leaf("T3", plan.SeqScan)),
		plan.Leaf("T4", plan.SeqScan))
}

// BeamSearchCached is the KV-cached incremental constrained beam
// search at width k.
func BeamSearchCached(m *mtmlf.Model, lq *workload.LabeledQuery, k int) func(b *testing.B) {
	rep := m.Represent(lq.Q, lq.Plan)
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := m.Shared.JO.BeamSearch(rep.Memory, lq.Q, k, true); len(res) == 0 {
				b.Fatal("no candidates")
			}
		}
	}
}

// BeamSearchLegacy is the pre-fast-path full-prefix recompute search.
func BeamSearchLegacy(m *mtmlf.Model, lq *workload.LabeledQuery, k int) func(b *testing.B) {
	rep := m.Represent(lq.Q, lq.Plan)
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := m.Shared.JO.BeamSearchLegacy(rep.Memory, lq.Q, k, true); len(res) == 0 {
				b.Fatal("no candidates")
			}
		}
	}
}

// Figure4Pooled is the Section 4.1 tree↔seq roundtrip on the pooled
// codec (reused EmbeddingSet + NodeArena).
func Figure4Pooled() func(b *testing.B) {
	tree := Figure4Tree()
	return func(b *testing.B) {
		set := &plan.EmbeddingSet{}
		arena := &plan.NodeArena{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			arena.Reset()
			if err := plan.DecodingEmbeddingsInto(tree, 8, set); err != nil {
				b.Fatal(err)
			}
			if _, err := plan.TreeFromEmbeddingSet(set, arena); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Figure4Legacy is the same roundtrip on the map-allocating codec.
func Figure4Legacy() func(b *testing.B) {
	tree := Figure4Tree()
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			emb, err := plan.DecodingEmbeddings(tree, 8)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := plan.TreeFromEmbeddings(emb); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// InferGrad is one (F)+(S)+heads forward pass in grad mode.
func InferGrad(m *mtmlf.Model, lq *workload.LabeledQuery) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep := m.Represent(lq.Q, lq.Plan)
			_ = m.PredictLogCards(rep)
			_ = m.PredictLogCosts(rep)
		}
	}
}

// InferNoGrad is the same pass on the pooled no-grad evaluator.
func InferNoGrad(m *mtmlf.Model, lq *workload.LabeledQuery) func(b *testing.B) {
	return func(b *testing.B) {
		e := ag.AcquireEval()
		defer ag.ReleaseEval(e)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep := m.RepresentInfer(e, lq.Q, lq.Plan)
			_ = m.PredictLogCardsInfer(e, rep)
			_ = m.PredictLogCostsInfer(e, rep)
			e.Reset()
		}
	}
}
