package loadgen

import (
	"math/bits"
	"time"
)

// Histogram is an HDR-style latency histogram: log-linear buckets
// with 32 linear sub-buckets per power-of-two octave, giving a fixed
// relative error of at most 1/32 (~3%) at every magnitude from 1µs to
// ~584000 years, in a constant 1.9K-bucket footprint. Recording is a
// few integer ops — no allocation, no sorting — so the generator's
// hot loop can record every request; percentiles are computed on
// demand by walking the buckets. The zero value is ready to use. Not
// safe for concurrent use; each worker records into its own and the
// results are Merged.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    time.Duration
	max    time.Duration
}

// histBuckets covers magnitudes up to 64 bits: values < 32µs get an
// exact bucket each, larger ones 32 sub-buckets per octave.
const histBuckets = 32 + (64-5)*32

// bucketIndex maps a microsecond value to its bucket.
func bucketIndex(us uint64) int {
	if us < 32 {
		return int(us)
	}
	m := bits.Len64(us)         // ≥ 6
	sub := (us >> (m - 6)) & 31 // 5 bits below the leading 1
	return (m-5)*32 + int(sub)
}

// bucketUpper is the largest microsecond value mapping to bucket i
// (the value percentiles report, so estimates never understate).
func bucketUpper(i int) uint64 {
	if i < 32 {
		return uint64(i)
	}
	m := i/32 + 5
	sub := uint64(i%32) | 32 // restore the leading 1
	return (sub+1)<<(m-6) - 1
}

// Record adds one observed latency.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(uint64(d/time.Microsecond))]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count }

// Max returns the largest recorded value (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return h.max }

// Mean returns the arithmetic mean of recorded values (exact).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Percentile returns the value at quantile p in [0,1] — the upper
// bound of the bucket holding the ceil(p·count)-th observation,
// clamped to the exact max. Zero when empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p >= 1 {
		return h.max
	}
	if p < 0 {
		p = 0
	}
	target := uint64(p*float64(h.count) + 0.5)
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			v := time.Duration(bucketUpper(i)) * time.Microsecond
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// PercentileMs is Percentile in float milliseconds (report units).
func (h *Histogram) PercentileMs(p float64) float64 {
	return float64(h.Percentile(p)) / float64(time.Millisecond)
}
