package loadgen

import (
	"testing"
	"time"
)

// TestHistogramBucketBounds: every value lands in a bucket whose
// upper bound is ≥ the value and within the advertised 1/32 relative
// error (exact below 32µs).
func TestHistogramBucketBounds(t *testing.T) {
	vals := []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 4095, 4096, 1 << 20, 1<<40 + 12345}
	for _, v := range vals {
		i := bucketIndex(v)
		up := bucketUpper(i)
		if up < v {
			t.Fatalf("value %d: bucket upper %d understates", v, up)
		}
		if v < 32 {
			if up != v {
				t.Fatalf("value %d below 32µs must be exact, got upper %d", v, up)
			}
			continue
		}
		if up-v > v/32 {
			t.Fatalf("value %d: bucket upper %d exceeds 1/32 relative error", v, up)
		}
	}
	// Bucket uppers are monotone — no value can sort into a lower
	// percentile than a smaller value.
	prev := uint64(0)
	for i := 1; i < histBuckets; i++ {
		if u := bucketUpper(i); u <= prev {
			t.Fatalf("bucketUpper not monotone at %d: %d <= %d", i, u, prev)
		} else {
			prev = u
		}
	}
}

// TestHistogramPercentiles: a uniform 1..1000µs population reports
// percentiles within the bucket error bound, and max/mean are exact.
func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for us := 1; us <= 1000; us++ {
		h.Record(time.Duration(us) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != 1000*time.Microsecond {
		t.Fatalf("max %v", h.Max())
	}
	if h.Mean() != 500*time.Microsecond+500*time.Nanosecond {
		t.Fatalf("mean %v", h.Mean())
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := h.Percentile(tc.p)
		if got < tc.want {
			t.Fatalf("p%v = %v understates %v", tc.p*100, got, tc.want)
		}
		if limit := tc.want + tc.want/16; got > limit {
			t.Fatalf("p%v = %v, want <= %v", tc.p*100, got, limit)
		}
	}
	if h.Percentile(1.0) != h.Max() {
		t.Fatalf("p100 %v != max %v", h.Percentile(1.0), h.Max())
	}
	if h.Percentile(-1) != h.Percentile(0) {
		t.Fatal("negative quantile must clamp to 0")
	}
}

// TestHistogramMerge: merging shards is equivalent to recording
// everything into one histogram.
func TestHistogramMerge(t *testing.T) {
	var all, a, b Histogram
	for us := 1; us <= 2000; us++ {
		d := time.Duration(us) * time.Microsecond
		all.Record(d)
		if us%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Max() != all.Max() || a.Mean() != all.Mean() {
		t.Fatalf("merge count/max/mean diverge: %d/%v/%v vs %d/%v/%v",
			a.Count(), a.Max(), a.Mean(), all.Count(), all.Max(), all.Mean())
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 1.0} {
		if a.Percentile(p) != all.Percentile(p) {
			t.Fatalf("p%v diverges after merge: %v vs %v", p*100, a.Percentile(p), all.Percentile(p))
		}
	}
}

// TestHistogramEmpty: the zero value reports zeros, not panics.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Percentile(0.99) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}
