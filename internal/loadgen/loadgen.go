// Package loadgen is the production load harness for the serving
// stack: it drives the mtmlf-serve HTTP endpoints (/estimate/card,
// /estimate/cost, /joinorder) with a configurable traffic mix,
// Zipf-skewed query popularity over a pre-built query pool, and
// either a closed loop (N workers, each firing its next request the
// moment the previous answer lands — models N waiting DBMS backends)
// or an open loop (requests dispatched at a fixed arrival rate
// regardless of completions — models independent clients, and unlike
// the closed loop it exposes queueing collapse, because arrivals
// don't slow down when the server does).
//
// Every request's latency lands in an HDR-style histogram
// (Histogram); results aggregate per endpoint and export as
// benchjson.LoadEntry records for the BENCH_PR6.json trajectory.
// Overload shedding (429) and deadline misses (504) are counted
// separately from errors: for a server under deliberate overload they
// are correct behavior, and the split is what lets the smoke test
// assert "zero failed requests" while still pushing past capacity.
//
// The query pool comes from the same generators the server's training
// corpus did — SyntheticPool mirrors mtmlf-serve's schema flags, and
// CorpusPool replays labeled queries straight out of a corpus
// artifact — so offered load has the same shape as training load, and
// a Zipf pick over the pool models the few-hot-queries/long-tail
// popularity of a production plan cache.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mtmlf/internal/benchjson"
	"mtmlf/internal/corpus"
	"mtmlf/internal/plan"
	"mtmlf/internal/serve"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/workload"
)

// Endpoint paths driven by the generator, in report order.
var endpointPaths = map[string]string{
	"card":      "/estimate/card",
	"cost":      "/estimate/cost",
	"joinorder": "/joinorder",
}

// EndpointOrder fixes the reporting order of endpoints.
var EndpointOrder = []string{"card", "cost", "joinorder"}

// Mix is the traffic mix as relative integer weights.
type Mix struct {
	Card, Cost, JoinOrder int
}

// DefaultMix mirrors a plan-optimization session: estimates dominate,
// join ordering is the occasional expensive call.
func DefaultMix() Mix { return Mix{Card: 50, Cost: 30, JoinOrder: 20} }

// ParseMix parses "card=50,cost=30,joinorder=20" (missing endpoints
// get weight 0; at least one weight must be positive).
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("loadgen: mix term %q is not name=weight", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || w < 0 {
			return m, fmt.Errorf("loadgen: mix weight %q must be a non-negative integer", v)
		}
		switch strings.TrimSpace(k) {
		case "card":
			m.Card = w
		case "cost":
			m.Cost = w
		case "joinorder":
			m.JoinOrder = w
		default:
			return m, fmt.Errorf("loadgen: unknown endpoint %q (want card, cost, joinorder)", k)
		}
	}
	if m.Card+m.Cost+m.JoinOrder <= 0 {
		return m, fmt.Errorf("loadgen: mix %q has no positive weight", s)
	}
	return m, nil
}

// Weight returns the weight of a named endpoint.
func (m Mix) Weight(ep string) int {
	switch ep {
	case "card":
		return m.Card
	case "cost":
		return m.Cost
	default:
		return m.JoinOrder
	}
}

// pick draws an endpoint name from the mix.
func (m Mix) pick(rng *rand.Rand) string {
	total := m.Card + m.Cost + m.JoinOrder
	n := rng.Intn(total)
	if n < m.Card {
		return "card"
	}
	if n < m.Card+m.Cost {
		return "cost"
	}
	return "joinorder"
}

// Pool is the fixed set of request bodies load is drawn from. Items
// are pre-marshaled JSON so the hot loop does zero encoding work.
type Pool struct {
	Items [][]byte
	// Source describes provenance for logs ("synthetic seed=1
	// scale=0.06" or "corpus fleet.mtc db=D2").
	Source string
}

// SyntheticPool generates n request bodies against db — the same
// generator family the training workload came from. Plans are the
// left-deep trees the server would synthesize itself, included
// explicitly so the request bytes are self-contained.
func SyntheticPool(db *sqldb.DB, seed int64, n, maxTables int) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: pool size must be positive, got %d", n)
	}
	gen := workload.NewGenerator(db, seed)
	cfg := workload.DefaultConfig()
	if maxTables > 0 {
		cfg.MaxTables = maxTables
	}
	p := &Pool{Source: fmt.Sprintf("synthetic db=%s seed=%d n=%d", db.Name, seed, n)}
	for i := 0; i < n; i++ {
		q := gen.GenQuery(cfg)
		body, err := marshalRequest(q, plan.LeftDeepFromOrder(q.Tables, plan.SeqScan, plan.HashJoin))
		if err != nil {
			return nil, err
		}
		p.Items = append(p.Items, body)
	}
	return p, nil
}

// CorpusPool replays up to n labeled queries (and their plans) from
// one database of a corpus artifact — the pool the server's training
// run actually saw. Empty dbName picks the first database.
func CorpusPool(path, dbName string, n int) (*Pool, error) {
	r, err := corpus.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var cat *corpus.DBCatalog
	if dbName == "" {
		cat, err = r.Catalog(0)
	} else {
		cat, err = r.CatalogByName(dbName)
	}
	if err != nil {
		return nil, err
	}
	exs := cat.Examples()
	total := exs.Len()
	if total == 0 {
		return nil, fmt.Errorf("loadgen: corpus %s db %q has no examples", path, cat.Name())
	}
	if n <= 0 || n > total {
		n = total
	}
	p := &Pool{Source: fmt.Sprintf("corpus %s db=%s n=%d", path, cat.Name(), n)}
	for i := 0; i < n; i++ {
		lq, err := exs.Example(i)
		if err != nil {
			return nil, err
		}
		body, err := marshalRequest(lq.Q, lq.Plan)
		if err != nil {
			return nil, err
		}
		p.Items = append(p.Items, body)
	}
	return p, nil
}

func marshalRequest(q *sqldb.Query, p *plan.Node) ([]byte, error) {
	return json.Marshal(serve.RequestJSON{Query: serve.EncodeQuery(q), Plan: serve.EncodePlan(p)})
}

// Options configures one load run.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Mix is the endpoint traffic mix (zero value → DefaultMix).
	Mix Mix
	// Duration bounds the run wall-clock.
	Duration time.Duration
	// Concurrency is the closed-loop worker count (ignored when
	// RateQPS > 0). 0 means 1.
	Concurrency int
	// RateQPS > 0 selects the open loop: arrivals at this fixed rate,
	// each served on its own goroutine, regardless of completions.
	RateQPS float64
	// ZipfS is the Zipf skew over pool items (popularity rank i gets
	// probability ∝ 1/i^s). Must be > 1 to skew; ≤ 1 means uniform.
	ZipfS float64
	// Seed makes pick sequences reproducible.
	Seed int64
	// DeadlineMs, when positive, is sent as the X-Deadline-Ms header
	// on every request (and doubles as the per-request client
	// timeout, plus margin).
	DeadlineMs int
	// ReloadAfter, when positive and shorter than Duration, POSTs
	// /reloadz once at that offset into the run — the hot-reload-
	// under-fire drill.
	ReloadAfter time.Duration
	// Retries is the per-request retry budget for shed (429)
	// responses: each retry waits max(the server's Retry-After,
	// capped exponential backoff) plus jitter, then resends. 0
	// disables retries — a 429 is recorded as shed immediately, the
	// overload-measurement default. Retries abort early when the run
	// ends mid-wait.
	Retries int
	// Client overrides the HTTP client (tests); nil builds one sized
	// to the run.
	Client *http.Client
}

// EndpointResult aggregates one endpoint's outcomes over a run.
type EndpointResult struct {
	Requests       uint64
	OK             uint64
	Shed           uint64 // 429 (after the retry budget, if any)
	DeadlineMisses uint64 // 504
	Errors         uint64 // transport errors + every other non-2xx
	Retries        uint64 // extra 429-triggered attempts (Options.Retries)
	Hist           Histogram
}

// ReloadResult reports the mid-run /reloadz call.
type ReloadResult struct {
	Issued  bool
	OK      bool
	Status  int
	Latency time.Duration
	Detail  string
}

// Result is one load run's aggregate.
type Result struct {
	Elapsed   time.Duration
	Endpoints map[string]*EndpointResult
	Reload    *ReloadResult
}

// Totals sums requests and failures across endpoints.
func (r *Result) Totals() (requests, ok, shed, deadline, errors uint64) {
	for _, ep := range r.Endpoints {
		requests += ep.Requests
		ok += ep.OK
		shed += ep.Shed
		deadline += ep.DeadlineMisses
		errors += ep.Errors
	}
	return
}

// LoadEntries exports the run as benchjson records (fixed endpoint
// order; endpoints with zero mix weight are omitted). name is
// conventionally "c<N>" or "r<QPS>".
func (r *Result) LoadEntries(name string, concurrency int, rateQPS float64, mix Mix) []benchjson.LoadEntry {
	var out []benchjson.LoadEntry
	for _, ep := range EndpointOrder {
		res := r.Endpoints[ep]
		if res == nil || mix.Weight(ep) == 0 {
			continue
		}
		e := benchjson.LoadEntry{
			Name:           ep + "/" + name,
			Endpoint:       ep,
			Concurrency:    concurrency,
			OpenLoopQPS:    rateQPS,
			DurationSec:    r.Elapsed.Seconds(),
			Requests:       res.Requests,
			OK:             res.OK,
			Shed:           res.Shed,
			DeadlineMisses: res.DeadlineMisses,
			Errors:         res.Errors,
			Retries:        res.Retries,
			P50Ms:          res.Hist.PercentileMs(0.50),
			P90Ms:          res.Hist.PercentileMs(0.90),
			P95Ms:          res.Hist.PercentileMs(0.95),
			P99Ms:          res.Hist.PercentileMs(0.99),
			MaxMs:          float64(res.Hist.Max()) / float64(time.Millisecond),
		}
		if r.Elapsed > 0 {
			e.ThroughputRPS = float64(res.OK) / r.Elapsed.Seconds()
		}
		out = append(out, e)
	}
	return out
}

// recorder is the run-wide sink workers record into. One mutex is
// fine: requests cost milliseconds of model time against nanoseconds
// of lock hold.
type recorder struct {
	mu  sync.Mutex
	eps map[string]*EndpointResult
}

func newRecorder() *recorder {
	eps := make(map[string]*EndpointResult, len(EndpointOrder))
	for _, ep := range EndpointOrder {
		eps[ep] = &EndpointResult{}
	}
	return &recorder{eps: eps}
}

func (rec *recorder) record(ep string, status int, lat time.Duration, transportErr bool) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	r := rec.eps[ep]
	r.Requests++
	switch {
	case transportErr:
		r.Errors++
	case status == http.StatusOK:
		r.OK++
		r.Hist.Record(lat)
	case status == http.StatusTooManyRequests:
		r.Shed++
	case status == http.StatusGatewayTimeout:
		r.DeadlineMisses++
	default:
		r.Errors++
	}
}

func (rec *recorder) retry(ep string) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.eps[ep].Retries++
}

// picker owns one worker's randomness: endpoint mix and Zipf item
// popularity. Each worker gets its own (math/rand sources are not
// concurrency-safe).
type picker struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	mix  Mix
	n    int
}

func newPicker(seed int64, mix Mix, poolSize int, zipfS float64) *picker {
	rng := rand.New(rand.NewSource(seed))
	p := &picker{rng: rng, mix: mix, n: poolSize}
	if zipfS > 1 && poolSize > 1 {
		p.zipf = rand.NewZipf(rng, zipfS, 1, uint64(poolSize-1))
	}
	return p
}

func (p *picker) next() (ep string, item int) {
	ep = p.mix.pick(p.rng)
	if p.zipf != nil {
		item = int(p.zipf.Uint64())
	} else {
		item = p.rng.Intn(p.n)
	}
	return ep, item
}

// Run executes one load run against a live server. It verifies
// liveness via /healthz first, so a dead target fails in milliseconds
// instead of timing out a full duration of requests.
func Run(opts Options, pool *Pool) (*Result, error) {
	if pool == nil || len(pool.Items) == 0 {
		return nil, fmt.Errorf("loadgen: empty query pool")
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive")
	}
	if (opts.Mix == Mix{}) {
		opts.Mix = DefaultMix()
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	client := opts.Client
	if client == nil {
		perHost := opts.Concurrency
		if opts.RateQPS > 0 {
			// Open loop has no worker bound; size keep-alives to the
			// expected outstanding count at a generous 1s latency.
			perHost = int(opts.RateQPS) + 8
		}
		client = &http.Client{
			Transport: &http.Transport{MaxIdleConns: perHost + 8, MaxIdleConnsPerHost: perHost + 8},
		}
	}
	if err := checkHealth(client, opts.BaseURL); err != nil {
		return nil, err
	}

	rec := newRecorder()
	ctx, cancel := context.WithTimeout(context.Background(), opts.Duration)
	defer cancel()

	res := &Result{}
	if opts.ReloadAfter > 0 && opts.ReloadAfter < opts.Duration {
		res.Reload = &ReloadResult{}
		go func() {
			timer := time.NewTimer(opts.ReloadAfter)
			defer timer.Stop()
			select {
			case <-timer.C:
				doReload(client, opts.BaseURL, res.Reload)
			case <-ctx.Done():
			}
		}()
	}

	start := time.Now()
	if opts.RateQPS > 0 {
		runOpenLoop(ctx, client, opts, pool, rec)
	} else {
		runClosedLoop(ctx, client, opts, pool, rec)
	}
	res.Elapsed = time.Since(start)
	res.Endpoints = rec.eps
	return res, nil
}

func checkHealth(client *http.Client, baseURL string) error {
	resp, err := client.Get(baseURL + "/healthz")
	if err != nil {
		return fmt.Errorf("loadgen: target unreachable: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: target unhealthy: /healthz returned %d", resp.StatusCode)
	}
	return nil
}

func runClosedLoop(ctx context.Context, client *http.Client, opts Options, pool *Pool, rec *recorder) {
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pick := newPicker(opts.Seed+int64(w)*7919, opts.Mix, len(pool.Items), opts.ZipfS)
			for ctx.Err() == nil {
				ep, item := pick.next()
				doRequest(ctx, client, opts, pool.Items[item], ep, rec)
			}
		}(w)
	}
	wg.Wait()
}

func runOpenLoop(ctx context.Context, client *http.Client, opts Options, pool *Pool, rec *recorder) {
	interval := time.Duration(float64(time.Second) / opts.RateQPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	// One picker feeds the dispatcher; requests themselves fan out.
	pick := newPicker(opts.Seed, opts.Mix, len(pool.Items), opts.ZipfS)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-ticker.C:
			ep, item := pick.next()
			wg.Add(1)
			go func(body []byte, ep string) {
				defer wg.Done()
				doRequest(ctx, client, opts, body, ep, rec)
			}(pool.Items[item], ep)
		}
	}
}

// Retry backoff shape: max(server Retry-After, retryBase·2^attempt
// capped at retryCap) plus up to 50% random jitter so a fleet of shed
// workers doesn't retry in lockstep.
const (
	retryBase = 25 * time.Millisecond
	retryCap  = time.Second
)

// retryDelay computes the wait before retry number attempt (0-based),
// honoring the server's Retry-After hint when it is longer than the
// local backoff.
func retryDelay(attempt int, retryAfter time.Duration) time.Duration {
	d := retryBase
	for i := 0; i < attempt && d < retryCap; i++ {
		d *= 2
	}
	d = min(d, retryCap)
	d = max(d, retryAfter)
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// parseRetryAfter reads a 429's Retry-After header (delay-seconds
// form; 0 when absent or unparsable).
func parseRetryAfter(resp *http.Response) time.Duration {
	s, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || s < 0 {
		return 0
	}
	return time.Duration(s) * time.Second
}

// doRequest fires one logical request — retrying shed (429) responses
// within Options.Retries — and records its final outcome. Only the
// wait between retries watches the run context: an attempt in flight
// when the run ends is allowed to finish (closed-loop workers exit at
// the next iteration), so the tail of the histogram is never
// truncated by the run boundary.
func doRequest(ctx context.Context, client *http.Client, opts Options, body []byte, ep string, rec *recorder) {
	for attempt := 0; ; attempt++ {
		status, retryAfter, lat, transportErr := doAttempt(client, opts, body, ep)
		if status == http.StatusTooManyRequests && attempt < opts.Retries {
			timer := time.NewTimer(retryDelay(attempt, retryAfter))
			select {
			case <-timer.C:
				rec.retry(ep)
				continue
			case <-ctx.Done():
				timer.Stop()
				// Run over mid-wait: the shed response stands.
			}
		}
		rec.record(ep, status, lat, transportErr)
		return
	}
}

// doAttempt sends one HTTP request and reports its outcome.
func doAttempt(client *http.Client, opts Options, body []byte, ep string) (status int, retryAfter time.Duration, lat time.Duration, transportErr bool) {
	reqCtx := context.Background()
	if opts.DeadlineMs > 0 {
		// Client-side timeout = deadline + margin: the server is the
		// one enforcing the deadline; the client cap just bounds a
		// stuck connection.
		var cancel context.CancelFunc
		reqCtx, cancel = context.WithTimeout(reqCtx, time.Duration(opts.DeadlineMs)*time.Millisecond+5*time.Second)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, opts.BaseURL+endpointPaths[ep], bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, true
	}
	req.Header.Set("Content-Type", "application/json")
	if opts.DeadlineMs > 0 {
		req.Header.Set(serve.DeadlineHeader, strconv.Itoa(opts.DeadlineMs))
	}
	start := time.Now()
	resp, err := client.Do(req)
	lat = time.Since(start)
	if err != nil {
		return 0, 0, lat, true
	}
	retryAfter = parseRetryAfter(resp)
	drain(resp)
	return resp.StatusCode, retryAfter, lat, false
}

func doReload(client *http.Client, baseURL string, out *ReloadResult) {
	out.Issued = true
	start := time.Now()
	resp, err := client.Post(baseURL+"/reloadz", "application/json", nil)
	out.Latency = time.Since(start)
	if err != nil {
		out.Detail = err.Error()
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	out.Status = resp.StatusCode
	out.OK = resp.StatusCode == http.StatusOK
	out.Detail = strings.TrimSpace(string(body))
}

// drain empties and closes a response body so the connection returns
// to the keep-alive pool.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// FormatResult renders a run as the human-readable table the CLI
// prints (sorted fixed endpoint order; zero-weight endpoints
// omitted).
func FormatResult(r *Result, mix Mix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %9s %9s %6s %6s %6s %6s %9s %9s %9s %9s %9s\n",
		"endpoint", "requests", "ok", "shed", "miss", "err", "retry", "rps", "p50ms", "p95ms", "p99ms", "maxms")
	for _, ep := range EndpointOrder {
		res := r.Endpoints[ep]
		if res == nil || mix.Weight(ep) == 0 {
			continue
		}
		rps := 0.0
		if r.Elapsed > 0 {
			rps = float64(res.OK) / r.Elapsed.Seconds()
		}
		fmt.Fprintf(&b, "%-10s %9d %9d %6d %6d %6d %6d %9.1f %9.2f %9.2f %9.2f %9.2f\n",
			ep, res.Requests, res.OK, res.Shed, res.DeadlineMisses, res.Errors, res.Retries, rps,
			res.Hist.PercentileMs(0.50), res.Hist.PercentileMs(0.95), res.Hist.PercentileMs(0.99),
			float64(res.Hist.Max())/float64(time.Millisecond))
	}
	if r.Reload != nil && r.Reload.Issued {
		fmt.Fprintf(&b, "reload: status=%d ok=%v latency=%s %s\n",
			r.Reload.Status, r.Reload.OK, r.Reload.Latency.Round(time.Millisecond), r.Reload.Detail)
	}
	return b.String()
}
