package loadgen

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mtmlf/internal/datagen"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/serve"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/workload"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("card=50,cost=30,joinorder=20")
	if err != nil || m != (Mix{50, 30, 20}) {
		t.Fatalf("got %+v, %v", m, err)
	}
	m, err = ParseMix(" cost=7 ")
	if err != nil || m != (Mix{Cost: 7}) {
		t.Fatalf("partial mix: got %+v, %v", m, err)
	}
	for _, bad := range []string{"card", "card=x", "card=-1", "latency=3", "card=0,cost=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestPickerZipfSkew: with s > 1 the head of the pool must be drawn
// far more often than the tail; with s <= 1 draws are uniform-ish.
func TestPickerZipfSkew(t *testing.T) {
	const n, draws = 64, 20000
	counts := make([]int, n)
	p := newPicker(7, DefaultMix(), n, 1.2)
	for i := 0; i < draws; i++ {
		_, item := p.next()
		counts[item]++
	}
	var tail int
	for _, c := range counts[32:] {
		tail += c
	}
	if counts[0] < draws/4 {
		t.Fatalf("zipf head drew %d of %d; expected heavy skew", counts[0], draws)
	}
	if tail > counts[0] {
		t.Fatalf("zipf tail (%d) outdrew the head (%d)", tail, counts[0])
	}

	uni := newPicker(7, DefaultMix(), n, 0)
	counts = make([]int, n)
	for i := 0; i < draws; i++ {
		_, item := uni.next()
		counts[item]++
	}
	if counts[0] > 3*draws/n {
		t.Fatalf("uniform head drew %d of %d; expected ~%d", counts[0], draws, draws/n)
	}
}

// loadTestServer boots a real engine + handler over a tiny model.
// Untrained weights are fine — the harness measures transport and
// scheduling, not estimate quality.
func loadTestServer(t *testing.T) (*httptest.Server, *sqldb.DB) {
	t.Helper()
	db := datagen.SyntheticIMDB(5, 0.05)
	cfg := mtmlf.DefaultConfig()
	cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
	cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
	m := mtmlf.NewModel(cfg, db, 11)
	e, err := serve.NewEngine(m, serve.Options{Sessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	srv := httptest.NewServer(serve.NewHandlerConfig(e, serve.HandlerConfig{
		Gen: workload.NewGenerator(db, 99),
		Reload: func() (*mtmlf.Model, error) {
			return mtmlf.NewModel(cfg, db, 31), nil
		},
	}))
	t.Cleanup(srv.Close)
	return srv, db
}

// TestRunClosedLoop drives a live server end to end: every endpoint
// in the mix sees traffic, nothing fails, a mid-run hot reload
// succeeds with zero failed in-flight requests, and the run exports
// well-formed benchjson entries.
func TestRunClosedLoop(t *testing.T) {
	srv, db := loadTestServer(t)
	pool, err := SyntheticPool(db, 42, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		BaseURL:     srv.URL,
		Duration:    500 * time.Millisecond,
		Concurrency: 4,
		ZipfS:       1.2,
		Seed:        1,
		ReloadAfter: 100 * time.Millisecond,
		Client:      srv.Client(),
	}, pool)
	if err != nil {
		t.Fatal(err)
	}
	requests, ok, shed, deadline, errs := res.Totals()
	if requests == 0 {
		t.Fatal("no requests issued")
	}
	if errs != 0 || shed != 0 || deadline != 0 {
		t.Fatalf("run saw shed=%d deadline=%d errors=%d, want all zero", shed, deadline, errs)
	}
	if ok != requests {
		t.Fatalf("ok %d != requests %d", ok, requests)
	}
	if res.Reload == nil || !res.Reload.Issued || !res.Reload.OK {
		t.Fatalf("mid-run reload did not succeed: %+v", res.Reload)
	}

	entries := res.LoadEntries("c4", 4, 0, DefaultMix())
	if len(entries) != 3 {
		t.Fatalf("got %d load entries, want 3", len(entries))
	}
	for _, e := range entries {
		if e.OK == 0 || e.ThroughputRPS <= 0 || e.P50Ms <= 0 {
			t.Fatalf("entry %s missing data: %+v", e.Name, e)
		}
		if e.P50Ms > e.P99Ms || float64(e.Concurrency) != 4 {
			t.Fatalf("entry %s inconsistent: %+v", e.Name, e)
		}
		if !strings.HasSuffix(e.Name, "/c4") {
			t.Fatalf("entry name %q lacks level suffix", e.Name)
		}
	}

	out := FormatResult(res, DefaultMix())
	for _, want := range []string{"endpoint", "card", "cost", "joinorder", "reload: status=200 ok=true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatResult missing %q in:\n%s", want, out)
		}
	}
}

// TestRunOpenLoop: fixed-rate arrivals against a live server.
func TestRunOpenLoop(t *testing.T) {
	srv, db := loadTestServer(t)
	pool, err := SyntheticPool(db, 43, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		BaseURL:  srv.URL,
		Duration: 400 * time.Millisecond,
		RateQPS:  100,
		Seed:     2,
		Client:   srv.Client(),
	}, pool)
	if err != nil {
		t.Fatal(err)
	}
	requests, ok, _, _, errs := res.Totals()
	if requests == 0 || errs != 0 || ok != requests {
		t.Fatalf("open loop: requests=%d ok=%d errors=%d", requests, ok, errs)
	}
}

// TestRunDeadTarget: an unreachable server fails fast with a health
// error instead of burning the full duration.
func TestRunDeadTarget(t *testing.T) {
	srv, db := loadTestServer(t)
	url := srv.URL
	srv.Close()
	pool, err := SyntheticPool(db, 44, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := Run(Options{BaseURL: url, Duration: 10 * time.Second}, pool); err == nil {
		t.Fatal("Run against a dead target succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("dead-target failure was not fast")
	}
}

// TestRetriesRecoverShedRequests: with a retry budget, a request shed
// with 429 + Retry-After is retried after a backoff and succeeds once
// the server admits it — sheds convert to OK and the retry count is
// reported.
func TestRetriesRecoverShedRequests(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n <= 2 {
			// Shed the first two attempts: the first logical request
			// must burn exactly two retries before succeeding.
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	pool := &Pool{Items: [][]byte{[]byte(`{}`)}, Source: "test"}
	res, err := Run(Options{
		BaseURL:     srv.URL,
		Duration:    400 * time.Millisecond,
		Concurrency: 1,
		Mix:         Mix{Card: 1},
		Retries:     3,
		Seed:        3,
		Client:      srv.Client(),
	}, pool)
	if err != nil {
		t.Fatal(err)
	}
	card := res.Endpoints["card"]
	if card.Shed != 0 {
		t.Fatalf("retries exhausted: %d sheds recorded, want 0", card.Shed)
	}
	if card.Retries != 2 {
		t.Fatalf("recorded %d retries, want 2", card.Retries)
	}
	if card.OK == 0 || card.OK != card.Requests {
		t.Fatalf("ok=%d requests=%d, want all ok", card.OK, card.Requests)
	}
	entries := res.LoadEntries("c1", 1, 0, Mix{Card: 1})
	if len(entries) != 1 || entries[0].Retries != 2 {
		t.Fatalf("load entries missing retry count: %+v", entries)
	}
	if out := FormatResult(res, Mix{Card: 1}); !strings.Contains(out, "retry") {
		t.Fatalf("FormatResult lacks retry column:\n%s", out)
	}
}

// TestRetryDelayShape: the wait is max(Retry-After, capped exponential
// backoff) plus at most 50% jitter.
func TestRetryDelayShape(t *testing.T) {
	for i := 0; i < 20; i++ {
		if d := retryDelay(0, 0); d < retryBase || d > retryBase*3/2 {
			t.Fatalf("first retry delay %v outside [%v, %v]", d, retryBase, retryBase*3/2)
		}
		if d := retryDelay(0, 2*time.Second); d < 2*time.Second || d > 3*time.Second {
			t.Fatalf("Retry-After=2s delay %v outside [2s, 3s]", d)
		}
		if d := retryDelay(30, 0); d > retryCap*3/2 {
			t.Fatalf("backoff escaped the cap: %v", d)
		}
	}
}

// TestRunRejectsBadOptions: input validation.
func TestRunRejectsBadOptions(t *testing.T) {
	if _, err := Run(Options{Duration: time.Second}, nil); err == nil {
		t.Fatal("nil pool accepted")
	}
	if _, err := Run(Options{Duration: time.Second}, &Pool{}); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := Run(Options{}, &Pool{Items: [][]byte{{1}}}); err == nil {
		t.Fatal("zero duration accepted")
	}
}
