// Package metrics implements the paper's evaluation metrics: q-error
// with median/max/mean aggregation (Table 1), the total-time
// improvement ratio (Tables 2–3), and JOEU, the join-order evaluation
// understudy of Section 5.
package metrics

import (
	"math"
	"sort"
)

// QError returns max(pred/truth, truth/pred) after clamping both to a
// minimum of 1 (the conventional definition; perfect estimate = 1).
func QError(pred, truth float64) float64 {
	if pred < 1 {
		pred = 1
	}
	if truth < 1 {
		truth = 1
	}
	if pred > truth {
		return pred / truth
	}
	return truth / pred
}

// Summary aggregates a q-error (or any positive metric) sample the way
// the paper's Table 1 reports it.
type Summary struct {
	Median float64
	Max    float64
	Mean   float64
	P90    float64
	P99    float64
	N      int
}

// Summarize computes the Table 1 aggregates of a sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Summary{
		Median: percentile(s, 0.5),
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
		P90:    percentile(s, 0.9),
		P99:    percentile(s, 0.99),
		N:      len(s),
	}
}

// percentile interpolates the p-quantile of a sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ImprovementRatio returns (baseline - value) / baseline — the paper's
// "overall improvement ratio" over the PostgreSQL total time.
func ImprovementRatio(baseline, value float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - value) / baseline
}

// JOEU is the join order evaluation understudy (Section 5): the length
// of the shared prefix of the generated and optimal join orders
// divided by the sequence length. 1 means optimal; once the prefix
// diverges nothing after it can repair the plan.
func JOEU(generated, optimal []string) float64 {
	n := len(optimal)
	if n == 0 {
		return 0
	}
	shared := 0
	for i := 0; i < n && i < len(generated); i++ {
		if generated[i] != optimal[i] {
			break
		}
		shared++
	}
	return float64(shared) / float64(n)
}

// JOEUInt is JOEU over integer sequences (table indices).
func JOEUInt(generated, optimal []int) float64 {
	n := len(optimal)
	if n == 0 {
		return 0
	}
	shared := 0
	for i := 0; i < n && i < len(generated); i++ {
		if generated[i] != optimal[i] {
			break
		}
		shared++
	}
	return float64(shared) / float64(n)
}

// GeoMean returns the geometric mean of a positive sample, a common
// secondary aggregate for q-errors.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(xs)))
}
