package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQErrorBasics(t *testing.T) {
	if QError(100, 100) != 1 {
		t.Fatal("perfect estimate must be 1")
	}
	if QError(200, 100) != 2 || QError(50, 100) != 2 {
		t.Fatal("symmetric factor wrong")
	}
	// Clamping: sub-1 values behave as 1.
	if QError(0, 0) != 1 {
		t.Fatal("degenerate inputs must clamp to 1")
	}
	if QError(0.5, 10) != 10 {
		t.Fatalf("clamped pred wrong: %g", QError(0.5, 10))
	}
}

// Properties: q-error is >= 1 and symmetric.
func TestQErrorProperties(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		q := QError(a, b)
		return q >= 1 && math.Abs(q-QError(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.Median != 3 {
		t.Fatalf("median %g", s.Median)
	}
	if s.Max != 100 {
		t.Fatalf("max %g", s.Max)
	}
	if math.Abs(s.Mean-22) > 1e-12 {
		t.Fatalf("mean %g", s.Mean)
	}
	if s.N != 5 {
		t.Fatal("count wrong")
	}
	if s.P90 < s.Median || s.Max < s.P99 {
		t.Fatal("percentiles out of order")
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary wrong")
	}
	s := Summarize([]float64{7})
	if s.Median != 7 || s.Max != 7 || s.Mean != 7 {
		t.Fatal("singleton summary wrong")
	}
}

func TestImprovementRatio(t *testing.T) {
	if got := ImprovementRatio(1000, 200); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("ratio %g", got)
	}
	if ImprovementRatio(0, 5) != 0 {
		t.Fatal("zero baseline must yield 0")
	}
	if ImprovementRatio(100, 150) >= 0 {
		t.Fatal("regression must be negative")
	}
}

func TestJOEU(t *testing.T) {
	opt := []string{"a", "b", "c", "d"}
	cases := []struct {
		gen  []string
		want float64
	}{
		{[]string{"a", "b", "c", "d"}, 1},
		{[]string{"a", "b", "d", "c"}, 0.5},
		{[]string{"b", "a", "c", "d"}, 0},
		{[]string{"a"}, 0.25},
		{nil, 0},
	}
	for _, c := range cases {
		if got := JOEU(c.gen, opt); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("JOEU(%v) = %g, want %g", c.gen, got, c.want)
		}
	}
	if JOEU([]string{"a"}, nil) != 0 {
		t.Fatal("empty optimal must be 0")
	}
}

func TestJOEUInt(t *testing.T) {
	if got := JOEUInt([]int{0, 1, 2}, []int{0, 1, 2}); got != 1 {
		t.Fatalf("JOEUInt identical = %g", got)
	}
	if got := JOEUInt([]int{0, 2, 1}, []int{0, 1, 2}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("JOEUInt partial = %g", got)
	}
}

// Property: JOEU is in [0,1] and 1 iff sequences are equal (same length).
func TestJOEUBounds(t *testing.T) {
	f := func(a, b []uint8) bool {
		ga := make([]int, len(a))
		gb := make([]int, len(b))
		for i, v := range a {
			ga[i] = int(v % 4)
		}
		for i, v := range b {
			gb[i] = int(v % 4)
		}
		j := JOEUInt(ga, gb)
		return j >= 0 && j <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean %g", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean wrong")
	}
}
