// Full-model checkpoints.
//
// The paper's deployment story (Section 2.3) ships a pretrained model
// as an artifact: the cloud provider trains, the DBMS loads and
// serves. nn.Save over Shared.Params() is not that artifact — it
// covers the transferable (S)+(T) stack but silently drops the
// per-database featurizer (F) weights, so a "loaded" model serves
// from randomly initialized table encoders. The checkpoint format
// here persists everything a serving process needs:
//
//	header  — magic + version (nn.WriteHeader)
//	meta    — the Config echo, the database identity (name, table
//	          list, per-table row counts), and whether the file is
//	          shared-only
//	params  — one shape-validated section: Model.Params() (Shared
//	          then Featurizer) for full files, Shared.Params() for
//	          shared-only files
//
// Loads are strict: wrong magic, future version, a different Config,
// or a mismatched table list all fail with a descriptive error before
// any weight is touched. Round trips are bitwise (gob transmits
// float64 bit patterns verbatim), which the serving tests rely on:
// save → load → serve must produce the exact floats of the in-memory
// model.
//
// SaveShared writes a shared-only checkpoint — the paper's transfer
// artifact, loadable into a model for a *different* database (whose
// featurizer then pretrains locally, Algorithm 1 line 4).
package mtmlf

import (
	"encoding/gob"
	"fmt"
	"io"

	"mtmlf/internal/nn"
	"mtmlf/internal/sqldb"
)

const (
	// CheckpointMagic identifies an MTMLF checkpoint stream.
	CheckpointMagic = "MTMLF-CKPT"
	// CheckpointVersion is the current (and maximum readable) format
	// version.
	CheckpointVersion = 1
)

// CheckpointInfo describes a checkpoint's provenance, echoed into the
// file at save time and returned (validated) by Load.
type CheckpointInfo struct {
	// Version is the on-disk format version.
	Version int
	// Config is the architecture the weights were trained with; Load
	// requires it to equal the destination model's Config.
	Config Config
	// DBName, Tables, and TableRows identify the database *instance*
	// the featurizer section was trained against: the synthetic
	// generators produce the same table names at every seed and scale,
	// so the per-table row counts are the fingerprint that catches a
	// serve process regenerating a different database than the one
	// the checkpoint was trained on (informational for shared-only
	// files).
	DBName    string
	Tables    []string
	TableRows []int
	// SharedOnly marks a transfer checkpoint: (S)+(T) weights only,
	// no featurizer section.
	SharedOnly bool
}

// checkpointMeta is the on-wire metadata record (Version travels in
// the header, not here).
type checkpointMeta struct {
	Config     Config
	DBName     string
	Tables     []string
	TableRows  []int
	SharedOnly bool
}

// Save writes a full-model checkpoint: Shared (S)+(T) parameters plus
// the per-database Featurizer (F) parameters.
func Save(w io.Writer, m *Model) error {
	return save(w, m, false)
}

// SaveShared writes a shared-only checkpoint — the cross-database
// transfer artifact of Section 2.3. Loading it restores (S)+(T) and
// leaves the destination model's featurizer untouched.
func SaveShared(w io.Writer, m *Model) error {
	return save(w, m, true)
}

func save(w io.Writer, m *Model, sharedOnly bool) error {
	enc := gob.NewEncoder(w)
	if err := nn.WriteHeader(enc, CheckpointMagic, CheckpointVersion); err != nil {
		return fmt.Errorf("mtmlf: write checkpoint header: %w", err)
	}
	db := m.Feat.DB
	meta := checkpointMeta{
		Config:     m.Shared.Cfg,
		DBName:     db.Name,
		Tables:     db.TableNames(),
		TableRows:  tableRows(db),
		SharedOnly: sharedOnly,
	}
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("mtmlf: write checkpoint meta: %w", err)
	}
	// One parameter section: the full Model.Params() order (Shared
	// then Featurizer), or just Shared.Params() for transfer files.
	params := m.Params()
	if sharedOnly {
		params = m.Shared.Params()
	}
	if err := nn.EncodeParams(enc, params); err != nil {
		return fmt.Errorf("mtmlf: write parameters: %w", err)
	}
	return nil
}

func tableRows(db *sqldb.DB) []int {
	out := make([]int, len(db.Tables))
	for i, t := range db.Tables {
		out[i] = t.NumRows()
	}
	return out
}

// Load reads a checkpoint into an existing model. The checkpoint's
// Config must equal the model's; for full checkpoints the model's
// database table list must match the one the featurizer was trained
// on (the featurizer parameter order is the table order). Shared-only
// checkpoints load (S)+(T) and skip the featurizer — that is the
// transfer path, so the table lists may differ.
func Load(r io.Reader, m *Model) (*CheckpointInfo, error) {
	dec := gob.NewDecoder(r)
	info, err := readMeta(dec)
	if err != nil {
		return nil, err
	}
	if info.Config != m.Shared.Cfg {
		return nil, fmt.Errorf("mtmlf: checkpoint config %+v does not match model config %+v", info.Config, m.Shared.Cfg)
	}
	params := m.Shared.Params()
	if !info.SharedOnly {
		if err := sameDatabase(info, m.Feat.DB); err != nil {
			return nil, err
		}
		params = m.Params()
	}
	if err := nn.DecodeParams(dec, params); err != nil {
		return nil, fmt.Errorf("mtmlf: load parameters: %w", err)
	}
	return info, nil
}

// LoadModel reads a checkpoint and constructs a ready-to-serve model
// for db using the checkpoint's own Config — the entry point for a
// serving process, which knows the database but not the architecture
// the weights were trained with. Returns an error for shared-only
// checkpoints: a served model needs trained featurizer weights, and a
// transfer checkpoint by definition has none for this database.
func LoadModel(r io.Reader, db *sqldb.DB) (*Model, *CheckpointInfo, error) {
	dec := gob.NewDecoder(r)
	info, err := readMeta(dec)
	if err != nil {
		return nil, nil, err
	}
	if info.SharedOnly {
		return nil, nil, fmt.Errorf("mtmlf: checkpoint is shared-only (transfer artifact); serving needs a full-model checkpoint")
	}
	if err := sameDatabase(info, db); err != nil {
		return nil, nil, err
	}
	m := NewModel(info.Config, db, 0)
	if err := nn.DecodeParams(dec, m.Params()); err != nil {
		return nil, nil, fmt.Errorf("mtmlf: load parameters: %w", err)
	}
	return m, info, nil
}

// readMeta consumes the header and metadata records.
func readMeta(dec *gob.Decoder) (*CheckpointInfo, error) {
	v, err := nn.ReadHeader(dec, CheckpointMagic, CheckpointVersion)
	if err != nil {
		return nil, fmt.Errorf("mtmlf: not an MTMLF checkpoint: %w", err)
	}
	var meta checkpointMeta
	if err := dec.Decode(&meta); err != nil {
		return nil, fmt.Errorf("mtmlf: read checkpoint meta: %w", err)
	}
	return &CheckpointInfo{
		Version:    v,
		Config:     meta.Config,
		DBName:     meta.DBName,
		Tables:     meta.Tables,
		TableRows:  meta.TableRows,
		SharedOnly: meta.SharedOnly,
	}, nil
}

// sameDatabase verifies the destination database is the instance the
// featurizer section was trained on: same table list (the featurizer
// parameter order) AND same per-table row counts (the synthetic
// generators keep table names fixed across seeds and scales, so a
// serve process started with the wrong -seed/-scale would otherwise
// load cleanly and serve featurizer weights fit to different data).
func sameDatabase(info *CheckpointInfo, db *sqldb.DB) error {
	names := db.TableNames()
	if len(info.Tables) != len(names) {
		return fmt.Errorf("mtmlf: checkpoint trained on %d tables, model database has %d", len(info.Tables), len(names))
	}
	for i := range info.Tables {
		if info.Tables[i] != names[i] {
			return fmt.Errorf("mtmlf: checkpoint table %d is %q, model database has %q", i, info.Tables[i], names[i])
		}
	}
	rows := tableRows(db)
	if len(info.TableRows) != len(rows) {
		return fmt.Errorf("mtmlf: checkpoint lacks per-table row counts (%d for %d tables)", len(info.TableRows), len(rows))
	}
	for i := range rows {
		if info.TableRows[i] != rows[i] {
			return fmt.Errorf("mtmlf: checkpoint table %q has %d rows, model database has %d (database seed/scale mismatch?)",
				info.Tables[i], info.TableRows[i], rows[i])
		}
	}
	return nil
}
