// Full-model checkpoints.
//
// The paper's deployment story (Section 2.3) ships a pretrained model
// as an artifact: the cloud provider trains, the DBMS loads and
// serves. nn.Save over Shared.Params() is not that artifact — it
// covers the transferable (S)+(T) stack but silently drops the
// per-database featurizer (F) weights, so a "loaded" model serves
// from randomly initialized table encoders. The checkpoint format
// here persists everything a serving process needs.
//
// Format v2 (current) is built on ckptio's durability primitives:
//
//	preamble — 10-byte magic "MTMLF-CKPT" + 2-byte big-endian version
//	meta     — one ckptio section frame ([length][gob checkpointMeta]
//	           [CRC32C]): the Config echo, the database identity
//	           (name, table list, per-table row counts), and whether
//	           the file is shared-only
//	params   — one ckptio section frame holding the gob parameter
//	           blobs: Model.Params() (Shared then Featurizer) for full
//	           files, Shared.Params() for shared-only files
//
// Every byte after the preamble is covered by a frame checksum, and
// the preamble itself only has one valid value, so ANY single-bit
// flip or truncation fails the load with a typed *ckptio.CorruptError
// before a weight is touched. Version 1 (a single gob stream:
// nn.WriteHeader header, meta, params — no checksums) stays readable;
// the loader sniffs the first bytes and dispatches.
//
// Loads are strict: wrong magic, future version, a different Config,
// or a mismatched table list all fail with a descriptive error before
// any weight is touched. Round trips are bitwise (gob transmits
// float64 bit patterns verbatim), which the serving tests rely on:
// save → load → serve must produce the exact floats of the in-memory
// model.
//
// SaveShared writes a shared-only checkpoint — the paper's transfer
// artifact, loadable into a model for a *different* database (whose
// featurizer then pretrains locally, Algorithm 1 line 4). SaveFile
// and SaveSharedFile are the same artifacts written atomically (temp
// file + fsync + rename), so a crash mid-save never tears a
// checkpoint a server might reload.
package mtmlf

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"mtmlf/internal/ckptio"
	"mtmlf/internal/nn"
	"mtmlf/internal/sqldb"
)

const (
	// CheckpointMagic identifies an MTMLF checkpoint stream.
	CheckpointMagic = "MTMLF-CKPT"
	// CheckpointVersion is the current (and maximum readable) format
	// version. v1: one gob stream, no checksums; v2: raw preamble +
	// CRC32C-framed sections.
	CheckpointVersion = 2
	// ckptPreambleSize is the raw v2 preamble: 10 bytes of magic plus a
	// 2-byte big-endian version.
	ckptPreambleSize = 12
)

// CheckpointInfo describes a checkpoint's provenance, echoed into the
// file at save time and returned (validated) by Load.
type CheckpointInfo struct {
	// Version is the on-disk format version.
	Version int
	// Config is the architecture the weights were trained with; Load
	// requires it to equal the destination model's Config.
	Config Config
	// DBName, Tables, and TableRows identify the database *instance*
	// the featurizer section was trained against: the synthetic
	// generators produce the same table names at every seed and scale,
	// so the per-table row counts are the fingerprint that catches a
	// serve process regenerating a different database than the one
	// the checkpoint was trained on (informational for shared-only
	// files).
	DBName    string
	Tables    []string
	TableRows []int
	// SharedOnly marks a transfer checkpoint: (S)+(T) weights only,
	// no featurizer section.
	SharedOnly bool
}

// checkpointMeta is the on-wire metadata record (Version travels in
// the preamble, not here).
type checkpointMeta struct {
	Config     Config
	DBName     string
	Tables     []string
	TableRows  []int
	SharedOnly bool
}

// Save writes a full-model checkpoint: Shared (S)+(T) parameters plus
// the per-database Featurizer (F) parameters.
func Save(w io.Writer, m *Model) error {
	return save(w, m, false)
}

// SaveShared writes a shared-only checkpoint — the cross-database
// transfer artifact of Section 2.3. Loading it restores (S)+(T) and
// leaves the destination model's featurizer untouched.
func SaveShared(w io.Writer, m *Model) error {
	return save(w, m, true)
}

// SaveFile writes a full-model checkpoint to path atomically: the
// destination only ever holds a complete checkpoint, even across a
// crash mid-save — the property hot reload (mtmlf-serve re-reading
// the path) and crash-resumed training both depend on.
func SaveFile(path string, m *Model) error {
	return ckptio.WriteFileAtomic(path, func(w io.Writer) error { return Save(w, m) })
}

// SaveSharedFile is SaveShared with SaveFile's atomicity.
func SaveSharedFile(path string, m *Model) error {
	return ckptio.WriteFileAtomic(path, func(w io.Writer) error { return SaveShared(w, m) })
}

func save(w io.Writer, m *Model, sharedOnly bool) error {
	var pre [ckptPreambleSize]byte
	copy(pre[:10], CheckpointMagic)
	binary.BigEndian.PutUint16(pre[10:], CheckpointVersion)
	if _, err := w.Write(pre[:]); err != nil {
		return fmt.Errorf("mtmlf: write checkpoint preamble: %w", err)
	}
	db := m.Feat.DB
	meta := checkpointMeta{
		Config:     m.Shared.Cfg,
		DBName:     db.Name,
		Tables:     db.TableNames(),
		TableRows:  tableRows(db),
		SharedOnly: sharedOnly,
	}
	var mbuf bytes.Buffer
	if err := gob.NewEncoder(&mbuf).Encode(meta); err != nil {
		return fmt.Errorf("mtmlf: encode checkpoint meta: %w", err)
	}
	if err := ckptio.WriteSection(w, mbuf.Bytes()); err != nil {
		return fmt.Errorf("mtmlf: write checkpoint meta: %w", err)
	}
	// One parameter section: the full Model.Params() order (Shared
	// then Featurizer), or just Shared.Params() for transfer files.
	params := m.Params()
	if sharedOnly {
		params = m.Shared.Params()
	}
	var pbuf bytes.Buffer
	if err := nn.EncodeParams(gob.NewEncoder(&pbuf), params); err != nil {
		return fmt.Errorf("mtmlf: encode parameters: %w", err)
	}
	if err := ckptio.WriteSection(w, pbuf.Bytes()); err != nil {
		return fmt.Errorf("mtmlf: write parameters: %w", err)
	}
	return nil
}

func tableRows(db *sqldb.DB) []int {
	out := make([]int, len(db.Tables))
	for i, t := range db.Tables {
		out[i] = t.NumRows()
	}
	return out
}

// Load reads a checkpoint into an existing model. The checkpoint's
// Config must equal the model's; for full checkpoints the model's
// database table list must match the one the featurizer was trained
// on (the featurizer parameter order is the table order). Shared-only
// checkpoints load (S)+(T) and skip the featurizer — that is the
// transfer path, so the table lists may differ.
func Load(r io.Reader, m *Model) (*CheckpointInfo, error) {
	info, dec, err := openCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if info.Config != m.Shared.Cfg {
		return nil, fmt.Errorf("mtmlf: checkpoint config %+v does not match model config %+v", info.Config, m.Shared.Cfg)
	}
	params := m.Shared.Params()
	if !info.SharedOnly {
		if err := sameDatabase(info, m.Feat.DB); err != nil {
			return nil, err
		}
		params = m.Params()
	}
	if err := nn.DecodeParams(dec, params); err != nil {
		return nil, fmt.Errorf("mtmlf: load parameters: %w", err)
	}
	return info, nil
}

// LoadModel reads a checkpoint and constructs a ready-to-serve model
// for db using the checkpoint's own Config — the entry point for a
// serving process, which knows the database but not the architecture
// the weights were trained with. Returns an error for shared-only
// checkpoints: a served model needs trained featurizer weights, and a
// transfer checkpoint by definition has none for this database.
func LoadModel(r io.Reader, db *sqldb.DB) (*Model, *CheckpointInfo, error) {
	info, dec, err := openCheckpoint(r)
	if err != nil {
		return nil, nil, err
	}
	if info.SharedOnly {
		return nil, nil, fmt.Errorf("mtmlf: checkpoint is shared-only (transfer artifact); serving needs a full-model checkpoint")
	}
	if err := sameDatabase(info, db); err != nil {
		return nil, nil, err
	}
	if err := validateConfig(info.Config); err != nil {
		return nil, nil, err
	}
	m := NewModel(info.Config, db, 0)
	if err := nn.DecodeParams(dec, m.Params()); err != nil {
		return nil, nil, fmt.Errorf("mtmlf: load parameters: %w", err)
	}
	return m, info, nil
}

// openCheckpoint sniffs the format, validates everything up to and
// including the metadata, and returns the info plus a decoder
// positioned at the parameter section. v2 files are recognized by
// their raw preamble; anything else falls back to the v1 single-gob-
// stream layout, whose decode failures are reported as corruption
// (the bytes claim to be a checkpoint and are not).
func openCheckpoint(r io.Reader) (*CheckpointInfo, *gob.Decoder, error) {
	pre := make([]byte, ckptPreambleSize)
	n, _ := io.ReadFull(r, pre)
	pre = pre[:n]
	if n >= len(CheckpointMagic) && string(pre[:len(CheckpointMagic)]) == CheckpointMagic {
		if n < ckptPreambleSize {
			return nil, nil, ckptio.Corruptf("checkpoint", "truncated preamble (%d bytes)", n)
		}
		v := int(binary.BigEndian.Uint16(pre[10:]))
		if v != CheckpointVersion {
			// A framed file has exactly one valid version today; any
			// other value is bit rot in the version field or a future
			// format this build cannot read.
			return nil, nil, ckptio.Corruptf("checkpoint", "unsupported framed version %d (supported %d; damaged version field or future file)", v, CheckpointVersion)
		}
		metaPayload, err := ckptio.ReadSection(r, "checkpoint")
		if err != nil {
			return nil, nil, fmt.Errorf("mtmlf: checkpoint meta: %w", err)
		}
		var meta checkpointMeta
		if err := gob.NewDecoder(bytes.NewReader(metaPayload)).Decode(&meta); err != nil {
			return nil, nil, ckptio.Corruptf("checkpoint", "meta section passed its checksum but does not decode: %v", err)
		}
		paramsPayload, err := ckptio.ReadSection(r, "checkpoint")
		if err != nil {
			return nil, nil, fmt.Errorf("mtmlf: checkpoint parameters: %w", err)
		}
		return infoFrom(v, meta), gob.NewDecoder(bytes.NewReader(paramsPayload)), nil
	}
	// v1: one gob stream from byte 0 (header, meta, params). Reattach
	// the sniffed prefix.
	dec := gob.NewDecoder(io.MultiReader(bytes.NewReader(pre), r))
	v, err := nn.ReadHeader(dec, CheckpointMagic, CheckpointVersion)
	if err != nil {
		return nil, nil, &ckptio.CorruptError{Artifact: "checkpoint", Reason: fmt.Sprintf("not an MTMLF checkpoint: %v", err)}
	}
	if v != 1 {
		return nil, nil, ckptio.Corruptf("checkpoint", "version %d inside a v1 gob header (v2+ files use the framed layout)", v)
	}
	var meta checkpointMeta
	if err := dec.Decode(&meta); err != nil {
		return nil, nil, ckptio.Corruptf("checkpoint", "read v1 meta: %v", err)
	}
	return infoFrom(v, meta), dec, nil
}

func infoFrom(version int, meta checkpointMeta) *CheckpointInfo {
	return &CheckpointInfo{
		Version:    version,
		Config:     meta.Config,
		DBName:     meta.DBName,
		Tables:     meta.Tables,
		TableRows:  meta.TableRows,
		SharedOnly: meta.SharedOnly,
	}
}

// validateConfig rejects architecture configs no trainer could have
// produced — the guard LoadModel needs before trusting a decoded
// Config enough to allocate a model from it. A v1 checkpoint carries
// no checksum, so every field here can be arbitrary bit rot: an
// unvalidated Heads of zero divides by zero inside the attention
// blocks, and an enormous Dim allocates unbounded memory before the
// parameter count mismatch would have failed the load anyway.
func validateConfig(c Config) error {
	bounds := []struct {
		name   string
		v, max int
	}{
		{"Dim", c.Dim, 4096},
		{"Heads", c.Heads, 64},
		{"Blocks", c.Blocks, 64},
		{"DecBlocks", c.DecBlocks, 64},
		{"MaxTables", c.MaxTables, 4096},
		{"MaxDepth", c.MaxDepth, 1024},
		{"Feat.Dim", c.Feat.Dim, 4096},
		{"Feat.Heads", c.Feat.Heads, 64},
		{"Feat.Blocks", c.Feat.Blocks, 64},
		{"Feat.MaxCols", c.Feat.MaxCols, 1 << 16},
		{"Feat.CharDims", c.Feat.CharDims, 1 << 16},
	}
	for _, b := range bounds {
		if b.v < 1 || b.v > b.max {
			return fmt.Errorf("mtmlf: checkpoint config %s = %d outside [1, %d] (damaged checkpoint?)", b.name, b.v, b.max)
		}
	}
	if c.Dim%c.Heads != 0 {
		return fmt.Errorf("mtmlf: checkpoint config Heads %d does not divide Dim %d", c.Heads, c.Dim)
	}
	if c.Feat.Dim%c.Feat.Heads != 0 {
		return fmt.Errorf("mtmlf: checkpoint config Feat.Heads %d does not divide Feat.Dim %d", c.Feat.Heads, c.Feat.Dim)
	}
	return nil
}

// sameDatabase verifies the destination database is the instance the
// featurizer section was trained on: same table list (the featurizer
// parameter order) AND same per-table row counts (the synthetic
// generators keep table names fixed across seeds and scales, so a
// serve process started with the wrong -seed/-scale would otherwise
// load cleanly and serve featurizer weights fit to different data).
func sameDatabase(info *CheckpointInfo, db *sqldb.DB) error {
	names := db.TableNames()
	if len(info.Tables) != len(names) {
		return fmt.Errorf("mtmlf: checkpoint trained on %d tables, model database has %d", len(info.Tables), len(names))
	}
	for i := range info.Tables {
		if info.Tables[i] != names[i] {
			return fmt.Errorf("mtmlf: checkpoint table %d is %q, model database has %q", i, info.Tables[i], names[i])
		}
	}
	rows := tableRows(db)
	if len(info.TableRows) != len(rows) {
		return fmt.Errorf("mtmlf: checkpoint lacks per-table row counts (%d for %d tables)", len(info.TableRows), len(rows))
	}
	for i := range rows {
		if info.TableRows[i] != rows[i] {
			return fmt.Errorf("mtmlf: checkpoint table %q has %d rows, model database has %d (database seed/scale mismatch?)",
				info.Tables[i], info.TableRows[i], rows[i])
		}
	}
	return nil
}
