package mtmlf

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"testing"

	"mtmlf/internal/ckptio"
	"mtmlf/internal/nn"
)

func loadFileInto(path string, m *Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = Load(f, m)
	return err
}

// writeV1Checkpoint produces the historical v1 layout — one gob
// stream: header, meta, params — which the v2 loader must keep
// reading.
func writeV1Checkpoint(t testing.TB, m *Model, sharedOnly bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := nn.WriteHeader(enc, CheckpointMagic, 1); err != nil {
		t.Fatal(err)
	}
	db := m.Feat.DB
	meta := checkpointMeta{
		Config:     m.Shared.Cfg,
		DBName:     db.Name,
		Tables:     db.TableNames(),
		TableRows:  tableRows(db),
		SharedOnly: sharedOnly,
	}
	if err := enc.Encode(meta); err != nil {
		t.Fatal(err)
	}
	params := m.Params()
	if sharedOnly {
		params = m.Shared.Params()
	}
	if err := nn.EncodeParams(enc, params); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointV1StillLoads: artifacts written before the format
// gained checksums keep loading, bitwise, through both entry points.
func TestCheckpointV1StillLoads(t *testing.T) {
	m, _ := tinySetup(t, 71, 2)
	v1 := writeV1Checkpoint(t, m, false)

	restored := NewModel(m.Shared.Cfg, m.Feat.DB, 999)
	info, err := Load(bytes.NewReader(v1), restored)
	if err != nil {
		t.Fatalf("v1 full checkpoint: %v", err)
	}
	if info.Version != 1 {
		t.Fatalf("info.Version = %d, want 1", info.Version)
	}
	pa, pb := m.Params(), restored.Params()
	for i := range pa {
		for j := range pa[i].T.Data {
			if pa[i].T.Data[j] != pb[i].T.Data[j] {
				t.Fatalf("param %d differs after v1 load", i)
			}
		}
	}
	if _, info, err = LoadModel(bytes.NewReader(v1), m.Feat.DB); err != nil || info.Version != 1 {
		t.Fatalf("LoadModel on v1: info=%+v err=%v", info, err)
	}

	sharedV1 := writeV1Checkpoint(t, m, true)
	if info, err = Load(bytes.NewReader(sharedV1), NewModel(m.Shared.Cfg, m.Feat.DB, 5)); err != nil || !info.SharedOnly {
		t.Fatalf("v1 shared-only checkpoint: info=%+v err=%v", info, err)
	}
}

// loadAny tries both checkpoint entry points against a reusable
// destination model (corrupt inputs fail before any weight is copied,
// so reuse across attempts is safe); the corruption tests require
// each to fail typed.
func loadAny(m, dst *Model, data []byte) []error {
	_, errLoad := Load(bytes.NewReader(data), dst)
	_, _, errLoadModel := LoadModel(bytes.NewReader(data), m.Feat.DB)
	return []error{errLoad, errLoadModel}
}

// TestCheckpointDetectsBitFlips: single-bit flips anywhere in a v2
// checkpoint — preamble, frame headers, gob payloads, checksums —
// must fail both loaders with *ckptio.CorruptError, never load, never
// panic. The full cross-product is fuzz territory (FuzzLoadModel);
// the table here sweeps every bit of the structural prefix plus a
// stride across the parameter payload.
func TestCheckpointDetectsBitFlips(t *testing.T) {
	m, _ := tinySetup(t, 72, 1)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	dst := NewModel(m.Shared.Cfg, m.Feat.DB, 3)
	check := func(i, bit int) {
		mut := bytes.Clone(orig)
		mut[i] ^= 1 << bit
		for _, err := range loadAny(m, dst, mut) {
			var ce *ckptio.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("flip byte %d bit %d: got %v, want *ckptio.CorruptError", i, bit, err)
			}
		}
	}
	// Every bit of the structural prefix (preamble + first frame header
	// + start of the meta payload)...
	for i := 0; i < 64 && i < len(orig); i++ {
		for bit := 0; bit < 8; bit++ {
			check(i, bit)
		}
	}
	// ...then ~48 evenly spaced positions across the rest, rotating the
	// flipped bit. Each attempt clones and checksums the whole artifact,
	// so density here is wall-clock; the full cross-product lives in
	// FuzzLoadModel.
	stride := (len(orig) - 64) / 48
	if stride < 1 {
		stride = 1
	}
	for k, i := 0, 64; i < len(orig); k, i = k+1, i+stride {
		check(i, k%8)
	}
}

// TestCheckpointDetectsTruncation: every truncated prefix of a v2
// checkpoint fails typed — the torn-write shape a crash mid-save (or
// a FailingWriter, below) produces.
func TestCheckpointDetectsTruncation(t *testing.T) {
	m, _ := tinySetup(t, 73, 1)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	dst := NewModel(m.Shared.Cfg, m.Feat.DB, 3)
	stride := (len(orig) - 64) / 48
	if stride < 1 {
		stride = 1
	}
	for n := 0; n < len(orig); n++ {
		if n >= 64 && (n-64)%stride != 0 {
			continue
		}
		for _, err := range loadAny(m, dst, orig[:n]) {
			var ce *ckptio.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("truncate to %d bytes: got %v, want *ckptio.CorruptError", n, err)
			}
		}
	}
}

// TestCheckpointSaveThroughFailingWriter: an injected write failure
// (full disk, killed process) surfaces from Save, and whatever prefix
// landed is rejected as corrupt — the unit-level version of the
// SIGKILL drill in scripts/crash_resume_smoke.sh.
func TestCheckpointSaveThroughFailingWriter(t *testing.T) {
	m, _ := tinySetup(t, 74, 1)
	var full bytes.Buffer
	if err := Save(&full, m); err != nil {
		t.Fatal(err)
	}
	dst := NewModel(m.Shared.Cfg, m.Feat.DB, 3)
	for _, cut := range []int64{0, 5, 11, 12, 40, int64(full.Len()) - 1} {
		var torn bytes.Buffer
		if err := Save(&ckptio.FailingWriter{W: &torn, FailAfter: cut}, m); !errors.Is(err, ckptio.ErrInjected) {
			t.Fatalf("cut %d: Save returned %v, want injected failure", cut, err)
		}
		for _, err := range loadAny(m, dst, torn.Bytes()) {
			var ce *ckptio.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("cut %d: got %v, want *ckptio.CorruptError", cut, err)
			}
		}
	}
}

// TestSaveFileAtomic: SaveFile replaces the destination atomically
// and never leaves a torn file behind a failed producer.
func TestSaveFileAtomic(t *testing.T) {
	m, _ := tinySetup(t, 75, 1)
	path := t.TempDir() + "/model.ckpt"
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	restored := NewModel(m.Shared.Cfg, m.Feat.DB, 42)
	if err := loadFileInto(path, restored); err != nil {
		t.Fatalf("load after SaveFile: %v", err)
	}
	if err := SaveSharedFile(path, m); err != nil {
		t.Fatal(err)
	}
	if err := loadFileInto(path, restored); err != nil {
		t.Fatalf("load after SaveSharedFile: %v", err)
	}
}
