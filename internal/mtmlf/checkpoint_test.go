package mtmlf

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"mtmlf/internal/datagen"
	"mtmlf/internal/nn"
)

// TestFullCheckpointRoundTripBitwise is the regression test for the
// Shared-only save/load bug: train a model (featurizer pretraining
// included), save a full checkpoint, load it into a model built from
// a DIFFERENT seed — so every weight starts different — and require
// bitwise identical cardinality, cost, and join-order outputs. The
// old nn.Save(Shared.Params()) path fails this: the restored
// featurizer stays random, so the (F) embeddings (and everything
// downstream) diverge.
func TestFullCheckpointRoundTripBitwise(t *testing.T) {
	m, qs := tinySetup(t, 61, 6)
	m.TrainJoint(qs, TrainOptions{Epochs: 1, Seed: 62})

	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}

	restored := NewModel(m.Shared.Cfg, m.Feat.DB, 999)
	info, err := Load(bytes.NewReader(buf.Bytes()), restored)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != CheckpointVersion || info.SharedOnly {
		t.Fatalf("info = %+v", info)
	}
	if info.DBName != m.Feat.DB.Name {
		t.Fatalf("DBName %q, want %q", info.DBName, m.Feat.DB.Name)
	}

	for _, lq := range qs {
		a, b := m.EstimateNodeCards(lq), restored.EstimateNodeCards(lq)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("card[%d]: %v != %v (not bitwise)", i, a[i], b[i])
			}
		}
		ac, bc := m.EstimateNodeCosts(lq), restored.EstimateNodeCosts(lq)
		for i := range ac {
			if ac[i] != bc[i] {
				t.Fatalf("cost[%d]: %v != %v (not bitwise)", i, ac[i], bc[i])
			}
		}
		ao := m.InferJoinOrder(lq.Q, lq.Plan)
		bo := restored.InferJoinOrder(lq.Q, lq.Plan)
		if len(ao) != len(bo) {
			t.Fatalf("join order lengths %d != %d", len(ao), len(bo))
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("join order[%d]: %q != %q", i, ao[i], bo[i])
			}
		}
	}
}

// TestSharedOnlyCheckpointSkipsFeaturizer: the transfer escape hatch
// restores (S)+(T) and leaves the destination featurizer untouched.
func TestSharedOnlyCheckpointSkipsFeaturizer(t *testing.T) {
	m, qs := tinySetup(t, 63, 3)
	m.TrainJoint(qs, TrainOptions{Epochs: 1, Seed: 64})

	var buf bytes.Buffer
	if err := SaveShared(&buf, m); err != nil {
		t.Fatal(err)
	}
	restored := NewModel(m.Shared.Cfg, m.Feat.DB, 777)
	featBefore := restored.Feat.Params()[0].T.Data[0]
	info, err := Load(bytes.NewReader(buf.Bytes()), restored)
	if err != nil {
		t.Fatal(err)
	}
	if !info.SharedOnly {
		t.Fatal("info.SharedOnly = false")
	}
	if restored.Feat.Params()[0].T.Data[0] != featBefore {
		t.Fatal("shared-only load modified featurizer weights")
	}
	sa, sb := m.Shared.Params(), restored.Shared.Params()
	for i := range sa {
		for j := range sa[i].T.Data {
			if sa[i].T.Data[j] != sb[i].T.Data[j] {
				t.Fatalf("shared param %d differs after load", i)
			}
		}
	}
	// A shared-only checkpoint must be rejected by the serving loader.
	if _, _, err := LoadModel(bytes.NewReader(buf.Bytes()), m.Feat.DB); err == nil {
		t.Fatal("LoadModel accepted a shared-only checkpoint")
	}
}

// TestLoadModelReconstructsConfig: the serving entry point builds the
// model from the checkpoint's config echo and matches the source
// model exactly.
func TestLoadModelReconstructsConfig(t *testing.T) {
	m, qs := tinySetup(t, 65, 2)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	restored, info, err := LoadModel(bytes.NewReader(buf.Bytes()), m.Feat.DB)
	if err != nil {
		t.Fatal(err)
	}
	if info.Config != m.Shared.Cfg {
		t.Fatalf("config echo %+v != %+v", info.Config, m.Shared.Cfg)
	}
	lq := qs[0]
	a, b := m.EstimateNodeCards(lq), restored.EstimateNodeCards(lq)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("card[%d] differs", i)
		}
	}
}

// TestCheckpointRejections covers the typed failure modes: foreign
// magic, future version, config drift, table-list drift, and the
// plain nn format without a header.
func TestCheckpointRejections(t *testing.T) {
	m, _ := tinySetup(t, 66, 1)

	t.Run("wrong magic", func(t *testing.T) {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		if err := nn.WriteHeader(enc, "NOT-MTMLF", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bytes.NewReader(buf.Bytes()), m); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("want magic error, got %v", err)
		}
	})

	t.Run("future version", func(t *testing.T) {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		if err := nn.WriteHeader(enc, CheckpointMagic, CheckpointVersion+1); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bytes.NewReader(buf.Bytes()), m); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("want version error, got %v", err)
		}
	})

	t.Run("headerless legacy stream", func(t *testing.T) {
		var buf bytes.Buffer
		if err := nn.Save(&buf, m.Shared.Params()); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bytes.NewReader(buf.Bytes()), m); err == nil {
			t.Fatal("accepted a headerless parameter stream")
		}
	})

	t.Run("config mismatch", func(t *testing.T) {
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatal(err)
		}
		cfg := m.Shared.Cfg
		cfg.Blocks++
		other := NewModel(cfg, m.Feat.DB, 1)
		if _, err := Load(bytes.NewReader(buf.Bytes()), other); err == nil || !strings.Contains(err.Error(), "config") {
			t.Fatalf("want config error, got %v", err)
		}
	})

	t.Run("table mismatch", func(t *testing.T) {
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatal(err)
		}
		db2 := tinyDB()
		db2.Tables = db2.Tables[:len(db2.Tables)-1]
		other := NewModel(m.Shared.Cfg, db2, 1)
		if _, err := Load(bytes.NewReader(buf.Bytes()), other); err == nil || !strings.Contains(err.Error(), "table") {
			t.Fatalf("want table error, got %v", err)
		}
	})

	t.Run("row-count mismatch (seed/scale drift)", func(t *testing.T) {
		// The synthetic generators keep table names fixed across seeds
		// and scales; a database regenerated with different parameters
		// must be caught by the per-table row-count fingerprint, not
		// load cleanly with featurizer weights fit to different data.
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatal(err)
		}
		db2 := datagen.SyntheticIMDB(5, 0.04) // tinyDB is seed 5, scale 0.05
		other := NewModel(m.Shared.Cfg, db2, 1)
		if _, err := Load(bytes.NewReader(buf.Bytes()), other); err == nil || !strings.Contains(err.Error(), "rows") {
			t.Fatalf("want row-count error, got %v", err)
		}
		if _, _, err := LoadModel(bytes.NewReader(buf.Bytes()), db2); err == nil || !strings.Contains(err.Error(), "rows") {
			t.Fatalf("LoadModel: want row-count error, got %v", err)
		}
	})
}
