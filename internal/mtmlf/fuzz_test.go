package mtmlf

import (
	"bytes"
	"testing"
)

// FuzzLoadModel: arbitrary bytes fed to both checkpoint entry points
// must return an error (or a valid model) — never panic, never divide
// by zero on a hostile Config, never allocate unboundedly. The seed
// corpus covers both format versions, both save flavors, and the
// torn-write / bit-flip shapes the deterministic durability tests
// sweep; the fuzzer explores the cross-product from there.
//
// Run longer than the CI smoke with:
//
//	go test ./internal/mtmlf -run=NONE -fuzz=FuzzLoadModel -fuzztime=5m
func FuzzLoadModel(f *testing.F) {
	db := tinyDB()
	m := NewModel(tinyConfig(), db, 17)
	var v2, shared bytes.Buffer
	if err := Save(&v2, m); err != nil {
		f.Fatal(err)
	}
	if err := SaveShared(&shared, m); err != nil {
		f.Fatal(err)
	}
	v1 := writeV1Checkpoint(f, m, false)
	flip2 := bytes.Clone(v2.Bytes())
	flip2[20] ^= 1
	flip1 := bytes.Clone(v1)
	flip1[len(flip1)/2] ^= 0x10
	for _, seed := range [][]byte{
		v2.Bytes(),
		shared.Bytes(),
		v1,
		writeV1Checkpoint(f, m, true),
		v2.Bytes()[:len(v2.Bytes())/2], // torn write
		v2.Bytes()[:11],                // truncated preamble
		flip2,                          // bit rot under a checksum
		flip1,                          // bit rot with no checksum (v1)
		[]byte(CheckpointMagic),
		{},
	} {
		f.Add(seed)
	}
	// Corrupt inputs fail before any weight is copied, so one
	// destination model is safe to reuse across executions.
	dst := NewModel(tinyConfig(), db, 3)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Errors (typed or otherwise) are the expected outcome on
		// mutated inputs; the property under test is that neither entry
		// point ever panics.
		_, _, _ = LoadModel(bytes.NewReader(data), db)
		_, _ = Load(bytes.NewReader(data), dst)
	})
}
