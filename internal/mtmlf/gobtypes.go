package mtmlf

import (
	"encoding/gob"
	"io"

	"mtmlf/internal/nn"
)

// init pins encoding/gob's process-global type-ID allocation to one
// canonical order. Gob assigns a wire type ID the first time a type is
// encoded anywhere in the process, and those IDs appear in the encoded
// bytes — so without this, a run that writes a training-state snapshot
// before its first checkpoint would save a checkpoint that is
// semantically identical but not byte-identical to one from a run
// that never snapshotted. The durability contract leans on
// byte-identical artifacts (`cmp` in the resume and corpus smoke
// drills), so every gob type this package writes is registered here,
// in one fixed order, before any artifact is produced.
func init() {
	enc := gob.NewEncoder(io.Discard)
	// Checkpoint stream types, in v1 stream order: nn header, meta,
	// parameter blobs.
	_ = nn.WriteHeader(enc, CheckpointMagic, CheckpointVersion)
	_ = enc.Encode(checkpointMeta{})
	_ = nn.EncodeParams(enc, nil)
	// Snapshot stream types.
	_ = enc.Encode(snapshotMeta{})
	_ = enc.Encode(nn.AdamState{})
}
