// The serving fast path of the model: no-grad twins of Represent and
// the task heads, and the one-call join-order inference entry point.
// Every function here produces bitwise identical numbers to the
// grad-tracked pipeline (eps = 0 tests in infer_test.go) while
// building no autodiff graph and drawing intermediates from pooled
// buffers.
package mtmlf

import (
	"fmt"
	"math"

	"mtmlf/internal/ag"
	"mtmlf/internal/nn"
	"mtmlf/internal/plan"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
)

// InferRep is the no-grad counterpart of Representation: raw tensors
// owned by the evaluator that produced them (valid until its Reset).
type InferRep struct {
	// S holds the shared representation, one row per plan node in
	// post-order.
	S *tensor.Tensor
	// Memory holds the leaf rows of S in q.Tables order.
	Memory *tensor.Tensor
	// Tables is the memory row order (== q.Tables).
	Tables []string
}

// RepresentInfer runs the I→F→S dataflow on the Eval fast path. The
// returned tensors live in e's pool: they are valid until e.Reset()
// (or ReleaseEval) and must be cloned to outlive it.
func (m *Model) RepresentInfer(e *ag.Eval, q *sqldb.Query, p *plan.Node) *InferRep {
	cfg := m.Shared.Cfg
	db := m.Feat.DB
	if len(db.Tables) > cfg.MaxTables {
		panic(fmt.Sprintf("mtmlf: database has %d tables, model supports %d", len(db.Tables), cfg.MaxTables))
	}
	nodes := p.Nodes()
	paths := p.Paths()

	fixedW := cfg.MaxTables + plan.NumScanOps + plan.NumJoinOps + 2
	rows := make([]*tensor.Tensor, len(nodes))
	leafRow := map[string]int{}
	for i, n := range nodes {
		fixed := e.Get(1, fixedW)
		for _, t := range n.Tables() {
			idx := db.TableIndex(t)
			if idx < 0 {
				panic(fmt.Sprintf("mtmlf: plan references unknown table %q", t))
			}
			fixed.Data[idx] = 1
		}
		estCard := m.Feat.Stats.EstimateSubplanCard(n.Tables(), q)
		fixed.Data[fixedW-1] = math.Log(estCard+1) / 20
		var embPart *tensor.Tensor
		if n.IsLeaf() {
			fixed.Data[cfg.MaxTables+int(n.Scan)] = 1
			embPart = m.Feat.EncodeTableInfer(e, n.Table, q.FiltersFor(n.Table))
			leafRow[n.Table] = i
		} else {
			fixed.Data[cfg.MaxTables+plan.NumScanOps+int(n.Join)] = 1
			fixed.Data[fixedW-2] = 1 // isJoin flag
			embPart = m.Shared.JoinEmb.Infer(e, []int{int(n.Join)})
		}
		rows[i] = e.ConcatCols(fixed, embPart)
	}
	raw := e.ConcatRows(rows...)
	x := m.Shared.NodeProj.Infer(e, raw)

	tp := make([]nn.TreePath, len(paths))
	for i, p := range paths {
		tp[i] = nn.TreePath(p)
	}
	x = e.Add(x, m.Shared.TreePos.Infer(e, tp))

	S := m.Shared.Share.Infer(e, x, nil)

	mem := e.Get(len(q.Tables), cfg.Dim)
	for i, t := range q.Tables {
		ri, ok := leafRow[t]
		if !ok {
			panic(fmt.Sprintf("mtmlf: query table %q missing from plan", t))
		}
		copy(mem.Row(i), S.Row(ri))
	}
	return &InferRep{S: S, Memory: mem, Tables: append([]string{}, q.Tables...)}
}

// PredictLogCardsInfer returns the per-node log-cardinality
// predictions on the fast path.
func (m *Model) PredictLogCardsInfer(e *ag.Eval, rep *InferRep) *tensor.Tensor {
	return m.Shared.CardHead.Infer(e, rep.S)
}

// PredictLogCostsInfer returns the per-node log-cost predictions on
// the fast path.
func (m *Model) PredictLogCostsInfer(e *ag.Eval, rep *InferRep) *tensor.Tensor {
	return m.Shared.CostHead.Infer(e, rep.S)
}

// InferJoinOrder predicts the join order for a query end to end on
// the fast path: one no-grad Represent, then KV-cached constrained
// beam search. This is what the experiment tables and CLIs serve
// from; it returns the same order as Represent + JoinOrderFor.
func (m *Model) InferJoinOrder(q *sqldb.Query, p *plan.Node) []string {
	e := ag.AcquireEval()
	defer ag.ReleaseEval(e)
	rep := m.RepresentInfer(e, q, p)
	best, ok := BestBeam(m.Shared.JO.BeamSearchTensor(rep.Memory, q, m.Shared.Cfg.BeamWidth, true))
	if !ok {
		return nil
	}
	return best.OrderTables(rep.Tables)
}
