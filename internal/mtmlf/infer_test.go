package mtmlf

import (
	"fmt"
	"testing"

	"mtmlf/internal/ag"
	"mtmlf/internal/tensor"
)

// TestBeamSearchCachedMatchesLegacy is the tentpole equivalence test:
// KV-cached incremental beam search must return the same beams with
// the same log-probs (eps = 0, bitwise) as the full-prefix recompute,
// at every beam width, constrained and unconstrained.
func TestBeamSearchCachedMatchesLegacy(t *testing.T) {
	m, qs := tinySetup(t, 41, 4)
	for _, k := range []int{1, 2, 5} {
		for _, constrained := range []bool{true, false} {
			t.Run(fmt.Sprintf("k=%d/constrained=%v", k, constrained), func(t *testing.T) {
				for _, lq := range qs {
					rep := m.Represent(lq.Q, lq.Plan)
					legacy := m.Shared.JO.BeamSearchLegacy(rep.Memory, lq.Q, k, constrained)
					cached := m.Shared.JO.BeamSearch(rep.Memory, lq.Q, k, constrained)
					if len(legacy) != len(cached) {
						t.Fatalf("beam count: legacy %d, cached %d", len(legacy), len(cached))
					}
					for i := range legacy {
						if legacy[i].LogProb != cached[i].LogProb {
							t.Fatalf("beam %d logprob: legacy %v, cached %v (diff %g)",
								i, legacy[i].LogProb, cached[i].LogProb,
								legacy[i].LogProb-cached[i].LogProb)
						}
						if legacy[i].Legal != cached[i].Legal {
							t.Fatalf("beam %d legality differs", i)
						}
						if len(legacy[i].Positions) != len(cached[i].Positions) {
							t.Fatalf("beam %d length differs", i)
						}
						for j := range legacy[i].Positions {
							if legacy[i].Positions[j] != cached[i].Positions[j] {
								t.Fatalf("beam %d position %d: legacy %d, cached %d",
									i, j, legacy[i].Positions[j], cached[i].Positions[j])
							}
						}
					}
				}
			})
		}
	}
}

// TestScoreSequenceFastMatchesGrad asserts the no-grad sequence scorer
// returns exactly the differentiable ScoreSequence value.
func TestScoreSequenceFastMatchesGrad(t *testing.T) {
	m, qs := tinySetup(t, 42, 3)
	for _, lq := range qs {
		rep := m.Represent(lq.Q, lq.Plan)
		for _, r := range m.Shared.JO.BeamSearch(rep.Memory, lq.Q, 3, false) {
			want := m.Shared.JO.ScoreSequence(rep.Memory, r.Positions).Item()
			got := m.Shared.JO.ScoreSequenceFast(rep.Memory.T, r.Positions)
			if want != got {
				t.Fatalf("seq %v: grad %v, fast %v (diff %g)", r.Positions, want, got, want-got)
			}
		}
	}
}

// TestRepresentInferMatchesGrad asserts the no-grad representation and
// both task heads are bitwise identical to the grad-tracked pipeline —
// encoder, decoder memory, and heads (the satellite no-grad coverage).
func TestRepresentInferMatchesGrad(t *testing.T) {
	m, qs := tinySetup(t, 43, 3)
	e := ag.NewEval()
	defer e.Reset()
	for _, lq := range qs {
		grad := m.Represent(lq.Q, lq.Plan)
		fast := m.RepresentInfer(e, lq.Q, lq.Plan)
		if !tensor.Equal(grad.S.T, fast.S, 0) {
			t.Fatal("S differs between grad and no-grad paths")
		}
		if !tensor.Equal(grad.Memory.T, fast.Memory, 0) {
			t.Fatal("Memory differs between grad and no-grad paths")
		}
		if !tensor.Equal(m.PredictLogCards(grad).T, m.PredictLogCardsInfer(e, fast), 0) {
			t.Fatal("card head differs between grad and no-grad paths")
		}
		if !tensor.Equal(m.PredictLogCosts(grad).T, m.PredictLogCostsInfer(e, fast), 0) {
			t.Fatal("cost head differs between grad and no-grad paths")
		}
		e.Reset()
	}
}

// TestInferJoinOrderMatchesGradPath asserts the one-call serving entry
// point returns the same order as the grad-path Represent+JoinOrderFor.
func TestInferJoinOrderMatchesGradPath(t *testing.T) {
	m, qs := tinySetup(t, 44, 4)
	for _, lq := range qs {
		rep := m.Represent(lq.Q, lq.Plan)
		want := m.JoinOrderFor(lq.Q, rep)
		got := m.InferJoinOrder(lq.Q, lq.Plan)
		if len(want) != len(got) {
			t.Fatalf("order length: grad %v, infer %v", want, got)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("order differs: grad %v, infer %v", want, got)
			}
		}
	}
}
