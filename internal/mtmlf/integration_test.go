package mtmlf

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"mtmlf/internal/nn"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

// TestBeamSearchWideBeamFindsBestLegal verifies that with a beam wide
// enough to hold every hypothesis, constrained beam search returns the
// same best sequence as exhaustive enumeration over legal orders.
func TestBeamSearchWideBeamFindsBestLegal(t *testing.T) {
	m, qs := tinySetup(t, 40, 6)
	for _, lq := range qs {
		n := len(lq.Q.Tables)
		if n > 4 {
			continue
		}
		rep := m.Represent(lq.Q, lq.Plan)
		jo := m.Shared.JO
		res := jo.BeamSearch(rep.Memory, lq.Q, 1000, true)
		if len(res) == 0 {
			t.Fatal("no candidates")
		}
		best := res[0]
		for _, r := range res[1:] {
			if r.LogProb > best.LogProb {
				best = r
			}
		}
		// Exhaustive: enumerate all legal permutations and score them
		// with the same per-step candidate normalization.
		adj := positionAdjacency(lq.Q)
		var bestExh float64 = math.Inf(-1)
		perm := make([]int, 0, n)
		used := make([]bool, n)
		var rec func(logp float64)
		rec = func(logp float64) {
			if len(perm) == n {
				if logp > bestExh {
					bestExh = logp
				}
				return
			}
			step := len(perm)
			cands := legalNext(adj, used, step)
			if len(cands) == 0 {
				return
			}
			logits := jo.Logits(rep.Memory, perm)
			row := logits.T.Row(step)
			lse := math.Inf(-1)
			for _, c := range cands {
				lse = logAdd(lse, row[c])
			}
			for _, c := range cands {
				used[c] = true
				perm = append(perm, c)
				rec(logp + row[c] - lse)
				perm = perm[:len(perm)-1]
				used[c] = false
			}
		}
		rec(0)
		if math.Abs(best.LogProb-bestExh) > 1e-9 {
			t.Fatalf("wide beam %g != exhaustive best %g", best.LogProb, bestExh)
		}
	}
}

// TestBeamProbabilitiesNormalized checks that for a full-width beam the
// first-step candidate probabilities sum to 1 (they are normalized over
// the legal candidate set).
func TestBeamProbabilitiesNormalized(t *testing.T) {
	m, qs := tinySetup(t, 41, 3)
	lq := qs[0]
	rep := m.Represent(lq.Q, lq.Plan)
	res := m.Shared.JO.BeamSearch(rep.Memory, lq.Q, 10000, true)
	// Group by first position; each complete sequence's probability is
	// a product of step conditionals, so the total over all sequences
	// must be 1.
	var total float64
	for _, r := range res {
		total += math.Exp(r.LogProb)
	}
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("sequence probabilities sum to %g, want 1", total)
	}
}

// TestSharedRoundtripThroughGob saves a trained Shared and restores it
// into a new model, verifying identical predictions — the provider→user
// artifact flow of Section 2.3.
func TestSharedRoundtripThroughGob(t *testing.T) {
	m, qs := tinySetup(t, 42, 8)
	m.TrainJoint(qs, TrainOptions{Epochs: 1, Seed: 43})

	var buf bytes.Buffer
	if err := nn.Save(&buf, m.Shared.Params()); err != nil {
		t.Fatal(err)
	}
	restored := &Model{Shared: NewShared(m.Shared.Cfg, 999), Feat: m.Feat}
	if err := nn.Load(&buf, restored.Shared.Params()); err != nil {
		t.Fatal(err)
	}
	lq := qs[0]
	a := m.EstimateNodeCards(lq)
	b := restored.EstimateNodeCards(lq)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatal("restored shared module predicts differently")
		}
	}
	ra := m.Represent(lq.Q, lq.Plan)
	rb := restored.Represent(lq.Q, lq.Plan)
	oa := m.JoinOrderFor(lq.Q, ra)
	ob := restored.JoinOrderFor(lq.Q, rb)
	if len(oa) != len(ob) {
		t.Fatal("restored join order length differs")
	}
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("restored join order differs")
		}
	}
}

// TestRepresentationDeterministic verifies inference is deterministic:
// the same query yields bit-identical representations across calls.
func TestRepresentationDeterministic(t *testing.T) {
	m, qs := tinySetup(t, 44, 2)
	lq := qs[0]
	r1 := m.Represent(lq.Q, lq.Plan)
	r2 := m.Represent(lq.Q, lq.Plan)
	if !tensor.Equal(r1.S.T, r2.S.T, 0) {
		t.Fatal("representation not deterministic")
	}
}

// TestTrainingIsSeedReproducible verifies two identically seeded
// training runs produce identical parameters.
func TestTrainingIsSeedReproducible(t *testing.T) {
	build := func() *Model {
		db := tinyDB()
		m := NewModel(tinyConfig(), db, 7)
		gen := workload.NewGenerator(db, 8)
		cfg := workload.DefaultConfig()
		cfg.MaxTables = 3
		m.Feat.PretrainAll(gen, 5, 1, cfg)
		qs := gen.Generate(5, cfg)
		m.TrainJoint(qs, TrainOptions{Epochs: 2, Seed: 9})
		return m
	}
	a, b := build(), build()
	pa, pb := a.Shared.Params(), b.Shared.Params()
	for i := range pa {
		if !tensor.Equal(pa[i].T, pb[i].T, 0) {
			t.Fatalf("parameter %d differs between identically seeded runs", i)
		}
	}
}

// TestSequenceLossPrefersOptimal sanity-checks Equation 3: training a
// few steps on the sequence loss raises the optimal order's score.
func TestSequenceLossPrefersOptimal(t *testing.T) {
	m, qs := tinySetup(t, 45, 10)
	var lq *workload.LabeledQuery
	for _, q := range qs {
		if len(q.OptimalOrder) >= 3 {
			lq = q
			break
		}
	}
	if lq == nil {
		t.Skip("no suitable query")
	}
	score := func() float64 {
		rep := m.Represent(lq.Q, lq.Plan)
		return m.Shared.JO.ScoreSequence(rep.Memory, orderPositions(rep, lq.OptimalOrder)).Item()
	}
	before := score()
	opt := nn.NewAdam(m.Shared.Params(), 1e-3)
	for i := 0; i < 20; i++ {
		opt.ZeroGrad()
		rep := m.Represent(lq.Q, lq.Plan)
		loss := m.JoinOrderSequenceLoss(rep, lq.Q, lq.OptimalOrder)
		loss.Backward()
		opt.Step()
	}
	after := score()
	if after <= before {
		t.Fatalf("sequence loss did not raise optimal-order score: %g -> %g", before, after)
	}
}

// TestOrderPositionsSorted ensures position mapping covers the query's
// tables exactly once.
func TestOrderPositionsSorted(t *testing.T) {
	m, qs := tinySetup(t, 46, 3)
	for _, lq := range qs {
		if lq.OptimalOrder == nil {
			continue
		}
		rep := m.Represent(lq.Q, lq.Plan)
		pos := orderPositions(rep, lq.OptimalOrder)
		sorted := append([]int{}, pos...)
		sort.Ints(sorted)
		for i, p := range sorted {
			if p != i {
				t.Fatalf("positions %v are not a permutation", pos)
			}
		}
	}
}
