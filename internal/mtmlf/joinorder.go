package mtmlf

import (
	"math"
	"math/rand"
	"sort"

	"mtmlf/internal/ag"
	"mtmlf/internal/nn"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
)

// JoinOrder is Trans_JO (Figure 2 T.iii): a transformer decoder that
// emits the join order one table per timestamp. Following the seq2seq
// framing of Section 4.2, Trans_Share acts as the encoder and the leaf
// representations (S_1..S_m) are the decoder memory. The output
// distribution P̂_t is computed pointer-style: a scaled dot product
// between the decoder state and the memory rows, so the distribution
// ranges over the query's tables. This keeps the head independent of
// any global table numbering, which is what lets the (T) module
// transfer across databases with different schemas (Section 3.3); the
// paper's fixed n-way softmax is recovered by mapping memory positions
// back to table ids.
type JoinOrder struct {
	Dec *nn.Decoder
	// Start is the learned begin-of-sequence token.
	Start *ag.Value
	// PrevProj embeds the previously selected table's memory row as
	// the next decoder input (the paper's "output of Trans_JO from the
	// previous timestamp" input).
	PrevProj *nn.Linear
	dim      int
}

// NewJoinOrder builds the decoder.
func NewJoinOrder(rng *rand.Rand, cfg Config) *JoinOrder {
	return &JoinOrder{
		Dec:      nn.NewDecoder(rng, cfg.Dim, cfg.Heads, cfg.DecBlocks),
		Start:    ag.Param(tensor.RandNorm(rng, 1, cfg.Dim, 0.02)),
		PrevProj: nn.NewLinear(rng, cfg.Dim, cfg.Dim),
		dim:      cfg.Dim,
	}
}

// Params implements nn.Module.
func (j *JoinOrder) Params() []*ag.Value {
	out := []*ag.Value{j.Start}
	out = append(out, j.PrevProj.Params()...)
	out = append(out, j.Dec.Params()...)
	return out
}

// Logits runs the decoder for len(prev)+1 timestamps with teacher
// forcing: prev holds the memory positions selected at earlier
// timestamps. The result is a [len(prev)+1, m] matrix of unnormalized
// scores over memory positions.
func (j *JoinOrder) Logits(memory *ag.Value, prev []int) *ag.Value {
	tokens := []*ag.Value{j.Start}
	for _, p := range prev {
		row := ag.SliceRows(memory, p, p+1)
		tokens = append(tokens, j.PrevProj.Forward(row))
	}
	x := ag.ConcatRows(tokens...)
	out := j.Dec.Forward(x, memory, nn.CausalMask(len(tokens)))
	scale := 1 / math.Sqrt(float64(j.dim))
	return ag.Scale(ag.MatMulTransB(out, memory), scale)
}

// maskRow builds a [1, m] additive mask blocking the given positions.
func maskRow(m int, blocked func(int) bool) *tensor.Tensor {
	t := tensor.New(1, m)
	for i := 0; i < m; i++ {
		if blocked(i) {
			t.Data[i] = -1e9
		}
	}
	return t
}

// ScoreSequence returns the differentiable log-probability of emitting
// the full position sequence seq, with already-used positions masked
// out of each step's softmax (so probabilities are normalized over the
// remaining tables).
func (j *JoinOrder) ScoreSequence(memory *ag.Value, seq []int) *ag.Value {
	mTabs := memory.Rows()
	logits := j.Logits(memory, seq[:len(seq)-1])
	total := ag.Scalar(0)
	used := make([]bool, mTabs)
	for t, pick := range seq {
		row := ag.SliceRows(logits, t, t+1)
		masked := ag.Add(row, ag.Const(maskRow(mTabs, func(i int) bool { return used[i] })))
		lp := ag.LogSoftmaxRows(masked)
		sel := tensor.New(1, mTabs)
		sel.Data[pick] = 1
		total = ag.Add(total, ag.SumAll(ag.Mul(lp, ag.Const(sel))))
		used[pick] = true
	}
	return total
}

// logitsInfer is the no-grad twin of Logits: one full-prefix forward
// on the Eval fast path, bitwise identical to Logits' forward result.
func (j *JoinOrder) logitsInfer(e *ag.Eval, mem *tensor.Tensor, prev []int) *tensor.Tensor {
	var x *tensor.Tensor
	if len(prev) == 0 {
		x = j.Start.T
	} else {
		x = e.ConcatRows(j.Start.T, j.PrevProj.Infer(e, e.Gather(mem, prev)))
	}
	out := j.Dec.Infer(e, x, mem, nn.CausalMask(x.Rows()))
	scale := 1 / math.Sqrt(float64(j.dim))
	return e.Scale(e.MatMulTransB(out, mem), scale)
}

// ScoreSequenceFast is the no-grad twin of ScoreSequence for serving
// and evaluation paths: it returns the same masked log-probability of
// emitting seq, as a plain float, without building a graph.
func (j *JoinOrder) ScoreSequenceFast(mem *tensor.Tensor, seq []int) float64 {
	e := ag.AcquireEval()
	defer ag.ReleaseEval(e)
	mTabs := mem.Rows()
	logits := j.logitsInfer(e, mem, seq[:len(seq)-1])
	var total float64
	used := make([]bool, mTabs)
	masked := e.Get(1, mTabs)
	for t, pick := range seq {
		row := logits.Row(t)
		for i := 0; i < mTabs; i++ {
			// Same arithmetic as adding the 0 / -1e9 mask row in
			// ScoreSequence (x + 0 normalizes a -0 exactly like ag.Add).
			if used[i] {
				masked.Data[i] = row[i] + (-1e9)
			} else {
				masked.Data[i] = row[i] + 0
			}
		}
		lp := e.LogSoftmaxRows(masked)
		total += lp.Data[pick]
		used[pick] = true
	}
	return total
}

// positionAdjacency builds the query-local adjacency matrix of
// Section 4.3 ("we utilize this relationship to construct a
// corresponding adjacency matrix for each query"): adj[i][j] reports
// whether tables i and j of the query share a join predicate.
func positionAdjacency(q *sqldb.Query) [][]bool {
	pos := map[string]int{}
	for i, t := range q.Tables {
		pos[t] = i
	}
	adj := make([][]bool, len(q.Tables))
	for i := range adj {
		adj[i] = make([]bool, len(q.Tables))
	}
	for _, e := range q.Joins {
		i, iok := pos[e.T1]
		j, jok := pos[e.T2]
		if iok && jok {
			adj[i][j] = true
			adj[j][i] = true
		}
	}
	return adj
}

// legalNext reports which positions may legally extend a partial
// order: unused, and (after the first step) sharing a join key with
// some already-joined table.
func legalNext(adj [][]bool, used []bool, step int) []int {
	var out []int
	for i := range used {
		if used[i] {
			continue
		}
		if step == 0 {
			out = append(out, i)
			continue
		}
		for k := range used {
			if used[k] && adj[i][k] {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// beamState is one partial hypothesis.
type beamState struct {
	seq  []int
	logp float64
}

// BeamSearchResult is one completed hypothesis.
type BeamSearchResult struct {
	Positions []int
	LogProb   float64
	Legal     bool
}

// BestBeam returns the highest log-probability hypothesis; ok is
// false for an empty result set (under the constrained search, a
// disconnected join graph). Every consumer of a beam search — the
// inference entry points here and the serving engine — picks its
// winner through this one function.
func BestBeam(res []BeamSearchResult) (best BeamSearchResult, ok bool) {
	if len(res) == 0 {
		return BeamSearchResult{}, false
	}
	best = res[0]
	for _, r := range res[1:] {
		if r.LogProb > best.LogProb {
			best = r
		}
	}
	return best, true
}

// OrderTables maps the hypothesis' memory positions to table names
// using the memory row order (Representation/InferRep .Tables).
func (r BeamSearchResult) OrderTables(tables []string) []string {
	out := make([]string, len(r.Positions))
	for i, pos := range r.Positions {
		out[i] = tables[pos]
	}
	return out
}

// BeamSearch decodes a join order with the legality-pruned beam search
// of Section 4.3: at each timestamp only tables sharing a join key
// with the joined prefix are expanded, so every returned top candidate
// is executable. Setting constrained=false disables the pruning and
// also surfaces illegal candidates — the Ū(x) set needed by the
// Equation 3 sequence-level loss.
//
// This is the KV-cached incremental implementation: the memory is
// encoded once, each beam is extended by one token per step against
// its per-layer K/V caches (cloned on beam fork), and the k beams'
// per-step projections run through the batched matmul kernels in one
// dispatch. Beams and log-probs are bitwise identical to the
// full-prefix recompute kept as BeamSearchLegacy (eps = 0 test).
func (j *JoinOrder) BeamSearch(memory *ag.Value, q *sqldb.Query, k int, constrained bool) []BeamSearchResult {
	return j.BeamSearchTensor(memory.T, q, k, constrained)
}

// cachedBeam is one partial hypothesis of the cached search.
type cachedBeam struct {
	seq   []int
	logp  float64
	cache *nn.DecCache
}

// BeamSearchTensor is BeamSearch over a raw memory tensor — the
// entry point for the no-grad serving path, which has no ag.Value
// wrapping the memory.
func (j *JoinOrder) BeamSearchTensor(mem *tensor.Tensor, q *sqldb.Query, k int, constrained bool) []BeamSearchResult {
	mTabs := mem.Rows()
	adj := positionAdjacency(q)
	e := ag.AcquireEval()
	defer ag.ReleaseEval(e)
	scale := 1 / math.Sqrt(float64(j.dim))

	beams := []cachedBeam{{cache: j.Dec.NewCache(mem, mTabs)}}
	type candidate struct {
		parent int
		pos    int
		logp   float64
	}
	var cands []candidate
	lastPicks := make([]int, 0, k)
	for step := 0; step < mTabs; step++ {
		// One decoder step for every live beam: new input rows are the
		// projected previously-picked memory rows (the Start token at
		// step 0), batched into a single [numBeams, dim] matrix so the
		// per-step projections fuse into single kernel dispatches.
		var x *tensor.Tensor
		if step == 0 {
			x = j.Start.T
		} else {
			lastPicks = lastPicks[:0]
			for _, b := range beams {
				lastPicks = append(lastPicks, b.seq[len(b.seq)-1])
			}
			x = j.PrevProj.Infer(e, e.Gather(mem, lastPicks))
		}
		caches := make([]*nn.DecCache, len(beams))
		for i := range beams {
			caches[i] = beams[i].cache
		}
		out := j.Dec.StepBeams(e, x, caches)
		logits := e.Scale(e.MatMulTransB(out, mem), scale)

		cands = cands[:0]
		for bi, b := range beams {
			used := make([]bool, mTabs)
			for _, p := range b.seq {
				used[p] = true
			}
			var candidates []int
			if constrained {
				candidates = legalNext(adj, used, step)
			} else {
				for i := 0; i < mTabs; i++ {
					if !used[i] {
						candidates = append(candidates, i)
					}
				}
			}
			if len(candidates) == 0 {
				continue
			}
			row := logits.Row(bi)
			// Normalize over the candidate set.
			lse := math.Inf(-1)
			for _, c := range candidates {
				lse = logAdd(lse, row[c])
			}
			for _, c := range candidates {
				cands = append(cands, candidate{parent: bi, pos: c, logp: b.logp + row[c] - lse})
			}
		}
		if len(cands) == 0 {
			return nil
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].logp > cands[b].logp })
		if len(cands) > k {
			cands = cands[:k]
		}
		// Fork the surviving hypotheses: the first child of each parent
		// inherits the parent's (already extended) cache, later
		// children clone it.
		next := make([]cachedBeam, len(cands))
		cacheTaken := make([]bool, len(beams))
		for i, c := range cands {
			parent := beams[c.parent]
			cache := parent.cache
			if cacheTaken[c.parent] {
				cache = cache.Clone()
			}
			cacheTaken[c.parent] = true
			seq := make([]int, 0, len(parent.seq)+1)
			seq = append(seq, parent.seq...)
			next[i] = cachedBeam{seq: append(seq, c.pos), logp: c.logp, cache: cache}
		}
		beams = next
	}
	out := make([]BeamSearchResult, 0, len(beams))
	for _, b := range beams {
		out = append(out, BeamSearchResult{
			Positions: b.seq,
			LogProb:   b.logp,
			Legal:     isLegalOrder(adj, b.seq),
		})
	}
	return out
}

// BeamSearchLegacy is the pre-fast-path implementation: every beam
// re-runs the full decoder over its entire prefix at every step,
// building autodiff graphs along the way. It is retained as the
// reference for the eps = 0 equivalence tests and the speedup
// benchmarks; new code should call BeamSearch.
func (j *JoinOrder) BeamSearchLegacy(memory *ag.Value, q *sqldb.Query, k int, constrained bool) []BeamSearchResult {
	mTabs := memory.Rows()
	adj := positionAdjacency(q)
	beams := []beamState{{}}
	for step := 0; step < mTabs; step++ {
		var next []beamState
		for _, b := range beams {
			used := make([]bool, mTabs)
			for _, p := range b.seq {
				used[p] = true
			}
			var candidates []int
			if constrained {
				candidates = legalNext(adj, used, step)
			} else {
				for i := 0; i < mTabs; i++ {
					if !used[i] {
						candidates = append(candidates, i)
					}
				}
			}
			if len(candidates) == 0 {
				continue
			}
			logits := j.Logits(memory, b.seq)
			row := logits.T.Row(step)
			// Normalize over the candidate set.
			lse := math.Inf(-1)
			for _, c := range candidates {
				lse = logAdd(lse, row[c])
			}
			for _, c := range candidates {
				next = append(next, beamState{
					seq:  append(append([]int{}, b.seq...), c),
					logp: b.logp + row[c] - lse,
				})
			}
		}
		if len(next) == 0 {
			return nil
		}
		sort.Slice(next, func(a, b int) bool { return next[a].logp > next[b].logp })
		if len(next) > k {
			next = next[:k]
		}
		beams = next
	}
	out := make([]BeamSearchResult, 0, len(beams))
	for _, b := range beams {
		out = append(out, BeamSearchResult{
			Positions: b.seq,
			LogProb:   b.logp,
			Legal:     isLegalOrder(adj, b.seq),
		})
	}
	return out
}

// isLegalOrder verifies every prefix of a position sequence is
// connected under the adjacency matrix.
func isLegalOrder(adj [][]bool, seq []int) bool {
	for t := 1; t < len(seq); t++ {
		ok := false
		for _, prevPos := range seq[:t] {
			if adj[seq[t]][prevPos] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if b > a {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// JoinOrderFor predicts the join order for a query from its shared
// representation using constrained beam search; the Section 4.3
// guarantee holds: the returned order is always executable.
func (m *Model) JoinOrderFor(q *sqldb.Query, rep *Representation) []string {
	best, ok := BestBeam(m.Shared.JO.BeamSearch(rep.Memory, q, m.Shared.Cfg.BeamWidth, true))
	if !ok {
		return nil
	}
	return best.OrderTables(rep.Tables)
}
