package mtmlf

import (
	"math"

	"mtmlf/internal/ag"
	"mtmlf/internal/metrics"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

// This file implements the (L) loss criteria of Figure 2:
//
//	L.i / L.ii  — q-error losses for CardEst and CostEst. We optimize
//	              |log ĉ − log c|, the logarithm of the q-error
//	              max(ĉ/c, c/ĉ); the two have identical minimizers and
//	              the log form keeps gradients bounded for an
//	              untrained model.
//	L.iii       — token-level cross-entropy over join-order positions.
//	Section 5   — the sequence-level loss of Equation 3 built from
//	              beam-search candidates and JOEU.
//	Equation 1  — the weighted joint loss.

// logTargets converts positive labels into a [n,1] constant of logs.
func logTargets(vals []float64) *ag.Value {
	t := tensor.New(len(vals), 1)
	for i, v := range vals {
		if v < 1 {
			v = 1
		}
		t.Data[i] = math.Log(v)
	}
	return ag.Const(t)
}

// CardLoss is the L.i q-error loss over every plan node.
func (m *Model) CardLoss(rep *Representation, lq *workload.LabeledQuery) *ag.Value {
	pred := m.PredictLogCards(rep)
	return ag.MeanAll(ag.Abs(ag.Sub(pred, logTargets(lq.NodeCards))))
}

// CostLoss is the L.ii q-error loss over every plan node.
func (m *Model) CostLoss(rep *Representation, lq *workload.LabeledQuery) *ag.Value {
	pred := m.PredictLogCosts(rep)
	return ag.MeanAll(ag.Abs(ag.Sub(pred, logTargets(lq.NodeCosts))))
}

// orderPositions maps an optimal join order (table names) to memory
// positions within the representation.
func orderPositions(rep *Representation, order []string) []int {
	pos := map[string]int{}
	for i, t := range rep.Tables {
		pos[t] = i
	}
	out := make([]int, len(order))
	for i, t := range order {
		out[i] = pos[t]
	}
	return out
}

// JoinOrderTokenLoss is the L.iii token-level cross-entropy with
// teacher forcing: at each timestamp the ground-truth prefix is fed
// and the next optimal table is the target.
func (m *Model) JoinOrderTokenLoss(rep *Representation, optimal []string) *ag.Value {
	targets := orderPositions(rep, optimal)
	logits := m.Shared.JO.Logits(rep.Memory, targets[:len(targets)-1])
	return ag.CrossEntropyRows(logits, targets)
}

// JoinOrderSequenceLoss is the Equation 3 sequence-level loss:
//
//	L = −log p(u*|x)
//	  + Σ_{u ∈ U(x)}  (1 − JOEU(u, u*)) · log p(u|x)
//	  + λ · log Σ_{u ∈ Ū(x)} p(u|x)
//
// where U(x) / Ū(x) are the legal / illegal candidate sets produced by
// an unconstrained beam search.
func (m *Model) JoinOrderSequenceLoss(rep *Representation, q *sqldb.Query, optimal []string) *ag.Value {
	jo := m.Shared.JO
	targets := orderPositions(rep, optimal)
	loss := ag.Scale(jo.ScoreSequence(rep.Memory, targets), -1)

	cands := jo.BeamSearch(rep.Memory, q, m.Shared.Cfg.BeamWidth, false)
	var illegalScores []*ag.Value
	for _, c := range cands {
		if same(c.Positions, targets) {
			continue
		}
		score := jo.ScoreSequence(rep.Memory, c.Positions)
		if c.Legal {
			joeu := metrics.JOEUInt(c.Positions, targets)
			loss = ag.Add(loss, ag.Scale(score, 1-joeu))
		} else {
			illegalScores = append(illegalScores, score)
		}
	}
	if len(illegalScores) > 0 {
		// log Σ exp(score): scores are log-probs (≤ 0), so exp is safe.
		row := ag.ConcatCols(illegalScores...)
		loss = ag.Add(loss, ag.Scale(ag.Log(ag.SumAll(ag.Exp(row))), m.Shared.Cfg.Lambda))
	}
	return loss
}

func same(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
