// Reduced-precision serving replica of the model (DESIGN.md §9).
//
// LoweredModel mirrors the I→F→S→T inference dataflow on ag.EvalF32
// with f32 (or int8-weight) kernels for the featurizer, serializer,
// Trans_Share and the card/cost heads. The Trans_JO decoder stays at
// float64 on purpose: beam search threads KV state through the f64
// fast path, argmax join orders are the one output calibration demands
// be *identical* (not merely close) to the reference, and the decoder
// is ~a quarter of the parameters — so a lowered model up-converts its
// tiny [m, Dim] memory once per query and decodes at full precision.
// The resident-byte win is documented and tested: an int8 replica
// (weights int8, decoder f64) is well under half the f64 model.
//
// A replica references its source Model (statistics, raw featurization
// and the f64 decoder) and is rebuilt from it on reload; it holds no
// state of its own beyond the lowered weights.
package mtmlf

import (
	"fmt"
	"math"

	"mtmlf/internal/ag"
	"mtmlf/internal/featurize"
	"mtmlf/internal/nn"
	"mtmlf/internal/plan"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

// LoweredModel is a reduced-precision inference replica of a Model.
type LoweredModel struct {
	Precision nn.Precision
	Src       *Model
	// Lowered (F.iii) serializer + (S) + card/cost (T) modules.
	NodeProj *nn.LinearF32
	TreePos  *nn.TreePositionalEncoderF32
	JoinEmb  *nn.EmbeddingF32
	Share    *nn.EncoderF32
	CardHead *nn.MLPF32
	CostHead *nn.MLPF32
	// Lowered per-table featurizer encoders.
	Feat *featurize.FeaturizerF32
}

// Lower builds a reduced-precision serving replica of m. p must be
// PrecisionF32 or PrecisionInt8; the f64 tier serves from m itself.
func (m *Model) Lower(p nn.Precision) *LoweredModel {
	if p == nn.PrecisionF64 {
		panic("mtmlf: Lower(PrecisionF64) — serve the source model directly")
	}
	s := m.Shared
	return &LoweredModel{
		Precision: p,
		Src:       m,
		NodeProj:  nn.LowerLinear(s.NodeProj, p),
		TreePos:   nn.LowerTreePositionalEncoder(s.TreePos, p),
		JoinEmb:   nn.LowerEmbedding(s.JoinEmb),
		Share:     nn.LowerEncoder(s.Share, p),
		CardHead:  nn.LowerMLP(s.CardHead, p),
		CostHead:  nn.LowerMLP(s.CostHead, p),
		Feat:      m.Feat.Lower(p),
	}
}

// InferRepF32 is the lowered counterpart of InferRep: tensors owned by
// the evaluator that produced them (valid until its Reset).
type InferRepF32 struct {
	// S holds the shared representation, one row per plan node in
	// post-order.
	S *tensor.F32
	// Memory holds the leaf rows of S in q.Tables order.
	Memory *tensor.F32
	// Tables is the memory row order (== q.Tables).
	Tables []string
}

// RepresentInfer runs the I→F→S dataflow on the EvalF32 fast path,
// mirroring Model.RepresentInfer op for op at reduced precision.
func (lm *LoweredModel) RepresentInfer(e *ag.EvalF32, q *sqldb.Query, p *plan.Node) *InferRepF32 {
	cfg := lm.Src.Shared.Cfg
	db := lm.Src.Feat.DB
	if len(db.Tables) > cfg.MaxTables {
		panic(fmt.Sprintf("mtmlf: database has %d tables, model supports %d", len(db.Tables), cfg.MaxTables))
	}
	nodes := p.Nodes()
	paths := p.Paths()

	fixedW := cfg.MaxTables + plan.NumScanOps + plan.NumJoinOps + 2
	rows := make([]*tensor.F32, len(nodes))
	leafRow := map[string]int{}
	for i, n := range nodes {
		fixed := e.Get(1, fixedW)
		for _, t := range n.Tables() {
			idx := db.TableIndex(t)
			if idx < 0 {
				panic(fmt.Sprintf("mtmlf: plan references unknown table %q", t))
			}
			fixed.Data[idx] = 1
		}
		estCard := lm.Src.Feat.Stats.EstimateSubplanCard(n.Tables(), q)
		fixed.Data[fixedW-1] = float32(math.Log(estCard+1) / 20)
		var embPart *tensor.F32
		if n.IsLeaf() {
			fixed.Data[cfg.MaxTables+int(n.Scan)] = 1
			embPart = lm.Feat.EncodeTableInfer(e, n.Table, q.FiltersFor(n.Table))
			leafRow[n.Table] = i
		} else {
			fixed.Data[cfg.MaxTables+plan.NumScanOps+int(n.Join)] = 1
			fixed.Data[fixedW-2] = 1 // isJoin flag
			embPart = lm.JoinEmb.Infer(e, []int{int(n.Join)})
		}
		rows[i] = e.ConcatCols(fixed, embPart)
	}
	raw := e.ConcatRows(rows...)
	x := lm.NodeProj.Infer(e, raw)

	tp := make([]nn.TreePath, len(paths))
	for i, p := range paths {
		tp[i] = nn.TreePath(p)
	}
	x = e.Add(x, lm.TreePos.Infer(e, tp))

	S := lm.Share.Infer(e, x, nil)

	mem := e.Get(len(q.Tables), cfg.Dim)
	for i, t := range q.Tables {
		ri, ok := leafRow[t]
		if !ok {
			panic(fmt.Sprintf("mtmlf: query table %q missing from plan", t))
		}
		copy(mem.Row(i), S.Row(ri))
	}
	return &InferRepF32{S: S, Memory: mem, Tables: append([]string{}, q.Tables...)}
}

// PredictLogCardsInfer returns the per-node log-cardinality
// predictions at reduced precision.
func (lm *LoweredModel) PredictLogCardsInfer(e *ag.EvalF32, rep *InferRepF32) *tensor.F32 {
	return lm.CardHead.Infer(e, rep.S)
}

// PredictLogCostsInfer returns the per-node log-cost predictions at
// reduced precision.
func (lm *LoweredModel) PredictLogCostsInfer(e *ag.EvalF32, rep *InferRepF32) *tensor.F32 {
	return lm.CostHead.Infer(e, rep.S)
}

// ExpClamp32 maps f32 log-space head outputs to float64 estimates with
// exactly ExpClamp's semantics: exponent clamped at 40, floored at 1.
func ExpClamp32(logs []float32) []float64 {
	out := make([]float64, len(logs))
	for i, v := range logs {
		x := float64(v)
		if x > 40 {
			x = 40
		}
		e := math.Exp(x)
		if e < 1 {
			e = 1
		}
		out[i] = e
	}
	return out
}

// EstimateNodeCards runs lowered inference and returns per-node
// cardinality estimates (exponentiated, clamped to >= 1).
func (lm *LoweredModel) EstimateNodeCards(lq *workload.LabeledQuery) []float64 {
	e := ag.AcquireEvalF32()
	defer ag.ReleaseEvalF32(e)
	rep := lm.RepresentInfer(e, lq.Q, lq.Plan)
	return ExpClamp32(lm.PredictLogCardsInfer(e, rep).Data)
}

// EstimateNodeCosts runs lowered inference and returns per-node cost
// estimates.
func (lm *LoweredModel) EstimateNodeCosts(lq *workload.LabeledQuery) []float64 {
	e := ag.AcquireEvalF32()
	defer ag.ReleaseEvalF32(e)
	rep := lm.RepresentInfer(e, lq.Q, lq.Plan)
	return ExpClamp32(lm.PredictLogCostsInfer(e, rep).Data)
}

// EstimateRoot returns the root cardinality and cost estimates in one
// lowered forward pass.
func (lm *LoweredModel) EstimateRoot(lq *workload.LabeledQuery) (card, costv float64) {
	e := ag.AcquireEvalF32()
	defer ag.ReleaseEvalF32(e)
	rep := lm.RepresentInfer(e, lq.Q, lq.Plan)
	cards := ExpClamp32(lm.PredictLogCardsInfer(e, rep).Data)
	costs := ExpClamp32(lm.PredictLogCostsInfer(e, rep).Data)
	return cards[len(cards)-1], costs[len(costs)-1]
}

// InferJoinOrder predicts the join order end to end: lowered
// representation, then the [m, Dim] memory is up-converted once and
// decoded by the source model's float64 Trans_JO (see the package
// comment for why the decoder is not lowered).
func (lm *LoweredModel) InferJoinOrder(q *sqldb.Query, p *plan.Node) []string {
	e := ag.AcquireEvalF32()
	defer ag.ReleaseEvalF32(e)
	rep := lm.RepresentInfer(e, q, p)
	mem := rep.Memory.ToTensor()
	best, ok := BestBeam(lm.Src.Shared.JO.BeamSearchTensor(mem, q, lm.Src.Shared.Cfg.BeamWidth, true))
	if !ok {
		return nil
	}
	return best.OrderTables(rep.Tables)
}

// ParamBytes returns the resident parameter bytes of the replica: the
// lowered weights plus the float64 Trans_JO decoder it shares with the
// source model.
func (lm *LoweredModel) ParamBytes() int {
	n := lm.NodeProj.Bytes() + lm.TreePos.Bytes() + lm.JoinEmb.Bytes() +
		lm.Share.Bytes() + lm.CardHead.Bytes() + lm.CostHead.Bytes() + lm.Feat.Bytes()
	for _, p := range lm.Src.Shared.JO.Params() {
		n += 8 * p.T.Size()
	}
	return n
}

// ParamBytes returns the resident parameter bytes of the float64
// model (8 bytes per scalar) — the baseline the lowered replicas are
// sized against.
func (m *Model) ParamBytes() int {
	n := 0
	for _, p := range m.Params() {
		n += 8 * p.T.Size()
	}
	return n
}
