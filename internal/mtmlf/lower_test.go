package mtmlf

import (
	"math"
	"strings"
	"testing"

	"mtmlf/internal/nn"
)

// qerr returns the q-error max(a/b, b/a) of two positive estimates.
func qerr(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	return a / b
}

// TestLoweredEstimatesTrackReference bounds the end-to-end model-level
// q-error of each lowered tier against the float64 reference — the
// per-model precursor of the corpus-level calibration harness.
func TestLoweredEstimatesTrackReference(t *testing.T) {
	m, qs := tinySetup(t, 51, 4)
	for _, tc := range []struct {
		p      nn.Precision
		budget float64
	}{
		{nn.PrecisionF32, 1.01},
		{nn.PrecisionInt8, 1.5},
	} {
		lm := m.Lower(tc.p)
		for _, lq := range qs {
			refCard, refCost := m.EstimateRoot(lq)
			gotCard, gotCost := lm.EstimateRoot(lq)
			if q := qerr(gotCard, refCard); q > tc.budget {
				t.Fatalf("%v card q-error %.4f exceeds %.2f (got %g, ref %g)", tc.p, q, tc.budget, gotCard, refCard)
			}
			if q := qerr(gotCost, refCost); q > tc.budget {
				t.Fatalf("%v cost q-error %.4f exceeds %.2f (got %g, ref %g)", tc.p, q, tc.budget, gotCost, refCost)
			}
		}
	}
}

// TestLoweredJoinOrderMatchesReference asserts the decode-at-f64
// design holds up: both lowered tiers return the identical argmax join
// order as the reference model on every fixture query.
func TestLoweredJoinOrderMatchesReference(t *testing.T) {
	m, qs := tinySetup(t, 52, 4)
	for _, p := range []nn.Precision{nn.PrecisionF32, nn.PrecisionInt8} {
		lm := m.Lower(p)
		for _, lq := range qs {
			if len(lq.Q.Tables) < 2 {
				continue
			}
			ref := m.InferJoinOrder(lq.Q, lq.Plan)
			got := lm.InferJoinOrder(lq.Q, lq.Plan)
			if strings.Join(ref, ",") != strings.Join(got, ",") {
				t.Fatalf("%v join order %v differs from reference %v", p, got, ref)
			}
		}
	}
}

// TestLoweredParamBytes pins the memory-sizing claims: f32 halves the
// resident model bytes apart from the f64 decoder, and int8 is at most
// half of the float64 model overall (the PR's acceptance criterion).
func TestLoweredParamBytes(t *testing.T) {
	m, _ := tinySetup(t, 53, 1)
	f64Bytes := m.ParamBytes()
	f32Bytes := m.Lower(nn.PrecisionF32).ParamBytes()
	int8Bytes := m.Lower(nn.PrecisionInt8).ParamBytes()
	if f32Bytes >= f64Bytes {
		t.Fatalf("f32 replica %d bytes not smaller than f64 %d", f32Bytes, f64Bytes)
	}
	if 2*int8Bytes > f64Bytes {
		t.Fatalf("int8 replica %d bytes more than half of f64 %d", int8Bytes, f64Bytes)
	}
	if int8Bytes >= f32Bytes {
		t.Fatalf("int8 replica %d bytes not smaller than f32 %d", int8Bytes, f32Bytes)
	}
}

// TestExpClamp32MatchesExpClamp asserts the f32 clamp matches the
// float64 semantics exactly on the same (f64-valued) inputs.
func TestExpClamp32MatchesExpClamp(t *testing.T) {
	in32 := []float32{-5, 0, 0.5, 39.5, 41, 100}
	in64 := make([]float64, len(in32))
	for i, v := range in32 {
		in64[i] = float64(v)
	}
	got := ExpClamp32(in32)
	want := ExpClamp(in64)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0 {
			t.Fatalf("element %d: ExpClamp32 %v, ExpClamp %v", i, got[i], want[i])
		}
	}
}
