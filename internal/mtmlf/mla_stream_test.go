package mtmlf

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"mtmlf/internal/catalog"
	"mtmlf/internal/corpus"
	"mtmlf/internal/datagen"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

// mlaFixtureOpts is the one option set every MLA equivalence test
// uses on both the live and the corpus-backed side.
func mlaFixtureOpts() MLAOptions {
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 3
	return MLAOptions{
		QueriesPerDB:        6,
		SingleTablePerTable: 4,
		EncoderEpochs:       1,
		JointEpochs:         2,
		Workload:            wcfg,
		Seed:                22,
		BatchSize:           4,
		RecordTrajectory:    true,
	}
}

// mlaFleet generates the tiny two-database fleet the equivalence
// tests pretrain over.
func mlaFleet() []*sqldb.DB {
	dgCfg := datagen.DefaultConfig()
	dgCfg.MinTables, dgCfg.MaxTables = 4, 5
	dgCfg.MinRows, dgCfg.MaxRows = 100, 250
	return datagen.GenerateFleet(21, 2, dgCfg)
}

// writeMLACorpus writes the fleet's Algorithm 1 training data to a
// corpus file at the given format version: GenMLAData output per
// database, with the v2 single-table section included only when the
// version supports it. This is exactly what mtmlf-datagen
// -single-table produces (modulo version).
func writeMLACorpus(t *testing.T, dbs []*sqldb.DB, opts MLAOptions, version int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fleet.mtc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := corpus.NewWriterVersion(f, corpus.Meta{Seed: opts.Seed}, version)
	if err != nil {
		t.Fatal(err)
	}
	for i, db := range dbs {
		st, qs := GenMLAData(catalog.NewMemory(db), opts, i)
		if err := w.BeginDB(db); err != nil {
			t.Fatal(err)
		}
		if version >= 2 {
			if err := w.WriteSingleTable(st); err != nil {
				t.Fatal(err)
			}
		}
		for _, lq := range qs {
			if err := w.AppendExample(lq); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// openMLACorpus returns every database of a corpus as the
// (catalogs, sources) pair TrainMLAStream consumes.
func openMLACorpus(t *testing.T, path string) (*corpus.Reader, []catalog.Catalog, []workload.Source) {
	t.Helper()
	r, err := corpus.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	cats := make([]catalog.Catalog, r.NumDBs())
	srcs := make([]workload.Source, r.NumDBs())
	for i := range cats {
		c, err := r.Catalog(i)
		if err != nil {
			t.Fatal(err)
		}
		cats[i] = c
		srcs[i] = c.Examples()
	}
	return r, cats, srcs
}

// assertMLAEqual compares a streamed MLA run against the in-memory
// reference: loss trajectory, final loss, step count, shared
// parameters, and every task's featurizer parameters — all bitwise.
func assertMLAEqual(t *testing.T, label string,
	refShared, gotShared *Shared, refTasks, gotTasks []*DBTask, ref, got TrainStats) {
	t.Helper()
	if got.Steps != ref.Steps {
		t.Fatalf("%s: steps %d, want %d", label, got.Steps, ref.Steps)
	}
	if len(got.Trajectory) != len(ref.Trajectory) {
		t.Fatalf("%s: trajectory length %d, want %d", label, len(got.Trajectory), len(ref.Trajectory))
	}
	for i := range ref.Trajectory {
		if math.Float64bits(got.Trajectory[i]) != math.Float64bits(ref.Trajectory[i]) {
			t.Fatalf("%s: trajectory step %d differs: %v vs %v", label, i, got.Trajectory[i], ref.Trajectory[i])
		}
	}
	if math.Float64bits(got.FinalLoss) != math.Float64bits(ref.FinalLoss) {
		t.Fatalf("%s: final loss differs", label)
	}
	pa, pb := refShared.Params(), gotShared.Params()
	for i := range pa {
		if !tensor.Equal(pa[i].T, pb[i].T, 0) {
			t.Fatalf("%s: shared parameter %d differs from in-memory TrainMLA", label, i)
		}
	}
	if len(gotTasks) != len(refTasks) {
		t.Fatalf("%s: task count %d, want %d", label, len(gotTasks), len(refTasks))
	}
	for ti := range refTasks {
		fa, fb := refTasks[ti].Model.Feat.Params(), gotTasks[ti].Model.Feat.Params()
		if len(fa) != len(fb) {
			t.Fatalf("%s: task %d featurizer param count differs", label, ti)
		}
		for i := range fa {
			if !tensor.Equal(fa[i].T, fb[i].T, 0) {
				t.Fatalf("%s: task %d featurizer parameter %d differs", label, ti, i)
			}
		}
	}
}

// TestTrainMLAStreamMatchesInMemory is the eps=0 equivalence contract
// of corpus-backed fleet pretraining: Algorithm 1 run from a v2
// corpus artifact — cached single-table sections, streamed pooled
// examples — reproduces the live in-memory TrainMLA bitwise (loss
// trajectory, shared parameters, every featurizer) at workers 1 and
// 4, without ever materializing the pooled workload.
func TestTrainMLAStreamMatchesInMemory(t *testing.T) {
	dbs := mlaFleet()
	opts := mlaFixtureOpts()
	refShared := NewShared(tinyConfig(), 20)
	refTasks, refStats, err := TrainMLA(refShared, dbs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if refStats.Steps != 2*6*2 { // 2 DBs x 6 queries x 2 epochs
		t.Fatalf("reference ran %d steps, want 24", refStats.Steps)
	}

	r, cats, srcs := openMLACorpus(t, writeMLACorpus(t, dbs, opts, corpus.Version))
	if r.Version() != corpus.Version {
		t.Fatalf("fixture version %d", r.Version())
	}
	for _, workers := range []int{1, 4} {
		shared := NewShared(tinyConfig(), 20)
		wopts := opts
		wopts.Workers = workers
		tasks, st, err := TrainMLAStream(shared, cats, srcs, wopts)
		if err != nil {
			t.Fatal(err)
		}
		for ti, task := range tasks {
			if task.Queries != nil {
				t.Fatalf("workers=%d: task %d materialized %d queries; the stream path must not",
					workers, ti, len(task.Queries))
			}
		}
		assertMLAEqual(t, "v2 stream", refShared, shared, refTasks, tasks, refStats, st)
	}
}

// TestTrainMLAStreamV1Fallback: a v1 corpus (no single-table
// sections) still opens and trains — the featurizers fall back to
// live (F) pre-training from the task seed, which draws the exact
// prefix of the rng stream the corpus queries were generated from, so
// the run STILL matches the in-memory reference bitwise.
func TestTrainMLAStreamV1Fallback(t *testing.T) {
	dbs := mlaFleet()
	opts := mlaFixtureOpts()
	refShared := NewShared(tinyConfig(), 20)
	refTasks, refStats, err := TrainMLA(refShared, dbs, opts)
	if err != nil {
		t.Fatal(err)
	}

	r, cats, srcs := openMLACorpus(t, writeMLACorpus(t, dbs, opts, 1))
	if r.Version() != 1 {
		t.Fatalf("fixture version %d, want 1", r.Version())
	}
	if _, ok, err := cats[0].(*corpus.DBCatalog).SingleTable(); ok || err != nil {
		t.Fatalf("v1 fixture has a single-table section: ok=%v err=%v", ok, err)
	}
	shared := NewShared(tinyConfig(), 20)
	tasks, st, err := TrainMLAStream(shared, cats, srcs, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertMLAEqual(t, "v1 fallback", refShared, shared, refTasks, tasks, refStats, st)
}

// TestTrainMLAStreamPropagatesSourceErrors: an I/O failure in any
// pooled source must abort the joint loop with the error — a
// half-trained fleet model must never look like a trained one.
func TestTrainMLAStreamPropagatesSourceErrors(t *testing.T) {
	dbs := mlaFleet()
	opts := mlaFixtureOpts()
	cats := make([]catalog.Catalog, len(dbs))
	srcs := make([]workload.Source, len(dbs))
	for i, db := range dbs {
		cats[i] = catalog.NewMemory(db)
		_, qs := GenMLAData(cats[i], opts, i)
		src := workload.Source(workload.SliceSource(qs))
		if i == 1 {
			src = errSource{Source: src, bad: 2}
		}
		srcs[i] = src
	}
	shared := NewShared(tinyConfig(), 20)
	_, _, err := TrainMLAStream(shared, cats, srcs, opts)
	if err == nil {
		t.Fatal("expected the bad source's error to propagate")
	}
}

// TestTrainMLAStreamRejectsMismatchedInputs: the cats/srcs pairing is
// positional; a length mismatch is a caller bug surfaced as an error.
func TestTrainMLAStreamRejectsMismatchedInputs(t *testing.T) {
	dbs := mlaFleet()
	shared := NewShared(tinyConfig(), 20)
	_, _, err := TrainMLAStream(shared,
		[]catalog.Catalog{catalog.NewMemory(dbs[0])},
		[]workload.Source{workload.SliceSource{}, workload.SliceSource{}},
		mlaFixtureOpts())
	if err == nil {
		t.Fatal("expected length mismatch error")
	}
}
