// Package mtmlf implements the paper's core contribution: the
// MTMLF-QO multi-task meta-learning model for query optimization
// (Figure 2). It assembles:
//
//	(F) the per-database featurization module (internal/featurize),
//	(S) Trans_Share, a transformer encoder over serialized plan nodes,
//	(T) the task-specific module: M_CardEst and M_CostEst MLP heads and
//	    the Trans_JO join-order decoder with legality-pruned beam search
//	    (Section 4) and the sequence-level JOEU loss (Section 5),
//	(L) the joint loss of Equation 1 and the MLA cross-database
//	    meta-learning procedure of Algorithm 1.
//
// The (S) and (T) parameters live in Shared and are database-agnostic;
// a Model pairs one Shared with one database's Featurizer, which is
// how a pre-trained Shared transfers to a new database.
package mtmlf

import (
	"fmt"
	"math"
	"math/rand"

	"mtmlf/internal/ag"
	"mtmlf/internal/catalog"
	"mtmlf/internal/featurize"
	"mtmlf/internal/nn"
	"mtmlf/internal/plan"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

// Config sizes MTMLF-QO.
type Config struct {
	// Dim, Heads, Blocks configure Trans_Share (paper: 4 heads, 3
	// blocks; defaults are smaller for CPU training).
	Dim, Heads, Blocks int
	// DecBlocks configures Trans_JO.
	DecBlocks int
	// MaxTables bounds the table count of any supported database (21
	// for IMDB; headroom by default).
	MaxTables int
	// MaxDepth bounds plan-tree depth for the tree positional encoding.
	MaxDepth int
	// WCard, WCost, WJo are the Equation 1 loss weights (paper: all 1).
	WCard, WCost, WJo float64
	// LR is the Adam learning rate (paper: 1e-4; larger by default
	// because our models and datasets are far smaller).
	LR float64
	// BeamWidth is the Section 4.3 beam width k.
	BeamWidth int
	// Lambda is the Equation 3 illegal-order penalty λ.
	Lambda float64
	// Feat configures the per-database featurizer.
	Feat featurize.Config
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	fc := featurize.DefaultConfig()
	return Config{
		Dim: fc.Dim, Heads: 2, Blocks: 2, DecBlocks: 2,
		MaxTables: 24, MaxDepth: 12,
		WCard: 1, WCost: 1, WJo: 1,
		LR: 1e-3, BeamWidth: 3, Lambda: 5,
		Feat: fc,
	}
}

// PaperConfig returns the paper's architecture (3 blocks, 4 heads) at
// a CPU-trainable dimension.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Heads = 4
	c.Blocks = 3
	c.DecBlocks = 3
	c.Feat.Blocks = 3
	c.Feat.Heads = 4
	return c
}

// nodeRawWidth is the raw serialized node feature width: table
// multi-hot + scan-op one-hot + join-op one-hot + isJoin flag + the
// ANALYZE-estimated log sub-plan cardinality (the traditional-
// optimizer hint that Neo's featurization [cited for F.i] feeds the
// model) + the Dim-wide E(f(T)) / join embedding section.
func (c Config) nodeRawWidth() int {
	return c.MaxTables + plan.NumScanOps + plan.NumJoinOps + 2 + c.Dim
}

// Shared holds the database-agnostic (S) and (T) parameters — the part
// of MTMLF that the cloud provider pre-trains and ships (Section 2.3).
type Shared struct {
	Cfg Config
	// Serializer (F.iii is DB-agnostic machinery, so it transfers).
	NodeProj *nn.Linear
	TreePos  *nn.TreePositionalEncoder
	JoinEmb  *nn.Embedding // learned embedding per join operator
	// (S) shared representation.
	Share *nn.Encoder
	// (T) task-specific modules.
	CardHead *nn.MLP
	CostHead *nn.MLP
	JO       *JoinOrder
}

// NewShared initializes the transferable modules.
func NewShared(cfg Config, seed int64) *Shared {
	rng := rand.New(rand.NewSource(seed))
	return &Shared{
		Cfg:      cfg,
		NodeProj: nn.NewLinear(rng, cfg.nodeRawWidth(), cfg.Dim),
		TreePos:  nn.NewTreePositionalEncoder(rng, cfg.MaxDepth, cfg.Dim),
		JoinEmb:  nn.NewEmbedding(rng, plan.NumJoinOps, cfg.Dim),
		Share:    nn.NewEncoder(rng, cfg.Dim, cfg.Heads, cfg.Blocks),
		CardHead: nn.NewMLP(rng, nn.ActGELU, cfg.Dim, cfg.Dim, 1),
		CostHead: nn.NewMLP(rng, nn.ActGELU, cfg.Dim, cfg.Dim, 1),
		JO:       NewJoinOrder(rng, cfg),
	}
}

// Params returns all transferable parameters in a stable order.
func (s *Shared) Params() []*ag.Value {
	out := s.NodeProj.Params()
	out = append(out, s.TreePos.Params()...)
	out = append(out, s.JoinEmb.Params()...)
	out = append(out, s.Share.Params()...)
	out = append(out, s.CardHead.Params()...)
	out = append(out, s.CostHead.Params()...)
	out = append(out, s.JO.Params()...)
	return out
}

// Model pairs the transferable Shared modules with one database's
// featurizer. Constructing a Model is free; this is the paper's
// "connect the learned F_11 module with the pre-trained (S) and (T)
// modules" step.
type Model struct {
	Shared *Shared
	Feat   *featurize.Featurizer
}

// NewModel builds a fresh single-database model over an in-memory
// database.
func NewModel(cfg Config, db *sqldb.DB, seed int64) *Model {
	return NewModelCat(cfg, catalog.NewMemory(db), seed)
}

// NewModelCat builds a fresh model over any catalog backend —
// in-memory (catalog.Memory) or on-disk (corpus.DBCatalog). The
// catalog's statistics feed the featurizer, so backends that
// round-trip the column data bitwise yield bitwise-identical models.
func NewModelCat(cfg Config, cat catalog.Catalog, seed int64) *Model {
	return &Model{
		Shared: NewShared(cfg, seed),
		Feat:   featurize.NewFrom(cat, cfg.Feat, seed+1),
	}
}

// Params returns every parameter of the model — the transferable
// Shared set followed by the database-specific Featurizer set, in the
// stable order the full-model checkpoint (checkpoint.go) persists.
func (m *Model) Params() []*ag.Value {
	out := m.Shared.Params()
	return append(out, m.Feat.Params()...)
}

// Representation is the output of the (F)+(S) pipeline for one query
// plan: the shared representation of every plan node plus the leaf
// (single-table) rows Trans_JO consumes as its memory.
type Representation struct {
	// S holds the shared representation, one row per plan node in
	// post-order (aligned with Plan.Nodes()).
	S *ag.Value
	// Memory holds the leaf rows of S in q.Tables order — the
	// (S_1..S_m) sequence of Figure 2 T.iii.
	Memory *ag.Value
	// Tables is the memory row order (== q.Tables).
	Tables []string
}

// Represent runs featurization, serialization and Trans_Share over a
// query's plan — the I→F→S dataflow of Figure 2.
func (m *Model) Represent(q *sqldb.Query, p *plan.Node) *Representation {
	cfg := m.Shared.Cfg
	db := m.Feat.DB
	if len(db.Tables) > cfg.MaxTables {
		panic(fmt.Sprintf("mtmlf: database has %d tables, model supports %d", len(db.Tables), cfg.MaxTables))
	}
	nodes := p.Nodes()
	paths := p.Paths()

	// Build each node's raw feature row: fixed one-hots + the ANALYZE
	// log-card hint, concatenated with the learned Dim-wide
	// distribution embedding.
	fixedW := cfg.MaxTables + plan.NumScanOps + plan.NumJoinOps + 2
	rows := make([]*ag.Value, len(nodes))
	leafRow := map[string]int{}
	for i, n := range nodes {
		fixed := tensor.New(1, fixedW)
		for _, t := range n.Tables() {
			idx := db.TableIndex(t)
			if idx < 0 {
				panic(fmt.Sprintf("mtmlf: plan references unknown table %q", t))
			}
			fixed.Data[idx] = 1
		}
		estCard := m.Feat.Stats.EstimateSubplanCard(n.Tables(), q)
		fixed.Data[fixedW-1] = math.Log(estCard+1) / 20
		var embPart *ag.Value
		if n.IsLeaf() {
			fixed.Data[cfg.MaxTables+int(n.Scan)] = 1
			embPart = m.Feat.EncodeTable(n.Table, q.FiltersFor(n.Table))
			leafRow[n.Table] = i
		} else {
			fixed.Data[cfg.MaxTables+plan.NumScanOps+int(n.Join)] = 1
			fixed.Data[fixedW-2] = 1 // isJoin flag
			embPart = m.Shared.JoinEmb.Forward([]int{int(n.Join)})
		}
		rows[i] = ag.ConcatCols(ag.Const(fixed), embPart)
	}
	raw := ag.ConcatRows(rows...)
	x := m.Shared.NodeProj.Forward(raw)

	// Tree positional embedding (F.iii serializer).
	tp := make([]nn.TreePath, len(paths))
	for i, p := range paths {
		tp[i] = nn.TreePath(p)
	}
	x = ag.Add(x, m.Shared.TreePos.Forward(tp))

	// (S) shared representation.
	S := m.Shared.Share.Forward(x, nil)

	// Memory rows for Trans_JO, in q.Tables order.
	mem := make([]*ag.Value, len(q.Tables))
	for i, t := range q.Tables {
		ri, ok := leafRow[t]
		if !ok {
			panic(fmt.Sprintf("mtmlf: query table %q missing from plan", t))
		}
		mem[i] = ag.SliceRows(S, ri, ri+1)
	}
	return &Representation{S: S, Memory: ag.ConcatRows(mem...), Tables: append([]string{}, q.Tables...)}
}

// PredictLogCards returns the predicted log-cardinality of the
// sub-plan rooted at each node (post-order), as a [mNodes, 1] value.
func (m *Model) PredictLogCards(rep *Representation) *ag.Value {
	return m.Shared.CardHead.Forward(rep.S)
}

// PredictLogCosts returns the predicted log-cost per node.
func (m *Model) PredictLogCosts(rep *Representation) *ag.Value {
	return m.Shared.CostHead.Forward(rep.S)
}

// EstimateNodeCards runs inference and returns per-node cardinality
// estimates (exponentiated, clamped to >= 1). Served from the no-grad
// fast path: numerically identical to the grad-tracked forward.
func (m *Model) EstimateNodeCards(lq *workload.LabeledQuery) []float64 {
	e := ag.AcquireEval()
	defer ag.ReleaseEval(e)
	rep := m.RepresentInfer(e, lq.Q, lq.Plan)
	return ExpClamp(m.PredictLogCardsInfer(e, rep).Data)
}

// EstimateNodeCosts runs inference and returns per-node cost estimates.
func (m *Model) EstimateNodeCosts(lq *workload.LabeledQuery) []float64 {
	e := ag.AcquireEval()
	defer ag.ReleaseEval(e)
	rep := m.RepresentInfer(e, lq.Q, lq.Plan)
	return ExpClamp(m.PredictLogCostsInfer(e, rep).Data)
}

// EstimateRoot returns the root cardinality and cost estimates in one
// forward pass on the no-grad fast path.
func (m *Model) EstimateRoot(lq *workload.LabeledQuery) (card, costv float64) {
	e := ag.AcquireEval()
	defer ag.ReleaseEval(e)
	rep := m.RepresentInfer(e, lq.Q, lq.Plan)
	cards := ExpClamp(m.PredictLogCardsInfer(e, rep).Data)
	costs := ExpClamp(m.PredictLogCostsInfer(e, rep).Data)
	return cards[len(cards)-1], costs[len(costs)-1]
}

// ExpClamp maps log-space head outputs to estimates: exponentiated
// with the exponent clamped (an untrained model cannot overflow) and
// floored at 1. Exported for the serving layer, whose fused
// micro-batch path must clamp exactly like the serial estimators.
func ExpClamp(logs []float64) []float64 {
	out := make([]float64, len(logs))
	for i, v := range logs {
		// Clamp the exponent so an untrained model cannot overflow.
		if v > 40 {
			v = 40
		}
		e := math.Exp(v)
		if e < 1 {
			e = 1
		}
		out[i] = e
	}
	return out
}
