package mtmlf

import (
	"math"
	"math/rand"
	"testing"

	"mtmlf/internal/ag"
	"mtmlf/internal/datagen"
	"mtmlf/internal/metrics"
	"mtmlf/internal/nn"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/workload"
)

func tinyConfig() Config {
	c := DefaultConfig()
	c.Dim = 16
	c.Blocks = 1
	c.DecBlocks = 1
	c.Feat.Dim = 16
	c.Feat.Blocks = 1
	return c
}

func tinyDB() *sqldb.DB { return datagen.SyntheticIMDB(5, 0.05) }

func tinySetup(t *testing.T, seed int64, n int) (*Model, []*workload.LabeledQuery) {
	t.Helper()
	db := tinyDB()
	m := NewModel(tinyConfig(), db, seed)
	gen := workload.NewGenerator(db, seed+1)
	cfg := workload.DefaultConfig()
	cfg.MaxTables = 4
	m.Feat.PretrainAll(gen, 10, 1, cfg)
	return m, gen.Generate(n, cfg)
}

func TestRepresentShapes(t *testing.T) {
	m, qs := tinySetup(t, 1, 3)
	for _, lq := range qs {
		rep := m.Represent(lq.Q, lq.Plan)
		nNodes := len(lq.Plan.Nodes())
		if rep.S.Rows() != nNodes || rep.S.Cols() != m.Shared.Cfg.Dim {
			t.Fatalf("S shape %v, want [%d, %d]", rep.S.T.Shape, nNodes, m.Shared.Cfg.Dim)
		}
		if rep.Memory.Rows() != len(lq.Q.Tables) {
			t.Fatalf("memory rows %d, want %d", rep.Memory.Rows(), len(lq.Q.Tables))
		}
		cards := m.PredictLogCards(rep)
		costs := m.PredictLogCosts(rep)
		if cards.Rows() != nNodes || costs.Rows() != nNodes || cards.Cols() != 1 {
			t.Fatal("head output shapes wrong")
		}
	}
}

func TestEstimateClampsAndAligns(t *testing.T) {
	m, qs := tinySetup(t, 2, 2)
	lq := qs[0]
	cards := m.EstimateNodeCards(lq)
	costs := m.EstimateNodeCosts(lq)
	if len(cards) != len(lq.Plan.Nodes()) || len(costs) != len(cards) {
		t.Fatal("estimate lengths wrong")
	}
	for _, c := range cards {
		if c < 1 || math.IsInf(c, 0) || math.IsNaN(c) {
			t.Fatalf("card estimate %g invalid", c)
		}
	}
	rc, rcost := m.EstimateRoot(lq)
	if rc != cards[len(cards)-1] || rcost != costs[len(costs)-1] {
		t.Fatal("EstimateRoot must match the last post-order node")
	}
}

func TestLossesFiniteAndDifferentiable(t *testing.T) {
	m, qs := tinySetup(t, 3, 2)
	for _, lq := range qs {
		rep := m.Represent(lq.Q, lq.Plan)
		cl := m.CardLoss(rep, lq)
		co := m.CostLoss(rep, lq)
		if math.IsNaN(cl.Item()) || math.IsNaN(co.Item()) {
			t.Fatal("NaN loss")
		}
		loss := ag.Add(cl, co)
		if len(lq.OptimalOrder) >= 2 {
			loss = ag.Add(loss, m.JoinOrderTokenLoss(rep, lq.OptimalOrder))
		}
		loss.Backward()
		// Some shared parameter must receive gradient.
		got := false
		for _, p := range m.Shared.Params() {
			if p.Grad != nil {
				got = true
				break
			}
		}
		if !got {
			t.Fatal("no gradients reached shared parameters")
		}
		for _, p := range m.Shared.Params() {
			p.Grad = nil
		}
	}
}

func TestBeamSearchLegality(t *testing.T) {
	m, qs := tinySetup(t, 4, 5)
	for _, lq := range qs {
		rep := m.Represent(lq.Q, lq.Plan)
		res := m.Shared.JO.BeamSearch(rep.Memory, lq.Q, 3, true)
		if len(res) == 0 {
			t.Fatal("beam search returned nothing")
		}
		adj := positionAdjacency(lq.Q)
		for _, r := range res {
			if !r.Legal {
				t.Fatal("constrained beam search emitted an illegal order")
			}
			if len(r.Positions) != len(lq.Q.Tables) {
				t.Fatal("incomplete order")
			}
			if !isLegalOrder(adj, r.Positions) {
				t.Fatal("legality check inconsistent")
			}
			// All positions distinct.
			seen := map[int]bool{}
			for _, p := range r.Positions {
				if seen[p] {
					t.Fatal("position repeated")
				}
				seen[p] = true
			}
		}
	}
}

func TestJoinOrderForAlwaysExecutable(t *testing.T) {
	m, qs := tinySetup(t, 5, 5)
	for _, lq := range qs {
		rep := m.Represent(lq.Q, lq.Plan)
		order := m.JoinOrderFor(lq.Q, rep)
		if len(order) != len(lq.Q.Tables) {
			t.Fatalf("order %v incomplete", order)
		}
		// Every prefix connected under the query's joins.
		for i := 2; i <= len(order); i++ {
			sub := &sqldb.Query{Tables: order[:i], Joins: lq.Q.JoinsAmong(order[:i])}
			if !sub.IsConnected() {
				t.Fatalf("predicted order %v has disconnected prefix", order)
			}
		}
	}
}

func TestScoreSequenceIsLogProb(t *testing.T) {
	m, qs := tinySetup(t, 6, 3)
	for _, lq := range qs {
		if len(lq.OptimalOrder) < 2 {
			continue
		}
		rep := m.Represent(lq.Q, lq.Plan)
		seq := orderPositions(rep, lq.OptimalOrder)
		s := m.Shared.JO.ScoreSequence(rep.Memory, seq)
		if s.Item() > 1e-9 {
			t.Fatalf("log-prob %g > 0", s.Item())
		}
	}
}

func TestSequenceLossFinite(t *testing.T) {
	m, qs := tinySetup(t, 7, 4)
	for _, lq := range qs {
		if len(lq.OptimalOrder) < 2 {
			continue
		}
		rep := m.Represent(lq.Q, lq.Plan)
		loss := m.JoinOrderSequenceLoss(rep, lq.Q, lq.OptimalOrder)
		if math.IsNaN(loss.Item()) || math.IsInf(loss.Item(), 0) {
			t.Fatalf("sequence loss %g", loss.Item())
		}
		loss.Backward()
		for _, p := range m.Shared.Params() {
			p.Grad = nil
		}
	}
}

// TestTrainJointImproves is the core learning smoke test: joint
// training must reduce card q-error and raise join-order quality on
// the training distribution.
func TestTrainJointImproves(t *testing.T) {
	m, qs := tinySetup(t, 8, 40)
	train, _, test := workload.Split(qs, 0.75, 0)

	// Evaluate mean q-error over all node cards AND costs: costs are
	// large, so the untrained model (predicting ~1) starts far off and
	// improvement is unambiguous.
	evalCard := func() float64 {
		var errs []float64
		for _, lq := range test {
			cards := m.EstimateNodeCards(lq)
			costs := m.EstimateNodeCosts(lq)
			for i := range cards {
				errs = append(errs, metrics.QError(cards[i], lq.NodeCards[i]))
				errs = append(errs, metrics.QError(costs[i], lq.NodeCosts[i]))
			}
		}
		return metrics.Summarize(errs).Mean
	}
	// Join-order learning is measured by the token-level loss on the
	// training set (beam-search JOEU on a handful of held-out queries
	// is too high-variance for a unit test; the experiment harness
	// covers it at scale).
	evalJOLoss := func() float64 {
		var sum float64
		n := 0
		for _, lq := range train {
			if len(lq.OptimalOrder) < 2 {
				continue
			}
			rep := m.Represent(lq.Q, lq.Plan)
			sum += m.JoinOrderTokenLoss(rep, lq.OptimalOrder).Item()
			n++
		}
		return sum / float64(n)
	}

	beforeCard := evalCard()
	beforeJO := evalJOLoss()
	st := m.TrainJoint(train, TrainOptions{Epochs: 6, Seed: 9})
	if st.Steps != 6*len(train) {
		t.Fatalf("steps %d", st.Steps)
	}
	afterCard := evalCard()
	afterJO := evalJOLoss()
	if afterCard >= beforeCard {
		t.Fatalf("card q-error did not improve: %g -> %g", beforeCard, afterCard)
	}
	if afterJO >= beforeJO {
		t.Fatalf("join-order token loss did not improve: %g -> %g", beforeJO, afterJO)
	}
}

func TestSharedParamsSerializableAndTransferable(t *testing.T) {
	db := tinyDB()
	cfg := tinyConfig()
	a := NewModel(cfg, db, 10)
	b := NewModel(cfg, db, 99)
	if err := nn.CopyParams(b.Shared.Params(), a.Shared.Params()); err != nil {
		t.Fatal(err)
	}
	// Same featurizer + same shared weights => same outputs.
	b.Feat = a.Feat
	gen := workload.NewGenerator(db, 11)
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 3
	lq := gen.Generate(1, wcfg)[0]
	ra := a.Represent(lq.Q, lq.Plan)
	rb := b.Represent(lq.Q, lq.Plan)
	for i := range ra.S.T.Data {
		if math.Abs(ra.S.T.Data[i]-rb.S.T.Data[i]) > 1e-12 {
			t.Fatal("copied shared params produce different representations")
		}
	}
}

func TestMLARunsAndTransfers(t *testing.T) {
	cfg := tinyConfig()
	shared := NewShared(cfg, 20)
	dgCfg := datagen.DefaultConfig()
	dgCfg.MinTables, dgCfg.MaxTables = 4, 5
	dgCfg.MinRows, dgCfg.MaxRows = 100, 250
	dbs := datagen.GenerateFleet(21, 2, dgCfg)
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 3
	tasks, st, err := TrainMLA(shared, dbs, MLAOptions{
		QueriesPerDB:        8,
		SingleTablePerTable: 5,
		EncoderEpochs:       1,
		JointEpochs:         1,
		Workload:            wcfg,
		Seed:                22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatal("task count wrong")
	}
	if st.Steps != 16 { // 2 DBs x 8 queries x 1 epoch
		t.Fatalf("MLA joint loop ran %d steps, want 16", st.Steps)
	}
	if st.FinalLoss == 0 {
		t.Fatal("MLA stats did not surface a final loss")
	}
	// Attach a new DB and fine-tune briefly; must not crash and must
	// produce estimates.
	newDB := datagen.GenerateDB(rand.New(rand.NewSource(23)), "D-new", dgCfg)
	task := NewDBTask(shared, newDB, MLAOptions{
		QueriesPerDB:        4,
		SingleTablePerTable: 5,
		EncoderEpochs:       1,
		Workload:            wcfg,
	}, 24)
	task.Model.FineTune(task.Queries, 1, 1e-3, 25)
	cards := task.Model.EstimateNodeCards(task.Queries[0])
	if len(cards) == 0 || cards[0] < 1 {
		t.Fatal("transferred model produced no estimates")
	}
}

func TestSingleTaskAblationConfigs(t *testing.T) {
	// MTMLF-CardEst: only the card head receives training signal.
	m, qs := tinySetup(t, 30, 6)
	m.Shared.Cfg.WCost = 0
	m.Shared.Cfg.WJo = 0
	st := m.TrainJoint(qs, TrainOptions{Epochs: 1, Seed: 31})
	if st.Steps != len(qs) {
		t.Fatal("training did not run")
	}
}

func TestPositionAdjacency(t *testing.T) {
	q := &sqldb.Query{
		Tables: []string{"a", "b", "c"},
		Joins:  []sqldb.JoinEdge{{T1: "a", C1: "x", T2: "b", C2: "y"}},
	}
	adj := positionAdjacency(q)
	if !adj[0][1] || !adj[1][0] || adj[0][2] || adj[2][1] {
		t.Fatal("adjacency wrong")
	}
	if !isLegalOrder(adj, []int{0, 1}) || isLegalOrder(adj, []int{0, 2}) {
		t.Fatal("legality wrong")
	}
}

func TestLegalNext(t *testing.T) {
	adj := [][]bool{
		{false, true, false},
		{true, false, true},
		{false, true, false},
	}
	// Step 0: everything legal.
	if got := legalNext(adj, []bool{false, false, false}, 0); len(got) != 3 {
		t.Fatalf("step 0 candidates %v", got)
	}
	// After joining 0: only 1 is adjacent.
	if got := legalNext(adj, []bool{true, false, false}, 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("step 1 candidates %v", got)
	}
}
