package mtmlf

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"mtmlf/internal/ag"
	"mtmlf/internal/ckptio"
	"mtmlf/internal/dist"
	"mtmlf/internal/nn"
)

// ---------------------------------------------------------------------------
// Training-state snapshots: crash-safe resumable training
// ---------------------------------------------------------------------------
//
// A snapshot is the complete mutable state of a training loop at a
// minibatch boundary: the trained parameters, the Adam optimizer's
// moment accumulators and step count, the shuffle position (epoch +
// examples into the epoch — the rng is reconstructed by replaying
// rand.Perm, the only draw the iterator makes), and the running
// TrainStats. Because the epoch iterator's trajectory depends only on
// (seed, batch size, example set) and never on worker count or
// wall-clock, restoring a snapshot and finishing the run produces a
// final model byte-for-byte identical to the uninterrupted run — the
// property the interruption-invariance tests and the kill-9 drill in
// scripts/crash_resume_smoke.sh assert.

const (
	// SnapshotMagic opens every training-state snapshot file.
	SnapshotMagic = "MTMLF-SNAP"
	// SnapshotVersion is the snapshot format version.
	SnapshotVersion = 1
	// snapPreambleSize is the raw preamble: magic + big-endian version.
	snapPreambleSize = len(SnapshotMagic) + 2
)

// ErrInterrupted is returned by a training loop stopped through
// SnapshotOptions.Interrupt (or the InterruptAfter test hook) after it
// has persisted a resumable snapshot. It is a clean stop, not a
// failure: rerun with Resume to finish the run.
var ErrInterrupted = errors.New("mtmlf: training interrupted (resumable snapshot written)")

// SnapshotOptions makes a training loop durable: periodic
// training-state snapshots, cooperative interruption, and resume.
// The zero value disables all of it.
type SnapshotOptions struct {
	// Path is the snapshot file, written atomically (temp file + fsync
	// + rename) at every snapshot point. Empty disables persistence.
	Path string
	// Every writes a snapshot after every N optimizer steps
	// (minibatches). 0 snapshots only on interruption.
	Every int
	// Resume restores training state from Path before the first step.
	// A missing file is a fresh start, so a supervisor can always pass
	// Resume and rerun until the loop returns nil.
	Resume bool
	// Interrupt, when closed, stops the loop at the next minibatch
	// boundary: a final snapshot is written to Path and the loop
	// returns ErrInterrupted.
	Interrupt <-chan struct{}
	// InterruptAfter stops the loop after N minibatches of THIS run
	// (not counting resumed progress) exactly like Interrupt — the
	// deterministic fault-injection hook the invariance tests drive.
	// 0 disables.
	InterruptAfter int
}

// enabled reports whether the options change the training loop at all.
func (o SnapshotOptions) enabled() bool {
	return o.Path != "" || o.Interrupt != nil || o.InterruptAfter > 0
}

// snapshotMeta identifies the run a snapshot belongs to and records
// its progress. Every identity field must match the resuming run's:
// resuming under different data, seed, batch size, or loss
// configuration would silently produce a trajectory that matches
// neither run.
type snapshotMeta struct {
	// Kind names the training loop ("joint", "mla").
	Kind string
	// Config echoes the loop's trajectory-relevant configuration.
	Config string
	// N, Epochs, BatchSize, Seed are the epoch iterator's shape.
	N         int
	Epochs    int
	BatchSize int
	Seed      int64
	// Epoch and Offset are the resume point: Offset examples of epoch
	// Epoch are complete (Offset is a minibatch boundary; a finished
	// epoch normalizes to {Epoch + 1, 0}).
	Epoch  int
	Offset int
	// Stats is the running TrainStats at the boundary.
	Stats TrainStats
}

// matchMeta verifies that a snapshot belongs to the requested run.
func matchMeta(want, got snapshotMeta) error {
	if got.Kind != want.Kind || got.Config != want.Config ||
		got.N != want.N || got.Epochs != want.Epochs ||
		got.BatchSize != want.BatchSize || got.Seed != want.Seed {
		return fmt.Errorf("mtmlf: snapshot does not match this run: snapshot {kind %s config %q n %d epochs %d batch %d seed %d}, run {kind %s config %q n %d epochs %d batch %d seed %d}",
			got.Kind, got.Config, got.N, got.Epochs, got.BatchSize, got.Seed,
			want.Kind, want.Config, want.N, want.Epochs, want.BatchSize, want.Seed)
	}
	if got.Epoch < 0 || got.Offset < 0 || got.Offset >= max(got.N, 1) ||
		(want.BatchSize > 0 && got.Offset%want.BatchSize != 0) {
		return &ckptio.CorruptError{Artifact: "snapshot",
			Reason: fmt.Sprintf("progress {epoch %d, offset %d} is not a minibatch boundary of n=%d bs=%d",
				got.Epoch, got.Offset, got.N, got.BatchSize)}
	}
	return nil
}

// writeSnapshot persists the full training state atomically. Sections
// (meta, optimizer state, parameters) are framed with CRC32C
// checksums, so a torn or rotted snapshot fails to load with a typed
// *ckptio.CorruptError instead of resuming from garbage.
func writeSnapshot(path string, meta snapshotMeta, opt *nn.Adam, params []*ag.Value) error {
	return ckptio.WriteFileAtomic(path, func(w io.Writer) error {
		var pre [snapPreambleSize]byte
		copy(pre[:], SnapshotMagic)
		binary.BigEndian.PutUint16(pre[len(SnapshotMagic):], SnapshotVersion)
		if _, err := w.Write(pre[:]); err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(meta); err != nil {
			return fmt.Errorf("mtmlf: encode snapshot meta: %w", err)
		}
		if err := ckptio.WriteSection(w, buf.Bytes()); err != nil {
			return err
		}
		buf.Reset()
		if err := gob.NewEncoder(&buf).Encode(opt.State()); err != nil {
			return fmt.Errorf("mtmlf: encode optimizer state: %w", err)
		}
		if err := ckptio.WriteSection(w, buf.Bytes()); err != nil {
			return err
		}
		buf.Reset()
		if err := nn.EncodeParams(gob.NewEncoder(&buf), params); err != nil {
			return fmt.Errorf("mtmlf: encode snapshot parameters: %w", err)
		}
		return ckptio.WriteSection(w, buf.Bytes())
	})
}

// snapshotFile is a parsed-but-not-applied snapshot: the meta is
// decoded (so the caller can reject a mismatched snapshot before any
// state is touched), the optimizer and parameter payloads are held
// as verified bytes until restore.
type snapshotFile struct {
	Meta          snapshotMeta
	adamPayload   []byte
	paramsPayload []byte
}

// readSnapshotFile opens and integrity-checks a snapshot. A missing
// file returns an error satisfying errors.Is(err, os.ErrNotExist); a
// damaged one a *ckptio.CorruptError.
func readSnapshotFile(path string) (*snapshotFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pre [snapPreambleSize]byte
	if _, err := io.ReadFull(f, pre[:]); err != nil {
		return nil, ckptio.Corruptf("snapshot", "truncated preamble: %v", err)
	}
	if string(pre[:len(SnapshotMagic)]) != SnapshotMagic {
		return nil, ckptio.Corruptf("snapshot", "bad magic %q, want %q", pre[:len(SnapshotMagic)], SnapshotMagic)
	}
	if v := binary.BigEndian.Uint16(pre[len(SnapshotMagic):]); v != SnapshotVersion {
		return nil, ckptio.Corruptf("snapshot", "unsupported version %d (supported %d; damaged version field or future file)", v, SnapshotVersion)
	}
	metaPayload, err := ckptio.ReadSection(f, "snapshot")
	if err != nil {
		return nil, err
	}
	var meta snapshotMeta
	if err := gob.NewDecoder(bytes.NewReader(metaPayload)).Decode(&meta); err != nil {
		return nil, ckptio.Corruptf("snapshot", "decode meta: %v", err)
	}
	adamPayload, err := ckptio.ReadSection(f, "snapshot")
	if err != nil {
		return nil, err
	}
	paramsPayload, err := ckptio.ReadSection(f, "snapshot")
	if err != nil {
		return nil, err
	}
	return &snapshotFile{Meta: meta, adamPayload: adamPayload, paramsPayload: paramsPayload}, nil
}

// restore applies the snapshot's parameters and optimizer state.
func (s *snapshotFile) restore(opt *nn.Adam, params []*ag.Value) error {
	if err := nn.DecodeParams(gob.NewDecoder(bytes.NewReader(s.paramsPayload)), params); err != nil {
		return ckptio.Corruptf("snapshot", "restore parameters: %v", err)
	}
	var st nn.AdamState
	if err := gob.NewDecoder(bytes.NewReader(s.adamPayload)).Decode(&st); err != nil {
		return ckptio.Corruptf("snapshot", "decode optimizer state: %v", err)
	}
	if err := opt.SetState(st); err != nil {
		return ckptio.Corruptf("snapshot", "restore optimizer state: %v", err)
	}
	return nil
}

// epochCtl is the durability controller the epoch iterator drives:
// where to resume, when to snapshot, when to stop.
type epochCtl struct {
	// startEpoch/startOffset is the resume point (examples into the
	// epoch, a minibatch boundary).
	startEpoch  int
	startOffset int
	// every snapshots after every N minibatches (0 = interrupt-only).
	every int
	// snap persists the state at progress {epoch, offset}; nil skips
	// persistence (interruption still stops the loop).
	snap func(epoch, offset int) error
	// interrupt + interruptAfter mirror SnapshotOptions.
	interrupt      <-chan struct{}
	interruptAfter int
}

// stopRequested reports whether the loop should stop at this
// minibatch boundary. batches counts THIS run's minibatches.
func (c *epochCtl) stopRequested(batches int) bool {
	if c.interruptAfter > 0 && batches >= c.interruptAfter {
		return true
	}
	select {
	case <-c.interrupt:
		return true
	default:
		return false
	}
}

// prepareSnapshots wires SnapshotOptions into an epoch controller for
// a run described by meta (progress fields ignored on input). When
// resuming, it restores params, opt, and *st from the snapshot at
// snap.Path and positions the controller mid-run; a missing file is a
// fresh start. Returns nil when the options are disabled.
//
// Snapshots are topology-aware but topology-free: in a distributed
// run only rank 0 persists (one snapshot file per job, not one per
// rank), and on resume rank 0 reads the file and broadcasts the full
// training state — meta, optimizer moments, parameters — so every
// rank re-enters the run at the same minibatch boundary with bitwise
// identical state. The file itself never records a world size: a run
// snapshotted at one fleet size resumes at any other, exactly as a
// snapshot taken at one worker count resumes at another.
func prepareSnapshots(ex dist.Exchanger, snap SnapshotOptions, meta snapshotMeta, opt *nn.Adam, params []*ag.Value, st *TrainStats) (*epochCtl, error) {
	if !snap.enabled() {
		return nil, nil
	}
	world, rank := ex.World()
	ctl := &epochCtl{every: snap.Every, interrupt: snap.Interrupt, interruptAfter: snap.InterruptAfter}
	if snap.Path != "" && rank == 0 {
		ctl.snap = func(epoch, offset int) error {
			m := meta
			m.Epoch, m.Offset = epoch, offset
			m.Stats = *st
			return writeSnapshot(snap.Path, m, opt, params)
		}
	}
	if !snap.Resume || snap.Path == "" {
		return ctl, nil
	}
	if world <= 1 {
		file, err := readSnapshotFile(snap.Path)
		if errors.Is(err, os.ErrNotExist) {
			return ctl, nil
		}
		if err != nil {
			return nil, err
		}
		if err := matchMeta(meta, file.Meta); err != nil {
			return nil, err
		}
		if err := file.restore(opt, params); err != nil {
			return nil, err
		}
		*st = file.Meta.Stats
		ctl.startEpoch, ctl.startOffset = file.Meta.Epoch, file.Meta.Offset
		return ctl, nil
	}
	// Distributed resume: rank 0 owns the snapshot file; everyone else
	// receives its contents over the exchange plane. A missing file is
	// a fleet-wide fresh start — the decision must be broadcast too, or
	// half the fleet could resume while the other half starts over.
	var blob []byte
	if rank == 0 {
		file, err := readSnapshotFile(snap.Path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			blob = encodeResumeState(nil)
		case err != nil:
			return nil, err
		default:
			blob = encodeResumeState(file)
		}
	}
	blob, err := ex.BroadcastBytes(blob)
	if err != nil {
		return nil, fmt.Errorf("mtmlf: broadcast resume state: %w", err)
	}
	file, err := decodeResumeState(blob)
	if err != nil {
		return nil, err
	}
	if file == nil {
		return ctl, nil
	}
	if err := matchMeta(meta, file.Meta); err != nil {
		return nil, err
	}
	if err := file.restore(opt, params); err != nil {
		return nil, err
	}
	*st = file.Meta.Stats
	ctl.startEpoch, ctl.startOffset = file.Meta.Epoch, file.Meta.Offset
	return ctl, nil
}

// encodeResumeState packs a parsed snapshot (or nil for "fresh start")
// into one broadcast payload: a marker byte, then the snapshot's three
// sections re-framed with the same CRC32C section format the file
// uses. No new gob types are introduced, so the process-global type-ID
// order gobtypes.go pins is untouched.
func encodeResumeState(file *snapshotFile) []byte {
	if file == nil {
		return []byte{0}
	}
	var buf bytes.Buffer
	buf.WriteByte(1)
	var mb bytes.Buffer
	// Encoding snapshotMeta cannot fail: it is a fixed struct of
	// gob-encodable fields, and the writer is in-memory.
	if err := gob.NewEncoder(&mb).Encode(file.Meta); err != nil {
		panic(err)
	}
	for _, section := range [][]byte{mb.Bytes(), file.adamPayload, file.paramsPayload} {
		if err := ckptio.WriteSection(&buf, section); err != nil {
			panic(err) // bytes.Buffer writes cannot fail
		}
	}
	return buf.Bytes()
}

// decodeResumeState is the inverse of encodeResumeState. nil means the
// fleet starts fresh.
func decodeResumeState(blob []byte) (*snapshotFile, error) {
	if len(blob) == 0 {
		return nil, ckptio.Corruptf("resume broadcast", "empty payload")
	}
	if blob[0] == 0 {
		return nil, nil
	}
	r := bytes.NewReader(blob[1:])
	metaPayload, err := ckptio.ReadSection(r, "resume broadcast")
	if err != nil {
		return nil, err
	}
	var meta snapshotMeta
	if err := gob.NewDecoder(bytes.NewReader(metaPayload)).Decode(&meta); err != nil {
		return nil, ckptio.Corruptf("resume broadcast", "decode meta: %v", err)
	}
	adamPayload, err := ckptio.ReadSection(r, "resume broadcast")
	if err != nil {
		return nil, err
	}
	paramsPayload, err := ckptio.ReadSection(r, "resume broadcast")
	if err != nil {
		return nil, err
	}
	return &snapshotFile{Meta: meta, adamPayload: adamPayload, paramsPayload: paramsPayload}, nil
}
