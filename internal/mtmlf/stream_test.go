package mtmlf

import (
	"math"
	"path/filepath"
	"testing"

	"mtmlf/internal/catalog"
	"mtmlf/internal/corpus"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

// streamFixture builds one generated database with a sharded labeled
// workload, writes it to a corpus file, and returns the in-memory
// catalog + examples and an opened reader over the round-tripped
// copy.
func streamFixture(t *testing.T) (catalog.Catalog, []*workload.LabeledQuery, *corpus.Reader) {
	t.Helper()
	db := tinyDB()
	cat := catalog.NewMemory(db)
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 3
	examples := workload.GenerateSharded(cat, 33, 12, 4, wcfg)
	path := filepath.Join(t.TempDir(), "corpus.mtc")
	if err := corpus.WriteFile(path, corpus.Meta{Seed: 33, ShardSize: 4}, []*corpus.Database{{DB: db, Examples: examples}}); err != nil {
		t.Fatal(err)
	}
	r, err := corpus.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return cat, examples, r
}

// trainFrom builds an identically seeded model over the given catalog
// backend, pre-trains its featurizer, and trains it from the given
// source with the given worker count.
func trainFrom(t *testing.T, cat catalog.Catalog, src workload.Source, workers int) (*Model, TrainStats) {
	t.Helper()
	m := NewModelCat(tinyConfig(), cat, 7)
	gen := workload.NewGeneratorFrom(cat, 8)
	cfg := workload.DefaultConfig()
	cfg.MaxTables = 3
	m.Feat.PretrainAll(gen, 5, 1, cfg)
	st, err := m.TrainJointStream(src, TrainOptions{
		Epochs: 2, Seed: 9, BatchSize: 4, Workers: workers, RecordTrajectory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, st
}

// TestTrainJointStreamMatchesInMemory is the eps=0 equivalence
// contract of the pluggable data plane: with a fixed seed, the
// TrainJoint loss trajectory and final parameters are bitwise
// identical between the legacy in-memory path and the streaming
// corpus path, at any worker count.
func TestTrainJointStreamMatchesInMemory(t *testing.T) {
	memCat, examples, r := streamFixture(t)
	refModel, ref := trainFrom(t, memCat, workload.SliceSource(examples), 1)
	if len(ref.Trajectory) != ref.Steps {
		t.Fatalf("trajectory has %d entries, want %d", len(ref.Trajectory), ref.Steps)
	}

	diskCat, err := r.Catalog(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		m, st := trainFrom(t, diskCat, diskCat.Examples(), workers)
		if st.Steps != ref.Steps {
			t.Fatalf("workers=%d: steps %d, want %d", workers, st.Steps, ref.Steps)
		}
		for i := range ref.Trajectory {
			if math.Float64bits(st.Trajectory[i]) != math.Float64bits(ref.Trajectory[i]) {
				t.Fatalf("workers=%d: trajectory step %d differs: %v vs %v",
					workers, i, st.Trajectory[i], ref.Trajectory[i])
			}
		}
		if math.Float64bits(st.FinalLoss) != math.Float64bits(ref.FinalLoss) {
			t.Fatalf("workers=%d: final loss differs", workers)
		}
		pa, pb := refModel.Params(), m.Params()
		if len(pa) != len(pb) {
			t.Fatalf("parameter counts differ: %d vs %d", len(pa), len(pb))
		}
		for i := range pa {
			if !tensor.Equal(pa[i].T, pb[i].T, 0) {
				t.Fatalf("workers=%d: parameter %d differs between memory and corpus backends", workers, i)
			}
		}
	}
}

// TestTrainJointSliceMatchesStreamEntryPoint: the legacy TrainJoint
// entry point is the streaming loop over a slice source — same stats,
// same parameters.
func TestTrainJointSliceMatchesStreamEntryPoint(t *testing.T) {
	memCat, examples, _ := streamFixture(t)
	a, sa := trainFrom(t, memCat, workload.SliceSource(examples), 2)

	b := NewModelCat(tinyConfig(), memCat, 7)
	gen := workload.NewGeneratorFrom(memCat, 8)
	cfg := workload.DefaultConfig()
	cfg.MaxTables = 3
	b.Feat.PretrainAll(gen, 5, 1, cfg)
	sb := b.TrainJoint(examples, TrainOptions{Epochs: 2, Seed: 9, BatchSize: 4, Workers: 2})
	if sa.Steps != sb.Steps || math.Float64bits(sa.FinalLoss) != math.Float64bits(sb.FinalLoss) {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if !tensor.Equal(pa[i].T, pb[i].T, 0) {
			t.Fatalf("parameter %d differs between TrainJoint and TrainJointStream", i)
		}
	}
}

// errSource fails on one index, exercising the streaming error path.
type errSource struct {
	workload.Source
	bad int
}

func (e errSource) Example(i int) (*workload.LabeledQuery, error) {
	if i == e.bad {
		return nil, errFake
	}
	return e.Source.Example(i)
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake I/O error" }

// TestTrainJointStreamPropagatesSourceErrors: a failing backend must
// surface its error, not train on garbage.
func TestTrainJointStreamPropagatesSourceErrors(t *testing.T) {
	memCat, examples, _ := streamFixture(t)
	m := NewModelCat(tinyConfig(), memCat, 7)
	src := errSource{Source: workload.SliceSource(examples), bad: len(examples) / 2}
	_, err := m.TrainJointStream(src, TrainOptions{Epochs: 1, Seed: 9, BatchSize: 4})
	if err == nil {
		t.Fatal("expected source error to propagate")
	}
}
