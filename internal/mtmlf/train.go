package mtmlf

import (
	"math/rand"

	"mtmlf/internal/ag"
	"mtmlf/internal/featurize"
	"mtmlf/internal/nn"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/workload"
)

// newFeaturizer builds a featurizer sized by the model config.
func newFeaturizer(db *sqldb.DB, cfg Config, seed int64) *featurize.Featurizer {
	return featurize.New(db, cfg.Feat, seed)
}

// TrainOptions controls joint training.
type TrainOptions struct {
	// Epochs over the training set.
	Epochs int
	// SeqLevelLoss switches Trans_JO from the token-level
	// cross-entropy to the Equation 3 sequence-level loss (Section 5).
	SeqLevelLoss bool
	// Seed shuffles the training order.
	Seed int64
	// LR overrides the config learning rate when > 0.
	LR float64
}

// TrainStats summarizes a training run.
type TrainStats struct {
	Steps     int
	FinalLoss float64
}

// TrainJoint trains the (S) and (T) modules jointly on all three tasks
// with the Equation 1 loss. Per the paper, the gradient updates (S)
// and (T) only; the per-table encoders of the (F) module are
// pre-trained separately (Featurizer.PretrainAll) and stay frozen
// here. Single-task ablations (MTMLF-CardEst etc.) are obtained by
// zeroing the other weights in Config.
func (m *Model) TrainJoint(train []*workload.LabeledQuery, opts TrainOptions) TrainStats {
	cfg := m.Shared.Cfg
	lr := cfg.LR
	if opts.LR > 0 {
		lr = opts.LR
	}
	opt := nn.NewAdam(m.Shared.Params(), lr)
	rng := rand.New(rand.NewSource(opts.Seed))
	var running float64
	steps := 0
	for ep := 0; ep < opts.Epochs; ep++ {
		order := rng.Perm(len(train))
		for _, qi := range order {
			lq := train[qi]
			opt.ZeroGrad()
			rep := m.Represent(lq.Q, lq.Plan)
			loss := ag.Scalar(0)
			if cfg.WCard > 0 {
				loss = ag.Add(loss, ag.Scale(m.CardLoss(rep, lq), cfg.WCard))
			}
			if cfg.WCost > 0 {
				loss = ag.Add(loss, ag.Scale(m.CostLoss(rep, lq), cfg.WCost))
			}
			if cfg.WJo > 0 && len(lq.OptimalOrder) >= 2 {
				var jo *ag.Value
				if opts.SeqLevelLoss {
					jo = m.JoinOrderSequenceLoss(rep, lq.Q, lq.OptimalOrder)
				} else {
					jo = m.JoinOrderTokenLoss(rep, lq.OptimalOrder)
				}
				loss = ag.Add(loss, ag.Scale(jo, cfg.WJo))
			}
			loss.Backward()
			opt.Step()
			running = 0.95*running + 0.05*loss.Item()
			steps++
		}
	}
	return TrainStats{Steps: steps, FinalLoss: running}
}

// ---------------------------------------------------------------------------
// Algorithm 1: cross-DB meta-learning (MLA)
// ---------------------------------------------------------------------------

// DBTask bundles one database's generator, featurizer, and labeled
// workload for MLA.
type DBTask struct {
	DB      *sqldb.DB
	Gen     *workload.Generator
	Model   *Model // shares Shared with every other task
	Queries []*workload.LabeledQuery
}

// MLAOptions controls the meta-learning run.
type MLAOptions struct {
	// QueriesPerDB is the multi-table workload size per database.
	QueriesPerDB int
	// SingleTablePerTable and EncoderEpochs control Enc_i pre-training
	// (Algorithm 1 line 4).
	SingleTablePerTable int
	EncoderEpochs       int
	// JointEpochs trains (S)+(T) over the shuffled pooled data
	// (Algorithm 1 lines 7–8).
	JointEpochs int
	// Workload configures query generation.
	Workload workload.Config
	// Seed drives all randomness.
	Seed int64
}

// TrainMLA runs Algorithm 1: for each database it trains the
// single-table encoders and builds a labeled workload (lines 3–6),
// then trains the shared (S) and (T) modules on the pooled, shuffled
// examples (lines 7–8). It returns the per-DB tasks so callers can
// evaluate the shared modules on each database or attach a new one.
func TrainMLA(shared *Shared, dbs []*sqldb.DB, opts MLAOptions) []*DBTask {
	tasks := make([]*DBTask, len(dbs))
	for i, db := range dbs {
		task := NewDBTask(shared, db, opts, opts.Seed+int64(i)*101)
		tasks[i] = task
	}
	// Pool and shuffle (db, query) pairs (line 7).
	type sample struct {
		task *DBTask
		lq   *workload.LabeledQuery
	}
	var pool []sample
	for _, t := range tasks {
		for _, lq := range t.Queries {
			pool = append(pool, sample{t, lq})
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	opt := nn.NewAdam(shared.Params(), shared.Cfg.LR)
	for ep := 0; ep < opts.JointEpochs; ep++ {
		for _, pi := range rng.Perm(len(pool)) {
			s := pool[pi]
			m := s.task.Model
			opt.ZeroGrad()
			rep := m.Represent(s.lq.Q, s.lq.Plan)
			loss := ag.Scale(m.CardLoss(rep, s.lq), shared.Cfg.WCard)
			loss = ag.Add(loss, ag.Scale(m.CostLoss(rep, s.lq), shared.Cfg.WCost))
			if shared.Cfg.WJo > 0 && len(s.lq.OptimalOrder) >= 2 {
				loss = ag.Add(loss, ag.Scale(m.JoinOrderTokenLoss(rep, s.lq.OptimalOrder), shared.Cfg.WJo))
			}
			loss.Backward()
			opt.Step()
		}
	}
	return tasks
}

// NewDBTask prepares one database for MLA or transfer: analyzing it,
// pre-training its (F) encoders, and labeling a workload.
//
// Every database's featurizer is initialized from the SAME seed
// (derived from opts.Seed, not the per-DB seed): the provider ships a
// canonical encoder initialization alongside the pre-trained (S)+(T)
// modules, so that independently pre-trained per-table encoders live
// in roughly aligned embedding spaces. Without this, each DB's Enc_i
// would occupy an arbitrary rotation of feature space and the shared
// modules could not extrapolate across DBs.
func NewDBTask(shared *Shared, db *sqldb.DB, opts MLAOptions, seed int64) *DBTask {
	gen := workload.NewGenerator(db, seed)
	model := &Model{Shared: shared, Feat: newFeaturizer(db, shared.Cfg, opts.Seed+7)}
	model.Feat.PretrainAll(gen, opts.SingleTablePerTable, opts.EncoderEpochs, opts.Workload)
	return &DBTask{
		DB:      db,
		Gen:     gen,
		Model:   model,
		Queries: gen.Generate(opts.QueriesPerDB, opts.Workload),
	}
}

// FineTune adapts a pre-trained Shared to a new database's workload
// with a small number of examples — the user-side step of the paper's
// cloud workflow ("execute a small number of representative queries to
// fine-tune the pre-trained MTMLF").
func (m *Model) FineTune(examples []*workload.LabeledQuery, epochs int, lr float64, seed int64) TrainStats {
	return m.TrainJoint(examples, TrainOptions{Epochs: epochs, Seed: seed, LR: lr})
}
