package mtmlf

import (
	"fmt"
	"math/rand"

	"mtmlf/internal/ag"
	"mtmlf/internal/catalog"
	"mtmlf/internal/dist"
	"mtmlf/internal/featurize"
	"mtmlf/internal/nn"
	"mtmlf/internal/parallel"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

// ---------------------------------------------------------------------------
// Streaming epoch iterator
// ---------------------------------------------------------------------------

// runEpochs is the streaming epoch iterator every training loop runs
// on: a seeded shuffle over n example indices per epoch, cut into
// minibatches. For each minibatch it first calls prefetch (which may
// pull the examples from any workload.Source — in-memory slice or
// on-disk corpus — worker-parallel), then computes the minibatch
// data-parallel and applies one Adam step through the gradient-exchange
// plane ex. Only minibatch-sized state is ever live, so the example
// universe can exceed RAM; and because the shuffle depends only on
// seed, the per-example math only on the example bits, and the
// reduction on slot order (never on worker count, process count, or
// goroutine scheduling), the trajectory is bitwise identical for every
// worker count, every fleet size, and every source backend.
func runEpochs(ex dist.Exchanger, opt *nn.Adam, params []*ag.Value, n, epochs, bs, nWorkers int, seed int64,
	prefetch func(batch []int) error,
	build func(slot, example int) *ag.Value,
	after func(loss float64)) error {
	return runEpochsCtl(ex, opt, params, n, epochs, bs, nWorkers, seed, prefetch, build, after, nil)
}

// runEpochsCtl is runEpochs with a durability controller: ctl (may be
// nil) positions the loop mid-run on resume, snapshots the training
// state at minibatch boundaries, and stops cooperatively on
// interruption (returning ErrInterrupted after a final snapshot).
//
// Resume replays the shuffle deterministically: the rng's only draws
// are one Perm per epoch, so skipping ctl.startEpoch epochs re-derives
// the exact stream position, and starting the current epoch at
// ctl.startOffset (a minibatch boundary) re-enters mid-epoch with the
// same minibatch cuts the uninterrupted run makes. Combined with
// restored parameters and optimizer state, the remainder of the run —
// and therefore the final model — is bitwise identical to never having
// stopped, at any worker count.
//
// In a distributed run every rank executes this same loop over the
// same (seed, n, epochs, bs) shape: the shuffle, the minibatch cuts,
// and the batch counter advance in lockstep on every rank, each rank
// computes only its owned slots, and AllReduce hands everyone the
// identical reduced gradient and loss vector — so ctl's snapshot
// cadence and interrupt decisions land on the same minibatch boundary
// fleet-wide.
func runEpochsCtl(ex dist.Exchanger, opt *nn.Adam, params []*ag.Value, n, epochs, bs, nWorkers int, seed int64,
	prefetch func(batch []int) error,
	build func(slot, example int) *ag.Value,
	after func(loss float64),
	ctl *epochCtl) error {
	rng := rand.New(rand.NewSource(seed))
	slots := make([]ag.Grads, bs)
	losses := make([]float64, bs)
	batches := 0
	for ep := 0; ep < epochs; ep++ {
		order := rng.Perm(n)
		first := 0
		if ctl != nil {
			if ep < ctl.startEpoch {
				continue // consumed only to advance the rng stream
			}
			if ep == ctl.startEpoch {
				first = ctl.startOffset
			}
		}
		for start := first; start < len(order); start += bs {
			end := start + bs
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			if prefetch != nil {
				if err := prefetch(batch); err != nil {
					return err
				}
			}
			if err := runMinibatch(ex, opt, params, len(batch), nWorkers, slots, losses, func(i int) *ag.Value {
				return build(i, batch[i])
			}); err != nil {
				return err
			}
			if after != nil {
				for i := range batch {
					after(losses[i])
				}
			}
			if ctl == nil {
				continue
			}
			batches++
			// Normalize a finished epoch to {ep+1, 0} so the resume
			// point is unambiguous.
			epNext, offNext := ep, end
			if end >= len(order) {
				epNext, offNext = ep+1, 0
			}
			done := epNext >= epochs && offNext == 0
			stop := !done && ctl.stopRequested(batches)
			if ctl.snap != nil && !done && (stop || (ctl.every > 0 && batches%ctl.every == 0)) {
				if err := ctl.snap(epNext, offNext); err != nil {
					return err
				}
			}
			if stop {
				return ErrInterrupted
			}
		}
	}
	return nil
}

// fetchInto pulls one minibatch's examples into dst, worker-parallel
// for storage-backed sources (decode is real work there); the
// in-memory slice source is just indexed. A distributed rank fetches
// only the slots it owns — for a corpus-backed source that means each
// rank reads and decodes only its slice of the stream, which is what
// makes fleet pretraining scale I/O as well as compute.
func fetchInto(src workload.Source, batch []int, dst []*workload.LabeledQuery, world, rank int) error {
	if ss, ok := src.(workload.SliceSource); ok {
		for j, gi := range batch {
			if !dist.Owns(world, rank, j) {
				dst[j] = nil
				continue
			}
			dst[j] = ss[gi]
		}
		return nil
	}
	return parallel.ForErr(len(batch), 1, func(j int) error {
		if !dist.Owns(world, rank, j) {
			dst[j] = nil
			return nil
		}
		var err error
		dst[j], err = src.Example(batch[j])
		return err
	})
}

// TrainOptions controls joint training.
type TrainOptions struct {
	// Epochs over the training set.
	Epochs int
	// SeqLevelLoss switches Trans_JO from the token-level
	// cross-entropy to the Equation 3 sequence-level loss (Section 5).
	SeqLevelLoss bool
	// Seed shuffles the training order.
	Seed int64
	// LR overrides the config learning rate when > 0.
	LR float64
	// BatchSize groups examples into minibatches whose averaged
	// gradient drives each Adam step. 0 or 1 keeps per-example SGD
	// (the original trajectory).
	BatchSize int
	// Workers is the number of data-parallel workers that run
	// forward/backward over a minibatch's examples concurrently
	// against the shared parameters, each into a private gradient
	// buffer. 0 uses tensor.Parallelism(). The gradient reduction is
	// ordered by example index, so the loss trajectory is bitwise
	// identical for every worker count.
	Workers int
	// RecordTrajectory keeps every example's loss (in processing
	// order) in TrainStats.Trajectory — the eps=0 equivalence probe
	// for comparing training runs across source backends and worker
	// counts.
	RecordTrajectory bool
	// Snapshot makes the run durable: periodic crash-safe
	// training-state snapshots, cooperative interruption, and resume.
	Snapshot SnapshotOptions
	// Exchanger is the gradient-exchange plane. nil trains
	// single-process (dist.Local()); a dist.TCP exchanger makes this
	// process one rank of a data-parallel fleet whose trajectory is
	// bitwise identical to the single-process run at the same
	// (seed, batch size, example set).
	Exchanger dist.Exchanger
}

func (o TrainOptions) exchanger() dist.Exchanger {
	if o.Exchanger == nil {
		return dist.Local()
	}
	return o.Exchanger
}

func (o TrainOptions) batchSize() int {
	if o.BatchSize < 1 {
		return 1
	}
	return o.BatchSize
}

func (o TrainOptions) workers() int {
	if o.Workers < 1 {
		return tensor.Parallelism()
	}
	return o.Workers
}

// TrainStats summarizes a training run. It is fully live state (no
// seal step), so a training snapshot can persist it mid-run and a
// resumed run continues the exact statistics stream.
type TrainStats struct {
	// Steps counts training examples processed (not optimizer steps:
	// with BatchSize b, one Adam update covers b examples).
	Steps int
	// FinalLoss is the 0.95/0.05 EMA of the per-example loss, updated
	// live as examples are processed.
	FinalLoss float64
	// Trajectory holds every example's loss in processing order when
	// TrainOptions.RecordTrajectory is set (nil otherwise).
	Trajectory []float64
}

// recordInto returns the per-example stats hook every streaming
// trainer passes to runEpochs — the 0.95/0.05 EMA running loss, the
// step count, and the optional bitwise trajectory. One definition, so
// the eps=0 cross-path equivalence probes always compare identically
// computed stats.
func recordInto(st *TrainStats, trajectory bool) func(float64) {
	return func(loss float64) {
		st.FinalLoss = 0.95*st.FinalLoss + 0.05*loss
		st.Steps++
		if trajectory {
			st.Trajectory = append(st.Trajectory, loss)
		}
	}
}

// batchBackward computes per-example losses and gradients for one
// minibatch of n examples using up to nWorkers concurrent workers
// drawn from the shared bounded pool (so -workers stays a global
// concurrency bound even when training nests inside other parallel
// work). build(i) must construct the i-th example's loss graph;
// workers share the model parameters read-only and accumulate
// gradients into private per-example buffers (slots[i]). Examples
// are strided to workers by index and reduced by the caller in index
// order, so the result is independent of both nWorkers and goroutine
// scheduling.
func batchBackward(n, nWorkers int, slots []ag.Grads, losses []float64, build func(i int) *ag.Value) {
	run := func(i int) {
		sink := ag.Grads{}
		loss := build(i)
		loss.BackwardInto(sink)
		slots[i] = sink
		losses[i] = loss.Item()
	}
	if nWorkers > n {
		nWorkers = n
	}
	if nWorkers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	fs := make([]func(), nWorkers)
	for w := 0; w < nWorkers; w++ {
		w := w
		fs[w] = func() {
			for i := w; i < n; i += nWorkers {
				run(i)
			}
		}
	}
	parallel.Do(fs...)
}

// ownedBackward is batchBackward for one rank of a distributed fleet:
// it computes only the slots this rank owns (slot i belongs to rank
// i mod world — examples stride across ranks exactly like they stride
// across in-process workers), leaving every other slot nil for
// AllReduce to fill in from the other ranks. Owned slots still fan out
// over nWorkers in-process workers, so a rank parallelizes its share
// of the minibatch the same way a single-process run parallelizes the
// whole one.
func ownedBackward(world, rank, n, nWorkers int, slots []ag.Grads, losses []float64, build func(i int) *ag.Value) {
	owned := make([]int, 0, n/world+1)
	for i := 0; i < n; i++ {
		slots[i] = nil
		if dist.Owns(world, rank, i) {
			owned = append(owned, i)
		}
	}
	run := func(i int) {
		sink := ag.Grads{}
		loss := build(i)
		loss.BackwardInto(sink)
		slots[i] = sink
		losses[i] = loss.Item()
	}
	if nWorkers > len(owned) {
		nWorkers = len(owned)
	}
	if nWorkers <= 1 {
		for _, i := range owned {
			run(i)
		}
		return
	}
	fs := make([]func(), nWorkers)
	for w := 0; w < nWorkers; w++ {
		w := w
		fs[w] = func() {
			for j := w; j < len(owned); j += nWorkers {
				run(owned[j])
			}
		}
	}
	parallel.Do(fs...)
}

// runMinibatch computes gradients for one minibatch and applies one
// Adam step through the gradient-exchange plane. The single-process
// single-example case bypasses the sink machinery and accumulates
// directly into the parameters' Grad fields — the same trajectory
// bitwise (identical accumulation order), without the per-example
// buffer and reduction traffic on the per-example-SGD hot path every
// default-configured training run takes. Every other case backwards
// the rank's owned slots into private buffers and exchanges them:
// ZeroGrad + AllReduce + Step, which with the Local backend is
// float-op-for-float-op Adam.StepAveraged, and with the TCP backend
// the same arithmetic performed once at the coordinator.
func runMinibatch(ex dist.Exchanger, opt *nn.Adam, params []*ag.Value, n, nWorkers int, slots []ag.Grads, losses []float64, build func(i int) *ag.Value) error {
	world, rank := ex.World()
	if world <= 1 && n == 1 {
		opt.ZeroGrad()
		loss := build(0)
		loss.Backward()
		opt.Step()
		losses[0] = loss.Item()
		return nil
	}
	if world <= 1 {
		batchBackward(n, nWorkers, slots, losses, build)
	} else {
		ownedBackward(world, rank, n, nWorkers, slots, losses, build)
	}
	opt.ZeroGrad()
	if err := ex.AllReduce(params, slots[:n], losses[:n], 1/float64(n)); err != nil {
		return err
	}
	opt.Step()
	return nil
}

// jointLoss builds the Equation 1 loss graph for one labeled query.
func (m *Model) jointLoss(lq *workload.LabeledQuery, seqLevel bool) *ag.Value {
	cfg := m.Shared.Cfg
	rep := m.Represent(lq.Q, lq.Plan)
	loss := ag.Scalar(0)
	if cfg.WCard > 0 {
		loss = ag.Add(loss, ag.Scale(m.CardLoss(rep, lq), cfg.WCard))
	}
	if cfg.WCost > 0 {
		loss = ag.Add(loss, ag.Scale(m.CostLoss(rep, lq), cfg.WCost))
	}
	if cfg.WJo > 0 && len(lq.OptimalOrder) >= 2 {
		var jo *ag.Value
		if seqLevel {
			jo = m.JoinOrderSequenceLoss(rep, lq.Q, lq.OptimalOrder)
		} else {
			jo = m.JoinOrderTokenLoss(rep, lq.OptimalOrder)
		}
		loss = ag.Add(loss, ag.Scale(jo, cfg.WJo))
	}
	return loss
}

// TrainJoint trains the (S) and (T) modules jointly on all three tasks
// with the Equation 1 loss. Per the paper, the gradient updates (S)
// and (T) only; the per-table encoders of the (F) module are
// pre-trained separately (Featurizer.PretrainAll) and stay frozen
// here. Single-task ablations (MTMLF-CardEst etc.) are obtained by
// zeroing the other weights in Config.
//
// Training is minibatch data-parallel: each minibatch's examples run
// forward/backward concurrently on TrainOptions.Workers workers
// against the shared parameters, each into a private gradient buffer;
// the buffers are then averaged in example order and applied as one
// Adam step. The trajectory depends on Seed and BatchSize but never
// on Workers.
func (m *Model) TrainJoint(train []*workload.LabeledQuery, opts TrainOptions) TrainStats {
	// A slice source never errors, so the streaming path's error is
	// structurally nil here.
	st, _ := m.TrainJointStream(workload.SliceSource(train), opts)
	return st
}

// TrainJointStream is TrainJoint over any workload.Source: the
// in-memory slice backend, an on-disk corpus (corpus.Reader.Examples)
// or any future example producer. Each minibatch's examples are
// fetched worker-parallel just before use and dropped after, so the
// corpus may exceed RAM. The trajectory is bitwise identical to the
// in-memory path on the same example set — the source only changes
// where bytes come from, never what the optimizer sees.
func (m *Model) TrainJointStream(src workload.Source, opts TrainOptions) (TrainStats, error) {
	cfg := m.Shared.Cfg
	lr := cfg.LR
	if opts.LR > 0 {
		lr = opts.LR
	}
	bs := opts.batchSize()
	params := m.Shared.Params()
	opt := nn.NewAdam(params, lr)
	ex := opts.exchanger()
	world, rank := ex.World()
	var st TrainStats
	after := recordInto(&st, opts.RecordTrajectory)
	ctl, err := prepareSnapshots(ex, opts.Snapshot, snapshotMeta{
		Kind:   "joint",
		Config: fmt.Sprintf("seqlevel=%v lr=%v trajectory=%v", opts.SeqLevelLoss, lr, opts.RecordTrajectory),
		N:      src.Len(), Epochs: opts.Epochs, BatchSize: bs, Seed: opts.Seed,
	}, opt, params, &st)
	if err != nil {
		return st, err
	}
	cur := make([]*workload.LabeledQuery, bs)
	err = runEpochsCtl(ex, opt, params, src.Len(), opts.Epochs, bs, opts.workers(), opts.Seed,
		func(batch []int) error { return fetchInto(src, batch, cur, world, rank) },
		func(slot, _ int) *ag.Value { return m.jointLoss(cur[slot], opts.SeqLevelLoss) },
		after, ctl)
	return st, err
}

// ---------------------------------------------------------------------------
// Algorithm 1: cross-DB meta-learning (MLA)
// ---------------------------------------------------------------------------

// DBTask bundles one database's generator, featurizer, and labeled
// workload for MLA.
type DBTask struct {
	DB    *sqldb.DB
	Gen   *workload.Generator
	Model *Model // shares Shared with every other task
	// Queries is the materialized multi-table workload on the
	// in-memory path (NewDBTask). Corpus-backed tasks (TrainMLAStream)
	// leave it nil — their examples stay on disk and stream through
	// the epoch iterator one minibatch at a time.
	Queries []*workload.LabeledQuery
}

// MLAOptions controls the meta-learning run.
type MLAOptions struct {
	// QueriesPerDB is the multi-table workload size per database.
	QueriesPerDB int
	// SingleTablePerTable and EncoderEpochs control Enc_i pre-training
	// (Algorithm 1 line 4).
	SingleTablePerTable int
	EncoderEpochs       int
	// JointEpochs trains (S)+(T) over the shuffled pooled data
	// (Algorithm 1 lines 7–8).
	JointEpochs int
	// Workload configures query generation.
	Workload workload.Config
	// Seed drives all randomness.
	Seed int64
	// BatchSize and Workers configure the data-parallel joint loop,
	// with the same semantics as TrainOptions.
	BatchSize int
	Workers   int
	// RecordTrajectory keeps every pooled example's loss (in
	// processing order) in TrainStats.Trajectory, with the same
	// semantics as TrainOptions.RecordTrajectory — the eps=0 probe for
	// comparing the in-memory and corpus-backed MLA paths.
	RecordTrajectory bool
	// Snapshot makes the joint loop (Algorithm 1 lines 7–8) durable,
	// with the same semantics as TrainOptions.Snapshot. Per-DB
	// preparation (encoder pre-training) is deterministic from the
	// seeds and re-runs on resume.
	Snapshot SnapshotOptions
	// Exchanger is the gradient-exchange plane for the joint loop,
	// with the same semantics as TrainOptions.Exchanger. Per-DB
	// preparation is deterministic from the seeds and runs identically
	// on every rank, so only the joint loop exchanges gradients.
	Exchanger dist.Exchanger
}

func (o MLAOptions) exchanger() dist.Exchanger {
	if o.Exchanger == nil {
		return dist.Local()
	}
	return o.Exchanger
}

// taskSeed derives database i's task seed from the MLA master seed —
// the one seed scheme NewDBTask, TrainMLAStream's live-pretrain
// fallback, and GenMLAData all share, so a corpus written from
// GenMLAData trains bitwise-identically to the live in-memory run.
func (o MLAOptions) taskSeed(i int) int64 { return o.Seed + int64(i)*101 }

// TrainMLA runs Algorithm 1: for each database it trains the
// single-table encoders and builds a labeled workload (lines 3–6),
// then trains the shared (S) and (T) modules on the pooled, shuffled
// examples (lines 7–8). It returns the per-DB tasks so callers can
// evaluate the shared modules on each database or attach a new one,
// plus the joint loop's TrainStats (final running loss, steps, and —
// with MLAOptions.RecordTrajectory — every pooled example's loss).
// The error is the epoch iterator's: in-memory slice sources never
// fail, but the shared joint loop is the same one the corpus-backed
// path streams I/O through, and a half-trained model must never be
// mistaken for a trained one.
//
// Per-DB preparation (encoder pre-training, workload labeling) is
// independent across databases and fans out over the worker pool;
// the joint loop is minibatch data-parallel like TrainJoint, with
// the same worker-count-independent gradient reduction.
func TrainMLA(shared *Shared, dbs []*sqldb.DB, opts MLAOptions) ([]*DBTask, TrainStats, error) {
	tasks := make([]*DBTask, len(dbs))
	parallel.For(len(dbs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tasks[i] = NewDBTask(shared, dbs[i], opts, opts.taskSeed(i))
		}
	})
	srcs := make([]workload.Source, len(tasks))
	for i, t := range tasks {
		srcs[i] = workload.SliceSource(t.Queries)
	}
	st, err := trainMLAJoint(shared, tasks, srcs, opts)
	return tasks, st, err
}

// TrainMLAStream is Algorithm 1 over the pluggable data plane: each
// database arrives as a catalog.Catalog plus a workload.Source of
// pre-labeled examples — corpus.DBCatalog with corpus.Reader.Examples
// for fleet pretraining from one on-disk artifact, or in-memory
// slices for tests and hybrids. cats[i] and srcs[i] describe the same
// database.
//
// Per-DB preparation builds each featurizer exactly as NewDBTask does
// (same init seed, same table order); the single-table pre-training
// data comes from the catalog's cached corpus v2 section when present
// (SingleTable) and is otherwise regenerated live from the task seed
// — both bitwise-identical to the in-memory path. The joint loop then
// pools the sources under one deterministic global index order
// (workload.Concat: all of srcs[0], then srcs[1], …) and streams
// minibatches through the shared epoch iterator, so the pooled fleet
// workload is NEVER materialized and the trajectory and final shared
// parameters are bitwise identical to TrainMLA on the same data at
// any worker count.
func TrainMLAStream(shared *Shared, cats []catalog.Catalog, srcs []workload.Source, opts MLAOptions) ([]*DBTask, TrainStats, error) {
	if len(cats) != len(srcs) {
		return nil, TrainStats{}, fmt.Errorf("mtmlf: %d catalogs but %d example sources", len(cats), len(srcs))
	}
	tasks := make([]*DBTask, len(cats))
	if err := parallel.ForErr(len(cats), 1, func(i int) error {
		var err error
		tasks[i], err = newDBTaskFrom(shared, cats[i], opts, opts.taskSeed(i))
		if err != nil {
			return fmt.Errorf("mtmlf: prepare database %q: %w", cats[i].Name(), err)
		}
		return nil
	}); err != nil {
		return nil, TrainStats{}, err
	}
	st, err := trainMLAJoint(shared, tasks, srcs, opts)
	return tasks, st, err
}

// singleTabler is implemented by catalog backends that carry cached
// encoder pre-training data (corpus v2's per-DB single-table
// section). ok=false means "generate it live instead".
type singleTabler interface {
	SingleTable() (data []workload.TableWorkload, ok bool, err error)
}

// newDBTaskFrom prepares one database for the streaming MLA path: the
// featurizer is initialized and pre-trained exactly like NewDBTask's,
// but the multi-table workload is left to the caller's Source (the
// task's Queries stay nil) and the single-table data is loaded from
// the catalog's corpus section when it has one.
func newDBTaskFrom(shared *Shared, cat catalog.Catalog, opts MLAOptions, seed int64) (*DBTask, error) {
	model := &Model{Shared: shared, Feat: featurize.NewFrom(cat, shared.Cfg.Feat, opts.Seed+7)}
	gen := workload.NewGeneratorFrom(cat, seed)
	var data []workload.TableWorkload
	if st, ok := cat.(singleTabler); ok {
		d, present, err := st.SingleTable()
		if err != nil {
			return nil, err
		}
		if present {
			data = d
		}
	}
	if data == nil {
		// No cached section (v1 corpus, or a backend that never stores
		// one): regenerate live. The draws are the prefix of the same
		// rng stream NewDBTask consumes, so the encoders come out
		// bitwise identical either way.
		data = gen.GenPretrainSet(opts.SingleTablePerTable, opts.Workload)
	}
	if _, err := model.Feat.PretrainAllFrom(data, opts.EncoderEpochs); err != nil {
		return nil, err
	}
	return &DBTask{DB: cat.DB(), Gen: gen, Model: model}, nil
}

// mlaLoss is the Algorithm 1 per-example loss: Equation 1 with the
// token-level join-order term, built against the example's own
// database task (its featurizer) and the shared modules.
func mlaLoss(t *DBTask, lq *workload.LabeledQuery) *ag.Value {
	m := t.Model
	cfg := m.Shared.Cfg
	rep := m.Represent(lq.Q, lq.Plan)
	loss := ag.Scale(m.CardLoss(rep, lq), cfg.WCard)
	loss = ag.Add(loss, ag.Scale(m.CostLoss(rep, lq), cfg.WCost))
	if cfg.WJo > 0 && len(lq.OptimalOrder) >= 2 {
		loss = ag.Add(loss, ag.Scale(m.JoinOrderTokenLoss(rep, lq.OptimalOrder), cfg.WJo))
	}
	return loss
}

// trainMLAJoint is Algorithm 1 lines 7–8 over any source backend: the
// per-DB sources are pooled under one deterministic global index
// order (task order, each task's example order — exactly how the
// in-memory path appended its pool), shuffled by seed, and streamed
// through the shared epoch iterator. Each minibatch's (db, example)
// pairs are fetched worker-parallel just before use and dropped
// after, so only minibatch-sized state is ever live.
func trainMLAJoint(shared *Shared, tasks []*DBTask, srcs []workload.Source, opts MLAOptions) (TrainStats, error) {
	pool := workload.Concat(srcs...)
	topts := TrainOptions{BatchSize: opts.BatchSize, Workers: opts.Workers}
	params := shared.Params()
	opt := nn.NewAdam(params, shared.Cfg.LR)
	bs := topts.batchSize()
	type sample struct {
		task *DBTask
		lq   *workload.LabeledQuery
	}
	cur := make([]sample, bs)
	ex := opts.exchanger()
	world, rank := ex.World()
	var st TrainStats
	after := recordInto(&st, opts.RecordTrajectory)
	ctl, err := prepareSnapshots(ex, opts.Snapshot, snapshotMeta{
		Kind:   "mla",
		Config: fmt.Sprintf("lr=%v trajectory=%v", shared.Cfg.LR, opts.RecordTrajectory),
		N:      pool.Len(), Epochs: opts.JointEpochs, BatchSize: bs, Seed: opts.Seed,
	}, opt, params, &st)
	if err != nil {
		return st, err
	}
	err = runEpochsCtl(ex, opt, params, pool.Len(), opts.JointEpochs, bs, topts.workers(), opts.Seed,
		func(batch []int) error {
			return parallel.ForErr(len(batch), 1, func(j int) error {
				if !dist.Owns(world, rank, j) {
					cur[j] = sample{}
					return nil
				}
				d, local, err := pool.Locate(batch[j])
				if err != nil {
					return err
				}
				lq, err := srcs[d].Example(local)
				cur[j] = sample{tasks[d], lq}
				return err
			})
		},
		func(slot, _ int) *ag.Value { return mlaLoss(cur[slot].task, cur[slot].lq) },
		after, ctl)
	return st, err
}

// GenMLAData generates one database's Algorithm 1 training data in
// the exact order NewDBTask consumes it: the per-table single-table
// workloads first (table order), then the multi-table labeled
// workload, all drawn from one rng stream seeded with the task seed
// of database dbIndex. Writing its output into a corpus v2 file
// (single-table section + examples) therefore yields an artifact that
// TrainMLAStream trains from bitwise-identically to a live TrainMLA
// run with the same options — the contract mtmlf-datagen
// -single-table and `make mla-smoke` build on.
func GenMLAData(cat catalog.Catalog, opts MLAOptions, dbIndex int) ([]workload.TableWorkload, []*workload.LabeledQuery) {
	gen := workload.NewGeneratorFrom(cat, opts.taskSeed(dbIndex))
	st := gen.GenPretrainSet(opts.SingleTablePerTable, opts.Workload)
	return st, gen.Generate(opts.QueriesPerDB, opts.Workload)
}

// NewDBTask prepares one database for MLA or transfer: analyzing it,
// pre-training its (F) encoders, and labeling a workload.
//
// Every database's featurizer is initialized from the SAME seed
// (derived from opts.Seed, not the per-DB seed): the provider ships a
// canonical encoder initialization alongside the pre-trained (S)+(T)
// modules, so that independently pre-trained per-table encoders live
// in roughly aligned embedding spaces. Without this, each DB's Enc_i
// would occupy an arbitrary rotation of feature space and the shared
// modules could not extrapolate across DBs.
func NewDBTask(shared *Shared, db *sqldb.DB, opts MLAOptions, seed int64) *DBTask {
	// One catalog per task: the generator and the featurizer share a
	// single ANALYZE pass over the database.
	cat := catalog.NewMemory(db)
	gen := workload.NewGeneratorFrom(cat, seed)
	model := &Model{Shared: shared, Feat: featurize.NewFrom(cat, shared.Cfg.Feat, opts.Seed+7)}
	model.Feat.PretrainAll(gen, opts.SingleTablePerTable, opts.EncoderEpochs, opts.Workload)
	return &DBTask{
		DB:      db,
		Gen:     gen,
		Model:   model,
		Queries: gen.Generate(opts.QueriesPerDB, opts.Workload),
	}
}

// FineTune adapts a pre-trained Shared to a new database's workload
// with a small number of examples — the user-side step of the paper's
// cloud workflow ("execute a small number of representative queries to
// fine-tune the pre-trained MTMLF").
func (m *Model) FineTune(examples []*workload.LabeledQuery, epochs int, lr float64, seed int64) TrainStats {
	return m.TrainJoint(examples, TrainOptions{Epochs: epochs, Seed: seed, LR: lr})
}
