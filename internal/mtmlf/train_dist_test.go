package mtmlf

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mtmlf/internal/catalog"
	"mtmlf/internal/dist"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

// startDistCoordinator boots a loopback coordinator for one in-process
// fleet test and returns its dial address plus Run's error channel.
func startDistCoordinator(t *testing.T, world int) (string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dist.NewCoordinator(ln, world)
	errc := make(chan error, 1)
	go func() { errc <- c.Run() }()
	return c.Addr(), errc
}

func waitDistCoordinator(t *testing.T, errc chan error) {
	t.Helper()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("coordinator did not exit")
	}
}

// runFleet runs one training closure per rank concurrently — each rank
// with its own exchanger, its own model, its own everything, exactly
// like separate processes — and fails the test on any rank or
// coordinator error.
func runFleet(t *testing.T, world int, fingerprint string, train func(rank int, ex dist.Exchanger) error) {
	t.Helper()
	addr, coordErr := startDistCoordinator(t, world)
	var wg sync.WaitGroup
	rankErr := make(chan error, world)
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ex, err := dist.DialRetry(addr, rank, world, fingerprint, 100, 20*time.Millisecond)
			if err != nil {
				rankErr <- fmt.Errorf("rank %d: %w", rank, err)
				return
			}
			defer ex.Close()
			if err := train(rank, ex); err != nil {
				rankErr <- fmt.Errorf("rank %d: %w", rank, err)
			}
		}(rank)
	}
	wg.Wait()
	close(rankErr)
	for err := range rankErr {
		t.Fatal(err)
	}
	waitDistCoordinator(t, coordErr)
}

// trainJointDist runs the trainWithWorkers setup under an explicit
// exchanger, recording the trajectory.
func trainJointDist(batch, workers int, ex dist.Exchanger) (*Model, TrainStats, error) {
	db := tinyDB()
	m := NewModel(tinyConfig(), db, 7)
	gen := workload.NewGenerator(db, 8)
	cfg := workload.DefaultConfig()
	cfg.MaxTables = 3
	m.Feat.PretrainAll(gen, 5, 1, cfg)
	qs := gen.Generate(10, cfg)
	st, err := m.TrainJointStream(workload.SliceSource(qs), TrainOptions{
		Epochs: 2, Seed: 9, BatchSize: batch, Workers: workers,
		RecordTrajectory: true, Exchanger: ex,
	})
	return m, st, err
}

func sameTrajectory(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkSameRun(t *testing.T, tag string, ref *Model, refSt TrainStats, got *Model, gotSt TrainStats) {
	t.Helper()
	if gotSt.Steps != refSt.Steps || gotSt.FinalLoss != refSt.FinalLoss {
		t.Fatalf("%s: stats {steps %d, loss %v} != reference {steps %d, loss %v}",
			tag, gotSt.Steps, gotSt.FinalLoss, refSt.Steps, refSt.FinalLoss)
	}
	if !sameTrajectory(refSt.Trajectory, gotSt.Trajectory) {
		t.Fatalf("%s: loss trajectory differs from reference", tag)
	}
	pa, pb := ref.Shared.Params(), got.Shared.Params()
	for i := range pa {
		if !tensor.Equal(pa[i].T, pb[i].T, 0) {
			t.Fatalf("%s: shared parameter %d differs from reference", tag, i)
		}
	}
}

// TestTrainJointDistTopologyGrid is the tentpole's bitwise contract on
// the joint loop: single-process runs at 1 and 4 workers, and 2- and
// 3-rank TCP fleets (every rank asserted), must all produce the same
// loss trajectory and final parameters as float bits.
func TestTrainJointDistTopologyGrid(t *testing.T) {
	const batch = 4
	ref, refSt, err := trainJointDist(batch, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4} {
		m, st, err := trainJointDist(batch, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkSameRun(t, fmt.Sprintf("workers=%d", workers), ref, refSt, m, st)
	}
	for _, world := range []int{2, 3} {
		world := world
		t.Run(fmt.Sprintf("world%d", world), func(t *testing.T) {
			models := make([]*Model, world)
			stats := make([]TrainStats, world)
			runFleet(t, world, "joint-grid", func(rank int, ex dist.Exchanger) error {
				m, st, err := trainJointDist(batch, 2, ex)
				models[rank], stats[rank] = m, st
				return err
			})
			for rank := 0; rank < world; rank++ {
				checkSameRun(t, fmt.Sprintf("world=%d rank=%d", world, rank), ref, refSt, models[rank], stats[rank])
			}
		})
	}
}

// mlaStreamFixture builds one rank's private copy of the streaming MLA
// inputs: the fleet's catalogs and in-memory example sources, derived
// deterministically so every rank (and the single-process reference)
// sees identical bits.
func mlaStreamFixture(opts MLAOptions) ([]catalog.Catalog, []workload.Source) {
	dbs := mlaFleet()
	cats := make([]catalog.Catalog, len(dbs))
	srcs := make([]workload.Source, len(dbs))
	for i, db := range dbs {
		cats[i] = catalog.NewMemory(db)
		_, qs := GenMLAData(cats[i], opts, i)
		srcs[i] = workload.SliceSource(qs)
	}
	return cats, srcs
}

// TestTrainMLADistTopologyGrid extends the bitwise topology contract
// to Algorithm 1 fleet pretraining over TrainMLAStream — the run the
// distributed mode exists for. Single-process at 1 and 4 workers and
// 2- and 3-rank TCP fleets must agree on the trajectory and the final
// shared parameters bit for bit.
func TestTrainMLADistTopologyGrid(t *testing.T) {
	run := func(workers int, ex dist.Exchanger) (*Shared, TrainStats, error) {
		opts := mlaFixtureOpts()
		opts.Workers = workers
		opts.Exchanger = ex
		cats, srcs := mlaStreamFixture(opts)
		shared := NewShared(tinyConfig(), 20)
		_, st, err := TrainMLAStream(shared, cats, srcs, opts)
		return shared, st, err
	}
	ref, refSt, err := run(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	check := func(tag string, shared *Shared, st TrainStats) {
		t.Helper()
		if st.Steps != refSt.Steps || st.FinalLoss != refSt.FinalLoss {
			t.Fatalf("%s: stats {steps %d, loss %v} != reference {steps %d, loss %v}",
				tag, st.Steps, st.FinalLoss, refSt.Steps, refSt.FinalLoss)
		}
		if !sameTrajectory(refSt.Trajectory, st.Trajectory) {
			t.Fatalf("%s: loss trajectory differs from reference", tag)
		}
		pa, pb := ref.Params(), shared.Params()
		for i := range pa {
			if !tensor.Equal(pa[i].T, pb[i].T, 0) {
				t.Fatalf("%s: shared parameter %d differs from reference", tag, i)
			}
		}
	}
	par, parSt, err := run(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	check("workers=4", par, parSt)
	for _, world := range []int{2, 3} {
		world := world
		t.Run(fmt.Sprintf("world%d", world), func(t *testing.T) {
			shareds := make([]*Shared, world)
			stats := make([]TrainStats, world)
			runFleet(t, world, "mla-grid", func(rank int, ex dist.Exchanger) error {
				s, st, err := run(2, ex)
				shareds[rank], stats[rank] = s, st
				return err
			})
			for rank := 0; rank < world; rank++ {
				check(fmt.Sprintf("world=%d rank=%d", world, rank), shareds[rank], stats[rank])
			}
		})
	}
}

// TestTrainJointDistResume: a 2-rank fleet is interrupted mid-epoch
// (deterministically, on every rank at the same minibatch boundary),
// only rank 0 holds a snapshot file, and a restarted fleet — rank 0
// broadcasting its snapshot to rank 1 at startup — must finish with
// the parameters and stats of the run that was never interrupted.
func TestTrainJointDistResume(t *testing.T) {
	const world, batch = 2, 4
	ref, refSt, err := trainJointDist(batch, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(t.TempDir(), "dist.snap")
	trainRank := func(ex dist.Exchanger, interruptAfter int) (*Model, TrainStats, error) {
		db := tinyDB()
		m := NewModel(tinyConfig(), db, 7)
		gen := workload.NewGenerator(db, 8)
		cfg := workload.DefaultConfig()
		cfg.MaxTables = 3
		m.Feat.PretrainAll(gen, 5, 1, cfg)
		qs := gen.Generate(10, cfg)
		st, err := m.TrainJointStream(workload.SliceSource(qs), TrainOptions{
			Epochs: 2, Seed: 9, BatchSize: batch, Workers: 2,
			RecordTrajectory: true, Exchanger: ex,
			Snapshot: SnapshotOptions{Path: snapPath, Resume: true, InterruptAfter: interruptAfter},
		})
		return m, st, err
	}
	// Leg 1: every rank stops after 2 minibatches; rank 0 snapshots.
	runFleet(t, world, "joint-resume", func(rank int, ex dist.Exchanger) error {
		_, _, err := trainRank(ex, 2)
		if err != ErrInterrupted {
			return fmt.Errorf("leg 1 returned %v, want ErrInterrupted", err)
		}
		return nil
	})
	// Leg 2: a fresh fleet resumes from rank 0's snapshot and finishes.
	models := make([]*Model, world)
	stats := make([]TrainStats, world)
	runFleet(t, world, "joint-resume", func(rank int, ex dist.Exchanger) error {
		m, st, err := trainRank(ex, 0)
		models[rank], stats[rank] = m, st
		return err
	})
	for rank := 0; rank < world; rank++ {
		checkSameRun(t, fmt.Sprintf("resumed rank=%d", rank), ref, refSt, models[rank], stats[rank])
	}
}

// countingSource wraps a Source and records how many times each
// example index is fetched. It deliberately hides the SliceSource
// fast path so fetches go through Example, like a corpus would.
type countingSource struct {
	src workload.Source
	mu  sync.Mutex
	got map[int]int
}

func (c *countingSource) Len() int { return c.src.Len() }

func (c *countingSource) Example(i int) (*workload.LabeledQuery, error) {
	c.mu.Lock()
	c.got[i]++
	c.mu.Unlock()
	return c.src.Example(i)
}

// TestTrainJointDistReadsOnlyOwnedSlice: in a fleet, each rank must
// fetch only the examples of the slots it owns — fleet-wide every
// example is read exactly once per epoch, with no rank reading the
// whole stream. This is the I/O half of sharded fleet pretraining.
func TestTrainJointDistReadsOnlyOwnedSlice(t *testing.T) {
	const world, batch, epochs, nq = 2, 4, 2, 10
	counters := make([]*countingSource, world)
	runFleet(t, world, "owned-slice", func(rank int, ex dist.Exchanger) error {
		db := tinyDB()
		m := NewModel(tinyConfig(), db, 7)
		gen := workload.NewGenerator(db, 8)
		cfg := workload.DefaultConfig()
		cfg.MaxTables = 3
		m.Feat.PretrainAll(gen, 5, 1, cfg)
		qs := gen.Generate(nq, cfg)
		cs := &countingSource{src: workload.SliceSource(qs), got: map[int]int{}}
		counters[rank] = cs
		_, err := m.TrainJointStream(cs, TrainOptions{
			Epochs: epochs, Seed: 9, BatchSize: batch, Workers: 2, Exchanger: ex,
		})
		return err
	})
	perIndex := make([]int, nq)
	for rank, cs := range counters {
		total := 0
		for i, c := range cs.got {
			perIndex[i] += c
			total += c
		}
		if total == 0 || total >= nq*epochs {
			t.Fatalf("rank %d fetched %d examples; want a strict share of the %d fleet-wide reads",
				rank, total, nq*epochs)
		}
	}
	for i, c := range perIndex {
		if c != epochs {
			t.Fatalf("example %d fetched %d times fleet-wide, want once per epoch (%d)", i, c, epochs)
		}
	}
}
