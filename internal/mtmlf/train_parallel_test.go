package mtmlf

import (
	"testing"

	"mtmlf/internal/datagen"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

// trainWithWorkers runs an identically seeded end-to-end training
// setup with the given data-parallel settings and returns the model.
func trainWithWorkers(batch, workers int) (*Model, TrainStats) {
	db := tinyDB()
	m := NewModel(tinyConfig(), db, 7)
	gen := workload.NewGenerator(db, 8)
	cfg := workload.DefaultConfig()
	cfg.MaxTables = 3
	m.Feat.PretrainAll(gen, 5, 1, cfg)
	qs := gen.Generate(10, cfg)
	st := m.TrainJoint(qs, TrainOptions{
		Epochs: 2, Seed: 9, BatchSize: batch, Workers: workers,
	})
	return m, st
}

// TestTrainJointWorkerCountInvariant is the determinism contract of
// data-parallel training: N workers must reproduce the 1-worker loss
// trajectory and final parameters bitwise, because the per-example
// gradient buffers are reduced in example order regardless of which
// worker filled them.
func TestTrainJointWorkerCountInvariant(t *testing.T) {
	ref, refStats := trainWithWorkers(4, 1)
	for _, workers := range []int{2, 3, 8} {
		m, st := trainWithWorkers(4, workers)
		if st.FinalLoss != refStats.FinalLoss {
			t.Fatalf("workers=%d: final loss %v != 1-worker %v", workers, st.FinalLoss, refStats.FinalLoss)
		}
		if st.Steps != refStats.Steps {
			t.Fatalf("workers=%d: steps %d != %d", workers, st.Steps, refStats.Steps)
		}
		pa, pb := ref.Shared.Params(), m.Shared.Params()
		for i := range pa {
			if !tensor.Equal(pa[i].T, pb[i].T, 0) {
				t.Fatalf("workers=%d: parameter %d differs from 1-worker run", workers, i)
			}
		}
	}
}

// TestTrainJointBatchOneMatchesSeedSemantics: BatchSize 0/1 must be
// plain per-example SGD — Steps counts every example and identically
// seeded runs coincide (the original training contract).
func TestTrainJointBatchOneMatchesSeedSemantics(t *testing.T) {
	a, sa := trainWithWorkers(1, 1)
	b, sb := trainWithWorkers(0, 4) // BatchSize 0 normalizes to 1
	if sa.Steps != sb.Steps || sa.FinalLoss != sb.FinalLoss {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	pa, pb := a.Shared.Params(), b.Shared.Params()
	for i := range pa {
		if !tensor.Equal(pa[i].T, pb[i].T, 0) {
			t.Fatalf("parameter %d differs between batch-1 runs", i)
		}
	}
}

// TestTrainMLAWorkerCountInvariant extends the determinism contract to
// the Algorithm 1 meta-learning loop, including its parallel per-DB
// task preparation.
func TestTrainMLAWorkerCountInvariant(t *testing.T) {
	run := func(workers int) *Shared {
		shared := NewShared(tinyConfig(), 20)
		dgCfg := datagen.DefaultConfig()
		dgCfg.MinTables, dgCfg.MaxTables = 4, 5
		dgCfg.MinRows, dgCfg.MaxRows = 100, 250
		dbs := datagen.GenerateFleet(21, 2, dgCfg)
		wcfg := workload.DefaultConfig()
		wcfg.MaxTables = 3
		if _, _, err := TrainMLA(shared, dbs, MLAOptions{
			QueriesPerDB:        6,
			SingleTablePerTable: 4,
			EncoderEpochs:       1,
			JointEpochs:         1,
			Workload:            wcfg,
			Seed:                22,
			BatchSize:           4,
			Workers:             workers,
		}); err != nil {
			t.Fatal(err)
		}
		return shared
	}
	ref := run(1)
	par := run(4)
	pa, pb := ref.Params(), par.Params()
	for i := range pa {
		if !tensor.Equal(pa[i].T, pb[i].T, 0) {
			t.Fatalf("MLA parameter %d differs between 1 and 4 workers", i)
		}
	}
}

// TestTrainJointSeqLevelLossParallel exercises the Equation 3
// sequence-level loss under data parallelism (beam search inside the
// loss graph) so the race detector covers that path too.
func TestTrainJointSeqLevelLossParallel(t *testing.T) {
	db := tinyDB()
	m := NewModel(tinyConfig(), db, 11)
	gen := workload.NewGenerator(db, 12)
	cfg := workload.DefaultConfig()
	cfg.MaxTables = 3
	m.Feat.PretrainAll(gen, 4, 1, cfg)
	qs := gen.Generate(6, cfg)
	st := m.TrainJoint(qs, TrainOptions{
		Epochs: 1, Seed: 13, SeqLevelLoss: true, BatchSize: 3, Workers: 3,
	})
	if st.Steps != len(qs) {
		t.Fatalf("steps %d, want %d", st.Steps, len(qs))
	}
}
