package mtmlf

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mtmlf/internal/catalog"
	"mtmlf/internal/ckptio"
	"mtmlf/internal/corpus"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

// freshJointModel builds the deterministic pre-trained model every
// "process" of a simulated crash/resume cycle starts from — identical
// to trainFrom's setup, but without running the joint loop.
func freshJointModel(t *testing.T, cat catalog.Catalog) *Model {
	t.Helper()
	m := NewModelCat(tinyConfig(), cat, 7)
	gen := workload.NewGeneratorFrom(cat, 8)
	cfg := workload.DefaultConfig()
	cfg.MaxTables = 3
	m.Feat.PretrainAll(gen, 5, 1, cfg)
	return m
}

// jointOpts is the fixture's training configuration: 12 examples at
// batch size 4 over 2 epochs = 6 minibatch boundaries to interrupt at.
func jointOpts(workers int, snap SnapshotOptions) TrainOptions {
	return TrainOptions{
		Epochs: 2, Seed: 9, BatchSize: 4, Workers: workers,
		RecordTrajectory: true, Snapshot: snap,
	}
}

// assertJointEqual compares a resumed run's final state against the
// uninterrupted reference bitwise: step count, full loss trajectory,
// final loss, and every parameter.
func assertJointEqual(t *testing.T, label string, refModel, m *Model, ref, st TrainStats) {
	t.Helper()
	if st.Steps != ref.Steps {
		t.Fatalf("%s: steps %d, want %d", label, st.Steps, ref.Steps)
	}
	if len(st.Trajectory) != len(ref.Trajectory) {
		t.Fatalf("%s: trajectory length %d, want %d", label, len(st.Trajectory), len(ref.Trajectory))
	}
	for i := range ref.Trajectory {
		if math.Float64bits(st.Trajectory[i]) != math.Float64bits(ref.Trajectory[i]) {
			t.Fatalf("%s: trajectory step %d differs: %v vs %v", label, i, st.Trajectory[i], ref.Trajectory[i])
		}
	}
	if math.Float64bits(st.FinalLoss) != math.Float64bits(ref.FinalLoss) {
		t.Fatalf("%s: final loss differs: %v vs %v", label, st.FinalLoss, ref.FinalLoss)
	}
	pa, pb := refModel.Params(), m.Params()
	if len(pa) != len(pb) {
		t.Fatalf("%s: parameter counts differ: %d vs %d", label, len(pa), len(pb))
	}
	for i := range pa {
		if !tensor.Equal(pa[i].T, pb[i].T, 0) {
			t.Fatalf("%s: parameter %d differs from uninterrupted run", label, i)
		}
	}
}

// TestTrainJointResumeMatchesUninterrupted is the interruption-
// invariance contract: kill a training run at ANY minibatch boundary,
// start a fresh process, resume from the snapshot — the final model,
// loss trajectory, and stats are bitwise identical to the run that was
// never interrupted, at any worker count.
func TestTrainJointResumeMatchesUninterrupted(t *testing.T) {
	memCat, examples, _ := streamFixture(t)
	refModel, ref := trainFrom(t, memCat, workload.SliceSource(examples), 1)
	src := workload.SliceSource(examples)

	for _, workers := range []int{1, 4} {
		for _, after := range []int{1, 2, 3, 5} {
			path := filepath.Join(t.TempDir(), "train.snap")

			// Process 1: train until the injected interrupt.
			m1 := freshJointModel(t, memCat)
			_, err := m1.TrainJointStream(src, jointOpts(workers, SnapshotOptions{
				Path: path, InterruptAfter: after,
			}))
			if !errors.Is(err, ErrInterrupted) {
				t.Fatalf("workers=%d after=%d: interrupted run returned %v, want ErrInterrupted", workers, after, err)
			}

			// Process 2: a fresh model resumes and finishes the run.
			m2 := freshJointModel(t, memCat)
			st, err := m2.TrainJointStream(src, jointOpts(workers, SnapshotOptions{
				Path: path, Resume: true,
			}))
			if err != nil {
				t.Fatalf("workers=%d after=%d: resume failed: %v", workers, after, err)
			}
			assertJointEqual(t, "resume", refModel, m2, ref, st)
		}
	}
}

// TestTrainJointResumeSurvivesRepeatedCrashes chains interruptions:
// crash after 2 minibatches, resume and crash again after 2 more, then
// resume to completion — three processes, one byte-identical run.
func TestTrainJointResumeSurvivesRepeatedCrashes(t *testing.T) {
	memCat, examples, _ := streamFixture(t)
	refModel, ref := trainFrom(t, memCat, workload.SliceSource(examples), 4)
	src := workload.SliceSource(examples)
	path := filepath.Join(t.TempDir(), "train.snap")

	for crash := 0; crash < 2; crash++ {
		m := freshJointModel(t, memCat)
		_, err := m.TrainJointStream(src, jointOpts(4, SnapshotOptions{
			Path: path, Resume: true, InterruptAfter: 2,
		}))
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("crash %d: got %v, want ErrInterrupted", crash, err)
		}
	}
	m := freshJointModel(t, memCat)
	st, err := m.TrainJointStream(src, jointOpts(4, SnapshotOptions{Path: path, Resume: true}))
	if err != nil {
		t.Fatalf("final resume failed: %v", err)
	}
	assertJointEqual(t, "chained resume", refModel, m, ref, st)
}

// TestTrainJointPeriodicSnapshots: Every-N snapshotting neither
// perturbs the trajectory nor, after the run completes, leaves a
// snapshot that a redundant supervisor rerun can't pick up — resuming
// from the last periodic snapshot replays the tail and converges to
// the same final state.
func TestTrainJointPeriodicSnapshots(t *testing.T) {
	memCat, examples, _ := streamFixture(t)
	refModel, ref := trainFrom(t, memCat, workload.SliceSource(examples), 1)
	src := workload.SliceSource(examples)
	path := filepath.Join(t.TempDir(), "train.snap")

	m := freshJointModel(t, memCat)
	st, err := m.TrainJointStream(src, jointOpts(1, SnapshotOptions{Path: path, Every: 2}))
	if err != nil {
		t.Fatalf("periodic-snapshot run failed: %v", err)
	}
	assertJointEqual(t, "periodic", refModel, m, ref, st)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}

	// A supervisor that blindly reruns with -resume after success must
	// still converge: the snapshot replays from its boundary to the end.
	m2 := freshJointModel(t, memCat)
	st2, err := m2.TrainJointStream(src, jointOpts(1, SnapshotOptions{Path: path, Resume: true}))
	if err != nil {
		t.Fatalf("rerun after success failed: %v", err)
	}
	assertJointEqual(t, "rerun", refModel, m2, ref, st2)
}

// TestTrainJointResumeMissingFileIsFreshStart: Resume with no snapshot
// on disk trains from scratch — the property that lets a supervisor
// always pass -resume and retry until exit 0.
func TestTrainJointResumeMissingFileIsFreshStart(t *testing.T) {
	memCat, examples, _ := streamFixture(t)
	refModel, ref := trainFrom(t, memCat, workload.SliceSource(examples), 1)

	m := freshJointModel(t, memCat)
	st, err := m.TrainJointStream(workload.SliceSource(examples), jointOpts(1, SnapshotOptions{
		Path: filepath.Join(t.TempDir(), "never-written.snap"), Resume: true,
	}))
	if err != nil {
		t.Fatalf("fresh-start resume failed: %v", err)
	}
	assertJointEqual(t, "fresh start", refModel, m, ref, st)
}

// TestTrainJointResumeRejectsMismatchedRun: a snapshot from a run with
// different trajectory-relevant configuration must be rejected before
// any state is touched — silently resuming would produce a model
// matching neither run.
func TestTrainJointResumeRejectsMismatchedRun(t *testing.T) {
	memCat, examples, _ := streamFixture(t)
	src := workload.SliceSource(examples)
	path := filepath.Join(t.TempDir(), "train.snap")

	m1 := freshJointModel(t, memCat)
	if _, err := m1.TrainJointStream(src, jointOpts(1, SnapshotOptions{
		Path: path, InterruptAfter: 2,
	})); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("setup: %v", err)
	}

	m2 := freshJointModel(t, memCat)
	opts := jointOpts(1, SnapshotOptions{Path: path, Resume: true})
	opts.Seed = 10 // different shuffle stream
	_, err := m2.TrainJointStream(src, opts)
	if err == nil || !strings.Contains(err.Error(), "snapshot does not match") {
		t.Fatalf("mismatched resume: got %v, want identity-mismatch error", err)
	}
}

// TestTrainJointResumeDetectsCorruption: a damaged snapshot — bit
// flips anywhere, or a torn prefix — fails resume with a typed
// *ckptio.CorruptError instead of restoring garbage state.
func TestTrainJointResumeDetectsCorruption(t *testing.T) {
	memCat, examples, _ := streamFixture(t)
	src := workload.SliceSource(examples)
	path := filepath.Join(t.TempDir(), "train.snap")

	m1 := freshJointModel(t, memCat)
	if _, err := m1.TrainJointStream(src, jointOpts(1, SnapshotOptions{
		Path: path, InterruptAfter: 2,
	})); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("setup: %v", err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	resumeFrom := func(data []byte) error {
		p := filepath.Join(t.TempDir(), "mut.snap")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		m := freshJointModel(t, memCat)
		_, err := m.TrainJointStream(src, jointOpts(1, SnapshotOptions{Path: p, Resume: true}))
		return err
	}

	// Bit flips: every bit of the preamble + meta region, then a stride
	// across the optimizer/parameter payloads (full sweep is fuzz
	// territory — every byte here is CRC-framed, see ckptio tests).
	check := func(i, bit int) {
		mut := bytes.Clone(orig)
		mut[i] ^= 1 << bit
		err := resumeFrom(mut)
		var ce *ckptio.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("flip byte %d bit %d: got %v, want *CorruptError", i, bit, err)
		}
	}
	for i := 0; i < 64 && i < len(orig); i++ {
		for bit := 0; bit < 8; bit++ {
			check(i, bit)
		}
	}
	stride := (len(orig) - 64) / 24
	if stride < 1 {
		stride = 1
	}
	for k, i := 0, 64; i < len(orig); k, i = k+1, i+stride {
		check(i, k%8)
	}

	// Truncation: every torn prefix on the same stride.
	for n := 0; n < len(orig); n += stride {
		err := resumeFrom(orig[:n])
		var ce *ckptio.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncate to %d bytes: got %v, want *CorruptError", n, err)
		}
	}
}

// TestTrainMLAResumeMatchesUninterrupted extends interruption
// invariance to corpus-backed fleet pretraining: kill the Algorithm 1
// joint loop mid-run, resume in a fresh process (which re-runs the
// deterministic per-DB preparation, then restores the shared modules
// and optimizer from the snapshot), and the final shared parameters,
// every featurizer, and the loss trajectory match the in-memory
// TrainMLA run that was never interrupted — at workers 1 and 4.
func TestTrainMLAResumeMatchesUninterrupted(t *testing.T) {
	dbs := mlaFleet()
	opts := mlaFixtureOpts()
	refShared := NewShared(tinyConfig(), 20)
	refTasks, refStats, err := TrainMLA(refShared, dbs, opts)
	if err != nil {
		t.Fatal(err)
	}

	_, cats, srcs := openMLACorpus(t, writeMLACorpus(t, dbs, opts, corpus.Version))
	for _, workers := range []int{1, 4} {
		for _, after := range []int{1, 3} {
			path := filepath.Join(t.TempDir(), "mla.snap")

			shared1 := NewShared(tinyConfig(), 20)
			wopts := opts
			wopts.Workers = workers
			wopts.Snapshot = SnapshotOptions{Path: path, InterruptAfter: after}
			if _, _, err := TrainMLAStream(shared1, cats, srcs, wopts); !errors.Is(err, ErrInterrupted) {
				t.Fatalf("workers=%d after=%d: interrupted run returned %v, want ErrInterrupted", workers, after, err)
			}

			shared2 := NewShared(tinyConfig(), 20)
			wopts.Snapshot = SnapshotOptions{Path: path, Resume: true}
			tasks, st, err := TrainMLAStream(shared2, cats, srcs, wopts)
			if err != nil {
				t.Fatalf("workers=%d after=%d: resume failed: %v", workers, after, err)
			}
			assertMLAEqual(t, "mla resume", refShared, shared2, refTasks, tasks, refStats, st)
		}
	}
}

// TestTrainJointInterruptChannel: the cooperative-interrupt channel —
// the path cmd/mtmlf-train's SIGTERM handler drives — stops the loop
// at the next minibatch boundary with a resumable snapshot.
func TestTrainJointInterruptChannel(t *testing.T) {
	memCat, examples, _ := streamFixture(t)
	refModel, ref := trainFrom(t, memCat, workload.SliceSource(examples), 1)
	src := workload.SliceSource(examples)
	path := filepath.Join(t.TempDir(), "train.snap")

	stop := make(chan struct{})
	close(stop) // already requested: the loop must stop after its first minibatch
	m1 := freshJointModel(t, memCat)
	_, err := m1.TrainJointStream(src, jointOpts(1, SnapshotOptions{Path: path, Interrupt: stop}))
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupt via channel: got %v, want ErrInterrupted", err)
	}

	m2 := freshJointModel(t, memCat)
	st, err := m2.TrainJointStream(src, jointOpts(1, SnapshotOptions{Path: path, Resume: true}))
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	assertJointEqual(t, "channel interrupt", refModel, m2, ref, st)
}
