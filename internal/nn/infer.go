// No-grad forward ("Infer") variants of every layer, built on ag.Eval.
//
// Each Infer method applies exactly the same kernels in exactly the
// same order as its grad-tracked Forward twin, so outputs are bitwise
// identical (asserted with eps = 0 in infer_test.go) while skipping
// graph construction entirely and drawing every intermediate from the
// evaluator's buffer pool.
package nn

import (
	"math"

	"mtmlf/internal/ag"
	"mtmlf/internal/tensor"
)

// Infer applies the linear layer without building a graph.
func (l *Linear) Infer(e *ag.Eval, x *tensor.Tensor) *tensor.Tensor {
	return e.AddBias(e.MatMul(x, l.W.T), l.B.T)
}

// Infer looks up embedding rows without building a graph.
func (emb *Embedding) Infer(e *ag.Eval, ids []int) *tensor.Tensor {
	return e.Gather(emb.W.T, ids)
}

// Infer applies layer normalization without building a graph.
func (l *LayerNorm) Infer(e *ag.Eval, x *tensor.Tensor) *tensor.Tensor {
	return e.LayerNormRows(x, l.Gamma.T, l.Beta.T, l.Eps)
}

func applyActInfer(e *ag.Eval, a Activation, x *tensor.Tensor) *tensor.Tensor {
	switch a {
	case ActReLU:
		return e.ReLU(x)
	case ActGELU:
		return e.GELU(x)
	case ActTanh:
		return e.Tanh(x)
	default:
		panic("nn: unknown activation")
	}
}

// Infer applies the MLP without building a graph.
func (m *MLP) Infer(e *ag.Eval, x *tensor.Tensor) *tensor.Tensor {
	for i, l := range m.Layers {
		x = l.Infer(e, x)
		if i+1 < len(m.Layers) {
			x = applyActInfer(e, m.Act, x)
		}
	}
	return x
}

// Infer runs full multi-head attention without building a graph,
// mirroring Forward op for op.
func (a *MultiHeadAttention) Infer(e *ag.Eval, q, kv, mask *tensor.Tensor) *tensor.Tensor {
	Q := a.WQ.Infer(e, q)
	K := a.WK.Infer(e, kv)
	V := a.WV.Infer(e, kv)
	dh := a.Dim / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	qhs := make([]*tensor.Tensor, a.Heads)
	khs := make([]*tensor.Tensor, a.Heads)
	vhs := make([]*tensor.Tensor, a.Heads)
	for h := 0; h < a.Heads; h++ {
		qhs[h] = e.SliceCols(Q, h*dh, (h+1)*dh)
		khs[h] = e.SliceCols(K, h*dh, (h+1)*dh)
		vhs[h] = e.SliceCols(V, h*dh, (h+1)*dh)
	}
	scores := e.MatMulTransBBatch(qhs, khs)
	attns := make([]*tensor.Tensor, a.Heads)
	for h, s := range scores {
		s = e.Scale(s, scale)
		if mask != nil {
			s = e.Add(s, mask)
		}
		attns[h] = e.SoftmaxRows(s)
	}
	heads := e.MatMulBatch(attns, vhs)
	return a.WO.Infer(e, e.ConcatCols(heads...))
}

// Infer applies the encoder block without building a graph.
func (l *EncoderLayer) Infer(e *ag.Eval, x, mask *tensor.Tensor) *tensor.Tensor {
	x = l.LN1.Infer(e, e.Add(x, l.Attn.Infer(e, x, x, mask)))
	return l.LN2.Infer(e, e.Add(x, l.FF.Infer(e, x)))
}

// Infer applies the encoder stack without building a graph.
func (enc *Encoder) Infer(e *ag.Eval, x, mask *tensor.Tensor) *tensor.Tensor {
	for _, l := range enc.Layers {
		x = l.Infer(e, x, mask)
	}
	return x
}

// Infer applies the decoder block without building a graph.
func (l *DecoderLayer) Infer(e *ag.Eval, x, mem, causal *tensor.Tensor) *tensor.Tensor {
	x = l.LN1.Infer(e, e.Add(x, l.SelfAttn.Infer(e, x, x, causal)))
	x = l.LN2.Infer(e, e.Add(x, l.CrossAttn.Infer(e, x, mem, nil)))
	return l.LN3.Infer(e, e.Add(x, l.FF.Infer(e, x)))
}

// Infer applies the decoder stack without building a graph.
func (d *Decoder) Infer(e *ag.Eval, x, mem, causal *tensor.Tensor) *tensor.Tensor {
	for _, l := range d.Layers {
		x = l.Infer(e, x, mem, causal)
	}
	return x
}
