package nn

import (
	"math/rand"
	"sync"
	"testing"

	"mtmlf/internal/ag"
	"mtmlf/internal/tensor"
)

// TestInferBitwiseMatchesForward asserts the no-grad Infer paths of
// every layer produce bitwise identical outputs (eps = 0) to the
// grad-tracked Forward paths.
func TestInferBitwiseMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const dim, heads, seq, memLen = 24, 4, 6, 5
	x := tensor.Rand(rng, seq, dim, 1)
	mem := tensor.Rand(rng, memLen, dim, 1)
	xv, memv := ag.Const(x), ag.Const(mem)
	causal := CausalMask(seq)

	e := ag.NewEval()
	defer e.Reset()

	check := func(name string, got *tensor.Tensor, want *ag.Value) {
		t.Helper()
		if !tensor.Equal(want.T, got, 0) {
			t.Fatalf("%s: Infer output differs from Forward", name)
		}
	}

	lin := NewLinear(rng, dim, dim)
	check("Linear", lin.Infer(e, x), lin.Forward(xv))

	mlp := NewMLP(rng, ActGELU, dim, 4*dim, dim)
	check("MLP", mlp.Infer(e, x), mlp.Forward(xv))

	ln := NewLayerNorm(dim)
	check("LayerNorm", ln.Infer(e, x), ln.Forward(xv))

	emb := NewEmbedding(rng, 10, dim)
	check("Embedding", emb.Infer(e, []int{4, 1, 4}), emb.Forward([]int{4, 1, 4}))

	mha := NewMultiHeadAttention(rng, dim, heads)
	check("MHA", mha.Infer(e, x, x, causal), mha.Forward(xv, xv, causal))
	check("MHA-nomask", mha.Infer(e, x, mem, nil), mha.Forward(xv, memv, nil))

	enc := NewEncoder(rng, dim, heads, 2)
	check("Encoder", enc.Infer(e, x, nil), enc.Forward(xv, nil))

	dec := NewDecoder(rng, dim, heads, 2)
	check("Decoder", dec.Infer(e, x, mem, causal), dec.Forward(xv, memv, causal))
}

// TestDecoderForwardStepMatchesFullForward asserts KV-cached
// incremental decoding reproduces the full-prefix forward bitwise: at
// every step t, ForwardStep's output row equals row t of the full
// causal forward over the whole prefix.
func TestDecoderForwardStepMatchesFullForward(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const dim, heads, steps, memLen = 16, 2, 7, 4
	dec := NewDecoder(rng, dim, heads, 2)
	mem := tensor.Rand(rng, memLen, dim, 1)
	xs := tensor.Rand(rng, steps, dim, 1)

	e := ag.NewEval()
	defer e.Reset()
	cache := dec.NewCache(mem, steps)
	for step := 0; step < steps; step++ {
		xNew := e.RowsView(xs, step, step+1)
		got := dec.ForwardStep(e, xNew, cache)
		if cache.Len() != step+1 {
			t.Fatalf("cache length %d after step %d", cache.Len(), step)
		}
		// Full-prefix grad-tracked forward, masked.
		prefix := ag.Const(tensor.FromSlice(xs.Data[:(step+1)*dim], step+1, dim))
		full := dec.Forward(prefix, ag.Const(mem), CausalMask(step+1))
		wantRow := full.T.Row(step)
		gotRow := got.Row(0)
		for j := range wantRow {
			if wantRow[j] != gotRow[j] {
				t.Fatalf("step %d col %d: cached %v != full %v", step, j, gotRow[j], wantRow[j])
			}
		}
	}
}

// TestStepBeamsMatchesPerBeamSteps asserts the batched beam step is
// bitwise identical to stepping each hypothesis alone, and that Clone
// isolates forks.
func TestStepBeamsMatchesPerBeamSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const dim, heads, nb, memLen = 16, 2, 3, 4
	dec := NewDecoder(rng, dim, heads, 1)
	mem := tensor.Rand(rng, memLen, dim, 1)

	e := ag.NewEval()
	defer e.Reset()

	// Shared first step, then fork into nb hypotheses with distinct
	// second inputs.
	x0 := tensor.Rand(rng, 1, dim, 1)
	base := dec.NewCache(mem, 4)
	_ = dec.ForwardStep(e, x0, base)

	x2 := tensor.Rand(rng, nb, dim, 1)
	caches := make([]*DecCache, nb)
	for i := range caches {
		caches[i] = base.Clone()
	}
	batched := dec.StepBeams(e, x2, caches)

	for i := 0; i < nb; i++ {
		solo := base.Clone()
		out := dec.ForwardStep(e, e.RowsView(x2, i, i+1), solo)
		brow := batched.Row(i)
		srow := out.Row(0)
		for j := range srow {
			if brow[j] != srow[j] {
				t.Fatalf("beam %d col %d: batched %v != solo %v", i, j, brow[j], srow[j])
			}
		}
	}

	// base must be untouched by the forked steps.
	if base.Len() != 1 {
		t.Fatalf("base cache mutated: len %d", base.Len())
	}
}

// TestMaskAndPositionalCaches asserts the memoized builders return
// stable shared pointers and correct contents.
func TestMaskAndPositionalCaches(t *testing.T) {
	m1, m2 := CausalMask(9), CausalMask(9)
	if m1 != m2 {
		t.Fatal("CausalMask(9) not memoized")
	}
	if m1.At(0, 5) != -1e9 || m1.At(5, 0) != 0 || m1.At(5, 5) != 0 {
		t.Fatal("CausalMask contents wrong")
	}
	p1, p2 := SinusoidalPositions(12, 8), SinusoidalPositions(12, 8)
	if p1 != p2 {
		t.Fatal("SinusoidalPositions not memoized")
	}
	if !tensor.Equal(p1, sinusoidalPositions(12, 8), 0) {
		t.Fatal("memoized positions differ from direct computation")
	}

	rng := rand.New(rand.NewSource(24))
	tp := NewTreePositionalEncoder(rng, 6, 8)
	path := TreePath{0, 1, 1}
	f1 := tp.RawFeature(path)
	f2 := tp.RawFeature(path)
	if &f1[0] != &f2[0] {
		t.Fatal("tree RawFeature not memoized")
	}
	want := []float64{1, 0, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0}
	for i := range want {
		if f1[i] != want[i] {
			t.Fatalf("RawFeature[%d] = %v, want %v", i, f1[i], want[i])
		}
	}
}

// TestMaskCacheConcurrency hammers the memoized caches from many
// goroutines — the race detector (make race) is the real assertion;
// inference runs concurrently with the parallel trial fan-out, so
// these caches must be race-free.
func TestMaskCacheConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	tp := NewTreePositionalEncoder(rng, 8, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n := 1 + (g+i)%7
				m := CausalMask(n)
				if m.Rows() != n {
					t.Errorf("CausalMask(%d) has %d rows", n, m.Rows())
					return
				}
				pe := SinusoidalPositions(n, 8)
				if pe.Rows() != n {
					t.Errorf("SinusoidalPositions(%d) has %d rows", n, pe.Rows())
					return
				}
				path := make(TreePath, (g+i)%5)
				for d := range path {
					path[d] = (g + i + d) % 2
				}
				if f := tp.RawFeature(path); len(f) != 16 {
					t.Errorf("RawFeature width %d", len(f))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
