// K/V caches and incremental decoding steps.
//
// Full-prefix decoding recomputes the whole decoder over t tokens to
// obtain the t-th output row — O(n²) decoder work per emitted token.
// Because every op in the decoder is row-wise except causal
// self-attention (where row t depends only on rows ≤ t), row t of the
// full forward can instead be computed incrementally from (a) the new
// input row and (b) the keys/values of rows 0..t-1, which never
// change once computed. AttnKV caches those per layer; CrossKV caches
// the cross-attention keys/values of the (static) encoder memory,
// computed once per query and shared by every beam.
//
// Equivalence: the incremental step applies the same kernels in the
// same order as the full forward's row t, and the full forward's
// causal mask zeroes future positions *exactly* (exp(-1e9 + s − max)
// underflows to 0.0 in float64, and the matmul kernels either skip or
// add exact zeros), so cached decoding is BITWISE identical to
// full-prefix recompute — asserted with eps = 0 by the decoder step
// tests here and the beam-search equivalence tests in mtmlf.
package nn

import (
	"math"

	"mtmlf/internal/ag"
	"mtmlf/internal/tensor"
)

// AttnKV is the growable self-attention K/V cache of one attention
// block for one hypothesis: per head, the keys and values of every
// token decoded so far, stored as [n, dh] matrices.
type AttnKV struct {
	dh int
	// K and V hold one [n, dh] matrix per head. Their Data slices are
	// append-grown; headers are reused across appends.
	K, V []*tensor.Tensor
}

// NewAttnKV creates an empty cache for the given head count and head
// width, with capacity for capTokens appends before reallocation.
func NewAttnKV(heads, dh, capTokens int) *AttnKV {
	c := &AttnKV{dh: dh, K: make([]*tensor.Tensor, heads), V: make([]*tensor.Tensor, heads)}
	for h := 0; h < heads; h++ {
		c.K[h] = &tensor.Tensor{Data: make([]float64, 0, capTokens*dh), Shape: []int{0, dh}}
		c.V[h] = &tensor.Tensor{Data: make([]float64, 0, capTokens*dh), Shape: []int{0, dh}}
	}
	return c
}

// Len returns the number of cached tokens.
func (c *AttnKV) Len() int { return c.K[0].Shape[0] }

// Append adds one token's key and value rows (each a dim-wide slice,
// split per head).
func (c *AttnKV) Append(kRow, vRow []float64) {
	for h := range c.K {
		seg := kRow[h*c.dh : (h+1)*c.dh]
		c.K[h].Data = append(c.K[h].Data, seg...)
		c.K[h].Shape[0]++
		seg = vRow[h*c.dh : (h+1)*c.dh]
		c.V[h].Data = append(c.V[h].Data, seg...)
		c.V[h].Shape[0]++
	}
}

// Clone deep-copies the cache — the beam-fork operation. The copy
// keeps the source's capacity so a forked beam does not reallocate on
// its next append.
func (c *AttnKV) Clone() *AttnKV {
	out := &AttnKV{dh: c.dh, K: make([]*tensor.Tensor, len(c.K)), V: make([]*tensor.Tensor, len(c.V))}
	for h := range c.K {
		out.K[h] = cloneKV(c.K[h])
		out.V[h] = cloneKV(c.V[h])
	}
	return out
}

func cloneKV(t *tensor.Tensor) *tensor.Tensor {
	d := make([]float64, len(t.Data), cap(t.Data))
	copy(d, t.Data)
	return &tensor.Tensor{Data: d, Shape: []int{t.Shape[0], t.Shape[1]}}
}

// CrossKV holds the precomputed per-head cross-attention keys and
// values of one attention block over a fixed memory. It is immutable
// after construction and safely shared by every beam of a search.
type CrossKV struct {
	K, V []*tensor.Tensor // per head, [memRows, dh]
}

// NewCrossKV projects the memory through the block's WK/WV once. The
// arithmetic matches the full forward's K = WK(mem), V = WV(mem)
// exactly (same kernels), so cached cross-attention is bitwise
// identical to recomputing the projections every step.
func (a *MultiHeadAttention) NewCrossKV(mem *tensor.Tensor) *CrossKV {
	K := tensor.MatMul(mem, a.WK.W.T)
	tensor.AddBiasInto(K, a.WK.B.T, K)
	V := tensor.MatMul(mem, a.WV.W.T)
	tensor.AddBiasInto(V, a.WV.B.T, V)
	dh := a.Dim / a.Heads
	out := &CrossKV{K: make([]*tensor.Tensor, a.Heads), V: make([]*tensor.Tensor, a.Heads)}
	for h := 0; h < a.Heads; h++ {
		out.K[h] = sliceColsCopy(K, h*dh, (h+1)*dh)
		out.V[h] = sliceColsCopy(V, h*dh, (h+1)*dh)
	}
	return out
}

func sliceColsCopy(t *tensor.Tensor, from, to int) *tensor.Tensor {
	m := t.Rows()
	out := tensor.New(m, to-from)
	for i := 0; i < m; i++ {
		copy(out.Row(i), t.Row(i)[from:to])
	}
	return out
}

// DecCache is the full decoding state of one hypothesis: per decoder
// layer, an owned self-attention K/V cache and a shared cross-attention
// K/V cache over the encoder memory.
type DecCache struct {
	Self  []*AttnKV  // per layer; owned, deep-copied on Clone
	Cross []*CrossKV // per layer; immutable, shared across clones
}

// NewCache precomputes the cross-attention K/V of every layer for the
// given memory and returns an empty decoding cache with room for
// capTokens tokens.
func (d *Decoder) NewCache(mem *tensor.Tensor, capTokens int) *DecCache {
	c := &DecCache{
		Self:  make([]*AttnKV, len(d.Layers)),
		Cross: make([]*CrossKV, len(d.Layers)),
	}
	for i, l := range d.Layers {
		heads := l.SelfAttn.Heads
		c.Self[i] = NewAttnKV(heads, l.SelfAttn.Dim/heads, capTokens)
		c.Cross[i] = l.CrossAttn.NewCrossKV(mem)
	}
	return c
}

// Len returns the number of tokens decoded into the cache.
func (c *DecCache) Len() int {
	if len(c.Self) == 0 {
		return 0
	}
	return c.Self[0].Len()
}

// Clone forks the hypothesis: self caches are deep-copied, cross
// caches are shared.
func (c *DecCache) Clone() *DecCache {
	out := &DecCache{Self: make([]*AttnKV, len(c.Self)), Cross: c.Cross}
	for i, s := range c.Self {
		out.Self[i] = s.Clone()
	}
	return out
}

// stepBeams advances one attention block by one token for a batch of
// hypotheses. x is [nb, dim] (row i = beam i's new input); for
// self-attention (cross == nil) each beam's K/V rows are appended to
// its cache first, so the new token attends to itself like the masked
// full forward does. The nb×heads tiny products run through the
// batched kernels in single pool dispatches — that is what lets a
// k-wide beam use more than one core per step.
func (a *MultiHeadAttention) stepBeams(e *ag.Eval, x *tensor.Tensor, selves []*AttnKV, crosses []*CrossKV) *tensor.Tensor {
	nb := x.Rows()
	dh := a.Dim / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	Q := a.WQ.Infer(e, x)
	if crosses == nil {
		K := a.WK.Infer(e, x)
		V := a.WV.Infer(e, x)
		for i, s := range selves {
			s.Append(K.Row(i), V.Row(i))
		}
	}
	qs := make([]*tensor.Tensor, nb*a.Heads)
	ks := make([]*tensor.Tensor, nb*a.Heads)
	vs := make([]*tensor.Tensor, nb*a.Heads)
	for i := 0; i < nb; i++ {
		for h := 0; h < a.Heads; h++ {
			qs[i*a.Heads+h] = e.RowSeg(Q, i, h*dh, (h+1)*dh)
			if crosses == nil {
				ks[i*a.Heads+h] = selves[i].K[h]
				vs[i*a.Heads+h] = selves[i].V[h]
			} else {
				ks[i*a.Heads+h] = crosses[i].K[h]
				vs[i*a.Heads+h] = crosses[i].V[h]
			}
		}
	}
	scores := e.MatMulTransBBatch(qs, ks)
	attns := make([]*tensor.Tensor, len(scores))
	for i, s := range scores {
		attns[i] = e.SoftmaxRows(e.Scale(s, scale))
	}
	ctxs := e.MatMulBatch(attns, vs)
	out := e.Get(nb, a.Dim)
	for i := 0; i < nb; i++ {
		orow := out.Row(i)
		for h := 0; h < a.Heads; h++ {
			copy(orow[h*dh:(h+1)*dh], ctxs[i*a.Heads+h].Data)
		}
	}
	return a.WO.Infer(e, out)
}

// ForwardStep advances causal self-attention by one token for a
// single hypothesis: xNew is [1, dim], cache holds the previous
// tokens' K/V and is extended in place.
func (a *MultiHeadAttention) ForwardStep(e *ag.Eval, xNew *tensor.Tensor, cache *AttnKV) *tensor.Tensor {
	return a.stepBeams(e, xNew, []*AttnKV{cache}, nil)
}

// CrossStep attends a single new token over precomputed memory K/V.
func (a *MultiHeadAttention) CrossStep(e *ag.Eval, xNew *tensor.Tensor, cross *CrossKV) *tensor.Tensor {
	return a.stepBeams(e, xNew, nil, []*CrossKV{cross})
}

// stepBeams advances the decoder block by one token for a batch of
// hypotheses; see Decoder.StepBeams.
func (l *DecoderLayer) stepBeams(e *ag.Eval, x *tensor.Tensor, selves []*AttnKV, crosses []*CrossKV) *tensor.Tensor {
	x = l.LN1.Infer(e, e.Add(x, l.SelfAttn.stepBeams(e, x, selves, nil)))
	x = l.LN2.Infer(e, e.Add(x, l.CrossAttn.stepBeams(e, x, nil, crosses)))
	return l.LN3.Infer(e, e.Add(x, l.FF.Infer(e, x)))
}

// ForwardStep advances the decoder block by one token for a single
// hypothesis.
func (l *DecoderLayer) ForwardStep(e *ag.Eval, xNew *tensor.Tensor, self *AttnKV, cross *CrossKV) *tensor.Tensor {
	return l.stepBeams(e, xNew, []*AttnKV{self}, []*CrossKV{cross})
}

// StepBeams advances the decoder stack by one token for a batch of
// hypotheses: x is [nb, dim] with row i the new input of caches[i],
// and the result row i is the decoder output for that hypothesis's
// new position — bitwise identical to row (cache.Len()) of a full
// forward over the whole prefix.
func (d *Decoder) StepBeams(e *ag.Eval, x *tensor.Tensor, caches []*DecCache) *tensor.Tensor {
	if x.Rows() != len(caches) {
		panic("nn: Decoder.StepBeams row/cache count mismatch")
	}
	selves := make([]*AttnKV, len(caches))
	crosses := make([]*CrossKV, len(caches))
	for li := range d.Layers {
		for i, c := range caches {
			selves[i] = c.Self[li]
			crosses[i] = c.Cross[li]
		}
		x = d.Layers[li].stepBeams(e, x, selves, crosses)
	}
	return x
}

// ForwardStep advances the decoder stack by one token for a single
// hypothesis.
func (d *Decoder) ForwardStep(e *ag.Eval, xNew *tensor.Tensor, cache *DecCache) *tensor.Tensor {
	return d.StepBeams(e, xNew, []*DecCache{cache})
}
