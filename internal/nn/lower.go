// Precision lowering: the pass that converts trained float64 layers
// into reduced-precision inference replicas running on ag.EvalF32.
//
// Lowering is one-way and serving-only — the float64 model remains the
// single source of truth for training, checkpoints, and the eps=0
// bitwise contracts; a lowered replica is a derived artifact rebuilt
// from it at load/reload time. Within the f32 tier the serial/sharded
// bitwise contract still holds (the f32 kernels guarantee it); across
// tiers agreement with the float64 reference is *calibrated*, not
// bitwise — internal/calib enforces the q-error budgets (DESIGN.md §9).
//
// At PrecisionInt8 every Linear weight is quantized per output channel
// (tensor.QuantizeLinear) while biases, layer norms, embeddings and
// learned tokens stay float32 — they are a rounding error of the
// resident bytes and their dynamic range does not survive 8 bits.
package nn

import (
	"fmt"
	"math"

	"mtmlf/internal/ag"
	"mtmlf/internal/tensor"
)

// Precision selects the numeric tier an inference replica runs at.
// The zero value is the full float64 reference path.
type Precision int

// Supported precision tiers.
const (
	PrecisionF64 Precision = iota
	PrecisionF32
	PrecisionInt8
)

// String returns the flag spelling of p ("f64", "f32", "int8").
func (p Precision) String() string {
	switch p {
	case PrecisionF64:
		return "f64"
	case PrecisionF32:
		return "f32"
	case PrecisionInt8:
		return "int8"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ParsePrecision parses a -precision flag value.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "float64":
		return PrecisionF64, nil
	case "f32", "float32":
		return PrecisionF32, nil
	case "int8":
		return PrecisionInt8, nil
	}
	return 0, fmt.Errorf("nn: unknown precision %q (want f64, f32 or int8)", s)
}

// LinearF32 is a lowered linear layer: either f32 weights (W) or
// int8-quantized weights (W8), exactly one of which is non-nil.
type LinearF32 struct {
	W  *tensor.F32        // [in, out], f32 tier
	W8 *tensor.Int8Matrix // int8 tier (stored transposed [out, in])
	B  *tensor.F32        // [1, out]
}

// LowerLinear lowers a trained linear layer to p (which must not be
// PrecisionF64 — the f64 path serves from the original layer).
func LowerLinear(l *Linear, p Precision) *LinearF32 {
	lf := &LinearF32{B: tensor.F32FromTensor(l.B.T)}
	if p == PrecisionInt8 {
		lf.W8 = tensor.QuantizeLinear(l.W.T)
	} else {
		lf.W = tensor.F32FromTensor(l.W.T)
	}
	return lf
}

// Infer applies the lowered layer.
func (l *LinearF32) Infer(e *ag.EvalF32, x *tensor.F32) *tensor.F32 {
	if l.W8 != nil {
		return e.LinearInt8(x, l.W8, l.B)
	}
	return e.AddBias(e.MatMul(x, l.W), l.B)
}

// Bytes returns the resident weight bytes of the lowered layer.
func (l *LinearF32) Bytes() int {
	n := l.B.Bytes()
	if l.W8 != nil {
		return n + l.W8.Bytes()
	}
	return n + l.W.Bytes()
}

// EmbeddingF32 is a lowered embedding table (always f32: lookup rows
// feed matmuls as activations, not weights).
type EmbeddingF32 struct {
	W *tensor.F32 // [vocab, dim]
}

// LowerEmbedding lowers an embedding table.
func LowerEmbedding(emb *Embedding) *EmbeddingF32 {
	return &EmbeddingF32{W: tensor.F32FromTensor(emb.W.T)}
}

// Infer looks up the rows for ids, in order.
func (emb *EmbeddingF32) Infer(e *ag.EvalF32, ids []int) *tensor.F32 {
	return e.Gather(emb.W, ids)
}

// Bytes returns the resident bytes of the table.
func (emb *EmbeddingF32) Bytes() int { return emb.W.Bytes() }

// LayerNormF32 is a lowered layer norm (always f32 gain/bias).
type LayerNormF32 struct {
	Gamma *tensor.F32
	Beta  *tensor.F32
	Eps   float64
}

// LowerLayerNorm lowers a layer norm.
func LowerLayerNorm(l *LayerNorm) *LayerNormF32 {
	return &LayerNormF32{
		Gamma: tensor.F32FromTensor(l.Gamma.T),
		Beta:  tensor.F32FromTensor(l.Beta.T),
		Eps:   l.Eps,
	}
}

// Infer applies the normalization.
func (l *LayerNormF32) Infer(e *ag.EvalF32, x *tensor.F32) *tensor.F32 {
	return e.LayerNormRows(x, l.Gamma, l.Beta, l.Eps)
}

// Bytes returns the resident bytes of the gain/bias rows.
func (l *LayerNormF32) Bytes() int { return l.Gamma.Bytes() + l.Beta.Bytes() }

// MLPF32 is a lowered MLP.
type MLPF32 struct {
	Layers []*LinearF32
	Act    Activation
}

// LowerMLP lowers an MLP to p.
func LowerMLP(m *MLP, p Precision) *MLPF32 {
	lf := &MLPF32{Act: m.Act}
	for _, l := range m.Layers {
		lf.Layers = append(lf.Layers, LowerLinear(l, p))
	}
	return lf
}

func applyActInferF32(e *ag.EvalF32, a Activation, x *tensor.F32) *tensor.F32 {
	switch a {
	case ActReLU:
		return e.ReLU(x)
	case ActGELU:
		return e.GELU(x)
	case ActTanh:
		return e.Tanh(x)
	default:
		panic("nn: unknown activation")
	}
}

// Infer applies the lowered MLP.
func (m *MLPF32) Infer(e *ag.EvalF32, x *tensor.F32) *tensor.F32 {
	for i, l := range m.Layers {
		x = l.Infer(e, x)
		if i+1 < len(m.Layers) {
			x = applyActInferF32(e, m.Act, x)
		}
	}
	return x
}

// Bytes returns the resident bytes of the stack.
func (m *MLPF32) Bytes() int {
	n := 0
	for _, l := range m.Layers {
		n += l.Bytes()
	}
	return n
}

// MultiHeadAttentionF32 is a lowered attention block.
type MultiHeadAttentionF32 struct {
	WQ, WK, WV, WO *LinearF32
	Heads          int
	Dim            int
}

// LowerMultiHeadAttention lowers an attention block to p.
func LowerMultiHeadAttention(a *MultiHeadAttention, p Precision) *MultiHeadAttentionF32 {
	return &MultiHeadAttentionF32{
		WQ:    LowerLinear(a.WQ, p),
		WK:    LowerLinear(a.WK, p),
		WV:    LowerLinear(a.WV, p),
		WO:    LowerLinear(a.WO, p),
		Heads: a.Heads,
		Dim:   a.Dim,
	}
}

// Infer runs multi-head attention mirroring the f64 Infer op for op.
// mask, if non-nil, is a [lq, lk] additive mask.
func (a *MultiHeadAttentionF32) Infer(e *ag.EvalF32, q, kv, mask *tensor.F32) *tensor.F32 {
	Q := a.WQ.Infer(e, q)
	K := a.WK.Infer(e, kv)
	V := a.WV.Infer(e, kv)
	dh := a.Dim / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	qhs := make([]*tensor.F32, a.Heads)
	khs := make([]*tensor.F32, a.Heads)
	vhs := make([]*tensor.F32, a.Heads)
	for h := 0; h < a.Heads; h++ {
		qhs[h] = e.SliceCols(Q, h*dh, (h+1)*dh)
		khs[h] = e.SliceCols(K, h*dh, (h+1)*dh)
		vhs[h] = e.SliceCols(V, h*dh, (h+1)*dh)
	}
	scores := e.MatMulTransBBatch(qhs, khs)
	attns := make([]*tensor.F32, a.Heads)
	for h, s := range scores {
		s = e.Scale(s, scale)
		if mask != nil {
			s = e.Add(s, mask)
		}
		attns[h] = e.SoftmaxRows(s)
	}
	heads := e.MatMulBatch(attns, vhs)
	return a.WO.Infer(e, e.ConcatCols(heads...))
}

// Bytes returns the resident bytes of the four projections.
func (a *MultiHeadAttentionF32) Bytes() int {
	return a.WQ.Bytes() + a.WK.Bytes() + a.WV.Bytes() + a.WO.Bytes()
}

// EncoderLayerF32 is a lowered post-norm encoder block.
type EncoderLayerF32 struct {
	Attn *MultiHeadAttentionF32
	FF   *MLPF32
	LN1  *LayerNormF32
	LN2  *LayerNormF32
}

// LowerEncoderLayer lowers one encoder block to p.
func LowerEncoderLayer(l *EncoderLayer, p Precision) *EncoderLayerF32 {
	return &EncoderLayerF32{
		Attn: LowerMultiHeadAttention(l.Attn, p),
		FF:   LowerMLP(l.FF, p),
		LN1:  LowerLayerNorm(l.LN1),
		LN2:  LowerLayerNorm(l.LN2),
	}
}

// Infer applies the block.
func (l *EncoderLayerF32) Infer(e *ag.EvalF32, x, mask *tensor.F32) *tensor.F32 {
	x = l.LN1.Infer(e, e.Add(x, l.Attn.Infer(e, x, x, mask)))
	return l.LN2.Infer(e, e.Add(x, l.FF.Infer(e, x)))
}

// Bytes returns the resident bytes of the block.
func (l *EncoderLayerF32) Bytes() int {
	return l.Attn.Bytes() + l.FF.Bytes() + l.LN1.Bytes() + l.LN2.Bytes()
}

// EncoderF32 is a lowered encoder stack.
type EncoderF32 struct {
	Layers []*EncoderLayerF32
}

// LowerEncoder lowers an encoder stack to p.
func LowerEncoder(enc *Encoder, p Precision) *EncoderF32 {
	out := &EncoderF32{}
	for _, l := range enc.Layers {
		out.Layers = append(out.Layers, LowerEncoderLayer(l, p))
	}
	return out
}

// Infer applies the stack.
func (enc *EncoderF32) Infer(e *ag.EvalF32, x, mask *tensor.F32) *tensor.F32 {
	for _, l := range enc.Layers {
		x = l.Infer(e, x, mask)
	}
	return x
}

// Bytes returns the resident bytes of the stack.
func (enc *EncoderF32) Bytes() int {
	n := 0
	for _, l := range enc.Layers {
		n += l.Bytes()
	}
	return n
}

// TreePositionalEncoderF32 is a lowered tree positional encoder. It
// keeps a reference to its source for the memoized RawFeature rows
// (the raw 0/1 features are exact in every tier).
type TreePositionalEncoderF32 struct {
	MaxDepth int
	Proj     *LinearF32
	src      *TreePositionalEncoder
}

// LowerTreePositionalEncoder lowers the tree positional encoder to p.
func LowerTreePositionalEncoder(t *TreePositionalEncoder, p Precision) *TreePositionalEncoderF32 {
	return &TreePositionalEncoderF32{MaxDepth: t.MaxDepth, Proj: LowerLinear(t.Proj, p), src: t}
}

// Infer encodes a batch of paths into a [len(paths), dim] matrix.
func (t *TreePositionalEncoderF32) Infer(e *ag.EvalF32, paths []TreePath) *tensor.F32 {
	raw := e.Get(len(paths), 2*t.MaxDepth)
	for i, p := range paths {
		row := raw.Row(i)
		for j, v := range t.src.RawFeature(p) {
			row[j] = float32(v)
		}
	}
	return t.Proj.Infer(e, raw)
}

// Bytes returns the resident bytes of the projection.
func (t *TreePositionalEncoderF32) Bytes() int { return t.Proj.Bytes() }
