package nn

import (
	"math"
	"math/rand"
	"testing"

	"mtmlf/internal/ag"
	"mtmlf/internal/tensor"
)

// relErr is |got-want| / max(1e-6, |want|).
func relErr(got float32, want float64) float64 {
	d := math.Abs(float64(got) - want)
	m := math.Abs(want)
	if m < 1e-6 {
		m = 1e-6
	}
	return d / m
}

func maxRelErr(t *testing.T, name string, got *tensor.F32, want *tensor.Tensor, tol float64) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: shape mismatch %v vs %v", name, got.Shape, want.Shape)
	}
	worst := 0.0
	for i := range want.Data {
		if e := relErr(got.Data[i], want.Data[i]); e > worst {
			worst = e
		}
	}
	if worst > tol {
		t.Fatalf("%s: max relative error %.3g exceeds %.3g", name, worst, tol)
	}
}

// TestLowerRoundTripF32 pins the f64 -> f32 -> f64 weight round trip
// per layer type: every lowered weight re-raised to float64 is within
// one float32 ulp of the original (relative 2^-24).
func TestLowerRoundTripF32(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const ulp32 = 1.0 / (1 << 24)

	checkTensor := func(name string, lowered *tensor.F32, orig *tensor.Tensor) {
		t.Helper()
		back := lowered.ToTensor()
		for i := range orig.Data {
			if d := math.Abs(back.Data[i] - orig.Data[i]); d > math.Abs(orig.Data[i])*ulp32 {
				t.Fatalf("%s element %d: round-trip error %g exceeds one f32 ulp", name, i, d)
			}
		}
	}

	lin := NewLinear(rng, 24, 16)
	lf := LowerLinear(lin, PrecisionF32)
	checkTensor("Linear.W", lf.W, lin.W.T)
	checkTensor("Linear.B", lf.B, lin.B.T)

	ln := NewLayerNorm(16)
	lnf := LowerLayerNorm(ln)
	checkTensor("LayerNorm.Gamma", lnf.Gamma, ln.Gamma.T)
	checkTensor("LayerNorm.Beta", lnf.Beta, ln.Beta.T)
	if lnf.Eps != ln.Eps {
		t.Fatal("LayerNorm.Eps not preserved")
	}

	emb := NewEmbedding(rng, 12, 16)
	checkTensor("Embedding.W", LowerEmbedding(emb).W, emb.W.T)

	mlp := NewMLP(rng, ActGELU, 16, 32, 16)
	mf := LowerMLP(mlp, PrecisionF32)
	for i, l := range mf.Layers {
		checkTensor("MLP layer W", l.W, mlp.Layers[i].W.T)
	}
}

// TestLowerInt8WeightBound is the layer-level int8 property test: the
// dequantized weight of a lowered Linear never deviates from the
// original by more than scale/2 per element, and the resident bytes
// are under half the float64 layer.
func TestLowerInt8WeightBound(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	lin := NewLinear(rng, 48, 32)
	lf := LowerLinear(lin, PrecisionInt8)
	if lf.W != nil || lf.W8 == nil {
		t.Fatal("int8 lowering kept f32 weights")
	}
	deq := lf.W8.Dequantize()
	for j := 0; j < 32; j++ {
		scale := float64(lf.W8.Scales[j])
		for l := 0; l < 48; l++ {
			if d := math.Abs(lin.W.T.At(l, j) - deq.At(l, j)); d > scale/2+scale*1e-6 {
				t.Fatalf("w[%d,%d]: error %g > scale/2 %g", l, j, d, scale/2)
			}
		}
	}
	f64Bytes := 8 * (lin.W.T.Size() + lin.B.T.Size())
	if lf.Bytes()*2 > f64Bytes {
		t.Fatalf("int8 layer bytes %d not under half of f64 %d", lf.Bytes(), f64Bytes)
	}
}

// TestLoweredLayersTrackFloat64 runs every lowered layer type against
// its f64 twin on the same inputs and bounds the relative output error
// — the per-layer calibration contract the end-to-end q-error budgets
// build on.
func TestLoweredLayersTrackFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	x64 := tensor.Rand(rng, 7, 16, 1)
	x32 := tensor.F32FromTensor(x64)

	e64 := ag.NewEval()
	defer e64.Reset()
	e32 := ag.NewEvalF32()
	defer e32.Reset()

	lin := NewLinear(rng, 16, 16)
	maxRelErr(t, "Linear/f32", LowerLinear(lin, PrecisionF32).Infer(e32, x32), lin.Infer(e64, x64), 1e-4)

	ln := NewLayerNorm(16)
	maxRelErr(t, "LayerNorm/f32", LowerLayerNorm(ln).Infer(e32, x32), ln.Infer(e64, x64), 1e-3)

	emb := NewEmbedding(rng, 12, 16)
	ids := []int{3, 0, 11}
	maxRelErr(t, "Embedding/f32", LowerEmbedding(emb).Infer(e32, ids), emb.Infer(e64, ids), 1e-6)

	mlp := NewMLP(rng, ActGELU, 16, 32, 16)
	maxRelErr(t, "MLP/f32", LowerMLP(mlp, PrecisionF32).Infer(e32, x32), mlp.Infer(e64, x64), 1e-3)

	mha := NewMultiHeadAttention(rng, 16, 2)
	maxRelErr(t, "MHA/f32", LowerMultiHeadAttention(mha, PrecisionF32).Infer(e32, x32, x32, nil),
		mha.Infer(e64, x64, x64, nil), 1e-3)

	encl := NewEncoderLayer(rng, 16, 2)
	maxRelErr(t, "EncoderLayer/f32", LowerEncoderLayer(encl, PrecisionF32).Infer(e32, x32, nil),
		encl.Infer(e64, x64, nil), 1e-2)

	enc := NewEncoder(rng, 16, 2, 2)
	maxRelErr(t, "Encoder/f32", LowerEncoder(enc, PrecisionF32).Infer(e32, x32, nil),
		enc.Infer(e64, x64, nil), 1e-2)

	tp := NewTreePositionalEncoder(rng, 6, 16)
	paths := []TreePath{{}, {0}, {0, 1}, {1, 1, 0}}
	maxRelErr(t, "TreePos/f32", LowerTreePositionalEncoder(tp, PrecisionF32).Infer(e32, paths),
		tp.Infer(e64, paths), 1e-4)
}

// TestLoweredEncoderInt8TracksFloat64 bounds the int8 tier at the
// encoder level with the looser absolute budget calibration assigns it.
func TestLoweredEncoderInt8TracksFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	x64 := tensor.Rand(rng, 7, 16, 1)
	x32 := tensor.F32FromTensor(x64)

	e64 := ag.NewEval()
	defer e64.Reset()
	e32 := ag.NewEvalF32()
	defer e32.Reset()

	enc := NewEncoder(rng, 16, 2, 2)
	got := LowerEncoder(enc, PrecisionInt8).Infer(e32, x32, nil)
	want := enc.Infer(e64, x64, nil)
	for i := range want.Data {
		if d := math.Abs(float64(got.Data[i]) - want.Data[i]); d > 0.25 {
			t.Fatalf("int8 encoder element %d: |%v - %v| = %g", i, got.Data[i], want.Data[i], d)
		}
	}
}

// TestParsePrecision covers the flag surface.
func TestParsePrecision(t *testing.T) {
	for s, want := range map[string]Precision{"f64": PrecisionF64, "f32": PrecisionF32, "int8": PrecisionInt8} {
		got, err := ParsePrecision(s)
		if err != nil || got != want {
			t.Fatalf("ParsePrecision(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("Precision(%v).String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParsePrecision("bf16"); err == nil {
		t.Fatal("ParsePrecision accepted unknown tier")
	}
}
