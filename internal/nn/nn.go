// Package nn provides the neural-network layers the MTMLF models are
// assembled from: linear layers, embeddings, layer normalization, MLPs,
// multi-head attention, transformer encoder/decoder stacks, positional
// encodings (including the tree positional encoding used by the paper's
// plan serializer), the Adam optimizer, and parameter serialization.
//
// Every layer satisfies Module, which exposes its trainable parameters
// in a deterministic order so optimizers and the gob serializer can
// walk them.
package nn

import (
	"math/rand"

	"mtmlf/internal/ag"
	"mtmlf/internal/tensor"
)

// Module is anything with trainable parameters.
type Module interface {
	// Params returns the trainable parameters in a stable order.
	Params() []*ag.Value
}

// ParamCount returns the total number of scalar parameters in m.
func ParamCount(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.T.Size()
	}
	return n
}

// CollectParams concatenates the parameters of several modules.
func CollectParams(ms ...Module) []*ag.Value {
	var out []*ag.Value
	for _, m := range ms {
		out = append(out, m.Params()...)
	}
	return out
}

// Linear is a fully connected layer y = x W + b.
type Linear struct {
	W *ag.Value // [in, out]
	B *ag.Value // [1, out]
}

// NewLinear creates a Glorot-initialized linear layer.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	return &Linear{
		W: ag.Param(tensor.Xavier(rng, in, out)),
		B: ag.Param(tensor.New(1, out)),
	}
}

// Forward applies the layer to x [n, in] producing [n, out].
func (l *Linear) Forward(x *ag.Value) *ag.Value {
	return ag.AddBias(ag.MatMul(x, l.W), l.B)
}

// Params implements Module.
func (l *Linear) Params() []*ag.Value { return []*ag.Value{l.W, l.B} }

// Embedding maps integer ids to learned dense rows.
type Embedding struct {
	W *ag.Value // [vocab, dim]
}

// NewEmbedding creates an embedding table with N(0, 0.02) rows, the
// conventional transformer initialization.
func NewEmbedding(rng *rand.Rand, vocab, dim int) *Embedding {
	return &Embedding{W: ag.Param(tensor.RandNorm(rng, vocab, dim, 0.02))}
}

// Forward looks up the rows for ids, in order.
func (e *Embedding) Forward(ids []int) *ag.Value { return ag.Gather(e.W, ids) }

// Params implements Module.
func (e *Embedding) Params() []*ag.Value { return []*ag.Value{e.W} }

// LayerNorm normalizes each row and applies learned gain/bias.
type LayerNorm struct {
	Gamma *ag.Value
	Beta  *ag.Value
	Eps   float64
}

// NewLayerNorm creates an identity-initialized layer norm of width dim.
func NewLayerNorm(dim int) *LayerNorm {
	return &LayerNorm{
		Gamma: ag.Param(tensor.Full(1, 1, dim)),
		Beta:  ag.Param(tensor.New(1, dim)),
		Eps:   1e-5,
	}
}

// Forward applies the normalization.
func (l *LayerNorm) Forward(x *ag.Value) *ag.Value {
	return ag.LayerNormRows(x, l.Gamma, l.Beta, l.Eps)
}

// Params implements Module.
func (l *LayerNorm) Params() []*ag.Value { return []*ag.Value{l.Gamma, l.Beta} }

// Activation selects the nonlinearity used by MLP hidden layers.
type Activation int

// Supported activations.
const (
	ActReLU Activation = iota
	ActGELU
	ActTanh
)

func applyAct(a Activation, x *ag.Value) *ag.Value {
	switch a {
	case ActReLU:
		return ag.ReLU(x)
	case ActGELU:
		return ag.GELU(x)
	case ActTanh:
		return ag.Tanh(x)
	default:
		panic("nn: unknown activation")
	}
}

// MLP is a stack of linear layers with a nonlinearity between them
// (none after the last). The paper's M_CardEst and M_CostEst heads are
// two-layer MLPs of this type.
type MLP struct {
	Layers []*Linear
	Act    Activation
}

// NewMLP builds an MLP with the given layer widths, e.g. dims =
// [in, hidden, out] builds a two-layer network.
func NewMLP(rng *rand.Rand, act Activation, dims ...int) *MLP {
	if len(dims) < 2 {
		panic("nn: MLP needs at least [in, out] dims")
	}
	m := &MLP{Act: act}
	for i := 0; i+1 < len(dims); i++ {
		m.Layers = append(m.Layers, NewLinear(rng, dims[i], dims[i+1]))
	}
	return m
}

// Forward applies the stack.
func (m *MLP) Forward(x *ag.Value) *ag.Value {
	for i, l := range m.Layers {
		x = l.Forward(x)
		if i+1 < len(m.Layers) {
			x = applyAct(m.Act, x)
		}
	}
	return x
}

// Params implements Module.
func (m *MLP) Params() []*ag.Value {
	var out []*ag.Value
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Dropout randomly zeroes entries during training (inverted dropout).
// With Train == false it is the identity, so inference is deterministic.
type Dropout struct {
	P     float64
	Train bool
	rng   *rand.Rand
}

// NewDropout creates a dropout layer with keep probability 1-p.
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Forward applies dropout when training.
func (d *Dropout) Forward(x *ag.Value) *ag.Value {
	if !d.Train || d.P <= 0 {
		return x
	}
	mask := tensor.New(x.T.Shape...)
	scale := 1 / (1 - d.P)
	for i := range mask.Data {
		if d.rng.Float64() >= d.P {
			mask.Data[i] = scale
		}
	}
	return ag.Mul(x, ag.Const(mask))
}

// Params implements Module (dropout has none).
func (d *Dropout) Params() []*ag.Value { return nil }
