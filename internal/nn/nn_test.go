package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mtmlf/internal/ag"
	"mtmlf/internal/tensor"
)

func TestLinearShapesAndGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 4, 3)
	x := ag.Const(tensor.Rand(rng, 5, 4, 1))
	y := l.Forward(x)
	if y.Rows() != 5 || y.Cols() != 3 {
		t.Fatalf("linear output shape %v", y.T.Shape)
	}
	rel := ag.GradCheck(l.Params(), func() *ag.Value {
		out := l.Forward(x)
		return ag.SumAll(ag.Mul(out, out))
	}, 1e-6)
	if rel > 1e-5 {
		t.Fatalf("linear gradcheck rel err %g", rel)
	}
}

func TestEmbeddingLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEmbedding(rng, 10, 6)
	out := e.Forward([]int{3, 3, 7})
	if out.Rows() != 3 || out.Cols() != 6 {
		t.Fatalf("embedding shape %v", out.T.Shape)
	}
	for j := 0; j < 6; j++ {
		if out.T.At(0, j) != out.T.At(1, j) {
			t.Fatal("same id must produce same row")
		}
	}
}

func TestMLPDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, ActGELU, 4, 8, 8, 2)
	if len(m.Layers) != 3 {
		t.Fatalf("want 3 layers, got %d", len(m.Layers))
	}
	x := ag.Const(tensor.Rand(rng, 2, 4, 1))
	if y := m.Forward(x); y.Cols() != 2 {
		t.Fatalf("mlp out shape %v", y.T.Shape)
	}
}

func TestMultiHeadAttentionGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewMultiHeadAttention(rng, 8, 2)
	x := ag.Const(tensor.Rand(rng, 4, 8, 1))
	rel := ag.GradCheck(a.Params(), func() *ag.Value {
		out := a.Forward(x, x, nil)
		return ag.SumAll(ag.Mul(out, out))
	}, 1e-6)
	if rel > 2e-5 {
		t.Fatalf("attention gradcheck rel err %g", rel)
	}
}

func TestAttentionMaskBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewMultiHeadAttention(rng, 8, 2)
	// With a causal mask, output at position 0 must not depend on
	// later positions.
	x1 := tensor.Rand(rng, 3, 8, 1)
	x2 := x1.Clone()
	for j := 0; j < 8; j++ {
		x2.Set(2, j, x2.At(2, j)+5) // perturb the last position only
	}
	mask := CausalMask(3)
	o1 := a.Forward(ag.Const(x1), ag.Const(x1), mask)
	o2 := a.Forward(ag.Const(x2), ag.Const(x2), mask)
	for j := 0; j < 8; j++ {
		if math.Abs(o1.T.At(0, j)-o2.T.At(0, j)) > 1e-9 {
			t.Fatal("causal mask leaked future information into position 0")
		}
	}
}

func TestEncoderLayerGradAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewEncoderLayer(rng, 8, 2)
	x := ag.Const(tensor.Rand(rng, 3, 8, 1))
	y := l.Forward(x, nil)
	if y.Rows() != 3 || y.Cols() != 8 {
		t.Fatalf("encoder layer shape %v", y.T.Shape)
	}
	// Grad-check a subset (full check is slow): first attention weight
	// and the FF output layer.
	sub := []*ag.Value{l.Attn.WQ.W, l.FF.Layers[1].W, l.LN1.Gamma}
	rel := ag.GradCheck(sub, func() *ag.Value {
		out := l.Forward(x, nil)
		return ag.SumAll(ag.Mul(out, out))
	}, 1e-6)
	if rel > 5e-5 {
		t.Fatalf("encoder gradcheck rel err %g", rel)
	}
}

func TestDecoderLayerGradAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewDecoderLayer(rng, 8, 2)
	x := ag.Const(tensor.Rand(rng, 3, 8, 1))
	mem := ag.Const(tensor.Rand(rng, 5, 8, 1))
	y := l.Forward(x, mem, CausalMask(3))
	if y.Rows() != 3 || y.Cols() != 8 {
		t.Fatalf("decoder layer shape %v", y.T.Shape)
	}
	sub := []*ag.Value{l.SelfAttn.WQ.W, l.CrossAttn.WK.W, l.FF.Layers[0].W}
	rel := ag.GradCheck(sub, func() *ag.Value {
		out := l.Forward(x, mem, CausalMask(3))
		return ag.SumAll(ag.Mul(out, out))
	}, 1e-6)
	if rel > 5e-5 {
		t.Fatalf("decoder gradcheck rel err %g", rel)
	}
}

func TestEncoderStack(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e := NewEncoder(rng, 8, 2, 3)
	if len(e.Layers) != 3 {
		t.Fatal("wrong depth")
	}
	x := ag.Const(tensor.Rand(rng, 4, 8, 1))
	if y := e.Forward(x, nil); y.Rows() != 4 {
		t.Fatal("stack changed seq length")
	}
}

func TestCausalMaskPattern(t *testing.T) {
	m := CausalMask(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if j > i {
				want = -1e9
			}
			if m.At(i, j) != want {
				t.Fatalf("mask[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestSinusoidalPositionsDistinct(t *testing.T) {
	pe := SinusoidalPositions(16, 12)
	if pe.Rows() != 16 || pe.Cols() != 12 {
		t.Fatal("shape wrong")
	}
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			if tensor.Equal(tensor.Vector(pe.Row(i)), tensor.Vector(pe.Row(j)), 1e-9) {
				t.Fatalf("positions %d and %d identical", i, j)
			}
		}
	}
}

func TestTreePositionalEncoderDistinguishesPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	enc := NewTreePositionalEncoder(rng, 4, 8)
	paths := []TreePath{{}, {0}, {1}, {0, 0}, {0, 1}, {1, 0}, {1, 1}}
	out := enc.Forward(paths)
	if out.Rows() != len(paths) {
		t.Fatal("wrong row count")
	}
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if tensor.Equal(tensor.Vector(out.T.Row(i)), tensor.Vector(out.T.Row(j)), 1e-9) {
				t.Fatalf("paths %v and %v encode identically", paths[i], paths[j])
			}
		}
	}
	// Raw features: root is all zeros, left child sets slot 0.
	root := enc.RawFeature(TreePath{})
	for _, v := range root {
		if v != 0 {
			t.Fatal("root raw feature must be zero")
		}
	}
	left := enc.RawFeature(TreePath{0})
	if left[0] != 1 || left[1] != 0 {
		t.Fatalf("left-child raw feature wrong: %v", left)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ||w - c||^2; Adam should converge near c.
	rng := rand.New(rand.NewSource(10))
	w := ag.Param(tensor.Rand(rng, 1, 4, 1))
	c := ag.Const(tensor.FromSlice([]float64{1, -2, 3, 0.5}, 1, 4))
	opt := NewAdam([]*ag.Value{w}, 0.05)
	for i := 0; i < 400; i++ {
		opt.ZeroGrad()
		loss := ag.MSE(w, c)
		loss.Backward()
		opt.Step()
	}
	final := ag.MSE(w, c).Item()
	if final > 1e-3 {
		t.Fatalf("Adam failed to converge: loss %g", final)
	}
}

func TestAdamGradClipping(t *testing.T) {
	w := ag.Param(tensor.FromSlice([]float64{0}, 1, 1))
	opt := NewAdam([]*ag.Value{w}, 0.1)
	opt.ClipNorm = 1.0
	opt.ZeroGrad()
	loss := ag.Scale(w, 1e6) // gradient 1e6
	ag.SumAll(loss).Backward()
	if n := opt.GradNorm(); n < 1e5 {
		t.Fatalf("expected huge grad norm, got %g", n)
	}
	opt.Step()
	// After one clipped Adam step the parameter moves by about lr.
	if math.Abs(w.T.Data[0]) > 0.2 {
		t.Fatalf("clipping failed, param jumped to %g", w.T.Data[0])
	}
}

func TestSGDStep(t *testing.T) {
	w := ag.Param(tensor.FromSlice([]float64{2}, 1, 1))
	opt := NewSGD([]*ag.Value{w}, 0.5)
	opt.ZeroGrad()
	ag.SumAll(ag.Mul(w, w)).Backward() // d/dw w^2 = 2w = 4
	opt.Step()
	if math.Abs(w.T.Data[0]-0) > 1e-12 {
		t.Fatalf("sgd step wrong: %v", w.T.Data[0])
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := NewEncoder(rng, 8, 2, 2)
	dst := NewEncoder(rand.New(rand.NewSource(99)), 8, 2, 2)
	var buf bytes.Buffer
	if err := Save(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := Load(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	x := ag.Const(tensor.Rand(rng, 3, 8, 1))
	y1 := src.Forward(x, nil)
	y2 := dst.Forward(x, nil)
	if !tensor.Equal(y1.T, y2.T, 1e-12) {
		t.Fatal("loaded model differs from saved model")
	}
}

func TestLoadShapeMismatchFails(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	src := NewLinear(rng, 4, 4)
	dst := NewLinear(rng, 4, 5)
	var buf bytes.Buffer
	if err := Save(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := Load(&buf, dst.Params()); err == nil {
		t.Fatal("expected error on shape mismatch")
	}
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := NewLinear(rng, 3, 3)
	b := NewLinear(rand.New(rand.NewSource(77)), 3, 3)
	if err := CopyParams(b.Params(), a.Params()); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(a.W.T, b.W.T, 0) {
		t.Fatal("CopyParams did not copy")
	}
}

func TestDropoutModes(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := NewDropout(rng, 0.5)
	x := ag.Const(tensor.Full(1, 10, 10))
	if y := d.Forward(x); y != x {
		t.Fatal("eval-mode dropout must be identity")
	}
	d.Train = true
	y := d.Forward(x)
	zeros := 0
	for _, v := range y.T.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("kept value must be scaled to 2, got %v", v)
		}
	}
	if zeros == 0 || zeros == 100 {
		t.Fatalf("dropout zeroed %d of 100, implausible", zeros)
	}
}

func TestParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	l := NewLinear(rng, 4, 3)
	if ParamCount(l) != 4*3+3 {
		t.Fatalf("ParamCount = %d", ParamCount(l))
	}
}

// End-to-end: a tiny encoder + head can fit a simple sequence
// classification rule, proving the whole substrate trains.
func TestEncoderLearnsToyTask(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	dim := 8
	emb := NewEmbedding(rng, 4, dim)
	enc := NewEncoder(rng, dim, 2, 1)
	head := NewLinear(rng, dim, 2)
	params := CollectParams(emb, enc, head)
	opt := NewAdam(params, 5e-3)

	// Task: label = whether token 3 appears anywhere in the sequence.
	sample := func() ([]int, int) {
		seq := make([]int, 5)
		label := 0
		for i := range seq {
			seq[i] = rng.Intn(4)
			if seq[i] == 3 {
				label = 1
			}
		}
		return seq, label
	}
	for step := 0; step < 300; step++ {
		seq, label := sample()
		opt.ZeroGrad()
		h := enc.Forward(emb.Forward(seq), nil)
		logits := head.Forward(ag.MeanRows(h))
		loss := ag.CrossEntropyRows(logits, []int{label})
		loss.Backward()
		opt.Step()
	}
	correct := 0
	for i := 0; i < 100; i++ {
		seq, label := sample()
		h := enc.Forward(emb.Forward(seq), nil)
		logits := head.Forward(ag.MeanRows(h))
		pred := 0
		if logits.T.At(0, 1) > logits.T.At(0, 0) {
			pred = 1
		}
		if pred == label {
			correct++
		}
	}
	if correct < 85 {
		t.Fatalf("encoder failed to learn toy task: %d/100 correct", correct)
	}
}
