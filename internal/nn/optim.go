package nn

import (
	"fmt"
	"math"

	"mtmlf/internal/ag"
	"mtmlf/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba), the optimizer the
// paper trains MTMLF-QO with (learning rate 1e-4 in Section 6.1).
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	// ClipNorm, when > 0, rescales the global gradient norm to at most
	// this value before each step, which keeps small-batch transformer
	// training stable.
	ClipNorm float64

	params []*ag.Value
	m, v   []*tensor.Tensor
	t      int
}

// NewAdam creates an optimizer over params with standard betas.
func NewAdam(params []*ag.Value, lr float64) *Adam {
	a := &Adam{
		LR:       lr,
		Beta1:    0.9,
		Beta2:    0.999,
		Eps:      1e-8,
		ClipNorm: 1.0,
		params:   params,
	}
	for _, p := range params {
		a.m = append(a.m, tensor.New(p.T.Shape...))
		a.v = append(a.v, tensor.New(p.T.Shape...))
	}
	return a
}

// ZeroGrad clears accumulated gradients; call before each backward pass.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.Grad = nil
	}
}

// GradNorm returns the global L2 norm of all current gradients.
func (a *Adam) GradNorm() float64 {
	var s float64
	for _, p := range a.params {
		if p.Grad == nil {
			continue
		}
		for _, g := range p.Grad.Data {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// Step applies one Adam update using the gradients accumulated on the
// parameters. Parameters with nil gradients are skipped.
func (a *Adam) Step() {
	a.t++
	scale := 1.0
	if a.ClipNorm > 0 {
		if n := a.GradNorm(); n > a.ClipNorm {
			scale = a.ClipNorm / (n + 1e-12)
		}
	}
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		for j := range p.T.Data {
			g := p.Grad.Data[j] * scale
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mhat := m.Data[j] / b1c
			vhat := v.Data[j] / b2c
			p.T.Data[j] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// StepAveraged reduces per-example gradient buffers (slots, in slot
// order) into the parameters' Grad fields scaled by scale — typically
// 1/batch — and applies one Adam update. It is the reduction half of
// data-parallel minibatch training: because ag.ReduceGrads sums in
// slot order, the update is bitwise identical no matter how many
// workers filled the slots.
func (a *Adam) StepAveraged(slots []ag.Grads, scale float64) {
	a.ZeroGrad()
	ag.ReduceGrads(a.params, slots, scale)
	a.Step()
}

// AdamState is the optimizer's complete mutable state — the step
// count and both moment accumulators — in parameter order. Training
// snapshots persist it alongside the parameters: resuming Adam
// without m/v/t restarts the bias correction and moment history, so
// the post-resume trajectory would diverge from the uninterrupted run
// on the very first step.
type AdamState struct {
	T    int
	M, V [][]float64
}

// State deep-copies the optimizer state (the snapshot must not alias
// tensors the next Step mutates).
func (a *Adam) State() AdamState {
	s := AdamState{T: a.t, M: make([][]float64, len(a.m)), V: make([][]float64, len(a.v))}
	for i := range a.m {
		s.M[i] = append([]float64(nil), a.m[i].Data...)
		s.V[i] = append([]float64(nil), a.v[i].Data...)
	}
	return s
}

// SetState restores a snapshot taken by State into an optimizer built
// over the same parameter list, validating every moment buffer's size
// against its parameter first.
func (a *Adam) SetState(s AdamState) error {
	if len(s.M) != len(a.params) || len(s.V) != len(a.params) {
		return fmt.Errorf("nn: Adam state has %d/%d moment buffers, optimizer has %d parameters",
			len(s.M), len(s.V), len(a.params))
	}
	for i, p := range a.params {
		if len(s.M[i]) != p.T.Size() || len(s.V[i]) != p.T.Size() {
			return fmt.Errorf("nn: Adam state buffer %d has %d/%d elements, parameter has %d",
				i, len(s.M[i]), len(s.V[i]), p.T.Size())
		}
	}
	a.t = s.T
	for i := range a.params {
		copy(a.m[i].Data, s.M[i])
		copy(a.v[i].Data, s.V[i])
	}
	return nil
}

// SGD is a plain stochastic-gradient-descent optimizer, used by tests
// and ablations as a reference point.
type SGD struct {
	LR     float64
	params []*ag.Value
}

// NewSGD creates the optimizer.
func NewSGD(params []*ag.Value, lr float64) *SGD {
	return &SGD{LR: lr, params: params}
}

// ZeroGrad clears accumulated gradients.
func (s *SGD) ZeroGrad() {
	for _, p := range s.params {
		p.Grad = nil
	}
}

// Step applies one descent update.
func (s *SGD) Step() {
	for _, p := range s.params {
		if p.Grad == nil {
			continue
		}
		for j := range p.T.Data {
			p.T.Data[j] -= s.LR * p.Grad.Data[j]
		}
	}
}
