package nn

import (
	"math"
	"math/rand"
	"sync"

	"mtmlf/internal/ag"
	"mtmlf/internal/tensor"
)

// sinCache memoizes SinusoidalPositions by (seq, dim); like the causal
// mask, positional rows were rebuilt on every forward before the
// inference fast path landed. Guarded for concurrent inference.
var (
	sinMu    sync.RWMutex
	sinCache = map[[2]int]*tensor.Tensor{}
)

// SinusoidalPositions returns the standard [seq, dim] sinusoidal
// positional encoding of Vaswani et al. The result is memoized and
// shared: callers must treat it as read-only.
func SinusoidalPositions(seq, dim int) *tensor.Tensor {
	key := [2]int{seq, dim}
	sinMu.RLock()
	pe := sinCache[key]
	sinMu.RUnlock()
	if pe != nil {
		return pe
	}
	pe = sinusoidalPositions(seq, dim)
	sinMu.Lock()
	if prev, ok := sinCache[key]; ok {
		pe = prev
	} else {
		sinCache[key] = pe
	}
	sinMu.Unlock()
	return pe
}

func sinusoidalPositions(seq, dim int) *tensor.Tensor {
	pe := tensor.New(seq, dim)
	for pos := 0; pos < seq; pos++ {
		row := pe.Row(pos)
		for i := 0; i < dim; i += 2 {
			freq := math.Pow(10000, -float64(i)/float64(dim))
			row[i] = math.Sin(float64(pos) * freq)
			if i+1 < dim {
				row[i+1] = math.Cos(float64(pos) * freq)
			}
		}
	}
	return pe
}

// TreePath is a root-to-node path in a binary tree: 0 = left child,
// 1 = right child. The root has an empty path.
type TreePath []int

// TreePositionalEncoder implements the tree positional embedding of
// Shiv & Quirk (NeurIPS 2019) that the paper's serializer (F.iii) uses
// to flatten plan trees: each node's root path is encoded as a fixed
// binary feature vector (one slot pair per depth level) and projected
// into the model dimension by a learned linear layer.
type TreePositionalEncoder struct {
	MaxDepth int
	Proj     *Linear

	// raw memoizes RawFeature by path: plan shapes repeat heavily
	// across a workload, and the rows were rebuilt on every forward.
	// Guarded because inference runs concurrently with the experiment
	// trial fan-out.
	rawMu sync.RWMutex
	raw   map[string][]float64
}

// NewTreePositionalEncoder creates an encoder for trees of depth up to
// maxDepth producing dim-wide encodings.
func NewTreePositionalEncoder(rng *rand.Rand, maxDepth, dim int) *TreePositionalEncoder {
	return &TreePositionalEncoder{
		MaxDepth: maxDepth,
		Proj:     NewLinear(rng, 2*maxDepth, dim),
	}
}

// RawFeature returns the fixed 2*MaxDepth-wide binary feature for a
// path: slot 2d holds "went left at depth d", slot 2d+1 "went right".
// Paths deeper than MaxDepth are truncated (the prefix dominates plan
// positions, matching the paper's complete-binary-tree view). The
// returned slice is memoized and shared: treat it as read-only.
func (t *TreePositionalEncoder) RawFeature(p TreePath) []float64 {
	key := pathKey(p)
	t.rawMu.RLock()
	f := t.raw[key]
	t.rawMu.RUnlock()
	if f != nil {
		return f
	}
	f = make([]float64, 2*t.MaxDepth)
	for d, dir := range p {
		if d >= t.MaxDepth {
			break
		}
		if dir == 0 {
			f[2*d] = 1
		} else {
			f[2*d+1] = 1
		}
	}
	t.rawMu.Lock()
	if t.raw == nil {
		t.raw = map[string][]float64{}
	}
	if prev, ok := t.raw[key]; ok {
		f = prev
	} else {
		t.raw[key] = f
	}
	t.rawMu.Unlock()
	return f
}

// pathKey packs a 0/1 path into a compact map key.
func pathKey(p TreePath) string {
	b := make([]byte, len(p))
	for i, dir := range p {
		b[i] = byte('0' + dir)
	}
	return string(b)
}

// Forward encodes a batch of paths into a [len(paths), dim] matrix.
func (t *TreePositionalEncoder) Forward(paths []TreePath) *ag.Value {
	raw := tensor.New(len(paths), 2*t.MaxDepth)
	for i, p := range paths {
		copy(raw.Row(i), t.RawFeature(p))
	}
	return t.Proj.Forward(ag.Const(raw))
}

// Infer is the no-grad twin of Forward on the Eval fast path.
func (t *TreePositionalEncoder) Infer(e *ag.Eval, paths []TreePath) *tensor.Tensor {
	raw := e.Get(len(paths), 2*t.MaxDepth)
	for i, p := range paths {
		copy(raw.Row(i), t.RawFeature(p))
	}
	return t.Proj.Infer(e, raw)
}

// Params implements Module.
func (t *TreePositionalEncoder) Params() []*ag.Value { return t.Proj.Params() }
