package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"mtmlf/internal/ag"
)

// paramBlob is the on-wire form of one parameter tensor.
type paramBlob struct {
	Shape []int
	Data  []float64
}

// Save writes the parameters (in order) to w using encoding/gob. Load
// with the same architecture restores them; this is how pre-trained
// MTMLF (S)+(T) modules are shipped to a "new DB" in the paper's
// cloud-service workflow (Section 2.3).
func Save(w io.Writer, params []*ag.Value) error {
	blobs := make([]paramBlob, len(params))
	for i, p := range params {
		blobs[i] = paramBlob{Shape: p.T.Shape, Data: p.T.Data}
	}
	return gob.NewEncoder(w).Encode(blobs)
}

// Load reads parameters written by Save into the given parameter list,
// which must match in count and per-tensor shape.
func Load(r io.Reader, params []*ag.Value) error {
	var blobs []paramBlob
	if err := gob.NewDecoder(r).Decode(&blobs); err != nil {
		return fmt.Errorf("nn: decode parameters: %w", err)
	}
	if len(blobs) != len(params) {
		return fmt.Errorf("nn: parameter count mismatch: file has %d, model has %d", len(blobs), len(params))
	}
	for i, b := range blobs {
		p := params[i]
		if len(b.Data) != p.T.Size() {
			return fmt.Errorf("nn: parameter %d size mismatch: file %d, model %d", i, len(b.Data), p.T.Size())
		}
		copy(p.T.Data, b.Data)
	}
	return nil
}

// CopyParams copies parameter values from src to dst (shapes must match
// pairwise). Used when cloning a pre-trained module for fine-tuning so
// the original stays intact.
func CopyParams(dst, src []*ag.Value) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: CopyParams count mismatch %d vs %d", len(dst), len(src))
	}
	for i := range dst {
		if dst[i].T.Size() != src[i].T.Size() {
			return fmt.Errorf("nn: CopyParams size mismatch at %d", i)
		}
		copy(dst[i].T.Data, src[i].T.Data)
	}
	return nil
}
