package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"slices"

	"mtmlf/internal/ag"
)

// paramBlob is the on-wire form of one parameter tensor.
type paramBlob struct {
	Shape []int
	Data  []float64
}

// header is the on-wire checkpoint preamble. Magic identifies the
// artifact kind (so a truncated or foreign file fails loudly instead
// of gob-decoding into garbage), Version gates format evolution.
type header struct {
	Magic   string
	Version int
}

// WriteHeader writes a magic/version preamble to a gob stream.
// Higher-level checkpoint formats (internal/mtmlf's full-model
// checkpoint) start with this so loaders can reject foreign files and
// future versions with a descriptive error.
func WriteHeader(enc *gob.Encoder, magic string, version int) error {
	return enc.Encode(header{Magic: magic, Version: version})
}

// ReadHeader reads a preamble written by WriteHeader, validates the
// magic and that the file's version is in [1, maxVersion], and
// returns the file's version.
func ReadHeader(dec *gob.Decoder, magic string, maxVersion int) (int, error) {
	var h header
	if err := dec.Decode(&h); err != nil {
		return 0, fmt.Errorf("nn: decode checkpoint header: %w", err)
	}
	if h.Magic != magic {
		return 0, fmt.Errorf("nn: bad checkpoint magic %q, want %q", h.Magic, magic)
	}
	if h.Version < 1 || h.Version > maxVersion {
		return 0, fmt.Errorf("nn: unsupported checkpoint version %d (supported 1..%d)", h.Version, maxVersion)
	}
	return h.Version, nil
}

// EncodeParams writes one parameter section (shapes + data, in order)
// to a gob stream. Gob transmits float64s as their exact bit patterns,
// so a save/load round trip is bitwise lossless.
func EncodeParams(enc *gob.Encoder, params []*ag.Value) error {
	blobs := make([]paramBlob, len(params))
	for i, p := range params {
		blobs[i] = paramBlob{Shape: p.T.Shape, Data: p.T.Data}
	}
	return enc.Encode(blobs)
}

// DecodeParams reads a section written by EncodeParams into params,
// validating the element count and every tensor's shape before any
// data is copied — a checkpoint for a different architecture (or a
// reordered parameter list) fails with a descriptive error instead of
// silently smearing weights across the wrong tensors.
func DecodeParams(dec *gob.Decoder, params []*ag.Value) error {
	var blobs []paramBlob
	if err := dec.Decode(&blobs); err != nil {
		return fmt.Errorf("nn: decode parameters: %w", err)
	}
	if len(blobs) != len(params) {
		return fmt.Errorf("nn: parameter count mismatch: file has %d, model has %d", len(blobs), len(params))
	}
	for i, b := range blobs {
		p := params[i]
		if !slices.Equal(b.Shape, p.T.Shape) {
			return fmt.Errorf("nn: parameter %d shape mismatch: file %v, model %v", i, b.Shape, p.T.Shape)
		}
		if len(b.Data) != p.T.Size() {
			return fmt.Errorf("nn: parameter %d size mismatch: file %d, model %d", i, len(b.Data), p.T.Size())
		}
	}
	for i, b := range blobs {
		copy(params[i].T.Data, b.Data)
	}
	return nil
}

// Save writes the parameters (in order) to w using encoding/gob. Load
// with the same architecture restores them; this is how pre-trained
// MTMLF (S)+(T) modules are shipped to a "new DB" in the paper's
// cloud-service workflow (Section 2.3). The full-model checkpoint
// format (internal/mtmlf Save/Load) wraps this section encoding with
// a magic/version/config header.
func Save(w io.Writer, params []*ag.Value) error {
	return EncodeParams(gob.NewEncoder(w), params)
}

// Load reads parameters written by Save into the given parameter list,
// which must match in count and per-tensor shape.
func Load(r io.Reader, params []*ag.Value) error {
	return DecodeParams(gob.NewDecoder(r), params)
}

// CopyParams copies parameter values from src to dst (shapes must match
// pairwise). Used when cloning a pre-trained module for fine-tuning so
// the original stays intact.
func CopyParams(dst, src []*ag.Value) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: CopyParams count mismatch %d vs %d", len(dst), len(src))
	}
	for i := range dst {
		if dst[i].T.Size() != src[i].T.Size() {
			return fmt.Errorf("nn: CopyParams size mismatch at %d", i)
		}
		copy(dst[i].T.Data, src[i].T.Data)
	}
	return nil
}
