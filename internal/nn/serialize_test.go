package nn

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"

	"mtmlf/internal/ag"
	"mtmlf/internal/tensor"
)

func randParams(seed int64, shapes ...[2]int) []*ag.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*ag.Value, len(shapes))
	for i, s := range shapes {
		out[i] = ag.Param(tensor.RandNorm(rng, s[0], s[1], 1))
	}
	return out
}

// TestLoadRejectsShapeMismatch: a params list with the right count but
// a transposed tensor must fail with a shape error before any weight
// is overwritten.
func TestLoadRejectsShapeMismatch(t *testing.T) {
	src := randParams(1, [2]int{3, 4}, [2]int{2, 5})
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := randParams(2, [2]int{3, 4}, [2]int{5, 2}) // same size, wrong shape
	before := append([]float64{}, dst[0].T.Data...)
	err := Load(&buf, dst)
	if err == nil {
		t.Fatal("Load accepted a transposed parameter")
	}
	if !strings.Contains(err.Error(), "shape mismatch") {
		t.Fatalf("want shape mismatch error, got %v", err)
	}
	for i, v := range dst[0].T.Data {
		if v != before[i] {
			t.Fatal("Load modified weights before failing validation")
		}
	}
}

// TestLoadRejectsCountMismatch keeps the old count check.
func TestLoadRejectsCountMismatch(t *testing.T) {
	src := randParams(1, [2]int{2, 2})
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	err := Load(&buf, randParams(2, [2]int{2, 2}, [2]int{2, 2}))
	if err == nil || !strings.Contains(err.Error(), "count mismatch") {
		t.Fatalf("want count mismatch error, got %v", err)
	}
}

// TestSaveLoadRoundTripBitwise: gob carries float64 bit patterns, so a
// round trip must be exact, not just close.
func TestSaveLoadRoundTripBitwise(t *testing.T) {
	src := randParams(3, [2]int{4, 4}, [2]int{1, 7})
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := randParams(4, [2]int{4, 4}, [2]int{1, 7})
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		for j, v := range src[i].T.Data {
			if dst[i].T.Data[j] != v {
				t.Fatalf("param %d elem %d: %v != %v", i, j, dst[i].T.Data[j], v)
			}
		}
	}
}

// TestHeaderRoundTripAndRejection exercises the magic/version
// preamble the full-model checkpoint format is built on.
func TestHeaderRoundTripAndRejection(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := WriteHeader(enc, "TESTMAGIC", 2); err != nil {
		t.Fatal(err)
	}
	v, err := ReadHeader(gob.NewDecoder(bytes.NewReader(buf.Bytes())), "TESTMAGIC", 3)
	if err != nil || v != 2 {
		t.Fatalf("round trip: version %d, err %v", v, err)
	}
	if _, err := ReadHeader(gob.NewDecoder(bytes.NewReader(buf.Bytes())), "OTHER", 3); err == nil {
		t.Fatal("accepted wrong magic")
	}
	if _, err := ReadHeader(gob.NewDecoder(bytes.NewReader(buf.Bytes())), "TESTMAGIC", 1); err == nil {
		t.Fatal("accepted future version")
	}
	if _, err := ReadHeader(gob.NewDecoder(bytes.NewReader([]byte("junk"))), "TESTMAGIC", 1); err == nil {
		t.Fatal("accepted junk preamble")
	}
}
