package nn

import (
	"math"
	"math/rand"
	"sync"

	"mtmlf/internal/ag"
	"mtmlf/internal/tensor"
)

// MultiHeadAttention implements scaled dot-product attention with h
// heads over row-major [seq, dim] matrices, as in Vaswani et al.,
// which the paper uses for Enc_i, Trans_Share and Trans_JO.
type MultiHeadAttention struct {
	WQ, WK, WV, WO *Linear
	Heads          int
	Dim            int
}

// NewMultiHeadAttention creates an attention block; dim must be
// divisible by heads.
func NewMultiHeadAttention(rng *rand.Rand, dim, heads int) *MultiHeadAttention {
	if dim%heads != 0 {
		panic("nn: attention dim must be divisible by heads")
	}
	return &MultiHeadAttention{
		WQ:    NewLinear(rng, dim, dim),
		WK:    NewLinear(rng, dim, dim),
		WV:    NewLinear(rng, dim, dim),
		WO:    NewLinear(rng, dim, dim),
		Heads: heads,
		Dim:   dim,
	}
}

// Forward attends queries q [lq, dim] over keys/values kv [lk, dim].
// mask, if non-nil, is a [lq, lk] additive mask (use -1e9 to block).
//
// The per-head products run through the batched matmul ops: each
// head's score and context matrices are tiny, so fusing them into one
// worker-pool dispatch is what lets multi-head attention use more
// than one core. The math (and gradients) are identical to the
// head-at-a-time form.
func (a *MultiHeadAttention) Forward(q, kv *ag.Value, mask *tensor.Tensor) *ag.Value {
	Q := a.WQ.Forward(q)
	K := a.WK.Forward(kv)
	V := a.WV.Forward(kv)
	dh := a.Dim / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	var maskV *ag.Value
	if mask != nil {
		maskV = ag.Const(mask)
	}
	qhs := make([]*ag.Value, a.Heads)
	khs := make([]*ag.Value, a.Heads)
	vhs := make([]*ag.Value, a.Heads)
	for h := 0; h < a.Heads; h++ {
		qhs[h] = ag.SliceCols(Q, h*dh, (h+1)*dh)
		khs[h] = ag.SliceCols(K, h*dh, (h+1)*dh)
		vhs[h] = ag.SliceCols(V, h*dh, (h+1)*dh)
	}
	scores := ag.MatMulTransBBatch(qhs, khs)
	attns := make([]*ag.Value, a.Heads)
	for h, s := range scores {
		s = ag.Scale(s, scale)
		if maskV != nil {
			s = ag.Add(s, maskV)
		}
		attns[h] = ag.SoftmaxRows(s)
	}
	heads := ag.MatMulBatch(attns, vhs)
	return a.WO.Forward(ag.ConcatCols(heads...))
}

// Params implements Module.
func (a *MultiHeadAttention) Params() []*ag.Value {
	return CollectParams(a.WQ, a.WK, a.WV, a.WO)
}

// EncoderLayer is one post-norm transformer encoder block:
// x = LN(x + MHA(x)); x = LN(x + FFN(x)).
type EncoderLayer struct {
	Attn *MultiHeadAttention
	FF   *MLP
	LN1  *LayerNorm
	LN2  *LayerNorm
}

// NewEncoderLayer creates an encoder block with a 4x-wide GELU FFN.
func NewEncoderLayer(rng *rand.Rand, dim, heads int) *EncoderLayer {
	return &EncoderLayer{
		Attn: NewMultiHeadAttention(rng, dim, heads),
		FF:   NewMLP(rng, ActGELU, dim, 4*dim, dim),
		LN1:  NewLayerNorm(dim),
		LN2:  NewLayerNorm(dim),
	}
}

// Forward applies the block; mask is an optional [seq, seq] additive mask.
func (l *EncoderLayer) Forward(x *ag.Value, mask *tensor.Tensor) *ag.Value {
	x = l.LN1.Forward(ag.Add(x, l.Attn.Forward(x, x, mask)))
	return l.LN2.Forward(ag.Add(x, l.FF.Forward(x)))
}

// Params implements Module.
func (l *EncoderLayer) Params() []*ag.Value {
	return CollectParams(l.Attn, l.FF, l.LN1, l.LN2)
}

// Encoder is a stack of encoder layers. The paper's Enc_i single-table
// encoders and Trans_Share are both instances of this type (3 blocks,
// 4 heads in the paper's configuration).
type Encoder struct {
	Layers []*EncoderLayer
}

// NewEncoder builds a stack of depth blocks.
func NewEncoder(rng *rand.Rand, dim, heads, blocks int) *Encoder {
	e := &Encoder{}
	for i := 0; i < blocks; i++ {
		e.Layers = append(e.Layers, NewEncoderLayer(rng, dim, heads))
	}
	return e
}

// Forward applies the stack.
func (e *Encoder) Forward(x *ag.Value, mask *tensor.Tensor) *ag.Value {
	for _, l := range e.Layers {
		x = l.Forward(x, mask)
	}
	return x
}

// Params implements Module.
func (e *Encoder) Params() []*ag.Value {
	var out []*ag.Value
	for _, l := range e.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// DecoderLayer is one post-norm transformer decoder block with causal
// self-attention and cross-attention over the encoder memory:
// x = LN(x + SelfAttn(x)); x = LN(x + CrossAttn(x, mem)); x = LN(x + FFN(x)).
type DecoderLayer struct {
	SelfAttn  *MultiHeadAttention
	CrossAttn *MultiHeadAttention
	FF        *MLP
	LN1, LN2  *LayerNorm
	LN3       *LayerNorm
}

// NewDecoderLayer creates a decoder block.
func NewDecoderLayer(rng *rand.Rand, dim, heads int) *DecoderLayer {
	return &DecoderLayer{
		SelfAttn:  NewMultiHeadAttention(rng, dim, heads),
		CrossAttn: NewMultiHeadAttention(rng, dim, heads),
		FF:        NewMLP(rng, ActGELU, dim, 4*dim, dim),
		LN1:       NewLayerNorm(dim),
		LN2:       NewLayerNorm(dim),
		LN3:       NewLayerNorm(dim),
	}
}

// Forward applies the block. causal is a [lq, lq] additive mask for the
// self-attention (nil for none); mem is the encoder output.
func (l *DecoderLayer) Forward(x, mem *ag.Value, causal *tensor.Tensor) *ag.Value {
	x = l.LN1.Forward(ag.Add(x, l.SelfAttn.Forward(x, x, causal)))
	x = l.LN2.Forward(ag.Add(x, l.CrossAttn.Forward(x, mem, nil)))
	return l.LN3.Forward(ag.Add(x, l.FF.Forward(x)))
}

// Params implements Module.
func (l *DecoderLayer) Params() []*ag.Value {
	return CollectParams(l.SelfAttn, l.CrossAttn, l.FF, l.LN1, l.LN2, l.LN3)
}

// Decoder is a stack of decoder layers; the paper's Trans_JO is one.
type Decoder struct {
	Layers []*DecoderLayer
}

// NewDecoder builds a stack of depth blocks.
func NewDecoder(rng *rand.Rand, dim, heads, blocks int) *Decoder {
	d := &Decoder{}
	for i := 0; i < blocks; i++ {
		d.Layers = append(d.Layers, NewDecoderLayer(rng, dim, heads))
	}
	return d
}

// Forward applies the stack with a shared causal mask.
func (d *Decoder) Forward(x, mem *ag.Value, causal *tensor.Tensor) *ag.Value {
	for _, l := range d.Layers {
		x = l.Forward(x, mem, causal)
	}
	return x
}

// Params implements Module.
func (d *Decoder) Params() []*ag.Value {
	var out []*ag.Value
	for _, l := range d.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// causalMasks memoizes CausalMask by size: join-order decoding asks
// for the same handful of sizes on every forward, and inference may
// run concurrently with the experiment trial fan-out, so the cache is
// guarded by an RWMutex (covered by the nn race test).
var (
	causalMu    sync.RWMutex
	causalMasks = map[int]*tensor.Tensor{}
)

// CausalMask returns an [n, n] additive mask that blocks position i
// from attending to positions > i. The returned tensor is shared and
// memoized per size: callers must treat it as read-only.
func CausalMask(n int) *tensor.Tensor {
	causalMu.RLock()
	m := causalMasks[n]
	causalMu.RUnlock()
	if m != nil {
		return m
	}
	m = tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, -1e9)
		}
	}
	causalMu.Lock()
	// Another goroutine may have raced us here; keep the first tensor
	// so repeated calls keep returning a stable pointer.
	if prev, ok := causalMasks[n]; ok {
		m = prev
	} else {
		causalMasks[n] = m
	}
	causalMu.Unlock()
	return m
}
