// Package optimizer implements join-order optimization over a
// pluggable cardinality source:
//
//   - BestLeftDeep / BestBushy: exact dynamic-programming enumeration
//     minimizing the C_out objective. Driven by TrueCards it computes
//     the cost-optimal join order and thereby substitutes for the ECQO
//     program [Trummer 2019] the paper uses to label its JoinSel
//     training data (with the same exponential-cost caveat that
//     restricts labeled queries to ≤ 8 tables).
//   - Driven by EstimatedCards (the internal/stats histogram model) the
//     same DP reproduces the "PostgreSQL" baseline optimizer rows of
//     Tables 2 and 3: a textbook optimizer misled by estimation error.
//   - GreedyLeftDeep: the cheap heuristic used to produce the paper's
//     "initial plan P" fed into MTMLF-QO's featurization module.
package optimizer

import (
	"fmt"
	"math"
	"math/bits"

	"mtmlf/internal/cost"
	"mtmlf/internal/plan"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/stats"
)

// CardSource supplies (estimated or exact) cardinalities of connected
// sub-plans of one query.
type CardSource interface {
	// Card returns the cardinality of the sub-query restricted to the
	// given tables.
	Card(tables []string) float64
}

// TrueCards is a CardSource backed by exact execution.
type TrueCards struct{ Ex *sqldb.Executor }

// Card implements CardSource.
func (t TrueCards) Card(tables []string) float64 { return float64(t.Ex.CardOf(tables)) }

// EstimatedCards is a CardSource backed by the PostgreSQL-style
// histogram estimator.
type EstimatedCards struct {
	S *stats.DBStats
	Q *sqldb.Query
}

// Card implements CardSource.
func (e EstimatedCards) Card(tables []string) float64 { return e.S.EstimateSubplanCard(tables, e.Q) }

// Result is an optimized plan.
type Result struct {
	// Order is the left-deep join order (first table joined first).
	// For bushy plans it is the left-to-right leaf order of Tree.
	Order []string
	// Tree is the logical plan tree.
	Tree *plan.Node
	// Cost is the C_out objective value under the card source used.
	Cost float64
}

// MaxDPTables bounds exact enumeration; beyond it the DP would blow up
// exactly as ECQO does in the paper (they restrict to 8 tables).
const MaxDPTables = 14

type dpContext struct {
	q        *sqldb.Query
	names    []string // q.Tables, fixed order
	cards    CardSource
	adj      []uint32 // adjacency bitmask per table index
	cardMemo map[uint32]float64
}

func newDPContext(q *sqldb.Query, cards CardSource) (*dpContext, error) {
	n := len(q.Tables)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: empty query")
	}
	if n > MaxDPTables {
		return nil, fmt.Errorf("optimizer: %d tables exceeds exact-DP limit %d", n, MaxDPTables)
	}
	if !q.IsConnected() {
		return nil, fmt.Errorf("optimizer: query join graph is disconnected")
	}
	ctx := &dpContext{
		q:        q,
		names:    append([]string{}, q.Tables...),
		cards:    cards,
		adj:      make([]uint32, n),
		cardMemo: map[uint32]float64{},
	}
	idx := map[string]int{}
	for i, t := range ctx.names {
		idx[t] = i
	}
	for _, e := range q.Joins {
		i, iok := idx[e.T1]
		j, jok := idx[e.T2]
		if !iok || !jok {
			return nil, fmt.Errorf("optimizer: join %v references table outside query", e)
		}
		ctx.adj[i] |= 1 << j
		ctx.adj[j] |= 1 << i
	}
	return ctx, nil
}

func (c *dpContext) tablesOf(mask uint32) []string {
	var out []string
	for i := 0; i < len(c.names); i++ {
		if mask&(1<<i) != 0 {
			out = append(out, c.names[i])
		}
	}
	return out
}

func (c *dpContext) card(mask uint32) float64 {
	if v, ok := c.cardMemo[mask]; ok {
		return v
	}
	v := c.cards.Card(c.tablesOf(mask))
	c.cardMemo[mask] = v
	return v
}

// neighbors returns the union of adjacency masks of the set.
func (c *dpContext) neighbors(mask uint32) uint32 {
	var nb uint32
	for i := 0; i < len(c.names); i++ {
		if mask&(1<<i) != 0 {
			nb |= c.adj[i]
		}
	}
	return nb &^ mask
}

// connected reports whether the set is connected in the join graph.
func (c *dpContext) connected(mask uint32) bool {
	if mask == 0 {
		return false
	}
	start := uint32(1) << uint(bits.TrailingZeros32(mask))
	seen := start
	for {
		grow := c.neighbors(seen) & mask
		if grow == 0 {
			break
		}
		seen |= grow
	}
	return seen == mask
}

// BestLeftDeep finds the C_out-optimal left-deep join order by DP over
// connected subsets.
func BestLeftDeep(q *sqldb.Query, cards CardSource) (*Result, error) {
	ctx, err := newDPContext(q, cards)
	if err != nil {
		return nil, err
	}
	n := len(ctx.names)
	full := uint32(1)<<n - 1
	bestCost := make([]float64, full+1)
	bestLast := make([]int, full+1)
	for m := range bestCost {
		bestCost[m] = math.Inf(1)
		bestLast[m] = -1
	}
	// Base cases: singletons cost nothing beyond their (shared) scans;
	// C_out counts only intermediate join results.
	for i := 0; i < n; i++ {
		bestCost[1<<i] = 0
	}
	for m := uint32(1); m <= full; m++ {
		if bits.OnesCount32(m) < 2 {
			continue
		}
		// Extend every strictly smaller prefix m\{i} with table i,
		// requiring i to be adjacent to the prefix (legality).
		for i := 0; i < n; i++ {
			bit := uint32(1) << i
			if m&bit == 0 {
				continue
			}
			prev := m &^ bit
			if prev == 0 || math.IsInf(bestCost[prev], 1) {
				continue
			}
			if ctx.neighbors(prev)&bit == 0 {
				continue // not joinable: would be a cross product
			}
			c := bestCost[prev] + ctx.card(m)
			if c < bestCost[m] {
				bestCost[m] = c
				bestLast[m] = i
			}
		}
	}
	if math.IsInf(bestCost[full], 1) {
		return nil, fmt.Errorf("optimizer: no legal left-deep order")
	}
	// Reconstruct the order.
	order := make([]string, 0, n)
	for m := full; bits.OnesCount32(m) > 1; {
		i := bestLast[m]
		order = append(order, ctx.names[i])
		m &^= 1 << i
		if bits.OnesCount32(m) == 1 {
			order = append(order, ctx.names[bits.TrailingZeros32(m)])
		}
	}
	// Reverse into join order.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	if n == 1 {
		order = []string{ctx.names[0]}
	}
	return &Result{
		Order: order,
		Tree:  plan.LeftDeepFromOrder(order, plan.SeqScan, plan.HashJoin),
		Cost:  bestCost[full],
	}, nil
}

// BestBushy finds the C_out-optimal bushy plan by DPsize over
// connected subset pairs.
func BestBushy(q *sqldb.Query, cards CardSource) (*Result, error) {
	ctx, err := newDPContext(q, cards)
	if err != nil {
		return nil, err
	}
	n := len(ctx.names)
	full := uint32(1)<<n - 1
	type entry struct {
		cost float64
		tree *plan.Node
	}
	best := make(map[uint32]entry, full)
	for i := 0; i < n; i++ {
		best[1<<i] = entry{cost: 0, tree: plan.Leaf(ctx.names[i], plan.SeqScan)}
	}
	for m := uint32(1); m <= full; m++ {
		if bits.OnesCount32(m) < 2 || !ctx.connected(m) {
			continue
		}
		cur := entry{cost: math.Inf(1)}
		// Enumerate proper subsets s of m with s containing the lowest
		// bit (canonical split to halve the work).
		low := uint32(1) << uint(bits.TrailingZeros32(m))
		rest := m &^ low
		for s := rest; ; s = (s - 1) & rest {
			left := s | low
			right := m &^ left
			if right != 0 {
				le, lok := best[left]
				re, rok := best[right]
				if lok && rok && ctx.neighbors(left)&right != 0 {
					c := le.cost + re.cost + ctx.card(m)
					if c < cur.cost {
						cur = entry{cost: c, tree: plan.NewJoin(plan.HashJoin, le.tree, re.tree)}
					}
				}
			}
			if s == 0 {
				break
			}
		}
		if !math.IsInf(cur.cost, 1) {
			best[m] = cur
		}
	}
	top, ok := best[full]
	if !ok {
		return nil, fmt.Errorf("optimizer: no legal bushy plan")
	}
	return &Result{Order: top.tree.Tables(), Tree: top.tree, Cost: top.cost}, nil
}

// GreedyLeftDeep builds a left-deep order by repeatedly joining the
// adjacent table that minimizes the next intermediate size. It is the
// initial-plan generator for MTMLF's input and a fast optimizer
// baseline for queries beyond the DP limit.
func GreedyLeftDeep(q *sqldb.Query, cards CardSource) (*Result, error) {
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("optimizer: empty query")
	}
	if !q.IsConnected() {
		return nil, fmt.Errorf("optimizer: query join graph is disconnected")
	}
	// Start from the smallest filtered table.
	start := q.Tables[0]
	for _, t := range q.Tables[1:] {
		if cards.Card([]string{t}) < cards.Card([]string{start}) {
			start = t
		}
	}
	order := []string{start}
	used := map[string]bool{start: true}
	var total float64
	adj := map[string]map[string]bool{}
	for _, e := range q.Joins {
		if adj[e.T1] == nil {
			adj[e.T1] = map[string]bool{}
		}
		if adj[e.T2] == nil {
			adj[e.T2] = map[string]bool{}
		}
		adj[e.T1][e.T2] = true
		adj[e.T2][e.T1] = true
	}
	for len(order) < len(q.Tables) {
		bestT := ""
		bestC := math.Inf(1)
		for _, t := range q.Tables {
			if used[t] {
				continue
			}
			joinable := false
			for u := range adj[t] {
				if used[u] {
					joinable = true
					break
				}
			}
			if !joinable {
				continue
			}
			c := cards.Card(append(append([]string{}, order...), t))
			if c < bestC {
				bestC, bestT = c, t
			}
		}
		if bestT == "" {
			return nil, fmt.Errorf("optimizer: stuck extending greedy order")
		}
		order = append(order, bestT)
		used[bestT] = true
		total += bestC
	}
	return &Result{
		Order: order,
		Tree:  plan.LeftDeepFromOrder(order, plan.SeqScan, plan.HashJoin),
		Cost:  total,
	}, nil
}

// OrderCost evaluates the C_out objective of an arbitrary left-deep
// order under a card source (used to compare predicted orders without
// re-running the DP).
func OrderCost(order []string, cards CardSource) float64 {
	var total float64
	for i := 2; i <= len(order); i++ {
		total += cards.Card(order[:i])
	}
	return total
}

// PhysicalPlan annotates a logical tree with scan and join operators
// chosen by the cost model under the given card source — producing the
// fully physical "initial plan" of the paper's Figure 2 input.
func PhysicalPlan(q *sqldb.Query, db *sqldb.DB, tree *plan.Node, cards CardSource, m *cost.Model) *plan.Node {
	out := tree.Clone()
	var rec func(n *plan.Node) float64 // returns output card
	rec = func(n *plan.Node) float64 {
		if n.IsLeaf() {
			rows := float64(db.Table(n.Table).NumRows())
			outRows := cards.Card([]string{n.Table})
			if len(q.FiltersFor(n.Table)) == 0 {
				n.Scan = plan.SeqScan
			} else {
				n.Scan = m.ChooseScanOp(rows, outRows)
			}
			return outRows
		}
		l := rec(n.Left)
		r := rec(n.Right)
		outRows := cards.Card(n.Tables())
		n.Join = m.ChooseJoinOp(l, r, outRows)
		return outRows
	}
	rec(out)
	return out
}
