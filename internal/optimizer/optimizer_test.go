package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"mtmlf/internal/cost"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/stats"
)

// chainDB builds a chain a - b - c - d of PK-FK joins with controllable
// sizes, plus filters to make cardinalities interesting.
func chainDB(rng *rand.Rand, sizes []int) (*sqldb.DB, *sqldb.Query) {
	names := []string{"a", "b", "c", "d", "e", "g"}[:len(sizes)]
	db := sqldb.NewDB("chain")
	for i, n := range sizes {
		cols := []*sqldb.Column{}
		ids := make([]int64, n)
		for r := range ids {
			ids[r] = int64(r)
		}
		cols = append(cols, sqldb.IntColumn("id", ids))
		if i > 0 {
			fk := make([]int64, n)
			for r := range fk {
				fk[r] = int64(rng.Intn(sizes[i-1]))
			}
			cols = append(cols, sqldb.IntColumn("prev_id", fk))
		}
		attr := make([]int64, n)
		for r := range attr {
			attr[r] = int64(rng.Intn(10))
		}
		cols = append(cols, sqldb.IntColumn("x", attr))
		db.MustAddTable(sqldb.MustNewTable(names[i], cols...))
		if i > 0 {
			db.MustAddEdge(sqldb.JoinEdge{T1: names[i-1], C1: "id", T2: names[i], C2: "prev_id"})
		}
	}
	q := &sqldb.Query{Tables: append([]string{}, names...)}
	for i := 1; i < len(names); i++ {
		q.Joins = append(q.Joins, sqldb.JoinEdge{T1: names[i-1], C1: "id", T2: names[i], C2: "prev_id"})
	}
	q.Filters = []sqldb.Filter{
		{Table: names[0], Col: "x", Op: sqldb.OpLt, Val: sqldb.IntVal(3)},
		{Table: names[len(names)-1], Col: "x", Op: sqldb.OpGe, Val: sqldb.IntVal(5)},
	}
	return db, q
}

// bruteForceBestLeftDeep enumerates every legal permutation.
func bruteForceBestLeftDeep(q *sqldb.Query, cards CardSource) ([]string, float64) {
	n := len(q.Tables)
	best := math.Inf(1)
	var bestOrder []string
	adj := map[string]map[string]bool{}
	for _, e := range q.Joins {
		if adj[e.T1] == nil {
			adj[e.T1] = map[string]bool{}
		}
		if adj[e.T2] == nil {
			adj[e.T2] = map[string]bool{}
		}
		adj[e.T1][e.T2] = true
		adj[e.T2][e.T1] = true
	}
	perm := make([]string, 0, n)
	used := make([]bool, n)
	var rec func(costSoFar float64)
	rec = func(costSoFar float64) {
		if len(perm) == n {
			if costSoFar < best {
				best = costSoFar
				bestOrder = append([]string{}, perm...)
			}
			return
		}
		for i, t := range q.Tables {
			if used[i] {
				continue
			}
			if len(perm) > 0 {
				connected := false
				for _, p := range perm {
					if adj[t][p] {
						connected = true
						break
					}
				}
				if !connected {
					continue
				}
			}
			used[i] = true
			perm = append(perm, t)
			add := 0.0
			if len(perm) >= 2 {
				add = cards.Card(perm)
			}
			rec(costSoFar + add)
			perm = perm[:len(perm)-1]
			used[i] = false
		}
	}
	rec(0)
	return bestOrder, best
}

func TestBestLeftDeepMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 10; iter++ {
		sizes := []int{20 + rng.Intn(30), 30 + rng.Intn(40), 30 + rng.Intn(40), 20 + rng.Intn(30)}
		db, q := chainDB(rng, sizes)
		ex := sqldb.NewExecutor(db, q)
		cards := TrueCards{Ex: ex}
		res, err := BestLeftDeep(q, cards)
		if err != nil {
			t.Fatal(err)
		}
		_, bfCost := bruteForceBestLeftDeep(q, cards)
		if math.Abs(res.Cost-bfCost) > 1e-9 {
			t.Fatalf("iter %d: DP cost %g != brute force %g (order %v)", iter, res.Cost, bfCost, res.Order)
		}
		// The reported cost must equal the replayed C_out of the order.
		if math.Abs(OrderCost(res.Order, cards)-res.Cost) > 1e-9 {
			t.Fatalf("iter %d: OrderCost mismatch", iter)
		}
	}
}

func TestBestBushyNeverWorseThanLeftDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 5; iter++ {
		db, q := chainDB(rng, []int{30, 40, 40, 30, 20})
		ex := sqldb.NewExecutor(db, q)
		cards := TrueCards{Ex: ex}
		ld, err := BestLeftDeep(q, cards)
		if err != nil {
			t.Fatal(err)
		}
		bushy, err := BestBushy(q, cards)
		if err != nil {
			t.Fatal(err)
		}
		if bushy.Cost > ld.Cost+1e-9 {
			t.Fatalf("bushy %g worse than left-deep %g", bushy.Cost, ld.Cost)
		}
		if got := len(bushy.Tree.Tables()); got != len(q.Tables) {
			t.Fatalf("bushy tree covers %d tables", got)
		}
	}
}

func TestGreedyLeftDeepLegalAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db, q := chainDB(rng, []int{30, 40, 50, 30})
	ex := sqldb.NewExecutor(db, q)
	res, err := GreedyLeftDeep(q, TrueCards{Ex: ex})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != len(q.Tables) {
		t.Fatal("greedy order incomplete")
	}
	// Every prefix of the order must be connected (legality).
	for i := 2; i <= len(res.Order); i++ {
		sub := &sqldb.Query{Tables: res.Order[:i], Joins: q.JoinsAmong(res.Order[:i])}
		if !sub.IsConnected() {
			t.Fatalf("greedy prefix %v disconnected", res.Order[:i])
		}
	}
	// Greedy is never better than exact DP.
	best, err := BestLeftDeep(q, TrueCards{Ex: ex})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost < best.Cost-1e-9 {
		t.Fatalf("greedy %g beat exact DP %g", res.Cost, best.Cost)
	}
}

func TestEstimatedCardsProduceDifferentPlans(t *testing.T) {
	// With skewed correlated data the estimator's order can differ
	// from the true-card order; at minimum it must be legal and the
	// DP must succeed.
	rng := rand.New(rand.NewSource(4))
	db, q := chainDB(rng, []int{50, 60, 70, 40})
	st := stats.Analyze(db)
	res, err := BestLeftDeep(q, EstimatedCards{S: st, Q: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 4 {
		t.Fatal("estimated plan incomplete")
	}
	// Evaluate under TRUE cards: must be >= true optimum.
	ex := sqldb.NewExecutor(db, q)
	trueCards := TrueCards{Ex: ex}
	opt, _ := BestLeftDeep(q, trueCards)
	if OrderCost(res.Order, trueCards) < opt.Cost-1e-9 {
		t.Fatal("estimated plan beat the true optimum under true cards")
	}
}

func TestDPRejectsDisconnectedAndOversized(t *testing.T) {
	q := &sqldb.Query{Tables: []string{"a", "b"}}
	if _, err := BestLeftDeep(q, nil); err == nil {
		t.Fatal("disconnected query must error")
	}
	big := &sqldb.Query{}
	for i := 0; i < MaxDPTables+1; i++ {
		big.Tables = append(big.Tables, string(rune('a'+i)))
	}
	if _, err := BestLeftDeep(big, nil); err == nil {
		t.Fatal("oversized query must error")
	}
	if _, err := BestLeftDeep(&sqldb.Query{}, nil); err == nil {
		t.Fatal("empty query must error")
	}
}

func TestSingleTableQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db, _ := chainDB(rng, []int{10, 10})
	q := &sqldb.Query{Tables: []string{"a"}}
	ex := sqldb.NewExecutor(db, q)
	res, err := BestLeftDeep(q, TrueCards{Ex: ex})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 1 || res.Order[0] != "a" || res.Cost != 0 {
		t.Fatalf("single-table result wrong: %+v", res)
	}
}

func TestPhysicalPlanAnnotation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db, q := chainDB(rng, []int{40, 50, 60, 30})
	ex := sqldb.NewExecutor(db, q)
	cards := TrueCards{Ex: ex}
	res, err := BestLeftDeep(q, cards)
	if err != nil {
		t.Fatal(err)
	}
	phys := PhysicalPlan(q, db, res.Tree, cards, cost.Default())
	if phys.Shape() != res.Tree.Shape() {
		t.Fatal("physical annotation changed tree shape")
	}
	// Unfiltered tables must be sequential scans.
	for _, n := range phys.Nodes() {
		if n.IsLeaf() && len(q.FiltersFor(n.Table)) == 0 && n.Scan != 0 {
			t.Fatalf("unfiltered %s got %v", n.Table, n.Scan)
		}
	}
}

func TestOrderCostEmptyAndPair(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db, q := chainDB(rng, []int{10, 12})
	ex := sqldb.NewExecutor(db, q)
	cards := TrueCards{Ex: ex}
	if OrderCost([]string{"a"}, cards) != 0 {
		t.Fatal("single-table order must cost 0")
	}
	want := cards.Card([]string{"a", "b"})
	if OrderCost([]string{"a", "b"}, cards) != want {
		t.Fatal("pair order cost wrong")
	}
}
