// Package parallel is the repo-wide worker pool: a single bounded set
// of worker slots shared by every data-parallel loop in the system —
// tensor kernels, minibatch training, experiment trials, and fleet
// generation all draw from the same budget, so nested parallelism can
// never oversubscribe the machine.
//
// The pool is token-based: For and Do hand chunks to new goroutines
// only while a worker slot is free and run them inline on the calling
// goroutine otherwise. Inline fallback makes nesting deadlock-free
// (an outer worker that fans out again just does the work itself when
// the pool is saturated) and keeps the serial path allocation-free.
//
// Callers must ensure chunk bodies touch disjoint data; the pool adds
// no locking of its own. Every splitter here produces the same chunk
// boundaries regardless of how many workers execute them, so a
// computation whose per-chunk math is deterministic stays bitwise
// reproducible at any pool size.
package parallel

import (
	"runtime"
	"sync"
)

var (
	mu      sync.Mutex
	workers = runtime.GOMAXPROCS(0)
	// tokens holds workers-1 slots: the calling goroutine is always the
	// extra worker, so total concurrency equals the worker count.
	tokens = make(chan struct{}, max(workers-1, 0))
)

// SetWorkers sets the pool size and returns the previous value.
// n <= 0 resets to runtime.GOMAXPROCS(0). A pool size of 1 disables
// all parallelism (every loop runs inline on the caller).
func SetWorkers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	mu.Lock()
	defer mu.Unlock()
	prev := workers
	if n != workers {
		workers = n
		tokens = make(chan struct{}, n-1)
	}
	return prev
}

// Workers returns the current pool size.
func Workers() int {
	mu.Lock()
	defer mu.Unlock()
	return workers
}

// ForErr runs f once per index of [0, n), worker-parallel with the
// given grain, and returns the lowest-index error (nil if every call
// succeeded). The per-index results land in private slots, so the
// returned error depends only on the inputs — never on worker count
// or scheduling. It is the fallible twin of For, for fan-outs whose
// bodies can fail (storage-backed example decodes, per-database task
// preparation).
func ForErr(n, grain int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	For(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			errs[i] = f(i)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// pool snapshots the current token channel and size.
func pool() (chan struct{}, int) {
	mu.Lock()
	defer mu.Unlock()
	return tokens, workers
}

// For splits [0, n) into contiguous chunks of at least grain elements
// and runs body on each, using up to Workers goroutines. Chunk
// boundaries depend only on n, grain, and the pool size — not on
// scheduling — and bodies must write only within their own range.
// With a pool of 1, or when n is too small to split, body(0, n) runs
// inline.
func For(n, grain int, body func(start, end int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	toks, nw := pool()
	chunks := (n + grain - 1) / grain
	if chunks > nw {
		chunks = nw
	}
	if chunks <= 1 {
		body(0, n)
		return
	}
	chunk := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		select {
		case toks <- struct{}{}:
			wg.Add(1)
			go func(s, e int) {
				defer wg.Done()
				defer func() { <-toks }()
				body(s, e)
			}(start, end)
		default:
			// Pool saturated: the caller is the worker.
			body(start, end)
		}
	}
	wg.Wait()
}

// Do runs the given functions concurrently on the pool and waits for
// all of them. Functions must not depend on each other's side effects.
func Do(fs ...func()) {
	if len(fs) == 0 {
		return
	}
	if len(fs) == 1 {
		fs[0]()
		return
	}
	toks, nw := pool()
	if nw <= 1 {
		for _, f := range fs {
			f()
		}
		return
	}
	var wg sync.WaitGroup
	for _, f := range fs {
		select {
		case toks <- struct{}{}:
			wg.Add(1)
			go func(f func()) {
				defer wg.Done()
				defer func() { <-toks }()
				f()
			}(f)
		default:
			f()
		}
	}
	wg.Wait()
}
