package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	for _, n := range []int{0, 1, 2, 7, 64, 1000, 4099} {
		hits := make([]int32, n)
		For(n, 1, func(start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForRespectsGrain(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	// With grain >= n the body must run once, inline, over the full range.
	calls := 0
	For(10, 100, func(start, end int) {
		calls++
		if start != 0 || end != 10 {
			t.Fatalf("got chunk [%d,%d)", start, end)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	defer SetWorkers(SetWorkers(1))
	calls := 0
	For(1000, 1, func(start, end int) {
		calls++
		if start != 0 || end != 1000 {
			t.Fatalf("got chunk [%d,%d)", start, end)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	var total int64
	For(16, 1, func(start, end int) {
		for i := start; i < end; i++ {
			For(32, 1, func(s, e int) {
				atomic.AddInt64(&total, int64(e-s))
			})
		}
	})
	if total != 16*32 {
		t.Fatalf("total = %d, want %d", total, 16*32)
	}
}

func TestDoRunsAll(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	var a, b, c int32
	Do(
		func() { atomic.AddInt32(&a, 1) },
		func() { atomic.AddInt32(&b, 1) },
		func() { atomic.AddInt32(&c, 1) },
	)
	if a != 1 || b != 1 || c != 1 {
		t.Fatalf("a=%d b=%d c=%d", a, b, c)
	}
}

func TestSetWorkersDefaults(t *testing.T) {
	prev := SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS", Workers())
	}
	SetWorkers(prev)
}
