package plan

import (
	"fmt"
	"math/bits"
)

// This file implements the paper's Section 4.1: converting a plan
// tree to per-table "decoding embeddings" over the leaves of the
// equivalent complete binary tree, and reverting a unique tree from
// those embeddings (Figure 4).
//
// The tree is viewed as a complete binary tree of depth D (its own
// maximum leaf depth): a leaf at depth d < D stands for the whole
// 2^(D-d)-wide run of complete-tree leaf slots beneath it, all
// labeled with its table. Each table's decoding embedding is the 0/1
// indicator of its slots, padded with zeros to the requested width.
// For the paper's 4-table examples (width 8):
//
//	left-deep ((T1 ⋈ T2) ⋈ T3) ⋈ T4:
//	  T1=[1 0 0 0 0 0 0 0] T2=[0 1 0 0 0 0 0 0]
//	  T3=[0 0 1 1 0 0 0 0] T4=[0 0 0 0 1 1 1 1]
//	bushy (T1 ⋈ T2) ⋈ (T3 ⋈ T4):
//	  T1=[1 0 ...] T2=[0 1 ...] T3=[0 0 1 0 ...] T4=[0 0 0 1 ...]

// EmbeddingWidth returns the paper's embedding width for queries of up
// to m tables: the maximum possible number of complete-tree leaves,
// 2^(m-1) (8 for the 4-table example).
func EmbeddingWidth(m int) int {
	if m < 1 {
		return 1
	}
	return 1 << (m - 1)
}

// DecodingEmbeddings computes the per-table decoding embedding of the
// tree, as width-wide 0/1 vectors. Each table may appear at most once
// as a leaf. width must be at least 2^Depth.
func DecodingEmbeddings(root *Node, width int) (map[string][]float64, error) {
	d := root.Depth()
	span := 1 << d
	if span > width {
		return nil, fmt.Errorf("plan: tree depth %d needs width %d > %d", d, span, width)
	}
	out := map[string][]float64{}
	var rec func(n *Node, depth, lo int) error
	rec = func(n *Node, depth, lo int) error {
		run := 1 << (d - depth)
		if n.IsLeaf() {
			if _, dup := out[n.Table]; dup {
				return fmt.Errorf("plan: table %q appears twice", n.Table)
			}
			v := make([]float64, width)
			for i := lo; i < lo+run; i++ {
				v[i] = 1
			}
			out[n.Table] = v
			return nil
		}
		if err := rec(n.Left, depth+1, lo); err != nil {
			return err
		}
		return rec(n.Right, depth+1, lo+run/2)
	}
	if err := rec(root, 0, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// TreeFromEmbeddings reverts the unique logical tree encoded by a set
// of decoding embeddings (Section 4.1's seq-to-tree direction). The
// returned tree has SeqScan leaves and HashJoin inner nodes; physical
// operators are not carried by the embeddings.
func TreeFromEmbeddings(emb map[string][]float64) (*Node, error) {
	if len(emb) == 0 {
		return nil, fmt.Errorf("plan: no embeddings")
	}
	// Label each slot; find the highest used slot to recover the
	// actual complete-tree span (a power of two).
	maxSlot := -1
	var width int
	for t, v := range emb {
		if width == 0 {
			width = len(v)
		} else if len(v) != width {
			return nil, fmt.Errorf("plan: embedding width mismatch for %q", t)
		}
		any := false
		for i, x := range v {
			if x != 0 {
				any = true
				if i > maxSlot {
					maxSlot = i
				}
			}
		}
		if !any {
			return nil, fmt.Errorf("plan: table %q has empty embedding", t)
		}
	}
	span := 1
	for span < maxSlot+1 {
		span *= 2
	}
	if span > width {
		return nil, fmt.Errorf("plan: slot %d beyond width %d", maxSlot, width)
	}
	labels := make([]string, span)
	for t, v := range emb {
		for i := 0; i < span; i++ {
			if v[i] != 0 {
				if labels[i] != "" {
					return nil, fmt.Errorf("plan: slot %d claimed by %q and %q", i, labels[i], t)
				}
				labels[i] = t
			}
		}
	}
	for i, l := range labels {
		if l == "" {
			return nil, fmt.Errorf("plan: slot %d unlabeled", i)
		}
	}
	var build func(lo, hi int) (*Node, error)
	build = func(lo, hi int) (*Node, error) {
		uniform := true
		for i := lo + 1; i < hi; i++ {
			if labels[i] != labels[lo] {
				uniform = false
				break
			}
		}
		if uniform {
			return Leaf(labels[lo], SeqScan), nil
		}
		mid := lo + (hi-lo)/2
		l, err := build(lo, mid)
		if err != nil {
			return nil, err
		}
		r, err := build(mid, hi)
		if err != nil {
			return nil, err
		}
		if !l.IsLeaf() && r.IsLeaf() {
			// A run crossing the midpoint would be inconsistent:
			// verify the right side does not continue the left label.
			if labels[mid-1] == labels[mid] {
				return nil, fmt.Errorf("plan: label run crosses subtree boundary at slot %d", mid)
			}
		}
		return NewJoin(HashJoin, l, r), nil
	}
	return build(0, span)
}

// PositionsOf returns the slot indices set in one embedding; useful
// for diagnostics and tests.
func PositionsOf(v []float64) []int {
	var out []int
	for i, x := range v {
		if x != 0 {
			out = append(out, i)
		}
	}
	return out
}

// IsPowerOfTwo reports whether x is a positive power of two.
func IsPowerOfTwo(x int) bool { return x > 0 && bits.OnesCount(uint(x)) == 1 }
