package plan

import "fmt"

// Pooled variants of the Section 4.1 decoding-embedding codec.
//
// The map-based DecodingEmbeddings/TreeFromEmbeddings pair allocates a
// map, one vector per table and one Node per tree position on every
// call. Serving-path decoding (the Figure 4 tree↔seq roundtrip runs
// once per decoded plan) reuses an EmbeddingSet and a NodeArena
// instead: at steady state the roundtrip allocates nothing, which is
// what BenchmarkFigure4Decoding measures.

// EmbeddingSet is a dense, reusable table→embedding collection: entry
// i is Tables[i] with vector Vec(i), all vectors Width wide and stored
// in one slab. Reset keeps the storage for the next encode.
type EmbeddingSet struct {
	Tables []string
	Width  int
	slab   []float64
}

// Reset empties the set, retaining capacity.
func (s *EmbeddingSet) Reset() {
	s.Tables = s.Tables[:0]
	s.slab = s.slab[:0]
	s.Width = 0
}

// Len returns the number of tables in the set.
func (s *EmbeddingSet) Len() int { return len(s.Tables) }

// Vec returns entry i's embedding (a slab view; valid until Reset).
func (s *EmbeddingSet) Vec(i int) []float64 { return s.slab[i*s.Width : (i+1)*s.Width] }

// index returns the entry for table t, or -1.
func (s *EmbeddingSet) index(t string) int {
	for i, x := range s.Tables {
		if x == t {
			return i
		}
	}
	return -1
}

// add appends a zeroed vector for table t and returns it.
func (s *EmbeddingSet) add(t string) []float64 {
	s.Tables = append(s.Tables, t)
	n := len(s.slab)
	if n+s.Width <= cap(s.slab) {
		s.slab = s.slab[: n+s.Width : cap(s.slab)]
		v := s.slab[n : n+s.Width]
		for i := range v {
			v[i] = 0
		}
		return v
	}
	s.slab = append(s.slab, make([]float64, s.Width)...)
	return s.slab[n : n+s.Width]
}

// DecodingEmbeddingsInto computes the per-table decoding embeddings of
// the tree into set (which is Reset first). Semantics match
// DecodingEmbeddings; at steady state the encode allocates nothing.
func DecodingEmbeddingsInto(root *Node, width int, set *EmbeddingSet) error {
	d := root.Depth()
	span := 1 << d
	if span > width {
		return fmt.Errorf("plan: tree depth %d needs width %d > %d", d, span, width)
	}
	set.Reset()
	set.Width = width
	return decEmbRec(root, d, 0, 0, set)
}

func decEmbRec(n *Node, d, depth, lo int, set *EmbeddingSet) error {
	run := 1 << (d - depth)
	if n.IsLeaf() {
		if set.index(n.Table) >= 0 {
			return fmt.Errorf("plan: table %q appears twice", n.Table)
		}
		v := set.add(n.Table)
		for i := lo; i < lo+run; i++ {
			v[i] = 1
		}
		return nil
	}
	if err := decEmbRec(n.Left, d, depth+1, lo, set); err != nil {
		return err
	}
	return decEmbRec(n.Right, d, depth+1, lo+run/2, set)
}

// NodeArena is a reusable allocator for decoded plan trees plus the
// slot-label scratch of TreeFromEmbeddingSet. Trees returned from the
// arena are invalidated by its Reset.
type NodeArena struct {
	nodes  []Node
	next   int
	labels []string
}

// Reset reclaims every node handed out since the last Reset.
func (a *NodeArena) Reset() { a.next = 0 }

// new hands out a zeroed node. Growth must never move nodes already
// handed out (live trees hold pointers into the chunk), so when the
// current chunk is full a fresh larger chunk replaces it and the full
// one is simply abandoned to the trees that reference it — this only
// happens while the arena warms up.
func (a *NodeArena) new() *Node {
	if a.next == len(a.nodes) {
		if len(a.nodes) < cap(a.nodes) {
			a.nodes = a.nodes[:len(a.nodes)+1]
		} else {
			a.nodes = make([]Node, 1, 2*len(a.nodes)+8)
			a.next = 0
		}
	}
	n := &a.nodes[a.next]
	a.next++
	*n = Node{}
	return n
}

// TreeFromEmbeddingSet reverts the unique tree encoded by set, with
// nodes drawn from arena. Semantics match TreeFromEmbeddings; at
// steady state the decode allocates nothing.
func TreeFromEmbeddingSet(set *EmbeddingSet, arena *NodeArena) (*Node, error) {
	if set.Len() == 0 {
		return nil, fmt.Errorf("plan: no embeddings")
	}
	maxSlot := -1
	for i := 0; i < set.Len(); i++ {
		v := set.Vec(i)
		any := false
		for j, x := range v {
			if x != 0 {
				any = true
				if j > maxSlot {
					maxSlot = j
				}
			}
		}
		if !any {
			return nil, fmt.Errorf("plan: table %q has empty embedding", set.Tables[i])
		}
	}
	span := 1
	for span < maxSlot+1 {
		span *= 2
	}
	if span > set.Width {
		return nil, fmt.Errorf("plan: slot %d beyond width %d", maxSlot, set.Width)
	}
	if cap(arena.labels) < span {
		arena.labels = make([]string, span)
	}
	labels := arena.labels[:span]
	for i := range labels {
		labels[i] = ""
	}
	for i := 0; i < set.Len(); i++ {
		t := set.Tables[i]
		v := set.Vec(i)
		for j := 0; j < span; j++ {
			if v[j] != 0 {
				if labels[j] != "" {
					return nil, fmt.Errorf("plan: slot %d claimed by %q and %q", j, labels[j], t)
				}
				labels[j] = t
			}
		}
	}
	for i, l := range labels {
		if l == "" {
			return nil, fmt.Errorf("plan: slot %d unlabeled", i)
		}
	}
	return buildFromLabels(labels, 0, span, arena)
}

func buildFromLabels(labels []string, lo, hi int, arena *NodeArena) (*Node, error) {
	uniform := true
	for i := lo + 1; i < hi; i++ {
		if labels[i] != labels[lo] {
			uniform = false
			break
		}
	}
	if uniform {
		n := arena.new()
		n.Table = labels[lo]
		n.Scan = SeqScan
		return n, nil
	}
	mid := lo + (hi-lo)/2
	l, err := buildFromLabels(labels, lo, mid, arena)
	if err != nil {
		return nil, err
	}
	r, err := buildFromLabels(labels, mid, hi, arena)
	if err != nil {
		return nil, err
	}
	if !l.IsLeaf() && r.IsLeaf() {
		// A run crossing the midpoint would be inconsistent: verify
		// the right side does not continue the left label.
		if labels[mid-1] == labels[mid] {
			return nil, fmt.Errorf("plan: label run crosses subtree boundary at slot %d", mid)
		}
	}
	n := arena.new()
	n.Join = HashJoin
	n.Left = l
	n.Right = r
	return n, nil
}
