package plan

import (
	"fmt"
	"math/rand"
	"testing"
)

// sameTree reports structural equality of two plan trees.
func sameTree(a, b *Node) bool {
	if a.IsLeaf() != b.IsLeaf() {
		return false
	}
	if a.IsLeaf() {
		return a.Table == b.Table && a.Scan == b.Scan
	}
	return a.Join == b.Join && sameTree(a.Left, b.Left) && sameTree(a.Right, b.Right)
}

// TestPooledCodecMatchesMapCodec asserts the reusable
// EmbeddingSet/NodeArena codec produces exactly the embeddings and
// trees of the map-based codec on random trees.
func TestPooledCodecMatchesMapCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	set := &EmbeddingSet{}
	arena := &NodeArena{}
	for trial := 0; trial < 60; trial++ {
		nt := 2 + rng.Intn(5)
		tables := make([]string, nt)
		for i := range tables {
			tables[i] = fmt.Sprintf("T%d", i+1)
		}
		tree := randomTree(rng, tables)
		width := EmbeddingWidth(nt) * 2 // headroom for unbalanced trees

		want, err := DecodingEmbeddings(tree, width)
		if err != nil {
			t.Fatalf("map encode: %v", err)
		}
		arena.Reset()
		if err := DecodingEmbeddingsInto(tree, width, set); err != nil {
			t.Fatalf("pooled encode: %v", err)
		}
		if set.Len() != len(want) {
			t.Fatalf("pooled encode has %d tables, map has %d", set.Len(), len(want))
		}
		for i := 0; i < set.Len(); i++ {
			wv, ok := want[set.Tables[i]]
			if !ok {
				t.Fatalf("pooled encode emitted unknown table %q", set.Tables[i])
			}
			gv := set.Vec(i)
			for j := range wv {
				if wv[j] != gv[j] {
					t.Fatalf("table %q slot %d: map %v pooled %v", set.Tables[i], j, wv[j], gv[j])
				}
			}
		}

		wantTree, err := TreeFromEmbeddings(want)
		if err != nil {
			t.Fatalf("map decode: %v", err)
		}
		gotTree, err := TreeFromEmbeddingSet(set, arena)
		if err != nil {
			t.Fatalf("pooled decode: %v", err)
		}
		if !sameTree(wantTree, gotTree) {
			t.Fatalf("trees differ:\nmap:    %s\npooled: %s", wantTree, gotTree)
		}
	}
}

// TestPooledCodecSteadyStateAllocs asserts the warm roundtrip is
// allocation-free.
func TestPooledCodecSteadyStateAllocs(t *testing.T) {
	tree := NewJoin(HashJoin,
		NewJoin(HashJoin,
			NewJoin(HashJoin, Leaf("T1", SeqScan), Leaf("T2", SeqScan)),
			Leaf("T3", SeqScan)),
		Leaf("T4", SeqScan))
	set := &EmbeddingSet{}
	arena := &NodeArena{}
	round := func() {
		arena.Reset()
		if err := DecodingEmbeddingsInto(tree, 8, set); err != nil {
			t.Fatal(err)
		}
		if _, err := TreeFromEmbeddingSet(set, arena); err != nil {
			t.Fatal(err)
		}
	}
	round() // warm
	if allocs := testing.AllocsPerRun(100, round); allocs > 0 {
		t.Fatalf("warm roundtrip allocates %.1f times", allocs)
	}
}

// TestPooledCodecErrors mirrors the map codec's error cases.
func TestPooledCodecErrors(t *testing.T) {
	set := &EmbeddingSet{}
	arena := &NodeArena{}
	deep := NewJoin(HashJoin,
		NewJoin(HashJoin, Leaf("A", SeqScan), Leaf("B", SeqScan)),
		Leaf("C", SeqScan))
	if err := DecodingEmbeddingsInto(deep, 2, set); err == nil {
		t.Fatal("want width error")
	}
	dup := NewJoin(HashJoin, Leaf("A", SeqScan), Leaf("A", SeqScan))
	if err := DecodingEmbeddingsInto(dup, 4, set); err == nil {
		t.Fatal("want duplicate-table error")
	}
	if _, err := TreeFromEmbeddingSet(&EmbeddingSet{}, arena); err == nil {
		t.Fatal("want empty-set error")
	}
	// Empty vector for a table.
	set.Reset()
	set.Width = 4
	set.add("A")
	if _, err := TreeFromEmbeddingSet(set, arena); err == nil {
		t.Fatal("want empty-embedding error")
	}
}
