// Package plan models physical query plan trees — the paper's (I)
// "initial plan P" input, with (sequential or index) scan leaves and
// (hash, merge, or nested-loop) join inner nodes — plus the paper's
// Section 4.1 tree-to-sequence and sequence-to-tree conversion built
// on complete-binary-tree decoding embeddings (Figures 3 and 4).
package plan

import (
	"fmt"
	"sort"
	"strings"
)

// ScanOp enumerates leaf (scan) operators.
type ScanOp int

// Scan operators.
const (
	SeqScan ScanOp = iota
	IndexScan
)

// String implements fmt.Stringer.
func (s ScanOp) String() string {
	if s == IndexScan {
		return "IndexScan"
	}
	return "SeqScan"
}

// JoinOp enumerates inner (join) operators.
type JoinOp int

// Join operators.
const (
	HashJoin JoinOp = iota
	MergeJoin
	NestLoopJoin
)

// String implements fmt.Stringer.
func (j JoinOp) String() string {
	switch j {
	case MergeJoin:
		return "MergeJoin"
	case NestLoopJoin:
		return "NestLoopJoin"
	default:
		return "HashJoin"
	}
}

// NumScanOps and NumJoinOps size the one-hot operator encodings used
// by the featurization module.
const (
	NumScanOps = 2
	NumJoinOps = 3
)

// Node is a plan tree node: a scan leaf (Table != "") or a join.
type Node struct {
	// Leaf fields.
	Table string
	Scan  ScanOp

	// Inner fields.
	Join        JoinOp
	Left, Right *Node
}

// Leaf creates a scan node.
func Leaf(table string, op ScanOp) *Node { return &Node{Table: table, Scan: op} }

// NewJoin creates a join node over two subtrees.
func NewJoin(op JoinOp, l, r *Node) *Node {
	if l == nil || r == nil {
		panic("plan: join with nil child")
	}
	return &Node{Join: op, Left: l, Right: r}
}

// IsLeaf reports whether n is a scan node.
func (n *Node) IsLeaf() bool { return n.Table != "" }

// Tables returns the leaf tables in left-to-right order.
func (n *Node) Tables() []string {
	var out []string
	n.walkLeaves(func(l *Node) { out = append(out, l.Table) })
	return out
}

func (n *Node) walkLeaves(f func(*Node)) {
	if n.IsLeaf() {
		f(n)
		return
	}
	n.Left.walkLeaves(f)
	n.Right.walkLeaves(f)
}

// Nodes returns every node in post-order (children before parents),
// the order the featurization module serializes plans in.
func (n *Node) Nodes() []*Node {
	var out []*Node
	var rec func(*Node)
	rec = func(x *Node) {
		if !x.IsLeaf() {
			rec(x.Left)
			rec(x.Right)
		}
		out = append(out, x)
	}
	rec(n)
	return out
}

// Depth returns the maximum leaf depth (root = 0).
func (n *Node) Depth() int {
	if n.IsLeaf() {
		return 0
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// IsLeftDeep reports whether every right child is a leaf.
func (n *Node) IsLeftDeep() bool {
	if n.IsLeaf() {
		return true
	}
	if !n.Right.IsLeaf() {
		return false
	}
	return n.Left.IsLeftDeep()
}

// Clone deep-copies the tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.Left = n.Left.Clone()
	c.Right = n.Right.Clone()
	return &c
}

// Paths returns, for every node in post-order (matching Nodes), its
// root path (0 = left, 1 = right); the serializer feeds these to the
// tree positional encoder.
func (n *Node) Paths() [][]int {
	var out [][]int
	var rec func(x *Node, p []int)
	rec = func(x *Node, p []int) {
		if !x.IsLeaf() {
			rec(x.Left, append(append([]int{}, p...), 0))
			rec(x.Right, append(append([]int{}, p...), 1))
		}
		out = append(out, append([]int{}, p...))
	}
	rec(n, nil)
	return out
}

// String renders the tree, e.g. "HashJoin(SeqScan(a), IndexScan(b))".
func (n *Node) String() string {
	if n.IsLeaf() {
		return fmt.Sprintf("%s(%s)", n.Scan, n.Table)
	}
	return fmt.Sprintf("%s(%s, %s)", n.Join, n.Left, n.Right)
}

// Pretty renders an indented multi-line view (used by the examples to
// show Figure 3-style trees).
func (n *Node) Pretty() string {
	var b strings.Builder
	var rec func(x *Node, indent string)
	rec = func(x *Node, indent string) {
		if x.IsLeaf() {
			fmt.Fprintf(&b, "%s%s(%s)\n", indent, x.Scan, x.Table)
			return
		}
		fmt.Fprintf(&b, "%s%s\n", indent, x.Join)
		rec(x.Left, indent+"  ")
		rec(x.Right, indent+"  ")
	}
	rec(n, "")
	return b.String()
}

// LeftDeepFromOrder builds a left-deep logical tree joining the tables
// in the given order with the given default operators.
func LeftDeepFromOrder(order []string, scan ScanOp, join JoinOp) *Node {
	if len(order) == 0 {
		panic("plan: empty order")
	}
	t := Leaf(order[0], scan)
	for _, name := range order[1:] {
		t = NewJoin(join, t, Leaf(name, scan))
	}
	return t
}

// Shape returns a canonical string for the logical tree shape (tables
// and structure, ignoring operators); used to compare decoded trees.
func (n *Node) Shape() string {
	if n.IsLeaf() {
		return n.Table
	}
	return "(" + n.Left.Shape() + "," + n.Right.Shape() + ")"
}

// SortedTables returns the distinct leaf tables sorted.
func (n *Node) SortedTables() []string {
	ts := n.Tables()
	sort.Strings(ts)
	return ts
}
