package plan

import (
	"math/rand"
	"testing"
)

// paperLeftDeep builds the left-deep tree of Figure 3(a):
// ((T1 ⋈ T2) ⋈ T3) ⋈ T4.
func paperLeftDeep() *Node {
	return NewJoin(HashJoin,
		NewJoin(HashJoin,
			NewJoin(HashJoin, Leaf("T1", SeqScan), Leaf("T2", SeqScan)),
			Leaf("T3", SeqScan)),
		Leaf("T4", SeqScan))
}

// paperBushy builds the bushy tree of Figure 3(b):
// (T1 ⋈ T2) ⋈ (T3 ⋈ T4).
func paperBushy() *Node {
	return NewJoin(HashJoin,
		NewJoin(HashJoin, Leaf("T1", SeqScan), Leaf("T2", SeqScan)),
		NewJoin(HashJoin, Leaf("T3", SeqScan), Leaf("T4", SeqScan)))
}

func TestNodeBasics(t *testing.T) {
	n := paperLeftDeep()
	if n.IsLeaf() {
		t.Fatal("join is not a leaf")
	}
	if got := n.Tables(); len(got) != 4 || got[0] != "T1" || got[3] != "T4" {
		t.Fatalf("Tables wrong: %v", got)
	}
	if n.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", n.Depth())
	}
	if !n.IsLeftDeep() {
		t.Fatal("left-deep tree misclassified")
	}
	if paperBushy().IsLeftDeep() {
		t.Fatal("bushy tree misclassified as left-deep")
	}
	if len(n.Nodes()) != 7 {
		t.Fatalf("Nodes count = %d, want 7", len(n.Nodes()))
	}
}

func TestNodesPostOrder(t *testing.T) {
	n := paperLeftDeep()
	nodes := n.Nodes()
	// Post-order: children precede parents; root last.
	if nodes[len(nodes)-1] != n {
		t.Fatal("root must be last in post-order")
	}
	pos := map[*Node]int{}
	for i, x := range nodes {
		pos[x] = i
	}
	for _, x := range nodes {
		if !x.IsLeaf() {
			if pos[x.Left] > pos[x] || pos[x.Right] > pos[x] {
				t.Fatal("children must precede parents")
			}
		}
	}
}

func TestPathsAlignWithNodes(t *testing.T) {
	n := paperBushy()
	nodes := n.Nodes()
	paths := n.Paths()
	if len(nodes) != len(paths) {
		t.Fatal("Paths/Nodes length mismatch")
	}
	// Root path empty; T1's path is left-left.
	for i, x := range nodes {
		if x == n && len(paths[i]) != 0 {
			t.Fatal("root path must be empty")
		}
		if x.IsLeaf() && x.Table == "T1" {
			if len(paths[i]) != 2 || paths[i][0] != 0 || paths[i][1] != 0 {
				t.Fatalf("T1 path wrong: %v", paths[i])
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := paperLeftDeep()
	c := n.Clone()
	c.Left.Join = MergeJoin
	if n.Left.Join == MergeJoin {
		t.Fatal("Clone must deep-copy")
	}
	if n.Shape() != c.Shape() {
		t.Fatal("Clone changed shape")
	}
}

func TestLeftDeepFromOrder(t *testing.T) {
	n := LeftDeepFromOrder([]string{"a", "b", "c"}, SeqScan, HashJoin)
	if n.Shape() != "((a,b),c)" {
		t.Fatalf("shape %q", n.Shape())
	}
}

// TestPaperFigure4LeftDeepEmbeddings asserts the exact vectors printed
// in the paper for the left-deep example.
func TestPaperFigure4LeftDeepEmbeddings(t *testing.T) {
	emb, err := DecodingEmbeddings(paperLeftDeep(), 8)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]float64{
		"T1": {1, 0, 0, 0, 0, 0, 0, 0},
		"T2": {0, 1, 0, 0, 0, 0, 0, 0},
		"T3": {0, 0, 1, 1, 0, 0, 0, 0},
		"T4": {0, 0, 0, 0, 1, 1, 1, 1},
	}
	for tab, w := range want {
		got := emb[tab]
		if len(got) != len(w) {
			t.Fatalf("%s width %d", tab, len(got))
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("%s embedding %v, want %v", tab, got, w)
			}
		}
	}
}

// TestPaperFigure4BushyEmbeddings asserts the paper's bushy vectors.
func TestPaperFigure4BushyEmbeddings(t *testing.T) {
	emb, err := DecodingEmbeddings(paperBushy(), 8)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]float64{
		"T1": {1, 0, 0, 0, 0, 0, 0, 0},
		"T2": {0, 1, 0, 0, 0, 0, 0, 0},
		"T3": {0, 0, 1, 0, 0, 0, 0, 0},
		"T4": {0, 0, 0, 1, 0, 0, 0, 0},
	}
	for tab, w := range want {
		got := emb[tab]
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("%s embedding %v, want %v", tab, got, w)
			}
		}
	}
}

func TestEmbeddingRoundtripPaperTrees(t *testing.T) {
	for _, tree := range []*Node{paperLeftDeep(), paperBushy()} {
		emb, err := DecodingEmbeddings(tree, 8)
		if err != nil {
			t.Fatal(err)
		}
		back, err := TreeFromEmbeddings(emb)
		if err != nil {
			t.Fatal(err)
		}
		if back.Shape() != tree.Shape() {
			t.Fatalf("roundtrip shape %q, want %q", back.Shape(), tree.Shape())
		}
	}
}

// randomTree builds a random binary tree over distinct tables.
func randomTree(rng *rand.Rand, tables []string) *Node {
	if len(tables) == 1 {
		return Leaf(tables[0], SeqScan)
	}
	split := 1 + rng.Intn(len(tables)-1)
	return NewJoin(HashJoin, randomTree(rng, tables[:split]), randomTree(rng, tables[split:]))
}

// Property: every random tree roundtrips through its decoding
// embeddings to the same logical shape (the paper's uniqueness claim).
func TestEmbeddingRoundtripRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	names := []string{"A", "B", "C", "D", "E", "F", "G"}
	for iter := 0; iter < 200; iter++ {
		m := 2 + rng.Intn(6)
		tree := randomTree(rng, names[:m])
		width := EmbeddingWidth(8) // generously wide
		emb, err := DecodingEmbeddings(tree, width)
		if err != nil {
			t.Fatalf("iter %d encode: %v", iter, err)
		}
		back, err := TreeFromEmbeddings(emb)
		if err != nil {
			t.Fatalf("iter %d decode: %v (tree %s)", iter, err, tree.Shape())
		}
		if back.Shape() != tree.Shape() {
			t.Fatalf("iter %d: roundtrip %q != %q", iter, back.Shape(), tree.Shape())
		}
	}
}

// Property: distinct trees produce distinct embedding sets.
func TestEmbeddingsInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	names := []string{"A", "B", "C", "D", "E"}
	seen := map[string]string{} // embedding fingerprint -> shape
	for iter := 0; iter < 300; iter++ {
		m := 2 + rng.Intn(4)
		tree := randomTree(rng, names[:m])
		emb, err := DecodingEmbeddings(tree, 16)
		if err != nil {
			t.Fatal(err)
		}
		fp := ""
		for _, nm := range names[:m] {
			fp += nm + ":"
			for _, v := range emb[nm] {
				if v != 0 {
					fp += "1"
				} else {
					fp += "0"
				}
			}
			fp += ";"
		}
		if prev, ok := seen[fp]; ok && prev != tree.Shape() {
			t.Fatalf("embedding collision: %q and %q", prev, tree.Shape())
		}
		seen[fp] = tree.Shape()
	}
}

func TestDecodingEmbeddingErrors(t *testing.T) {
	// Width too small for depth.
	if _, err := DecodingEmbeddings(paperLeftDeep(), 4); err == nil {
		t.Fatal("expected width error")
	}
	// Duplicate table.
	dup := NewJoin(HashJoin, Leaf("X", SeqScan), Leaf("X", SeqScan))
	if _, err := DecodingEmbeddings(dup, 8); err == nil {
		t.Fatal("expected duplicate-table error")
	}
}

func TestTreeFromEmbeddingsErrors(t *testing.T) {
	if _, err := TreeFromEmbeddings(nil); err == nil {
		t.Fatal("expected empty error")
	}
	// Empty embedding for a table.
	if _, err := TreeFromEmbeddings(map[string][]float64{"A": {0, 0}}); err == nil {
		t.Fatal("expected empty-embedding error")
	}
	// Overlapping slots.
	if _, err := TreeFromEmbeddings(map[string][]float64{
		"A": {1, 0},
		"B": {1, 0},
	}); err == nil {
		t.Fatal("expected overlap error")
	}
	// Width mismatch.
	if _, err := TreeFromEmbeddings(map[string][]float64{
		"A": {1, 0},
		"B": {0, 1, 0, 0},
	}); err == nil {
		t.Fatal("expected width error")
	}
}

func TestEmbeddingWidth(t *testing.T) {
	if EmbeddingWidth(4) != 8 {
		t.Fatalf("EmbeddingWidth(4) = %d, want 8 (paper)", EmbeddingWidth(4))
	}
	if EmbeddingWidth(1) != 1 || EmbeddingWidth(0) != 1 {
		t.Fatal("small widths wrong")
	}
}

func TestStringAndPretty(t *testing.T) {
	n := paperBushy()
	if n.String() == "" || n.Pretty() == "" {
		t.Fatal("render empty")
	}
	if got := Leaf("x", IndexScan).String(); got != "IndexScan(x)" {
		t.Fatalf("leaf string %q", got)
	}
}

func TestPositionsOfAndPow2(t *testing.T) {
	if got := PositionsOf([]float64{0, 1, 0, 1}); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("PositionsOf wrong: %v", got)
	}
	if !IsPowerOfTwo(8) || IsPowerOfTwo(6) || IsPowerOfTwo(0) {
		t.Fatal("IsPowerOfTwo wrong")
	}
}

func TestSortedTables(t *testing.T) {
	n := NewJoin(HashJoin, Leaf("b", SeqScan), Leaf("a", SeqScan))
	got := n.SortedTables()
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("SortedTables wrong: %v", got)
	}
}
