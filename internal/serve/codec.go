// JSON wire format for the serving endpoints. The codec is strict and
// schema-aware: filter and join columns are resolved against the
// served database so values decode to the column's kind (and unknown
// tables/columns fail with the same typed errors the engine uses).
package serve

import (
	"encoding/json"
	"fmt"

	"mtmlf/internal/plan"
	"mtmlf/internal/sqldb"
)

// QueryJSON is the wire form of sqldb.Query.
type QueryJSON struct {
	Tables  []string     `json:"tables"`
	Joins   []JoinJSON   `json:"joins,omitempty"`
	Filters []FilterJSON `json:"filters,omitempty"`
}

// JoinJSON is the wire form of one equality join predicate.
type JoinJSON struct {
	T1 string `json:"t1"`
	C1 string `json:"c1"`
	T2 string `json:"t2"`
	C2 string `json:"c2"`
}

// FilterJSON is the wire form of one filter predicate. Value is a
// JSON string or number; it decodes to the column's kind.
type FilterJSON struct {
	Table string          `json:"table"`
	Col   string          `json:"col"`
	Op    string          `json:"op"`
	Value json.RawMessage `json:"value"`
}

// PlanJSON is the wire form of a plan tree: either a scan leaf
// ({"table": "t", "scan": "seq"|"index"}) or a join
// ({"join": "hash"|"merge"|"nestloop", "left": ..., "right": ...}).
type PlanJSON struct {
	Table string    `json:"table,omitempty"`
	Scan  string    `json:"scan,omitempty"`
	Join  string    `json:"join,omitempty"`
	Left  *PlanJSON `json:"left,omitempty"`
	Right *PlanJSON `json:"right,omitempty"`
}

var opByName = map[string]sqldb.Op{
	"=": sqldb.OpEq, "==": sqldb.OpEq,
	"!=": sqldb.OpNeq, "<>": sqldb.OpNeq,
	"<": sqldb.OpLt, "<=": sqldb.OpLe,
	">": sqldb.OpGt, ">=": sqldb.OpGe,
	"like": sqldb.OpLike, "LIKE": sqldb.OpLike,
}

var opNames = map[sqldb.Op]string{
	sqldb.OpEq: "=", sqldb.OpNeq: "!=",
	sqldb.OpLt: "<", sqldb.OpLe: "<=",
	sqldb.OpGt: ">", sqldb.OpGe: ">=",
	sqldb.OpLike: "like",
}

// DecodeQuery converts the wire form into an sqldb.Query, resolving
// filter value kinds against db's schema.
func DecodeQuery(db *sqldb.DB, qj *QueryJSON) (*sqldb.Query, error) {
	if qj == nil {
		return nil, fmt.Errorf("%w: missing query", ErrBadRequest)
	}
	q := &sqldb.Query{Tables: append([]string{}, qj.Tables...)}
	for _, j := range qj.Joins {
		q.Joins = append(q.Joins, sqldb.JoinEdge{T1: j.T1, C1: j.C1, T2: j.T2, C2: j.C2})
	}
	for _, f := range qj.Filters {
		flt, err := decodeFilter(db, f)
		if err != nil {
			return nil, err
		}
		q.Filters = append(q.Filters, flt)
	}
	return q, nil
}

func decodeFilter(db *sqldb.DB, f FilterJSON) (sqldb.Filter, error) {
	var out sqldb.Filter
	tab := db.Table(f.Table)
	if tab == nil {
		return out, fmt.Errorf("%w: filter table %q", ErrUnknownTable, f.Table)
	}
	col := tab.Column(f.Col)
	if col == nil {
		return out, fmt.Errorf("%w: filter column %s.%s", ErrUnknownColumn, f.Table, f.Col)
	}
	op, ok := opByName[f.Op]
	if !ok {
		return out, fmt.Errorf("%w: unknown filter operator %q", ErrBadRequest, f.Op)
	}
	val, err := decodeValue(col.Kind, f.Value)
	if err != nil {
		return out, fmt.Errorf("filter %s.%s: %w", f.Table, f.Col, err)
	}
	return sqldb.Filter{Table: f.Table, Col: f.Col, Op: op, Val: val}, nil
}

func decodeValue(kind sqldb.Kind, raw json.RawMessage) (sqldb.Value, error) {
	if len(raw) == 0 {
		return sqldb.Value{}, fmt.Errorf("%w: missing value", ErrBadRequest)
	}
	switch kind {
	case sqldb.KindString:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return sqldb.Value{}, fmt.Errorf("%w: string column wants a JSON string, got %s", ErrBadRequest, raw)
		}
		return sqldb.StrVal(s), nil
	case sqldb.KindInt:
		var i int64
		if err := json.Unmarshal(raw, &i); err != nil {
			return sqldb.Value{}, fmt.Errorf("%w: int column wants a JSON integer, got %s", ErrBadRequest, raw)
		}
		return sqldb.IntVal(i), nil
	default:
		var fl float64
		if err := json.Unmarshal(raw, &fl); err != nil {
			return sqldb.Value{}, fmt.Errorf("%w: float column wants a JSON number, got %s", ErrBadRequest, raw)
		}
		return sqldb.FloatVal(fl), nil
	}
}

// DecodePlan converts the wire form into a plan tree.
func DecodePlan(pj *PlanJSON) (*plan.Node, error) {
	if pj == nil {
		return nil, fmt.Errorf("%w: missing plan node", ErrBadRequest)
	}
	if pj.Table != "" {
		if pj.Join != "" || pj.Left != nil || pj.Right != nil {
			return nil, fmt.Errorf("%w: plan node %q is both scan and join", ErrBadRequest, pj.Table)
		}
		var op plan.ScanOp
		switch pj.Scan {
		case "", "seq":
			op = plan.SeqScan
		case "index":
			op = plan.IndexScan
		default:
			return nil, fmt.Errorf("%w: unknown scan operator %q", ErrBadRequest, pj.Scan)
		}
		return plan.Leaf(pj.Table, op), nil
	}
	if pj.Left == nil || pj.Right == nil {
		return nil, fmt.Errorf("%w: join node needs left and right children", ErrBadRequest)
	}
	var op plan.JoinOp
	switch pj.Join {
	case "", "hash":
		op = plan.HashJoin
	case "merge":
		op = plan.MergeJoin
	case "nestloop", "nl":
		op = plan.NestLoopJoin
	default:
		return nil, fmt.Errorf("%w: unknown join operator %q", ErrBadRequest, pj.Join)
	}
	l, err := DecodePlan(pj.Left)
	if err != nil {
		return nil, err
	}
	r, err := DecodePlan(pj.Right)
	if err != nil {
		return nil, err
	}
	return plan.NewJoin(op, l, r), nil
}

// EncodeQuery converts a query to the wire form (inverse of
// DecodeQuery for valid queries).
func EncodeQuery(q *sqldb.Query) *QueryJSON {
	qj := &QueryJSON{Tables: append([]string{}, q.Tables...)}
	for _, j := range q.Joins {
		qj.Joins = append(qj.Joins, JoinJSON{T1: j.T1, C1: j.C1, T2: j.T2, C2: j.C2})
	}
	for _, f := range q.Filters {
		var raw json.RawMessage
		switch f.Val.Kind {
		case sqldb.KindString:
			raw, _ = json.Marshal(f.Val.S)
		case sqldb.KindInt:
			raw, _ = json.Marshal(f.Val.I)
		default:
			raw, _ = json.Marshal(f.Val.F)
		}
		qj.Filters = append(qj.Filters, FilterJSON{Table: f.Table, Col: f.Col, Op: opNames[f.Op], Value: raw})
	}
	return qj
}

// EncodePlan converts a plan tree to the wire form.
func EncodePlan(p *plan.Node) *PlanJSON {
	if p == nil {
		return nil
	}
	if p.IsLeaf() {
		scan := "seq"
		if p.Scan == plan.IndexScan {
			scan = "index"
		}
		return &PlanJSON{Table: p.Table, Scan: scan}
	}
	join := "hash"
	switch p.Join {
	case plan.MergeJoin:
		join = "merge"
	case plan.NestLoopJoin:
		join = "nestloop"
	}
	return &PlanJSON{Join: join, Left: EncodePlan(p.Left), Right: EncodePlan(p.Right)}
}
