package serve

import (
	"errors"
	"fmt"

	"mtmlf/internal/plan"
	"mtmlf/internal/sqldb"
)

// Typed serving errors. The model layer (RepresentInfer, featurize)
// panics on malformed inputs because its callers — training loops and
// experiment harnesses — construct inputs themselves; a server cannot
// afford that contract, so Validate maps every malformed request onto
// one of these sentinels (wrapped with detail; test with errors.Is)
// before the request reaches the model.
var (
	// ErrBadRequest covers structurally invalid requests: nil query or
	// plan, no tables, duplicate tables, kind-mismatched filter values.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrUnknownTable marks a query, filter, join, or plan referencing
	// a table the served database does not have.
	ErrUnknownTable = errors.New("serve: unknown table")
	// ErrUnknownColumn marks a filter or join referencing a column its
	// table does not have.
	ErrUnknownColumn = errors.New("serve: unknown column")
	// ErrPlanMismatch marks a plan whose leaves do not cover the
	// query's tables exactly once each.
	ErrPlanMismatch = errors.New("serve: plan does not match query")
	// ErrModelLimit marks a request exceeding the model architecture's
	// bounds (more tables than Config.MaxTables supports).
	ErrModelLimit = errors.New("serve: request exceeds model limits")
	// ErrNoJoinOrder is returned when the constrained beam search has
	// no legal candidate (a disconnected join graph).
	ErrNoJoinOrder = errors.New("serve: no legal join order")
	// ErrInternal wraps a recovered panic — the backstop that keeps
	// one bad request from crashing the server.
	ErrInternal = errors.New("serve: internal error")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("serve: engine closed")
	// ErrOverloaded is the fast-shed admission rejection: the bounded
	// request queue is full and Options.ShedOverload is set. The HTTP
	// layer maps it to 429 — the client should back off and retry.
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrDeadline marks a request rejected because its deadline
	// (propagated via context / the X-Deadline-Ms header) expired
	// before a worker could admit it into a micro-batch. No model
	// compute was spent. The HTTP layer maps it to 504.
	ErrDeadline = errors.New("serve: deadline exceeded")
	// ErrReloadMismatch marks a Reload whose new model serves a
	// different database (name or table list) than the current one —
	// hot swap is for new weights, not new schemas.
	ErrReloadMismatch = errors.New("serve: reload checkpoint incompatible")
)

// Validate checks a (query, plan) pair against the served database
// and model limits, returning a typed error for every condition that
// would make the model layer panic (plus a few that would silently
// degrade, like filters on tables the query doesn't touch).
func (e *Engine) Validate(q *sqldb.Query, p *plan.Node) error {
	m := e.cur.Load().model
	db := m.Feat.DB
	if q == nil {
		return fmt.Errorf("%w: nil query", ErrBadRequest)
	}
	if p == nil {
		return fmt.Errorf("%w: nil plan", ErrBadRequest)
	}
	if len(q.Tables) == 0 {
		return fmt.Errorf("%w: query has no tables", ErrBadRequest)
	}
	if max := m.Shared.Cfg.MaxTables; len(q.Tables) > max {
		return fmt.Errorf("%w: query joins %d tables, model supports %d", ErrModelLimit, len(q.Tables), max)
	}
	inQuery := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		if db.TableIndex(t) < 0 {
			return fmt.Errorf("%w: query table %q", ErrUnknownTable, t)
		}
		if inQuery[t] {
			return fmt.Errorf("%w: duplicate query table %q", ErrBadRequest, t)
		}
		inQuery[t] = true
	}
	// Plan leaves must cover the query tables exactly once each:
	// RepresentInfer indexes the shared representation by leaf row.
	leaves := p.Tables()
	seen := make(map[string]bool, len(leaves))
	for _, t := range leaves {
		if db.TableIndex(t) < 0 {
			return fmt.Errorf("%w: plan table %q", ErrUnknownTable, t)
		}
		if !inQuery[t] {
			return fmt.Errorf("%w: plan scans %q, not a query table", ErrPlanMismatch, t)
		}
		if seen[t] {
			return fmt.Errorf("%w: plan scans %q twice", ErrPlanMismatch, t)
		}
		seen[t] = true
	}
	for _, t := range q.Tables {
		if !seen[t] {
			return fmt.Errorf("%w: query table %q missing from plan", ErrPlanMismatch, t)
		}
	}
	for _, n := range p.Nodes() {
		if n.IsLeaf() {
			if n.Scan < 0 || int(n.Scan) >= plan.NumScanOps {
				return fmt.Errorf("%w: invalid scan operator %d", ErrBadRequest, int(n.Scan))
			}
		} else if n.Join < 0 || int(n.Join) >= plan.NumJoinOps {
			return fmt.Errorf("%w: invalid join operator %d", ErrBadRequest, int(n.Join))
		}
	}
	for _, f := range q.Filters {
		if err := validateFilter(db, inQuery, f); err != nil {
			return err
		}
	}
	for _, j := range q.Joins {
		if err := validateJoin(db, inQuery, j); err != nil {
			return err
		}
	}
	return nil
}

func validateFilter(db *sqldb.DB, inQuery map[string]bool, f sqldb.Filter) error {
	if db.TableIndex(f.Table) < 0 {
		return fmt.Errorf("%w: filter table %q", ErrUnknownTable, f.Table)
	}
	if !inQuery[f.Table] {
		return fmt.Errorf("%w: filter on %q, which the query does not touch", ErrBadRequest, f.Table)
	}
	col := db.Table(f.Table).Column(f.Col)
	if col == nil {
		return fmt.Errorf("%w: filter column %s.%s", ErrUnknownColumn, f.Table, f.Col)
	}
	if f.Op < sqldb.OpEq || f.Op > sqldb.OpLike {
		return fmt.Errorf("%w: invalid filter operator %d", ErrBadRequest, int(f.Op))
	}
	if f.Val.Kind != col.Kind {
		return fmt.Errorf("%w: filter %s.%s compares %v column with %v value",
			ErrBadRequest, f.Table, f.Col, col.Kind, f.Val.Kind)
	}
	if f.Op == sqldb.OpLike && col.Kind != sqldb.KindString {
		return fmt.Errorf("%w: LIKE on non-string column %s.%s", ErrBadRequest, f.Table, f.Col)
	}
	return nil
}

func validateJoin(db *sqldb.DB, inQuery map[string]bool, j sqldb.JoinEdge) error {
	for _, side := range []struct{ t, c string }{{j.T1, j.C1}, {j.T2, j.C2}} {
		if db.TableIndex(side.t) < 0 {
			return fmt.Errorf("%w: join table %q", ErrUnknownTable, side.t)
		}
		if !inQuery[side.t] {
			return fmt.Errorf("%w: join references %q, which the query does not touch", ErrBadRequest, side.t)
		}
		if db.Table(side.t).Column(side.c) == nil {
			return fmt.Errorf("%w: join column %s.%s", ErrUnknownColumn, side.t, side.c)
		}
	}
	return nil
}
