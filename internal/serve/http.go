// HTTP/JSON front end over the Engine — what cmd/mtmlf-serve mounts.
//
// Endpoints:
//
//	POST /estimate/card  {"query": ..., "plan": ...} → {"nodes": [...], "root": ...}
//	POST /estimate/cost  same shape as /estimate/card
//	POST /joinorder      {"query": ..., "plan": ...} → {"order": [...], "logprob": ..., "legal": ...}
//	GET  /healthz        liveness + checkpoint/database identity
//	GET  /statsz         QPS, per-endpoint p50/p99, batching and pool-reuse counters
//	GET  /example        a valid random request body (for curl | POST round trips)
//
// "plan" is optional everywhere: when omitted, a left-deep
// SeqScan/HashJoin tree over the query's table order stands in (the
// paper's "existing DBMS provides the initial plan" role, without
// requiring clients to speak plan trees).
package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"

	"mtmlf/internal/plan"
	"mtmlf/internal/workload"
)

// RequestJSON is the body of every POST endpoint.
type RequestJSON struct {
	Query *QueryJSON `json:"query"`
	Plan  *PlanJSON  `json:"plan,omitempty"`
}

// EstimateJSON is the card/cost response body.
type EstimateJSON struct {
	// Nodes has one estimate per plan node in post-order.
	Nodes []float64 `json:"nodes"`
	Root  float64   `json:"root"`
	// Plan echoes the plan the estimates are for (useful when the
	// server synthesized it).
	Plan string `json:"plan"`
}

// JoinOrderJSON is the /joinorder response body.
type JoinOrderJSON struct {
	Order   []string `json:"order"`
	LogProb float64  `json:"logprob"`
	Legal   bool     `json:"legal"`
}

// HealthJSON is the /healthz response body.
type HealthJSON struct {
	Status   string `json:"status"`
	Database string `json:"database"`
	Tables   int    `json:"tables"`
	Sessions int    `json:"sessions"`
}

type errorJSON struct {
	Error string `json:"error"`
}

// NewHandler mounts the serving endpoints over e. gen, when non-nil,
// powers GET /example with random valid queries against the served
// database (guarded by a mutex: workload generators are not
// concurrency-safe).
func NewHandler(e *Engine, gen *workload.Generator) http.Handler {
	h := &handler{engine: e, gen: gen}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate/card", func(w http.ResponseWriter, r *http.Request) {
		h.estimate(w, r, EndpointCard)
	})
	mux.HandleFunc("POST /estimate/cost", func(w http.ResponseWriter, r *http.Request) {
		h.estimate(w, r, EndpointCost)
	})
	mux.HandleFunc("POST /joinorder", h.joinOrder)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /statsz", h.statsz)
	mux.HandleFunc("GET /example", h.example)
	return mux
}

type handler struct {
	engine *Engine
	genMu  sync.Mutex
	gen    *workload.Generator
}

// maxBodyBytes bounds POST bodies: the largest legitimate request (a
// deep plan over every table with many filters) is a few KB, so 1 MiB
// leaves margin while keeping an oversized body from buffering
// without bound.
const maxBodyBytes = 1 << 20

// decode parses a request body into a validated-shape (query, plan)
// pair, synthesizing a left-deep plan when none is given. Semantic
// validation happens in the engine.
func (h *handler) decode(w http.ResponseWriter, r *http.Request) (*RequestJSON, *plan.Node, error) {
	var req RequestJSON
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, errors.Join(ErrBadRequest, err)
	}
	if req.Query == nil || len(req.Query.Tables) == 0 {
		return nil, nil, errors.Join(ErrBadRequest, errors.New("missing query.tables"))
	}
	if req.Plan == nil {
		return &req, plan.LeftDeepFromOrder(req.Query.Tables, plan.SeqScan, plan.HashJoin), nil
	}
	p, err := DecodePlan(req.Plan)
	if err != nil {
		return nil, nil, err
	}
	return &req, p, nil
}

func (h *handler) estimate(w http.ResponseWriter, r *http.Request, ep Endpoint) {
	req, p, err := h.decode(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	q, err := DecodeQuery(h.engine.DB(), req.Query)
	if err != nil {
		writeError(w, err)
		return
	}
	var est *Estimate
	if ep == EndpointCard {
		est, err = h.engine.EstimateCard(q, p)
	} else {
		est, err = h.engine.EstimateCost(q, p)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateJSON{Nodes: est.Nodes, Root: est.Root, Plan: p.String()})
}

func (h *handler) joinOrder(w http.ResponseWriter, r *http.Request) {
	req, p, err := h.decode(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	q, err := DecodeQuery(h.engine.DB(), req.Query)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := h.engine.JoinOrder(q, p)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, JoinOrderJSON{Order: res.Order, LogProb: res.LogProb, Legal: res.Legal})
}

func (h *handler) healthz(w http.ResponseWriter, _ *http.Request) {
	db := h.engine.DB()
	writeJSON(w, http.StatusOK, HealthJSON{
		Status:   "ok",
		Database: db.Name,
		Tables:   len(db.Tables),
		Sessions: h.engine.opts.Sessions,
	})
}

func (h *handler) statsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.engine.Stats())
}

func (h *handler) example(w http.ResponseWriter, _ *http.Request) {
	if h.gen == nil {
		http.NotFound(w, nil)
		return
	}
	h.genMu.Lock()
	cfg := workload.DefaultConfig()
	cfg.MaxTables = 4
	q := h.gen.GenQuery(cfg)
	h.genMu.Unlock()
	writeJSON(w, http.StatusOK, RequestJSON{
		Query: EncodeQuery(q),
		Plan:  EncodePlan(plan.LeftDeepFromOrder(q.Tables, plan.SeqScan, plan.HashJoin)),
	})
}

// writeError maps the typed engine errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrInternal):
		status = http.StatusInternalServerError
	case errors.Is(err, ErrNoJoinOrder):
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
