// HTTP/JSON front end over the Engine — what cmd/mtmlf-serve mounts
// and cmd/mtmlf-loadgen drives.
//
// Endpoints:
//
//	POST /estimate/card  {"query": ..., "plan": ...} → {"nodes": [...], "root": ...}
//	POST /estimate/cost  same shape as /estimate/card
//	POST /joinorder      {"query": ..., "plan": ...} → {"order": [...], "logprob": ..., "legal": ...}
//	POST /reloadz        hot-swap the checkpoint (when a reloader is configured)
//	GET  /healthz        liveness + checkpoint/database identity
//	GET  /statsz         QPS, per-endpoint p50/p95/p99, shed/deadline/reload and pool counters
//	GET  /example        a valid random request body (for curl | POST round trips)
//
// "plan" is optional everywhere: when omitted, a left-deep
// SeqScan/HashJoin tree over the query's table order stands in (the
// paper's "existing DBMS provides the initial plan" role, without
// requiring clients to speak plan trees).
//
// Deadlines: a client may send an X-Deadline-Ms header on any POST;
// the handler turns it into a context deadline that the engine's
// scheduler honors (expired work is rejected with 504 before any
// model compute). Overload (full admission queue under
// Options.ShedOverload) returns 429 with a Retry-After hint.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"mtmlf/internal/mtmlf"
	"mtmlf/internal/plan"
	"mtmlf/internal/workload"
)

// RequestJSON is the body of every POST endpoint.
type RequestJSON struct {
	Query *QueryJSON `json:"query"`
	Plan  *PlanJSON  `json:"plan,omitempty"`
}

// EstimateJSON is the card/cost response body.
type EstimateJSON struct {
	// Nodes has one estimate per plan node in post-order.
	Nodes []float64 `json:"nodes"`
	Root  float64   `json:"root"`
	// Plan echoes the plan the estimates are for (useful when the
	// server synthesized it).
	Plan string `json:"plan"`
}

// JoinOrderJSON is the /joinorder response body.
type JoinOrderJSON struct {
	Order   []string `json:"order"`
	LogProb float64  `json:"logprob"`
	Legal   bool     `json:"legal"`
}

// HealthJSON is the /healthz response body.
type HealthJSON struct {
	Status   string `json:"status"`
	Database string `json:"database"`
	Tables   int    `json:"tables"`
	Sessions int    `json:"sessions"`
	Reloads  uint64 `json:"reloads"`
}

// ReloadJSON is the /reloadz response body.
type ReloadJSON struct {
	Status   string `json:"status"`
	Database string `json:"database"`
	Tables   int    `json:"tables"`
	// Reloads is the total number of successful swaps, this one
	// included.
	Reloads uint64 `json:"reloads"`
}

type errorJSON struct {
	Error string `json:"error"`
}

// HandlerConfig configures the optional endpoints of NewHandlerConfig.
type HandlerConfig struct {
	// Gen, when non-nil, powers GET /example with random valid queries
	// against the served database (guarded by a mutex: workload
	// generators are not concurrency-safe).
	Gen *workload.Generator
	// Reload, when non-nil, enables POST /reloadz: it loads a fresh
	// model (typically re-reading the checkpoint path from disk) which
	// the handler swaps into the engine via Engine.Reload. Calls are
	// serialized by the handler. When nil, /reloadz returns 404.
	Reload func() (*mtmlf.Model, error)
	// Ready, when non-nil, gates readiness: /healthz answers 503 while
	// it returns false (during drain, say), steering load balancers
	// away without touching liveness — GET /livez stays 200 as long as
	// the process can answer at all. Nil means always ready.
	Ready func() bool
}

// NewHandler mounts the serving endpoints over e with an example
// generator only (no reload). Kept for callers that predate
// HandlerConfig.
func NewHandler(e *Engine, gen *workload.Generator) http.Handler {
	return NewHandlerConfig(e, HandlerConfig{Gen: gen})
}

// NewHandlerConfig mounts the serving endpoints over e, wrapped in a
// recover middleware: a panicking handler answers 500 (and bumps the
// /statsz `panics` counter) instead of killing the connection — one
// poisoned request must never take the server down.
func NewHandlerConfig(e *Engine, cfg HandlerConfig) http.Handler {
	h := &handler{engine: e, gen: cfg.Gen, reload: cfg.Reload, ready: cfg.Ready}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate/card", func(w http.ResponseWriter, r *http.Request) {
		h.estimate(w, r, EndpointCard)
	})
	mux.HandleFunc("POST /estimate/cost", func(w http.ResponseWriter, r *http.Request) {
		h.estimate(w, r, EndpointCost)
	})
	mux.HandleFunc("POST /joinorder", h.joinOrder)
	mux.HandleFunc("POST /reloadz", h.reloadz)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /livez", livez)
	mux.HandleFunc("GET /statsz", h.statsz)
	mux.HandleFunc("GET /example", h.example)
	return Recover(e, mux)
}

// Recover wraps next so a panic anywhere below answers 500 (when no
// bytes have gone out yet), logs the stack, and counts into e's
// /statsz `panics` field. Exported for front ends that mount their
// own mux around the serving handlers.
func Recover(e *Engine, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackedWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				e.stats.recordPanic()
				log.Printf("serve: panic in %s %s (answered 500): %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				if !tw.wrote {
					writeJSON(tw, http.StatusInternalServerError,
						errorJSON{Error: fmt.Sprintf("internal error: %v", v)})
				}
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// trackedWriter remembers whether a response has started, so the
// recover middleware only writes a 500 when the panic struck before
// any bytes went out (headers can't be unsent).
type trackedWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackedWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackedWriter) Write(b []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

type handler struct {
	engine *Engine
	genMu  sync.Mutex
	gen    *workload.Generator
	ready  func() bool

	reloadMu sync.Mutex
	reload   func() (*mtmlf.Model, error)
}

// maxBodyBytes bounds POST bodies: the largest legitimate request (a
// deep plan over every table with many filters) is a few KB, so 1 MiB
// leaves margin while keeping an oversized body from buffering
// without bound.
const maxBodyBytes = 1 << 20

// decode parses a request body into a validated-shape (query, plan)
// pair, synthesizing a left-deep plan when none is given. Semantic
// validation happens in the engine.
func (h *handler) decode(w http.ResponseWriter, r *http.Request) (*RequestJSON, *plan.Node, error) {
	var req RequestJSON
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, errors.Join(ErrBadRequest, err)
	}
	if req.Query == nil || len(req.Query.Tables) == 0 {
		return nil, nil, errors.Join(ErrBadRequest, errors.New("missing query.tables"))
	}
	if req.Plan == nil {
		return &req, plan.LeftDeepFromOrder(req.Query.Tables, plan.SeqScan, plan.HashJoin), nil
	}
	p, err := DecodePlan(req.Plan)
	if err != nil {
		return nil, nil, err
	}
	return &req, p, nil
}

// DeadlineHeader is the request header carrying the client's latency
// budget in integer milliseconds. The handler converts it into a
// context deadline; the scheduler refuses to spend model compute on
// work that has already missed it.
const DeadlineHeader = "X-Deadline-Ms"

// requestContext derives the engine context for one POST: the HTTP
// request's context (so a disconnected client cancels queued work),
// tightened by X-Deadline-Ms when present.
func requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	hdr := r.Header.Get(DeadlineHeader)
	if hdr == "" {
		return r.Context(), func() {}, nil
	}
	ms, err := strconv.ParseInt(hdr, 10, 64)
	if err != nil || ms <= 0 {
		return nil, nil, fmt.Errorf("%w: %s must be a positive integer, got %q", ErrBadRequest, DeadlineHeader, hdr)
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
	return ctx, cancel, nil
}

func (h *handler) estimate(w http.ResponseWriter, r *http.Request, ep Endpoint) {
	req, p, err := h.decode(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	q, err := DecodeQuery(h.engine.DB(), req.Query)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	var est *Estimate
	if ep == EndpointCard {
		est, err = h.engine.EstimateCardCtx(ctx, q, p)
	} else {
		est, err = h.engine.EstimateCostCtx(ctx, q, p)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateJSON{Nodes: est.Nodes, Root: est.Root, Plan: p.String()})
}

func (h *handler) joinOrder(w http.ResponseWriter, r *http.Request) {
	req, p, err := h.decode(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	q, err := DecodeQuery(h.engine.DB(), req.Query)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	res, err := h.engine.JoinOrderCtx(ctx, q, p)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, JoinOrderJSON{Order: res.Order, LogProb: res.LogProb, Legal: res.Legal})
}

// reloadz hot-swaps the served checkpoint. Loading happens outside
// the engine (the reloader re-reads the checkpoint from disk); the
// swap itself is atomic and in-flight batches drain on the old model
// — see Engine.Reload.
func (h *handler) reloadz(w http.ResponseWriter, _ *http.Request) {
	if h.reload == nil {
		http.NotFound(w, nil)
		return
	}
	h.reloadMu.Lock()
	defer h.reloadMu.Unlock()
	m, err := h.reload()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error()})
		return
	}
	if err := h.engine.Reload(m); err != nil {
		writeError(w, err)
		return
	}
	db := h.engine.DB()
	writeJSON(w, http.StatusOK, ReloadJSON{
		Status:   "ok",
		Database: db.Name,
		Tables:   len(db.Tables),
		Reloads:  h.engine.Stats().Reloads,
	})
}

// healthz is READINESS: 503 while the Ready hook says the process
// should not receive traffic (draining, still booting behind a
// placeholder handler). Liveness is /livez.
func (h *handler) healthz(w http.ResponseWriter, _ *http.Request) {
	db := h.engine.DB()
	status, code := "ok", http.StatusOK
	if h.ready != nil && !h.ready() {
		status, code = "unavailable", http.StatusServiceUnavailable
	}
	writeJSON(w, code, HealthJSON{
		Status:   status,
		Database: db.Name,
		Tables:   len(db.Tables),
		Sessions: h.engine.opts.Sessions,
		Reloads:  h.engine.Stats().Reloads,
	})
}

// livez is LIVENESS: 200 whenever the process can answer HTTP at all.
// A supervisor restarts on failing /livez and merely unroutes on
// failing /healthz.
func livez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"alive"})
}

func (h *handler) statsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.engine.Stats())
}

func (h *handler) example(w http.ResponseWriter, _ *http.Request) {
	if h.gen == nil {
		http.NotFound(w, nil)
		return
	}
	h.genMu.Lock()
	cfg := workload.DefaultConfig()
	cfg.MaxTables = 4
	q := h.gen.GenQuery(cfg)
	h.genMu.Unlock()
	writeJSON(w, http.StatusOK, RequestJSON{
		Query: EncodeQuery(q),
		Plan:  EncodePlan(plan.LeftDeepFromOrder(q.Tables, plan.SeqScan, plan.HashJoin)),
	})
}

// writeError maps the typed engine errors onto HTTP statuses: 429
// (overload shed, with a Retry-After hint), 504 (deadline missed
// before admission), 409 (reload schema mismatch), 503 (closed), 500
// (recovered panic), 422 (no legal join order), 400 (everything
// malformed).
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDeadline):
		status = http.StatusGatewayTimeout
	case errors.Is(err, ErrReloadMismatch):
		status = http.StatusConflict
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrInternal):
		status = http.StatusInternalServerError
	case errors.Is(err, ErrNoJoinOrder):
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
