package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"mtmlf/internal/datagen"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/workload"
)

// postJSONDeadline is postJSON with an X-Deadline-Ms header attached.
func postJSONDeadline(t *testing.T, url, deadline string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, deadline)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHTTPDeadlineHeader: a malformed or non-positive X-Deadline-Ms
// is a 400 before any model work; a generous one serves normally.
func TestHTTPDeadlineHeader(t *testing.T) {
	srv, qs, done := testServer(t)
	defer done()
	body := RequestJSON{Query: EncodeQuery(qs[0].Q), Plan: EncodePlan(qs[0].Plan)}

	for _, bad := range []string{"abc", "-5", "0", "1.5"} {
		resp := postJSONDeadline(t, srv.URL+"/estimate/card", bad, body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("deadline %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	resp := postJSONDeadline(t, srv.URL+"/estimate/card", "60000", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generous deadline: status %d, want 200", resp.StatusCode)
	}
}

// TestHTTPReloadzUnconfigured: handlers built without a reloader
// (NewHandler) 404 on /reloadz.
func TestHTTPReloadzUnconfigured(t *testing.T) {
	srv, _, done := testServer(t)
	defer done()
	resp, err := http.Post(srv.URL+"/reloadz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/reloadz without a reloader: status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPReloadz: a configured reloader swaps the checkpoint — the
// response and /healthz report the swap, and estimates served
// afterwards are bitwise those of the new weights. Reloader failures
// surface as 500 (load error) and 409 (incompatible checkpoint)
// without disturbing the served model.
func TestHTTPReloadz(t *testing.T) {
	m1, qs := testModel(t)
	db := m1.Feat.DB
	cfg := mtmlf.DefaultConfig()
	cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
	cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
	m2 := mtmlf.NewModel(cfg, db, 21)
	gen := workload.NewGenerator(db, 22)
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 4
	m2.Feat.PretrainAll(gen, 5, 1, wcfg)
	want2 := serialExpected(m2, qs)

	e, err := NewEngine(m1, Options{Sessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	var nextModel *mtmlf.Model = m2
	var nextErr error
	srv := httptest.NewServer(NewHandlerConfig(e, HandlerConfig{
		Gen:    workload.NewGenerator(db, 99),
		Reload: func() (*mtmlf.Model, error) { return nextModel, nextErr },
	}))
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/reloadz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/reloadz: status %d, want 200", resp.StatusCode)
	}
	rj := decodeBody[ReloadJSON](t, resp)
	if rj.Status != "ok" || rj.Reloads != 1 || rj.Database != db.Name {
		t.Fatalf("/reloadz body: %+v", rj)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hj := decodeBody[HealthJSON](t, resp); hj.Reloads != 1 {
		t.Fatalf("/healthz reloads = %d, want 1", hj.Reloads)
	}

	// Estimates now come from the new weights, exactly.
	body := RequestJSON{Query: EncodeQuery(qs[0].Q), Plan: EncodePlan(qs[0].Plan)}
	resp = postJSON(t, srv.URL+"/estimate/card", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/estimate/card after reload: status %d", resp.StatusCode)
	}
	cj := decodeBody[EstimateJSON](t, resp)
	sameFloats(t, "card after reload", cj.Nodes, want2[0].cards)

	// Reloader load failure → 500, model untouched.
	nextErr = errors.New("disk gone")
	resp = postJSON(t, srv.URL+"/reloadz", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing reloader: status %d, want 500", resp.StatusCode)
	}

	// Incompatible checkpoint → 409, model untouched.
	nextErr = nil
	otherDB := datagen.GenerateFleet(7, 1, datagen.DefaultConfig())[0]
	nextModel = mtmlf.NewModel(cfg, otherDB, 5)
	resp = postJSON(t, srv.URL+"/reloadz", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("incompatible reload: status %d, want 409", resp.StatusCode)
	}

	resp = postJSON(t, srv.URL+"/estimate/card", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/estimate/card after failed reloads: status %d", resp.StatusCode)
	}
	cj = decodeBody[EstimateJSON](t, resp)
	sameFloats(t, "card after failed reloads", cj.Nodes, want2[0].cards)
}
