package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"mtmlf/internal/mtmlf"
	"mtmlf/internal/workload"
)

func testServer(t *testing.T) (*httptest.Server, []*workload.LabeledQuery, func()) {
	t.Helper()
	m, qs := testModel(t)
	e, err := NewEngine(m, Options{Sessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(m.Feat.DB, 99)
	srv := httptest.NewServer(NewHandler(e, gen))
	return srv, qs, func() { srv.Close(); e.Close() }
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestHTTPEstimateAndJoinOrder drives the three POST endpoints with a
// real workload query and checks the payloads line up with the plan.
func TestHTTPEstimateAndJoinOrder(t *testing.T) {
	srv, qs, done := testServer(t)
	defer done()
	lq := qs[0]
	req := RequestJSON{Query: EncodeQuery(lq.Q), Plan: EncodePlan(lq.Plan)}

	for _, ep := range []string{"/estimate/card", "/estimate/cost"} {
		resp := postJSON(t, srv.URL+ep, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", ep, resp.StatusCode)
		}
		est := decodeBody[EstimateJSON](t, resp)
		if len(est.Nodes) != len(lq.Plan.Nodes()) {
			t.Fatalf("%s: %d nodes, plan has %d", ep, len(est.Nodes), len(lq.Plan.Nodes()))
		}
		if est.Root != est.Nodes[len(est.Nodes)-1] || est.Root < 1 {
			t.Fatalf("%s: bad root %v", ep, est.Root)
		}
		if est.Plan == "" {
			t.Fatalf("%s: missing plan echo", ep)
		}
	}

	resp := postJSON(t, srv.URL+"/joinorder", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/joinorder: status %d", resp.StatusCode)
	}
	jo := decodeBody[JoinOrderJSON](t, resp)
	if len(jo.Order) != len(lq.Q.Tables) || !jo.Legal {
		t.Fatalf("/joinorder: %+v", jo)
	}

	// Plan omitted: the server synthesizes a left-deep tree.
	resp = postJSON(t, srv.URL+"/joinorder", RequestJSON{Query: EncodeQuery(lq.Q)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/joinorder without plan: status %d", resp.StatusCode)
	}
}

// TestHTTPErrors maps typed errors onto statuses.
func TestHTTPErrors(t *testing.T) {
	srv, _, done := testServer(t)
	defer done()

	resp := postJSON(t, srv.URL+"/estimate/card", RequestJSON{Query: &QueryJSON{Tables: []string{"nope"}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown table: status %d", resp.StatusCode)
	}
	e := decodeBody[errorJSON](t, resp)
	if !strings.Contains(e.Error, "unknown table") {
		t.Fatalf("error body %q", e.Error)
	}

	resp = postJSON(t, srv.URL+"/estimate/card", map[string]any{"bogus": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Oversized bodies are rejected instead of buffered without bound.
	big := bytes.Repeat([]byte("x"), 2<<20)
	resp, err := http.Post(srv.URL+"/estimate/card", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	r, err := http.Get(srv.URL + "/estimate/card")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on POST endpoint: status %d", r.StatusCode)
	}
	r.Body.Close()
}

// TestHTTPHealthStatsExample covers the GET endpoints, including the
// /example → POST round trip the smoke test curls.
func TestHTTPHealthStatsExample(t *testing.T) {
	srv, qs, done := testServer(t)
	defer done()

	r, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decodeBody[HealthJSON](t, r)
	if h.Status != "ok" || h.Tables == 0 || h.Sessions == 0 {
		t.Fatalf("healthz %+v", h)
	}

	// Generate some traffic, then check /statsz reflects it.
	lq := qs[0]
	postJSON(t, srv.URL+"/estimate/card", RequestJSON{Query: EncodeQuery(lq.Q), Plan: EncodePlan(lq.Plan)}).Body.Close()
	r, err = http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	snap := decodeBody[StatsSnapshot](t, r)
	if snap.Requests == 0 || snap.Card.Requests == 0 {
		t.Fatalf("statsz counted nothing: %+v", snap)
	}
	if snap.Pool.Gets == 0 || snap.Pool.ReuseRate <= 0 {
		t.Fatalf("pool counters empty: %+v", snap.Pool)
	}

	// /example emits a valid request body for every POST endpoint.
	r, err = http.Get(srv.URL + "/example")
	if err != nil {
		t.Fatal(err)
	}
	ex := decodeBody[RequestJSON](t, r)
	if ex.Query == nil || len(ex.Query.Tables) == 0 || ex.Plan == nil {
		t.Fatalf("example %+v", ex)
	}
	for _, ep := range []string{"/estimate/card", "/estimate/cost", "/joinorder"} {
		resp := postJSON(t, srv.URL+ep, ex)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("example request rejected by %s: status %d", ep, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestHTTPRecoverPanic: a panicking handler answers 500 with an error
// body, bumps the /statsz panics counter, and leaves the server fully
// functional — one poisoned request never takes the process down.
func TestHTTPRecoverPanic(t *testing.T) {
	m, _ := testModel(t)
	e, err := NewEngine(m, Options{Sessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	srv := httptest.NewServer(NewHandlerConfig(e, HandlerConfig{
		Reload: func() (*mtmlf.Model, error) { panic("injected reload panic") },
	}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/reloadz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", resp.StatusCode)
	}
	body := decodeBody[errorJSON](t, resp)
	if !strings.Contains(body.Error, "injected reload panic") {
		t.Fatalf("error body %q lacks panic value", body.Error)
	}

	r, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	snap := decodeBody[StatsSnapshot](t, r)
	if snap.Panics != 1 {
		t.Fatalf("statsz panics = %d, want 1", snap.Panics)
	}

	// The server survived: health still answers.
	r, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: status %d", r.StatusCode)
	}
	r.Body.Close()
}

// TestHTTPReadinessSplit: with a Ready hook, /healthz flips between
// 200 and 503 while /livez stays 200 — the drain/boot contract load
// balancers key off.
func TestHTTPReadinessSplit(t *testing.T) {
	m, _ := testModel(t)
	e, err := NewEngine(m, Options{Sessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var ready atomic.Bool
	srv := httptest.NewServer(NewHandlerConfig(e, HandlerConfig{Ready: ready.Load}))
	defer srv.Close()

	get := func(path string) (int, HealthJSON) {
		t.Helper()
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return r.StatusCode, decodeBody[HealthJSON](t, r)
	}

	code, h := get("/healthz")
	if code != http.StatusServiceUnavailable || h.Status != "unavailable" {
		t.Fatalf("not-ready healthz: status %d body %+v", code, h)
	}
	if code, h = get("/livez"); code != http.StatusOK || h.Status != "alive" {
		t.Fatalf("livez while not ready: status %d body %+v", code, h)
	}

	ready.Store(true)
	if code, h = get("/healthz"); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("ready healthz: status %d body %+v", code, h)
	}

	ready.Store(false) // drain begins
	if code, _ = get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", code)
	}
	if code, _ = get("/livez"); code != http.StatusOK {
		t.Fatalf("livez while draining: status %d, want 200", code)
	}
}

// TestCodecRoundTrip: Encode∘Decode is the identity on queries and
// plans the workload generator produces.
func TestCodecRoundTrip(t *testing.T) {
	m, qs := testModel(t)
	for _, lq := range qs {
		q2, err := DecodeQuery(m.Feat.DB, EncodeQuery(lq.Q))
		if err != nil {
			t.Fatal(err)
		}
		if q2.String() != lq.Q.String() {
			t.Fatalf("query round trip:\n  %s\n  %s", lq.Q, q2)
		}
		p2, err := DecodePlan(EncodePlan(lq.Plan))
		if err != nil {
			t.Fatal(err)
		}
		if p2.String() != lq.Plan.String() {
			t.Fatalf("plan round trip:\n  %s\n  %s", lq.Plan, p2)
		}
	}
}
