package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mtmlf/internal/datagen"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/workload"
)

// TestEngineShedsWhenQueueFull: with ShedOverload on and the queue at
// capacity, a submit must fast-fail with ErrOverloaded instead of
// blocking. Uses a worker-less engine so the queue deterministically
// fills (a live worker on a small machine can drain sends as fast as
// the scheduler hands them over, making a burst race flaky).
func TestEngineShedsWhenQueueFull(t *testing.T) {
	m, qs := testModel(t)
	e := newIdleEngine(t, m, Options{Sessions: 1, QueueDepth: 1, ShedOverload: true})

	queued := make(chan error, 1)
	go func() {
		// Fills the queue, then blocks awaiting a result that no
		// worker will produce; released by Close below.
		_, err := e.EstimateCard(qs[0].Q, qs[0].Plan)
		queued <- err
	}()
	waitFor(t, func() bool { return len(e.reqs) == 1 })

	if _, err := e.EstimateCard(qs[0].Q, qs[0].Plan); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit against a full queue got %v, want ErrOverloaded", err)
	}
	snap := e.Stats()
	if snap.Shed != 1 {
		t.Fatalf("stats counted %d shed, want 1", snap.Shed)
	}
	if snap.QueueDepth != 1 || snap.MaxQueue != 1 {
		t.Fatalf("stats queue %d/%d, want 1/1", snap.QueueDepth, snap.MaxQueue)
	}

	e.Close()
	if err := <-queued; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued request got %v after Close, want ErrClosed", err)
	}
}

// TestEngineShedBurstServesAdmitted: a 64-way burst against a live
// depth-1 queue with shedding on. Every outcome must be either a
// bitwise-correct response or a clean ErrOverloaded — never a hang,
// a mixed result, or another error — and the shed counter must agree.
func TestEngineShedBurstServesAdmitted(t *testing.T) {
	m, qs := testModel(t)
	want := serialExpected(m, qs)
	e, err := NewEngine(m, Options{
		Sessions:     1,
		MaxBatch:     1,
		QueueDepth:   1,
		ShedOverload: true,
		BatchWindow:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const burst = 64
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		mu    sync.Mutex
		ok    int
		shed  int
	)
	start.Add(1)
	errs := make(chan error, burst)
	for g := 0; g < burst; g++ {
		done.Add(1)
		go func(g int) {
			defer done.Done()
			start.Wait() // fire the whole burst at once
			i := g % len(qs)
			res, err := e.EstimateCard(qs[i].Q, qs[i].Plan)
			switch {
			case err == nil:
				for j := range res.Nodes {
					if res.Nodes[j] != want[i].cards[j] {
						errs <- errors.New("admitted request diverged from serial")
						return
					}
				}
				mu.Lock()
				ok++
				mu.Unlock()
			case errors.Is(err, ErrOverloaded):
				mu.Lock()
				shed++
				mu.Unlock()
			default:
				errs <- err
			}
		}(g)
	}
	start.Done()
	done.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ok == 0 {
		t.Fatal("every request shed; expected at least the queued one to serve")
	}
	if ok+shed != burst {
		t.Fatalf("ok %d + shed %d != %d", ok, shed, burst)
	}
	if snap := e.Stats(); snap.Shed != uint64(shed) {
		t.Fatalf("stats counted %d shed, callers saw %d", snap.Shed, shed)
	}
}

// waitFor polls cond for up to a second.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 1s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineDeadlineExpiredAtSubmit: a context whose deadline has
// already passed is rejected before the request ever queues.
func TestEngineDeadlineExpiredAtSubmit(t *testing.T) {
	m, qs := testModel(t)
	e, err := NewEngine(m, Options{Sessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := e.EstimateCardCtx(ctx, qs[0].Q, qs[0].Plan); !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
	if snap := e.Stats(); snap.DeadlineMisses != 1 {
		t.Fatalf("stats counted %d deadline misses, want 1", snap.DeadlineMisses)
	}
	// A generous deadline still serves.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if _, err := e.EstimateCardCtx(ctx2, qs[0].Q, qs[0].Plan); err != nil {
		t.Fatalf("generous deadline failed: %v", err)
	}
}

// newIdleEngine builds an Engine with zero workers so the admission
// path can be driven deterministically (requests stay queued until
// the test pulls them through admit/fill itself).
func newIdleEngine(t *testing.T, m *mtmlf.Model, opts Options) *Engine {
	t.Helper()
	opts = opts.withDefaults()
	e := &Engine{
		opts:  opts,
		reqs:  make(chan *request, opts.QueueDepth),
		stats: newStats(opts.Sessions),
		quit:  make(chan struct{}),
	}
	e.cur.Store(newServed(m, opts.Precision))
	return e
}

// TestEngineDeadlineRejectedBeforeBatchAdmission: a queued request
// whose deadline lapses before a worker picks it up is answered with
// ErrDeadline at admission — no session, no model compute — and a
// batch fill skips expired stragglers the same way.
func TestEngineDeadlineRejectedBeforeBatchAdmission(t *testing.T) {
	m, qs := testModel(t)
	e := newIdleEngine(t, m, Options{Sessions: 1, MaxBatch: 4, BatchWindow: -1})

	expired := &request{
		ep: EndpointCard, q: qs[0].Q, p: qs[0].Plan,
		start: time.Now(), deadline: time.Now().Add(-time.Millisecond),
		done: make(chan result, 1),
	}
	if e.admit(expired) {
		t.Fatal("admit accepted an expired request")
	}
	res := <-expired.done
	if !errors.Is(res.err, ErrDeadline) {
		t.Fatalf("expired request got %v, want ErrDeadline", res.err)
	}
	if snap := e.Stats(); snap.DeadlineMisses != 1 {
		t.Fatalf("stats counted %d deadline misses, want 1", snap.DeadlineMisses)
	}

	// fill must exclude an expired straggler from the batch and answer
	// it, while keeping the live ones.
	live := &request{ep: EndpointCard, q: qs[0].Q, p: qs[0].Plan, start: time.Now(), done: make(chan result, 1)}
	lateStraggler := &request{
		ep: EndpointCard, q: qs[1%len(qs)].Q, p: qs[1%len(qs)].Plan,
		start: time.Now(), deadline: time.Now().Add(-time.Millisecond),
		done: make(chan result, 1),
	}
	e.reqs <- lateStraggler
	batch := e.fill(live)
	if len(batch) != 1 || batch[0] != live {
		t.Fatalf("fill admitted %d requests, want just the live one", len(batch))
	}
	res = <-lateStraggler.done
	if !errors.Is(res.err, ErrDeadline) {
		t.Fatalf("straggler got %v, want ErrDeadline", res.err)
	}
}

// TestEngineFillWindowCappedByDeadline: a batch holding a
// tight-deadline request must not wait the full BatchWindow for fill
// — the wait is capped by the request's remaining slack.
func TestEngineFillWindowCappedByDeadline(t *testing.T) {
	m, qs := testModel(t)
	e := newIdleEngine(t, m, Options{Sessions: 1, MaxBatch: 8, BatchWindow: time.Hour})

	slack := 20 * time.Millisecond
	first := &request{
		ep: EndpointCard, q: qs[0].Q, p: qs[0].Plan,
		start: time.Now(), deadline: time.Now().Add(slack),
		done: make(chan result, 1),
	}
	t0 := time.Now()
	batch := e.fill(first)
	waited := time.Since(t0)
	if len(batch) != 1 {
		t.Fatalf("fill returned %d requests, want 1", len(batch))
	}
	// An hour-long window must collapse to ~slack. Generous upper
	// bound for slow CI machines.
	if waited > 10*slack {
		t.Fatalf("fill waited %v with only %v of deadline slack", waited, slack)
	}
}

// TestEngineReloadValidates: incompatible models are refused and the
// old model keeps serving.
func TestEngineReloadValidates(t *testing.T) {
	m, qs := testModel(t)
	e, err := NewEngine(m, Options{Sessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if err := e.Reload(nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("nil reload got %v, want ErrBadRequest", err)
	}
	// A model over a structurally different database must be refused.
	otherDB := datagen.GenerateFleet(3, 1, datagen.DefaultConfig())[0]
	cfg := mtmlf.DefaultConfig()
	cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
	cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
	other := mtmlf.NewModel(cfg, otherDB, 5)
	if err := e.Reload(other); !errors.Is(err, ErrReloadMismatch) {
		t.Fatalf("cross-database reload got %v, want ErrReloadMismatch", err)
	}
	// Old model still serves.
	if _, err := e.EstimateCard(qs[0].Q, qs[0].Plan); err != nil {
		t.Fatalf("engine broken after rejected reloads: %v", err)
	}
	if snap := e.Stats(); snap.Reloads != 0 {
		t.Fatalf("rejected reloads counted: %d", snap.Reloads)
	}
}

// TestEngineReloadWhileServing is the -race drill of the ISSUE: many
// goroutines hammer the engine while another flips between two
// checkpoints. Every response must be bitwise identical to one
// model's serial answer IN FULL — a response mixing old and new
// weights would match neither — and no request may fail.
func TestEngineReloadWhileServing(t *testing.T) {
	db := datagen.SyntheticIMDB(5, 0.05)
	build := func(modelSeed, genSeed int64) *mtmlf.Model {
		cfg := mtmlf.DefaultConfig()
		cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
		cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
		m := mtmlf.NewModel(cfg, db, modelSeed)
		gen := workload.NewGenerator(db, genSeed)
		wcfg := workload.DefaultConfig()
		wcfg.MaxTables = 4
		m.Feat.PretrainAll(gen, 5, 1, wcfg)
		return m
	}
	m1 := build(11, 12)
	m2 := build(21, 22)
	gen := workload.NewGenerator(db, 12)
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 4
	qs := gen.Generate(6, wcfg)
	want1 := serialExpected(m1, qs)
	want2 := serialExpected(m2, qs)

	e, err := NewEngine(m1, Options{Sessions: 4, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	stop := make(chan struct{})
	var reloader sync.WaitGroup
	reloader.Add(1)
	go func() {
		defer reloader.Done()
		models := [2]*mtmlf.Model{m2, m1}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Reload(models[i%2]); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	eqF := func(got, want []float64) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	eqS := func(got, want []string) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	const goroutines, iters = 8, 30
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(qs)
				lq := qs[i]
				switch (g + it) % 3 {
				case 0:
					res, err := e.EstimateCard(lq.Q, lq.Plan)
					if err != nil {
						errs <- err
						return
					}
					if !eqF(res.Nodes, want1[i].cards) && !eqF(res.Nodes, want2[i].cards) {
						errs <- errors.New("card response matches neither checkpoint (mixed weights?)")
						return
					}
				case 1:
					res, err := e.EstimateCost(lq.Q, lq.Plan)
					if err != nil {
						errs <- err
						return
					}
					if !eqF(res.Nodes, want1[i].costs) && !eqF(res.Nodes, want2[i].costs) {
						errs <- errors.New("cost response matches neither checkpoint (mixed weights?)")
						return
					}
				default:
					res, err := e.JoinOrder(lq.Q, lq.Plan)
					if err != nil {
						errs <- err
						return
					}
					if !eqS(res.Order, want1[i].order) && !eqS(res.Order, want2[i].order) {
						errs <- errors.New("join order matches neither checkpoint")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	reloader.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := e.Stats()
	if snap.Requests != goroutines*iters {
		t.Fatalf("served %d requests, want %d (none may be dropped across reloads)", snap.Requests, goroutines*iters)
	}
	if snap.Errors != 0 {
		t.Fatalf("%d requests failed during reloads, want 0", snap.Errors)
	}
	if snap.Reloads == 0 {
		t.Fatal("reloader never swapped")
	}
}
