package serve

import (
	"testing"

	"mtmlf/internal/datagen"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/nn"
	"mtmlf/internal/workload"
)

// TestEnginePrecisionTiers: a reduced-precision engine must answer
// bitwise identically to the lowered model's serial fast path (the
// within-tier determinism contract), and its join orders must equal
// the float64 reference orders (the cross-tier calibration contract —
// identity, not closeness, because the decoder runs at f64 in every
// tier).
func TestEnginePrecisionTiers(t *testing.T) {
	m, qs := testModel(t)
	ref := serialExpected(m, qs)
	for _, p := range []nn.Precision{nn.PrecisionF32, nn.PrecisionInt8} {
		t.Run(p.String(), func(t *testing.T) {
			lm := m.Lower(p)
			e, err := NewEngine(m, Options{Sessions: 2, MaxBatch: 4, Precision: p})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			if got := e.Stats().Precision; got != p.String() {
				t.Fatalf("statsz precision = %q, want %q", got, p)
			}
			for i, lq := range qs {
				card, err := e.EstimateCard(lq.Q, lq.Plan)
				if err != nil {
					t.Fatal(err)
				}
				sameFloats(t, "card", card.Nodes, lm.EstimateNodeCards(lq))
				cost, err := e.EstimateCost(lq.Q, lq.Plan)
				if err != nil {
					t.Fatal(err)
				}
				sameFloats(t, "cost", cost.Nodes, lm.EstimateNodeCosts(lq))
				jo, err := e.JoinOrder(lq.Q, lq.Plan)
				if err != nil {
					t.Fatal(err)
				}
				sameStrings(t, "order vs lowered", jo.Order, lm.InferJoinOrder(lq.Q, lq.Plan))
				sameStrings(t, "order vs f64", jo.Order, ref[i].order)
				if !jo.Legal {
					t.Fatal("constrained search returned illegal order")
				}
			}
		})
	}
}

// TestEngineReloadReLowers: a Reload into a reduced-precision engine
// must serve the NEW weights lowered — answers after the swap must
// match the new model's lowered serial path, not the old replica.
func TestEngineReloadReLowers(t *testing.T) {
	db := datagen.SyntheticIMDB(5, 0.05)
	build := func(modelSeed, genSeed int64) *mtmlf.Model {
		cfg := mtmlf.DefaultConfig()
		cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
		cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
		m := mtmlf.NewModel(cfg, db, modelSeed)
		gen := workload.NewGenerator(db, genSeed)
		wcfg := workload.DefaultConfig()
		wcfg.MaxTables = 4
		m.Feat.PretrainAll(gen, 5, 1, wcfg)
		return m
	}
	m1 := build(11, 12)
	m2 := build(21, 22)
	gen := workload.NewGenerator(db, 12)
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 4
	qs := gen.Generate(3, wcfg)

	e, err := NewEngine(m1, Options{Sessions: 1, Precision: nn.PrecisionF32})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Reload(m2); err != nil {
		t.Fatal(err)
	}
	lm2 := m2.Lower(nn.PrecisionF32)
	for _, lq := range qs {
		card, err := e.EstimateCard(lq.Q, lq.Plan)
		if err != nil {
			t.Fatal(err)
		}
		sameFloats(t, "card after reload", card.Nodes, lm2.EstimateNodeCards(lq))
	}
}
