// Package serve is the concurrent inference engine over the mtmlf
// no-grad fast path — the layer a DBMS would call (or front with the
// mtmlf-serve HTTP server) to consume a pretrained full-model
// checkpoint.
//
// Architecture: a bounded pool of session workers, each owning one
// inference session per batch (one ag.Eval checked out of the
// process-wide evaluator pool via AcquireEval, released — and with it
// every pooled tensor — when the batch completes). Requests funnel
// through one queue; a worker that picks up a request drains up to
// MaxBatch-1 more within BatchWindow and serves them as a micro-batch:
// each request's (F)+(S) representation runs in the shared session,
// and the cardinality/cost head projections of the whole batch fuse
// into single kernel dispatches over the row-concatenated node
// representations. The kernels compute every output row independently
// with a fixed accumulation order (see tensor/matmul.go), so each
// request's slice of the fused result is BITWISE identical to a solo
// forward — concurrency and batching never perturb a served number
// (asserted by the -race equivalence tests).
//
// Error boundary: the model layer panics on malformed inputs (unknown
// tables, plans that don't cover the query). Engine validates every
// request up front and returns typed errors (ErrUnknownTable,
// ErrPlanMismatch, ...) instead; a recover() backstop converts any
// surviving panic into ErrInternal so one bad request cannot take
// down the server.
package serve

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"mtmlf/internal/ag"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/plan"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
)

// Options configures an Engine.
type Options struct {
	// Sessions is the number of concurrent session workers (and so the
	// maximum number of in-flight inference sessions). 0 means
	// GOMAXPROCS.
	Sessions int
	// MaxBatch is the maximum number of requests fused into one
	// micro-batch (and one session). 0 means 8; 1 disables batching.
	MaxBatch int
	// BatchWindow is how long a worker holding a non-full batch waits
	// for more requests before serving. 0 means 200µs; negative means
	// never wait (batches still form from queue backlog).
	BatchWindow time.Duration
	// QueueDepth bounds the request queue. 0 means 4*Sessions.
	QueueDepth int
}

func (o Options) withDefaults() Options {
	if o.Sessions <= 0 {
		o.Sessions = runtime.GOMAXPROCS(0)
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 8
	}
	if o.MaxBatch < 1 {
		o.MaxBatch = 1
	}
	if o.BatchWindow == 0 {
		o.BatchWindow = 200 * time.Microsecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Sessions
	}
	return o
}

// Endpoint identifies one of the three serving APIs in stats.
type Endpoint int

// Endpoints.
const (
	EndpointCard Endpoint = iota
	EndpointCost
	EndpointJoinOrder
	numEndpoints
)

// String implements fmt.Stringer.
func (ep Endpoint) String() string {
	switch ep {
	case EndpointCard:
		return "card"
	case EndpointCost:
		return "cost"
	default:
		return "joinorder"
	}
}

// Estimate is a cardinality or cost answer: one value per plan node
// in post-order (aligned with plan.Node.Nodes()), Root being the
// whole-plan value.
type Estimate struct {
	Nodes []float64
	Root  float64
}

// JoinOrderResult is a join-order answer.
type JoinOrderResult struct {
	// Order lists the tables in predicted join sequence.
	Order []string
	// LogProb is the sequence log-probability under the model.
	LogProb float64
	// Legal reports whether every prefix is connected in the query's
	// join graph (always true for the constrained search unless the
	// query itself is disconnected).
	Legal bool
}

type result struct {
	nodes []float64
	order JoinOrderResult
	err   error
}

type request struct {
	ep    Endpoint
	q     *sqldb.Query
	p     *plan.Node
	start time.Time
	done  chan result
}

// Engine is the concurrent serving front end over one model. Safe for
// concurrent use by any number of goroutines.
type Engine struct {
	model *mtmlf.Model
	opts  Options
	reqs  chan *request
	stats *stats

	wg        sync.WaitGroup
	quit      chan struct{}
	closeOnce sync.Once
}

// NewEngine starts Sessions workers over the model. The model's
// weights are read-only from here on: training concurrently with
// serving is a data race.
func NewEngine(m *mtmlf.Model, opts Options) (*Engine, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil model", ErrBadRequest)
	}
	if n, max := len(m.Feat.DB.Tables), m.Shared.Cfg.MaxTables; n > max {
		return nil, fmt.Errorf("%w: database has %d tables, model supports %d", ErrModelLimit, n, max)
	}
	opts = opts.withDefaults()
	e := &Engine{
		model: m,
		opts:  opts,
		reqs:  make(chan *request, opts.QueueDepth),
		stats: newStats(opts.Sessions),
		quit:  make(chan struct{}),
	}
	e.wg.Add(opts.Sessions)
	for i := 0; i < opts.Sessions; i++ {
		go e.worker()
	}
	return e, nil
}

// Model returns the served model (read-only).
func (e *Engine) Model() *mtmlf.Model { return e.model }

// DB returns the served database schema (read-only).
func (e *Engine) DB() *sqldb.DB { return e.model.Feat.DB }

// Close stops the workers. In-flight requests finish; subsequent
// calls return ErrClosed.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.quit) })
	e.wg.Wait()
}

// EstimateCard predicts the cardinality of every node of plan p for
// query q (post-order; Root is the result-size estimate).
func (e *Engine) EstimateCard(q *sqldb.Query, p *plan.Node) (*Estimate, error) {
	return e.estimate(EndpointCard, q, p)
}

// EstimateCost predicts the cumulative cost of every node of plan p.
func (e *Engine) EstimateCost(q *sqldb.Query, p *plan.Node) (*Estimate, error) {
	return e.estimate(EndpointCost, q, p)
}

// JoinOrder predicts the join order for q via legality-constrained
// beam search over the leaf representations of p.
func (e *Engine) JoinOrder(q *sqldb.Query, p *plan.Node) (*JoinOrderResult, error) {
	res, err := e.submit(EndpointJoinOrder, q, p)
	if err != nil {
		return nil, err
	}
	return &res.order, nil
}

func (e *Engine) estimate(ep Endpoint, q *sqldb.Query, p *plan.Node) (*Estimate, error) {
	res, err := e.submit(ep, q, p)
	if err != nil {
		return nil, err
	}
	return &Estimate{Nodes: res.nodes, Root: res.nodes[len(res.nodes)-1]}, nil
}

func (e *Engine) submit(ep Endpoint, q *sqldb.Query, p *plan.Node) (result, error) {
	if err := e.Validate(q, p); err != nil {
		e.stats.recordError()
		return result{}, err
	}
	r := &request{ep: ep, q: q, p: p, start: time.Now(), done: make(chan result, 1)}
	select {
	case e.reqs <- r:
	case <-e.quit:
		return result{}, ErrClosed
	}
	select {
	case res := <-r.done:
		if res.err != nil {
			e.stats.recordError()
			return result{}, res.err
		}
		e.stats.record(ep, time.Since(r.start))
		return res, nil
	case <-e.quit:
		// The engine may still complete the request; don't leave the
		// caller hanging on a closed engine.
		select {
		case res := <-r.done:
			if res.err == nil {
				return res, nil
			}
			return result{}, res.err
		default:
			return result{}, ErrClosed
		}
	}
}

// worker is one session loop: pick up a request, fill a micro-batch,
// serve it from a freshly checked-out evaluator session.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		var first *request
		select {
		case first = <-e.reqs:
		case <-e.quit:
			return
		}
		e.runBatch(e.fill(first))
	}
}

// fill drains the queue (bounded by MaxBatch and BatchWindow) to form
// a micro-batch around the first request.
func (e *Engine) fill(first *request) []*request {
	batch := []*request{first}
	if e.opts.MaxBatch <= 1 {
		return batch
	}
	var window <-chan time.Time
	if e.opts.BatchWindow > 0 {
		t := time.NewTimer(e.opts.BatchWindow)
		defer t.Stop()
		window = t.C
	}
	for len(batch) < e.opts.MaxBatch {
		select {
		case r := <-e.reqs:
			batch = append(batch, r)
			continue
		default:
		}
		if window == nil {
			break
		}
		select {
		case r := <-e.reqs:
			batch = append(batch, r)
		case <-window:
			return batch
		}
	}
	return batch
}

// runBatch serves one micro-batch inside one inference session. The
// session's Eval (and every pooled tensor of the batch) is released
// at the end — see DESIGN.md "Session ownership".
func (e *Engine) runBatch(batch []*request) {
	ev := ag.AcquireEval()
	defer ag.ReleaseEval(ev)

	reps := make([]*mtmlf.InferRep, len(batch))
	for i, r := range batch {
		reps[i] = e.represent(ev, r)
	}
	e.runHeads(ev, EndpointCard, batch, reps)
	e.runHeads(ev, EndpointCost, batch, reps)
	for i, r := range batch {
		if r.ep == EndpointJoinOrder && reps[i] != nil {
			e.runJoinOrder(r, reps[i])
		}
	}
	e.stats.recordBatch(len(batch))
}

// represent computes one request's shared representation in the
// session, converting any surviving model panic into ErrInternal
// (validation should have caught everything typed).
func (e *Engine) represent(ev *ag.Eval, r *request) (rep *mtmlf.InferRep) {
	defer func() {
		if p := recover(); p != nil {
			rep = nil
			r.done <- result{err: fmt.Errorf("%w: %v", ErrInternal, p)}
		}
	}()
	return e.model.RepresentInfer(ev, r.q, r.p)
}

// runHeads fuses one head over every batch request of the given kind:
// a single MLP dispatch over the row-concatenated node
// representations. Each request's rows are computed independently by
// the kernels, so its slice is bitwise identical to a solo forward.
func (e *Engine) runHeads(ev *ag.Eval, ep Endpoint, batch []*request, reps []*mtmlf.InferRep) {
	var idx []int
	var ss []*tensor.Tensor
	for i, r := range batch {
		if r.ep == ep && reps[i] != nil {
			idx = append(idx, i)
			ss = append(ss, reps[i].S)
		}
	}
	if len(idx) == 0 {
		return
	}
	// delivered counts responses already sent; the panic backstop
	// must error only the undelivered suffix — done channels hold one
	// buffered result, so a second send to an answered request would
	// block this worker forever.
	delivered := 0
	defer func() {
		if p := recover(); p != nil {
			err := fmt.Errorf("%w: %v", ErrInternal, p)
			for _, i := range idx[delivered:] {
				batch[i].done <- result{err: err}
			}
		}
	}()
	fused := ss[0]
	if len(ss) > 1 {
		fused = ev.ConcatRows(ss...)
	}
	head := e.model.Shared.CardHead
	if ep == EndpointCost {
		head = e.model.Shared.CostHead
	}
	out := head.Infer(ev, fused) // [total nodes, 1]
	row := 0
	for _, i := range idx {
		nRows := reps[i].S.Rows()
		// ExpClamp copies into a fresh slice, so no pooled memory
		// escapes the session.
		batch[i].done <- result{nodes: mtmlf.ExpClamp(out.Data[row : row+nRows])}
		delivered++
		row += nRows
	}
}

// runJoinOrder serves one join-order request from its representation
// (KV-cached constrained beam search, same as the serial fast path).
func (e *Engine) runJoinOrder(r *request, rep *mtmlf.InferRep) {
	defer func() {
		if p := recover(); p != nil {
			r.done <- result{err: fmt.Errorf("%w: %v", ErrInternal, p)}
		}
	}()
	res := e.model.Shared.JO.BeamSearchTensor(rep.Memory, r.q, e.model.Shared.Cfg.BeamWidth, true)
	best, ok := mtmlf.BestBeam(res)
	if !ok {
		r.done <- result{err: fmt.Errorf("%w: join graph admits no connected order", ErrNoJoinOrder)}
		return
	}
	r.done <- result{order: JoinOrderResult{
		Order:   best.OrderTables(rep.Tables),
		LogProb: best.LogProb,
		Legal:   best.Legal,
	}}
}

// Stats returns a snapshot of the engine's serving metrics.
func (e *Engine) Stats() StatsSnapshot { return e.stats.snapshot() }
