// Package serve is the concurrent inference engine over the mtmlf
// no-grad fast path — the layer a DBMS would call (or front with the
// mtmlf-serve HTTP server) to consume a pretrained full-model
// checkpoint, and the layer mtmlf-loadgen is built to saturate.
//
// Architecture: a bounded pool of session workers, each owning one
// inference session per batch (one ag.Eval checked out of the
// process-wide evaluator pool via AcquireEval, released — and with it
// every pooled tensor — when the batch completes). Requests funnel
// through one bounded queue; a worker that picks up a request drains
// up to MaxBatch-1 more within BatchWindow and serves them as a
// micro-batch: each request's (F)+(S) representation runs in the
// shared session, and the cardinality/cost head projections of the
// whole batch fuse into single kernel dispatches over the
// row-concatenated node representations. The kernels compute every
// output row independently with a fixed accumulation order (see
// tensor/matmul.go), so each request's slice of the fused result is
// BITWISE identical to a solo forward — concurrency and batching
// never perturb a served number (asserted by the -race equivalence
// tests).
//
// Admission control: the queue is the only buffer in the system. In
// the default (blocking) mode a full queue applies backpressure to
// the caller; with Options.ShedOverload a full queue fails the
// request immediately with ErrOverloaded instead — the fast-429 path
// an HTTP front end wants, because a bounded wait is worth more to a
// query optimizer than an unbounded queue (see docs/OPERATIONS.md
// for sizing guidance).
//
// Deadlines: the *Ctx request methods propagate the caller's context
// deadline (mtmlf-serve derives one from the X-Deadline-Ms header)
// into the scheduler. A request whose deadline has already expired is
// rejected with ErrDeadline at submit; a worker re-checks at batch
// admission, so compute is never spent on an answer nobody can use,
// and a batch never waits for fill past the earliest deadline it
// already holds.
//
// Hot reload: Reload atomically swaps in a new model for the same
// database. Each micro-batch snapshots the model pointer exactly once
// at pickup, so every response is computed entirely under one set of
// weights — in-flight batches drain on the old model while new
// batches run on the new one, with zero dropped requests (asserted by
// the -race reload test).
//
// Error boundary: the model layer panics on malformed inputs (unknown
// tables, plans that don't cover the query). Engine validates every
// request up front and returns typed errors (ErrUnknownTable,
// ErrPlanMismatch, ...) instead; a recover() backstop converts any
// surviving panic into ErrInternal so one bad request cannot take
// down the server.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mtmlf/internal/ag"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/nn"
	"mtmlf/internal/plan"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/tensor"
)

// Options configures an Engine.
type Options struct {
	// Sessions is the number of concurrent session workers (and so the
	// maximum number of in-flight inference sessions). 0 means
	// GOMAXPROCS.
	Sessions int
	// MaxBatch is the maximum number of requests fused into one
	// micro-batch (and one session). 0 means 8; 1 disables batching.
	MaxBatch int
	// BatchWindow is how long a worker holding a non-full batch waits
	// for more requests before serving. 0 means 200µs; negative means
	// never wait (batches still form from queue backlog).
	BatchWindow time.Duration
	// QueueDepth bounds the request queue. 0 means 4*Sessions.
	QueueDepth int
	// ShedOverload selects the admission policy for a full queue:
	// false (default) blocks the caller until a slot frees
	// (backpressure — the right call for in-process embedding), true
	// fails fast with ErrOverloaded (the right call for an HTTP front
	// end, which maps it to 429).
	ShedOverload bool
	// Precision selects the serving tier (DESIGN.md §9). The zero
	// value serves the float64 reference path; PrecisionF32 and
	// PrecisionInt8 serve a lowered replica built at engine
	// construction (and rebuilt on every Reload). Reduced tiers trade
	// calibrated accuracy — q-error budgets enforced by internal/calib
	// — for throughput and resident bytes; join orders are decoded at
	// f64 in every tier.
	Precision nn.Precision
}

func (o Options) withDefaults() Options {
	if o.Sessions <= 0 {
		o.Sessions = runtime.GOMAXPROCS(0)
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 8
	}
	if o.MaxBatch < 1 {
		o.MaxBatch = 1
	}
	if o.BatchWindow == 0 {
		o.BatchWindow = 200 * time.Microsecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Sessions
	}
	return o
}

// Endpoint identifies one of the three serving APIs in stats.
type Endpoint int

// Endpoints.
const (
	EndpointCard Endpoint = iota
	EndpointCost
	EndpointJoinOrder
	numEndpoints
)

// String implements fmt.Stringer.
func (ep Endpoint) String() string {
	switch ep {
	case EndpointCard:
		return "card"
	case EndpointCost:
		return "cost"
	default:
		return "joinorder"
	}
}

// Estimate is a cardinality or cost answer: one value per plan node
// in post-order (aligned with plan.Node.Nodes()), Root being the
// whole-plan value.
type Estimate struct {
	Nodes []float64
	Root  float64
}

// JoinOrderResult is a join-order answer.
type JoinOrderResult struct {
	// Order lists the tables in predicted join sequence.
	Order []string
	// LogProb is the sequence log-probability under the model.
	LogProb float64
	// Legal reports whether every prefix is connected in the query's
	// join graph (always true for the constrained search unless the
	// query itself is disconnected).
	Legal bool
}

type result struct {
	nodes []float64
	order JoinOrderResult
	err   error
}

type request struct {
	ep    Endpoint
	q     *sqldb.Query
	p     *plan.Node
	start time.Time
	// deadline is the wall-clock point after which the answer is
	// useless to the caller; zero means none. Checked at submit and
	// re-checked at batch admission.
	deadline time.Time
	done     chan result
}

// expired reports whether the request's deadline has passed at now.
func (r *request) expired(now time.Time) bool {
	return !r.deadline.IsZero() && !now.Before(r.deadline)
}

// served bundles everything one micro-batch needs to be consistent: a
// model and (at reduced precision) the replica lowered from it. A
// Reload builds a fresh bundle and swaps the one pointer, so a batch
// that snapshotted the old bundle keeps a matching model/replica pair.
type served struct {
	model *mtmlf.Model
	// lowered is the reduced-precision replica (nil at PrecisionF64).
	lowered *mtmlf.LoweredModel
}

// newServed lowers m to p (a no-op bundle at PrecisionF64).
func newServed(m *mtmlf.Model, p nn.Precision) *served {
	s := &served{model: m}
	if p != nn.PrecisionF64 {
		s.lowered = m.Lower(p)
	}
	return s
}

// Engine is the concurrent serving front end over one hot-swappable
// model. Safe for concurrent use by any number of goroutines.
type Engine struct {
	// cur is the currently served model bundle. Workers snapshot it
	// once per micro-batch, so a Reload never mixes weights inside one
	// response (or one batch).
	cur   atomic.Pointer[served]
	opts  Options
	reqs  chan *request
	stats *stats

	wg        sync.WaitGroup
	quit      chan struct{}
	closeOnce sync.Once
}

// NewEngine starts Sessions workers over the model. The model's
// weights are read-only from here on: training concurrently with
// serving is a data race. Replace the model with Reload.
func NewEngine(m *mtmlf.Model, opts Options) (*Engine, error) {
	if err := checkModel(m); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	e := &Engine{
		opts:  opts,
		reqs:  make(chan *request, opts.QueueDepth),
		stats: newStats(opts.Sessions),
		quit:  make(chan struct{}),
	}
	e.cur.Store(newServed(m, opts.Precision))
	e.wg.Add(opts.Sessions)
	for i := 0; i < opts.Sessions; i++ {
		go e.worker()
	}
	return e, nil
}

// checkModel validates a model for serving (construction and reload
// share it).
func checkModel(m *mtmlf.Model) error {
	if m == nil {
		return fmt.Errorf("%w: nil model", ErrBadRequest)
	}
	if n, max := len(m.Feat.DB.Tables), m.Shared.Cfg.MaxTables; n > max {
		return fmt.Errorf("%w: database has %d tables, model supports %d", ErrModelLimit, n, max)
	}
	return nil
}

// Reload atomically swaps in a new model. The new model must serve
// the same database (same table list, in order) as the current one:
// queued requests were validated against that schema and must stay
// valid under the new weights. In-flight micro-batches finish on the
// old model; batches picked up after Reload returns run entirely on
// the new one. No request is ever dropped or served from a mix.
func (e *Engine) Reload(m *mtmlf.Model) error {
	if err := checkModel(m); err != nil {
		return err
	}
	old := e.cur.Load()
	if err := sameTables(old.model.Feat.DB, m.Feat.DB); err != nil {
		return err
	}
	// Re-lower before the swap: the engine's precision is fixed at
	// construction, so the new weights must arrive already lowered.
	e.cur.Store(newServed(m, e.opts.Precision))
	e.stats.recordReload()
	return nil
}

// sameTables checks that two databases expose the identical table
// list (the reload compatibility contract).
func sameTables(old, new *sqldb.DB) error {
	if old.Name != new.Name {
		return fmt.Errorf("%w: checkpoint is for database %q, serving %q", ErrReloadMismatch, new.Name, old.Name)
	}
	if len(old.Tables) != len(new.Tables) {
		return fmt.Errorf("%w: checkpoint has %d tables, serving %d", ErrReloadMismatch, len(new.Tables), len(old.Tables))
	}
	for i := range old.Tables {
		if old.Tables[i].Name != new.Tables[i].Name {
			return fmt.Errorf("%w: table %d is %q in checkpoint, %q in serving schema",
				ErrReloadMismatch, i, new.Tables[i].Name, old.Tables[i].Name)
		}
	}
	return nil
}

// Model returns the currently served model (read-only; may change
// across calls if Reload runs concurrently).
func (e *Engine) Model() *mtmlf.Model { return e.cur.Load().model }

// Precision returns the serving tier the engine was built with.
func (e *Engine) Precision() nn.Precision { return e.opts.Precision }

// LoweredParamBytes returns the resident parameter bytes of whatever
// is actually answering requests: the lowered replica at reduced
// precision, the float64 model otherwise.
func (e *Engine) LoweredParamBytes() int {
	s := e.cur.Load()
	if s.lowered != nil {
		return s.lowered.ParamBytes()
	}
	return s.model.ParamBytes()
}

// DB returns the served database schema (read-only; stable across
// reloads by the Reload contract).
func (e *Engine) DB() *sqldb.DB { return e.cur.Load().model.Feat.DB }

// Close stops the workers. In-flight requests finish; subsequent
// calls return ErrClosed.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.quit) })
	e.wg.Wait()
}

// EstimateCard predicts the cardinality of every node of plan p for
// query q (post-order; Root is the result-size estimate).
func (e *Engine) EstimateCard(q *sqldb.Query, p *plan.Node) (*Estimate, error) {
	return e.EstimateCardCtx(context.Background(), q, p)
}

// EstimateCost predicts the cumulative cost of every node of plan p.
func (e *Engine) EstimateCost(q *sqldb.Query, p *plan.Node) (*Estimate, error) {
	return e.EstimateCostCtx(context.Background(), q, p)
}

// JoinOrder predicts the join order for q via legality-constrained
// beam search over the leaf representations of p.
func (e *Engine) JoinOrder(q *sqldb.Query, p *plan.Node) (*JoinOrderResult, error) {
	return e.JoinOrderCtx(context.Background(), q, p)
}

// EstimateCardCtx is EstimateCard with the context's deadline
// propagated into the scheduler: expired work is rejected with
// ErrDeadline instead of computed.
func (e *Engine) EstimateCardCtx(ctx context.Context, q *sqldb.Query, p *plan.Node) (*Estimate, error) {
	return e.estimate(ctx, EndpointCard, q, p)
}

// EstimateCostCtx is EstimateCost with deadline propagation.
func (e *Engine) EstimateCostCtx(ctx context.Context, q *sqldb.Query, p *plan.Node) (*Estimate, error) {
	return e.estimate(ctx, EndpointCost, q, p)
}

// JoinOrderCtx is JoinOrder with deadline propagation.
func (e *Engine) JoinOrderCtx(ctx context.Context, q *sqldb.Query, p *plan.Node) (*JoinOrderResult, error) {
	res, err := e.submit(ctx, EndpointJoinOrder, q, p)
	if err != nil {
		return nil, err
	}
	return &res.order, nil
}

func (e *Engine) estimate(ctx context.Context, ep Endpoint, q *sqldb.Query, p *plan.Node) (*Estimate, error) {
	res, err := e.submit(ctx, ep, q, p)
	if err != nil {
		return nil, err
	}
	return &Estimate{Nodes: res.nodes, Root: res.nodes[len(res.nodes)-1]}, nil
}

// submit validates, admits, and awaits one request. Admission is
// where overload and dead-on-arrival work is rejected — before any
// model compute is spent on it.
func (e *Engine) submit(ctx context.Context, ep Endpoint, q *sqldb.Query, p *plan.Node) (result, error) {
	if err := e.Validate(q, p); err != nil {
		e.stats.recordError()
		return result{}, err
	}
	r := &request{ep: ep, q: q, p: p, start: time.Now(), done: make(chan result, 1)}
	if dl, ok := ctx.Deadline(); ok {
		r.deadline = dl
		if r.expired(r.start) {
			e.stats.recordDeadlineMiss()
			return result{}, fmt.Errorf("%w: deadline expired before admission", ErrDeadline)
		}
	}
	if e.opts.ShedOverload {
		select {
		case e.reqs <- r:
		case <-e.quit:
			return result{}, ErrClosed
		default:
			e.stats.recordShed()
			return result{}, fmt.Errorf("%w: queue full (%d deep)", ErrOverloaded, e.opts.QueueDepth)
		}
	} else {
		select {
		case e.reqs <- r:
		case <-e.quit:
			return result{}, ErrClosed
		case <-ctx.Done():
			e.stats.recordDeadlineMiss()
			return result{}, fmt.Errorf("%w: %v while queued", ErrDeadline, ctx.Err())
		}
	}
	select {
	case res := <-r.done:
		if res.err != nil {
			e.stats.recordError()
			return result{}, res.err
		}
		e.stats.record(ep, time.Since(r.start))
		return res, nil
	case <-e.quit:
		// The engine may still complete the request; don't leave the
		// caller hanging on a closed engine.
		select {
		case res := <-r.done:
			if res.err == nil {
				return res, nil
			}
			return result{}, res.err
		default:
			return result{}, ErrClosed
		}
	}
}

// worker is one session loop: pick up a request, fill a micro-batch,
// serve it from a freshly checked-out evaluator session. The model is
// snapshotted once per batch, so a concurrent Reload never splits a
// batch (or a response) across two weight sets.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		var first *request
		select {
		case first = <-e.reqs:
		case <-e.quit:
			return
		}
		if !e.admit(first) {
			continue
		}
		e.runBatch(e.cur.Load(), e.fill(first))
	}
}

// admit is the batch-admission deadline gate: a request that has
// already missed its deadline is answered with ErrDeadline (without
// spending a session on it) and excluded from the batch.
func (e *Engine) admit(r *request) bool {
	if r.expired(time.Now()) {
		e.stats.recordDeadlineMiss()
		r.done <- result{err: fmt.Errorf("%w: deadline expired in queue", ErrDeadline)}
		return false
	}
	return true
}

// fill drains the queue (bounded by MaxBatch and BatchWindow) to form
// a micro-batch around the first request. The fill wait never extends
// past the earliest deadline already admitted: a batch must not make
// its own members late.
func (e *Engine) fill(first *request) []*request {
	batch := []*request{first}
	if e.opts.MaxBatch <= 1 {
		return batch
	}
	wait := e.opts.BatchWindow
	if !first.deadline.IsZero() {
		if slack := time.Until(first.deadline); slack < wait {
			wait = slack
		}
	}
	var window <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		window = t.C
	}
	for len(batch) < e.opts.MaxBatch {
		select {
		case r := <-e.reqs:
			if e.admit(r) {
				batch = append(batch, r)
			}
			continue
		default:
		}
		if window == nil {
			break
		}
		select {
		case r := <-e.reqs:
			if e.admit(r) {
				batch = append(batch, r)
			}
		case <-window:
			return batch
		}
	}
	return batch
}

// runBatch serves one micro-batch inside one inference session
// against one model-bundle snapshot, dispatching on the serving tier.
// The session's evaluator (and every pooled tensor of the batch) is
// released at the end — see DESIGN.md "Session ownership".
func (e *Engine) runBatch(s *served, batch []*request) {
	if s.lowered != nil {
		e.runBatchF32(s.lowered, batch)
		return
	}
	m := s.model
	ev := ag.AcquireEval()
	defer ag.ReleaseEval(ev)

	reps := make([]*mtmlf.InferRep, len(batch))
	for i, r := range batch {
		reps[i] = e.represent(m, ev, r)
	}
	e.runHeads(m, ev, EndpointCard, batch, reps)
	e.runHeads(m, ev, EndpointCost, batch, reps)
	for i, r := range batch {
		if r.ep == EndpointJoinOrder && reps[i] != nil {
			e.runJoinOrder(m, r, reps[i])
		}
	}
	e.stats.recordBatch(len(batch))
}

// runBatchF32 is runBatch's reduced-precision twin: same fused-head
// batching, same panic/delivery discipline, running on the EvalF32
// session over the lowered replica.
func (e *Engine) runBatchF32(lm *mtmlf.LoweredModel, batch []*request) {
	ev := ag.AcquireEvalF32()
	defer ag.ReleaseEvalF32(ev)

	reps := make([]*mtmlf.InferRepF32, len(batch))
	for i, r := range batch {
		reps[i] = e.representF32(lm, ev, r)
	}
	e.runHeadsF32(lm, ev, EndpointCard, batch, reps)
	e.runHeadsF32(lm, ev, EndpointCost, batch, reps)
	for i, r := range batch {
		if r.ep == EndpointJoinOrder && reps[i] != nil {
			e.runJoinOrderF32(lm, r, reps[i])
		}
	}
	e.stats.recordBatch(len(batch))
}

// represent computes one request's shared representation in the
// session, converting any surviving model panic into ErrInternal
// (validation should have caught everything typed).
func (e *Engine) represent(m *mtmlf.Model, ev *ag.Eval, r *request) (rep *mtmlf.InferRep) {
	defer func() {
		if p := recover(); p != nil {
			rep = nil
			r.done <- result{err: fmt.Errorf("%w: %v", ErrInternal, p)}
		}
	}()
	return m.RepresentInfer(ev, r.q, r.p)
}

// runHeads fuses one head over every batch request of the given kind:
// a single MLP dispatch over the row-concatenated node
// representations. Each request's rows are computed independently by
// the kernels, so its slice is bitwise identical to a solo forward.
func (e *Engine) runHeads(m *mtmlf.Model, ev *ag.Eval, ep Endpoint, batch []*request, reps []*mtmlf.InferRep) {
	var idx []int
	var ss []*tensor.Tensor
	for i, r := range batch {
		if r.ep == ep && reps[i] != nil {
			idx = append(idx, i)
			ss = append(ss, reps[i].S)
		}
	}
	if len(idx) == 0 {
		return
	}
	// delivered counts responses already sent; the panic backstop
	// must error only the undelivered suffix — done channels hold one
	// buffered result, so a second send to an answered request would
	// block this worker forever.
	delivered := 0
	defer func() {
		if p := recover(); p != nil {
			err := fmt.Errorf("%w: %v", ErrInternal, p)
			for _, i := range idx[delivered:] {
				batch[i].done <- result{err: err}
			}
		}
	}()
	fused := ss[0]
	if len(ss) > 1 {
		fused = ev.ConcatRows(ss...)
	}
	head := m.Shared.CardHead
	if ep == EndpointCost {
		head = m.Shared.CostHead
	}
	out := head.Infer(ev, fused) // [total nodes, 1]
	row := 0
	for _, i := range idx {
		nRows := reps[i].S.Rows()
		// ExpClamp copies into a fresh slice, so no pooled memory
		// escapes the session.
		batch[i].done <- result{nodes: mtmlf.ExpClamp(out.Data[row : row+nRows])}
		delivered++
		row += nRows
	}
}

// representF32 is represent's reduced-precision twin.
func (e *Engine) representF32(lm *mtmlf.LoweredModel, ev *ag.EvalF32, r *request) (rep *mtmlf.InferRepF32) {
	defer func() {
		if p := recover(); p != nil {
			rep = nil
			r.done <- result{err: fmt.Errorf("%w: %v", ErrInternal, p)}
		}
	}()
	return lm.RepresentInfer(ev, r.q, r.p)
}

// runHeadsF32 fuses one lowered head over every batch request of the
// given kind, with the same delivered-counting panic backstop as
// runHeads. ExpClamp32 copies into fresh float64 slices, so no pooled
// f32 memory escapes the session.
func (e *Engine) runHeadsF32(lm *mtmlf.LoweredModel, ev *ag.EvalF32, ep Endpoint, batch []*request, reps []*mtmlf.InferRepF32) {
	var idx []int
	var ss []*tensor.F32
	for i, r := range batch {
		if r.ep == ep && reps[i] != nil {
			idx = append(idx, i)
			ss = append(ss, reps[i].S)
		}
	}
	if len(idx) == 0 {
		return
	}
	delivered := 0
	defer func() {
		if p := recover(); p != nil {
			err := fmt.Errorf("%w: %v", ErrInternal, p)
			for _, i := range idx[delivered:] {
				batch[i].done <- result{err: err}
			}
		}
	}()
	fused := ss[0]
	if len(ss) > 1 {
		fused = ev.ConcatRows(ss...)
	}
	head := lm.CardHead
	if ep == EndpointCost {
		head = lm.CostHead
	}
	out := head.Infer(ev, fused) // [total nodes, 1]
	row := 0
	for _, i := range idx {
		nRows := reps[i].S.Rows()
		batch[i].done <- result{nodes: mtmlf.ExpClamp32(out.Data[row : row+nRows])}
		delivered++
		row += nRows
	}
}

// runJoinOrderF32 serves one join-order request from a lowered
// representation: the [m, Dim] memory is up-converted once and decoded
// by the source model's float64 Trans_JO (join orders are identical
// across tiers by the calibration contract, not merely close).
func (e *Engine) runJoinOrderF32(lm *mtmlf.LoweredModel, r *request, rep *mtmlf.InferRepF32) {
	defer func() {
		if p := recover(); p != nil {
			r.done <- result{err: fmt.Errorf("%w: %v", ErrInternal, p)}
		}
	}()
	mem := rep.Memory.ToTensor()
	res := lm.Src.Shared.JO.BeamSearchTensor(mem, r.q, lm.Src.Shared.Cfg.BeamWidth, true)
	best, ok := mtmlf.BestBeam(res)
	if !ok {
		r.done <- result{err: fmt.Errorf("%w: join graph admits no connected order", ErrNoJoinOrder)}
		return
	}
	r.done <- result{order: JoinOrderResult{
		Order:   best.OrderTables(rep.Tables),
		LogProb: best.LogProb,
		Legal:   best.Legal,
	}}
}

// runJoinOrder serves one join-order request from its representation
// (KV-cached constrained beam search, same as the serial fast path).
func (e *Engine) runJoinOrder(m *mtmlf.Model, r *request, rep *mtmlf.InferRep) {
	defer func() {
		if p := recover(); p != nil {
			r.done <- result{err: fmt.Errorf("%w: %v", ErrInternal, p)}
		}
	}()
	res := m.Shared.JO.BeamSearchTensor(rep.Memory, r.q, m.Shared.Cfg.BeamWidth, true)
	best, ok := mtmlf.BestBeam(res)
	if !ok {
		r.done <- result{err: fmt.Errorf("%w: join graph admits no connected order", ErrNoJoinOrder)}
		return
	}
	r.done <- result{order: JoinOrderResult{
		Order:   best.OrderTables(rep.Tables),
		LogProb: best.LogProb,
		Legal:   best.Legal,
	}}
}

// Stats returns a snapshot of the engine's serving metrics.
func (e *Engine) Stats() StatsSnapshot {
	snap := e.stats.snapshot(len(e.reqs), e.opts.QueueDepth)
	snap.Precision = e.opts.Precision.String()
	return snap
}
