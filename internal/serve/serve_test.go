package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mtmlf/internal/ag"
	"mtmlf/internal/datagen"
	"mtmlf/internal/mtmlf"
	"mtmlf/internal/plan"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/workload"
)

// testModel builds a small pretrained model and workload (mirrors
// mtmlf's tinySetup; untrained task heads are fine — the serving
// tests assert numeric identity, not quality).
func testModel(t testing.TB) (*mtmlf.Model, []*workload.LabeledQuery) {
	t.Helper()
	db := datagen.SyntheticIMDB(5, 0.05)
	cfg := mtmlf.DefaultConfig()
	cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
	cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
	m := mtmlf.NewModel(cfg, db, 11)
	gen := workload.NewGenerator(db, 12)
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 4
	m.Feat.PretrainAll(gen, 5, 1, wcfg)
	return m, gen.Generate(6, wcfg)
}

type expected struct {
	cards []float64
	costs []float64
	order []string
}

func serialExpected(m *mtmlf.Model, qs []*workload.LabeledQuery) []expected {
	out := make([]expected, len(qs))
	for i, lq := range qs {
		out[i] = expected{
			cards: m.EstimateNodeCards(lq),
			costs: m.EstimateNodeCosts(lq),
			order: m.InferJoinOrder(lq.Q, lq.Plan),
		}
	}
	return out
}

func sameFloats(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: %v != %v (not bitwise)", what, i, got[i], want[i])
		}
	}
}

func sameStrings(t *testing.T, what string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %v, want %v", what, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: %v, want %v", what, got, want)
		}
	}
}

// TestEngineMatchesSerialBitwise: every engine answer must equal the
// single-threaded fast path exactly.
func TestEngineMatchesSerialBitwise(t *testing.T) {
	m, qs := testModel(t)
	want := serialExpected(m, qs)
	e, err := NewEngine(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i, lq := range qs {
		card, err := e.EstimateCard(lq.Q, lq.Plan)
		if err != nil {
			t.Fatal(err)
		}
		sameFloats(t, "card", card.Nodes, want[i].cards)
		if card.Root != want[i].cards[len(want[i].cards)-1] {
			t.Fatal("root misaligned")
		}
		cost, err := e.EstimateCost(lq.Q, lq.Plan)
		if err != nil {
			t.Fatal(err)
		}
		sameFloats(t, "cost", cost.Nodes, want[i].costs)
		jo, err := e.JoinOrder(lq.Q, lq.Plan)
		if err != nil {
			t.Fatal(err)
		}
		sameStrings(t, "order", jo.Order, want[i].order)
		if !jo.Legal {
			t.Fatal("constrained search returned illegal order")
		}
	}
}

// TestEngineConcurrentBitwise is the -race test of the ISSUE: many
// goroutines hammer one engine (and so one shared model) with mixed
// requests; every answer must be bitwise identical to the serial fast
// path.
func TestEngineConcurrentBitwise(t *testing.T) {
	m, qs := testModel(t)
	want := serialExpected(m, qs)
	e, err := NewEngine(m, Options{Sessions: 4, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const goroutines, iters = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(qs)
				lq := qs[i]
				switch (g + it) % 3 {
				case 0:
					res, err := e.EstimateCard(lq.Q, lq.Plan)
					if err != nil {
						errs <- err
						return
					}
					for j := range res.Nodes {
						if res.Nodes[j] != want[i].cards[j] {
							errs <- errors.New("concurrent card diverged from serial")
							return
						}
					}
				case 1:
					res, err := e.EstimateCost(lq.Q, lq.Plan)
					if err != nil {
						errs <- err
						return
					}
					for j := range res.Nodes {
						if res.Nodes[j] != want[i].costs[j] {
							errs <- errors.New("concurrent cost diverged from serial")
							return
						}
					}
				default:
					res, err := e.JoinOrder(lq.Q, lq.Plan)
					if err != nil {
						errs <- err
						return
					}
					if len(res.Order) != len(want[i].order) {
						errs <- errors.New("concurrent order length diverged")
						return
					}
					for j := range res.Order {
						if res.Order[j] != want[i].order[j] {
							errs <- errors.New("concurrent order diverged from serial")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := e.Stats()
	if got := snap.Requests; got != goroutines*iters {
		t.Fatalf("stats counted %d requests, want %d", got, goroutines*iters)
	}
}

// TestNoGradAndBeamSearchConcurrentDirect drives the raw fast-path
// primitives (NoGrad sessions + BeamSearchTensor) from many
// goroutines on one shared model, without the engine in between —
// the layer-below race test.
func TestNoGradAndBeamSearchConcurrentDirect(t *testing.T) {
	m, qs := testModel(t)
	want := serialExpected(m, qs)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, lq := range qs {
				var cards []float64
				ag.NoGrad(func(e *ag.Eval) {
					rep := m.RepresentInfer(e, lq.Q, lq.Plan)
					cards = mtmlf.ExpClamp(m.PredictLogCardsInfer(e, rep).Data)
				})
				for j := range cards {
					if cards[j] != want[i].cards[j] {
						errs <- errors.New("direct NoGrad cards diverged")
						return
					}
				}
				order := m.InferJoinOrder(lq.Q, lq.Plan)
				for j := range order {
					if order[j] != want[i].order[j] {
						errs <- errors.New("direct beam search diverged")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEngineMicroBatching forces requests through one session worker
// and checks that (a) batches actually fuse and (b) fused answers
// stay bitwise identical.
func TestEngineMicroBatching(t *testing.T) {
	m, qs := testModel(t)
	want := serialExpected(m, qs)
	e, err := NewEngine(m, Options{Sessions: 1, MaxBatch: 8, BatchWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := r % len(qs)
			res, err := e.EstimateCard(qs[i].Q, qs[i].Plan)
			if err != nil {
				errs <- err
				return
			}
			for j := range res.Nodes {
				if res.Nodes[j] != want[i].cards[j] {
					errs <- errors.New("batched card diverged from serial")
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := e.Stats()
	if snap.Batches == 0 || snap.Batches >= n {
		t.Fatalf("expected fused batches, got %d batches for %d requests", snap.Batches, n)
	}
	if snap.FusedRequests == 0 {
		t.Fatal("no requests were micro-batched")
	}
}

// TestEngineTypedErrors covers the error boundary: every malformed
// request maps onto its sentinel without crashing the engine.
func TestEngineTypedErrors(t *testing.T) {
	m, qs := testModel(t)
	e, err := NewEngine(m, Options{Sessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db := m.Feat.DB
	t0 := db.Tables[0].Name
	t1 := db.Tables[1].Name
	goodPlan := func(ts ...string) *plan.Node {
		return plan.LeftDeepFromOrder(ts, plan.SeqScan, plan.HashJoin)
	}
	var strCol, intCol string
	for _, c := range db.Tables[0].Columns {
		if c.Kind == sqldb.KindString && strCol == "" {
			strCol = c.Name
		}
		if c.Kind == sqldb.KindInt && intCol == "" {
			intCol = c.Name
		}
	}

	cases := []struct {
		name string
		q    *sqldb.Query
		p    *plan.Node
		want error
	}{
		{"nil query", nil, goodPlan(t0), ErrBadRequest},
		{"nil plan", &sqldb.Query{Tables: []string{t0}}, nil, ErrBadRequest},
		{"no tables", &sqldb.Query{}, goodPlan(t0), ErrBadRequest},
		{"unknown query table", &sqldb.Query{Tables: []string{"nope"}}, goodPlan("nope"), ErrUnknownTable},
		{"duplicate query table", &sqldb.Query{Tables: []string{t0, t0}}, goodPlan(t0, t0), ErrBadRequest},
		{"plan misses query table", &sqldb.Query{Tables: []string{t0, t1}}, goodPlan(t0), ErrPlanMismatch},
		{"plan scans extra table", &sqldb.Query{Tables: []string{t0}}, goodPlan(t0, t1), ErrPlanMismatch},
		{"plan scans table twice", &sqldb.Query{Tables: []string{t0, t1}}, goodPlan(t0, t1, t0), ErrPlanMismatch},
		{"unknown plan table", &sqldb.Query{Tables: []string{t0}}, goodPlan("nope2"), ErrUnknownTable},
		{"filter on non-query table", &sqldb.Query{
			Tables:  []string{t0},
			Filters: []sqldb.Filter{{Table: t1, Col: intCol, Op: sqldb.OpEq, Val: sqldb.IntVal(1)}},
		}, goodPlan(t0), ErrBadRequest},
		{"filter on unknown table", &sqldb.Query{
			Tables:  []string{t0},
			Filters: []sqldb.Filter{{Table: "nope", Col: intCol, Op: sqldb.OpEq, Val: sqldb.IntVal(1)}},
		}, goodPlan(t0), ErrUnknownTable},
		{"unknown filter column", &sqldb.Query{
			Tables:  []string{t0},
			Filters: []sqldb.Filter{{Table: t0, Col: "no_col", Op: sqldb.OpEq, Val: sqldb.IntVal(1)}},
		}, goodPlan(t0), ErrUnknownColumn},
		{"kind-mismatched filter", &sqldb.Query{
			Tables:  []string{t0},
			Filters: []sqldb.Filter{{Table: t0, Col: intCol, Op: sqldb.OpEq, Val: sqldb.StrVal("x")}},
		}, goodPlan(t0), ErrBadRequest},
		{"join on foreign table", &sqldb.Query{
			Tables: []string{t0},
			Joins:  []sqldb.JoinEdge{{T1: t0, C1: intCol, T2: "nope", C2: "id"}},
		}, goodPlan(t0), ErrUnknownTable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := e.EstimateCard(tc.q, tc.p); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}

	t.Run("disconnected join graph", func(t *testing.T) {
		var lq *workload.LabeledQuery
		for _, c := range qs {
			if len(c.Q.Tables) >= 2 {
				lq = c
				break
			}
		}
		if lq == nil {
			t.Skip("no multi-table query generated")
		}
		q := &sqldb.Query{Tables: lq.Q.Tables} // joins dropped
		if _, err := e.JoinOrder(q, plan.LeftDeepFromOrder(q.Tables, plan.SeqScan, plan.HashJoin)); !errors.Is(err, ErrNoJoinOrder) {
			t.Fatalf("got %v, want ErrNoJoinOrder", err)
		}
		// The same query is still estimable (a cross product is a
		// valid plan shape for the heads).
		if _, err := e.EstimateCard(q, plan.LeftDeepFromOrder(q.Tables, plan.SeqScan, plan.HashJoin)); err != nil {
			t.Fatalf("estimate after join-order failure: %v", err)
		}
	})

	// The engine survives all of the above: a good request still works.
	lq := qs[0]
	if _, err := e.EstimateCard(lq.Q, lq.Plan); err != nil {
		t.Fatalf("engine broken after error barrage: %v", err)
	}
}

// TestEngineRejectsOversizedDB: a model whose architecture cannot fit
// the database is refused at construction, not at the first panic.
func TestEngineRejectsOversizedDB(t *testing.T) {
	db := datagen.SyntheticIMDB(5, 0.05)
	cfg := mtmlf.DefaultConfig()
	cfg.Dim, cfg.Blocks, cfg.DecBlocks = 16, 1, 1
	cfg.Feat.Dim, cfg.Feat.Blocks = 16, 1
	cfg.MaxTables = 2
	m := mtmlf.NewModel(cfg, db, 1)
	if _, err := NewEngine(m, Options{}); !errors.Is(err, ErrModelLimit) {
		t.Fatalf("got %v, want ErrModelLimit", err)
	}
}

// TestEngineClose: requests after Close fail with ErrClosed.
func TestEngineClose(t *testing.T) {
	m, qs := testModel(t)
	e, err := NewEngine(m, Options{Sessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := e.EstimateCard(qs[0].Q, qs[0].Plan); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}
