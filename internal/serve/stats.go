// Serving telemetry: the counters behind Engine.Stats and the
// /statsz endpoint. The full field-by-field schema, with operator
// guidance on what each number means under load, is documented in
// docs/OPERATIONS.md — keep the two in sync.
package serve

import (
	"sort"
	"sync"
	"time"

	"mtmlf/internal/tensor"
)

// latWindow is the per-endpoint latency ring size percentiles are
// computed over (the most recent latWindow requests).
const latWindow = 1024

// stats accumulates serving telemetry. One mutex suffices: the
// critical sections are a few counter bumps against milliseconds of
// model work per request.
type stats struct {
	mu       sync.Mutex
	start    time.Time
	sessions int

	counts  [numEndpoints]uint64
	errors  uint64
	batches uint64
	// fused counts requests that shared their batch with at least one
	// other request — the micro-batching hit rate numerator.
	fused uint64
	// shed counts requests rejected at admission with ErrOverloaded
	// (queue full, ShedOverload on).
	shed uint64
	// deadlineMisses counts requests rejected with ErrDeadline —
	// expired before admission or while queued.
	deadlineMisses uint64
	// reloads counts successful hot checkpoint swaps.
	reloads uint64
	// panics counts handler panics recovered by the HTTP middleware
	// (each returned a 500 instead of killing the server).
	panics uint64

	lat  [numEndpoints][]time.Duration // rings
	latN [numEndpoints]int             // total inserted per ring
}

func newStats(sessions int) *stats {
	return &stats{start: time.Now(), sessions: sessions}
}

func (s *stats) record(ep Endpoint, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts[ep]++
	if s.lat[ep] == nil {
		s.lat[ep] = make([]time.Duration, 0, latWindow)
	}
	if len(s.lat[ep]) < latWindow {
		s.lat[ep] = append(s.lat[ep], d)
	} else {
		s.lat[ep][s.latN[ep]%latWindow] = d
	}
	s.latN[ep]++
}

func (s *stats) recordError() {
	s.mu.Lock()
	s.errors++
	s.mu.Unlock()
}

func (s *stats) recordShed() {
	s.mu.Lock()
	s.shed++
	s.mu.Unlock()
}

func (s *stats) recordDeadlineMiss() {
	s.mu.Lock()
	s.deadlineMisses++
	s.mu.Unlock()
}

func (s *stats) recordReload() {
	s.mu.Lock()
	s.reloads++
	s.mu.Unlock()
}

func (s *stats) recordPanic() {
	s.mu.Lock()
	s.panics++
	s.mu.Unlock()
}

func (s *stats) recordBatch(size int) {
	s.mu.Lock()
	s.batches++
	if size > 1 {
		s.fused += uint64(size)
	}
	s.mu.Unlock()
}

// EndpointStats is one endpoint's request count and latency
// percentiles (over the most recent latWindow requests).
type EndpointStats struct {
	Requests uint64  `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// PoolStats reports the process-wide tensor-arena telemetry: how many
// pooled buffers were handed out and how many required a fresh
// allocation. ReuseRate → 1 as the serving arenas go warm (the
// steady-state zero-allocation property of the fast path).
type PoolStats struct {
	Gets      uint64  `json:"gets"`
	Allocs    uint64  `json:"allocs"`
	ReuseRate float64 `json:"reuse_rate"`
}

// StatsSnapshot is the /statsz payload. Schema documented for
// operators in docs/OPERATIONS.md.
type StatsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Sessions      int     `json:"sessions"`
	// Precision is the serving tier ("f64", "f32", "int8") — fixed at
	// engine construction, so operators can confirm which replica a
	// process is answering with.
	Precision string `json:"precision"`
	Requests  uint64 `json:"requests"`
	Errors    uint64 `json:"errors"`
	// Shed counts 429-rejected requests (queue full under
	// ShedOverload); DeadlineMisses counts 504-rejected ones (expired
	// before batch admission). Neither is in Requests or Errors: they
	// never reached a session.
	Shed           uint64 `json:"shed"`
	DeadlineMisses uint64 `json:"deadline_misses"`
	// Reloads counts successful hot checkpoint swaps since boot.
	Reloads uint64 `json:"reloads"`
	// Panics counts handler panics recovered by the HTTP middleware
	// since boot. Each one was answered with a 500; a non-zero value
	// means a bug worth a look, a growing one means trouble.
	Panics uint64 `json:"panics"`
	// QueueDepth is the instantaneous request-queue occupancy;
	// MaxQueue its bound. Depth pinned at MaxQueue means overload.
	QueueDepth int `json:"queue_depth"`
	MaxQueue   int `json:"max_queue"`
	// QPS is the lifetime average request rate.
	QPS float64 `json:"qps"`

	Card      EndpointStats `json:"card"`
	Cost      EndpointStats `json:"cost"`
	JoinOrder EndpointStats `json:"joinorder"`

	// Batches is the number of micro-batches served; FusedRequests the
	// requests that shared a batch with at least one other.
	Batches       uint64  `json:"batches"`
	FusedRequests uint64  `json:"fused_requests"`
	AvgBatch      float64 `json:"avg_batch"`

	Pool PoolStats `json:"pool"`
}

func (s *stats) snapshot(queueDepth, maxQueue int) StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	var snap StatsSnapshot
	snap.UptimeSeconds = time.Since(s.start).Seconds()
	snap.Sessions = s.sessions
	for ep := Endpoint(0); ep < numEndpoints; ep++ {
		es := EndpointStats{Requests: s.counts[ep]}
		es.P50Ms, es.P95Ms, es.P99Ms = ringPercentiles(s.lat[ep])
		switch ep {
		case EndpointCard:
			snap.Card = es
		case EndpointCost:
			snap.Cost = es
		default:
			snap.JoinOrder = es
		}
		snap.Requests += s.counts[ep]
	}
	snap.Errors = s.errors
	snap.Shed = s.shed
	snap.DeadlineMisses = s.deadlineMisses
	snap.Reloads = s.reloads
	snap.Panics = s.panics
	snap.QueueDepth = queueDepth
	snap.MaxQueue = maxQueue
	if snap.UptimeSeconds > 0 {
		snap.QPS = float64(snap.Requests) / snap.UptimeSeconds
	}
	snap.Batches = s.batches
	snap.FusedRequests = s.fused
	if s.batches > 0 {
		snap.AvgBatch = float64(snap.Requests) / float64(s.batches)
	}
	gets, allocs := tensor.PoolCounters()
	snap.Pool = PoolStats{Gets: gets, Allocs: allocs}
	if gets > 0 {
		snap.Pool.ReuseRate = 1 - float64(allocs)/float64(gets)
	}
	return snap
}

// ringPercentiles returns the p50, p95, and p99 of a latency ring in
// milliseconds (zeros for an empty ring).
func ringPercentiles(ring []time.Duration) (p50, p95, p99 float64) {
	if len(ring) == 0 {
		return 0, 0, 0
	}
	ms := make([]float64, len(ring))
	for i, d := range ring {
		ms[i] = float64(d) / float64(time.Millisecond)
	}
	sort.Float64s(ms)
	return percentileSorted(ms, 0.50), percentileSorted(ms, 0.95), percentileSorted(ms, 0.99)
}

// percentileSorted is nearest-rank interpolation over a sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
