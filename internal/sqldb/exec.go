package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// relation is an intermediate join result: a list of tuples of row ids,
// one id per attached table.
type relation struct {
	tables []string
	tIdx   map[string]int
	rows   [][]int32
}

func singleTableRelation(name string, rows []int32) *relation {
	r := &relation{tables: []string{name}, tIdx: map[string]int{name: 0}}
	r.rows = make([][]int32, len(rows))
	for i, id := range rows {
		r.rows[i] = []int32{id}
	}
	return r
}

// Executor evaluates (sub-)queries of one Query against a DB, caching
// filtered row sets and sub-plan cardinalities. The MTMLF training
// pipeline uses it to label every node of every plan with its true
// cardinality, and the exact DP optimizer uses it as its card oracle.
type Executor struct {
	DB *DB
	Q  *Query

	filtered map[string][]int32
	cardMemo map[string]int64
}

// NewExecutor creates an executor for one query.
func NewExecutor(db *DB, q *Query) *Executor {
	return &Executor{
		DB:       db,
		Q:        q,
		filtered: map[string][]int32{},
		cardMemo: map[string]int64{},
	}
}

// Filtered returns (and caches) the row ids of table t that satisfy
// the query's filters on t.
func (e *Executor) Filtered(t string) []int32 {
	if rows, ok := e.filtered[t]; ok {
		return rows
	}
	tab := e.DB.Table(t)
	if tab == nil {
		panic(fmt.Sprintf("sqldb: unknown table %q", t))
	}
	rows := FilterRows(tab, e.Q.FiltersFor(t))
	e.filtered[t] = rows
	return rows
}

// FilteredCard returns the filtered cardinality of one table.
func (e *Executor) FilteredCard(t string) int64 { return int64(len(e.Filtered(t))) }

// Cardinality executes the whole query and returns its exact count.
func (e *Executor) Cardinality() int64 { return e.CardOf(e.Q.Tables) }

// CardOf returns the exact cardinality of the sub-query restricted to
// the given tables (their filters plus the join edges among them).
// Disconnected components contribute multiplicatively (cross product).
// Results are memoized per table set.
func (e *Executor) CardOf(tables []string) int64 {
	key := setKey(tables)
	if c, ok := e.cardMemo[key]; ok {
		return c
	}
	card := int64(1)
	for _, comp := range e.components(tables) {
		card *= e.componentCard(comp)
		if card == 0 {
			break
		}
	}
	e.cardMemo[key] = card
	return card
}

// PrefixCards returns, for a join order (left-deep), the cardinality
// after each step: entry 0 is the filtered card of order[0], entry i
// the exact card of joining order[0..i].
func (e *Executor) PrefixCards(order []string) []int64 {
	out := make([]int64, len(order))
	for i := range order {
		out[i] = e.CardOf(order[:i+1])
	}
	return out
}

// components splits a table set into connected components under the
// query's join edges.
func (e *Executor) components(tables []string) [][]string {
	joins := e.Q.JoinsAmong(tables)
	adj := map[string][]string{}
	for _, j := range joins {
		adj[j.T1] = append(adj[j.T1], j.T2)
		adj[j.T2] = append(adj[j.T2], j.T1)
	}
	seen := map[string]bool{}
	var comps [][]string
	for _, t := range tables {
		if seen[t] {
			continue
		}
		var comp []string
		stack := []string{t}
		seen[t] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, x)
			for _, o := range adj[x] {
				if !seen[o] {
					seen[o] = true
					stack = append(stack, o)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// componentCard executes the joins of one connected component using
// greedy smallest-first hash joins and returns the exact count.
func (e *Executor) componentCard(tables []string) int64 {
	if len(tables) == 1 {
		return e.FilteredCard(tables[0])
	}
	// Start from the smallest filtered table.
	start := tables[0]
	for _, t := range tables[1:] {
		if e.FilteredCard(t) < e.FilteredCard(start) {
			start = t
		}
	}
	rel := singleTableRelation(start, e.Filtered(start))
	joined := map[string]bool{start: true}
	remaining := len(tables) - 1
	joins := e.Q.JoinsAmong(tables)
	for remaining > 0 {
		// Pick the joinable table with the smallest filtered card.
		next := ""
		for _, t := range tables {
			if joined[t] {
				continue
			}
			connected := false
			for _, j := range joins {
				if j.Touches(t) && joined[j.Other(t)] {
					connected = true
					break
				}
			}
			if !connected {
				continue
			}
			if next == "" || e.FilteredCard(t) < e.FilteredCard(next) {
				next = t
			}
		}
		if next == "" {
			panic("sqldb: component not connected")
		}
		var edges []JoinEdge
		for _, j := range joins {
			if j.Touches(next) && joined[j.Other(next)] {
				edges = append(edges, j)
			}
		}
		rel = e.hashJoin(rel, next, edges)
		joined[next] = true
		remaining--
		if len(rel.rows) == 0 {
			return 0
		}
	}
	return int64(len(rel.rows))
}

// hashJoin extends rel with table next using the given equality edges
// (all of which touch next and a table already in rel).
func (e *Executor) hashJoin(rel *relation, next string, edges []JoinEdge) *relation {
	if len(edges) == 0 {
		panic("sqldb: hashJoin without edges")
	}
	nextTab := e.DB.Table(next)
	// Build side: hash the new table's filtered rows on the first
	// edge's key; verify the remaining edges per match.
	first := edges[0]
	nextCol := nextTab.Column(first.C2)
	relSide := first.T1
	relColName := first.C1
	if first.T2 != next {
		nextCol = nextTab.Column(first.C1)
		relSide = first.T2
		relColName = first.C2
	}
	build := make(map[Value][]int32, len(e.Filtered(next)))
	for _, id := range e.Filtered(next) {
		v := nextCol.Value(int(id))
		build[v] = append(build[v], id)
	}
	relCol := e.DB.Table(relSide).Column(relColName)
	relPos := rel.tIdx[relSide]

	// Pre-resolve the verification edges.
	type verify struct {
		relPos  int
		relCol  *Column
		nextCol *Column
	}
	var verifies []verify
	for _, ed := range edges[1:] {
		var vr verify
		if ed.T2 == next {
			vr = verify{relPos: rel.tIdx[ed.T1], relCol: e.DB.Table(ed.T1).Column(ed.C1), nextCol: nextTab.Column(ed.C2)}
		} else {
			vr = verify{relPos: rel.tIdx[ed.T2], relCol: e.DB.Table(ed.T2).Column(ed.C2), nextCol: nextTab.Column(ed.C1)}
		}
		verifies = append(verifies, vr)
	}

	out := &relation{
		tables: append(append([]string{}, rel.tables...), next),
		tIdx:   map[string]int{},
	}
	for i, t := range out.tables {
		out.tIdx[t] = i
	}
	for _, row := range rel.rows {
		key := relCol.Value(int(row[relPos]))
		matches := build[key]
	cand:
		for _, id := range matches {
			for _, vr := range verifies {
				if !vr.relCol.Value(int(row[vr.relPos])).Equal(vr.nextCol.Value(int(id))) {
					continue cand
				}
			}
			nr := make([]int32, len(row)+1)
			copy(nr, row)
			nr[len(row)] = id
			out.rows = append(out.rows, nr)
		}
	}
	return out
}

func setKey(tables []string) string {
	s := append([]string(nil), tables...)
	sort.Strings(s)
	return strings.Join(s, "\x00")
}
