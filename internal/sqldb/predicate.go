package sqldb

import (
	"fmt"
	"strings"
)

// Op enumerates filter comparison operators.
type Op int

// Supported operators. OpLike supports '%' (any run) and '_' (any one
// character) wildcards, the predicate class that makes JOB hard for
// traditional estimators (Section 6.1).
const (
	OpEq Op = iota
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpLike
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNeq:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpLike:
		return "LIKE"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Filter is a single-column predicate "table.col OP value".
type Filter struct {
	Table string
	Col   string
	Op    Op
	Val   Value
}

// String renders the filter as pseudo-SQL.
func (f Filter) String() string {
	return fmt.Sprintf("%s.%s %s %s", f.Table, f.Col, f.Op, f.Val)
}

// Matches evaluates the predicate against a cell value of the same kind.
func (f Filter) Matches(v Value) bool {
	switch f.Op {
	case OpEq:
		return v.Equal(f.Val)
	case OpNeq:
		return !v.Equal(f.Val)
	case OpLt:
		return v.Less(f.Val)
	case OpLe:
		return v.Less(f.Val) || v.Equal(f.Val)
	case OpGt:
		return f.Val.Less(v)
	case OpGe:
		return f.Val.Less(v) || v.Equal(f.Val)
	case OpLike:
		return MatchLike(v.S, f.Val.S)
	default:
		panic(fmt.Sprintf("sqldb: unknown op %v", f.Op))
	}
}

// MatchLike implements SQL LIKE matching with '%' and '_' wildcards
// using an iterative two-pointer algorithm (no backtracking blowup).
func MatchLike(s, pattern string) bool {
	si, pi := 0, 0
	starIdx, matchIdx := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			starIdx = pi
			matchIdx = si
			pi++
		case starIdx != -1:
			pi = starIdx + 1
			matchIdx++
			si = matchIdx
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// LikePrefix returns the literal prefix of a LIKE pattern (text before
// the first wildcard). Estimators use it for prefix-range estimation,
// mirroring PostgreSQL's pattern-selectivity logic.
func LikePrefix(pattern string) string {
	i := strings.IndexAny(pattern, "%_")
	if i < 0 {
		return pattern
	}
	return pattern[:i]
}

// FilterRows returns the row ids of t matching all filters (which must
// all target t). A nil filter list selects every row.
func FilterRows(t *Table, filters []Filter) []int32 {
	n := t.NumRows()
	out := make([]int32, 0, n)
	cols := make([]*Column, len(filters))
	for i, f := range filters {
		if f.Table != t.Name {
			panic(fmt.Sprintf("sqldb: filter %v applied to table %q", f, t.Name))
		}
		c := t.Column(f.Col)
		if c == nil {
			panic(fmt.Sprintf("sqldb: filter %v references missing column", f))
		}
		cols[i] = c
	}
rows:
	for r := 0; r < n; r++ {
		for i, f := range filters {
			if !f.Matches(cols[i].Value(r)) {
				continue rows
			}
		}
		out = append(out, int32(r))
	}
	return out
}

// FilteredCard returns the number of rows of t matching the filters.
func FilteredCard(t *Table, filters []Filter) int64 {
	if len(filters) == 0 {
		return int64(t.NumRows())
	}
	return int64(len(FilterRows(t, filters)))
}
