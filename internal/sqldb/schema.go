package sqldb

import (
	"fmt"
	"sort"
)

// JoinEdge is an equality join predicate between two table columns,
// typically a PK–FK relationship.
type JoinEdge struct {
	T1, C1 string // left table and column
	T2, C2 string // right table and column
}

// Touches reports whether the edge involves table t.
func (e JoinEdge) Touches(t string) bool { return e.T1 == t || e.T2 == t }

// Other returns the table on the other side of the edge from t
// (empty string if t is not part of the edge).
func (e JoinEdge) Other(t string) string {
	switch t {
	case e.T1:
		return e.T2
	case e.T2:
		return e.T1
	default:
		return ""
	}
}

// String implements fmt.Stringer.
func (e JoinEdge) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", e.T1, e.C1, e.T2, e.C2)
}

// DB is a database: a set of tables plus the join schema (the PK–FK
// graph). The paper's (I.i) input "data tables T = {T1..Tn}" plus the
// "join schema" of Section 2.1 map to this type.
type DB struct {
	Name   string
	Tables []*Table
	Edges  []JoinEdge
	// FactTables optionally records which tables the generator created
	// as fact tables (Section 6.2 S1); informational.
	FactTables []string

	byName map[string]int
}

// NewDB creates an empty database.
func NewDB(name string) *DB {
	return &DB{Name: name, byName: map[string]int{}}
}

// AddTable registers a table; the name must be unique.
func (db *DB) AddTable(t *Table) error {
	if _, dup := db.byName[t.Name]; dup {
		return fmt.Errorf("sqldb: duplicate table %q", t.Name)
	}
	db.byName[t.Name] = len(db.Tables)
	db.Tables = append(db.Tables, t)
	return nil
}

// MustAddTable is AddTable that panics on error.
func (db *DB) MustAddTable(t *Table) {
	if err := db.AddTable(t); err != nil {
		panic(err)
	}
}

// Table returns the named table or nil.
func (db *DB) Table(name string) *Table {
	i, ok := db.byName[name]
	if !ok {
		return nil
	}
	return db.Tables[i]
}

// TableIndex returns the position of the named table in db.Tables,
// or -1. Models use this as the stable one-hot id of a table.
func (db *DB) TableIndex(name string) int {
	i, ok := db.byName[name]
	if !ok {
		return -1
	}
	return i
}

// TableNames returns all table names in registration order.
func (db *DB) TableNames() []string {
	out := make([]string, len(db.Tables))
	for i, t := range db.Tables {
		out[i] = t.Name
	}
	return out
}

// AddEdge registers a join edge after validating both endpoints exist
// and have the same column kind.
func (db *DB) AddEdge(e JoinEdge) error {
	for _, side := range []struct{ t, c string }{{e.T1, e.C1}, {e.T2, e.C2}} {
		tab := db.Table(side.t)
		if tab == nil {
			return fmt.Errorf("sqldb: edge %v references unknown table %q", e, side.t)
		}
		if tab.Column(side.c) == nil {
			return fmt.Errorf("sqldb: edge %v references unknown column %s.%s", e, side.t, side.c)
		}
	}
	k1 := db.Table(e.T1).Column(e.C1).Kind
	k2 := db.Table(e.T2).Column(e.C2).Kind
	if k1 != k2 {
		return fmt.Errorf("sqldb: edge %v joins %v with %v", e, k1, k2)
	}
	db.Edges = append(db.Edges, e)
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (db *DB) MustAddEdge(e JoinEdge) {
	if err := db.AddEdge(e); err != nil {
		panic(err)
	}
}

// EdgesBetween returns all join edges connecting tables a and b.
func (db *DB) EdgesBetween(a, b string) []JoinEdge {
	var out []JoinEdge
	for _, e := range db.Edges {
		if (e.T1 == a && e.T2 == b) || (e.T1 == b && e.T2 == a) {
			out = append(out, e)
		}
	}
	return out
}

// AdjacentTables returns the sorted set of tables sharing a join edge
// with t.
func (db *DB) AdjacentTables(t string) []string {
	seen := map[string]bool{}
	for _, e := range db.Edges {
		if o := e.Other(t); o != "" {
			seen[o] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AdjacencyMatrix returns the boolean join-graph adjacency over
// db.Tables order, restricted to the given table subset (others have
// all-false rows). The beam-search legality pruning of Section 4.3
// consumes this matrix.
func (db *DB) AdjacencyMatrix(subset []string) [][]bool {
	n := len(db.Tables)
	in := make([]bool, n)
	for _, t := range subset {
		if i := db.TableIndex(t); i >= 0 {
			in[i] = true
		}
	}
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range db.Edges {
		i, j := db.TableIndex(e.T1), db.TableIndex(e.T2)
		if i >= 0 && j >= 0 && in[i] && in[j] {
			adj[i][j] = true
			adj[j][i] = true
		}
	}
	return adj
}

// Query is a conjunctive select-project-join query: a set of touched
// tables T_Q, equality join predicates j_Q, and per-table filter
// predicates f_Q — the paper's (I.ii) input Q = (T_Q, j_Q, f_Q).
type Query struct {
	Tables  []string
	Joins   []JoinEdge
	Filters []Filter
}

// FiltersFor returns the filters applying to one table.
func (q *Query) FiltersFor(table string) []Filter {
	var out []Filter
	for _, f := range q.Filters {
		if f.Table == table {
			out = append(out, f)
		}
	}
	return out
}

// JoinsAmong returns the join edges of q whose both endpoints are in
// the given table set.
func (q *Query) JoinsAmong(tables []string) []JoinEdge {
	in := map[string]bool{}
	for _, t := range tables {
		in[t] = true
	}
	var out []JoinEdge
	for _, e := range q.Joins {
		if in[e.T1] && in[e.T2] {
			out = append(out, e)
		}
	}
	return out
}

// HasTable reports whether t is among the query's tables.
func (q *Query) HasTable(t string) bool {
	for _, x := range q.Tables {
		if x == t {
			return true
		}
	}
	return false
}

// IsConnected reports whether the query's join graph connects all its
// tables (queries with cross products are never generated by the
// workload generator, mirroring JOB).
func (q *Query) IsConnected() bool {
	if len(q.Tables) <= 1 {
		return true
	}
	adj := map[string][]string{}
	for _, e := range q.Joins {
		adj[e.T1] = append(adj[e.T1], e.T2)
		adj[e.T2] = append(adj[e.T2], e.T1)
	}
	seen := map[string]bool{q.Tables[0]: true}
	stack := []string{q.Tables[0]}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, o := range adj[t] {
			if !seen[o] {
				seen[o] = true
				stack = append(stack, o)
			}
		}
	}
	for _, t := range q.Tables {
		if !seen[t] {
			return false
		}
	}
	return true
}

// String renders the query as pseudo-SQL for debugging and examples.
func (q *Query) String() string {
	s := "SELECT COUNT(*) FROM " + joinStrings(q.Tables, ", ") + " WHERE "
	var preds []string
	for _, j := range q.Joins {
		preds = append(preds, j.String())
	}
	for _, f := range q.Filters {
		preds = append(preds, f.String())
	}
	if len(preds) == 0 {
		return s + "true"
	}
	return s + joinStrings(preds, " AND ")
}

func joinStrings(xs []string, sep string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += sep
		}
		out += x
	}
	return out
}
