package sqldb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTableConstruction(t *testing.T) {
	tab, err := NewTable("t",
		IntColumn("a", []int64{1, 2, 3}),
		StringColumn("s", []string{"x", "y", "z"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 {
		t.Fatal("row count wrong")
	}
	if tab.Column("s").Value(1).S != "y" {
		t.Fatal("column access wrong")
	}
	if tab.Column("missing") != nil {
		t.Fatal("missing column must be nil")
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable("t", IntColumn("a", []int64{1}), IntColumn("b", []int64{1, 2})); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := NewTable("t", IntColumn("a", nil), IntColumn("a", nil)); err == nil {
		t.Fatal("duplicate column must error")
	}
	if _, err := NewTable("t"); err == nil {
		t.Fatal("empty table must error")
	}
}

func TestDBTableAndEdgeRegistration(t *testing.T) {
	db := NewDB("d")
	db.MustAddTable(MustNewTable("a", IntColumn("id", []int64{1, 2})))
	db.MustAddTable(MustNewTable("b", IntColumn("a_id", []int64{1, 1})))
	if err := db.AddTable(MustNewTable("a", IntColumn("id", nil))); err == nil {
		t.Fatal("duplicate table must error")
	}
	if err := db.AddEdge(JoinEdge{T1: "a", C1: "id", T2: "b", C2: "a_id"}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddEdge(JoinEdge{T1: "a", C1: "nope", T2: "b", C2: "a_id"}); err == nil {
		t.Fatal("unknown column must error")
	}
	if err := db.AddEdge(JoinEdge{T1: "a", C1: "id", T2: "zz", C2: "a_id"}); err == nil {
		t.Fatal("unknown table must error")
	}
	if got := db.AdjacentTables("a"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("adjacency wrong: %v", got)
	}
	if db.TableIndex("b") != 1 || db.TableIndex("zz") != -1 {
		t.Fatal("TableIndex wrong")
	}
}

func TestEdgeKindMismatch(t *testing.T) {
	db := NewDB("d")
	db.MustAddTable(MustNewTable("a", IntColumn("id", []int64{1})))
	db.MustAddTable(MustNewTable("b", StringColumn("id", []string{"x"})))
	if err := db.AddEdge(JoinEdge{T1: "a", C1: "id", T2: "b", C2: "id"}); err == nil {
		t.Fatal("kind mismatch must error")
	}
}

func TestFilterMatches(t *testing.T) {
	cases := []struct {
		f    Filter
		v    Value
		want bool
	}{
		{Filter{Op: OpEq, Val: IntVal(3)}, IntVal(3), true},
		{Filter{Op: OpEq, Val: IntVal(3)}, IntVal(4), false},
		{Filter{Op: OpNeq, Val: IntVal(3)}, IntVal(4), true},
		{Filter{Op: OpLt, Val: IntVal(3)}, IntVal(2), true},
		{Filter{Op: OpLe, Val: IntVal(3)}, IntVal(3), true},
		{Filter{Op: OpGt, Val: FloatVal(1.5)}, FloatVal(2), true},
		{Filter{Op: OpGe, Val: FloatVal(2)}, FloatVal(2), true},
		{Filter{Op: OpLike, Val: StrVal("ab%")}, StrVal("abc"), true},
		{Filter{Op: OpLike, Val: StrVal("ab%")}, StrVal("xabc"), false},
	}
	for i, c := range cases {
		if got := c.f.Matches(c.v); got != c.want {
			t.Fatalf("case %d: Matches(%v, %v) = %v", i, c.f, c.v, got)
		}
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_go", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "", true},
		{"", "_", false},
		{"abc", "%a%b%c%", true},
		{"abc", "a%c%b", false},
		{"aaa", "a%a", true},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%ppx", false},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p); got != c.want {
			t.Fatalf("MatchLike(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// Property: a pattern consisting of the string itself always matches;
// "%"+s+"%" matches any superstring.
func TestMatchLikeProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 20 || len(b) > 20 {
			return true
		}
		clean := func(s string) string {
			out := []byte{}
			for i := 0; i < len(s); i++ {
				if s[i] != '%' && s[i] != '_' {
					out = append(out, s[i])
				}
			}
			return string(out)
		}
		ca, cb := clean(a), clean(b)
		return MatchLike(ca, ca) && MatchLike(cb+ca+cb, "%"+ca+"%")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLikePrefix(t *testing.T) {
	if LikePrefix("abc%def") != "abc" || LikePrefix("%x") != "" || LikePrefix("plain") != "plain" {
		t.Fatal("LikePrefix wrong")
	}
}

func TestFilterRows(t *testing.T) {
	tab := MustNewTable("t",
		IntColumn("a", []int64{1, 2, 3, 4, 5}),
		StringColumn("s", []string{"ax", "bx", "ay", "by", "az"}),
	)
	rows := FilterRows(tab, []Filter{
		{Table: "t", Col: "a", Op: OpGt, Val: IntVal(1)},
		{Table: "t", Col: "s", Op: OpLike, Val: StrVal("a%")},
	})
	if len(rows) != 2 || rows[0] != 2 || rows[1] != 4 {
		t.Fatalf("FilterRows wrong: %v", rows)
	}
	if FilteredCard(tab, nil) != 5 {
		t.Fatal("nil filters must select all")
	}
}

// buildTestDB creates a 3-table star: fact F references A and B.
func buildTestDB(rng *rand.Rand, nA, nB, nF int) *DB {
	db := NewDB("test")
	aVals := make([]int64, nA)
	aAttr := make([]int64, nA)
	for i := range aVals {
		aVals[i] = int64(i)
		aAttr[i] = int64(rng.Intn(5))
	}
	bVals := make([]int64, nB)
	bAttr := make([]int64, nB)
	for i := range bVals {
		bVals[i] = int64(i)
		bAttr[i] = int64(rng.Intn(4))
	}
	fa := make([]int64, nF)
	fb := make([]int64, nF)
	fAttr := make([]int64, nF)
	for i := 0; i < nF; i++ {
		fa[i] = int64(rng.Intn(nA))
		fb[i] = int64(rng.Intn(nB))
		fAttr[i] = int64(rng.Intn(6))
	}
	db.MustAddTable(MustNewTable("a", IntColumn("id", aVals), IntColumn("x", aAttr)))
	db.MustAddTable(MustNewTable("b", IntColumn("id", bVals), IntColumn("y", bAttr)))
	db.MustAddTable(MustNewTable("f", IntColumn("a_id", fa), IntColumn("b_id", fb), IntColumn("z", fAttr)))
	db.MustAddEdge(JoinEdge{T1: "a", C1: "id", T2: "f", C2: "a_id"})
	db.MustAddEdge(JoinEdge{T1: "b", C1: "id", T2: "f", C2: "b_id"})
	return db
}

// bruteForceCard computes the 3-way join count by nested loops.
func bruteForceCard(db *DB, q *Query) int64 {
	a, b, f := db.Table("a"), db.Table("b"), db.Table("f")
	fa := q.FiltersFor("a")
	fb := q.FiltersFor("b")
	ff := q.FiltersFor("f")
	matches := func(tab *Table, filters []Filter, r int) bool {
		for _, fl := range filters {
			if !fl.Matches(tab.Column(fl.Col).Value(r)) {
				return false
			}
		}
		return true
	}
	var count int64
	for i := 0; i < f.NumRows(); i++ {
		if !matches(f, ff, i) {
			continue
		}
		ai := int(f.Column("a_id").Ints[i])
		bi := int(f.Column("b_id").Ints[i])
		if !matches(a, fa, ai) || !matches(b, fb, bi) {
			continue
		}
		count++
	}
	return count
}

func starQuery(filters ...Filter) *Query {
	return &Query{
		Tables: []string{"a", "b", "f"},
		Joins: []JoinEdge{
			{T1: "a", C1: "id", T2: "f", C2: "a_id"},
			{T1: "b", C1: "id", T2: "f", C2: "b_id"},
		},
		Filters: filters,
	}
}

func TestExecutorMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 20; iter++ {
		db := buildTestDB(rng, 10+rng.Intn(20), 10+rng.Intn(20), 30+rng.Intn(50))
		q := starQuery(
			Filter{Table: "a", Col: "x", Op: OpLe, Val: IntVal(int64(rng.Intn(5)))},
			Filter{Table: "f", Col: "z", Op: OpGt, Val: IntVal(int64(rng.Intn(6)))},
		)
		e := NewExecutor(db, q)
		got := e.Cardinality()
		want := bruteForceCard(db, q)
		if got != want {
			t.Fatalf("iter %d: executor card %d, brute force %d", iter, got, want)
		}
	}
}

func TestExecutorSubplanAndPrefixCards(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := buildTestDB(rng, 15, 12, 60)
	q := starQuery(Filter{Table: "f", Col: "z", Op: OpLt, Val: IntVal(4)})
	e := NewExecutor(db, q)
	// Single-table subplan = filtered card.
	if e.CardOf([]string{"a"}) != 15 {
		t.Fatal("single-table subplan card wrong")
	}
	// Prefix cards along order f, a, b: last equals full card.
	pc := e.PrefixCards([]string{"f", "a", "b"})
	if pc[0] != e.FilteredCard("f") {
		t.Fatal("prefix card 0 wrong")
	}
	if pc[2] != e.Cardinality() {
		t.Fatal("final prefix card must equal query card")
	}
	// a ⋈ f is a PK-FK join: every filtered f row matches exactly one
	// a row, so card(a⋈f) == filteredCard(f).
	if got := e.CardOf([]string{"a", "f"}); got != e.FilteredCard("f") {
		t.Fatalf("PK-FK join card %d, want %d", got, e.FilteredCard("f"))
	}
}

func TestExecutorDisconnectedCrossProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := buildTestDB(rng, 10, 10, 20)
	q := starQuery()
	e := NewExecutor(db, q)
	// {a, b} has no join edge between them: cross product.
	if got := e.CardOf([]string{"a", "b"}); got != 100 {
		t.Fatalf("cross product card %d, want 100", got)
	}
}

func TestExecutorMemoization(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := buildTestDB(rng, 10, 10, 40)
	q := starQuery()
	e := NewExecutor(db, q)
	c1 := e.CardOf([]string{"f", "a"})
	c2 := e.CardOf([]string{"a", "f"}) // different order, same set
	if c1 != c2 {
		t.Fatal("memo key must be order-independent")
	}
	if len(e.cardMemo) != 1 {
		t.Fatalf("expected 1 memo entry, got %d", len(e.cardMemo))
	}
}

// TestJoinDistributionIdentity verifies the paper's Equation 2: the
// cardinality of a filtered PK-FK join equals the sum over join-key
// values of the per-table filtered counts' product.
func TestJoinDistributionIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for iter := 0; iter < 10; iter++ {
		db := buildTestDB(rng, 12, 10, 50)
		fA := Filter{Table: "a", Col: "x", Op: OpLe, Val: IntVal(int64(rng.Intn(5)))}
		fF := Filter{Table: "f", Col: "z", Op: OpGe, Val: IntVal(int64(rng.Intn(6)))}
		q := &Query{
			Tables:  []string{"a", "f"},
			Joins:   []JoinEdge{{T1: "a", C1: "id", T2: "f", C2: "a_id"}},
			Filters: []Filter{fA, fF},
		}
		e := NewExecutor(db, q)
		join := e.Cardinality()

		// RHS of Equation 2: sum over ids of count_A(f(A), id) * count_F(f(F), id).
		a, f := db.Table("a"), db.Table("f")
		countA := map[int64]int64{}
		for _, r := range FilterRows(a, []Filter{fA}) {
			countA[a.Column("id").Ints[r]]++
		}
		countF := map[int64]int64{}
		for _, r := range FilterRows(f, []Filter{fF}) {
			countF[f.Column("a_id").Ints[r]]++
		}
		var want int64
		for id, ca := range countA {
			want += ca * countF[id]
		}
		if join != want {
			t.Fatalf("Equation 2 identity violated: join card %d, reconstruction %d", join, want)
		}
	}
}

func TestQueryConnectivityAndHelpers(t *testing.T) {
	q := starQuery(Filter{Table: "a", Col: "x", Op: OpEq, Val: IntVal(1)})
	if !q.IsConnected() {
		t.Fatal("star query must be connected")
	}
	if len(q.FiltersFor("a")) != 1 || len(q.FiltersFor("b")) != 0 {
		t.Fatal("FiltersFor wrong")
	}
	if len(q.JoinsAmong([]string{"a", "f"})) != 1 {
		t.Fatal("JoinsAmong wrong")
	}
	if !q.HasTable("f") || q.HasTable("zzz") {
		t.Fatal("HasTable wrong")
	}
	q2 := &Query{Tables: []string{"a", "b"}} // no joins
	if q2.IsConnected() {
		t.Fatal("disconnected query must report false")
	}
}

func TestAdjacencyMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := buildTestDB(rng, 5, 5, 5)
	adj := db.AdjacencyMatrix([]string{"a", "f"})
	ia, ib, fi := db.TableIndex("a"), db.TableIndex("b"), db.TableIndex("f")
	if !adj[ia][fi] || !adj[fi][ia] {
		t.Fatal("a-f must be adjacent")
	}
	if adj[ib][fi] {
		t.Fatal("b excluded from subset must not be adjacent")
	}
}

func TestQueryString(t *testing.T) {
	q := starQuery(Filter{Table: "a", Col: "x", Op: OpEq, Val: IntVal(1)})
	s := q.String()
	if s == "" || len(s) < 20 {
		t.Fatalf("query string implausible: %q", s)
	}
}

func TestValueOrdering(t *testing.T) {
	if !IntVal(1).Less(IntVal(2)) || IntVal(2).Less(IntVal(1)) {
		t.Fatal("int ordering wrong")
	}
	if !StrVal("a").Less(StrVal("b")) {
		t.Fatal("string ordering wrong")
	}
	if !FloatVal(1.5).Equal(FloatVal(1.5)) {
		t.Fatal("float equality wrong")
	}
}

func TestDistinctCount(t *testing.T) {
	c := IntColumn("c", []int64{1, 1, 2, 3, 3, 3})
	if c.DistinctCount() != 3 {
		t.Fatal("distinct count wrong")
	}
	s := StringColumn("s", []string{"a", "a", "b"})
	if s.DistinctCount() != 2 {
		t.Fatal("string distinct wrong")
	}
}
