// Package sqldb is an in-memory columnar relational engine. It is the
// substrate that substitutes for PostgreSQL in this reproduction: it
// stores the generated databases, evaluates filter predicates
// (including LIKE), executes multi-way PK–FK joins, and therefore
// produces the *exact* cardinalities used as training labels and
// ground truth, exactly the role query execution plays in the paper's
// Section 6 pipeline.
package sqldb

import (
	"fmt"
	"strings"
)

// Kind enumerates column value types.
type Kind int

// Supported column kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindString
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a dynamically typed cell value.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// IntVal wraps an int64.
func IntVal(v int64) Value { return Value{Kind: KindInt, I: v} }

// FloatVal wraps a float64.
func FloatVal(v float64) Value { return Value{Kind: KindFloat, F: v} }

// StrVal wraps a string.
func StrVal(v string) Value { return Value{Kind: KindString, S: v} }

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	default:
		return fmt.Sprintf("%q", v.S)
	}
}

// Less orders values of the same kind.
func (v Value) Less(o Value) bool {
	switch v.Kind {
	case KindInt:
		return v.I < o.I
	case KindFloat:
		return v.F < o.F
	default:
		return v.S < o.S
	}
}

// Equal compares values of the same kind.
func (v Value) Equal(o Value) bool {
	switch v.Kind {
	case KindInt:
		return v.I == o.I
	case KindFloat:
		return v.F == o.F
	default:
		return v.S == o.S
	}
}

// Column is a typed column vector.
type Column struct {
	Name string
	Kind Kind
	Ints []int64
	Flts []float64
	Strs []string
}

// IntColumn builds an int64 column.
func IntColumn(name string, vals []int64) *Column {
	return &Column{Name: name, Kind: KindInt, Ints: vals}
}

// FloatColumn builds a float64 column.
func FloatColumn(name string, vals []float64) *Column {
	return &Column{Name: name, Kind: KindFloat, Flts: vals}
}

// StringColumn builds a string column.
func StringColumn(name string, vals []string) *Column {
	return &Column{Name: name, Kind: KindString, Strs: vals}
}

// Len returns the number of rows.
func (c *Column) Len() int {
	switch c.Kind {
	case KindInt:
		return len(c.Ints)
	case KindFloat:
		return len(c.Flts)
	default:
		return len(c.Strs)
	}
}

// Value returns the cell at row i.
func (c *Column) Value(i int) Value {
	switch c.Kind {
	case KindInt:
		return IntVal(c.Ints[i])
	case KindFloat:
		return FloatVal(c.Flts[i])
	default:
		return StrVal(c.Strs[i])
	}
}

// DistinctCount returns the number of distinct values in the column.
func (c *Column) DistinctCount() int {
	switch c.Kind {
	case KindInt:
		seen := make(map[int64]struct{}, 64)
		for _, v := range c.Ints {
			seen[v] = struct{}{}
		}
		return len(seen)
	case KindFloat:
		seen := make(map[float64]struct{}, 64)
		for _, v := range c.Flts {
			seen[v] = struct{}{}
		}
		return len(seen)
	default:
		seen := make(map[string]struct{}, 64)
		for _, v := range c.Strs {
			seen[v] = struct{}{}
		}
		return len(seen)
	}
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name    string
	Columns []*Column
	byName  map[string]int
}

// NewTable builds a table, validating that all columns have the same
// number of rows.
func NewTable(name string, cols ...*Column) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("sqldb: table %q has no columns", name)
	}
	n := cols[0].Len()
	byName := make(map[string]int, len(cols))
	for i, c := range cols {
		if c.Len() != n {
			return nil, fmt.Errorf("sqldb: table %q column %q has %d rows, want %d", name, c.Name, c.Len(), n)
		}
		if _, dup := byName[c.Name]; dup {
			return nil, fmt.Errorf("sqldb: table %q duplicate column %q", name, c.Name)
		}
		byName[c.Name] = i
	}
	return &Table{Name: name, Columns: cols, byName: byName}, nil
}

// MustNewTable is NewTable that panics on error, for tests and
// generators with static schemas.
func MustNewTable(name string, cols ...*Column) *Table {
	t, err := NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the table's row count.
func (t *Table) NumRows() int { return t.Columns[0].Len() }

// Column returns the named column or nil.
func (t *Table) Column(name string) *Column {
	i, ok := t.byName[name]
	if !ok {
		return nil
	}
	return t.Columns[i]
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// String summarizes the table.
func (t *Table) String() string {
	return fmt.Sprintf("%s(%s)[%d rows]", t.Name, strings.Join(t.ColumnNames(), ", "), t.NumRows())
}
