// Package stats implements a PostgreSQL-style statistics collector and
// cardinality estimator: per-column most-common values, equi-depth
// histograms, distinct counts, attribute-independence selectivity
// composition and the distinct-count join formula. It plays the role
// of the "PostgreSQL" baseline row in the paper's Table 1 and supplies
// the estimates that drive the baseline query optimizer in Tables 2–3.
//
// Its deliberate modeling assumptions (independence between columns,
// uniformity outside MCVs, a default selectivity for LIKE patterns)
// are exactly the assumptions whose failure on skewed, correlated data
// motivates learned estimators; keeping them faithful is what lets the
// reproduction show the paper's PostgreSQL-vs-learned gap.
package stats

import (
	"math"
	"sort"

	"mtmlf/internal/sqldb"
)

// DefaultMCVs is the number of most-common values tracked per column.
const DefaultMCVs = 16

// DefaultHistBuckets is the number of equi-depth histogram buckets.
const DefaultHistBuckets = 32

// defaultLikeSel is the fallback selectivity for the un-sampled
// remainder of a LIKE pattern (PostgreSQL's DEFAULT_MATCH_SEL spirit).
const defaultLikeSel = 0.005

// ColumnStats summarizes one column.
type ColumnStats struct {
	Kind     sqldb.Kind
	RowCount int64
	Distinct int64
	// MCVs and MCVFreqs hold the most common values and their
	// frequencies (fractions of the table).
	MCVs     []sqldb.Value
	MCVFreqs []float64
	// Bounds is an equi-depth histogram over the numeric values not
	// covered by the MCV list; empty for string columns.
	Bounds []float64
	// Min and Max cover all numeric values.
	Min, Max float64
}

// mcvMass returns the total frequency mass captured by the MCV list.
func (c *ColumnStats) mcvMass() float64 {
	var s float64
	for _, f := range c.MCVFreqs {
		s += f
	}
	return s
}

// TableStats summarizes one table.
type TableStats struct {
	RowCount int64
	Cols     map[string]*ColumnStats
}

// DBStats holds ANALYZE results for every table of a database. It is
// the (cheap, database-specific) product of the paper's "ANALYZE"-like
// local step in the user-side workflow (Section 2.3).
type DBStats struct {
	Tables map[string]*TableStats
}

// Analyze scans the database and builds statistics, like PostgreSQL's
// ANALYZE (but exact rather than sampled: our tables are small).
func Analyze(db *sqldb.DB) *DBStats {
	return AnalyzeWith(db, DefaultMCVs, DefaultHistBuckets)
}

// AnalyzeWith is Analyze with explicit MCV and bucket counts.
func AnalyzeWith(db *sqldb.DB, numMCV, buckets int) *DBStats {
	out := &DBStats{Tables: map[string]*TableStats{}}
	for _, t := range db.Tables {
		ts := &TableStats{RowCount: int64(t.NumRows()), Cols: map[string]*ColumnStats{}}
		for _, c := range t.Columns {
			ts.Cols[c.Name] = analyzeColumn(c, numMCV, buckets)
		}
		out.Tables[t.Name] = ts
	}
	return out
}

func analyzeColumn(c *sqldb.Column, numMCV, buckets int) *ColumnStats {
	n := c.Len()
	cs := &ColumnStats{Kind: c.Kind, RowCount: int64(n)}
	if n == 0 {
		return cs
	}
	// Count value frequencies.
	freq := make(map[sqldb.Value]int, 64)
	for i := 0; i < n; i++ {
		freq[c.Value(i)]++
	}
	cs.Distinct = int64(len(freq))

	type vf struct {
		v sqldb.Value
		f int
	}
	all := make([]vf, 0, len(freq))
	for v, f := range freq {
		all = append(all, vf{v, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].v.Less(all[j].v)
	})
	k := numMCV
	if k > len(all) {
		k = len(all)
	}
	mcvSet := make(map[sqldb.Value]bool, k)
	for i := 0; i < k; i++ {
		cs.MCVs = append(cs.MCVs, all[i].v)
		cs.MCVFreqs = append(cs.MCVFreqs, float64(all[i].f)/float64(n))
		mcvSet[all[i].v] = true
	}

	if c.Kind == sqldb.KindString {
		return cs
	}
	// Numeric histogram over non-MCV values.
	var nums []float64
	for i := 0; i < n; i++ {
		v := c.Value(i)
		x := numeric(v)
		if i == 0 || x < cs.Min {
			cs.Min = x
		}
		if i == 0 || x > cs.Max {
			cs.Max = x
		}
		if !mcvSet[v] {
			nums = append(nums, x)
		}
	}
	if len(nums) > 1 {
		sort.Float64s(nums)
		b := buckets
		if b > len(nums)-1 {
			b = len(nums) - 1
		}
		if b < 1 {
			b = 1
		}
		cs.Bounds = make([]float64, b+1)
		for i := 0; i <= b; i++ {
			idx := i * (len(nums) - 1) / b
			cs.Bounds[i] = nums[idx]
		}
	}
	return cs
}

func numeric(v sqldb.Value) float64 {
	if v.Kind == sqldb.KindInt {
		return float64(v.I)
	}
	return v.F
}

// ---------------------------------------------------------------------------
// Selectivity estimation
// ---------------------------------------------------------------------------

// Selectivity estimates the fraction of a table's rows satisfying the
// filter, using MCVs for equality, histogram interpolation for ranges,
// and MCV sampling + a default for LIKE.
func (s *DBStats) Selectivity(f sqldb.Filter) float64 {
	ts, ok := s.Tables[f.Table]
	if !ok {
		return 1
	}
	cs, ok := ts.Cols[f.Col]
	if !ok || cs.RowCount == 0 {
		return 1
	}
	sel := cs.selectivity(f)
	return clamp01(sel)
}

func (c *ColumnStats) selectivity(f sqldb.Filter) float64 {
	switch f.Op {
	case sqldb.OpEq:
		return c.eqSel(f.Val)
	case sqldb.OpNeq:
		return 1 - c.eqSel(f.Val)
	case sqldb.OpLt, sqldb.OpLe, sqldb.OpGt, sqldb.OpGe:
		return c.rangeSel(f.Op, f.Val)
	case sqldb.OpLike:
		return c.likeSel(f.Val.S)
	default:
		return 1
	}
}

func (c *ColumnStats) eqSel(v sqldb.Value) float64 {
	for i, m := range c.MCVs {
		if m.Equal(v) {
			return c.MCVFreqs[i]
		}
	}
	rest := float64(c.Distinct) - float64(len(c.MCVs))
	if rest <= 0 {
		return 0
	}
	return (1 - c.mcvMass()) / rest
}

func (c *ColumnStats) rangeSel(op sqldb.Op, v sqldb.Value) float64 {
	if c.Kind == sqldb.KindString {
		// Strings: only MCV mass is usable.
		return c.mcvRangeFraction(op, v) // plus nothing for the rest
	}
	x := numeric(v)
	// Fraction below x among MCVs...
	var mcvBelow, mcvMass float64
	for i, m := range c.MCVs {
		mcvMass += c.MCVFreqs[i]
		if numeric(m) < x {
			mcvBelow += c.MCVFreqs[i]
		}
	}
	// ...and among histogram (non-MCV) values.
	histBelow := histFractionBelow(c.Bounds, x)
	below := mcvBelow + histBelow*(1-mcvMass)
	eq := c.eqSel(v)
	switch op {
	case sqldb.OpLt:
		return below
	case sqldb.OpLe:
		return below + eq
	case sqldb.OpGt:
		return 1 - below - eq
	case sqldb.OpGe:
		return 1 - below
	}
	return 1
}

func (c *ColumnStats) mcvRangeFraction(op sqldb.Op, v sqldb.Value) float64 {
	var s float64
	for i, m := range c.MCVs {
		match := false
		switch op {
		case sqldb.OpLt:
			match = m.Less(v)
		case sqldb.OpLe:
			match = m.Less(v) || m.Equal(v)
		case sqldb.OpGt:
			match = v.Less(m)
		case sqldb.OpGe:
			match = v.Less(m) || m.Equal(v)
		}
		if match {
			s += c.MCVFreqs[i]
		}
	}
	return s
}

func histFractionBelow(bounds []float64, x float64) float64 {
	if len(bounds) < 2 {
		return 0.5
	}
	if x <= bounds[0] {
		return 0
	}
	last := len(bounds) - 1
	if x >= bounds[last] {
		return 1
	}
	// Locate the bucket and interpolate linearly within it.
	i := sort.SearchFloat64s(bounds, x)
	lo, hi := bounds[i-1], bounds[i]
	frac := 0.5
	if hi > lo {
		frac = (x - lo) / (hi - lo)
	}
	return (float64(i-1) + frac) / float64(last)
}

// likeSel estimates a LIKE pattern: the MCV list is matched exactly
// (PostgreSQL samples its MCVs the same way), and the remaining mass
// gets the default pattern selectivity.
func (c *ColumnStats) likeSel(pattern string) float64 {
	var matched float64
	for i, m := range c.MCVs {
		if sqldb.MatchLike(m.S, pattern) {
			matched += c.MCVFreqs[i]
		}
	}
	return matched + (1-c.mcvMass())*defaultLikeSel
}

// ---------------------------------------------------------------------------
// Cardinality estimation
// ---------------------------------------------------------------------------

// EstimateTableCard estimates the filtered cardinality of one table
// under attribute independence (selectivities multiply).
func (s *DBStats) EstimateTableCard(table string, filters []sqldb.Filter) float64 {
	ts, ok := s.Tables[table]
	if !ok {
		return 1
	}
	card := float64(ts.RowCount)
	for _, f := range filters {
		card *= s.Selectivity(f)
	}
	if card < 1 {
		card = 1
	}
	return card
}

// joinSel returns the classic distinct-count join selectivity
// 1 / max(ndv(left), ndv(right)) for one equality edge.
func (s *DBStats) joinSel(e sqldb.JoinEdge) float64 {
	nd := func(t, c string) float64 {
		if ts, ok := s.Tables[t]; ok {
			if cs, ok := ts.Cols[c]; ok && cs.Distinct > 0 {
				return float64(cs.Distinct)
			}
		}
		return 1
	}
	m := math.Max(nd(e.T1, e.C1), nd(e.T2, e.C2))
	return 1 / m
}

// EstimateSubplanCard estimates the cardinality of the sub-query of q
// restricted to the given tables: the product of filtered table cards
// times the join selectivity of every in-subset edge. This is the
// textbook System-R / PostgreSQL estimate used by the baseline
// optimizer.
func (s *DBStats) EstimateSubplanCard(tables []string, q *sqldb.Query) float64 {
	card := 1.0
	for _, t := range tables {
		card *= s.EstimateTableCard(t, q.FiltersFor(t))
	}
	for _, e := range q.JoinsAmong(tables) {
		card *= s.joinSel(e)
	}
	if card < 1 {
		card = 1
	}
	return card
}

// EstimateQueryCard estimates the full query cardinality.
func (s *DBStats) EstimateQueryCard(q *sqldb.Query) float64 {
	return s.EstimateSubplanCard(q.Tables, q)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
