package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mtmlf/internal/sqldb"
)

// uniformIntTable builds a table with one uniform int column over
// [0, domain).
func uniformIntTable(rng *rand.Rand, name string, rows, domain int) *sqldb.Table {
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(rng.Intn(domain))
	}
	return sqldb.MustNewTable(name, sqldb.IntColumn("v", vals))
}

func TestAnalyzeBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := sqldb.NewDB("d")
	db.MustAddTable(uniformIntTable(rng, "t", 1000, 50))
	s := Analyze(db)
	ts := s.Tables["t"]
	if ts == nil || ts.RowCount != 1000 {
		t.Fatal("table stats missing")
	}
	cs := ts.Cols["v"]
	if cs.Distinct < 40 || cs.Distinct > 50 {
		t.Fatalf("distinct estimate %d implausible for 50-value domain", cs.Distinct)
	}
	if len(cs.MCVs) != DefaultMCVs {
		t.Fatalf("expected %d MCVs, got %d", DefaultMCVs, len(cs.MCVs))
	}
	if cs.Min < 0 || cs.Max > 49 {
		t.Fatal("min/max wrong")
	}
}

func TestEqSelectivityOnUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := sqldb.NewDB("d")
	db.MustAddTable(uniformIntTable(rng, "t", 5000, 100))
	s := Analyze(db)
	sel := s.Selectivity(sqldb.Filter{Table: "t", Col: "v", Op: sqldb.OpEq, Val: sqldb.IntVal(7)})
	if sel < 0.002 || sel > 0.05 {
		t.Fatalf("uniform eq selectivity %g, want ~0.01", sel)
	}
}

func TestEqSelectivityOnSkewedMCV(t *testing.T) {
	// 90% of rows hold value 0; the MCV list must capture this.
	vals := make([]int64, 1000)
	for i := 100; i < 1000; i++ {
		vals[i] = 0
	}
	for i := 0; i < 100; i++ {
		vals[i] = int64(i + 1)
	}
	db := sqldb.NewDB("d")
	db.MustAddTable(sqldb.MustNewTable("t", sqldb.IntColumn("v", vals)))
	s := Analyze(db)
	sel := s.Selectivity(sqldb.Filter{Table: "t", Col: "v", Op: sqldb.OpEq, Val: sqldb.IntVal(0)})
	if math.Abs(sel-0.9) > 1e-9 {
		t.Fatalf("MCV eq selectivity %g, want 0.9 exactly", sel)
	}
}

func TestRangeSelectivityMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := sqldb.NewDB("d")
	db.MustAddTable(uniformIntTable(rng, "t", 5000, 1000))
	s := Analyze(db)
	prev := -1.0
	for _, cut := range []int64{0, 100, 250, 500, 750, 999} {
		sel := s.Selectivity(sqldb.Filter{Table: "t", Col: "v", Op: sqldb.OpLt, Val: sqldb.IntVal(cut)})
		if sel < prev-1e-9 {
			t.Fatalf("range selectivity not monotone at %d: %g < %g", cut, sel, prev)
		}
		prev = sel
	}
	// Lt midpoint of uniform should be near 0.5.
	mid := s.Selectivity(sqldb.Filter{Table: "t", Col: "v", Op: sqldb.OpLt, Val: sqldb.IntVal(500)})
	if math.Abs(mid-0.5) > 0.1 {
		t.Fatalf("uniform midpoint selectivity %g, want ~0.5", mid)
	}
}

func TestRangeComplementary(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := sqldb.NewDB("d")
	db.MustAddTable(uniformIntTable(rng, "t", 2000, 500))
	s := Analyze(db)
	v := sqldb.IntVal(123)
	lt := s.Selectivity(sqldb.Filter{Table: "t", Col: "v", Op: sqldb.OpLt, Val: v})
	eq := s.Selectivity(sqldb.Filter{Table: "t", Col: "v", Op: sqldb.OpEq, Val: v})
	gt := s.Selectivity(sqldb.Filter{Table: "t", Col: "v", Op: sqldb.OpGt, Val: v})
	if math.Abs(lt+eq+gt-1) > 0.05 {
		t.Fatalf("lt+eq+gt = %g, want ~1", lt+eq+gt)
	}
}

func TestLikeSelectivity(t *testing.T) {
	strs := make([]string, 1000)
	for i := range strs {
		if i < 300 {
			strs[i] = "alpha"
		} else {
			strs[i] = "beta"
		}
	}
	db := sqldb.NewDB("d")
	db.MustAddTable(sqldb.MustNewTable("t", sqldb.StringColumn("s", strs)))
	s := Analyze(db)
	// Both values are MCVs, so LIKE 'alp%' should be ~0.3.
	sel := s.Selectivity(sqldb.Filter{Table: "t", Col: "s", Op: sqldb.OpLike, Val: sqldb.StrVal("alp%")})
	if math.Abs(sel-0.3) > 0.02 {
		t.Fatalf("LIKE selectivity %g, want ~0.3", sel)
	}
	// A pattern matching nothing should fall back to near-default.
	sel2 := s.Selectivity(sqldb.Filter{Table: "t", Col: "s", Op: sqldb.OpLike, Val: sqldb.StrVal("zz%")})
	if sel2 > 0.01 {
		t.Fatalf("non-matching LIKE selectivity %g too large", sel2)
	}
}

// Property: every selectivity is in [0, 1].
func TestSelectivityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := sqldb.NewDB("d")
	db.MustAddTable(uniformIntTable(rng, "t", 500, 40))
	s := Analyze(db)
	f := func(raw int64, opRaw uint8) bool {
		ops := []sqldb.Op{sqldb.OpEq, sqldb.OpNeq, sqldb.OpLt, sqldb.OpLe, sqldb.OpGt, sqldb.OpGe}
		op := ops[int(opRaw)%len(ops)]
		sel := s.Selectivity(sqldb.Filter{Table: "t", Col: "v", Op: op, Val: sqldb.IntVal(raw % 100)})
		return sel >= 0 && sel <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinEstimateExactOnCleanPKFK(t *testing.T) {
	// Dimension d with unique PK 0..99; fact f referencing it uniformly.
	rng := rand.New(rand.NewSource(6))
	pk := make([]int64, 100)
	for i := range pk {
		pk[i] = int64(i)
	}
	fk := make([]int64, 2000)
	for i := range fk {
		fk[i] = int64(rng.Intn(100))
	}
	db := sqldb.NewDB("d")
	db.MustAddTable(sqldb.MustNewTable("dim", sqldb.IntColumn("id", pk)))
	db.MustAddTable(sqldb.MustNewTable("fact", sqldb.IntColumn("dim_id", fk)))
	db.MustAddEdge(sqldb.JoinEdge{T1: "dim", C1: "id", T2: "fact", C2: "dim_id"})
	s := Analyze(db)
	q := &sqldb.Query{
		Tables: []string{"dim", "fact"},
		Joins:  []sqldb.JoinEdge{{T1: "dim", C1: "id", T2: "fact", C2: "dim_id"}},
	}
	est := s.EstimateQueryCard(q)
	truth := float64(sqldb.NewExecutor(db, q).Cardinality())
	// Clean PK-FK: estimate 100*2000/100 = 2000 = truth.
	if math.Abs(est-truth)/truth > 0.01 {
		t.Fatalf("clean PK-FK estimate %g, truth %g", est, truth)
	}
}

func TestIndependenceAssumptionUnderestimatesCorrelated(t *testing.T) {
	// Two perfectly correlated columns: a == b always. True selectivity
	// of (a=1 AND b=1) is P(a=1); independence predicts P(a=1)^2.
	n := 1000
	a := make([]int64, n)
	b := make([]int64, n)
	for i := 0; i < n; i++ {
		v := int64(i % 10)
		a[i], b[i] = v, v
	}
	db := sqldb.NewDB("d")
	db.MustAddTable(sqldb.MustNewTable("t", sqldb.IntColumn("a", a), sqldb.IntColumn("b", b)))
	s := Analyze(db)
	filters := []sqldb.Filter{
		{Table: "t", Col: "a", Op: sqldb.OpEq, Val: sqldb.IntVal(1)},
		{Table: "t", Col: "b", Op: sqldb.OpEq, Val: sqldb.IntVal(1)},
	}
	est := s.EstimateTableCard("t", filters)
	truth := float64(sqldb.FilteredCard(db.Table("t"), filters))
	if est >= truth {
		t.Fatalf("independence should underestimate correlated predicates: est %g, truth %g", est, truth)
	}
	// This documented failure mode is exactly why the learned models in
	// this repo beat the stats baseline on q-error.
}

func TestEstimateCardFloorsAtOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := sqldb.NewDB("d")
	db.MustAddTable(uniformIntTable(rng, "t", 100, 10))
	s := Analyze(db)
	// Stack many filters; estimate must never drop below 1.
	var filters []sqldb.Filter
	for i := 0; i < 10; i++ {
		filters = append(filters, sqldb.Filter{Table: "t", Col: "v", Op: sqldb.OpEq, Val: sqldb.IntVal(int64(i))})
	}
	if est := s.EstimateTableCard("t", filters); est < 1 {
		t.Fatalf("estimate %g below floor", est)
	}
}

func TestUnknownTableAndColumnAreNeutral(t *testing.T) {
	s := &DBStats{Tables: map[string]*TableStats{}}
	if s.Selectivity(sqldb.Filter{Table: "zz", Col: "c", Op: sqldb.OpEq, Val: sqldb.IntVal(1)}) != 1 {
		t.Fatal("unknown table selectivity must be 1")
	}
}

func TestHistFractionBelow(t *testing.T) {
	bounds := []float64{0, 10, 20, 30, 40}
	cases := []struct {
		x    float64
		want float64
	}{
		{-5, 0}, {0, 0}, {40, 1}, {45, 1}, {20, 0.5}, {5, 0.125},
	}
	for _, c := range cases {
		if got := histFractionBelow(bounds, c.x); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("histFractionBelow(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}
